#!/usr/bin/env bash
# tools/check.sh — one-shot verification gate: configure + build with
# warnings-as-errors, run the model linter, run the test suite, and
# (where the clang tools are installed) clang-tidy and a
# non-destructive clang-format conformance pass.
#
# Usage:
#   tools/check.sh [options]
#
# Options:
#   --build-dir DIR    build directory           (default: build-check)
#   --sanitize WHAT    SPECLENS_SANITIZE value: thread | address |
#                      undefined                 (default: none)
#   --jobs N           parallel build/test jobs  (default: nproc)
#   --format           also verify formatting with clang-format
#                      (dry run only; never rewrites files)
#   --tidy             also run clang-tidy over src/
#   --no-metrics       configure with -DSPECLENS_METRICS=OFF (proves
#                      the no-op instrumentation build stays green)
#   --help             this text
#
# clang-tidy and clang-format stages are skipped with a notice when
# the tools are not installed, so the script degrades gracefully on
# gcc-only machines (including this repo's CI fallback).

set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=build-check
SANITIZE=""
JOBS="$(nproc 2>/dev/null || echo 2)"
RUN_FORMAT=0
RUN_TIDY=0
METRICS=ON

while [[ $# -gt 0 ]]; do
    case "$1" in
      --build-dir) BUILD_DIR="$2"; shift 2 ;;
      --sanitize) SANITIZE="$2"; shift 2 ;;
      --jobs) JOBS="$2"; shift 2 ;;
      --format) RUN_FORMAT=1; shift ;;
      --tidy) RUN_TIDY=1; shift ;;
      --no-metrics) METRICS=OFF; shift ;;
      --help) sed -n '2,26p' "$0"; exit 0 ;;
      *) echo "check.sh: unknown option: $1" >&2; exit 2 ;;
    esac
done

step() { printf '\n== %s ==\n' "$*"; }

step "configure (${BUILD_DIR}, sanitize='${SANITIZE:-none}', WERROR=ON, METRICS=${METRICS})"
cmake -B "$BUILD_DIR" -S . \
    -DCMAKE_BUILD_TYPE=Release \
    -DSPECLENS_WERROR=ON \
    -DSPECLENS_VALIDATE=ON \
    -DSPECLENS_METRICS="$METRICS" \
    -DSPECLENS_SANITIZE="$SANITIZE" \
    -DCMAKE_EXPORT_COMPILE_COMMANDS=ON

step "build (-j${JOBS})"
cmake --build "$BUILD_DIR" -j "$JOBS"

step "autovectorization report (stats + predictor kernels)"
# Informational, never fatal: recompile the contiguous stats kernels
# and the batched predictor/prewarm kernels with the compiler's
# vectorization report and count the loops it vectorized.  Catches
# silent regressions (a kernel rewritten in a way the autovectorizer
# no longer handles) without pinning the gate to one compiler
# version's judgement.
CXX_BIN="${CXX:-c++}"
VEC_FLAGS=""
if "$CXX_BIN" --version 2>/dev/null | grep -qi clang; then
    VEC_FLAGS="-Rpass=loop-vectorize"
elif "$CXX_BIN" --version 2>/dev/null | grep -qi 'free software'; then
    VEC_FLAGS="-fopt-info-vec-optimized"
fi
if [[ -n "$VEC_FLAGS" ]]; then
    VEC_LOG="$BUILD_DIR/vectorize-report.txt"
    : >"$VEC_LOG"
    for f in src/stats/distance.cpp src/stats/eigen.cpp \
             src/stats/normalize.cpp src/uarch/branch_predictor.cpp \
             src/uarch/prewarm.cpp; do
        "$CXX_BIN" -O3 -std=c++20 -Isrc $VEC_FLAGS -c "$f" \
            -o /dev/null 2>>"$VEC_LOG" || true
    done
    VEC_COUNT="$(grep -ci 'vectorized' "$VEC_LOG" || true)"
    echo "vectorized-loop reports: ${VEC_COUNT} (details: ${VEC_LOG})"
    if [[ "${VEC_COUNT}" -eq 0 ]]; then
        echo "warning: no stats kernel loop vectorized (non-fatal)"
    fi
else
    echo "no recognized compiler vectorization report; skipping"
fi

if [[ "$RUN_FORMAT" -eq 1 ]]; then
    step "clang-format (dry run)"
    if command -v clang-format >/dev/null 2>&1; then
        # --dry-run never touches the tree; nonzero exit on deviation.
        git ls-files '*.cpp' '*.h' | xargs clang-format --dry-run -Werror
        echo "formatting clean"
    else
        echo "clang-format not installed; skipping format check"
    fi
fi

if [[ "$RUN_TIDY" -eq 1 ]]; then
    step "clang-tidy"
    if command -v clang-tidy >/dev/null 2>&1; then
        git ls-files 'src/*.cpp' |
            xargs clang-tidy -p "$BUILD_DIR" --quiet
    else
        echo "clang-tidy not installed; skipping tidy check"
    fi
fi

step "model lint (+ committed BENCH trajectory artifacts)"
"$BUILD_DIR"/tools/speclens lint --instructions 30000 --warmup 8000 \
    --bench .

step "invariant audit"
# The structural prover over live simulator state plus the jobs/salt
# determinism matrix; nonzero exit on any violation or divergence.
"$BUILD_DIR"/tools/speclens audit --instructions 8000 --warmup 2000

step "ctest (-j${JOBS})"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"

step "artifact-store reuse"
# A warm repeat of a campaign over a populated store must execute zero
# simulations and print byte-identical stdout.  Short window: this
# verifies the reuse contract, not the Table I numbers.
STORE_DIR="$BUILD_DIR/check-store"
rm -rf "$STORE_DIR"
"$BUILD_DIR"/bench/table1_characterization --store "$STORE_DIR" \
    --instructions 20000 --warmup 5000 \
    >"$BUILD_DIR/store-cold.out" 2>"$BUILD_DIR/store-cold.err"
"$BUILD_DIR"/bench/table1_characterization --store "$STORE_DIR" \
    --instructions 20000 --warmup 5000 \
    >"$BUILD_DIR/store-warm.out" 2>"$BUILD_DIR/store-warm.err"
cmp "$BUILD_DIR/store-cold.out" "$BUILD_DIR/store-warm.out"
grep -q 'simulations=0 ' "$BUILD_DIR/store-warm.err"
"$BUILD_DIR"/tools/speclens lint --no-deep --store "$STORE_DIR" \
    >/dev/null
echo "warm run: zero simulations, stdout byte-identical"

step "memory-centric model reuse"
# The memory-centric family (prefetch engines, way prediction, DRAM
# model) must round-trip the store like every other campaign: a warm
# repeat executes zero simulations and prints byte-identical stdout.
MEM_STORE="$BUILD_DIR/memory-store"
rm -rf "$MEM_STORE"
"$BUILD_DIR"/bench/table_memory_centric --store "$MEM_STORE" \
    --instructions 20000 --warmup 5000 \
    >"$BUILD_DIR/memory-cold.out" 2>"$BUILD_DIR/memory-cold.err"
"$BUILD_DIR"/bench/table_memory_centric --store "$MEM_STORE" \
    --instructions 20000 --warmup 5000 \
    >"$BUILD_DIR/memory-warm.out" 2>"$BUILD_DIR/memory-warm.err"
cmp "$BUILD_DIR/memory-cold.out" "$BUILD_DIR/memory-warm.out"
grep -q 'simulations=0 ' "$BUILD_DIR/memory-warm.err"
# SL026 range-checks the stored memory-centric metrics.
"$BUILD_DIR"/tools/speclens lint --no-deep --store "$MEM_STORE" \
    >/dev/null
rm -rf "$MEM_STORE"
echo "memory-centric: warm zero simulations, stdout byte-identical"

step "bench trajectory (small window)"
# The perf-trajectory runner re-proves fused-vs-materialized parity and
# warm-store reuse itself (nonzero exit when either fails); the stdout
# facts block must be byte-identical between a cold and a warm rerun.
TRAJ_STORE="$BUILD_DIR/traj-store"
rm -rf "$TRAJ_STORE"
"$BUILD_DIR"/tools/speclens bench trajectory --pr 0 \
    --out "$BUILD_DIR/BENCH_check.json" --store "$TRAJ_STORE" \
    --instructions 5000 --warmup 1500 \
    >"$BUILD_DIR/traj-cold.out" 2>/dev/null
"$BUILD_DIR"/tools/speclens bench trajectory --pr 0 \
    --out "$BUILD_DIR/BENCH_check_warm.json" --store "$TRAJ_STORE" \
    --instructions 5000 --warmup 1500 \
    >"$BUILD_DIR/traj-warm.out" 2>/dev/null
cmp "$BUILD_DIR/traj-cold.out" "$BUILD_DIR/traj-warm.out"
grep -q 'parity: fused-vs-materialized bit-identical: yes' \
    "$BUILD_DIR/traj-cold.out"
grep -q 'store: warm rerun simulations=0 bit-identical: yes' \
    "$BUILD_DIR/traj-warm.out"
rm -rf "$TRAJ_STORE"
echo "trajectory: parity + warm reuse proven, stdout byte-identical"

step "observability"
# `--metrics` must leave stdout untouched (byte-identical to the runs
# above), export a parseable metrics file, and the campaign must leave
# a well-formed run manifest next to the store.
"$BUILD_DIR"/bench/table1_characterization --store "$STORE_DIR" \
    --instructions 20000 --warmup 5000 \
    --metrics "$BUILD_DIR/check-metrics.json" --metrics-format json \
    >"$BUILD_DIR/store-metrics.out" 2>/dev/null
cmp "$BUILD_DIR/store-cold.out" "$BUILD_DIR/store-metrics.out"
if [[ "$METRICS" == ON ]]; then
    grep -q 'core.store.hits' "$BUILD_DIR/check-metrics.json"
fi
"$BUILD_DIR"/tools/speclens campaign manifest --store "$STORE_DIR"
rm -rf "$STORE_DIR" "$BUILD_DIR/check-metrics.json"
echo "metrics on: stdout unchanged, metrics exported, manifest valid"

step "serve smoke"
# The daemon must answer byte-for-byte what the batch CLI prints for
# the same question, then drain cleanly on the shutdown op; the
# loadtest must hold response parity across concurrent clients and
# leave a well-formed JSON artifact.
SERVE_STORE="$BUILD_DIR/serve-store"
rm -rf "$SERVE_STORE"
"$BUILD_DIR"/tools/speclens serve --port 0 --store "$SERVE_STORE" \
    --instructions 5000 --warmup 1500 \
    >"$BUILD_DIR/serve.out" 2>"$BUILD_DIR/serve.err" &
SERVE_PID=$!
for _ in $(seq 1 100); do
    grep -q listening "$BUILD_DIR/serve.out" 2>/dev/null && break
    sleep 0.1
done
SERVE_PORT="$(sed -n 's/.*port=\([0-9]*\).*/\1/p' "$BUILD_DIR/serve.out")"
[[ -n "$SERVE_PORT" ]]
"$BUILD_DIR"/tools/speclens query --port "$SERVE_PORT" \
    characterize 500.perlbench_r 505.mcf_r \
    >"$BUILD_DIR/serve-query.out"
"$BUILD_DIR"/tools/speclens characterize \
    --instructions 5000 --warmup 1500 500.perlbench_r 505.mcf_r \
    >"$BUILD_DIR/serve-batch.out"
cmp "$BUILD_DIR/serve-query.out" "$BUILD_DIR/serve-batch.out"
"$BUILD_DIR"/tools/speclens query --port "$SERVE_PORT" \
    memory 519.lbm_r \
    >"$BUILD_DIR/serve-memory.out"
"$BUILD_DIR"/tools/speclens memory \
    --instructions 5000 --warmup 1500 519.lbm_r \
    >"$BUILD_DIR/memory-batch.out"
cmp "$BUILD_DIR/serve-memory.out" "$BUILD_DIR/memory-batch.out"
"$BUILD_DIR"/tools/speclens query --port "$SERVE_PORT" shutdown \
    >/dev/null
wait "$SERVE_PID"
grep -q drained "$BUILD_DIR/serve.err"
"$BUILD_DIR"/bench/bench_serve_loadtest --clients 4 --requests 6 \
    --instructions 5000 --warmup 1500 --store "$SERVE_STORE" \
    --out "$BUILD_DIR/serve_loadtest.json" \
    >"$BUILD_DIR/serve-loadtest.out" 2>/dev/null
grep -q 'parity: identical responses across clients: yes' \
    "$BUILD_DIR/serve-loadtest.out"
grep -q '"p99_ns"' "$BUILD_DIR/serve_loadtest.json"
"$BUILD_DIR"/tools/speclens lint --no-deep --store "$SERVE_STORE" \
    >/dev/null
rm -rf "$SERVE_STORE" "$BUILD_DIR/serve_loadtest.json"
echo "serve: daemon answers byte-identical to batch, drain + parity ok"

step "all checks passed"
