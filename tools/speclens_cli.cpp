/**
 * @file
 * speclens — command-line front end to the SpecLens toolkit.
 *
 * Subcommands:
 *   list [suite]              list known benchmarks (cpu2017, cpu2006,
 *                             emerging; default cpu2017)
 *   machines                  list the Table IV machine models
 *   characterize <bench>...   per-machine metric report for benchmarks
 *   subset <category> [k]     representative subset of a sub-suite
 *   inputs <int|fp>           representative input-set selection
 *   coverage <bench>...       are these workloads covered by CPU2017?
 *   sensitivity <metric>      Table IX-style sensitivity classes
 *                             (branch | l1d | dtlb)
 *   campaign <run|info|invalidate|manifest>
 *                             manage the persistent artifact store
 *   lint                      statically verify every workload model,
 *                             machine config and calibration table
 *   audit                     prove structural invariants over a
 *                             pinned mini-campaign and diff result
 *                             fingerprints across job counts / salts
 *
 * Global options: --instructions N, --warmup N (simulation window),
 * --jobs N (simulation worker threads; default one per hardware
 * thread), --seed-salt N (independent re-runs), --store DIR
 * (persistent artifact store; reused results skip simulation),
 * --metrics FILE + --metrics-format prom|json (metric snapshot written
 * at exit; never touches stdout).  Lint options: --format text|json,
 * --severity info|warning|error (display filter), --no-deep (skip the
 * simulation-backed Table II checks).
 */

#include <atomic>
#include <cctype>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <vector>

#include <fstream>
#include <iostream>

#include "core/analysis_session.h"
#include "core/characterization.h"
#include "core/csv_export.h"
#include "core/option_parse.h"
#include "core/perf_trajectory.h"
#include "core/query_ops.h"
#include "core/service_context.h"
#include "obs/export.h"
#include "obs/manifest.h"
#include "core/phase_analysis.h"
#include "core/suite_report.h"
#include "core/input_set_analysis.h"
#include "core/balance.h"
#include "core/report.h"
#include "core/sensitivity.h"
#include "core/similarity.h"
#include "core/subsetting.h"
#include "core/validation.h"
#include "lint/linter.h"
#include "lint/rules.h"
#include "serve/client.h"
#include "serve/server.h"
#include "suites/emerging.h"
#include "suites/input_sets.h"
#include "suites/machines.h"
#include "suites/score_database.h"
#include "suites/spec2006.h"
#include "suites/spec2017.h"

using namespace speclens;

namespace {

struct CliOptions
{
    std::string command;
    std::vector<std::string> args;
    std::uint64_t instructions = 120'000;
    std::uint64_t warmup = 30'000;

    // True when the user passed the flag explicitly.  `bench
    // trajectory` pins its own window (150k+40k) and must not inherit
    // the CLI defaults above, but an explicit flag still wins.
    bool instructions_set = false;
    bool warmup_set = false;
    std::size_t jobs = 0; //!< 0 = one worker per hardware thread.
    std::uint64_t seed_salt = 0;
    std::string store_dir; //!< Empty = no persistent artifact store.
    std::string bench_dir; //!< BENCH_<pr>.json directory for lint.

    // Serve/query options.
    std::string host = "127.0.0.1"; //!< Daemon listen/connect address.
    std::uint16_t port = 0; //!< serve: 0 = ephemeral; query: required.

    std::string metrics_path; //!< Empty = no metrics export.
    obs::ExportFormat metrics_format = obs::ExportFormat::Prometheus;

    // Lint options.
    std::string format = "text";   //!< Report format: text | json.
    std::string severity = "info"; //!< Display filter threshold.
    bool deep = true; //!< Run simulation-backed lint checks.
};

[[noreturn]] void
usage(int code)
{
    std::fputs(
        "usage: speclens <command> [args] [--instructions N] "
        "[--warmup N] [--jobs N]\n"
        "                [--seed-salt N] [--store DIR] "
        "[--metrics FILE]\n"
        "                [--metrics-format prom|json]\n"
        "\n"
        "commands:\n"
        "  list [cpu2017|cpu2006|emerging]   list benchmarks\n"
        "  machines                          list machine models\n"
        "  characterize <bench>...           metric report\n"
        "  memory <bench>...                 memory-centric report\n"
        "                                    (prefetch coverage/accuracy/\n"
        "                                    timeliness, way prediction,\n"
        "                                    DRAM row-buffer + bandwidth)\n"
        "  subset <speed-int|rate-int|speed-fp|rate-fp> [k]\n"
        "                                    representative subset\n"
        "  inputs <int|fp>                   representative inputs\n"
        "  coverage <bench>...               CPU2017 coverage verdicts\n"
        "  sensitivity <branch|l1d|dtlb>     sensitivity classes\n"
        "  export <cpu2017|cpu2006|emerging> [file.csv]\n"
        "                                    feature matrix as CSV\n"
        "  report <speed-int|rate-int|speed-fp|rate-fp> [file.md]\n"
        "                                    full markdown suite report\n"
        "  simpoints <bench> [phases] [clusters]\n"
        "                                    phase-reduction estimate\n"
        "  campaign run [cpu2017|cpu2006|emerging|all]\n"
        "                                    populate the --store with a\n"
        "                                    full characterization\n"
        "  campaign info                     describe and verify every\n"
        "                                    --store entry\n"
        "  campaign invalidate [stale]       delete all (or only bad)\n"
        "                                    --store entries\n"
        "  campaign manifest                 validate the run manifest\n"
        "                                    written next to the --store\n"
        "  serve [--host A] [--port N]       long-running daemon; answers\n"
        "                                    queries over a loopback TCP\n"
        "                                    socket (port 0 = ephemeral,\n"
        "                                    printed on the 'listening'\n"
        "                                    line; SIGTERM drains)\n"
        "  query <characterize|memory|subset|sensitivity|stats|\n"
        "         shutdown>\n"
        "        [args] --port N [--host A]  ask a running daemon; output\n"
        "                                    is byte-identical to the\n"
        "                                    batch command\n"
        "  bench trajectory [--pr N] [--out FILE]\n"
        "                                    pinned perf campaign; facts\n"
        "                                    to stdout, BENCH_<pr>.json\n"
        "                                    with timings to FILE; no\n"
        "                                    --pr: highest BENCH_* + 1,\n"
        "                                    delta table on stderr\n"
        "  lint [--format text|json] [--severity info|warning|error]\n"
        "       [--no-deep] [--store DIR]    verify models and tables\n"
        "       [--bench DIR]                (and store integrity plus\n"
        "                                    BENCH/manifest artifacts)\n"
        "  audit                             prove structural invariants\n"
        "                                    over a pinned mini-campaign\n"
        "                                    and replay it across job\n"
        "                                    counts and seed salts,\n"
        "                                    diffing result fingerprints\n",
        code == 0 ? stdout : stderr);
    std::exit(code);
}

/** Numeric value of @p flag at argv[i + 1]; exits on bad input. */
std::uint64_t
numericFlagValue(const char *flag, int argc, char **argv, int &i)
{
    if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s requires a value\n", flag);
        std::exit(1);
    }
    const char *text = argv[++i];
    std::uint64_t value = 0;
    core::ParseStatus status = core::parseUnsigned(text, value);
    if (status != core::ParseStatus::Ok) {
        std::fprintf(stderr,
                     "error: %s expects a non-negative integer, got "
                     "'%s': %s\n",
                     flag, text,
                     core::parseStatusDetail(status).c_str());
        std::exit(1);
    }
    return value;
}

/**
 * Parse positional argument @p text as a strict non-negative integer.
 * Returns false (with a diagnostic naming @p what) on any defect —
 * the atoi it replaces treated "3x" as 3 and "x" as 0.
 */
bool
parsePositional(const char *what, const std::string &text,
                std::size_t &out)
{
    std::uint64_t value = 0;
    core::ParseStatus status = core::parseUnsigned(text, value);
    if (status != core::ParseStatus::Ok) {
        std::fprintf(stderr,
                     "error: %s expects a non-negative integer, got "
                     "'%s': %s\n",
                     what, text.c_str(),
                     core::parseStatusDetail(status).c_str());
        return false;
    }
    out = static_cast<std::size_t>(value);
    return true;
}

/** String value of @p flag at argv[i + 1]; exits on missing value. */
const char *
stringFlagValue(const char *flag, int argc, char **argv, int &i)
{
    if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s requires a value\n", flag);
        std::exit(1);
    }
    return argv[++i];
}

CliOptions
parse(int argc, char **argv)
{
    CliOptions opts;
    if (argc < 2)
        usage(1);
    opts.command = argv[1];
    for (int i = 2; i < argc; ++i) {
        if (std::strcmp(argv[i], "--instructions") == 0) {
            opts.instructions =
                numericFlagValue("--instructions", argc, argv, i);
            opts.instructions_set = true;
        } else if (std::strcmp(argv[i], "--warmup") == 0) {
            opts.warmup = numericFlagValue("--warmup", argc, argv, i);
            opts.warmup_set = true;
        }
        else if (std::strcmp(argv[i], "--jobs") == 0)
            opts.jobs = static_cast<std::size_t>(
                numericFlagValue("--jobs", argc, argv, i));
        else if (std::strcmp(argv[i], "--seed-salt") == 0)
            opts.seed_salt =
                numericFlagValue("--seed-salt", argc, argv, i);
        else if (std::strcmp(argv[i], "--store") == 0)
            opts.store_dir = stringFlagValue("--store", argc, argv, i);
        else if (std::strcmp(argv[i], "--bench") == 0)
            opts.bench_dir = stringFlagValue("--bench", argc, argv, i);
        else if (std::strcmp(argv[i], "--host") == 0)
            opts.host = stringFlagValue("--host", argc, argv, i);
        else if (std::strcmp(argv[i], "--port") == 0) {
            std::uint64_t value =
                numericFlagValue("--port", argc, argv, i);
            if (value > 65535) {
                std::fprintf(stderr,
                             "error: --port must be <= 65535\n");
                std::exit(1);
            }
            opts.port = static_cast<std::uint16_t>(value);
        }
        else if (std::strcmp(argv[i], "--metrics") == 0)
            opts.metrics_path =
                stringFlagValue("--metrics", argc, argv, i);
        else if (std::strcmp(argv[i], "--metrics-format") == 0) {
            const char *name =
                stringFlagValue("--metrics-format", argc, argv, i);
            try {
                opts.metrics_format = obs::exportFormatFromName(name);
            } catch (const std::invalid_argument &e) {
                std::fprintf(stderr, "error: %s\n", e.what());
                std::exit(1);
            }
        } else if (std::strcmp(argv[i], "--format") == 0)
            opts.format = stringFlagValue("--format", argc, argv, i);
        else if (std::strcmp(argv[i], "--severity") == 0)
            opts.severity =
                stringFlagValue("--severity", argc, argv, i);
        else if (std::strcmp(argv[i], "--no-deep") == 0)
            opts.deep = false;
        else if (std::strcmp(argv[i], "--help") == 0)
            usage(0);
        else
            opts.args.emplace_back(argv[i]);
    }
    if (!opts.metrics_path.empty())
        obs::exportAtExit(opts.metrics_path, opts.metrics_format);
    return opts;
}

/** Benchmark lookup across every database. */
const suites::BenchmarkInfo *
lookup(const std::string &name)
{
    for (const auto *list :
         {&suites::spec2017(), &suites::spec2006()}) {
        for (const suites::BenchmarkInfo &b : *list)
            if (b.name == name)
                return &b;
    }
    static const std::vector<suites::BenchmarkInfo> emerging =
        suites::emergingBenchmarks();
    for (const suites::BenchmarkInfo &b : emerging)
        if (b.name == name)
            return &b;
    return nullptr;
}

/** Session over an explicit machine set (store attached per --store). */
core::AnalysisSession
makeSession(const CliOptions &opts,
            std::vector<uarch::MachineConfig> machines)
{
    core::SessionConfig config;
    config.machines = std::move(machines);
    config.characterization.instructions = opts.instructions;
    config.characterization.warmup = opts.warmup;
    config.characterization.seed_salt = opts.seed_salt;
    config.characterization.jobs = opts.jobs;
    config.store_dir = opts.store_dir;
    return core::AnalysisSession(std::move(config));
}

/** Session over the seven Table IV machines. */
core::AnalysisSession
makeSession(const CliOptions &opts)
{
    return makeSession(opts, suites::profilingMachines());
}

int
cmdList(const CliOptions &opts)
{
    std::string which = opts.args.empty() ? "cpu2017" : opts.args[0];
    std::vector<suites::BenchmarkInfo> list;
    if (which == "cpu2017")
        list = suites::spec2017();
    else if (which == "cpu2006")
        list = suites::spec2006();
    else if (which == "emerging")
        list = suites::emergingBenchmarks();
    else
        usage(1);

    core::TextTable table({"Benchmark", "Category", "Domain",
                           "Language", "Icount (B)", "New in 2017"});
    for (const suites::BenchmarkInfo &b : list) {
        table.addRow({b.name, suites::categoryName(b.category),
                      suites::domainName(b.domain),
                      suites::languageName(b.language),
                      core::TextTable::num(
                          b.profile.dynamic_instructions_billions, 0),
                      b.new_in_2017 ? "yes" : ""});
    }
    std::fputs(table.render().c_str(), stdout);
    return 0;
}

int
cmdMachines()
{
    core::TextTable table({"Machine", "Short name", "ISA", "GHz", "L1D",
                           "L2", "LLC", "Predictor"});
    for (const uarch::MachineConfig &m : suites::profilingMachines()) {
        table.addRow(
            {m.name, m.short_name, uarch::isaName(m.isa),
             core::TextTable::num(m.frequency_ghz, 2),
             std::to_string(m.caches.l1d.size_bytes / 1024) + "K",
             std::to_string(m.caches.l2.size_bytes / 1024) + "K",
             m.caches.l3 ? std::to_string(m.caches.l3->size_bytes /
                                          (1024 * 1024)) +
                               "M"
                         : "none",
             uarch::predictorKindName(m.predictor)});
    }
    std::fputs(table.render().c_str(), stdout);
    return 0;
}

int
cmdCharacterize(const CliOptions &opts)
{
    if (opts.args.empty())
        usage(1);
    core::AnalysisSession session = makeSession(opts);
    core::QueryOutcome outcome =
        core::runCharacterizeQuery(session.context(), opts.args);
    if (!outcome.ok) {
        std::fprintf(stderr, "%s\n", outcome.error.c_str());
        return 1;
    }
    std::fputs(outcome.output.c_str(), stdout);
    return 0;
}

int
cmdMemory(const CliOptions &opts)
{
    if (opts.args.empty())
        usage(1);
    core::AnalysisSession session =
        makeSession(opts, suites::memoryCentricMachines());
    core::QueryOutcome outcome =
        core::runMemoryQuery(session.context(), opts.args);
    if (!outcome.ok) {
        std::fprintf(stderr, "%s\n", outcome.error.c_str());
        return 1;
    }
    std::fputs(outcome.output.c_str(), stdout);
    return 0;
}

int
cmdSubset(const CliOptions &opts)
{
    if (opts.args.empty() || !core::isSubsetCategory(opts.args[0]))
        usage(1);
    std::size_t k = 3;
    if (opts.args.size() > 1 && !parsePositional("k", opts.args[1], k))
        return 1;

    core::AnalysisSession session = makeSession(opts);
    core::QueryOutcome outcome =
        core::runSubsetQuery(session.context(), opts.args[0], k);
    if (!outcome.ok) {
        std::fprintf(stderr, "%s\n", outcome.error.c_str());
        return 1;
    }
    std::fputs(outcome.output.c_str(), stdout);
    return 0;
}

int
cmdInputs(const CliOptions &opts)
{
    if (opts.args.empty())
        usage(1);
    core::AnalysisSession session = makeSession(opts);
    core::Characterizer &characterizer = session.characterizer();
    auto groups = opts.args[0] == "fp" ? suites::inputSetGroupsFp()
                                       : suites::inputSetGroupsInt();
    core::InputSetAnalysis analysis =
        core::analyzeInputSets(characterizer, groups);
    core::TextTable table({"Benchmark", "Representative input",
                           "Group spread"});
    for (const core::RepresentativeInput &rep :
         analysis.representatives) {
        table.addRow({rep.benchmark,
                      std::to_string(rep.input_index),
                      core::TextTable::num(rep.group_spread)});
    }
    std::fputs(table.render().c_str(), stdout);
    return 0;
}

int
cmdCoverage(const CliOptions &opts)
{
    if (opts.args.empty())
        usage(1);
    std::vector<suites::BenchmarkInfo> candidates;
    for (const std::string &name : opts.args) {
        const suites::BenchmarkInfo *benchmark = lookup(name);
        if (!benchmark) {
            std::fprintf(stderr, "unknown benchmark: %s\n",
                         name.c_str());
            return 1;
        }
        candidates.push_back(*benchmark);
    }
    core::AnalysisSession session = makeSession(opts);
    core::Characterizer &characterizer = session.characterizer();
    auto verdicts = core::coverageAnalysis(
        characterizer, suites::spec2017(), candidates);
    core::TextTable table({"Workload", "Nearest CPU2017", "Distance",
                           "Covered?"});
    for (const core::CoverageVerdict &v : verdicts)
        table.addRow({v.benchmark, v.nearest,
                      core::TextTable::num(v.nn_distance),
                      v.covered ? "yes" : "NO"});
    std::fputs(table.render().c_str(), stdout);
    return 0;
}

int
cmdSensitivity(const CliOptions &opts)
{
    if (opts.args.empty() || !core::isSensitivityMetric(opts.args[0]))
        usage(1);
    core::AnalysisSession session =
        makeSession(opts, suites::sensitivityMachines());
    core::QueryOutcome outcome =
        core::runSensitivityQuery(session.context(), opts.args[0]);
    if (!outcome.ok) {
        std::fprintf(stderr, "%s\n", outcome.error.c_str());
        return 1;
    }
    std::fputs(outcome.output.c_str(), stdout);
    return 0;
}

int
cmdExport(const CliOptions &opts)
{
    if (opts.args.empty())
        usage(1);
    std::vector<suites::BenchmarkInfo> list;
    if (opts.args[0] == "cpu2017")
        list = suites::spec2017();
    else if (opts.args[0] == "cpu2006")
        list = suites::spec2006();
    else if (opts.args[0] == "emerging")
        list = suites::emergingBenchmarks();
    else
        usage(1);

    core::AnalysisSession session = makeSession(opts);
    core::Characterizer &characterizer = session.characterizer();
    stats::Matrix features = characterizer.featureMatrix(list);

    if (opts.args.size() > 1) {
        std::ofstream file(opts.args[1]);
        if (!file) {
            std::fprintf(stderr, "cannot open %s\n",
                         opts.args[1].c_str());
            return 1;
        }
        core::writeCsv(file, suites::benchmarkNames(list),
                       characterizer.featureNames(), features);
        std::printf("wrote %zu rows x %zu features to %s\n",
                    features.rows(), features.cols(),
                    opts.args[1].c_str());
    } else {
        core::writeCsv(std::cout, suites::benchmarkNames(list),
                       characterizer.featureNames(), features);
    }
    return 0;
}

int
cmdReport(const CliOptions &opts)
{
    if (opts.args.empty())
        usage(1);
    std::vector<suites::BenchmarkInfo> suite;
    core::SuiteReportOptions report;
    const std::string &which = opts.args[0];
    if (which == "speed-int") {
        suite = suites::spec2017SpeedInt();
        report.validation_category = suites::Category::SpeedInt;
    } else if (which == "rate-int") {
        suite = suites::spec2017RateInt();
        report.validation_category = suites::Category::RateInt;
    } else if (which == "speed-fp") {
        suite = suites::spec2017SpeedFp();
        report.validation_category = suites::Category::SpeedFp;
    } else if (which == "rate-fp") {
        suite = suites::spec2017RateFp();
        report.validation_category = suites::Category::RateFp;
    } else {
        usage(1);
    }
    report.title = "SpecLens report: SPEC CPU2017 " + which;

    core::AnalysisSession session = makeSession(opts);
    core::Characterizer &characterizer = session.characterizer();
    if (opts.args.size() > 1) {
        std::ofstream file(opts.args[1]);
        if (!file) {
            std::fprintf(stderr, "cannot open %s\n",
                         opts.args[1].c_str());
            return 1;
        }
        core::writeSuiteReport(file, characterizer, suite, report);
        std::printf("wrote report to %s\n", opts.args[1].c_str());
    } else {
        core::writeSuiteReport(std::cout, characterizer, suite,
                               report);
    }
    return 0;
}

int
cmdSimpoints(const CliOptions &opts)
{
    if (opts.args.empty())
        usage(1);
    const suites::BenchmarkInfo *benchmark = lookup(opts.args[0]);
    if (!benchmark) {
        std::fprintf(stderr, "unknown benchmark: %s\n",
                     opts.args[0].c_str());
        return 1;
    }
    std::size_t phases = 8;
    std::size_t clusters = 3;
    if (opts.args.size() > 1 &&
        !parsePositional("phases", opts.args[1], phases))
        return 1;
    if (opts.args.size() > 2 &&
        !parsePositional("clusters", opts.args[2], clusters))
        return 1;
    if (phases < 1 || clusters < 1 || clusters > phases) {
        std::fprintf(stderr,
                     "need phases >= 1 and 1 <= clusters <= phases\n");
        return 1;
    }

    trace::PhasedWorkload workload =
        trace::derivePhases(benchmark->profile, phases, 0.35);
    core::SimPointConfig config;
    config.clusters = clusters;
    config.instructions = opts.instructions;
    config.warmup = opts.warmup;
    core::AnalysisSession session =
        makeSession(opts, {suites::skylakeMachine()});
    core::SimPointResult result = core::simpointEstimate(
        workload, suites::skylakeMachine(), config, session.store());

    std::printf("%s as %zu phases, %zu representative(s):\n",
                benchmark->name.c_str(), phases,
                result.representatives.size());
    for (std::size_t i = 0; i < result.representatives.size(); ++i) {
        std::printf("  phase %zu carries %.0f%% of the run\n",
                    result.representatives[i] + 1,
                    100.0 * result.weights[i]);
    }
    std::printf("full CPI %.3f vs estimate %.3f (error %.1f%%), "
                "simulating %.0f%% of the run\n",
                result.full_cpi, result.estimated_cpi,
                result.cpi_error_pct,
                100.0 * result.simulated_fraction);
    return 0;
}

/**
 * `campaign run [suite]`: populate the store with a full
 * characterization of the named suite(s) over the seven Table IV
 * machines.  Stdout reports only the deterministic campaign shape;
 * the cold/warm reuse numbers go to stderr with the session summary,
 * so repeat runs stay byte-identical on stdout.
 */
int
cmdCampaignRun(const CliOptions &opts)
{
    std::string which =
        opts.args.size() > 1 ? opts.args[1] : std::string("cpu2017");
    std::vector<std::vector<suites::BenchmarkInfo>> suite_sets;
    if (which == "cpu2017" || which == "all")
        suite_sets.push_back(suites::spec2017());
    if (which == "cpu2006" || which == "all")
        suite_sets.push_back(suites::spec2006());
    if (which == "emerging" || which == "all")
        suite_sets.push_back(suites::emergingBenchmarks());
    if (suite_sets.empty())
        usage(1);

    core::AnalysisSession session = makeSession(opts);
    std::size_t pairs = 0;
    for (const auto &suite : suite_sets) {
        session.characterizer().prepare(suite);
        pairs += suite.size() * session.characterizer().machines().size();
    }
    std::printf("campaign %s: %zu (benchmark, machine) pairs ready\n",
                which.c_str(), pairs);
    return 0;
}

/** `campaign info`: describe and verify every store entry. */
int
cmdCampaignInfo(const CliOptions &opts)
{
    core::CampaignStore store(opts.store_dir);
    std::vector<core::StoreEntryInfo> entries = store.scan();

    core::TextTable table({"Entry", "Benchmark", "Machine", "Window",
                           "Salt", "Phases", "Status"});
    std::size_t healthy = 0;
    for (const core::StoreEntryInfo &info : entries) {
        bool ok = info.status == core::StoreStatus::Hit;
        healthy += ok ? 1 : 0;
        table.addRow(
            {info.filename, info.benchmark, info.machine,
             std::to_string(info.instructions) + "+" +
                 std::to_string(info.warmup),
             std::to_string(info.seed_salt),
             info.phases ? std::to_string(info.phases) : std::string("-"),
             ok ? "ok" : core::storeStatusName(info.status) +
                             " (" + info.detail + ")"});
    }
    std::fputs(table.render().c_str(), stdout);
    std::printf("%zu entries, %zu healthy, %zu inconsistent\n",
                entries.size(), healthy, entries.size() - healthy);
    std::printf("layout: %zu shards, result-lru capacity %zu\n",
                core::CampaignStore::shardCount(),
                store.lruCapacity());
    return healthy == entries.size() ? 0 : 1;
}

/**
 * `campaign manifest`: read, validate and summarise the run manifest a
 * session left next to the store.  Exit 1 when the manifest is
 * missing, is not well-formed JSON, or lacks a schema-v1 key — the CI
 * metrics smoke stage is built on this being a real check.
 */
int
cmdCampaignManifest(const CliOptions &opts)
{
    std::string path =
        opts.store_dir + "/" + obs::kManifestFileName;
    std::ifstream file(path, std::ios::binary);
    if (!file) {
        std::fprintf(stderr,
                     "error: no manifest at %s (run a campaign with "
                     "--store first)\n",
                     path.c_str());
        return 1;
    }
    std::string text((std::istreambuf_iterator<char>(file)),
                     std::istreambuf_iterator<char>());
    if (!obs::validateJson(text)) {
        std::fprintf(stderr,
                     "error: %s is not well-formed JSON\n",
                     path.c_str());
        return 1;
    }
    for (const char *key :
         {"\"manifest_version\"", "\"engine_version\"",
          "\"config_fingerprint\"", "\"run\"", "\"totals\"",
          "\"rejected\"", "\"metrics\""}) {
        if (text.find(key) == std::string::npos) {
            std::fprintf(stderr,
                         "error: manifest %s lacks required key %s\n",
                         path.c_str(), key);
            return 1;
        }
    }
    std::printf("manifest %s: well-formed JSON, schema v1 keys "
                "present (%zu bytes)\n",
                path.c_str(), text.size());
    return 0;
}

/** `campaign invalidate [stale]`: delete all (or only bad) entries. */
int
cmdCampaignInvalidate(const CliOptions &opts)
{
    bool stale_only = opts.args.size() > 1 && opts.args[1] == "stale";
    if (opts.args.size() > 1 && !stale_only)
        usage(1);
    core::CampaignStore store(opts.store_dir);
    std::size_t removed =
        stale_only ? store.invalidateStale() : store.invalidate();
    std::printf("removed %zu %sentr%s from %s\n", removed,
                stale_only ? "inconsistent " : "",
                removed == 1 ? "y" : "ies", opts.store_dir.c_str());
    return 0;
}

int
cmdCampaign(const CliOptions &opts)
{
    if (opts.args.empty())
        usage(1);
    if (opts.store_dir.empty()) {
        std::fprintf(stderr,
                     "error: campaign %s requires --store DIR\n",
                     opts.args[0].c_str());
        return 1;
    }
    if (opts.args[0] == "run")
        return cmdCampaignRun(opts);
    if (opts.args[0] == "info")
        return cmdCampaignInfo(opts);
    if (opts.args[0] == "invalidate")
        return cmdCampaignInvalidate(opts);
    if (opts.args[0] == "manifest")
        return cmdCampaignManifest(opts);
    usage(1);
}

// ----- serve / query ---------------------------------------------------

/** The live server, for the signal handlers (null outside cmdServe). */
std::atomic<serve::Server *> g_server{nullptr};

/** SIGINT/SIGTERM: begin a graceful drain (async-signal-safe). */
void
handleDrainSignal(int)
{
    serve::Server *server = g_server.load(std::memory_order_acquire);
    if (server)
        server->requestDrain();
}

int
cmdServe(const CliOptions &opts)
{
    serve::ServerConfig config;
    config.host = opts.host;
    config.port = opts.port;
    config.service.characterization.instructions = opts.instructions;
    config.service.characterization.warmup = opts.warmup;
    config.service.characterization.seed_salt = opts.seed_salt;
    config.service.characterization.jobs = opts.jobs;
    config.service.store_dir = opts.store_dir;

    serve::Server server(config);
    std::string error;
    if (!server.start(&error)) {
        std::fprintf(stderr, "error: %s\n", error.c_str());
        return 1;
    }
    g_server.store(&server, std::memory_order_release);
    std::signal(SIGINT, handleDrainSignal);
    std::signal(SIGTERM, handleDrainSignal);

    // Machine-parseable: scripts read the resolved (ephemeral) port
    // from this line.  Flush so a pipe reader sees it immediately.
    std::printf("[speclens-serve] listening host=%s port=%u\n",
                opts.host.c_str(),
                static_cast<unsigned>(server.port()));
    std::fflush(stdout);

    server.serveForever();
    g_server.store(nullptr, std::memory_order_release);

    serve::ServerStats stats = server.stats();
    std::fprintf(stderr,
                 "[speclens-serve] drained requests=%zu errors=%zu "
                 "dropped=%zu\n",
                 stats.requests, stats.errors, stats.dropped);
    return 0;
}

int
cmdQuery(const CliOptions &opts)
{
    if (opts.args.empty())
        usage(1);
    serve::Request request;
    if (!serve::opFromName(opts.args[0], request.op))
        usage(1);
    if (opts.port == 0) {
        std::fprintf(stderr, "error: query requires --port N\n");
        return 1;
    }
    switch (request.op) {
    case serve::Op::Characterize:
    case serve::Op::Memory:
        request.benchmarks.assign(opts.args.begin() + 1,
                                  opts.args.end());
        break;
    case serve::Op::Subset:
        if (opts.args.size() > 1)
            request.category = opts.args[1];
        if (opts.args.size() > 2 &&
            !parsePositional("k", opts.args[2], request.k))
            return 1;
        break;
    case serve::Op::Sensitivity:
        if (opts.args.size() > 1)
            request.metric = opts.args[1];
        break;
    case serve::Op::Stats:
    case serve::Op::Shutdown:
        break;
    }

    serve::Client client;
    std::string error;
    if (!client.connect(opts.host, opts.port, &error)) {
        std::fprintf(stderr, "error: %s\n", error.c_str());
        return 1;
    }
    serve::Response response;
    if (!client.call(request, &response, &error)) {
        std::fprintf(stderr, "error: %s\n", error.c_str());
        return 1;
    }
    if (!response.ok) {
        std::fprintf(stderr, "%s\n", response.error.c_str());
        return 1;
    }
    std::fputs(response.output.c_str(), stdout);
    return 0;
}

/**
 * Highest N among BENCH_<N>.json files in @p dir, or -1 when none
 * exist.  Drives both --pr auto-detection (next PR = highest + 1) and
 * the previous-artifact lookup for the delta table.
 */
int
highestBenchPr(const std::filesystem::path &dir)
{
    int highest = -1;
    std::error_code ec;
    for (const auto &entry :
         std::filesystem::directory_iterator(dir, ec)) {
        std::string name = entry.path().filename().string();
        if (name.size() <= 11 || name.rfind("BENCH_", 0) != 0 ||
            name.substr(name.size() - 5) != ".json")
            continue;
        std::string digits = name.substr(6, name.size() - 11);
        if (digits.empty() ||
            digits.find_first_not_of("0123456789") != std::string::npos)
            continue;
        highest = std::max(highest, std::atoi(digits.c_str()));
    }
    return highest;
}

/**
 * Pull the number following `"key":` out of @p text (enough JSON for
 * the BENCH_* artifacts we write ourselves, v1 and v2 alike).
 */
bool
jsonNumberField(const std::string &text, const std::string &key,
                double &out, std::size_t from = 0)
{
    std::string needle = "\"" + key + "\":";
    std::size_t pos = text.find(needle, from);
    if (pos == std::string::npos)
        return false;
    pos += needle.size();
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos])))
        ++pos;
    char *end = nullptr;
    out = std::strtod(text.c_str() + pos, &end);
    return end != text.c_str() + pos;
}

/**
 * Print a previous-vs-current delta table to stderr (never stdout:
 * rates are timing-dependent, and stdout stays byte-deterministic).
 * Parses both schema v1 (no speedup_vs_seed) and v2 artifacts.
 */
void
printTrajectoryDelta(const std::string &prev_path,
                     const core::TrajectoryResult &r)
{
    std::ifstream in(prev_path);
    if (!in)
        return;
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    // Rates live in the campaign block; searching from there skips the
    // v2 seed_baseline object, whose fields share these key names.
    std::size_t campaign = text.find("\"campaign\"");
    if (campaign == std::string::npos)
        campaign = 0;
    double prev_sims = 0.0, prev_records = 0.0;
    if (!jsonNumberField(text, "simulations_per_second", prev_sims,
                         campaign) ||
        !jsonNumberField(text, "records_per_second", prev_records,
                         campaign) ||
        prev_sims <= 0.0 || prev_records <= 0.0) {
        std::fprintf(stderr,
                     "[speclens-bench] no rates in %s; delta skipped\n",
                     prev_path.c_str());
        return;
    }
    std::fprintf(stderr, "[speclens-bench] delta vs %s:\n",
                 prev_path.c_str());
    std::fprintf(stderr,
                 "  sims/s:    %10.3f -> %10.3f  (%+.1f%%)\n",
                 prev_sims, r.simulations_per_second,
                 (r.simulations_per_second / prev_sims - 1.0) * 100.0);
    std::fprintf(stderr,
                 "  records/s: %10.0f -> %10.0f  (%+.1f%%)\n",
                 prev_records, r.records_per_second,
                 (r.records_per_second / prev_records - 1.0) * 100.0);
    double prev_seed = 0.0;
    if (jsonNumberField(text, "speedup_vs_seed", prev_seed) &&
        prev_seed > 0.0)
        std::fprintf(stderr,
                     "  speedup_vs_seed: %.3fx -> %.3fx\n", prev_seed,
                     r.speedup_vs_seed);
    else
        std::fprintf(stderr,
                     "  speedup_vs_seed: n/a (v1 artifact) -> %.3fx\n",
                     r.speedup_vs_seed);
}

int
cmdBenchTrajectory(const CliOptions &opts)
{
    core::TrajectoryConfig config;
    // The pinned window, not the CLI defaults — explicit flags win.
    config.instructions = opts.instructions_set
                              ? opts.instructions
                              : core::kTrajectoryInstructions;
    config.warmup =
        opts.warmup_set ? opts.warmup : core::kTrajectoryWarmup;
    config.seed_salt = opts.seed_salt;
    config.store_dir = opts.store_dir;

    std::string out_path;
    bool pr_given = false;
    for (std::size_t i = 1; i < opts.args.size(); ++i) {
        const std::string &arg = opts.args[i];
        if (arg == "--pr" || arg == "--out") {
            if (i + 1 >= opts.args.size()) {
                std::fprintf(stderr, "error: %s requires a value\n",
                             arg.c_str());
                return 1;
            }
            if (arg == "--out") {
                out_path = opts.args[++i];
            } else {
                std::size_t pr = 0;
                if (!parsePositional("--pr", opts.args[++i], pr))
                    return 1;
                config.pr = static_cast<int>(pr);
                pr_given = true;
            }
        } else {
            std::fprintf(stderr,
                         "error: bench trajectory: unknown argument "
                         "'%s'\n",
                         arg.c_str());
            return 1;
        }
    }
    if (!pr_given) {
        // No --pr: continue the committed trajectory — one past the
        // highest BENCH_<n>.json in the working directory.
        config.pr = highestBenchPr(".") + 1;
        std::fprintf(stderr,
                     "[speclens-bench] --pr not given; auto-detected "
                     "--pr %d\n",
                     config.pr);
    }
    if (out_path.empty())
        out_path = core::trajectoryArtifactName(config.pr);

    core::TrajectoryResult result = core::runTrajectory(config);

    // Deterministic facts only on stdout: a warm-store rerun must be
    // byte-identical to the cold run there.  Timings go to the JSON
    // artifact and stderr.
    std::fputs(core::renderTrajectoryFacts(result).c_str(), stdout);

    std::string json = core::renderTrajectoryJson(result);
    if (!obs::validateJson(json)) {
        std::fprintf(stderr,
                     "error: rendered trajectory JSON is malformed\n");
        return 1;
    }
    std::ofstream file(out_path);
    file << json;
    if (!file) {
        std::fprintf(stderr, "error: cannot write %s\n",
                     out_path.c_str());
        return 1;
    }
    file.close();
    std::fprintf(stderr,
                 "[speclens-bench] wrote %s: fused=%.3fs "
                 "materialized=%.3fs speedup=%.2fx stats=%.3fs\n",
                 out_path.c_str(), result.fused_seconds,
                 result.materialized_seconds,
                 result.speedup_vs_materialized, result.stats_seconds);

    // Delta table against the most recent earlier artifact (v1 or v2).
    for (int prev = config.pr - 1; prev >= 0; --prev) {
        std::string prev_path = core::trajectoryArtifactName(prev);
        if (std::filesystem::exists(prev_path)) {
            printTrajectoryDelta(prev_path, result);
            break;
        }
    }

    // Exit code doubles as the contract check: parity and (when a
    // store was given) warm reuse must both hold.
    bool ok = result.parity_bit_identical &&
              (!result.store_checked ||
               (result.warm_bit_identical &&
                result.warm_simulations_run == 0));
    return ok ? 0 : 1;
}

int
cmdBench(const CliOptions &opts)
{
    if (opts.args.empty() || opts.args[0] != "trajectory")
        usage(1);
    return cmdBenchTrajectory(opts);
}

// ====================================================================
// audit: run the structural invariant prover over a pinned
// mini-campaign, then prove scheduling determinism by replaying the
// campaign across worker counts and seed salts.
// ====================================================================

std::string
auditHex16(std::uint64_t value)
{
    char buffer[17];
    std::snprintf(buffer, sizeof buffer, "%016llx",
                  static_cast<unsigned long long>(value));
    return buffer;
}

/** Every counter and derived double of @p r, bit-exact. */
void
hashResultForAudit(stats::Fingerprinter &fp,
                   const uarch::SimulationResult &r)
{
    const uarch::PerfCounters &c = r.counters;
    for (std::uint64_t v :
         {c.instructions, c.loads, c.stores, c.branches,
          c.taken_branches, c.fp_ops, c.simd_ops,
          c.kernel_instructions, c.l1d_accesses, c.l1d_misses,
          c.l1i_accesses, c.l1i_misses, c.l2d_accesses, c.l2d_misses,
          c.l2i_accesses, c.l2i_misses, c.l3_accesses, c.l3_misses,
          c.dtlb_accesses, c.dtlb_misses, c.itlb_accesses,
          c.itlb_misses, c.l2tlb_misses, c.page_walks,
          c.branch_mispredictions, c.prefetch_fills, c.prefetch_useful,
          c.prefetch_evicted_unused, c.way_pred_hits,
          c.way_pred_mispredicts, c.dram_accesses, c.dram_row_hits,
          c.dram_busy_cycles, c.dram_budget_cycles})
        fp.u64(v);
    for (double v : r.cpi_stack.components())
        fp.f64(v);
    fp.f64(r.power.core_watts);
    fp.f64(r.power.llc_watts);
    fp.f64(r.power.dram_watts);
}

/** The audit campaign: a pinned benchmark subset on every machine. */
std::vector<suites::BenchmarkInfo>
auditBenchmarks()
{
    // Every 7th CPU2017 entry: six benchmarks spanning INT and FP,
    // small enough that the audited replay matrix (3 job counts x 2
    // salts) stays interactive.
    std::vector<suites::BenchmarkInfo> picked;
    const std::vector<suites::BenchmarkInfo> &all = suites::spec2017();
    for (std::size_t i = 0; i < all.size(); i += 7)
        picked.push_back(all[i]);
    return picked;
}

/**
 * Fingerprint of the full audit campaign run at @p jobs workers.
 * Results are memoised per Characterizer, so each call simulates the
 * whole campaign afresh under its own thread pool.
 */
std::uint64_t
campaignFingerprint(const std::vector<suites::BenchmarkInfo> &benchmarks,
                    const std::vector<uarch::MachineConfig> &machines,
                    const core::CharacterizationConfig &config)
{
    core::Characterizer characterizer(machines, config);
    std::vector<std::size_t> machine_indices;
    for (std::size_t m = 0; m < machines.size(); ++m)
        machine_indices.push_back(m);
    characterizer.prepare(benchmarks, machine_indices, config.jobs);
    stats::Fingerprinter fp;
    fp.tag("speclens-audit-campaign-v1");
    for (const suites::BenchmarkInfo &b : benchmarks)
        for (std::size_t m = 0; m < machines.size(); ++m)
            hashResultForAudit(fp, characterizer.simulation(b, m));
    return fp.value();
}

int
cmdAudit(const CliOptions &opts)
{
    if (!opts.args.empty()) {
        std::fprintf(stderr,
                     "error: audit takes no arguments, got '%s'\n",
                     opts.args[0].c_str());
        return 1;
    }

    // Pinned window unless overridden: large enough to exercise
    // prewarm, warm-up exclusion and sampled mid-run audit points,
    // small enough that 7 replays of the campaign stay fast.
    uarch::SimulationConfig window;
    window.instructions =
        opts.instructions_set ? opts.instructions : 60'000;
    window.warmup = opts.warmup_set ? opts.warmup : 20'000;
    window.seed_salt = opts.seed_salt;

    const std::vector<suites::BenchmarkInfo> benchmarks =
        auditBenchmarks();
    const std::vector<uarch::MachineConfig> machines =
        suites::profilingMachines();

    // -- Stage 1: invariant prover, forced on regardless of build. --
    std::uint64_t audits = 0;
    std::size_t violations = 0;
    std::size_t simulations = 0;
    for (const suites::BenchmarkInfo &b : benchmarks) {
        for (const uarch::MachineConfig &machine : machines) {
            verify::AuditTrail trail;
            (void)uarch::simulateAudited(b.profile, machine, window,
                                         trail);
            ++simulations;
            audits += trail.audits;
            for (const verify::Violation &v : trail.violations)
                std::fprintf(stderr, "audit: %s on %s: %s\n",
                             b.name.c_str(), machine.name.c_str(),
                             verify::renderViolation(v).c_str());
            violations += trail.violations.size();
        }
    }
    std::printf("invariants: %zu simulations, %llu audit points, %zu "
                "violations\n",
                simulations, static_cast<unsigned long long>(audits),
                violations);

    // -- Stage 2: determinism across worker counts and seed salts. --
    // The campaign contract says results are bit-identical for any
    // job count; replay the same configuration at 1, 2 and
    // one-per-hardware-thread workers and diff full-result
    // fingerprints.  Two salts prove the salt both perturbs results
    // and stays deterministic itself.
    bool deterministic = true;
    std::vector<std::uint64_t> salt_fingerprints;
    for (std::uint64_t salt_offset : {0ull, 1ull}) {
        core::CharacterizationConfig config;
        config.instructions = window.instructions;
        config.warmup = window.warmup;
        config.seed_salt = opts.seed_salt + salt_offset;
        std::uint64_t first = 0;
        bool agree = true;
        for (std::size_t jobs : {std::size_t{1}, std::size_t{2},
                                 std::size_t{0}}) {
            config.jobs = jobs;
            std::uint64_t fp =
                campaignFingerprint(benchmarks, machines, config);
            if (jobs == 1)
                first = fp;
            else if (fp != first) {
                agree = false;
                std::fprintf(stderr,
                             "audit: salt %llu: --jobs %zu diverged: "
                             "%s != %s\n",
                             static_cast<unsigned long long>(
                                 config.seed_salt),
                             jobs, auditHex16(fp).c_str(),
                             auditHex16(first).c_str());
            }
        }
        std::printf("determinism: salt %llu: jobs {1, 2, auto} %s "
                    "(fingerprint %s)\n",
                    static_cast<unsigned long long>(config.seed_salt),
                    agree ? "agree" : "DIVERGED",
                    auditHex16(first).c_str());
        deterministic = deterministic && agree;
        salt_fingerprints.push_back(first);
    }
    if (salt_fingerprints[0] == salt_fingerprints[1]) {
        std::fprintf(stderr,
                     "audit: distinct seed salts produced identical "
                     "results; the salt is not reaching the "
                     "generator\n");
        deterministic = false;
    }

    bool ok = violations == 0 && deterministic;
    std::printf("audit: %s\n", ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
}

int
cmdLint(const CliOptions &opts)
{
    // lint is a verification gate: a stray token is more likely a
    // misspelled flag than an intentional argument, so fail loudly
    // instead of silently linting with default settings.
    if (!opts.args.empty()) {
        std::fprintf(stderr, "error: lint takes no arguments, got '%s'\n",
                     opts.args[0].c_str());
        return 1;
    }

    lint::ReportFormat format;
    lint::Severity min_severity;
    try {
        format = lint::reportFormatFromName(opts.format);
        min_severity = lint::severityFromName(opts.severity);
    } catch (const std::invalid_argument &ex) {
        std::fprintf(stderr, "error: %s\n", ex.what());
        return 1;
    }

    lint::LintContext context = lint::shippedContext();
    context.deep = opts.deep;
    context.instructions = opts.instructions;
    context.warmup = opts.warmup;
    context.jobs = opts.jobs;
    context.store_dir = opts.store_dir;
    context.bench_dir = opts.bench_dir;

    lint::LintReport report = lint::Linter().run(context);
    std::string rendered =
        format == lint::ReportFormat::Json
            ? lint::renderJson(report, min_severity)
            : lint::renderText(report, min_severity);
    std::fputs(rendered.c_str(), stdout);

    // Exit code reflects the unfiltered error count: a severity filter
    // changes what is displayed, never what fails.
    return report.clean() ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    CliOptions opts = parse(argc, argv);
    if (opts.command == "list")
        return cmdList(opts);
    if (opts.command == "machines")
        return cmdMachines();
    if (opts.command == "characterize")
        return cmdCharacterize(opts);
    if (opts.command == "memory")
        return cmdMemory(opts);
    if (opts.command == "subset")
        return cmdSubset(opts);
    if (opts.command == "inputs")
        return cmdInputs(opts);
    if (opts.command == "coverage")
        return cmdCoverage(opts);
    if (opts.command == "sensitivity")
        return cmdSensitivity(opts);
    if (opts.command == "export")
        return cmdExport(opts);
    if (opts.command == "report")
        return cmdReport(opts);
    if (opts.command == "simpoints")
        return cmdSimpoints(opts);
    if (opts.command == "campaign")
        return cmdCampaign(opts);
    if (opts.command == "serve")
        return cmdServe(opts);
    if (opts.command == "query")
        return cmdQuery(opts);
    if (opts.command == "bench")
        return cmdBench(opts);
    if (opts.command == "audit")
        return cmdAudit(opts);
    if (opts.command == "lint")
        return cmdLint(opts);
    if (opts.command == "help" || opts.command == "--help")
        usage(0);
    std::fprintf(stderr, "unknown command: %s\n", opts.command.c_str());
    usage(1);
}
