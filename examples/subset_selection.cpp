/**
 * @file
 * Full subset-selection workflow for a simulation-time budget:
 * given a sub-suite and the number of benchmarks you can afford to
 * simulate, derive the representative subset, report the clusters, and
 * validate the subset's score-prediction accuracy against the
 * commercial-system database — the complete Section IV loop of the
 * paper as a library user would run it.
 *
 * Usage: subset_selection [speed-int|rate-int|speed-fp|rate-fp] [k]
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/characterization.h"
#include "core/report.h"
#include "core/similarity.h"
#include "core/subsetting.h"
#include "core/validation.h"
#include "suites/machines.h"
#include "suites/score_database.h"
#include "suites/spec2017.h"

using namespace speclens;

int
main(int argc, char **argv)
{
    std::string category = argc > 1 ? argv[1] : "rate-int";
    std::size_t budget =
        argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 3;

    std::vector<suites::BenchmarkInfo> suite;
    suites::Category cat;
    if (category == "speed-int") {
        suite = suites::spec2017SpeedInt();
        cat = suites::Category::SpeedInt;
    } else if (category == "rate-int") {
        suite = suites::spec2017RateInt();
        cat = suites::Category::RateInt;
    } else if (category == "speed-fp") {
        suite = suites::spec2017SpeedFp();
        cat = suites::Category::SpeedFp;
    } else if (category == "rate-fp") {
        suite = suites::spec2017RateFp();
        cat = suites::Category::RateFp;
    } else {
        std::fprintf(stderr,
                     "usage: %s [speed-int|rate-int|speed-fp|rate-fp] "
                     "[subset-size]\n",
                     argv[0]);
        return 1;
    }
    if (budget < 1 || budget > suite.size()) {
        std::fprintf(stderr, "subset size must be in [1, %zu]\n",
                     suite.size());
        return 1;
    }

    std::printf("Selecting %zu of %zu %s benchmarks...\n\n", budget,
                suite.size(), category.c_str());

    core::Characterizer characterizer(suites::profilingMachines());
    core::SimilarityResult sim = core::analyzeSimilarity(
        characterizer.featureMatrix(suite),
        suites::benchmarkNames(suite));
    core::SubsetResult subset = core::selectSubset(
        sim, budget, core::RepresentativeRule::ShortestLinkage, suite);

    for (std::size_t c = 0; c < subset.clusters.size(); ++c) {
        std::printf("cluster %zu -> representative %s\n", c + 1,
                    subset.representatives[c].c_str());
        for (const std::string &name : subset.clusters[c])
            std::printf("    %s%s\n", name.c_str(),
                        name == subset.representatives[c] ? "  (*)"
                                                          : "");
    }
    std::printf("\nSimulation-time reduction: %.1fx\n",
                subset.simulation_time_reduction);

    // How well does the subset predict full-suite scores?
    suites::ScoreDatabase db;
    core::ValidationResult validation =
        core::validateSubset(suite, subset.representatives, cat, db);
    core::TextTable table(
        {"System", "Full score", "Subset score", "Error (%)"});
    for (const core::SystemValidation &v : validation.per_system)
        table.addRow({v.system, core::TextTable::num(v.full_score),
                      core::TextTable::num(v.subset_score),
                      core::TextTable::num(v.error_pct, 1)});
    std::printf("\n%s", table.render().c_str());
    std::printf("Average error %.1f%% (accuracy %.1f%%)\n",
                validation.avg_error_pct,
                100.0 - validation.avg_error_pct);
    return 0;
}
