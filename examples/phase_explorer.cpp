/**
 * @file
 * Phase-level simulation budgeting: how many execution phases does a
 * workload really have, and how cheaply can they stand in for the
 * whole run?
 *
 * The example derives a phased version of 502.gcc_r (parse / optimise
 * / emit -style behaviour drift), then sweeps the number of SimPoint
 * clusters from 1 to the phase count and reports the accuracy /
 * simulation-cost trade-off — the within-benchmark counterpart of the
 * subset-size sweep in subset_selection.cpp.
 */

#include <cstdio>

#include "core/phase_analysis.h"
#include "core/report.h"
#include "suites/machines.h"
#include "suites/spec2017.h"
#include "trace/phased_workload.h"

using namespace speclens;

int
main(int argc, char **argv)
{
    const char *benchmark = argc > 1 ? argv[1] : "502.gcc_r";
    const std::size_t num_phases = 8;

    const auto &base = suites::spec2017Benchmark(benchmark);
    trace::PhasedWorkload workload =
        trace::derivePhases(base.profile, num_phases, 0.35);

    std::printf("%s modelled as %zu phases (weights:", benchmark,
                num_phases);
    for (const trace::Phase &phase : workload.phases)
        std::printf(" %.0f%%", 100.0 * phase.weight);
    std::printf(")\n\n");

    core::TextTable table({"Clusters", "Estimated CPI", "Full CPI",
                           "CPI error (%)", "L1D error (%)",
                           "Simulated share"});
    for (std::size_t k = 1; k <= num_phases; ++k) {
        core::SimPointConfig config;
        config.clusters = k;
        core::SimPointResult result = core::simpointEstimate(
            workload, suites::skylakeMachine(), config);
        table.addRow(
            {std::to_string(k),
             core::TextTable::num(result.estimated_cpi),
             core::TextTable::num(result.full_cpi),
             core::TextTable::num(result.cpi_error_pct, 1),
             core::TextTable::num(result.l1d_error_pct, 1),
             core::TextTable::num(100.0 * result.simulated_fraction,
                                  0) +
                 "%"});
    }
    std::fputs(table.render().c_str(), stdout);
    std::printf(
        "\nRead the elbow: past a handful of clusters the metric "
        "errors stop improving —\nthat is the workload's true phase "
        "count.  A residual CPI gap that does not\nclose with more "
        "clusters is phase-transition warm-up cost: the full run pays\n"
        "for refilling caches at every phase switch, which isolated "
        "phase probes never\nsee.  Real SimPoint deployments amortise "
        "it with much longer intervals;\nhere it is visible because "
        "the demo windows are tiny.\n");
    return 0;
}
