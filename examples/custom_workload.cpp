/**
 * @file
 * Positioning a *new* workload against SPEC CPU2017 — the Section V
 * case-study methodology as a reusable recipe.
 *
 * A user with their own application models it as a WorkloadProfile
 * (instruction mix + working sets + branch behaviour), then asks:
 * which CPU2017 benchmarks behave like my code, and is my code's
 * behaviour covered by the suite at all?  This example models a
 * hypothetical in-memory key-value store and answers both questions.
 */

#include <algorithm>
#include <cstdio>

#include "core/balance.h"
#include "core/characterization.h"
#include "core/similarity.h"
#include "suites/machines.h"
#include "suites/spec2017.h"
#include "trace/workload_profile.h"

using namespace speclens;

namespace {

/** Hand-built model of an in-memory key-value store's hot loop. */
suites::BenchmarkInfo
keyValueStore()
{
    trace::WorkloadProfile p;
    p.name = "kvstore";
    p.dynamic_instructions_billions = 300;

    // Hash-probe heavy: many loads, few stores, moderate branching.
    p.mix.load = 0.33;
    p.mix.store = 0.08;
    p.mix.branch = 0.16;

    // A small hot index plus a large hash table touched one line per
    // bucket: page-sparse, cache-sparse accesses.
    p.memory.data[0] = {24 * 1024.0, 0.90, 0.1, 64};
    p.memory.data[1] = {192 * 1024.0, 0.05, 0.0, 64};
    p.memory.data[2] = {2 * 1024 * 1024.0, 0.02, 0.0, 64};
    p.memory.data[3] = {96 * 1024 * 1024.0, 0.03, 0.0, 4096};

    // Server-style code footprint with a warm request path.
    p.memory.code_bytes = 640 * 1024;
    p.memory.hot_code_bytes = 24 * 1024;
    p.memory.code_locality = 0.93;

    // Data-dependent comparisons: moderately hard branches.
    p.branch.static_branches = 1024;
    p.branch.biased_fraction = 0.90;
    p.branch.patterned_fraction = 0.3;
    p.branch.taken_fraction = 0.60;

    p.exec.base_cpi = 0.35;
    p.exec.dependency_cpi = 0.08;
    p.exec.mlp = 1.8;
    p.exec.kernel_fraction = 0.12; // syscalls on the request path

    p.validate();

    suites::BenchmarkInfo info;
    info.name = p.name;
    info.suite = suites::Suite::Emerging;
    info.category = suites::Category::Other;
    info.domain = suites::Domain::Database;
    info.language = suites::Language::Cpp;
    info.profile = p;
    return info;
}

} // namespace

int
main()
{
    suites::BenchmarkInfo kvstore = keyValueStore();
    core::Characterizer characterizer(suites::profilingMachines());

    // What does the workload look like on the reference Skylake?
    core::MetricVector mv = characterizer.metrics(kvstore, 0);
    std::printf("kvstore on Skylake:\n"
                "  L1D MPKI %.1f | L1I MPKI %.1f | L3 MPKI %.1f\n"
                "  D-TLB MPMI %.0f | page walks/MI %.0f\n"
                "  branch MPKI %.1f\n\n",
                mv.get(core::Metric::L1dMpki),
                mv.get(core::Metric::L1iMpki),
                mv.get(core::Metric::L3Mpki),
                mv.get(core::Metric::DtlbMpmi),
                mv.get(core::Metric::PageWalkMpmi),
                mv.get(core::Metric::BranchMpki));

    // Nearest CPU2017 neighbours in the joint PC space.
    std::vector<suites::BenchmarkInfo> joint = suites::spec2017();
    joint.push_back(kvstore);
    core::SimilarityResult sim = core::analyzeSimilarity(
        characterizer.featureMatrix(joint),
        suites::benchmarkNames(joint));

    std::size_t kv = sim.indexOf("kvstore");
    std::vector<std::pair<double, std::string>> neighbours;
    for (std::size_t i = 0; i + 1 < joint.size(); ++i)
        neighbours.emplace_back(sim.pcDistance(kv, i), joint[i].name);
    std::sort(neighbours.begin(), neighbours.end());

    std::printf("Closest CPU2017 benchmarks:\n");
    for (int i = 0; i < 5; ++i)
        std::printf("  %-18s distance %.2f\n",
                    neighbours[static_cast<std::size_t>(i)].second.c_str(),
                    neighbours[static_cast<std::size_t>(i)].first);

    // Formal coverage verdict (Section V methodology).
    auto verdicts = core::coverageAnalysis(
        characterizer, suites::spec2017(), {kvstore});
    std::printf("\nCoverage verdict: kvstore is %s by CPU2017 "
                "(nearest %s at %.2f)\n",
                verdicts[0].covered ? "COVERED" : "NOT covered",
                verdicts[0].nearest.c_str(), verdicts[0].nn_distance);
    std::printf("=> %s\n",
                verdicts[0].covered
                    ? "design studies can proxy this workload with the "
                      "benchmarks above."
                    : "SPEC CPU2017 results will not predict this "
                      "workload; measure it directly.");
    return 0;
}
