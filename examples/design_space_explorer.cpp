/**
 * @file
 * Pre-silicon design-space exploration with a representative subset —
 * the use case the paper's subsetting exists for.
 *
 * An architect sweeps L1D capacity and branch-predictor design on a
 * derivative of the Skylake config.  Simulating all 10 SPECrate INT
 * benchmarks per design point is the "expensive" baseline; the
 * 3-benchmark subset gives nearly the same design ranking at a
 * fraction of the cost.
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/characterization.h"
#include "core/report.h"
#include "core/similarity.h"
#include "core/subsetting.h"
#include "stats/descriptive.h"
#include "suites/machines.h"
#include "suites/spec2017.h"
#include "uarch/simulation.h"

using namespace speclens;

namespace {

/** Geometric-mean IPC of a benchmark list on a machine. */
double
geomeanIpc(const std::vector<suites::BenchmarkInfo> &benchmarks,
           const uarch::MachineConfig &machine)
{
    std::vector<double> ipcs;
    uarch::SimulationConfig config;
    config.instructions = 80'000;
    config.warmup = 20'000;
    for (const suites::BenchmarkInfo &b : benchmarks)
        ipcs.push_back(
            uarch::simulate(b.profile, machine, config).ipc());
    return stats::geometricMean(ipcs);
}

} // namespace

int
main()
{
    auto suite = suites::spec2017RateInt();

    // Derive the representative subset once, on the stock machines.
    core::Characterizer characterizer(suites::profilingMachines());
    core::SimilarityResult sim = core::analyzeSimilarity(
        characterizer.featureMatrix(suite),
        suites::benchmarkNames(suite));
    core::SubsetResult subset = core::selectSubset(
        sim, 3, core::RepresentativeRule::ShortestLinkage, suite);

    std::vector<suites::BenchmarkInfo> subset_benchmarks;
    for (const std::string &name : subset.representatives)
        subset_benchmarks.push_back(
            suites::findBenchmark(suite, name));

    std::printf("Representative subset:");
    for (const std::string &name : subset.representatives)
        std::printf(" %s", name.c_str());
    std::printf("\n\n");

    // Design points: L1D capacity x predictor sophistication.
    struct DesignPoint
    {
        std::string name;
        std::uint64_t l1d_kib;
        uarch::PredictorKind predictor;
    };
    std::vector<DesignPoint> designs = {
        {"A: 32K L1D, bimodal", 32, uarch::PredictorKind::Bimodal},
        {"B: 32K L1D, TAGE", 32, uarch::PredictorKind::TageLite},
        {"C: 64K L1D, bimodal", 64, uarch::PredictorKind::Bimodal},
        {"D: 64K L1D, TAGE", 64, uarch::PredictorKind::TageLite},
        {"E: 16K L1D, TAGE", 16, uarch::PredictorKind::TageLite},
    };

    core::TextTable table({"Design", "IPC (full suite)", "IPC (subset)",
                           "Subset error (%)"});
    std::vector<std::pair<double, std::string>> full_rank, subset_rank;
    for (const DesignPoint &design : designs) {
        uarch::MachineConfig machine = suites::skylakeMachine();
        machine.name = design.name;
        machine.caches.l1d.size_bytes = design.l1d_kib * 1024;
        machine.predictor = design.predictor;

        double full = geomeanIpc(suite, machine);
        double sampled = geomeanIpc(subset_benchmarks, machine);
        full_rank.emplace_back(full, design.name);
        subset_rank.emplace_back(sampled, design.name);
        table.addRow({design.name, core::TextTable::num(full, 3),
                      core::TextTable::num(sampled, 3),
                      core::TextTable::num(
                          100.0 * std::fabs(sampled - full) / full,
                          1)});
    }
    std::fputs(table.render().c_str(), stdout);

    // Does the subset preserve the design ranking?
    std::sort(full_rank.rbegin(), full_rank.rend());
    std::sort(subset_rank.rbegin(), subset_rank.rend());
    std::printf("\nDesign ranking (best first):\n  full suite: ");
    for (const auto &[ipc, name] : full_rank)
        std::printf("%c ", name[0]);
    std::printf("\n  subset:     ");
    for (const auto &[ipc, name] : subset_rank)
        std::printf("%c ", name[0]);
    std::printf("\n");
    std::printf("%s\n", full_rank == subset_rank
                            ? "=> identical ranking at ~3.3x less "
                              "simulation."
                            : "=> rankings differ; inspect the "
                              "disagreeing design pair.");
    return 0;
}
