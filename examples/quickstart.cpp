/**
 * @file
 * SpecLens quickstart: characterize a handful of benchmarks on the
 * seven Table IV machines, run the PCA + clustering similarity
 * pipeline, print the dendrogram and pick a 2-benchmark subset.
 *
 * Build and run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "core/characterization.h"
#include "core/similarity.h"
#include "core/subsetting.h"
#include "suites/machines.h"
#include "suites/spec2017.h"

using namespace speclens;

int
main()
{
    // 1. Pick some benchmarks.  The full CPU2017 database is built in;
    //    here we take five with very different personalities.
    std::vector<suites::BenchmarkInfo> benchmarks = {
        suites::spec2017Benchmark("505.mcf_r"),      // memory monster
        suites::spec2017Benchmark("541.leela_r"),    // branch-limited
        suites::spec2017Benchmark("548.exchange2_r"), // core-bound
        suites::spec2017Benchmark("519.lbm_r"),      // FP streaming
        suites::spec2017Benchmark("507.cactuBSSN_r"), // L1/TLB hostile
    };

    // 2. "Measure" them: each benchmark runs on all seven machines and
    //    yields 20 metrics per machine (cache/TLB/branch/mix/power).
    core::Characterizer characterizer(suites::profilingMachines());
    stats::Matrix features = characterizer.featureMatrix(benchmarks);
    std::printf("Feature matrix: %zu benchmarks x %zu metrics\n",
                features.rows(), features.cols());

    // 3. Similarity pipeline: z-score, PCA (Kaiser criterion),
    //    hierarchical clustering in PC space.
    core::SimilarityResult sim = core::analyzeSimilarity(
        features, suites::benchmarkNames(benchmarks));
    std::printf("PCA retained %zu components covering %.1f%% of "
                "variance\n\n",
                sim.pca.retained, 100.0 * sim.pca.variance_covered);
    std::fputs(sim.renderDendrogram().c_str(), stdout);

    // 4. Which benchmark is the odd one out?
    std::printf("\nMost distinct benchmark: %s\n",
                sim.labels[sim.mostDistinct()].c_str());

    // 5. Subset selection: cut the dendrogram into two clusters and
    //    keep one representative per cluster.
    core::SubsetResult subset = core::selectSubset(
        sim, 2, core::RepresentativeRule::ShortestLinkage, benchmarks);
    std::printf("\n2-benchmark subset (cut at linkage distance %.2f, "
                "%.1fx less simulation):\n",
                subset.cut_height, subset.simulation_time_reduction);
    for (const std::string &name : subset.representatives)
        std::printf("  %s\n", name.c_str());
    return 0;
}
