/**
 * @file
 * Choosing a representative input set (the Section IV-C workflow).
 *
 * Simulating every reference input of gcc_r quintuples the simulation
 * bill; this example expands the multi-input CPU2017 INT benchmarks
 * into their input variants, measures them, and picks the input whose
 * behaviour is closest to the all-inputs aggregate.
 */

#include <cstdio>

#include "core/characterization.h"
#include "core/input_set_analysis.h"
#include "core/report.h"
#include "suites/input_sets.h"
#include "suites/spec2017.h"
#include "suites/machines.h"

using namespace speclens;

int
main()
{
    core::Characterizer characterizer(suites::profilingMachines());

    auto groups = suites::inputSetGroupsInt();
    std::printf("Analyzing %zu INT benchmarks (with input-set "
                "variants)...\n\n",
                groups.size());

    core::InputSetAnalysis analysis =
        core::analyzeInputSets(characterizer, groups);

    core::TextTable table({"Benchmark", "Inputs", "Chosen input",
                           "Dist. to aggregate", "Group spread"});
    for (const core::RepresentativeInput &rep :
         analysis.representatives) {
        table.addRow({rep.benchmark,
                      std::to_string(
                          suites::inputSetCount(rep.benchmark)),
                      std::to_string(rep.input_index),
                      core::TextTable::num(rep.distance_to_aggregate),
                      core::TextTable::num(rep.group_spread)});
    }
    std::fputs(table.render().c_str(), stdout);

    std::printf("\nScale check: the largest within-benchmark spread is "
                "%.2f while distinct\nbenchmarks sit %.2f apart "
                "(median) — one input per benchmark is enough.\n",
                analysis.max_within_group_spread,
                analysis.median_cross_benchmark_distance);

    // The contrast case the paper cites: CPU2006 gcc had genuinely
    // diverse inputs.  Model it with the wide perturbation setting.
    const suites::BenchmarkInfo &gcc =
        suites::findBenchmark(suites::spec2017(), "502.gcc_r");
    suites::InputSetGroup wide =
        suites::expandInputSets(gcc, suites::kCpu2006GccSpread);
    std::vector<suites::InputSetGroup> wide_groups = {wide};
    core::InputSetAnalysis wide_analysis =
        core::analyzeInputSets(characterizer, wide_groups);
    double cpu2017_gcc_spread = 0.0;
    for (const core::RepresentativeInput &rep : analysis.representatives)
        if (rep.benchmark == "502.gcc_r")
            cpu2017_gcc_spread = rep.group_spread;
    std::printf("\nCPU2006-style gcc inputs (wide spread): group "
                "spread %.2f vs %.2f for the\nCPU2017 inputs — the "
                "paper's \"more pronounced variations\" contrast.\n",
                wide_analysis.representatives[0].group_spread,
                cpu2017_gcc_spread);
    return 0;
}
