/**
 * @file
 * Serving-layer tests (ctest label `serve`).
 *
 * Covers the shared-core concurrency contracts the daemon is built
 * on: the sharded store serves parallel mixed read/write traffic with
 * byte-identical files to a serial run, the in-memory result LRU
 * stays within its bounds, two concurrent identical queries share
 * exactly one simulation, the wire protocol round-trips hostile
 * strings, daemon responses are byte-identical to direct query-op
 * rendering, a warm store answers queries with zero simulations, and
 * a graceful drain drops nothing.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/artifact_store.h"
#include "core/characterization.h"
#include "core/query_ops.h"
#include "core/service_context.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "suites/machines.h"
#include "suites/spec2017.h"
#include "uarch/simulation.h"

using namespace speclens;

namespace {

/** Fresh (pre-cleaned) store directory unique to one test. */
std::string
storeDir(const std::string &test)
{
    std::filesystem::path dir =
        std::filesystem::temp_directory_path() /
        ("speclens_serve_test_" + test);
    std::filesystem::remove_all(dir);
    return dir.string();
}

/** Tiny window so the cross products stay fast. */
uarch::SimulationConfig
tinyWindow()
{
    uarch::SimulationConfig config;
    config.instructions = 2'000;
    config.warmup = 500;
    return config;
}

core::ServiceConfig
tinyServiceConfig(const std::string &store = "")
{
    core::ServiceConfig config;
    config.characterization.instructions = 2'000;
    config.characterization.warmup = 500;
    config.store_dir = store;
    return config;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
}

/** The sharded on-disk path of @p key under @p dir. */
std::string
shardedPath(const std::string &dir, const core::StoreKey &key)
{
    char hex[17];
    std::snprintf(hex, sizeof(hex), "%016llx",
                  static_cast<unsigned long long>(key.fingerprint));
    return dir + "/" +
           core::storeShardDirName(
               core::storeShardIndex(key.fingerprint)) +
           "/" + hex + ".slart";
}

/** Start @p server's accept loop on a background thread. */
std::thread
serveOnThread(serve::Server &server)
{
    return std::thread([&server]() { server.serveForever(); });
}

} // namespace

// Eight threads hammering one sharded store with mixed save/load
// traffic must leave exactly the same files on disk as a serial
// single-threaded campaign over the same pairs.
TEST(ShardedStore, ParallelMixedTrafficMatchesSerialStoreBytes)
{
    const uarch::SimulationConfig window = tinyWindow();
    const auto &machines = suites::profilingMachines();
    std::vector<suites::BenchmarkInfo> benchmarks =
        suites::spec2017();
    benchmarks.resize(16);

    // Serial reference.
    const std::string serial_dir = storeDir("parity_serial");
    {
        core::CampaignStore store(serial_dir);
        for (const auto &benchmark : benchmarks)
            for (const auto &machine : machines)
                core::storedSimulate(&store, benchmark.profile,
                                     machine, window);
    }

    // Parallel: 8 threads interleave saves (fresh simulate) and loads
    // across all shards.
    const std::string parallel_dir = storeDir("parity_parallel");
    {
        core::CampaignStore store(parallel_dir);
        std::vector<std::thread> threads;
        for (std::size_t t = 0; t < 8; ++t) {
            threads.emplace_back([&, t]() {
                for (std::size_t i = t; i < benchmarks.size();
                     i += 8) {
                    for (const auto &machine : machines)
                        core::storedSimulate(&store,
                                             benchmarks[i].profile,
                                             machine, window);
                }
                // Re-load a stride of everyone's entries (read side
                // of the mixed traffic; misses are fine while other
                // threads are still writing).
                for (std::size_t i = 0; i < benchmarks.size(); ++i) {
                    core::StoreKey key = core::makeStoreKey(
                        benchmarks[i].profile, machines[t % machines.size()],
                        window);
                    uarch::SimulationResult result;
                    store.load(key, result);
                }
            });
        }
        for (std::thread &thread : threads)
            thread.join();
    }

    std::size_t compared = 0;
    for (const auto &benchmark : benchmarks)
        for (const auto &machine : machines) {
            core::StoreKey key = core::makeStoreKey(
                benchmark.profile, machine, window);
            std::string serial_bytes =
                readFile(shardedPath(serial_dir, key));
            std::string parallel_bytes =
                readFile(shardedPath(parallel_dir, key));
            ASSERT_FALSE(serial_bytes.empty()) << benchmark.name;
            EXPECT_EQ(serial_bytes, parallel_bytes)
                << benchmark.name << " on " << machine.name;
            ++compared;
        }
    EXPECT_EQ(compared, benchmarks.size() * machines.size());

    std::filesystem::remove_all(serial_dir);
    std::filesystem::remove_all(parallel_dir);
}

// Every entry must land in the shard its fingerprint's top nibble
// names, and a pre-shard flat-layout entry left in the store root
// must still load (legacy fallback).
TEST(ShardedStore, EntriesLandInFingerprintShardAndLegacyRootLoads)
{
    const std::string dir = storeDir("layout");
    const uarch::SimulationConfig window = tinyWindow();
    const auto &benchmark = suites::spec2017().front();
    const auto &machine = suites::profilingMachines().front();

    core::StoreKey key =
        core::makeStoreKey(benchmark.profile, machine, window);
    {
        core::CampaignStore store(dir);
        core::storedSimulate(&store, benchmark.profile, machine,
                             window);
        EXPECT_TRUE(std::filesystem::exists(shardedPath(dir, key)));

        // Demote the entry to the pre-shard flat layout.
        std::filesystem::path flat =
            std::filesystem::path(dir) /
            std::filesystem::path(shardedPath(dir, key)).filename();
        std::filesystem::rename(shardedPath(dir, key), flat);
    }
    core::CampaignStore reopened(dir);
    uarch::SimulationResult result;
    EXPECT_EQ(reopened.load(key, result), core::StoreStatus::Hit);
    EXPECT_EQ(reopened.counters().hits, 1u);
    std::filesystem::remove_all(dir);
}

// The in-memory result LRU never exceeds its configured capacity, and
// eviction / hit counters move.
TEST(ShardedStore, LruStaysBoundedAndCountsHitsAndEvictions)
{
    const std::string dir = storeDir("lru");
    const uarch::SimulationConfig window = tinyWindow();
    const auto &machines = suites::profilingMachines();
    std::vector<suites::BenchmarkInfo> benchmarks =
        suites::spec2017();
    benchmarks.resize(12);

    const std::size_t capacity = 16;
    core::CampaignStore store(dir, capacity);
    EXPECT_EQ(store.lruCapacity(), capacity);

    for (const auto &benchmark : benchmarks)
        for (const auto &machine : machines)
            core::storedSimulate(&store, benchmark.profile, machine,
                                 window);
    EXPECT_EQ(store.lruSize(), 0u) << "save must not populate the LRU";

    // Load everything twice: first pass fills (and overflows) the
    // LRU from disk, second pass gets at least some LRU hits.
    for (int pass = 0; pass < 2; ++pass)
        for (const auto &benchmark : benchmarks)
            for (const auto &machine : machines) {
                core::StoreKey key = core::makeStoreKey(
                    benchmark.profile, machine, window);
                uarch::SimulationResult result;
                ASSERT_EQ(store.load(key, result),
                          core::StoreStatus::Hit);
            }

    EXPECT_LE(store.lruSize(), capacity);
    EXPECT_GT(store.counters().lru_evictions, 0u);
    // 84 entries > 16 slots: consecutive same-key loads are not in
    // the access pattern, but per-shard recency means *some* reload
    // lands in cache; assert on an explicit immediate re-load.
    core::StoreKey key = core::makeStoreKey(
        benchmarks.front().profile, machines.front(), window);
    uarch::SimulationResult result;
    ASSERT_EQ(store.load(key, result), core::StoreStatus::Hit);
    std::size_t before = store.counters().lru_hits;
    ASSERT_EQ(store.load(key, result), core::StoreStatus::Hit);
    EXPECT_GT(store.counters().lru_hits, before);
    std::filesystem::remove_all(dir);
}

// An LRU-cached result whose backing file was truncated after caching
// must be revalidated against the disk (size check) and recomputed —
// the cache must never outlive the artifact it mirrors.
TEST(ShardedStore, LruRevalidatesBackingFileSize)
{
    const std::string dir = storeDir("lru_revalidate");
    const uarch::SimulationConfig window = tinyWindow();
    const auto &benchmark = suites::spec2017().front();
    const auto &machine = suites::profilingMachines().front();

    core::CampaignStore store(dir);
    core::storedSimulate(&store, benchmark.profile, machine, window);
    core::StoreKey key =
        core::makeStoreKey(benchmark.profile, machine, window);
    uarch::SimulationResult result;
    ASSERT_EQ(store.load(key, result), core::StoreStatus::Hit);
    ASSERT_EQ(store.lruSize(), 1u);

    std::filesystem::resize_file(shardedPath(dir, key), 20);
    EXPECT_EQ(store.load(key, result), core::StoreStatus::Corrupt);
    std::filesystem::remove_all(dir);
}

// Two concurrent identical queries against one shared Characterizer
// must run exactly one simulation: one thread simulates, the other
// blocks on the in-flight future and shares the result.
TEST(ServiceContext, ConcurrentIdenticalQueriesShareOneSimulation)
{
    core::ServiceContext context(tinyServiceConfig());
    std::vector<uarch::MachineConfig> one_machine = {
        suites::profilingMachines().front()};
    core::Characterizer &characterizer =
        context.characterizerFor(one_machine);
    const auto &benchmark = suites::spec2017().front();

    std::atomic<int> ready{0};
    auto race = [&]() {
        ready.fetch_add(1);
        while (ready.load() < 2) {
        } // spin: maximise overlap
        characterizer.simulation(benchmark, 0);
    };
    std::thread a(race), b(race);
    a.join();
    b.join();
    EXPECT_EQ(context.simulationsRun(), 1u);
}

// The same machine set requested twice must yield the same pooled
// Characterizer; a different set gets its own.
TEST(ServiceContext, PoolsCharacterizersByMachineSet)
{
    core::ServiceContext context(tinyServiceConfig());
    core::Characterizer &a =
        context.characterizerFor(context.profilingMachines());
    core::Characterizer &b =
        context.characterizerFor(context.profilingMachines());
    core::Characterizer &c =
        context.characterizerFor(context.sensitivityMachines());
    EXPECT_EQ(&a, &b);
    EXPECT_NE(&a, &c);
}

// The registry indexes every shipped suite by CLI-visible name.
TEST(ServiceContext, RegistryFindsBenchmarksAcrossSuites)
{
    core::ServiceContext context(tinyServiceConfig());
    ASSERT_NE(context.findBenchmark("505.mcf_r"), nullptr);
    EXPECT_EQ(context.findBenchmark("505.mcf_r")->name, "505.mcf_r");
    EXPECT_EQ(context.findBenchmark("no-such-benchmark"), nullptr);
    EXPECT_FALSE(context.cpu2017().empty());
    EXPECT_FALSE(context.cpu2006().empty());
}

// Wire protocol: requests and responses round-trip, including strings
// full of JSON-hostile bytes.
TEST(Protocol, RequestRoundTripsHostileStrings)
{
    serve::Request request;
    request.op = serve::Op::Characterize;
    request.benchmarks = {"505.mcf_r", "with \"quotes\"\n\tand\\back",
                          std::string("nul\x01byte")};
    serve::Request decoded;
    std::string error;
    ASSERT_TRUE(serve::decodeRequest(serve::encodeRequest(request),
                                     decoded, error))
        << error;
    EXPECT_EQ(decoded.op, serve::Op::Characterize);
    EXPECT_EQ(decoded.benchmarks, request.benchmarks);

    serve::Request subset;
    subset.op = serve::Op::Subset;
    subset.category = "rate-int";
    subset.k = 7;
    ASSERT_TRUE(serve::decodeRequest(serve::encodeRequest(subset),
                                     decoded, error));
    EXPECT_EQ(decoded.op, serve::Op::Subset);
    EXPECT_EQ(decoded.category, "rate-int");
    EXPECT_EQ(decoded.k, 7u);
}

TEST(Protocol, ResponseRoundTripsAndRejectsMalformed)
{
    serve::Response response;
    response.ok = true;
    response.output = "line one\nline \"two\"\t\\end\n";
    serve::Response decoded;
    std::string error;
    ASSERT_TRUE(serve::decodeResponse(
        serve::encodeResponse(response), decoded, error));
    EXPECT_TRUE(decoded.ok);
    EXPECT_EQ(decoded.output, response.output);

    serve::Request request;
    EXPECT_FALSE(serve::decodeRequest("not json", request, error));
    EXPECT_FALSE(serve::decodeRequest("{\"op\": \"nonsense\"}",
                                      request, error));
    EXPECT_FALSE(serve::decodeRequest(
        "{\"op\": \"subset\", \"k\": \"three\"}", request, error));
    EXPECT_FALSE(
        serve::decodeRequest("{\"op\": \"stats\"} trailing", request,
                             error));
}

// A daemon answer must be byte-identical to direct query-op
// rendering, from many concurrent clients at once.
TEST(Serve, ConcurrentClientsGetByteIdenticalAnswers)
{
    serve::ServerConfig config;
    config.service = tinyServiceConfig();
    serve::Server server(config);
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;
    std::thread accept_thread = serveOnThread(server);

    core::QueryOutcome direct = core::runCharacterizeQuery(
        *server.context(), {"505.mcf_r"});
    ASSERT_TRUE(direct.ok);

    std::vector<std::string> outputs(8);
    std::vector<std::thread> clients;
    for (std::size_t c = 0; c < outputs.size(); ++c) {
        clients.emplace_back([&, c]() {
            serve::Client client;
            std::string client_error;
            if (!client.connect("127.0.0.1", server.port(),
                                &client_error))
                return;
            serve::Request request;
            request.op = serve::Op::Characterize;
            request.benchmarks = {"505.mcf_r"};
            serve::Response response;
            if (client.call(request, &response, &client_error) &&
                response.ok)
                outputs[c] = response.output;
        });
    }
    for (std::thread &client : clients)
        client.join();
    for (const std::string &output : outputs)
        EXPECT_EQ(output, direct.output);

    server.requestDrain();
    accept_thread.join();
    EXPECT_EQ(server.stats().dropped, 0u);
}

// A rejected query reports the error without killing the connection.
TEST(Serve, RejectsUnknownBenchmarkButKeepsServing)
{
    serve::ServerConfig config;
    config.service = tinyServiceConfig();
    serve::Server server(config);
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;
    std::thread accept_thread = serveOnThread(server);

    serve::Client client;
    ASSERT_TRUE(client.connect("127.0.0.1", server.port(), &error))
        << error;
    serve::Request request;
    request.op = serve::Op::Characterize;
    request.benchmarks = {"no-such-benchmark"};
    serve::Response response;
    ASSERT_TRUE(client.call(request, &response, &error)) << error;
    EXPECT_FALSE(response.ok);
    EXPECT_EQ(response.error, "unknown benchmark: no-such-benchmark");

    // Same connection still answers.
    request.op = serve::Op::Stats;
    request.benchmarks.clear();
    ASSERT_TRUE(client.call(request, &response, &error)) << error;
    EXPECT_TRUE(response.ok);

    server.requestDrain();
    accept_thread.join();
    EXPECT_EQ(server.stats().errors, 1u);
    EXPECT_EQ(server.stats().dropped, 0u);
}

// Warm-store acceptance criterion: a second daemon over a populated
// store answers the same query byte-identically with ZERO simulations.
TEST(Serve, WarmStoreQueryRunsZeroSimulations)
{
    const std::string dir = storeDir("warm");
    std::string cold_output;
    {
        serve::ServerConfig config;
        config.service = tinyServiceConfig(dir);
        serve::Server server(config);
        std::string error;
        ASSERT_TRUE(server.start(&error)) << error;
        std::thread accept_thread = serveOnThread(server);
        serve::Client client;
        ASSERT_TRUE(
            client.connect("127.0.0.1", server.port(), &error));
        serve::Request request;
        request.op = serve::Op::Characterize;
        request.benchmarks = {"505.mcf_r"};
        serve::Response response;
        ASSERT_TRUE(client.call(request, &response, &error));
        ASSERT_TRUE(response.ok);
        cold_output = response.output;
        EXPECT_GT(server.context()->simulationsRun(), 0u);
        server.requestDrain();
        accept_thread.join();
    }
    {
        serve::ServerConfig config;
        config.service = tinyServiceConfig(dir);
        serve::Server server(config);
        std::string error;
        ASSERT_TRUE(server.start(&error)) << error;
        std::thread accept_thread = serveOnThread(server);
        serve::Client client;
        ASSERT_TRUE(
            client.connect("127.0.0.1", server.port(), &error));
        serve::Request request;
        request.op = serve::Op::Characterize;
        request.benchmarks = {"505.mcf_r"};
        serve::Response response;
        ASSERT_TRUE(client.call(request, &response, &error));
        ASSERT_TRUE(response.ok);
        EXPECT_EQ(response.output, cold_output);
        EXPECT_EQ(server.context()->simulationsRun(), 0u);
        server.requestDrain();
        accept_thread.join();
    }
    std::filesystem::remove_all(dir);
}

// The shutdown op answers, then the server drains and returns; idle
// parked connections are half-closed cleanly, dropping nothing.
TEST(Serve, ShutdownOpDrainsGracefullyWithIdleConnections)
{
    serve::ServerConfig config;
    config.service = tinyServiceConfig();
    serve::Server server(config);
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;
    std::thread accept_thread = serveOnThread(server);

    serve::Client idle;
    ASSERT_TRUE(idle.connect("127.0.0.1", server.port(), &error));

    serve::Client controller;
    ASSERT_TRUE(controller.connect("127.0.0.1", server.port(),
                                   &error));
    serve::Request request;
    request.op = serve::Op::Shutdown;
    serve::Response response;
    ASSERT_TRUE(controller.call(request, &response, &error)) << error;
    EXPECT_TRUE(response.ok);

    accept_thread.join(); // returns once drained
    EXPECT_TRUE(server.draining());
    EXPECT_EQ(server.stats().dropped, 0u);

    // The drained server no longer accepts.
    serve::Client late;
    EXPECT_FALSE(late.connect("127.0.0.1", server.port(), &error));
}
