#!/usr/bin/env bash
# SIGINT-clean shutdown check for the serve daemon.
#
# Starts `speclens serve` on an ephemeral port, interrupts it, and
# requires: exit status 0, the "[speclens-serve] drained" line on
# stderr, a run manifest next to the store, and no leftover temp files
# anywhere in the store tree (the atomic temp+rename write idiom must
# hold under signals).
#
# usage: sigint_drain.sh <path-to-speclens> <store-dir>
set -u

CLI="$1"
STORE="$2"
rm -rf "$STORE"
OUT=$(mktemp)
ERR=$(mktemp)
trap 'rm -f "$OUT" "$ERR"' EXIT

"$CLI" serve --port 0 --instructions 2000 --warmup 500 \
    --store "$STORE" > "$OUT" 2> "$ERR" &
PID=$!

for _ in $(seq 1 100); do
    grep -q listening "$OUT" 2>/dev/null && break
    sleep 0.1
done
if ! grep -q listening "$OUT"; then
    echo "FAIL: daemon never printed its listening line" >&2
    kill -9 "$PID" 2>/dev/null
    exit 1
fi

kill -INT "$PID"
wait "$PID"
STATUS=$?
if [ "$STATUS" -ne 0 ]; then
    echo "FAIL: daemon exited $STATUS after SIGINT" >&2
    exit 1
fi
if ! grep -q "speclens-serve.*drained" "$ERR"; then
    echo "FAIL: no drained summary on stderr" >&2
    cat "$ERR" >&2
    exit 1
fi
if [ ! -f "$STORE/run-manifest.json" ]; then
    echo "FAIL: no run manifest written on drain" >&2
    exit 1
fi
LEFTOVER=$(find "$STORE" -name '*.tmp*' | wc -l)
if [ "$LEFTOVER" -ne 0 ]; then
    echo "FAIL: $LEFTOVER temp files left in the store" >&2
    exit 1
fi
echo "ok: SIGINT drain clean"
