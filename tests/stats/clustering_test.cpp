/**
 * @file
 * Unit and property tests for hierarchical clustering and dendrograms.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "stats/clustering.h"
#include "stats/rng.h"

namespace speclens {
namespace stats {
namespace {

/** Three well-separated 2-D blobs of the given sizes. */
Matrix
threeBlobs(std::size_t per_blob, double spread = 0.1)
{
    Rng rng(123);
    Matrix points(3 * per_blob, 2);
    const double centers[3][2] = {{0, 0}, {10, 0}, {0, 10}};
    for (std::size_t blob = 0; blob < 3; ++blob) {
        for (std::size_t i = 0; i < per_blob; ++i) {
            std::size_t row = blob * per_blob + i;
            points(row, 0) = centers[blob][0] + spread * rng.gaussian();
            points(row, 1) = centers[blob][1] + spread * rng.gaussian();
        }
    }
    return points;
}

TEST(DendrogramTest, ConstructionValidation)
{
    EXPECT_NO_THROW(Dendrogram(1, {}));
    EXPECT_NO_THROW(Dendrogram(2, {{0, 1, 1.0, 2}}));
    EXPECT_THROW(Dendrogram(0, {}), std::invalid_argument);
    EXPECT_THROW(Dendrogram(3, {{0, 1, 1.0, 2}}),
                 std::invalid_argument); // missing one merge
    EXPECT_THROW(Dendrogram(2, {{0, 0, 1.0, 2}}),
                 std::invalid_argument); // self merge
    EXPECT_THROW(Dendrogram(2, {{0, 5, 1.0, 2}}),
                 std::invalid_argument); // bad node id
}

TEST(DendrogramTest, CutIntoClustersCounts)
{
    Matrix points = threeBlobs(4);
    Dendrogram tree = clusterPoints(points, Linkage::Average);
    for (std::size_t k = 1; k <= 12; ++k)
        EXPECT_EQ(tree.cutIntoClusters(k).size(), k);
    EXPECT_THROW(tree.cutIntoClusters(0), std::invalid_argument);
    EXPECT_THROW(tree.cutIntoClusters(13), std::invalid_argument);
}

TEST(DendrogramTest, ThreeBlobsRecoveredByAllLinkages)
{
    Matrix points = threeBlobs(5);
    for (Linkage linkage : {Linkage::Single, Linkage::Complete,
                            Linkage::Average, Linkage::Ward}) {
        Dendrogram tree = clusterPoints(points, linkage);
        auto clusters = tree.cutIntoClusters(3);
        ASSERT_EQ(clusters.size(), 3u) << linkageName(linkage);
        for (const auto &cluster : clusters) {
            ASSERT_EQ(cluster.size(), 5u) << linkageName(linkage);
            // All members belong to the same blob.
            std::size_t blob = cluster[0] / 5;
            for (std::size_t leaf : cluster)
                EXPECT_EQ(leaf / 5, blob) << linkageName(linkage);
        }
    }
}

TEST(DendrogramTest, CutAtHeightMatchesCutIntoClusters)
{
    Matrix points = threeBlobs(4);
    Dendrogram tree = clusterPoints(points, Linkage::Ward);
    double h = tree.heightForClusterCount(3);
    auto by_height = tree.cutAtHeight(h);
    auto by_count = tree.cutIntoClusters(3);
    EXPECT_EQ(by_height, by_count);
}

TEST(DendrogramTest, CutAtZeroHeightIsAllSingletons)
{
    Matrix points = threeBlobs(3);
    Dendrogram tree = clusterPoints(points);
    auto clusters = tree.cutAtHeight(-1.0);
    EXPECT_EQ(clusters.size(), 9u);
}

TEST(DendrogramTest, CopheneticDistanceProperties)
{
    Matrix points = threeBlobs(3);
    Dendrogram tree = clusterPoints(points, Linkage::Average);
    // Same-blob leaves share a lower ancestor than cross-blob leaves.
    EXPECT_LT(tree.copheneticDistance(0, 1),
              tree.copheneticDistance(0, 3));
    EXPECT_DOUBLE_EQ(tree.copheneticDistance(2, 2), 0.0);
    // Symmetry.
    EXPECT_DOUBLE_EQ(tree.copheneticDistance(1, 7),
                     tree.copheneticDistance(7, 1));
}

TEST(DendrogramTest, LeafJoinHeightIdentifiesOutlier)
{
    // Nine clustered points plus one far outlier: the outlier joins
    // last and highest.
    Matrix points(10, 2);
    Rng rng(5);
    for (std::size_t i = 0; i < 9; ++i) {
        points(i, 0) = rng.gaussian() * 0.1;
        points(i, 1) = rng.gaussian() * 0.1;
    }
    points(9, 0) = 100.0;
    points(9, 1) = 100.0;

    Dendrogram tree = clusterPoints(points, Linkage::Average);
    double outlier_height = tree.leafJoinHeight(9);
    for (std::size_t i = 0; i < 9; ++i)
        EXPECT_LT(tree.leafJoinHeight(i), outlier_height);
}

TEST(DendrogramTest, LeafOrderIsPermutation)
{
    Matrix points = threeBlobs(4);
    Dendrogram tree = clusterPoints(points);
    auto order = tree.leafOrder();
    ASSERT_EQ(order.size(), 12u);
    std::sort(order.begin(), order.end());
    for (std::size_t i = 0; i < 12; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(DendrogramTest, RenderContainsAllLabels)
{
    Matrix points = threeBlobs(2);
    Dendrogram tree = clusterPoints(points);
    std::vector<std::string> labels{"a", "b", "c", "d", "e", "f"};
    std::string rendered = tree.render(labels);
    for (const std::string &label : labels)
        EXPECT_NE(rendered.find("- " + label), std::string::npos);
    EXPECT_THROW(tree.render({"too", "few"}), std::invalid_argument);
}

TEST(AgglomerateTest, InputValidation)
{
    EXPECT_THROW(agglomerate(Matrix(2, 3)), std::invalid_argument);
    Matrix asym{{0, 1}, {2, 0}};
    EXPECT_THROW(agglomerate(asym), std::invalid_argument);
}

TEST(AgglomerateTest, SingleObservation)
{
    Dendrogram tree = agglomerate(Matrix(1, 1));
    EXPECT_EQ(tree.numLeaves(), 1u);
    EXPECT_TRUE(tree.merges().empty());
}

TEST(AgglomerateTest, TwoPointsMergeAtTheirDistance)
{
    Matrix d{{0, 3.5}, {3.5, 0}};
    for (Linkage linkage : {Linkage::Single, Linkage::Complete,
                            Linkage::Average, Linkage::Ward}) {
        Dendrogram tree = agglomerate(d, linkage);
        ASSERT_EQ(tree.merges().size(), 1u);
        EXPECT_NEAR(tree.merges()[0].height, 3.5, 1e-12)
            << linkageName(linkage);
    }
}

TEST(AgglomerateTest, SingleVersusCompleteOnChain)
{
    // Chain 0-1-2 with distances d(0,1)=1, d(1,2)=1, d(0,2)=2:
    // single linkage merges {0,1} with 2 at distance 1; complete at 2.
    Matrix d{{0, 1, 2}, {1, 0, 1}, {2, 1, 0}};
    Dendrogram single_tree = agglomerate(d, Linkage::Single);
    Dendrogram complete_tree = agglomerate(d, Linkage::Complete);
    EXPECT_NEAR(single_tree.merges()[1].height, 1.0, 1e-12);
    EXPECT_NEAR(complete_tree.merges()[1].height, 2.0, 1e-12);
}

class LinkageMonotonicityTest : public ::testing::TestWithParam<Linkage>
{
};

TEST_P(LinkageMonotonicityTest, MergeHeightsNeverDecrease)
{
    // All four implemented linkages are reducible, so the merge
    // sequence must be monotone.
    Rng rng(99);
    Matrix points(25, 3);
    for (std::size_t r = 0; r < 25; ++r)
        for (std::size_t c = 0; c < 3; ++c)
            points(r, c) = rng.gaussian();
    Dendrogram tree = clusterPoints(points, GetParam());
    const auto &merges = tree.merges();
    for (std::size_t i = 0; i + 1 < merges.size(); ++i)
        EXPECT_LE(merges[i].height, merges[i + 1].height + 1e-9)
            << linkageName(GetParam()) << " step " << i;
}

TEST_P(LinkageMonotonicityTest, MergeSizesAccumulateToAllLeaves)
{
    Rng rng(101);
    Matrix points(12, 2);
    for (std::size_t r = 0; r < 12; ++r)
        for (std::size_t c = 0; c < 2; ++c)
            points(r, c) = rng.gaussian();
    Dendrogram tree = clusterPoints(points, GetParam());
    EXPECT_EQ(tree.merges().back().size, 12u);
}

INSTANTIATE_TEST_SUITE_P(AllLinkages, LinkageMonotonicityTest,
                         ::testing::Values(Linkage::Single,
                                           Linkage::Complete,
                                           Linkage::Average,
                                           Linkage::Ward),
                         [](const auto &info) {
                             return linkageName(info.param);
                         });

} // namespace
} // namespace stats
} // namespace speclens
