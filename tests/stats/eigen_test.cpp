/**
 * @file
 * Unit tests for the Jacobi symmetric eigensolver.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "stats/eigen.h"
#include "stats/rng.h"

namespace speclens {
namespace stats {
namespace {

TEST(EigenTest, DiagonalMatrix)
{
    Matrix m{{3, 0, 0}, {0, 1, 0}, {0, 0, 2}};
    EigenDecomposition eig = symmetricEigen(m);
    ASSERT_EQ(eig.values.size(), 3u);
    EXPECT_NEAR(eig.values[0], 3.0, 1e-10);
    EXPECT_NEAR(eig.values[1], 2.0, 1e-10);
    EXPECT_NEAR(eig.values[2], 1.0, 1e-10);
}

TEST(EigenTest, Analytic2x2)
{
    // Eigenvalues of [[2, 1], [1, 2]] are 3 and 1 with eigenvectors
    // (1, 1)/sqrt(2) and (1, -1)/sqrt(2).
    Matrix m{{2, 1}, {1, 2}};
    EigenDecomposition eig = symmetricEigen(m);
    EXPECT_NEAR(eig.values[0], 3.0, 1e-10);
    EXPECT_NEAR(eig.values[1], 1.0, 1e-10);
    double inv_sqrt2 = 1.0 / std::sqrt(2.0);
    EXPECT_NEAR(std::fabs(eig.vectors(0, 0)), inv_sqrt2, 1e-8);
    EXPECT_NEAR(std::fabs(eig.vectors(1, 0)), inv_sqrt2, 1e-8);
}

TEST(EigenTest, RejectsAsymmetric)
{
    Matrix m{{1, 2}, {3, 4}};
    EXPECT_THROW(symmetricEigen(m), std::invalid_argument);
}

class EigenPropertyTest : public ::testing::TestWithParam<int>
{
};

TEST_P(EigenPropertyTest, ReconstructionAndOrthogonality)
{
    int n = GetParam();
    Rng rng(static_cast<std::uint64_t>(n) * 977);

    // Random symmetric matrix A = B + B^T.
    Matrix b(n, n);
    for (int r = 0; r < n; ++r)
        for (int c = 0; c < n; ++c)
            b(static_cast<std::size_t>(r), static_cast<std::size_t>(c)) =
                rng.gaussian();
    Matrix a = b.add(b.transposed());

    EigenDecomposition eig = symmetricEigen(a);

    // V^T V = I (orthonormal eigenvectors).
    Matrix vtv = eig.vectors.transposed().multiply(eig.vectors);
    EXPECT_TRUE(vtv.approxEquals(
        Matrix::identity(static_cast<std::size_t>(n)), 1e-8))
        << vtv.toString();

    // A V = V diag(lambda)  (reconstruction).
    Matrix av = a.multiply(eig.vectors);
    Matrix lambda(static_cast<std::size_t>(n),
                  static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
        lambda(static_cast<std::size_t>(i), static_cast<std::size_t>(i)) =
            eig.values[static_cast<std::size_t>(i)];
    Matrix vl = eig.vectors.multiply(lambda);
    EXPECT_TRUE(av.approxEquals(vl, 1e-7));

    // Eigenvalues sorted descending.
    for (int i = 0; i + 1 < n; ++i)
        EXPECT_GE(eig.values[static_cast<std::size_t>(i)],
                  eig.values[static_cast<std::size_t>(i + 1)]);

    // Trace preserved.
    double trace_a = 0.0, sum_lambda = 0.0;
    for (int i = 0; i < n; ++i) {
        trace_a += a(static_cast<std::size_t>(i),
                     static_cast<std::size_t>(i));
        sum_lambda += eig.values[static_cast<std::size_t>(i)];
    }
    EXPECT_NEAR(trace_a, sum_lambda, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Sizes, EigenPropertyTest,
                         ::testing::Values(2, 3, 5, 10, 20, 40));

} // namespace
} // namespace stats
} // namespace speclens
