/**
 * @file
 * Unit tests for descriptive statistics.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "stats/descriptive.h"

namespace speclens {
namespace stats {
namespace {

TEST(DescriptiveTest, Mean)
{
    EXPECT_DOUBLE_EQ(mean({1, 2, 3, 4}), 2.5);
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

TEST(DescriptiveTest, VarianceAndStddev)
{
    // Sample variance of {2, 4, 4, 4, 5, 5, 7, 9} is 32/7.
    std::vector<double> v{2, 4, 4, 4, 5, 5, 7, 9};
    EXPECT_NEAR(variance(v), 32.0 / 7.0, 1e-12);
    EXPECT_NEAR(stddev(v), std::sqrt(32.0 / 7.0), 1e-12);
    EXPECT_DOUBLE_EQ(variance({5.0}), 0.0);
}

TEST(DescriptiveTest, GeometricMean)
{
    EXPECT_NEAR(geometricMean({1, 4, 16}), 4.0, 1e-12);
    EXPECT_NEAR(geometricMean({2.0}), 2.0, 1e-12);
}

TEST(DescriptiveTest, GeometricMeanRejectsNonPositive)
{
    EXPECT_THROW(geometricMean({1.0, 0.0}), std::invalid_argument);
    EXPECT_THROW(geometricMean({-1.0}), std::invalid_argument);
    EXPECT_THROW(geometricMean({}), std::invalid_argument);
}

TEST(DescriptiveTest, GeometricMeanIsScoreAggregation)
{
    // SPEC aggregates speedups by geomean: scaling one benchmark's
    // speedup by k scales the n-benchmark score by k^(1/n).
    double base = geometricMean({2, 2, 2, 2});
    double scaled = geometricMean({4, 2, 2, 2});
    EXPECT_NEAR(scaled / base, std::pow(2.0, 0.25), 1e-12);
}

TEST(DescriptiveTest, MinMax)
{
    EXPECT_DOUBLE_EQ(minValue({3, 1, 2}), 1.0);
    EXPECT_DOUBLE_EQ(maxValue({3, 1, 2}), 3.0);
    EXPECT_THROW(minValue({}), std::invalid_argument);
    EXPECT_THROW(maxValue({}), std::invalid_argument);
}

TEST(DescriptiveTest, Median)
{
    EXPECT_DOUBLE_EQ(median({5, 1, 3}), 3.0);
    EXPECT_DOUBLE_EQ(median({4, 1, 3, 2}), 2.5);
    EXPECT_THROW(median({}), std::invalid_argument);
}

TEST(DescriptiveTest, RanksSimple)
{
    EXPECT_EQ(ranks({10, 30, 20}), (std::vector<double>{1, 3, 2}));
}

TEST(DescriptiveTest, RanksWithTies)
{
    // Tied values share the average of their positions.
    EXPECT_EQ(ranks({5, 5, 1}), (std::vector<double>{2.5, 2.5, 1}));
    EXPECT_EQ(ranks({7, 7, 7}), (std::vector<double>{2, 2, 2}));
}

TEST(DescriptiveTest, PearsonPerfectCorrelation)
{
    EXPECT_NEAR(pearson({1, 2, 3}, {2, 4, 6}), 1.0, 1e-12);
    EXPECT_NEAR(pearson({1, 2, 3}, {6, 4, 2}), -1.0, 1e-12);
}

TEST(DescriptiveTest, PearsonDegenerate)
{
    EXPECT_DOUBLE_EQ(pearson({1, 2, 3}, {5, 5, 5}), 0.0);
    EXPECT_THROW(pearson({1}, {2}), std::invalid_argument);
    EXPECT_THROW(pearson({1, 2}, {1, 2, 3}), std::invalid_argument);
}

TEST(DescriptiveTest, SpearmanIsRankInvariant)
{
    // Monotone transformations do not change rank correlation.
    std::vector<double> x{1, 2, 3, 4};
    std::vector<double> y{1, 8, 27, 1000};
    EXPECT_NEAR(spearman(x, y), 1.0, 1e-12);
}

TEST(DescriptiveTest, RelativeError)
{
    EXPECT_DOUBLE_EQ(relativeError(11.0, 10.0), 0.1);
    EXPECT_DOUBLE_EQ(relativeError(9.0, 10.0), 0.1);
    EXPECT_THROW(relativeError(1.0, 0.0), std::invalid_argument);
}

} // namespace
} // namespace stats
} // namespace speclens
