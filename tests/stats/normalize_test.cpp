/**
 * @file
 * Normalization tests, centred on the degenerate-column contract.
 *
 * zscore()/zscoreWith() used to zero out zero-variance columns
 * *silently*; a dead feature column could flow through PCA and
 * clustering without anyone noticing.  The NormalizeReport now names
 * every such column — these tests pin down both the arithmetic and the
 * reporting.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "stats/normalize.h"

namespace speclens {
namespace stats {
namespace {

/** Rows vary in columns 0 and 2; column 1 is constant. */
Matrix
matrixWithConstantMiddleColumn()
{
    return Matrix{
        {1.0, 7.0, 10.0},
        {2.0, 7.0, 20.0},
        {3.0, 7.0, 60.0},
    };
}

TEST(Normalize, ZscoreStandardisesVaryingColumns)
{
    NormalizeReport report;
    Matrix z = zscore(matrixWithConstantMiddleColumn(), &report);
    ASSERT_EQ(z.rows(), 3u);
    ASSERT_EQ(z.cols(), 3u);
    for (std::size_t c : {std::size_t{0}, std::size_t{2}}) {
        double mean = 0.0;
        for (std::size_t r = 0; r < z.rows(); ++r)
            mean += z(r, c);
        mean /= static_cast<double>(z.rows());
        EXPECT_NEAR(mean, 0.0, 1e-12) << "column " << c;
    }
}

TEST(Normalize, ZscoreReportsAndZeroesDegenerateColumns)
{
    NormalizeReport report;
    Matrix z = zscore(matrixWithConstantMiddleColumn(), &report);
    ASSERT_EQ(report.degenerate_columns.size(), 1u);
    EXPECT_EQ(report.degenerate_columns[0], 1u);
    for (std::size_t r = 0; r < z.rows(); ++r)
        EXPECT_EQ(z(r, 1), 0.0);
}

TEST(Normalize, ZscoreNullReportStillZeroes)
{
    Matrix z = zscore(matrixWithConstantMiddleColumn());
    for (std::size_t r = 0; r < z.rows(); ++r)
        EXPECT_EQ(z(r, 1), 0.0);
}

TEST(Normalize, ReportIsOverwrittenWhenClean)
{
    NormalizeReport report;
    report.degenerate_columns = {99}; // Stale state from a prior run.
    Matrix varied{{1.0, 2.0}, {3.0, 5.0}, {4.0, 9.0}};
    (void)zscore(varied, &report);
    EXPECT_TRUE(report.degenerate_columns.empty());
}

TEST(Normalize, ZscoreWithExternalStatsReportsDegenerates)
{
    // Project a new matrix with stats fitted elsewhere; the stddev of
    // column 0 is zero in the *training* stats, so the projection must
    // flag and zero it regardless of the projected data's own spread.
    ColumnStats stats;
    stats.means = {5.0, 1.0};
    stats.stddevs = {0.0, 2.0};
    Matrix fresh{{4.0, 3.0}, {6.0, 5.0}};
    NormalizeReport report;
    Matrix z = zscoreWith(fresh, stats, &report);
    ASSERT_EQ(report.degenerate_columns.size(), 1u);
    EXPECT_EQ(report.degenerate_columns[0], 0u);
    EXPECT_EQ(z(0, 0), 0.0);
    EXPECT_EQ(z(1, 0), 0.0);
    EXPECT_EQ(z(0, 1), 1.0);
    EXPECT_EQ(z(1, 1), 2.0);
}

TEST(Normalize, DegenerateColumnsHelper)
{
    ColumnStats stats;
    stats.means = {0.0, 0.0, 0.0, 0.0};
    stats.stddevs = {1.0, 0.0, 2.5, std::nan("")};
    std::vector<std::size_t> degenerate = degenerateColumns(stats);
    // NaN stddev is degenerate too: !(nan > 0) holds, and dividing by
    // NaN would poison the whole column.
    ASSERT_EQ(degenerate.size(), 2u);
    EXPECT_EQ(degenerate[0], 1u);
    EXPECT_EQ(degenerate[1], 3u);
}

TEST(Normalize, AllColumnsDegenerateOnIdenticalRows)
{
    Matrix identical{{3.0, 4.0}, {3.0, 4.0}, {3.0, 4.0}};
    NormalizeReport report;
    Matrix z = zscore(identical, &report);
    ASSERT_EQ(report.degenerate_columns.size(), 2u);
    for (std::size_t r = 0; r < z.rows(); ++r)
        for (std::size_t c = 0; c < z.cols(); ++c)
            EXPECT_EQ(z(r, c), 0.0);
}

} // namespace
} // namespace stats
} // namespace speclens
