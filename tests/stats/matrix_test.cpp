/**
 * @file
 * Unit tests for the dense matrix type.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "stats/matrix.h"

namespace speclens {
namespace stats {
namespace {

TEST(MatrixTest, DefaultConstructedIsEmpty)
{
    Matrix m;
    EXPECT_EQ(m.rows(), 0u);
    EXPECT_EQ(m.cols(), 0u);
    EXPECT_TRUE(m.empty());
}

TEST(MatrixTest, ZeroInitialised)
{
    Matrix m(3, 4);
    EXPECT_EQ(m.rows(), 3u);
    EXPECT_EQ(m.cols(), 4u);
    for (std::size_t r = 0; r < 3; ++r)
        for (std::size_t c = 0; c < 4; ++c)
            EXPECT_EQ(m(r, c), 0.0);
}

TEST(MatrixTest, FillConstructor)
{
    Matrix m(2, 2, 7.5);
    EXPECT_EQ(m(0, 0), 7.5);
    EXPECT_EQ(m(1, 1), 7.5);
}

TEST(MatrixTest, InitializerList)
{
    Matrix m{{1.0, 2.0}, {3.0, 4.0}};
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), 2u);
    EXPECT_EQ(m(0, 1), 2.0);
    EXPECT_EQ(m(1, 0), 3.0);
}

TEST(MatrixTest, RaggedInitializerListThrows)
{
    EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), std::invalid_argument);
}

TEST(MatrixTest, Identity)
{
    Matrix id = Matrix::identity(3);
    for (std::size_t r = 0; r < 3; ++r)
        for (std::size_t c = 0; c < 3; ++c)
            EXPECT_EQ(id(r, c), r == c ? 1.0 : 0.0);
}

TEST(MatrixTest, RowAndColExtraction)
{
    Matrix m{{1, 2, 3}, {4, 5, 6}};
    EXPECT_EQ(m.row(1), (std::vector<double>{4, 5, 6}));
    EXPECT_EQ(m.col(2), (std::vector<double>{3, 6}));
}

TEST(MatrixTest, SetRowAndCol)
{
    Matrix m(2, 3);
    m.setRow(0, {1, 2, 3});
    m.setCol(2, {9, 8});
    EXPECT_EQ(m(0, 0), 1.0);
    EXPECT_EQ(m(0, 2), 9.0);
    EXPECT_EQ(m(1, 2), 8.0);
}

TEST(MatrixTest, SetRowLengthMismatchThrows)
{
    Matrix m(2, 3);
    EXPECT_THROW(m.setRow(0, {1, 2}), std::invalid_argument);
    EXPECT_THROW(m.setCol(0, {1, 2, 3}), std::invalid_argument);
}

TEST(MatrixTest, Transpose)
{
    Matrix m{{1, 2, 3}, {4, 5, 6}};
    Matrix t = m.transposed();
    EXPECT_EQ(t.rows(), 3u);
    EXPECT_EQ(t.cols(), 2u);
    EXPECT_EQ(t(2, 1), 6.0);
    EXPECT_TRUE(t.transposed().approxEquals(m));
}

TEST(MatrixTest, MatrixProduct)
{
    Matrix a{{1, 2}, {3, 4}};
    Matrix b{{5, 6}, {7, 8}};
    Matrix c = a.multiply(b);
    EXPECT_TRUE(c.approxEquals(Matrix{{19, 22}, {43, 50}}));
}

TEST(MatrixTest, ProductDimensionMismatchThrows)
{
    Matrix a(2, 3);
    Matrix b(2, 3);
    EXPECT_THROW(a.multiply(b), std::invalid_argument);
}

TEST(MatrixTest, IdentityIsMultiplicativeNeutral)
{
    Matrix a{{1, 2}, {3, 4}};
    EXPECT_TRUE(a.multiply(Matrix::identity(2)).approxEquals(a));
    EXPECT_TRUE(Matrix::identity(2).multiply(a).approxEquals(a));
}

TEST(MatrixTest, MatrixVectorProduct)
{
    Matrix a{{1, 2}, {3, 4}};
    EXPECT_EQ(a.multiply(std::vector<double>{1, 1}),
              (std::vector<double>{3, 7}));
}

TEST(MatrixTest, AddSubtractScale)
{
    Matrix a{{1, 2}, {3, 4}};
    Matrix b{{4, 3}, {2, 1}};
    EXPECT_TRUE(a.add(b).approxEquals(Matrix{{5, 5}, {5, 5}}));
    EXPECT_TRUE(a.subtract(a).approxEquals(Matrix(2, 2)));
    EXPECT_TRUE(a.scaled(2.0).approxEquals(Matrix{{2, 4}, {6, 8}}));
}

TEST(MatrixTest, SelectRowsAndCols)
{
    Matrix m{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}};
    Matrix rows = m.selectRows({2, 0});
    EXPECT_TRUE(rows.approxEquals(Matrix{{7, 8, 9}, {1, 2, 3}}));
    Matrix cols = m.selectCols({1});
    EXPECT_TRUE(cols.approxEquals(Matrix{{2}, {5}, {8}}));
}

TEST(MatrixTest, SelectOutOfRangeThrows)
{
    Matrix m(2, 2);
    EXPECT_THROW(m.selectRows({5}), std::out_of_range);
    EXPECT_THROW(m.selectCols({5}), std::out_of_range);
}

TEST(MatrixTest, FrobeniusNorm)
{
    Matrix m{{3, 4}};
    EXPECT_DOUBLE_EQ(m.frobeniusNorm(), 5.0);
}

TEST(MatrixTest, SymmetryChecks)
{
    Matrix sym{{1, 2}, {2, 1}};
    Matrix asym{{1, 2}, {3, 1}};
    EXPECT_TRUE(sym.isSymmetric());
    EXPECT_FALSE(asym.isSymmetric());
    EXPECT_FALSE(Matrix(2, 3).isSymmetric());
    EXPECT_DOUBLE_EQ(asym.maxOffDiagonal(), 3.0);
}

TEST(MatrixTest, ToStringContainsElements)
{
    Matrix m{{1.5, 2.5}};
    std::string s = m.toString(1);
    EXPECT_NE(s.find("1.5"), std::string::npos);
    EXPECT_NE(s.find("2.5"), std::string::npos);
}

} // namespace
} // namespace stats
} // namespace speclens
