/**
 * @file
 * Unit tests for k-means clustering and silhouette scoring.
 */

#include <gtest/gtest.h>

#include <set>

#include "stats/kmeans.h"
#include "stats/rng.h"

namespace speclens {
namespace stats {
namespace {

Matrix
blobs(std::size_t per_blob, double spread = 0.05)
{
    Rng rng(321);
    Matrix points(3 * per_blob, 2);
    const double centers[3][2] = {{0, 0}, {8, 0}, {0, 8}};
    for (std::size_t blob = 0; blob < 3; ++blob) {
        for (std::size_t i = 0; i < per_blob; ++i) {
            std::size_t row = blob * per_blob + i;
            points(row, 0) = centers[blob][0] + spread * rng.gaussian();
            points(row, 1) = centers[blob][1] + spread * rng.gaussian();
        }
    }
    return points;
}

TEST(KmeansTest, RecoversThreeBlobs)
{
    Matrix points = blobs(6);
    KmeansResult result = kmeans(points, 3);
    // Every blob maps to exactly one cluster.
    for (std::size_t blob = 0; blob < 3; ++blob) {
        std::set<std::size_t> labels;
        for (std::size_t i = 0; i < 6; ++i)
            labels.insert(result.assignment[blob * 6 + i]);
        EXPECT_EQ(labels.size(), 1u) << "blob " << blob;
    }
    // Distinct blobs map to distinct clusters.
    std::set<std::size_t> all{result.assignment[0],
                              result.assignment[6],
                              result.assignment[12]};
    EXPECT_EQ(all.size(), 3u);
    EXPECT_LT(result.inertia, 1.0);
}

TEST(KmeansTest, DeterministicPerSeed)
{
    Matrix points = blobs(5);
    KmeansResult a = kmeans(points, 3, 9);
    KmeansResult b = kmeans(points, 3, 9);
    EXPECT_EQ(a.assignment, b.assignment);
    EXPECT_DOUBLE_EQ(a.inertia, b.inertia);
}

TEST(KmeansTest, KEqualsNGivesZeroInertia)
{
    Matrix points = blobs(2);
    KmeansResult result = kmeans(points, points.rows());
    EXPECT_NEAR(result.inertia, 0.0, 1e-12);
}

TEST(KmeansTest, KOneCentroidIsMean)
{
    Matrix points{{0, 0}, {2, 0}, {0, 2}, {2, 2}};
    KmeansResult result = kmeans(points, 1);
    EXPECT_NEAR(result.centroids(0, 0), 1.0, 1e-12);
    EXPECT_NEAR(result.centroids(0, 1), 1.0, 1e-12);
}

TEST(KmeansTest, MembersInverseOfAssignment)
{
    Matrix points = blobs(4);
    KmeansResult result = kmeans(points, 3);
    std::size_t total = 0;
    for (std::size_t c = 0; c < 3; ++c) {
        for (std::size_t i : result.members(c))
            EXPECT_EQ(result.assignment[i], c);
        total += result.members(c).size();
    }
    EXPECT_EQ(total, points.rows());
}

TEST(KmeansTest, InvalidArguments)
{
    Matrix points = blobs(2);
    EXPECT_THROW(kmeans(points, 0), std::invalid_argument);
    EXPECT_THROW(kmeans(points, points.rows() + 1),
                 std::invalid_argument);
    EXPECT_THROW(kmeans(Matrix(), 1), std::invalid_argument);
}

TEST(KmeansTest, MoreClustersNeverIncreaseInertia)
{
    Matrix points = blobs(6, 0.8);
    double prev = kmeans(points, 1).inertia;
    for (std::size_t k = 2; k <= 6; ++k) {
        double inertia = kmeans(points, k, 3).inertia;
        EXPECT_LE(inertia, prev * 1.05) << "k=" << k;
        prev = inertia;
    }
}

TEST(SilhouetteTest, WellSeparatedBlobsScoreHigh)
{
    Matrix points = blobs(6);
    KmeansResult result = kmeans(points, 3);
    EXPECT_GT(silhouetteScore(points, result.assignment), 0.9);
}

TEST(SilhouetteTest, RandomAssignmentScoresLow)
{
    Matrix points = blobs(6);
    Rng rng(777);
    std::vector<std::size_t> random_assignment(points.rows());
    for (std::size_t &a : random_assignment)
        a = static_cast<std::size_t>(rng.below(3));
    KmeansResult good = kmeans(points, 3);
    EXPECT_LT(silhouetteScore(points, random_assignment),
              silhouetteScore(points, good.assignment));
}

TEST(SilhouetteTest, EdgeCases)
{
    Matrix one{{1.0, 2.0}};
    EXPECT_DOUBLE_EQ(silhouetteScore(one, {0}), 0.0);
    // Single cluster: no b(i) exists anywhere.
    Matrix points = blobs(3);
    std::vector<std::size_t> all_zero(points.rows(), 0);
    EXPECT_DOUBLE_EQ(silhouetteScore(points, all_zero), 0.0);
    EXPECT_THROW(silhouetteScore(points, {0, 1}),
                 std::invalid_argument);
}

} // namespace
} // namespace stats
} // namespace speclens
