/**
 * @file
 * Metamorphic properties of the statistics pipeline: transformations
 * of the input that must leave the analysis invariant (or change it in
 * a precisely predictable way).  These guard against subtle pipeline
 * bugs that unit tests of individual functions cannot see.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "stats/clustering.h"
#include "stats/kmeans.h"
#include "stats/pca.h"
#include "stats/rng.h"

namespace speclens {
namespace stats {
namespace {

Matrix
randomData(std::size_t rows, std::size_t cols, std::uint64_t seed)
{
    Rng rng(seed);
    Matrix m(rows, cols);
    for (std::size_t r = 0; r < rows; ++r) {
        double shared = rng.gaussian();
        for (std::size_t c = 0; c < cols; ++c)
            m(r, c) = shared * (c % 2 ? 1.0 : -0.5) + rng.gaussian();
    }
    return m;
}

TEST(MetamorphicTest, PcaInvariantUnderColumnScaling)
{
    // PCA on z-scored data: multiplying a metric by any positive
    // constant (changing its unit) must not change eigenvalues or the
    // absolute scores.
    Matrix m = randomData(30, 5, 11);
    Matrix scaled = m;
    for (std::size_t r = 0; r < m.rows(); ++r) {
        scaled(r, 1) *= 1000.0; // MPKI -> MPMI, say
        scaled(r, 3) *= 0.001;
    }
    PcaResult a = fitPca(m, RetentionPolicy::fixedCount(3));
    PcaResult b = fitPca(scaled, RetentionPolicy::fixedCount(3));
    for (std::size_t i = 0; i < a.eigenvalues.size(); ++i)
        EXPECT_NEAR(a.eigenvalues[i], b.eigenvalues[i], 1e-8);
    for (std::size_t r = 0; r < a.scores.rows(); ++r)
        for (std::size_t c = 0; c < a.scores.cols(); ++c)
            EXPECT_NEAR(std::fabs(a.scores(r, c)),
                        std::fabs(b.scores(r, c)), 1e-6);
}

TEST(MetamorphicTest, PcaInvariantUnderColumnShift)
{
    // Adding a constant to a metric (changing its zero point) is
    // removed by centring.
    Matrix m = randomData(25, 4, 13);
    Matrix shifted = m;
    for (std::size_t r = 0; r < m.rows(); ++r)
        shifted(r, 2) += 1e6;
    PcaResult a = fitPca(m);
    PcaResult b = fitPca(shifted);
    ASSERT_EQ(a.retained, b.retained);
    for (std::size_t i = 0; i < a.eigenvalues.size(); ++i)
        EXPECT_NEAR(a.eigenvalues[i], b.eigenvalues[i], 1e-7);
}

TEST(MetamorphicTest, ClusteringInvariantUnderObservationPermutation)
{
    // Permuting observations must permute the clusters, not change
    // their composition.
    Matrix m = randomData(12, 3, 17);
    std::vector<std::size_t> perm{7, 2, 9, 0, 11, 4, 1, 8, 3, 10, 6, 5};
    Matrix permuted = m.selectRows(perm);

    auto clusters_of = [](const Matrix &points) {
        Dendrogram tree = clusterPoints(points, Linkage::Average);
        return tree.cutIntoClusters(3);
    };

    auto original = clusters_of(m);
    auto shuffled = clusters_of(permuted);

    // Map the shuffled clusters back through the permutation and
    // compare as sets of sets.
    auto canonicalise = [](std::vector<std::vector<std::size_t>> cs) {
        for (auto &c : cs)
            std::sort(c.begin(), c.end());
        std::sort(cs.begin(), cs.end());
        return cs;
    };
    std::vector<std::vector<std::size_t>> mapped;
    for (const auto &cluster : shuffled) {
        std::vector<std::size_t> back;
        for (std::size_t leaf : cluster)
            back.push_back(perm[leaf]);
        mapped.push_back(std::move(back));
    }
    EXPECT_EQ(canonicalise(original), canonicalise(mapped));
}

TEST(MetamorphicTest, ClusteringInvariantUnderGlobalScaling)
{
    // Scaling every coordinate by the same factor scales merge heights
    // by the factor and preserves the merge structure.
    Matrix m = randomData(10, 2, 19);
    Dendrogram base = clusterPoints(m, Linkage::Ward);
    Dendrogram doubled = clusterPoints(m.scaled(2.0), Linkage::Ward);
    ASSERT_EQ(base.merges().size(), doubled.merges().size());
    for (std::size_t i = 0; i < base.merges().size(); ++i) {
        EXPECT_EQ(base.merges()[i].left, doubled.merges()[i].left);
        EXPECT_EQ(base.merges()[i].right, doubled.merges()[i].right);
        EXPECT_NEAR(doubled.merges()[i].height,
                    2.0 * base.merges()[i].height, 1e-9);
    }
}

TEST(MetamorphicTest, DuplicatedObservationMergesAtZero)
{
    // Appending an exact duplicate of a row must merge it with the
    // original at height ~0 before anything else happens to it.
    Matrix m = randomData(8, 3, 23);
    Matrix with_dup(9, 3);
    for (std::size_t r = 0; r < 8; ++r)
        with_dup.setRow(r, m.row(r));
    with_dup.setRow(8, m.row(4));

    Dendrogram tree = clusterPoints(with_dup, Linkage::Average);
    EXPECT_NEAR(tree.copheneticDistance(4, 8), 0.0, 1e-12);
    EXPECT_NEAR(tree.merges().front().height, 0.0, 1e-12);
}

TEST(MetamorphicTest, KmeansInvariantUnderGlobalTranslation)
{
    Matrix m = randomData(15, 3, 29);
    Matrix shifted = m;
    for (std::size_t r = 0; r < m.rows(); ++r)
        for (std::size_t c = 0; c < 3; ++c)
            shifted(r, c) += 42.0;
    KmeansResult a = kmeans(m, 3, 5);
    KmeansResult b = kmeans(shifted, 3, 5);
    EXPECT_EQ(a.assignment, b.assignment);
    EXPECT_NEAR(a.inertia, b.inertia, 1e-6);
}

} // namespace
} // namespace stats
} // namespace speclens
