/**
 * @file
 * Unit tests for normalization and PCA.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "stats/normalize.h"
#include "stats/pca.h"
#include "stats/rng.h"

namespace speclens {
namespace stats {
namespace {

TEST(NormalizeTest, ColumnStats)
{
    Matrix m{{1, 10}, {3, 30}};
    ColumnStats stats = columnStats(m);
    EXPECT_DOUBLE_EQ(stats.means[0], 2.0);
    EXPECT_DOUBLE_EQ(stats.means[1], 20.0);
    EXPECT_NEAR(stats.stddevs[0], std::sqrt(2.0), 1e-12);
}

TEST(NormalizeTest, ZscoreHasZeroMeanUnitVariance)
{
    Matrix m{{1, 100}, {2, 200}, {3, 300}, {4, 400}};
    Matrix z = zscore(m);
    ColumnStats stats = columnStats(z);
    for (std::size_t c = 0; c < 2; ++c) {
        EXPECT_NEAR(stats.means[c], 0.0, 1e-12);
        EXPECT_NEAR(stats.stddevs[c], 1.0, 1e-12);
    }
}

TEST(NormalizeTest, ConstantColumnMapsToZero)
{
    Matrix m{{5, 1}, {5, 2}, {5, 3}};
    Matrix z = zscore(m);
    EXPECT_DOUBLE_EQ(z(0, 0), 0.0);
    EXPECT_DOUBLE_EQ(z(2, 0), 0.0);
}

TEST(NormalizeTest, ZscoreWithExternalStats)
{
    Matrix train{{0.0}, {10.0}};
    ColumnStats stats = columnStats(train);
    Matrix z = zscoreWith(Matrix{{5.0}}, stats);
    EXPECT_DOUBLE_EQ(z(0, 0), 0.0); // 5 is the training mean
}

TEST(NormalizeTest, CovarianceOfIndependentColumns)
{
    // Columns are orthogonal patterns: covariance should be ~0.
    Matrix m{{1, 1}, {-1, 1}, {1, -1}, {-1, -1}};
    Matrix cov = covarianceMatrix(m);
    EXPECT_NEAR(cov(0, 1), 0.0, 1e-12);
    EXPECT_NEAR(cov(0, 0), 4.0 / 3.0, 1e-12); // n-1 denominator
}

TEST(PcaTest, FirstComponentCapturesDominantDirection)
{
    // Points along y = 2x with tiny noise: PC1 should explain almost
    // all variance.
    Rng rng(42);
    Matrix m(50, 2);
    for (std::size_t i = 0; i < 50; ++i) {
        double x = rng.gaussian();
        m(i, 0) = x;
        m(i, 1) = 2.0 * x + 0.01 * rng.gaussian();
    }
    PcaResult pca = fitPca(m, RetentionPolicy::fixedCount(2));
    EXPECT_GT(pca.variance_per_component[0], 0.99);
}

TEST(PcaTest, EigenvaluesSumToDimensionForFullRankData)
{
    // For a correlation matrix, total variance equals the number of
    // (non-constant) metrics.
    Rng rng(7);
    Matrix m(100, 5);
    for (std::size_t r = 0; r < 100; ++r)
        for (std::size_t c = 0; c < 5; ++c)
            m(r, c) = rng.gaussian();
    PcaResult pca = fitPca(m);
    double total = 0.0;
    for (double v : pca.eigenvalues)
        total += v;
    EXPECT_NEAR(total, 5.0, 1e-8);
}

TEST(PcaTest, KaiserRetainsEigenvaluesAtLeastOne)
{
    Rng rng(11);
    Matrix m(60, 8);
    for (std::size_t r = 0; r < 60; ++r) {
        double shared = rng.gaussian();
        for (std::size_t c = 0; c < 8; ++c)
            m(r, c) = shared + 0.5 * rng.gaussian();
    }
    PcaResult pca = fitPca(m, RetentionPolicy::kaiser());
    ASSERT_GE(pca.retained, 1u);
    for (std::size_t i = 0; i < pca.retained; ++i)
        EXPECT_GE(pca.eigenvalues[i], 1.0);
    if (pca.retained < pca.eigenvalues.size()) {
        EXPECT_LT(pca.eigenvalues[pca.retained], 1.0);
    }
}

TEST(PcaTest, VarianceCoveredPolicy)
{
    Rng rng(13);
    Matrix m(40, 6);
    for (std::size_t r = 0; r < 40; ++r)
        for (std::size_t c = 0; c < 6; ++c)
            m(r, c) = rng.gaussian() * static_cast<double>(c + 1);
    PcaResult pca = fitPca(m, RetentionPolicy::varianceCovered(0.8));
    EXPECT_GE(pca.variance_covered, 0.8);
    // Minimality: dropping the last retained PC goes below target.
    double without_last =
        pca.variance_covered - pca.variance_per_component.back();
    EXPECT_LT(without_last, 0.8);
}

TEST(PcaTest, FixedCountClampsToAvailable)
{
    Matrix m{{1, 2}, {2, 4}, {3, 7}};
    PcaResult pca = fitPca(m, RetentionPolicy::fixedCount(10));
    EXPECT_LE(pca.retained, 2u);
}

TEST(PcaTest, ScoresAreUncorrelated)
{
    Rng rng(17);
    Matrix m(80, 4);
    for (std::size_t r = 0; r < 80; ++r) {
        double a = rng.gaussian(), b = rng.gaussian();
        m(r, 0) = a;
        m(r, 1) = a + 0.3 * rng.gaussian();
        m(r, 2) = b;
        m(r, 3) = b - a + 0.3 * rng.gaussian();
    }
    PcaResult pca = fitPca(m, RetentionPolicy::fixedCount(4));
    Matrix cov = covarianceMatrix(pca.scores);
    for (std::size_t i = 0; i < cov.rows(); ++i)
        for (std::size_t j = 0; j < cov.cols(); ++j)
            if (i != j) {
                EXPECT_NEAR(cov(i, j), 0.0, 1e-8);
            }
}

TEST(PcaTest, ScoreVarianceEqualsEigenvalue)
{
    Rng rng(19);
    Matrix m(60, 3);
    for (std::size_t r = 0; r < 60; ++r)
        for (std::size_t c = 0; c < 3; ++c)
            m(r, c) = rng.gaussian() * static_cast<double>(c + 1);
    PcaResult pca = fitPca(m, RetentionPolicy::fixedCount(3));
    Matrix cov = covarianceMatrix(pca.scores);
    for (std::size_t i = 0; i < 3; ++i)
        EXPECT_NEAR(cov(i, i), pca.eigenvalues[i], 1e-8);
}

TEST(PcaTest, ProjectionMatchesTrainingScores)
{
    Rng rng(23);
    Matrix m(30, 4);
    for (std::size_t r = 0; r < 30; ++r)
        for (std::size_t c = 0; c < 4; ++c)
            m(r, c) = rng.gaussian();
    PcaResult pca = fitPca(m);
    Matrix projected = pca.project(m);
    EXPECT_TRUE(projected.approxEquals(pca.scores, 1e-9));
}

TEST(PcaTest, DominantMetricIdentifiesLoudFeature)
{
    // Metrics 0 and 1 share a direction, so PC1 is loaded on them;
    // metric 2 is independent noise.
    Matrix m2(50, 3);
    Rng rng2(31);
    for (std::size_t r = 0; r < 50; ++r) {
        double shared = rng2.gaussian();
        m2(r, 0) = shared;
        m2(r, 1) = shared + 0.1 * rng2.gaussian();
        m2(r, 2) = rng2.gaussian();
    }
    PcaResult pca2 = fitPca(m2, RetentionPolicy::fixedCount(2));
    std::size_t dom = pca2.dominantMetric(0);
    EXPECT_TRUE(dom == 0 || dom == 1);
    EXPECT_THROW(pca2.dominantMetric(5), std::out_of_range);
}

TEST(PcaTest, RejectsDegenerateInput)
{
    EXPECT_THROW(fitPca(Matrix{{1.0, 2.0}}), std::invalid_argument);
    EXPECT_THROW(fitPca(Matrix()), std::invalid_argument);
}

} // namespace
} // namespace stats
} // namespace speclens
