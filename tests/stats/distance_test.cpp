/**
 * @file
 * Unit tests for distance metrics and 2-D geometry.
 */

#include <gtest/gtest.h>

#include "stats/distance.h"
#include "stats/geometry.h"

namespace speclens {
namespace stats {
namespace {

TEST(DistanceTest, Euclidean)
{
    EXPECT_DOUBLE_EQ(distance({0, 0}, {3, 4}), 5.0);
    EXPECT_DOUBLE_EQ(squaredEuclidean({0, 0}, {3, 4}), 25.0);
}

TEST(DistanceTest, Manhattan)
{
    EXPECT_DOUBLE_EQ(
        distance({1, 2}, {4, -2}, DistanceMetric::Manhattan), 7.0);
}

TEST(DistanceTest, Chebyshev)
{
    EXPECT_DOUBLE_EQ(
        distance({1, 2}, {4, -2}, DistanceMetric::Chebyshev), 4.0);
}

TEST(DistanceTest, LengthMismatchThrows)
{
    EXPECT_THROW(distance({1}, {1, 2}), std::invalid_argument);
    EXPECT_THROW(squaredEuclidean({1}, {1, 2}), std::invalid_argument);
}

TEST(DistanceTest, MetricAxioms)
{
    std::vector<double> a{1, 2, 3}, b{-1, 0, 5}, c{2, 2, 2};
    for (DistanceMetric metric :
         {DistanceMetric::Euclidean, DistanceMetric::Manhattan,
          DistanceMetric::Chebyshev}) {
        EXPECT_DOUBLE_EQ(distance(a, a, metric), 0.0);
        EXPECT_DOUBLE_EQ(distance(a, b, metric),
                         distance(b, a, metric));
        EXPECT_LE(distance(a, c, metric),
                  distance(a, b, metric) + distance(b, c, metric));
    }
}

TEST(DistanceTest, PairwiseMatrix)
{
    Matrix points{{0, 0}, {3, 4}, {0, 8}};
    Matrix d = pairwiseDistances(points);
    EXPECT_DOUBLE_EQ(d(0, 0), 0.0);
    EXPECT_DOUBLE_EQ(d(0, 1), 5.0);
    EXPECT_DOUBLE_EQ(d(1, 0), 5.0);
    EXPECT_DOUBLE_EQ(d(1, 2), 5.0);
    EXPECT_DOUBLE_EQ(d(0, 2), 8.0);
}

TEST(GeometryTest, ConvexHullOfSquare)
{
    // Interior point must be dropped.
    std::vector<Point2> points{{0, 0}, {2, 0}, {2, 2}, {0, 2}, {1, 1}};
    auto hull = convexHull(points);
    EXPECT_EQ(hull.size(), 4u);
    EXPECT_NEAR(polygonArea(hull), 4.0, 1e-12);
}

TEST(GeometryTest, DegenerateHulls)
{
    EXPECT_TRUE(convexHull({}).empty());
    EXPECT_EQ(convexHull({{1, 1}}).size(), 1u);
    // Collinear points collapse to the extreme pair.
    auto hull = convexHull({{0, 0}, {1, 1}, {2, 2}, {3, 3}});
    EXPECT_LE(hull.size(), 2u);
    EXPECT_DOUBLE_EQ(hullArea({{0, 0}, {1, 1}, {2, 2}}), 0.0);
}

TEST(GeometryTest, HullArea)
{
    std::vector<Point2> triangle{{0, 0}, {4, 0}, {0, 3}};
    EXPECT_NEAR(hullArea(triangle), 6.0, 1e-12);
}

TEST(GeometryTest, PointInConvexPolygon)
{
    auto hull = convexHull({{0, 0}, {4, 0}, {4, 4}, {0, 4}});
    EXPECT_TRUE(pointInConvexPolygon({2, 2}, hull));
    EXPECT_TRUE(pointInConvexPolygon({0, 0}, hull));  // vertex
    EXPECT_TRUE(pointInConvexPolygon({2, 0}, hull));  // edge
    EXPECT_FALSE(pointInConvexPolygon({5, 2}, hull));
    EXPECT_FALSE(pointInConvexPolygon({-0.1, 2}, hull));
}

TEST(GeometryTest, PointAgainstDegenerateHulls)
{
    EXPECT_FALSE(pointInConvexPolygon({0, 0}, {}));
    EXPECT_TRUE(pointInConvexPolygon({1, 1}, {{1, 1}}));
    EXPECT_FALSE(pointInConvexPolygon({2, 1}, {{1, 1}}));
    std::vector<Point2> segment{{0, 0}, {2, 2}};
    EXPECT_TRUE(pointInConvexPolygon({1, 1}, segment));
    EXPECT_FALSE(pointInConvexPolygon({1, 0}, segment));
}

} // namespace
} // namespace stats
} // namespace speclens
