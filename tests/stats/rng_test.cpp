/**
 * @file
 * Unit tests for the deterministic RNG.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "stats/rng.h"

namespace speclens {
namespace stats {
namespace {

TEST(RngTest, DeterministicPerSeed)
{
    Rng a(42), b(42), c(43);
    for (int i = 0; i < 100; ++i) {
        std::uint64_t va = a.next();
        EXPECT_EQ(va, b.next());
        (void)c;
    }
    Rng d(42), e(43);
    EXPECT_NE(d.next(), e.next());
}

TEST(RngTest, UniformInRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
    for (int i = 0; i < 1000; ++i) {
        double u = rng.uniform(5.0, 10.0);
        EXPECT_GE(u, 5.0);
        EXPECT_LT(u, 10.0);
    }
}

TEST(RngTest, UniformMeanConverges)
{
    Rng rng(11);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, BelowStaysBelow)
{
    Rng rng(13);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(RngTest, BernoulliFrequency)
{
    Rng rng(17);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += rng.bernoulli(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, GaussianMoments)
{
    Rng rng(19);
    double sum = 0.0, sum2 = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        double g = rng.gaussian();
        sum += g;
        sum2 += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(RngTest, GeometricMean)
{
    // Mean of geometric(p) starting at 0 is (1-p)/p.
    Rng rng(23);
    double sum = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(rng.geometric(0.25));
    EXPECT_NEAR(sum / n, 3.0, 0.1);
    EXPECT_EQ(Rng(1).geometric(1.0), 0u);
}

TEST(RngTest, HashNameStableAndDistinct)
{
    constexpr std::uint64_t h1 = hashName("505.mcf_r");
    constexpr std::uint64_t h2 = hashName("505.mcf_r");
    constexpr std::uint64_t h3 = hashName("605.mcf_s");
    static_assert(h1 == h2);
    EXPECT_EQ(h1, h2);
    EXPECT_NE(h1, h3);
    EXPECT_NE(hashName(""), hashName("a"));
}

TEST(RngTest, CombineSeedsOrderSensitive)
{
    EXPECT_NE(combineSeeds(1, 2), combineSeeds(2, 1));
    EXPECT_EQ(combineSeeds(1, 2), combineSeeds(1, 2));
}

} // namespace
} // namespace stats
} // namespace speclens
