/**
 * @file
 * Unit and statistical tests for the synthetic trace substrate:
 * workload profiles, address streams, branch streams and the trace
 * generator.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "trace/address_stream.h"
#include "trace/branch_stream.h"
#include "trace/trace_generator.h"
#include "trace/workload_profile.h"

namespace speclens {
namespace trace {
namespace {

WorkloadProfile
testProfile()
{
    WorkloadProfile p;
    p.name = "test.workload";
    return p;
}

// ---------------------------------------------------------------------
// WorkloadProfile validation
// ---------------------------------------------------------------------

TEST(WorkloadProfileTest, DefaultProfileIsValid)
{
    EXPECT_NO_THROW(testProfile().validate());
}

TEST(WorkloadProfileTest, RejectsEmptyName)
{
    WorkloadProfile p = testProfile();
    p.name.clear();
    EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(WorkloadProfileTest, RejectsOverfullMix)
{
    WorkloadProfile p = testProfile();
    p.mix.load = 0.6;
    p.mix.store = 0.5;
    EXPECT_FALSE(p.mix.valid());
    EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(WorkloadProfileTest, MixRemainder)
{
    InstructionMix mix;
    mix.load = 0.3;
    mix.store = 0.1;
    mix.branch = 0.1;
    mix.fp = 0.2;
    mix.simd = 0.1;
    EXPECT_NEAR(mix.remainder(), 0.2, 1e-12);
}

TEST(WorkloadProfileTest, RejectsBadWorkingSet)
{
    WorkloadProfile p = testProfile();
    p.memory.data[0].bytes = 10.0; // below one line
    EXPECT_THROW(p.validate(), std::invalid_argument);

    p = testProfile();
    p.memory.data[1].stride_bytes = 32.0; // below one line
    EXPECT_THROW(p.validate(), std::invalid_argument);

    p = testProfile();
    p.memory.hot_code_bytes = p.memory.code_bytes * 2;
    EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(WorkloadProfileTest, RejectsBadBranchModel)
{
    WorkloadProfile p = testProfile();
    p.branch.static_branches = 0;
    EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(WorkloadProfileTest, RejectsBadExecModel)
{
    WorkloadProfile p = testProfile();
    p.exec.mlp = 0.5;
    EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(WorkloadProfileTest, SeedDerivedFromName)
{
    WorkloadProfile a = testProfile();
    WorkloadProfile b = testProfile();
    EXPECT_EQ(a.seed(), b.seed());
    b.name = "other";
    EXPECT_NE(a.seed(), b.seed());
}

// ---------------------------------------------------------------------
// DataAddressStream
// ---------------------------------------------------------------------

TEST(DataAddressStreamTest, AddressesStayInsideRegions)
{
    MemoryModel model;
    DataAddressStream stream(model);
    stats::Rng rng(1);
    for (int i = 0; i < 50000; ++i) {
        std::uint64_t addr = stream.next(rng);
        ASSERT_GE(addr, kDataBase);
        // Which region?
        std::size_t region = (addr - kDataBase) / kDataRegionStride;
        ASSERT_LT(region, model.data.size());
        std::uint64_t offset =
            addr - (kDataBase + region * kDataRegionStride);
        EXPECT_LT(static_cast<double>(offset),
                  model.data[region].bytes);
    }
}

TEST(DataAddressStreamTest, WeightsControlRegionFrequency)
{
    MemoryModel model;
    model.data[0] = {64.0 * 1024, 0.5, 0.0, 64};
    model.data[1] = {64.0 * 1024, 0.5, 0.0, 64};
    model.data[2] = {64.0 * 1024, 0.0, 0.0, 64};
    model.data[3] = {64.0 * 1024, 0.0, 0.0, 64};
    DataAddressStream stream(model);
    stats::Rng rng(2);

    std::map<std::size_t, int> counts;
    const int n = 40000;
    for (int i = 0; i < n; ++i)
        ++counts[(stream.next(rng) - kDataBase) / kDataRegionStride];
    EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.5, 0.02);
    EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.5, 0.02);
    EXPECT_EQ(counts.count(2), 0u);
    EXPECT_EQ(counts.count(3), 0u);
}

TEST(DataAddressStreamTest, SequentialAccessesShareLines)
{
    // A fully sequential set touches far fewer distinct lines per
    // access than a random one.
    MemoryModel seq_model;
    seq_model.data[0] = {1024.0 * 1024, 1.0, 1.0, 64};
    seq_model.data[1].weight = 0.0;
    seq_model.data[2].weight = 0.0;
    seq_model.data[3].weight = 0.0;
    DataAddressStream stream(seq_model);
    stats::Rng rng(3);

    std::uint64_t prev_line = 0;
    int line_changes = 0;
    const int n = 8000;
    for (int i = 0; i < n; ++i) {
        std::uint64_t line = stream.next(rng) / kLineBytes;
        if (i > 0 && line != prev_line)
            ++line_changes;
        prev_line = line;
    }
    // 8-byte steps: one line change every 8 accesses.
    EXPECT_NEAR(line_changes / static_cast<double>(n), 0.125, 0.01);
}

TEST(DataAddressStreamTest, PageStrideTouchesOneLinePerPage)
{
    MemoryModel model;
    model.data[0] = {40.0 * 4096, 1.0, 0.0, 4096};
    model.data[1].weight = 0.0;
    model.data[2].weight = 0.0;
    model.data[3].weight = 0.0;
    DataAddressStream stream(model);
    stats::Rng rng(4);

    std::set<std::uint64_t> lines, pages;
    for (int i = 0; i < 20000; ++i) {
        std::uint64_t addr = stream.next(rng);
        lines.insert(addr / kLineBytes);
        pages.insert(addr / kPageBytes);
    }
    EXPECT_EQ(lines.size(), pages.size());
    EXPECT_EQ(pages.size(), 40u);
}

// ---------------------------------------------------------------------
// CodeAddressStream
// ---------------------------------------------------------------------

TEST(CodeAddressStreamTest, SequentialFetchAdvancesByFour)
{
    MemoryModel model;
    CodeAddressStream stream(model);
    std::uint64_t first = stream.nextPc();
    EXPECT_EQ(stream.nextPc(), first + 4);
    EXPECT_EQ(stream.nextPc(), first + 8);
}

TEST(CodeAddressStreamTest, PcStaysInCodeRegion)
{
    MemoryModel model;
    model.code_bytes = 4096;
    model.hot_code_bytes = 1024;
    CodeAddressStream stream(model);
    stats::Rng rng(5);
    for (int i = 0; i < 20000; ++i) {
        if (i % 7 == 0)
            stream.takeBranch(rng);
        std::uint64_t pc = stream.nextPc();
        EXPECT_GE(pc, kCodeBase);
        EXPECT_LT(pc, kCodeBase + 4096);
    }
}

TEST(CodeAddressStreamTest, LocalityConfinesTargets)
{
    MemoryModel model;
    model.code_bytes = 256 * 1024;
    model.hot_code_bytes = 4096;
    model.code_locality = 1.0; // always jump within the hot region
    CodeAddressStream stream(model);
    stats::Rng rng(6);
    for (int i = 0; i < 5000; ++i) {
        stream.takeBranch(rng);
        std::uint64_t pc = stream.nextPc();
        EXPECT_LT(pc, kCodeBase + 4096);
    }
}

// ---------------------------------------------------------------------
// BranchStream
// ---------------------------------------------------------------------

TEST(BranchStreamTest, TakenFractionConverges)
{
    for (double target : {0.4, 0.55, 0.7}) {
        BranchModel model;
        model.taken_fraction = target;
        stats::Rng rng(7);
        BranchStream stream(model, rng);
        int taken = 0;
        const int n = 60000;
        for (int i = 0; i < n; ++i)
            taken += stream.next(rng).taken;
        EXPECT_NEAR(taken / static_cast<double>(n), target, 0.06)
            << "target " << target;
    }
}

TEST(BranchStreamTest, IdsWithinPopulation)
{
    BranchModel model;
    model.static_branches = 100;
    stats::Rng rng(8);
    BranchStream stream(model, rng);
    EXPECT_EQ(stream.staticCount(), 100u);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(stream.next(rng).id, 100u);
}

TEST(BranchStreamTest, DynamicStreamIsSkewed)
{
    BranchModel model;
    model.static_branches = 1024;
    stats::Rng rng(9);
    BranchStream stream(model, rng);
    std::map<std::uint32_t, int> counts;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        ++counts[stream.next(rng).id];
    // The low quarter of ids should dominate the stream (Zipf skew
    // puts sqrt(1/4) = 50% of mass there).
    int low = 0;
    for (const auto &[id, count] : counts)
        if (id < 256)
            low += count;
    EXPECT_GT(low / static_cast<double>(n), 0.40);
}

TEST(BranchStreamTest, PatternedShareTracksModel)
{
    BranchModel model;
    model.static_branches = 2000;
    model.biased_fraction = 0.5;
    model.patterned_fraction = 0.8;
    stats::Rng rng(10);
    BranchStream stream(model, rng);
    // Static share of patterned = hard (0.5) * patterned (0.8),
    // stratified by dynamic weight so the static share is approximate.
    EXPECT_NEAR(stream.patternedShare(), 0.4, 0.12);
}

TEST(BranchStreamTest, HighBiasMeansPredictableStream)
{
    // With every branch strongly biased, a per-branch majority vote
    // predicts almost every outcome.
    BranchModel model;
    model.biased_fraction = 1.0;
    stats::Rng rng(11);
    BranchStream stream(model, rng);

    std::map<std::uint32_t, std::pair<int, int>> votes; // taken, total
    std::vector<BranchStream::Outcome> outcomes;
    for (int i = 0; i < 40000; ++i) {
        auto o = stream.next(rng);
        outcomes.push_back(o);
        ++votes[o.id].second;
        votes[o.id].first += o.taken;
    }
    int correct = 0;
    for (const auto &o : outcomes) {
        const auto &[taken, total] = votes[o.id];
        bool majority = 2 * taken >= total;
        correct += majority == o.taken;
    }
    EXPECT_GT(correct / static_cast<double>(outcomes.size()), 0.97);
}

// ---------------------------------------------------------------------
// TraceGenerator
// ---------------------------------------------------------------------

TEST(TraceGeneratorTest, DeterministicForSameSeed)
{
    WorkloadProfile p = testProfile();
    TraceGenerator g1(p), g2(p);
    for (int i = 0; i < 5000; ++i) {
        Instruction a = g1.next();
        Instruction b = g2.next();
        EXPECT_EQ(a.pc, b.pc);
        EXPECT_EQ(a.op, b.op);
        EXPECT_EQ(a.address, b.address);
        EXPECT_EQ(a.taken, b.taken);
    }
}

TEST(TraceGeneratorTest, SaltChangesTheStream)
{
    WorkloadProfile p = testProfile();
    TraceGenerator g1(p, 0), g2(p, 1);
    int differences = 0;
    for (int i = 0; i < 1000; ++i) {
        if (g1.next().op != g2.next().op)
            ++differences;
    }
    EXPECT_GT(differences, 0);
}

TEST(TraceGeneratorTest, MixConvergesToProfile)
{
    WorkloadProfile p = testProfile();
    p.mix.load = 0.30;
    p.mix.store = 0.10;
    p.mix.branch = 0.15;
    p.mix.fp = 0.20;
    p.mix.simd = 0.05;
    TraceGenerator gen(p);

    std::map<OpClass, int> counts;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        ++counts[gen.next().op];

    EXPECT_NEAR(counts[OpClass::Load] / static_cast<double>(n), 0.30,
                0.01);
    EXPECT_NEAR(counts[OpClass::Store] / static_cast<double>(n), 0.10,
                0.01);
    EXPECT_NEAR(counts[OpClass::Branch] / static_cast<double>(n), 0.15,
                0.01);
    EXPECT_NEAR(counts[OpClass::FpAlu] / static_cast<double>(n), 0.20,
                0.01);
    EXPECT_NEAR(counts[OpClass::Simd] / static_cast<double>(n), 0.05,
                0.005);
}

TEST(TraceGeneratorTest, MemoryOpsCarryAddresses)
{
    WorkloadProfile p = testProfile();
    TraceGenerator gen(p);
    for (int i = 0; i < 20000; ++i) {
        Instruction inst = gen.next();
        if (inst.isMemory())
            EXPECT_GE(inst.address, kDataBase);
        else
            EXPECT_EQ(inst.address, 0u);
        if (!inst.isBranch()) {
            EXPECT_FALSE(inst.taken);
        }
    }
}

TEST(TraceGeneratorTest, KernelFractionConverges)
{
    WorkloadProfile p = testProfile();
    p.exec.kernel_fraction = 0.25;
    TraceGenerator gen(p);
    int kernel = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        kernel += gen.next().kernel;
    EXPECT_NEAR(kernel / static_cast<double>(n), 0.25, 0.01);
}

TEST(TraceGeneratorTest, GenerateReturnsRequestedCount)
{
    WorkloadProfile p = testProfile();
    TraceGenerator gen(p);
    EXPECT_EQ(gen.generate(1234).size(), 1234u);
}

TEST(TraceGeneratorTest, InvalidProfileRejectedAtConstruction)
{
    WorkloadProfile p = testProfile();
    p.mix.load = 2.0;
    EXPECT_THROW(TraceGenerator{p}, std::invalid_argument);
}

TEST(InstructionTest, OpClassNames)
{
    EXPECT_EQ(opClassName(OpClass::Load), "load");
    EXPECT_EQ(opClassName(OpClass::Branch), "branch");
    EXPECT_EQ(opClassName(OpClass::Simd), "simd");
}

} // namespace
} // namespace trace
} // namespace speclens
