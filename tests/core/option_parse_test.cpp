/**
 * @file
 * Strict numeric option parsing tests.
 *
 * Every defect class that strtoull/atoi used to swallow silently must
 * come back as its own ParseStatus: "8x" is Trailing (not 8), "-1" is
 * Signed (not 18446744073709551615), 2^64 is Overflow (not saturated).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>

#include "core/option_parse.h"

namespace speclens {
namespace core {
namespace {

std::uint64_t
mustParse(const std::string &text)
{
    std::uint64_t out = 0;
    EXPECT_EQ(parseUnsigned(text, out), ParseStatus::Ok) << text;
    return out;
}

TEST(ParseUnsigned, AcceptsPlainDecimals)
{
    EXPECT_EQ(mustParse("0"), 0u);
    EXPECT_EQ(mustParse("8"), 8u);
    EXPECT_EQ(mustParse("007"), 7u);
    EXPECT_EQ(mustParse("30000"), 30'000u);
    EXPECT_EQ(mustParse("18446744073709551615"),
              std::numeric_limits<std::uint64_t>::max());
}

TEST(ParseUnsigned, RejectsEmpty)
{
    std::uint64_t out = 99;
    EXPECT_EQ(parseUnsigned("", out), ParseStatus::Empty);
    EXPECT_EQ(out, 99u) << "out must be untouched on failure";
}

TEST(ParseUnsigned, RejectsSigns)
{
    std::uint64_t out = 0;
    EXPECT_EQ(parseUnsigned("-1", out), ParseStatus::Signed);
    EXPECT_EQ(parseUnsigned("+4", out), ParseStatus::Signed);
}

TEST(ParseUnsigned, RejectsNonDigitsAndTrailingJunk)
{
    std::uint64_t out = 0;
    EXPECT_EQ(parseUnsigned("abc", out), ParseStatus::BadDigit);
    EXPECT_EQ(parseUnsigned(" 8", out), ParseStatus::BadDigit);
    EXPECT_EQ(parseUnsigned("8x", out), ParseStatus::Trailing);
    EXPECT_EQ(parseUnsigned("8 ", out), ParseStatus::Trailing);
    EXPECT_EQ(parseUnsigned("1e3", out), ParseStatus::Trailing);
    EXPECT_EQ(parseUnsigned("0x10", out), ParseStatus::Trailing);
    EXPECT_EQ(parseUnsigned("3.5", out), ParseStatus::Trailing);
}

TEST(ParseUnsigned, RejectsOverflow)
{
    std::uint64_t out = 0;
    // One past uint64 max, and something absurdly long.
    EXPECT_EQ(parseUnsigned("18446744073709551616", out),
              ParseStatus::Overflow);
    EXPECT_EQ(parseUnsigned(std::string(40, '9'), out),
              ParseStatus::Overflow);
}

TEST(ParseStatusDetail, EveryStatusHasAMessage)
{
    for (ParseStatus status :
         {ParseStatus::Ok, ParseStatus::Empty, ParseStatus::Signed,
          ParseStatus::BadDigit, ParseStatus::Trailing,
          ParseStatus::Overflow})
        EXPECT_FALSE(parseStatusDetail(status).empty());
    EXPECT_EQ(parseStatusDetail(ParseStatus::Trailing),
              "trailing characters after number");
}

} // namespace
} // namespace core
} // namespace speclens
