/**
 * @file
 * Campaign artifact store tests (ctest label `store`).
 *
 * Round-trips every shipped profile on every profiling machine through
 * a store directory and asserts bit-identical reload; seeds each
 * defect class (truncation, checksum flip, engine-version bump,
 * fingerprint mismatch) and asserts the load rejects the entry and the
 * caller recomputes without crashing; and checks the warm-run
 * acceptance criterion — a second campaign over a populated store
 * executes zero simulations.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/analysis_session.h"
#include "core/artifact_store.h"
#include "core/characterization.h"
#include "obs/export.h"
#include "obs/manifest.h"
#include "suites/emerging.h"
#include "suites/machines.h"
#include "suites/spec2006.h"
#include "suites/spec2017.h"
#include "trace/phased_workload.h"
#include "uarch/simulation.h"

using namespace speclens;

namespace {

/** Fresh (pre-cleaned) store directory unique to one test. */
std::string
storeDir(const std::string &test)
{
    std::filesystem::path dir =
        std::filesystem::temp_directory_path() /
        ("speclens_store_test_" + test);
    std::filesystem::remove_all(dir);
    return dir.string();
}

/** Tiny window so the full cross product stays fast. */
uarch::SimulationConfig
tinyWindow()
{
    uarch::SimulationConfig config;
    config.instructions = 2'000;
    config.warmup = 500;
    return config;
}

void
expectBitIdentical(const uarch::SimulationResult &a,
                   const uarch::SimulationResult &b)
{
    const uarch::PerfCounters &x = a.counters;
    const uarch::PerfCounters &y = b.counters;
    EXPECT_EQ(x.instructions, y.instructions);
    EXPECT_EQ(x.loads, y.loads);
    EXPECT_EQ(x.stores, y.stores);
    EXPECT_EQ(x.branches, y.branches);
    EXPECT_EQ(x.taken_branches, y.taken_branches);
    EXPECT_EQ(x.fp_ops, y.fp_ops);
    EXPECT_EQ(x.simd_ops, y.simd_ops);
    EXPECT_EQ(x.kernel_instructions, y.kernel_instructions);
    EXPECT_EQ(x.l1d_accesses, y.l1d_accesses);
    EXPECT_EQ(x.l1d_misses, y.l1d_misses);
    EXPECT_EQ(x.l1i_accesses, y.l1i_accesses);
    EXPECT_EQ(x.l1i_misses, y.l1i_misses);
    EXPECT_EQ(x.l2d_accesses, y.l2d_accesses);
    EXPECT_EQ(x.l2d_misses, y.l2d_misses);
    EXPECT_EQ(x.l2i_accesses, y.l2i_accesses);
    EXPECT_EQ(x.l2i_misses, y.l2i_misses);
    EXPECT_EQ(x.l3_accesses, y.l3_accesses);
    EXPECT_EQ(x.l3_misses, y.l3_misses);
    EXPECT_EQ(x.dtlb_accesses, y.dtlb_accesses);
    EXPECT_EQ(x.dtlb_misses, y.dtlb_misses);
    EXPECT_EQ(x.itlb_accesses, y.itlb_accesses);
    EXPECT_EQ(x.itlb_misses, y.itlb_misses);
    EXPECT_EQ(x.l2tlb_misses, y.l2tlb_misses);
    EXPECT_EQ(x.page_walks, y.page_walks);
    EXPECT_EQ(x.branch_mispredictions, y.branch_mispredictions);

    // Doubles are persisted as IEEE-754 bit patterns, so exact
    // equality is the contract, not a tolerance.
    EXPECT_EQ(a.cpi_stack.base, b.cpi_stack.base);
    EXPECT_EQ(a.cpi_stack.dependency, b.cpi_stack.dependency);
    EXPECT_EQ(a.cpi_stack.frontend_icache, b.cpi_stack.frontend_icache);
    EXPECT_EQ(a.cpi_stack.frontend_branch, b.cpi_stack.frontend_branch);
    EXPECT_EQ(a.cpi_stack.backend_l2, b.cpi_stack.backend_l2);
    EXPECT_EQ(a.cpi_stack.backend_l3, b.cpi_stack.backend_l3);
    EXPECT_EQ(a.cpi_stack.backend_memory, b.cpi_stack.backend_memory);
    EXPECT_EQ(a.cpi_stack.backend_tlb, b.cpi_stack.backend_tlb);
    EXPECT_EQ(a.power.core_watts, b.power.core_watts);
    EXPECT_EQ(a.power.llc_watts, b.power.llc_watts);
    EXPECT_EQ(a.power.dram_watts, b.power.dram_watts);
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
}

void
writeFile(const std::string &path, const std::string &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
}

} // namespace

// Every shipped profile on every profiling machine survives a save /
// reload cycle bit-identically, through a second store handle (a
// separate process in miniature).
TEST(CampaignStore, RoundTripEveryProfileAndMachine)
{
    const std::string dir = storeDir("round_trip");
    const uarch::SimulationConfig window = tinyWindow();

    std::vector<suites::BenchmarkInfo> benchmarks = suites::spec2017();
    for (const auto &b : suites::spec2006())
        benchmarks.push_back(b);
    for (const auto &b : suites::emergingBenchmarks())
        benchmarks.push_back(b);

    std::vector<uarch::SimulationResult> fresh;
    {
        core::CampaignStore store(dir);
        for (const auto &benchmark : benchmarks)
            for (const auto &machine : suites::profilingMachines())
                fresh.push_back(core::storedSimulate(
                    &store, benchmark.profile, machine, window));
        EXPECT_EQ(store.counters().saves, fresh.size());
        EXPECT_EQ(store.counters().computed, fresh.size());
        EXPECT_EQ(store.entryCount(), fresh.size());
    }

    core::CampaignStore reopened(dir);
    std::size_t i = 0;
    for (const auto &benchmark : benchmarks)
        for (const auto &machine : suites::profilingMachines()) {
            core::StoreKey key = core::makeStoreKey(benchmark.profile,
                                                    machine, window);
            uarch::SimulationResult loaded;
            ASSERT_EQ(reopened.load(key, loaded),
                      core::StoreStatus::Hit)
                << benchmark.name << " on " << machine.name;
            expectBitIdentical(fresh[i++], loaded);
        }
    EXPECT_EQ(reopened.counters().hits, fresh.size());
    EXPECT_EQ(reopened.counters().computed, 0u);
    std::filesystem::remove_all(dir);
}

// A truncated entry is rejected as Corrupt and recomputed in place.
TEST(CampaignStore, TruncatedEntryRecomputes)
{
    const std::string dir = storeDir("truncated");
    const uarch::SimulationConfig window = tinyWindow();
    const auto &benchmark = suites::spec2017Benchmark("505.mcf_r");
    const auto &machine = suites::skylakeMachine();

    core::CampaignStore store(dir);
    uarch::SimulationResult fresh = core::storedSimulate(
        &store, benchmark.profile, machine, window);
    core::StoreKey key =
        core::makeStoreKey(benchmark.profile, machine, window);

    // Header cut short.
    std::filesystem::resize_file(store.entryPath(key), 20);
    uarch::SimulationResult out;
    EXPECT_EQ(store.load(key, out), core::StoreStatus::Corrupt);

    // storedSimulate() recovers: recompute, overwrite, serve again.
    uarch::SimulationResult recomputed = core::storedSimulate(
        &store, benchmark.profile, machine, window);
    expectBitIdentical(fresh, recomputed);
    EXPECT_EQ(store.load(key, out), core::StoreStatus::Hit);

    // Payload cut short (header intact) is also Corrupt.
    std::string bytes = readFile(store.entryPath(key));
    writeFile(store.entryPath(key), bytes.substr(0, bytes.size() - 9));
    EXPECT_EQ(store.load(key, out), core::StoreStatus::Corrupt);
    EXPECT_GE(store.counters().corrupt, 2u);
    std::filesystem::remove_all(dir);
}

// A flipped payload byte fails the checksum; a flipped checksum byte
// does too.  Both are Corrupt, never a wrong result.
TEST(CampaignStore, ChecksumFlipDetected)
{
    const std::string dir = storeDir("checksum");
    const uarch::SimulationConfig window = tinyWindow();
    const auto &benchmark = suites::spec2017Benchmark("502.gcc_r");
    const auto &machine = suites::skylakeMachine();

    core::CampaignStore store(dir);
    core::storedSimulate(&store, benchmark.profile, machine, window);
    core::StoreKey key =
        core::makeStoreKey(benchmark.profile, machine, window);
    const std::string path = store.entryPath(key);
    const std::string original = readFile(path);

    std::string flipped = original;
    flipped[39] = static_cast<char>(flipped[39] ^ 0x7f); // checksum
    writeFile(path, flipped);
    uarch::SimulationResult out;
    EXPECT_EQ(store.load(key, out), core::StoreStatus::Corrupt);

    flipped = original;
    flipped[original.size() - 1] ^= 0x01; // payload
    writeFile(path, flipped);
    EXPECT_EQ(store.load(key, out), core::StoreStatus::Corrupt);
    std::filesystem::remove_all(dir);
}

// An entry written by a different engine version is StaleVersion (and
// would be recomputed), even though its checksum is intact.
TEST(CampaignStore, EngineVersionBumpDetected)
{
    const std::string dir = storeDir("version");
    const uarch::SimulationConfig window = tinyWindow();
    const auto &benchmark = suites::spec2017Benchmark("519.lbm_r");
    const auto &machine = suites::skylakeMachine();

    core::CampaignStore store(dir);
    core::storedSimulate(&store, benchmark.profile, machine, window);
    core::StoreKey key =
        core::makeStoreKey(benchmark.profile, machine, window);

    std::string bytes = readFile(store.entryPath(key));
    bytes[8] = static_cast<char>(bytes[8] ^ 0xff); // engine version
    writeFile(store.entryPath(key), bytes);

    uarch::SimulationResult out;
    EXPECT_EQ(store.load(key, out), core::StoreStatus::StaleVersion);
    EXPECT_EQ(store.counters().stale_version, 1u);
    std::filesystem::remove_all(dir);
}

// An entry parked under the wrong file name (here: copied onto another
// key's address) is FingerprintMismatch — content addressing holds.
TEST(CampaignStore, FingerprintMismatchDetected)
{
    const std::string dir = storeDir("fingerprint");
    const uarch::SimulationConfig window = tinyWindow();
    const auto &benchmark = suites::spec2017Benchmark("531.deepsjeng_r");
    const auto &machine = suites::skylakeMachine();

    core::CampaignStore store(dir);
    core::storedSimulate(&store, benchmark.profile, machine, window);
    core::StoreKey key =
        core::makeStoreKey(benchmark.profile, machine, window);

    uarch::SimulationConfig salted = window;
    salted.seed_salt = 7;
    core::StoreKey other =
        core::makeStoreKey(benchmark.profile, machine, salted);
    ASSERT_NE(key.fingerprint, other.fingerprint);

    std::filesystem::copy_file(store.entryPath(key),
                               store.entryPath(other));
    uarch::SimulationResult out;
    EXPECT_EQ(store.load(other, out),
              core::StoreStatus::FingerprintMismatch);

    // The misplaced copy still loads fine under its real address.
    EXPECT_EQ(store.load(key, out), core::StoreStatus::Hit);
    std::filesystem::remove_all(dir);
}

// Everything that determines a result re-addresses the entry.
TEST(CampaignStore, FingerprintCoversWindowAndModels)
{
    const uarch::SimulationConfig window = tinyWindow();
    const auto &benchmark = suites::spec2017Benchmark("505.mcf_r");
    const auto &machine = suites::skylakeMachine();
    const core::StoreKey base =
        core::makeStoreKey(benchmark.profile, machine, window);

    uarch::SimulationConfig salted = window;
    salted.seed_salt = 1;
    EXPECT_NE(core::makeStoreKey(benchmark.profile, machine, salted)
                  .fingerprint,
              base.fingerprint);

    uarch::SimulationConfig wider = window;
    wider.instructions += 1;
    EXPECT_NE(core::makeStoreKey(benchmark.profile, machine, wider)
                  .fingerprint,
              base.fingerprint);

    uarch::SimulationConfig raw = window;
    raw.apply_machine_transform = false;
    EXPECT_NE(core::makeStoreKey(benchmark.profile, machine, raw)
                  .fingerprint,
              base.fingerprint);

    uarch::SimulationConfig cold = window;
    cold.prewarm = false;
    EXPECT_NE(core::makeStoreKey(benchmark.profile, machine, cold)
                  .fingerprint,
              base.fingerprint);

    const auto &other = suites::spec2017Benchmark("502.gcc_r");
    EXPECT_NE(core::makeStoreKey(other.profile, machine, window)
                  .fingerprint,
              base.fingerprint);

    const auto &machines = suites::profilingMachines();
    EXPECT_NE(core::makeStoreKey(benchmark.profile, machines.at(1),
                                 window)
                  .fingerprint,
              base.fingerprint);
}

// The campaign-level key (CharacterizationConfig) and the raw
// simulate() key (SimulationConfig) agree, so bench campaigns and
// direct storedSimulate() calls share entries.
TEST(CampaignStore, CampaignAndRawKeysShareAddresses)
{
    core::CharacterizationConfig campaign;
    campaign.instructions = 2'000;
    campaign.warmup = 500;
    campaign.jobs = 5; // must not affect the address

    const auto &benchmark = suites::spec2017Benchmark("505.mcf_r");
    const auto &machine = suites::skylakeMachine();
    const core::StoreKey a =
        core::makeStoreKey(benchmark.profile, machine, campaign);
    const core::StoreKey b = core::makeStoreKey(
        benchmark.profile, machine, campaign.simulationConfig());
    EXPECT_EQ(a.fingerprint, b.fingerprint);

    campaign.jobs = 0;
    EXPECT_EQ(core::makeStoreKey(benchmark.profile, machine, campaign)
                  .fingerprint,
              a.fingerprint);
}

// Phased results round-trip through their own entry kind, and a pair
// load against a phased entry is rejected rather than misparsed.
TEST(CampaignStore, PhasedRoundTripAndKindMismatch)
{
    const std::string dir = storeDir("phased");
    uarch::SimulationConfig window = tinyWindow();
    window.instructions = 8'000; // room for 4 phases
    const auto &base = suites::spec2017Benchmark("502.gcc_r");
    trace::PhasedWorkload workload =
        trace::derivePhases(base.profile, 4, 0.35);

    core::CampaignStore store(dir);
    uarch::PhasedSimulationResult fresh = core::storedSimulatePhased(
        &store, workload, suites::skylakeMachine(), window);
    core::StoreKey key = core::makeStoreKey(
        workload, suites::skylakeMachine(), window);

    core::CampaignStore reopened(dir);
    uarch::PhasedSimulationResult loaded;
    ASSERT_EQ(reopened.loadPhased(key, loaded),
              core::StoreStatus::Hit);
    ASSERT_EQ(loaded.per_phase.size(), fresh.per_phase.size());
    for (std::size_t k = 0; k < fresh.per_phase.size(); ++k)
        expectBitIdentical(fresh.per_phase[k], loaded.per_phase[k]);
    EXPECT_EQ(loaded.combined_cpi, fresh.combined_cpi);
    EXPECT_EQ(loaded.combined_counters.instructions,
              fresh.combined_counters.instructions);

    // Same file requested as a pair entry: defensive rejection.
    uarch::SimulationResult pair_out;
    EXPECT_EQ(reopened.load(key, pair_out),
              core::StoreStatus::Corrupt);

    // Warm storedSimulatePhased() serves the entry without computing.
    core::CampaignStore warm(dir);
    uarch::PhasedSimulationResult again = core::storedSimulatePhased(
        &warm, workload, suites::skylakeMachine(), window);
    EXPECT_EQ(again.combined_cpi, fresh.combined_cpi);
    EXPECT_EQ(warm.counters().computed, 0u);
    std::filesystem::remove_all(dir);
}

// The acceptance criterion behind `--store`: a second campaign over a
// populated directory executes zero simulations.
TEST(CampaignStore, WarmCampaignRunsZeroSimulations)
{
    const std::string dir = storeDir("warm");
    core::SessionConfig config;
    config.machines = suites::profilingMachines();
    config.characterization.instructions = 2'000;
    config.characterization.warmup = 500;
    config.store_dir = dir;
    std::vector<suites::BenchmarkInfo> benchmarks =
        suites::spec2017RateInt();

    {
        core::AnalysisSession cold(config);
        cold.characterizer().prepare(benchmarks);
        EXPECT_GT(cold.characterizer().simulationsRun(), 0u);
        EXPECT_EQ(cold.store()->counters().computed,
                  cold.characterizer().simulationsRun());
    }

    core::AnalysisSession warm(config);
    warm.characterizer().prepare(benchmarks);
    EXPECT_EQ(warm.characterizer().simulationsRun(), 0u);
    EXPECT_EQ(warm.store()->counters().computed, 0u);
    EXPECT_EQ(warm.store()->counters().misses, 0u);
    EXPECT_NE(warm.summary().find("simulations=0"), std::string::npos);
    std::filesystem::remove_all(dir);
}

// scan() classifies every seeded defect and invalidateStale() removes
// exactly the inconsistent entries.
TEST(CampaignStore, ScanAndInvalidateStale)
{
    const std::string dir = storeDir("scan");
    const uarch::SimulationConfig window = tinyWindow();
    const auto &machine = suites::skylakeMachine();
    const char *names[] = {"500.perlbench_r", "502.gcc_r", "505.mcf_r",
                           "520.omnetpp_r"};

    core::CampaignStore store(dir);
    for (const char *name : names)
        core::storedSimulate(&store,
                             suites::spec2017Benchmark(name).profile,
                             machine, window);

    // Seed one defect of each class; names[3] stays healthy.
    core::StoreKey k0 = core::makeStoreKey(
        suites::spec2017Benchmark(names[0]).profile, machine, window);
    std::filesystem::resize_file(store.entryPath(k0), 12);

    core::StoreKey k1 = core::makeStoreKey(
        suites::spec2017Benchmark(names[1]).profile, machine, window);
    std::string bytes = readFile(store.entryPath(k1));
    bytes[8] = static_cast<char>(bytes[8] ^ 0xff);
    writeFile(store.entryPath(k1), bytes);

    core::StoreKey k2 = core::makeStoreKey(
        suites::spec2017Benchmark(names[2]).profile, machine, window);
    uarch::SimulationConfig salted = window;
    salted.seed_salt = 3;
    core::StoreKey misplaced = core::makeStoreKey(
        suites::spec2017Benchmark(names[2]).profile, machine, salted);
    std::filesystem::rename(store.entryPath(k2),
                            store.entryPath(misplaced));

    std::vector<core::StoreEntryInfo> entries = store.scan();
    ASSERT_EQ(entries.size(), 4u);
    std::size_t healthy = 0, corrupt = 0, stale = 0, mismatched = 0;
    for (const auto &entry : entries) {
        switch (entry.status) {
        case core::StoreStatus::Hit: ++healthy; break;
        case core::StoreStatus::Corrupt: ++corrupt; break;
        case core::StoreStatus::StaleVersion: ++stale; break;
        case core::StoreStatus::FingerprintMismatch:
            ++mismatched;
            break;
        default: break;
        }
    }
    EXPECT_EQ(healthy, 1u);
    EXPECT_EQ(corrupt, 1u);
    EXPECT_EQ(stale, 1u);
    EXPECT_EQ(mismatched, 1u);

    EXPECT_EQ(store.invalidateStale(), 3u);
    EXPECT_EQ(store.entryCount(), 1u);
    for (const auto &entry : store.scan())
        EXPECT_EQ(entry.status, core::StoreStatus::Hit);

    EXPECT_EQ(store.invalidate(), 1u);
    EXPECT_EQ(store.entryCount(), 0u);
    std::filesystem::remove_all(dir);
}

// A process killed mid-save leaves a half-written `.slart.tmp` behind
// (the atomic-rename protocol never publishes it).  Opening the store
// again must sweep the orphan, count it, and leave healthy entries
// alone.
TEST(CampaignStore, OrphanedTempFilesSweptOnOpen)
{
    const std::string dir = storeDir("orphans");
    const uarch::SimulationConfig window = tinyWindow();
    const auto &benchmark = suites::spec2017Benchmark("505.mcf_r");
    const auto &machine = suites::skylakeMachine();

    {
        core::CampaignStore store(dir);
        EXPECT_EQ(store.counters().orphaned_temp, 0u);
        core::storedSimulate(&store, benchmark.profile, machine,
                             window);
    }

    // Seed two interrupted writes next to the healthy entry.
    writeFile(dir + "/deadbeef00000001.slart.tmp", "half-written");
    writeFile(dir + "/deadbeef00000002.slart.tmp.1234", "torn");

    core::CampaignStore reopened(dir);
    EXPECT_EQ(reopened.counters().orphaned_temp, 2u);
    EXPECT_FALSE(std::filesystem::exists(
        dir + "/deadbeef00000001.slart.tmp"));
    EXPECT_FALSE(std::filesystem::exists(
        dir + "/deadbeef00000002.slart.tmp.1234"));

    // The published entry survives and still loads.
    EXPECT_EQ(reopened.entryCount(), 1u);
    core::StoreKey key =
        core::makeStoreKey(benchmark.profile, machine, window);
    uarch::SimulationResult out;
    EXPECT_EQ(reopened.load(key, out), core::StoreStatus::Hit);
    std::filesystem::remove_all(dir);
}

// Swept orphans surface in the session's `rejected=` summary rather
// than disappearing silently.
TEST(CampaignStore, OrphanSweepCountsIntoSessionSummary)
{
    const std::string dir = storeDir("orphan_summary");
    std::filesystem::create_directories(dir);
    writeFile(dir + "/feedface00000001.slart.tmp", "torn write");

    core::SessionConfig config;
    config.machines = {suites::skylakeMachine()};
    config.characterization.instructions = 2'000;
    config.characterization.warmup = 500;
    config.store_dir = dir;
    core::AnalysisSession session(config);
    EXPECT_EQ(session.store()->counters().orphaned_temp, 1u);
    EXPECT_NE(session.summary().find("rejected=1"), std::string::npos)
        << session.summary();
    std::filesystem::remove_all(dir);
}

// Every store-backed session leaves a run manifest in the store
// directory: well-formed JSON carrying the v1 schema keys and the
// session's configuration fingerprint.
TEST(AnalysisSession, WritesRunManifestOnDestruction)
{
    const std::string dir = storeDir("manifest");
    std::string fingerprint;
    {
        core::SessionConfig config;
        config.machines = suites::profilingMachines();
        config.characterization.instructions = 2'000;
        config.characterization.warmup = 500;
        config.store_dir = dir;
        core::AnalysisSession session(config);
        session.characterizer().prepare(suites::spec2017RateInt());
        fingerprint = session.configFingerprint();
        EXPECT_EQ(fingerprint.size(), 16u);
    }

    const std::string path =
        dir + "/" + obs::kManifestFileName;
    ASSERT_TRUE(std::filesystem::exists(path));
    std::string body = readFile(path);
    EXPECT_TRUE(obs::validateJson(body));
    for (const char *key :
         {"\"manifest_version\": 1", "\"engine_version\"",
          "\"config_fingerprint\"", "\"run\"", "\"totals\"",
          "\"rejected\"", "\"metrics\""})
        EXPECT_NE(body.find(key), std::string::npos) << key;
    EXPECT_NE(body.find(fingerprint), std::string::npos);
    EXPECT_NE(body.find("\"orphaned_temp\": 0"), std::string::npos);

    // A warm rerun rewrites the manifest with the same identity block.
    {
        core::SessionConfig config;
        config.machines = suites::profilingMachines();
        config.characterization.instructions = 2'000;
        config.characterization.warmup = 500;
        config.store_dir = dir;
        core::AnalysisSession warm(config);
        warm.characterizer().prepare(suites::spec2017RateInt());
        EXPECT_EQ(warm.configFingerprint(), fingerprint);
    }
    std::string warm_body = readFile(path);
    EXPECT_TRUE(obs::validateJson(warm_body));
    EXPECT_NE(warm_body.find(fingerprint), std::string::npos);
    std::filesystem::remove_all(dir);
}

// A different simulation window or machine set must change the
// manifest's configuration fingerprint.
TEST(AnalysisSession, ConfigFingerprintCoversWindowAndMachines)
{
    core::SessionConfig config;
    config.machines = {suites::skylakeMachine()};
    config.characterization.instructions = 2'000;
    config.characterization.warmup = 500;
    const std::string base =
        core::AnalysisSession(config).configFingerprint();

    core::SessionConfig wider = config;
    wider.characterization.instructions = 4'000;
    EXPECT_NE(core::AnalysisSession(wider).configFingerprint(), base);

    core::SessionConfig more = config;
    more.machines = suites::profilingMachines();
    EXPECT_NE(core::AnalysisSession(more).configFingerprint(), base);

    // jobs is execution policy, not measurement configuration.
    core::SessionConfig jobs = config;
    jobs.characterization.jobs = 7;
    EXPECT_EQ(core::AnalysisSession(jobs).configFingerprint(), base);
}

// A store on an unwritable path degrades soft: analyses still run,
// saves report failure, nothing crashes.
TEST(CampaignStore, UnwritableDirectoryDegradesSoft)
{
    core::CampaignStore store("/proc/speclens_no_such_store");
    const uarch::SimulationConfig window = tinyWindow();
    const auto &benchmark = suites::spec2017Benchmark("505.mcf_r");
    const auto &machine = suites::skylakeMachine();

    uarch::SimulationResult direct =
        uarch::simulate(benchmark.profile, machine, window);
    uarch::SimulationResult through = core::storedSimulate(
        &store, benchmark.profile, machine, window);
    expectBitIdentical(direct, through);
    EXPECT_EQ(store.counters().saves, 0u);
    EXPECT_EQ(store.entryCount(), 0u);
}
