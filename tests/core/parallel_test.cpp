/**
 * @file
 * Tests for the parallel simulation engine: the parallelFor/ThreadPool
 * utilities, bit-identical campaign results for any job count, and
 * thread safety of the Characterizer memo cache.
 *
 * These tests carry the ctest label `parallel` so tier-1 verification
 * can run them under ThreadSanitizer:
 *   cmake -B build-tsan -DSPECLENS_SANITIZE=thread
 *   ctest --test-dir build-tsan -L parallel
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/characterization.h"
#include "core/parallel.h"
#include "suites/machines.h"
#include "suites/spec2017.h"

namespace speclens {
namespace core {
namespace {

TEST(ParallelForTest, VisitsEveryIndexExactlyOnce)
{
    constexpr std::size_t kCount = 500;
    std::vector<std::atomic<int>> visits(kCount);
    parallelFor(kCount, 8, [&](std::size_t i) {
        visits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < kCount; ++i)
        EXPECT_EQ(visits[i].load(), 1) << "index " << i;
}

TEST(ParallelForTest, SingleJobRunsInOrderOnCallingThread)
{
    std::vector<std::size_t> order;
    std::thread::id caller = std::this_thread::get_id();
    parallelFor(64, 1, [&](std::size_t i) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
        order.push_back(i);
    });
    ASSERT_EQ(order.size(), 64u);
    for (std::size_t i = 0; i < order.size(); ++i)
        EXPECT_EQ(order[i], i);
}

TEST(ParallelForTest, ZeroCountIsANoop)
{
    parallelFor(0, 8, [&](std::size_t) { FAIL(); });
}

TEST(ParallelForTest, PropagatesBodyException)
{
    EXPECT_THROW(
        parallelFor(100, 4,
                    [](std::size_t i) {
                        if (i == 37)
                            throw std::runtime_error("body failed");
                    }),
        std::runtime_error);
}

TEST(ThreadPoolTest, RunsAllSubmittedTasksAndIsReusable)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4u);
    std::atomic<int> done{0};
    for (int batch = 0; batch < 3; ++batch) {
        for (int i = 0; i < 50; ++i)
            pool.submit([&done]() {
                done.fetch_add(1, std::memory_order_relaxed);
            });
        pool.wait();
        EXPECT_EQ(done.load(), (batch + 1) * 50);
    }
}

TEST(ThreadPoolTest, WaitRethrowsFirstTaskException)
{
    ThreadPool pool(2);
    pool.submit([]() { throw std::runtime_error("task failed"); });
    EXPECT_THROW(pool.wait(), std::runtime_error);
    // The error is consumed; the pool keeps working.
    std::atomic<int> done{0};
    pool.submit([&done]() { ++done; });
    pool.wait();
    EXPECT_EQ(done.load(), 1);
}

/** Small campaign: first benchmarks of CPU2017 on all 7 machines. */
std::vector<suites::BenchmarkInfo>
smallSuite(std::size_t n)
{
    std::vector<suites::BenchmarkInfo> suite = suites::spec2017();
    suite.resize(n);
    return suite;
}

CharacterizationConfig
smallConfig(std::size_t jobs)
{
    CharacterizationConfig config;
    config.instructions = 8'000;
    config.warmup = 2'000;
    config.jobs = jobs;
    return config;
}

/** Byte-level equality, strictest possible determinism check. */
bool
byteIdentical(const stats::Matrix &a, const stats::Matrix &b)
{
    return a.rows() == b.rows() && a.cols() == b.cols() &&
           std::memcmp(a.data().data(), b.data().data(),
                       a.data().size() * sizeof(double)) == 0;
}

TEST(CharacterizerParallelTest, FeatureMatrixBitIdenticalAcrossJobCounts)
{
    std::vector<suites::BenchmarkInfo> suite = smallSuite(6);
    auto matrixFor = [&suite](std::size_t jobs) {
        Characterizer characterizer(suites::profilingMachines(),
                                    smallConfig(jobs));
        return characterizer.featureMatrix(suite);
    };
    stats::Matrix jobs1 = matrixFor(1);
    stats::Matrix jobs2 = matrixFor(2);
    stats::Matrix jobs8 = matrixFor(8);
    EXPECT_TRUE(byteIdentical(jobs1, jobs2));
    EXPECT_TRUE(byteIdentical(jobs1, jobs8));
}

// The old unordered_set prefetch tracker made the memory-centric
// counters depend on traversal order once its wipe threshold landed;
// the per-slot bits must stay bit-identical for any job count.
TEST(CharacterizerParallelTest, PrefetchCountersBitIdenticalAcrossJobCounts)
{
    std::vector<suites::BenchmarkInfo> suite = smallSuite(4);
    auto countersFor = [&suite](std::size_t jobs) {
        Characterizer characterizer(suites::memoryCentricMachines(),
                                    smallConfig(jobs));
        characterizer.prepare(suite);
        std::vector<std::uint64_t> out;
        for (const suites::BenchmarkInfo &b : suite)
            for (std::size_t m = 0; m < characterizer.machines().size();
                 ++m) {
                const uarch::PerfCounters &c =
                    characterizer.simulation(b, m).counters;
                out.insert(out.end(),
                           {c.prefetch_fills, c.prefetch_useful,
                            c.prefetch_evicted_unused, c.way_pred_hits,
                            c.way_pred_mispredicts, c.dram_accesses,
                            c.dram_row_hits, c.dram_busy_cycles,
                            c.dram_budget_cycles});
            }
        return out;
    };
    std::vector<std::uint64_t> jobs1 = countersFor(1);
    EXPECT_EQ(jobs1, countersFor(2));
    EXPECT_EQ(jobs1, countersFor(6));
}

TEST(CharacterizerParallelTest, PrepareFillsCacheAndMatchesOnDemand)
{
    std::vector<suites::BenchmarkInfo> suite = smallSuite(4);

    Characterizer parallel(suites::profilingMachines(), smallConfig(8));
    parallel.prepare(suite);
    EXPECT_EQ(parallel.cachedMeasurements(),
              suite.size() * parallel.machines().size());

    Characterizer serial(suites::profilingMachines(), smallConfig(1));
    for (std::size_t b = 0; b < suite.size(); ++b) {
        for (std::size_t m = 0; m < parallel.machines().size(); ++m) {
            MetricVector expected = serial.metrics(suite[b], m);
            MetricVector got = parallel.metrics(suite[b], m);
            EXPECT_EQ(std::memcmp(expected.values.data(),
                                  got.values.data(),
                                  sizeof(expected.values)),
                      0)
                << suite[b].name << " machine " << m;
        }
    }
}

TEST(CharacterizerParallelTest, PrepareRejectsBadMachineIndex)
{
    std::vector<suites::BenchmarkInfo> suite = smallSuite(1);
    Characterizer characterizer(suites::profilingMachines(),
                                smallConfig(2));
    EXPECT_THROW(characterizer.prepare(suite, {99}, 2),
                 std::out_of_range);
}

TEST(CharacterizerParallelTest, ConcurrentMetricsCallsAreSafe)
{
    std::vector<suites::BenchmarkInfo> suite = smallSuite(3);
    std::size_t n_machines = suites::profilingMachines().size();

    // Serial reference values, from an independent characterizer.
    Characterizer reference(suites::profilingMachines(),
                            smallConfig(1));
    std::vector<MetricVector> expected;
    for (const suites::BenchmarkInfo &benchmark : suite)
        for (std::size_t m = 0; m < n_machines; ++m)
            expected.push_back(reference.metrics(benchmark, m));

    // Eight threads hammer one shared characterizer, starting cold so
    // cache misses, concurrent inserts and hits all happen, each
    // thread walking the pairs from a different starting offset.
    Characterizer shared(suites::profilingMachines(), smallConfig(1));
    constexpr int kThreads = 8;
    std::atomic<int> mismatches{0};
    std::vector<std::thread> threads;
    std::size_t n_pairs = suite.size() * n_machines;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t]() {
            for (std::size_t k = 0; k < n_pairs; ++k) {
                std::size_t pair =
                    (k + static_cast<std::size_t>(t) * 3) % n_pairs;
                std::size_t b = pair / n_machines;
                std::size_t m = pair % n_machines;
                MetricVector got = shared.metrics(suite[b], m);
                if (std::memcmp(got.values.data(),
                                expected[pair].values.data(),
                                sizeof(got.values)) != 0)
                    mismatches.fetch_add(1);
            }
        });
    }
    for (std::thread &thread : threads)
        thread.join();
    EXPECT_EQ(mismatches.load(), 0);
    EXPECT_EQ(shared.cachedMeasurements(), n_pairs);
}

} // namespace
} // namespace core
} // namespace speclens
