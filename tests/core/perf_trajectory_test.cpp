/**
 * @file
 * Trajectory artifact (BENCH_<pr>.json) contract tests.
 *
 * The committed artifact is only useful if (a) the deterministic facts
 * it records are actually deterministic across reruns, (b) the JSON it
 * emits is well-formed, and (c) the run re-proves the bit-identical
 * contracts (fused-vs-materialized parity, warm-store reuse) rather
 * than asserting them on faith.  Timings are checked for sanity only —
 * they are the one part allowed to vary.
 */

#include <filesystem>
#include <string>

#include <gtest/gtest.h>

#include "core/perf_trajectory.h"
#include "obs/export.h"

using namespace speclens;

namespace {

/** Fresh (pre-cleaned) store directory unique to one test. */
std::string
storeDir(const std::string &test)
{
    std::filesystem::path dir =
        std::filesystem::temp_directory_path() /
        ("speclens_trajectory_test_" + test);
    std::filesystem::remove_all(dir);
    return dir.string();
}

/** Tiny window so a full 301-pair trajectory stays fast. */
core::TrajectoryConfig
tinyConfig()
{
    core::TrajectoryConfig config;
    config.pr = 6;
    config.instructions = 1'500;
    config.warmup = 500;
    return config;
}

TEST(Trajectory, PinnedDefaultsAndArtifactName)
{
    core::TrajectoryConfig config;
    EXPECT_EQ(config.instructions, core::kTrajectoryInstructions);
    EXPECT_EQ(config.warmup, core::kTrajectoryWarmup);
    EXPECT_EQ(config.seed_salt, 0u);
    EXPECT_EQ(core::trajectoryArtifactName(6), "BENCH_6.json");
    EXPECT_EQ(core::trajectoryArtifactName(0), "BENCH_0.json");
}

TEST(Trajectory, CampaignShapeAndParity)
{
    core::TrajectoryResult r = core::runTrajectory(tinyConfig());

    // The pinned campaign: all of CPU2017 on the seven profiling
    // machines, single-threaded.
    EXPECT_EQ(r.benchmarks, 43u);
    EXPECT_EQ(r.machines, 7u);
    EXPECT_EQ(r.simulations, r.benchmarks * r.machines);
    EXPECT_EQ(r.records_per_simulation, 2'000u);
    EXPECT_EQ(r.records_total,
              r.records_per_simulation * r.simulations);

    // The run re-proves fused-vs-materialized parity itself.
    EXPECT_TRUE(r.parity_bit_identical);
    EXPECT_NE(r.campaign_fingerprint, 0u);

    // Stats stage ran over the campaign's feature matrix.
    EXPECT_EQ(r.feature_rows, 43u);
    EXPECT_GT(r.feature_cols, 0u);
    EXPECT_GE(r.pca_retained, 1u);
    EXPECT_GT(r.pca_variance_covered, 0.0);
    EXPECT_NE(r.stats_fingerprint, 0u);

    // Timings: positive, and rates consistent with them.
    EXPECT_GT(r.fused_seconds, 0.0);
    EXPECT_GT(r.materialized_seconds, 0.0);
    EXPECT_GT(r.simulations_per_second, 0.0);
    EXPECT_GT(r.records_per_second, 0.0);

    // No store directory given, so the reuse stage was skipped.
    EXPECT_FALSE(r.store_checked);
}

TEST(Trajectory, DeterministicFactsAndWarmStoreReuse)
{
    core::TrajectoryConfig config = tinyConfig();
    core::TrajectoryResult first = core::runTrajectory(config);

    config.store_dir = storeDir("warm_reuse");
    core::TrajectoryResult second = core::runTrajectory(config);

    // Deterministic facts agree across independent runs (with and
    // without a store attached).
    EXPECT_EQ(first.campaign_fingerprint, second.campaign_fingerprint);
    EXPECT_EQ(first.stats_fingerprint, second.stats_fingerprint);
    EXPECT_EQ(first.pca_retained, second.pca_retained);
    EXPECT_EQ(first.pca_variance_covered, second.pca_variance_covered);

    // The store stage proved cold/warm reuse: the warm rerun simulated
    // nothing and produced bit-identical results.
    EXPECT_TRUE(second.store_checked);
    EXPECT_EQ(second.warm_simulations_run, 0u);
    EXPECT_EQ(second.warm_hit_rate, 1.0);
    EXPECT_TRUE(second.warm_bit_identical);
    EXPECT_GT(second.store_cold_seconds, 0.0);
    EXPECT_GT(second.store_warm_seconds, 0.0);
    EXPECT_LT(second.store_warm_seconds, second.store_cold_seconds);

    // The stdout facts block is byte-identical apart from the store
    // line (absent vs proven), so compare the runs' common prefix and
    // each block's own stability re-rendered.
    std::string facts_first = core::renderTrajectoryFacts(first);
    std::string facts_second = core::renderTrajectoryFacts(second);
    EXPECT_NE(facts_first.find("bit-identical: yes"), std::string::npos);
    EXPECT_NE(facts_second.find("store: warm rerun simulations=0 "
                                "bit-identical: yes"),
              std::string::npos);
    std::string prefix =
        facts_first.substr(0, facts_first.find("store:"));
    EXPECT_EQ(facts_second.compare(0, prefix.size(), prefix), 0);

    std::filesystem::remove_all(config.store_dir);
}

TEST(Trajectory, JsonIsWellFormedAndCarriesTheFacts)
{
    core::TrajectoryResult r = core::runTrajectory(tinyConfig());

    std::string json = core::renderTrajectoryJson(r);
    EXPECT_TRUE(obs::validateJson(json));

    // Schema marker and the determinism-bearing fields must be present.
    EXPECT_NE(json.find("\"schema\": \"speclens-bench-trajectory-v2\""),
              std::string::npos);
    EXPECT_NE(json.find("\"pr\": 6"), std::string::npos);
    EXPECT_NE(json.find("\"simulations\": 301"), std::string::npos);
    EXPECT_NE(json.find("\"parity_bit_identical\": true"),
              std::string::npos);
    EXPECT_NE(json.find("\"fingerprint\""), std::string::npos);
    EXPECT_NE(json.find("\"checked\": false"), std::string::npos);

    // v2 additions: the recorded seed baseline plus the cumulative
    // speedup derived from it.
    EXPECT_NE(json.find("\"seed_baseline\""), std::string::npos);
    EXPECT_NE(json.find("\"speedup_vs_seed\""), std::string::npos);
    EXPECT_GT(r.speedup_vs_seed, 0.0);
    EXPECT_DOUBLE_EQ(r.speedup_vs_seed,
                     r.records_per_second / core::kSeedRecordsPerSecond);

    // Facts block never leaks timings: no "seconds" token on stdout.
    std::string facts = core::renderTrajectoryFacts(r);
    EXPECT_EQ(facts.find("seconds"), std::string::npos);
    EXPECT_EQ(facts.find("_per_second"), std::string::npos);
}

} // namespace
