/**
 * @file
 * Unit tests for the core analysis library: metrics, characterization,
 * similarity pipeline, subsetting, validation and reports.
 *
 * These tests use reduced simulation windows; the full-scale headline
 * reproductions live in tests/integration/paper_claims_test.cpp.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "core/characterization.h"
#include "core/metrics.h"
#include "core/report.h"
#include "core/similarity.h"
#include "core/subsetting.h"
#include "core/validation.h"
#include "suites/machines.h"
#include "suites/score_database.h"
#include "suites/spec2017.h"

namespace speclens {
namespace core {
namespace {

CharacterizationConfig
quickConfig()
{
    CharacterizationConfig config;
    config.instructions = 25'000;
    config.warmup = 5'000;
    return config;
}

Characterizer
quickCharacterizer()
{
    return Characterizer(suites::profilingMachines(), quickConfig());
}

// ---------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------

TEST(MetricsTest, CanonicalSelectionHasTwentyMetrics)
{
    EXPECT_EQ(metricsFor(MetricSelection::Canonical).size(),
              kCanonicalMetricCount);
    EXPECT_EQ(kCanonicalMetricCount, 20u);
}

TEST(MetricsTest, SelectionsAreSubsetsOfAllMetrics)
{
    for (MetricSelection sel :
         {MetricSelection::Canonical, MetricSelection::Branch,
          MetricSelection::DataCache, MetricSelection::InstrCache,
          MetricSelection::CacheAll, MetricSelection::Tlb,
          MetricSelection::Power}) {
        for (Metric m : metricsFor(sel))
            EXPECT_LT(static_cast<std::size_t>(m), kTotalMetricCount)
                << metricSelectionName(sel);
    }
}

TEST(MetricsTest, NamesAreUnique)
{
    std::set<std::string> names;
    for (std::size_t i = 0; i < kTotalMetricCount; ++i)
        EXPECT_TRUE(
            names.insert(metricName(static_cast<Metric>(i))).second);
}

TEST(MetricsTest, ExtractionMatchesCounters)
{
    uarch::SimulationResult result;
    result.counters.instructions = 1'000'000;
    result.counters.l1d_misses = 12'000;
    result.counters.dtlb_misses = 3'000;
    result.counters.loads = 300'000;
    result.power.core_watts = 17.5;
    MetricVector mv = extractMetrics(result);
    EXPECT_DOUBLE_EQ(mv.get(Metric::L1dMpki), 12.0);
    EXPECT_DOUBLE_EQ(mv.get(Metric::DtlbMpmi), 3000.0);
    EXPECT_DOUBLE_EQ(mv.get(Metric::PctLoad), 30.0);
    EXPECT_DOUBLE_EQ(mv.get(Metric::CorePower), 17.5);
}

// ---------------------------------------------------------------------
// Characterizer
// ---------------------------------------------------------------------

TEST(CharacterizerTest, FeatureMatrixShape)
{
    Characterizer characterizer = quickCharacterizer();
    auto suite = suites::spec2017SpeedInt();
    stats::Matrix features = characterizer.featureMatrix(suite);
    EXPECT_EQ(features.rows(), 10u);
    EXPECT_EQ(features.cols(), 140u); // 7 machines x 20 metrics
    for (std::size_t r = 0; r < features.rows(); ++r)
        for (std::size_t c = 0; c < features.cols(); ++c)
            EXPECT_TRUE(std::isfinite(features(r, c)))
                << suite[r].name << " col " << c;
}

TEST(CharacterizerTest, MeasurementsAreMemoised)
{
    Characterizer characterizer = quickCharacterizer();
    auto suite = suites::spec2017SpeedInt();
    characterizer.featureMatrix(suite);
    std::size_t after_first = characterizer.cachedMeasurements();
    EXPECT_EQ(after_first, 70u);
    characterizer.featureMatrix(suite, MetricSelection::Branch);
    EXPECT_EQ(characterizer.cachedMeasurements(), after_first);
}

TEST(CharacterizerTest, MachineSubsetSelectsColumns)
{
    Characterizer characterizer = quickCharacterizer();
    auto suite = suites::spec2017SpeedInt();
    stats::Matrix power = characterizer.featureMatrix(
        suite, MetricSelection::Power, {0, 1, 2});
    EXPECT_EQ(power.cols(), 9u); // 3 machines x 3 power metrics
}

TEST(CharacterizerTest, FeatureNamesAlignWithColumns)
{
    Characterizer characterizer = quickCharacterizer();
    auto names = characterizer.featureNames();
    EXPECT_EQ(names.size(), 140u);
    EXPECT_EQ(names.front(), "skylake.l1d_mpki");
    EXPECT_EQ(names.back(), "opteron.dram_power");
}

TEST(CharacterizerTest, InvalidIndicesThrow)
{
    Characterizer characterizer = quickCharacterizer();
    const auto &b = suites::spec2017Benchmark("541.leela_r");
    EXPECT_THROW(characterizer.simulation(b, 99), std::out_of_range);
    EXPECT_THROW(characterizer.featureNames(
                     MetricSelection::Canonical, {99}),
                 std::out_of_range);
    EXPECT_THROW(Characterizer({}, quickConfig()),
                 std::invalid_argument);
}

// ---------------------------------------------------------------------
// Similarity pipeline
// ---------------------------------------------------------------------

TEST(SimilarityTest, PipelineProducesConsistentResult)
{
    Characterizer characterizer = quickCharacterizer();
    auto suite = suites::spec2017SpeedInt();
    SimilarityResult sim = analyzeSimilarity(
        characterizer.featureMatrix(suite),
        suites::benchmarkNames(suite));

    EXPECT_EQ(sim.labels.size(), 10u);
    EXPECT_EQ(sim.scores.rows(), 10u);
    EXPECT_EQ(sim.scores.cols(), sim.pca.retained);
    EXPECT_EQ(sim.dendrogram.numLeaves(), 10u);
    EXPECT_GT(sim.pca.variance_covered, 0.5);
    EXPECT_LE(sim.pca.variance_covered, 1.0 + 1e-9);
}

TEST(SimilarityTest, DistanceAndLookupHelpers)
{
    Characterizer characterizer = quickCharacterizer();
    auto suite = suites::spec2017SpeedInt();
    SimilarityResult sim = analyzeSimilarity(
        characterizer.featureMatrix(suite),
        suites::benchmarkNames(suite));

    std::size_t mcf = sim.indexOf("605.mcf_s");
    EXPECT_EQ(sim.labels[mcf], "605.mcf_s");
    EXPECT_THROW(sim.indexOf("nope"), std::out_of_range);
    EXPECT_DOUBLE_EQ(sim.pcDistance(mcf, mcf), 0.0);
    EXPECT_GT(sim.pcDistance(mcf, sim.indexOf("641.leela_s")), 0.0);

    std::string rendered = sim.renderDendrogram();
    EXPECT_NE(rendered.find("605.mcf_s"), std::string::npos);
}

TEST(SimilarityTest, InputValidation)
{
    stats::Matrix m(3, 4);
    EXPECT_THROW(analyzeSimilarity(m, {"a", "b"}),
                 std::invalid_argument);
    EXPECT_THROW(analyzeSimilarity(stats::Matrix(1, 4), {"a"}),
                 std::invalid_argument);
}

// ---------------------------------------------------------------------
// Subsetting
// ---------------------------------------------------------------------

class SubsettingTest : public ::testing::Test
{
  protected:
    SubsettingTest()
        : characterizer_(suites::profilingMachines(), quickConfig()),
          suite_(suites::spec2017SpeedInt()),
          sim_(analyzeSimilarity(characterizer_.featureMatrix(suite_),
                                 suites::benchmarkNames(suite_)))
    {
    }

    Characterizer characterizer_;
    std::vector<suites::BenchmarkInfo> suite_;
    SimilarityResult sim_;
};

TEST_F(SubsettingTest, SubsetSizesRespected)
{
    for (std::size_t k : {1u, 2u, 3u, 5u, 10u}) {
        SubsetResult subset = selectSubset(sim_, k);
        EXPECT_EQ(subset.representatives.size(), k);
        EXPECT_EQ(subset.clusters.size(), k);
    }
    EXPECT_THROW(selectSubset(sim_, 0), std::invalid_argument);
    EXPECT_THROW(selectSubset(sim_, 11), std::invalid_argument);
}

TEST_F(SubsettingTest, RepresentativeBelongsToItsCluster)
{
    for (RepresentativeRule rule :
         {RepresentativeRule::ShortestLinkage,
          RepresentativeRule::Medoid}) {
        SubsetResult subset = selectSubset(sim_, 3, rule);
        for (std::size_t c = 0; c < 3; ++c) {
            const auto &cluster = subset.clusters[c];
            EXPECT_NE(std::find(cluster.begin(), cluster.end(),
                                subset.representatives[c]),
                      cluster.end())
                << representativeRuleName(rule);
        }
    }
}

TEST_F(SubsettingTest, ClustersPartitionTheSuite)
{
    SubsetResult subset = selectSubset(sim_, 4);
    std::set<std::string> seen;
    for (const auto &cluster : subset.clusters)
        for (const std::string &name : cluster)
            EXPECT_TRUE(seen.insert(name).second) << name;
    EXPECT_EQ(seen.size(), suite_.size());
}

TEST_F(SubsettingTest, SimulationTimeReductionComputed)
{
    SubsetResult subset = selectSubset(
        sim_, 3, RepresentativeRule::ShortestLinkage, suite_);
    EXPECT_GT(subset.simulation_time_reduction, 1.0);
    // Without benchmark records the reduction is unavailable.
    SubsetResult bare = selectSubset(sim_, 3);
    EXPECT_DOUBLE_EQ(bare.simulation_time_reduction, 0.0);
}

TEST_F(SubsettingTest, FullSubsetIsWholeSuite)
{
    SubsetResult subset = selectSubset(
        sim_, suite_.size(), RepresentativeRule::ShortestLinkage,
        suite_);
    EXPECT_NEAR(subset.simulation_time_reduction, 1.0, 1e-9);
}

TEST_F(SubsettingTest, CutHeightMatchesDendrogram)
{
    SubsetResult subset = selectSubset(sim_, 3);
    EXPECT_DOUBLE_EQ(subset.cut_height,
                     sim_.dendrogram.heightForClusterCount(3));
}

TEST_F(SubsettingTest, KmeansSubsetIsWellFormed)
{
    SubsetResult subset = selectSubsetKmeans(sim_, 3, 1, suite_);
    EXPECT_EQ(subset.representatives.size(), 3u);
    EXPECT_DOUBLE_EQ(subset.cut_height, 0.0);
    EXPECT_GT(subset.simulation_time_reduction, 1.0);
    // Representatives belong to their clusters; clusters partition.
    std::set<std::string> seen;
    for (std::size_t c = 0; c < subset.clusters.size(); ++c) {
        EXPECT_NE(std::find(subset.clusters[c].begin(),
                            subset.clusters[c].end(),
                            subset.representatives[c]),
                  subset.clusters[c].end());
        for (const std::string &name : subset.clusters[c])
            EXPECT_TRUE(seen.insert(name).second);
    }
    EXPECT_EQ(seen.size(), suite_.size());
    // Deterministic per seed.
    SubsetResult again = selectSubsetKmeans(sim_, 3, 1, suite_);
    EXPECT_EQ(subset.representatives, again.representatives);
    EXPECT_THROW(selectSubsetKmeans(sim_, 0), std::invalid_argument);
}

// ---------------------------------------------------------------------
// Validation
// ---------------------------------------------------------------------

TEST(ValidationTest, PerfectSubsetOfWholeSuiteHasZeroError)
{
    suites::ScoreDatabase db;
    auto suite = suites::spec2017SpeedInt();
    ValidationResult result = validateSubset(
        suite, suites::benchmarkNames(suite),
        suites::Category::SpeedInt, db);
    EXPECT_NEAR(result.avg_error_pct, 0.0, 1e-9);
    EXPECT_EQ(result.per_system.size(), 4u);
}

TEST(ValidationTest, ErrorsAreConsistent)
{
    suites::ScoreDatabase db;
    auto suite = suites::spec2017RateFp();
    ValidationResult result =
        validateSubset(suite, {"507.cactuBSSN_r", "544.nab_r"},
                       suites::Category::RateFp, db);
    EXPECT_EQ(result.per_system.size(), 5u);
    double max_seen = 0.0, sum = 0.0;
    for (const SystemValidation &v : result.per_system) {
        EXPECT_GE(v.error_pct, 0.0);
        EXPECT_NEAR(v.error_pct,
                    100.0 *
                        std::fabs(v.subset_score - v.full_score) /
                        v.full_score,
                    1e-9);
        max_seen = std::max(max_seen, v.error_pct);
        sum += v.error_pct;
    }
    EXPECT_DOUBLE_EQ(result.max_error_pct, max_seen);
    EXPECT_NEAR(result.avg_error_pct, sum / 5.0, 1e-9);
}

TEST(ValidationTest, EmptySubsetRejected)
{
    suites::ScoreDatabase db;
    auto suite = suites::spec2017RateInt();
    EXPECT_THROW(
        validateSubset(suite, {}, suites::Category::RateInt, db),
        std::invalid_argument);
}

TEST(ValidationTest, RandomSubsetsDeterministicPerSeed)
{
    auto suite = suites::spec2017RateInt();
    auto s1 = randomSubset(suite, 3, 7);
    auto s2 = randomSubset(suite, 3, 7);
    auto s3 = randomSubset(suite, 3, 8);
    EXPECT_EQ(s1, s2);
    EXPECT_NE(s1, s3);
    EXPECT_EQ(s1.size(), 3u);
    std::set<std::string> unique(s1.begin(), s1.end());
    EXPECT_EQ(unique.size(), 3u);
    EXPECT_THROW(randomSubset(suite, 99, 1), std::invalid_argument);
}

TEST(ValidationTest, AverageRandomErrorIsFinite)
{
    suites::ScoreDatabase db;
    auto suite = suites::spec2017SpeedFp();
    double avg = averageRandomSubsetError(
        suite, 3, suites::Category::SpeedFp, db, 10, 42);
    EXPECT_GT(avg, 0.0);
    EXPECT_LT(avg, 100.0);
}

// ---------------------------------------------------------------------
// Report rendering
// ---------------------------------------------------------------------

TEST(ReportTest, TextTableAlignment)
{
    TextTable table({"Name", "Value"});
    table.addRow({"alpha", "1"});
    table.addRow({"b", "22.5"});
    std::string out = table.render();
    EXPECT_NE(out.find("| Name "), std::string::npos);
    EXPECT_NE(out.find("| alpha "), std::string::npos);
    EXPECT_NE(out.find("|-"), std::string::npos);
    EXPECT_THROW(table.addRow({"only-one"}), std::invalid_argument);
    EXPECT_THROW(TextTable({}), std::invalid_argument);
}

TEST(ReportTest, NumFormatting)
{
    EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
    EXPECT_EQ(TextTable::num(2.0, 0), "2");
}

TEST(ReportTest, ScatterPlotBounds)
{
    std::vector<ScatterPoint> points{{0, 0, "origin", 'a'},
                                     {10, 5, "far", 'b'}};
    std::string out = renderScatter(points, "x", "y", 40, 10);
    EXPECT_NE(out.find('a'), std::string::npos);
    EXPECT_NE(out.find('b'), std::string::npos);
    EXPECT_NE(out.find("x: [0.00, 10.00]"), std::string::npos);
    EXPECT_EQ(renderScatter({}, "x", "y"), "(no points)\n");
}

TEST(ReportTest, StackedBars)
{
    std::string out = renderStackedBars(
        {"one", "two"}, {{1.0, 2.0}, {0.5, 0.5}}, {"base", "mem"}, 30);
    EXPECT_NE(out.find("one"), std::string::npos);
    EXPECT_NE(out.find("legend:"), std::string::npos);
    EXPECT_NE(out.find("(3.00)"), std::string::npos);
    EXPECT_THROW(renderStackedBars({"a"}, {}, {}, 10),
                 std::invalid_argument);
}

} // namespace
} // namespace core
} // namespace speclens
