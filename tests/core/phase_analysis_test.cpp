/**
 * @file
 * Tests for phased workloads, phased simulation and the SimPoint-style
 * phase analysis.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/phase_analysis.h"
#include "suites/machines.h"
#include "suites/spec2017.h"
#include "trace/phased_workload.h"
#include "uarch/simulation.h"

namespace speclens {
namespace core {
namespace {

trace::PhasedWorkload
gccPhases(std::size_t n, double drift = 0.35)
{
    return trace::derivePhases(
        suites::spec2017Benchmark("502.gcc_r").profile, n, drift);
}

// ---------------------------------------------------------------------
// PhasedWorkload
// ---------------------------------------------------------------------

TEST(PhasedWorkloadTest, DerivedPhasesAreValidAndWeighted)
{
    trace::PhasedWorkload workload = gccPhases(6);
    EXPECT_EQ(workload.phases.size(), 6u);
    EXPECT_NO_THROW(workload.validate());
    double total = 0.0;
    std::set<std::string> names;
    for (const trace::Phase &phase : workload.phases) {
        EXPECT_GT(phase.weight, 0.0);
        total += phase.weight;
        EXPECT_TRUE(names.insert(phase.profile.name).second);
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
    EXPECT_GT(workload.dynamicInstructionsBillions(), 0.0);
}

TEST(PhasedWorkloadTest, DerivationIsDeterministic)
{
    trace::PhasedWorkload a = gccPhases(4);
    trace::PhasedWorkload b = gccPhases(4);
    for (std::size_t k = 0; k < 4; ++k) {
        EXPECT_EQ(a.phases[k].weight, b.phases[k].weight);
        EXPECT_EQ(a.phases[k].profile.memory.data[0].bytes,
                  b.phases[k].profile.memory.data[0].bytes);
    }
}

TEST(PhasedWorkloadTest, DriftControlsPhaseDiversity)
{
    trace::PhasedWorkload tight = gccPhases(4, 0.02);
    trace::PhasedWorkload wide = gccPhases(4, 0.5);
    auto spread = [](const trace::PhasedWorkload &w) {
        double lo = w.phases[0].profile.mix.load;
        double hi = lo;
        for (const trace::Phase &p : w.phases) {
            lo = std::min(lo, p.profile.mix.load);
            hi = std::max(hi, p.profile.mix.load);
        }
        return hi - lo;
    };
    EXPECT_LT(spread(tight), spread(wide));
}

TEST(PhasedWorkloadTest, ValidationRejectsBadWeights)
{
    trace::PhasedWorkload workload = gccPhases(3);
    workload.phases[0].weight = 0.0;
    EXPECT_THROW(workload.validate(), std::invalid_argument);

    workload = gccPhases(3);
    workload.phases[0].weight += 0.5; // sum != 1
    EXPECT_THROW(workload.validate(), std::invalid_argument);

    EXPECT_THROW(trace::derivePhases(
                     suites::spec2017Benchmark("502.gcc_r").profile, 0),
                 std::invalid_argument);
}

// ---------------------------------------------------------------------
// Phased simulation
// ---------------------------------------------------------------------

TEST(PhasedSimulationTest, CombinesPhaseWindows)
{
    trace::PhasedWorkload workload = gccPhases(4);
    uarch::SimulationConfig config;
    config.instructions = 40'000;
    config.warmup = 8'000;
    uarch::PhasedSimulationResult result = uarch::simulatePhased(
        workload, suites::skylakeMachine(), config);

    ASSERT_EQ(result.per_phase.size(), 4u);
    std::uint64_t total_instructions = 0;
    for (const auto &phase : result.per_phase) {
        EXPECT_GT(phase.counters.instructions, 0u);
        total_instructions += phase.counters.instructions;
    }
    EXPECT_EQ(result.combined_counters.instructions,
              total_instructions);
    // Window shares follow weights within rounding.
    EXPECT_NEAR(static_cast<double>(total_instructions), 40'000.0,
                8.0);
    EXPECT_GT(result.combined_cpi, 0.0);
}

TEST(PhasedSimulationTest, SinglePhaseMatchesPlainSimulation)
{
    // A one-phase workload through the phased driver must equal the
    // plain driver bit for bit.
    const auto &base = suites::spec2017Benchmark("541.leela_r").profile;
    trace::PhasedWorkload single;
    single.name = base.name;
    single.phases.push_back({base, 1.0});

    uarch::SimulationConfig config;
    config.instructions = 30'000;
    config.warmup = 5'000;
    auto phased = uarch::simulatePhased(
        single, suites::skylakeMachine(), config);
    auto plain =
        uarch::simulate(base, suites::skylakeMachine(), config);
    EXPECT_EQ(phased.combined_counters.l1d_misses,
              plain.counters.l1d_misses);
    EXPECT_EQ(phased.combined_counters.branch_mispredictions,
              plain.counters.branch_mispredictions);
    EXPECT_DOUBLE_EQ(phased.combined_cpi, plain.cpi());
}

// ---------------------------------------------------------------------
// SimPoint estimation
// ---------------------------------------------------------------------

TEST(SimPointTest, EstimateBeatsChanceAndCoversWeights)
{
    trace::PhasedWorkload workload = gccPhases(6);
    SimPointConfig config;
    config.clusters = 3;
    config.instructions = 60'000;
    config.warmup = 12'000;
    config.probe_instructions = 20'000;
    config.probe_warmup = 5'000;
    SimPointResult result = simpointEstimate(
        workload, suites::skylakeMachine(), config);

    EXPECT_LE(result.representatives.size(), 3u);
    EXPECT_GE(result.representatives.size(), 1u);
    // Representative weights cover the whole run.
    double total_weight = 0.0;
    for (double w : result.weights)
        total_weight += w;
    EXPECT_NEAR(total_weight, 1.0, 1e-9);
    // The estimate is in the right ballpark (bench-scale windows
    // reach ~10% or better; the short test windows are noisier).
    EXPECT_LT(result.cpi_error_pct, 30.0);
    EXPECT_GT(result.full_cpi, 0.0);
    EXPECT_GT(result.simulated_fraction, 0.0);
    EXPECT_LT(result.simulated_fraction, 1.0);
}

TEST(SimPointTest, AllPhasesAsClustersIsNearExact)
{
    // One cluster per phase: the estimate degenerates to a full
    // per-phase measurement and must track the ground truth closely
    // (residual error comes only from window-size differences).
    trace::PhasedWorkload workload = gccPhases(4, 0.2);
    SimPointConfig config;
    config.clusters = 4;
    config.instructions = 80'000;
    config.warmup = 16'000;
    config.probe_instructions = 40'000;
    config.probe_warmup = 10'000;
    SimPointResult result = simpointEstimate(
        workload, suites::skylakeMachine(), config);
    EXPECT_EQ(result.representatives.size(), 4u);
    EXPECT_NEAR(result.simulated_fraction, 1.0, 1e-9);
    EXPECT_LT(result.cpi_error_pct, 15.0);
}

TEST(SimPointTest, InvalidClusterCountThrows)
{
    trace::PhasedWorkload workload = gccPhases(3);
    SimPointConfig config;
    config.clusters = 5;
    EXPECT_THROW(
        simpointEstimate(workload, suites::skylakeMachine(), config),
        std::invalid_argument);
}

} // namespace
} // namespace core
} // namespace speclens
