/**
 * @file
 * Unit tests for the higher-level analyses: input sets, rate/speed,
 * balance (coverage) and sensitivity.  Reduced simulation windows;
 * headline-scale checks live in the integration suite.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/balance.h"
#include "core/input_set_analysis.h"
#include "core/rate_speed.h"
#include "core/sensitivity.h"
#include "suites/emerging.h"
#include "suites/input_sets.h"
#include "suites/machines.h"
#include "suites/spec2017.h"

namespace speclens {
namespace core {
namespace {

CharacterizationConfig
quickConfig()
{
    CharacterizationConfig config;
    config.instructions = 25'000;
    config.warmup = 5'000;
    return config;
}

// ---------------------------------------------------------------------
// Input sets
// ---------------------------------------------------------------------

TEST(InputSetAnalysisTest, RepresentativesForMultiInputBenchmarks)
{
    Characterizer characterizer(suites::profilingMachines(),
                                quickConfig());
    auto groups = suites::inputSetGroupsInt();
    InputSetAnalysis analysis = analyzeInputSets(characterizer, groups);

    // 8 multi-input INT benchmarks: perlbench/gcc/x264/xz, each in
    // rate and speed.
    EXPECT_EQ(analysis.representatives.size(), 8u);
    for (const RepresentativeInput &rep : analysis.representatives) {
        EXPECT_GE(rep.input_index, 1);
        EXPECT_LE(rep.input_index,
                  suites::inputSetCount(rep.benchmark));
        EXPECT_EQ(rep.variant_name,
                  rep.benchmark + "#" +
                      std::to_string(rep.input_index));
        EXPECT_GE(rep.group_spread, rep.distance_to_aggregate);
    }
}

TEST(InputSetAnalysisTest, SameBenchmarkInputsClusterTightly)
{
    Characterizer characterizer(suites::profilingMachines(),
                                quickConfig());
    InputSetAnalysis analysis = analyzeInputSets(
        characterizer, suites::inputSetGroupsInt());
    // The paper's core finding: input sets of one benchmark sit far
    // closer together than distinct benchmarks.
    EXPECT_LT(analysis.max_within_group_spread,
              analysis.median_cross_benchmark_distance);
}

// ---------------------------------------------------------------------
// Rate vs speed
// ---------------------------------------------------------------------

TEST(RateSpeedTest, AllPairsCompared)
{
    Characterizer characterizer(suites::profilingMachines(),
                                quickConfig());
    RateSpeedAnalysis int_pairs =
        analyzeRateSpeed(characterizer, /*fp=*/false);
    EXPECT_EQ(int_pairs.pairs.size(), 10u);
    RateSpeedAnalysis fp_pairs =
        analyzeRateSpeed(characterizer, /*fp=*/true);
    EXPECT_EQ(fp_pairs.pairs.size(), 9u); // 4 rate-FP have no partner

    // Sorted descending by distance.
    for (std::size_t i = 0; i + 1 < fp_pairs.pairs.size(); ++i)
        EXPECT_GE(fp_pairs.pairs[i].pc_distance,
                  fp_pairs.pairs[i + 1].pc_distance);
    EXPECT_GT(fp_pairs.median_distance, 0.0);
}

TEST(RateSpeedTest, PairsReferenceEachOther)
{
    Characterizer characterizer(suites::profilingMachines(),
                                quickConfig());
    RateSpeedAnalysis analysis =
        analyzeRateSpeed(characterizer, /*fp=*/true);
    for (const RateSpeedPair &pair : analysis.pairs) {
        const auto &rate = suites::spec2017Benchmark(pair.rate);
        EXPECT_EQ(rate.partner, pair.speed);
        EXPECT_GE(pair.cophenetic, pair.pc_distance * 0.0);
    }
}

// ---------------------------------------------------------------------
// Balance / coverage
// ---------------------------------------------------------------------

TEST(BalanceTest, SelfComparisonIsFullyCovered)
{
    Characterizer characterizer(suites::profilingMachines(),
                                quickConfig());
    auto suite = suites::spec2017SpeedInt();
    SuiteComparison cmp =
        compareSuites(characterizer, suite, suite);
    EXPECT_EQ(cmp.rows_a.size(), suite.size());
    EXPECT_EQ(cmp.rows_b.size(), suite.size());
    // Identical point sets: equal hull areas, nothing outside.
    EXPECT_NEAR(cmp.pc12.area_ratio, 1.0, 1e-6);
    EXPECT_DOUBLE_EQ(cmp.pc12.a_outside_b, 0.0);
}

TEST(BalanceTest, CandidatesIdenticalToReferenceAreCovered)
{
    Characterizer characterizer(suites::profilingMachines(),
                                quickConfig());
    auto reference = suites::spec2017SpeedInt();
    std::vector<suites::BenchmarkInfo> candidates = {reference[0],
                                                     reference[5]};
    auto verdicts =
        coverageAnalysis(characterizer, reference, candidates);
    ASSERT_EQ(verdicts.size(), 2u);
    for (const CoverageVerdict &v : verdicts) {
        EXPECT_TRUE(v.covered) << v.benchmark;
        EXPECT_NEAR(v.nn_distance, 0.0, 1e-9);
    }
}

TEST(BalanceTest, FarOutlierIsNotCovered)
{
    Characterizer characterizer(suites::profilingMachines(),
                                quickConfig());
    // Cassandra's I-cache/I-TLB behaviour is the paper's canonical
    // uncovered workload, even against the full 43-benchmark suite.
    auto verdicts = coverageAnalysis(characterizer, suites::spec2017(),
                                     suites::databaseBenchmarks());
    for (const CoverageVerdict &v : verdicts)
        EXPECT_FALSE(v.covered) << v.benchmark;
}

// ---------------------------------------------------------------------
// Sensitivity
// ---------------------------------------------------------------------

TEST(SensitivityTest, ClassSharesFollowFractions)
{
    Characterizer characterizer(suites::sensitivityMachines(),
                                quickConfig());
    auto suite = suites::spec2017RateInt();
    SensitivityReport report = classifySensitivity(
        characterizer, suite, Metric::BranchMpki, 0.2, 0.3);
    EXPECT_EQ(report.entries.size(), 10u);
    EXPECT_EQ(report.names(SensitivityClass::High).size(), 2u);
    EXPECT_EQ(report.names(SensitivityClass::Medium).size(), 3u);
    EXPECT_EQ(report.names(SensitivityClass::Low).size(), 5u);

    // Entries sorted by descending rank spread, classes aligned.
    for (std::size_t i = 0; i + 1 < report.entries.size(); ++i)
        EXPECT_GE(report.entries[i].rank_spread,
                  report.entries[i + 1].rank_spread);
}

TEST(SensitivityTest, IdenticalMachinesGiveZeroSpread)
{
    // With four copies of the same machine there is no configuration
    // variation, so every benchmark's rank is stable.
    std::vector<uarch::MachineConfig> same(4,
                                           suites::skylakeMachine());
    Characterizer characterizer(same, quickConfig());
    auto suite = suites::spec2017SpeedInt();
    SensitivityReport report = classifySensitivity(
        characterizer, suite, Metric::L1dMpki);
    for (const SensitivityEntry &e : report.entries)
        EXPECT_DOUBLE_EQ(e.rank_spread, 0.0) << e.benchmark;
}

TEST(SensitivityTest, ClassNames)
{
    EXPECT_EQ(sensitivityClassName(SensitivityClass::High), "High");
    EXPECT_EQ(sensitivityClassName(SensitivityClass::Low), "Low");
}

} // namespace
} // namespace core
} // namespace speclens
