/**
 * @file
 * Tests for the measurement-stability analysis — including the
 * methodology-critical assertion that clustering signal dominates
 * simulation noise.
 */

#include <gtest/gtest.h>

#include "core/stability.h"
#include "suites/machines.h"
#include "suites/spec2017.h"

namespace speclens {
namespace core {
namespace {

TEST(StabilityTest, InputValidation)
{
    auto suite = suites::spec2017SpeedInt();
    EXPECT_THROW(analyzeStability({suite[0]}, suites::skylakeMachine()),
                 std::invalid_argument);
    EXPECT_THROW(
        analyzeStability(suite, suites::skylakeMachine(), 1),
        std::invalid_argument);
}

TEST(StabilityTest, ReportShape)
{
    std::vector<suites::BenchmarkInfo> few = {
        suites::spec2017Benchmark("505.mcf_r"),
        suites::spec2017Benchmark("541.leela_r"),
        suites::spec2017Benchmark("519.lbm_r"),
    };
    StabilityReport report = analyzeStability(
        few, suites::skylakeMachine(), 3, 20'000, 5'000);
    EXPECT_EQ(report.metrics.size(), kCanonicalMetricCount);
    EXPECT_EQ(report.trials, 3u);
    for (const MetricStability &m : report.metrics) {
        EXPECT_GE(m.noise, 0.0) << metricName(m.metric);
        EXPECT_GE(m.signal, 0.0) << metricName(m.metric);
    }
}

TEST(StabilityTest, SignalDominatesNoise)
{
    // The premise behind clustering simulated measurements: benchmarks
    // differ far more than re-measurements of one benchmark.
    std::vector<suites::BenchmarkInfo> diverse = {
        suites::spec2017Benchmark("505.mcf_r"),
        suites::spec2017Benchmark("541.leela_r"),
        suites::spec2017Benchmark("548.exchange2_r"),
        suites::spec2017Benchmark("507.cactuBSSN_r"),
        suites::spec2017Benchmark("519.lbm_r"),
    };
    StabilityReport report = analyzeStability(
        diverse, suites::skylakeMachine(), 4, 40'000, 10'000);
    EXPECT_GT(report.worstSnr(), 2.0);

    // The headline metrics must be strongly separated.
    for (const MetricStability &m : report.metrics) {
        if (m.metric == Metric::L1dMpki ||
            m.metric == Metric::BranchMpki) {
            EXPECT_GT(m.snr(), 5.0) << metricName(m.metric);
        }
    }
}

TEST(StabilityTest, IdenticalBenchmarksHaveNoSignal)
{
    // Re-measuring copies of the same workload: across-benchmark
    // variation collapses to (near) the noise floor.
    suites::BenchmarkInfo a = suites::spec2017Benchmark("541.leela_r");
    suites::BenchmarkInfo b = a;
    StabilityReport report = analyzeStability(
        {a, b}, suites::skylakeMachine(), 3, 20'000, 5'000);
    for (const MetricStability &m : report.metrics) {
        // Identical profiles measured with identical seeds: exactly
        // zero across-benchmark signal.
        EXPECT_DOUBLE_EQ(m.signal, 0.0) << metricName(m.metric);
    }
}

} // namespace
} // namespace core
} // namespace speclens
