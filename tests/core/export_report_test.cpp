/**
 * @file
 * Tests for CSV export and the markdown suite report.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/csv_export.h"
#include "core/suite_report.h"
#include "suites/machines.h"
#include "suites/spec2017.h"

namespace speclens {
namespace core {
namespace {

TEST(CsvQuoteTest, PlainFieldsUntouched)
{
    EXPECT_EQ(csvQuote("505.mcf_r"), "505.mcf_r");
    EXPECT_EQ(csvQuote("skylake.l1d_mpki"), "skylake.l1d_mpki");
}

TEST(CsvQuoteTest, SpecialCharactersQuoted)
{
    EXPECT_EQ(csvQuote("a,b"), "\"a,b\"");
    EXPECT_EQ(csvQuote("say \"hi\""), "\"say \"\"hi\"\"\"");
    EXPECT_EQ(csvQuote("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvExportTest, RoundTripStructure)
{
    stats::Matrix m{{1.5, 2.0}, {3.0, 4.5}};
    std::ostringstream out;
    writeCsv(out, {"alpha", "beta"}, {"x", "metric,odd"}, m);

    std::string csv = out.str();
    EXPECT_EQ(csv, "benchmark,x,\"metric,odd\"\n"
                   "alpha,1.5,2\n"
                   "beta,3,4.5\n");
}

TEST(CsvExportTest, DimensionMismatchThrows)
{
    stats::Matrix m(2, 2);
    std::ostringstream out;
    EXPECT_THROW(writeCsv(out, {"only-one"}, {"a", "b"}, m),
                 std::invalid_argument);
    EXPECT_THROW(writeCsv(out, {"a", "b"}, {"one-name"}, m),
                 std::invalid_argument);
}

TEST(CsvExportTest, FullCampaignExports)
{
    core::CharacterizationConfig config;
    config.instructions = 20'000;
    config.warmup = 5'000;
    Characterizer characterizer(suites::profilingMachines(), config);
    auto suite = suites::spec2017SpeedInt();
    stats::Matrix features = characterizer.featureMatrix(suite);

    std::ostringstream out;
    writeCsv(out, suites::benchmarkNames(suite),
             characterizer.featureNames(), features);
    std::string csv = out.str();

    // 1 header + 10 data rows; 141 comma-separated columns each.
    std::size_t lines = 0, first_line_commas = 0;
    for (std::size_t i = 0; i < csv.size(); ++i) {
        if (csv[i] == '\n')
            ++lines;
        if (csv[i] == ',' && lines == 0)
            ++first_line_commas;
    }
    EXPECT_EQ(lines, 11u);
    EXPECT_EQ(first_line_commas, 140u);
    EXPECT_NE(csv.find("605.mcf_s"), std::string::npos);
    EXPECT_NE(csv.find("opteron.dram_power"), std::string::npos);
}

TEST(CsvExportTest, SimilarityCsv)
{
    core::CharacterizationConfig config;
    config.instructions = 20'000;
    config.warmup = 5'000;
    Characterizer characterizer(suites::profilingMachines(), config);
    auto suite = suites::spec2017SpeedInt();
    SimilarityResult sim = analyzeSimilarity(
        characterizer.featureMatrix(suite),
        suites::benchmarkNames(suite));

    std::ostringstream out;
    writeSimilarityCsv(out, sim);
    std::string csv = out.str();
    EXPECT_NE(csv.find("benchmark,pc1"), std::string::npos);
    EXPECT_NE(csv.find("join_height"), std::string::npos);
    EXPECT_NE(csv.find("641.leela_s"), std::string::npos);
}

TEST(SuiteReportTest, ContainsAllSections)
{
    core::CharacterizationConfig config;
    config.instructions = 20'000;
    config.warmup = 5'000;
    Characterizer characterizer(suites::profilingMachines(), config);
    auto suite = suites::spec2017SpeedInt();

    SuiteReportOptions options;
    options.title = "test report";
    options.validation_category = suites::Category::SpeedInt;

    std::ostringstream out;
    writeSuiteReport(out, characterizer, suite, options);
    std::string report = out.str();

    EXPECT_NE(report.find("# test report"), std::string::npos);
    EXPECT_NE(report.find("## Characterization"), std::string::npos);
    EXPECT_NE(report.find("## Similarity"), std::string::npos);
    EXPECT_NE(report.find("## Representative subset"),
              std::string::npos);
    EXPECT_NE(report.find("## Score-prediction accuracy"),
              std::string::npos);
    for (const suites::BenchmarkInfo &b : suite)
        EXPECT_NE(report.find(b.name), std::string::npos) << b.name;
}

TEST(SuiteReportTest, ValidationSkippedWithoutCategory)
{
    core::CharacterizationConfig config;
    config.instructions = 15'000;
    config.warmup = 5'000;
    Characterizer characterizer(suites::profilingMachines(), config);
    auto suite = suites::spec2017SpeedInt();

    std::ostringstream out;
    writeSuiteReport(out, characterizer, suite); // default: Other
    EXPECT_EQ(out.str().find("Score-prediction"), std::string::npos);
}

TEST(SuiteReportTest, InputValidation)
{
    core::CharacterizationConfig config;
    Characterizer characterizer(suites::profilingMachines(), config);
    std::ostringstream out;
    EXPECT_THROW(writeSuiteReport(out, characterizer, {}),
                 std::invalid_argument);
    auto suite = suites::spec2017SpeedInt();
    SuiteReportOptions options;
    options.subset_size = 99;
    EXPECT_THROW(
        writeSuiteReport(out, characterizer, suite, options),
        std::invalid_argument);
}

} // namespace
} // namespace core
} // namespace speclens
