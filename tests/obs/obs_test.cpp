/**
 * @file
 * Observability-layer tests (ctest label `obs`).
 *
 * Covers the metrics registry (instrument identity, snapshot ordering,
 * exact counts under concurrent mutation), the RAII timing span, both
 * exporters against golden renderings, the dependency-free JSON
 * well-formedness checker, and the run-manifest renderer/writer.
 *
 * Tests that assert recorded *values* skip themselves when the build
 * was configured with -DSPECLENS_METRICS=OFF (mutation hooks compile
 * to no-ops); structural tests run in both configurations.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/export.h"
#include "obs/manifest.h"
#include "obs/metrics.h"

namespace speclens {
namespace obs {
namespace {

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
}

std::string
tempPath(const std::string &name)
{
    return (std::filesystem::temp_directory_path() /
            ("speclens_obs_test_" + name))
        .string();
}

// ====================================================================
// Registry + instruments
// ====================================================================

TEST(Registry, InstrumentsAreCreatedOnceAndStable)
{
    if (!kMetricsEnabled)
        GTEST_SKIP() << "metrics compiled out";
    Registry registry;
    Counter &a = registry.counter("x.events");
    Counter &b = registry.counter("x.events");
    EXPECT_EQ(&a, &b);
    Gauge &g1 = registry.gauge("x.ratio");
    Gauge &g2 = registry.gauge("x.ratio");
    EXPECT_EQ(&g1, &g2);
    Timing &t1 = registry.timing("x.time");
    Timing &t2 = registry.timing("x.time");
    EXPECT_EQ(&t1, &t2);

    // Same name, different kind: distinct instruments.
    Snapshot snapshot = registry.snapshot();
    EXPECT_EQ(snapshot.counters.size(), 1u);
    EXPECT_EQ(snapshot.gauges.size(), 1u);
    EXPECT_EQ(snapshot.timings.size(), 1u);
}

TEST(Registry, SnapshotIsSortedByName)
{
    if (!kMetricsEnabled)
        GTEST_SKIP() << "metrics compiled out";
    Registry registry;
    registry.counter("zeta");
    registry.counter("alpha");
    registry.counter("mid.dle");
    Snapshot snapshot = registry.snapshot();
    ASSERT_EQ(snapshot.counters.size(), 3u);
    EXPECT_EQ(snapshot.counters[0].first, "alpha");
    EXPECT_EQ(snapshot.counters[1].first, "mid.dle");
    EXPECT_EQ(snapshot.counters[2].first, "zeta");
}

TEST(Registry, GlobalIsASingleton)
{
    EXPECT_EQ(&Registry::global(), &Registry::global());
}

TEST(Counter, CountsExactlyUnderConcurrency)
{
    if (!kMetricsEnabled)
        GTEST_SKIP() << "metrics compiled out";
    Registry registry;
    Counter &counter = registry.counter("concurrent.events");
    Timing &timing = registry.timing("concurrent.time");
    constexpr int kThreads = 8;
    constexpr std::uint64_t kPerThread = 20'000;

    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&counter, &timing] {
            for (std::uint64_t i = 0; i < kPerThread; ++i) {
                counter.add();
                timing.record(i % 97);
            }
        });
    for (std::thread &t : threads)
        t.join();

    EXPECT_EQ(counter.value(), kThreads * kPerThread);
    TimingStats stats = timing.stats();
    EXPECT_EQ(stats.count, kThreads * kPerThread);
    EXPECT_EQ(stats.min_ns, 0u);
    EXPECT_EQ(stats.max_ns, 96u);
}

TEST(Timing, TracksCountTotalMinMax)
{
    if (!kMetricsEnabled)
        GTEST_SKIP() << "metrics compiled out";
    Timing timing;
    TimingStats empty = timing.stats();
    EXPECT_EQ(empty.count, 0u);
    EXPECT_EQ(empty.min_ns, 0u); // Not UINT64_MAX before any record.
    EXPECT_EQ(empty.max_ns, 0u);

    timing.record(30);
    timing.record(10);
    timing.record(20);
    TimingStats stats = timing.stats();
    EXPECT_EQ(stats.count, 3u);
    EXPECT_EQ(stats.total_ns, 60u);
    EXPECT_EQ(stats.min_ns, 10u);
    EXPECT_EQ(stats.max_ns, 30u);

    timing.reset();
    EXPECT_EQ(timing.stats().count, 0u);
    EXPECT_EQ(timing.stats().min_ns, 0u);
}

TEST(Gauge, StoresLastWrittenDouble)
{
    if (!kMetricsEnabled)
        GTEST_SKIP() << "metrics compiled out";
    Gauge gauge;
    gauge.set(0.25);
    gauge.set(0.875);
    EXPECT_EQ(gauge.value(), 0.875);
}

TEST(Span, RecordsEnclosedScopeOnDestruction)
{
    if (!kMetricsEnabled)
        GTEST_SKIP() << "metrics compiled out";
    Timing timing;
    {
        Span span(timing);
    }
    {
        Span span(timing);
    }
    EXPECT_EQ(timing.stats().count, 2u);
}

TEST(MetricsOff, MutationsAreNoOps)
{
    if (kMetricsEnabled)
        GTEST_SKIP() << "metrics compiled in";
    Counter counter;
    counter.add(42);
    EXPECT_EQ(counter.value(), 0u);
    Timing timing;
    timing.record(99);
    EXPECT_EQ(timing.stats().count, 0u);
    Gauge gauge;
    gauge.set(1.0);
    EXPECT_EQ(gauge.value(), 0.0);
}

// ====================================================================
// Exporters (golden renderings)
// ====================================================================

/** A registry with one instrument of each kind, known values. */
Registry &
goldenRegistry()
{
    // Registry is not movable (it owns a mutex): populate in place.
    static Registry registry;
    static const bool populated = [] {
        registry.counter("core.test.events").add(3);
        registry.gauge("core.test.ratio").set(0.5);
        registry.timing("core.test.span").record(10);
        registry.timing("core.test.span").record(20);
        return true;
    }();
    (void)populated;
    return registry;
}

TEST(ExportPrometheus, GoldenRendering)
{
    if (!kMetricsEnabled)
        GTEST_SKIP() << "metrics compiled out";
    const std::string expected =
        "# TYPE speclens_core_test_events_total counter\n"
        "speclens_core_test_events_total 3\n"
        "# TYPE speclens_core_test_ratio gauge\n"
        "speclens_core_test_ratio 0.5\n"
        "# TYPE speclens_core_test_span_count counter\n"
        "speclens_core_test_span_count 2\n"
        "# TYPE speclens_core_test_span_total_ns counter\n"
        "speclens_core_test_span_total_ns 30\n"
        "# TYPE speclens_core_test_span_min_ns gauge\n"
        "speclens_core_test_span_min_ns 10\n"
        "# TYPE speclens_core_test_span_max_ns gauge\n"
        "speclens_core_test_span_max_ns 20\n";
    EXPECT_EQ(renderPrometheus(goldenRegistry().snapshot()), expected);
}

TEST(ExportJson, GoldenRendering)
{
    if (!kMetricsEnabled)
        GTEST_SKIP() << "metrics compiled out";
    const std::string expected = "{\n"
                                 "  \"counters\": {\n"
                                 "    \"core.test.events\": 3\n"
                                 "  },\n"
                                 "  \"gauges\": {\n"
                                 "    \"core.test.ratio\": 0.5\n"
                                 "  },\n"
                                 "  \"timings\": {\n"
                                 "    \"core.test.span\": {\"count\": 2, "
                                 "\"total_ns\": 30, \"min_ns\": 10, "
                                 "\"max_ns\": 20}\n"
                                 "  }\n"
                                 "}\n";
    std::string json = renderJson(goldenRegistry().snapshot());
    EXPECT_EQ(json, expected);
    EXPECT_TRUE(validateJson(json));
}

TEST(ExportJson, EmptySnapshotIsValidJson)
{
    Snapshot empty;
    std::string json = renderJson(empty);
    EXPECT_TRUE(validateJson(json));
    EXPECT_NE(json.find("\"counters\""), std::string::npos);
    EXPECT_NE(json.find("\"gauges\""), std::string::npos);
    EXPECT_NE(json.find("\"timings\""), std::string::npos);
}

TEST(ExportFormatName, RoundTripAndRejection)
{
    EXPECT_EQ(exportFormatFromName("prom"), ExportFormat::Prometheus);
    EXPECT_EQ(exportFormatFromName("prometheus"),
              ExportFormat::Prometheus);
    EXPECT_EQ(exportFormatFromName("json"), ExportFormat::Json);
    EXPECT_THROW(exportFormatFromName("xml"), std::invalid_argument);
    EXPECT_THROW(exportFormatFromName(""), std::invalid_argument);
}

TEST(WriteMetricsFile, WritesRenderedSnapshot)
{
    const std::string path = tempPath("metrics.prom");
    std::filesystem::remove(path);
    ASSERT_TRUE(
        writeMetricsFile(path, ExportFormat::Prometheus, goldenRegistry()));
    EXPECT_EQ(readFile(path),
              renderPrometheus(goldenRegistry().snapshot()));

    ASSERT_TRUE(
        writeMetricsFile(path, ExportFormat::Json, goldenRegistry()));
    EXPECT_TRUE(validateJson(readFile(path)));
    std::filesystem::remove(path);
}

TEST(WriteMetricsFile, UnwritablePathReportsFailureSoftly)
{
    EXPECT_FALSE(writeMetricsFile(
        "/proc/speclens_no_such_dir/metrics.json", ExportFormat::Json,
        goldenRegistry()));
}

// ====================================================================
// JSON well-formedness checker
// ====================================================================

TEST(ValidateJson, AcceptsWellFormedDocuments)
{
    EXPECT_TRUE(validateJson("{}"));
    EXPECT_TRUE(validateJson("[]"));
    EXPECT_TRUE(validateJson("  { \"a\": [1, 2.5, -3e2] }  "));
    EXPECT_TRUE(validateJson("{\"nested\": {\"b\": [true, false, null]}}"));
    EXPECT_TRUE(validateJson("\"esc \\\" \\\\ \\n \\u00e9\""));
    EXPECT_TRUE(validateJson("42"));
    std::string shallow(10, '[');
    shallow += std::string(10, ']');
    EXPECT_TRUE(validateJson(shallow));
}

TEST(ValidateJson, RejectsMalformedDocuments)
{
    EXPECT_FALSE(validateJson(""));
    EXPECT_FALSE(validateJson("{"));
    EXPECT_FALSE(validateJson("{\"a\":}"));
    EXPECT_FALSE(validateJson("[1,]"));
    EXPECT_FALSE(validateJson("{} trailing"));
    EXPECT_FALSE(validateJson("\"unterminated"));
    EXPECT_FALSE(validateJson("\"bad \\q escape\""));
    EXPECT_FALSE(validateJson("\"raw \n newline\""));
    EXPECT_FALSE(validateJson("{'single': 1}"));
    EXPECT_FALSE(validateJson("nul"));
}

TEST(ValidateJson, DepthLimitStopsPathologicalNesting)
{
    std::string deep(200, '[');
    deep += std::string(200, ']');
    EXPECT_FALSE(validateJson(deep));
}

// ====================================================================
// Run manifest
// ====================================================================

Manifest
sampleManifest()
{
    Manifest manifest;
    manifest.engine_version = 7;
    manifest.config_fingerprint = "00ff00ff00ff00ff";
    manifest.run = {{"store_dir", "/tmp/store"}, {"metrics", "on"}};
    manifest.totals = {{"entries", 301}, {"hits", 301}};
    manifest.rejected = {{"corrupt", 0}, {"orphaned_temp", 2}};
    manifest.metrics.counters.emplace_back("core.store.hits", 301);
    return manifest;
}

TEST(ManifestRender, SchemaV1KeysAndValidJson)
{
    std::string json = renderManifest(sampleManifest());
    EXPECT_TRUE(validateJson(json));
    for (const char *key :
         {"\"manifest_version\"", "\"engine_version\"",
          "\"config_fingerprint\"", "\"run\"", "\"totals\"",
          "\"rejected\"", "\"metrics\""})
        EXPECT_NE(json.find(key), std::string::npos) << key;
    EXPECT_NE(json.find("\"manifest_version\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"engine_version\": 7"), std::string::npos);
    EXPECT_NE(json.find("\"00ff00ff00ff00ff\""), std::string::npos);
    EXPECT_NE(json.find("\"orphaned_temp\": 2"), std::string::npos);
    EXPECT_NE(json.find("\"core.store.hits\": 301"), std::string::npos);
}

TEST(ManifestRender, EscapesStringFields)
{
    Manifest manifest = sampleManifest();
    manifest.run = {{"store_dir", "dir with \"quote\"\nnewline"}};
    std::string json = renderManifest(manifest);
    EXPECT_TRUE(validateJson(json));
    EXPECT_NE(json.find("\\\"quote\\\""), std::string::npos);
    EXPECT_EQ(json.find("\nnewline"), std::string::npos);
}

TEST(ManifestWrite, RoundTripsThroughDisk)
{
    const std::string path = tempPath(kManifestFileName);
    std::filesystem::remove(path);
    ASSERT_TRUE(writeManifest(path, sampleManifest()));
    std::string body = readFile(path);
    EXPECT_EQ(body, renderManifest(sampleManifest()));
    EXPECT_TRUE(validateJson(body));
    std::filesystem::remove(path);
}

TEST(ManifestWrite, UnwritablePathReportsFailureSoftly)
{
    EXPECT_FALSE(writeManifest(
        "/proc/speclens_no_such_dir/run-manifest.json",
        sampleManifest()));
}

} // namespace
} // namespace obs
} // namespace speclens
