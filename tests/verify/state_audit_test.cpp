/**
 * @file
 * Seeded-corruption tests for the structural invariant prover.
 *
 * Mirrors the lint-rule test discipline: every invariant is exercised
 * both ways — clean structures audit silent, and a single poked field
 * must trip exactly its invariant.  The pokes go through the
 * StateAuditor *ForTest helpers, so production state stays private.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "suites/machines.h"
#include "suites/spec2017.h"
#include "uarch/branch_predictor.h"
#include "uarch/cache.h"
#include "uarch/cache_hierarchy.h"
#include "uarch/simulation.h"
#include "uarch/tlb.h"
#include "verify/state_audit.h"

namespace speclens {
namespace verify {
namespace {

std::size_t
countInvariant(const std::vector<Violation> &violations,
               const std::string &invariant)
{
    std::size_t n = 0;
    for (const Violation &v : violations)
        if (v.invariant == invariant)
            ++n;
    return n;
}

/** A small warmed LRU cache: 4 sets x 4 ways of 64-byte lines. */
uarch::Cache
warmedCache(uarch::ReplacementPolicy policy)
{
    uarch::Cache cache(
        uarch::CacheConfig{"test", 1024, 4, 64, policy});
    for (std::uint64_t i = 0; i < 64; ++i)
        cache.access(i * 64);
    return cache;
}

std::vector<Violation>
audit(const uarch::Cache &cache)
{
    std::vector<Violation> out;
    StateAuditor::auditCache(cache, out);
    return out;
}

TEST(StateAudit, CleanCacheAuditsSilent)
{
    for (uarch::ReplacementPolicy policy :
         {uarch::ReplacementPolicy::Lru, uarch::ReplacementPolicy::Fifo,
          uarch::ReplacementPolicy::TreePlru,
          uarch::ReplacementPolicy::Random}) {
        uarch::Cache cache = warmedCache(policy);
        EXPECT_TRUE(audit(cache).empty())
            << "policy " << static_cast<int>(policy);
    }
}

TEST(StateAudit, DuplicateLineTrips)
{
    uarch::Cache cache = warmedCache(uarch::ReplacementPolicy::Lru);
    std::vector<Violation> before = audit(cache);
    // Copy way 0's tag into way 1 of set 0.
    StateAuditor::pokeTagForTest(
        cache, 0, 1,
        /* same tag as the line at way 0: reconstructable from the
           last lines accessed, but simplest to just force both */
        42);
    StateAuditor::pokeTagForTest(cache, 0, 0, 42);
    std::vector<Violation> after = audit(cache);
    EXPECT_EQ(countInvariant(after, "duplicate-line"), 1u);
}

TEST(StateAudit, InvalidSuffixTrips)
{
    uarch::Cache cache = warmedCache(uarch::ReplacementPolicy::Lru);
    // Invalidate way 0 while ways 1..3 stay valid.
    StateAuditor::pokeTagForTest(cache, 0, 0, ~0ull);
    EXPECT_EQ(countInvariant(audit(cache), "invalid-suffix"), 3u);
}

TEST(StateAudit, TagDomainTrips)
{
    uarch::Cache cache = warmedCache(uarch::ReplacementPolicy::Lru);
    StateAuditor::pokeTagForTest(cache, 0, 0, ~0ull - 1);
    EXPECT_EQ(countInvariant(audit(cache), "tag-domain"), 1u);
}

TEST(StateAudit, StampBoundTrips)
{
    uarch::Cache cache = warmedCache(uarch::ReplacementPolicy::Lru);
    StateAuditor::pokeStampForTest(cache, 0, 0, 0);
    EXPECT_EQ(countInvariant(audit(cache), "stamp-bound"), 1u);
}

TEST(StateAudit, StampUniqueTrips)
{
    uarch::Cache cache = warmedCache(uarch::ReplacementPolicy::Fifo);
    StateAuditor::pokeStampForTest(cache, 1, 0, 7);
    StateAuditor::pokeStampForTest(cache, 1, 1, 7);
    EXPECT_EQ(countInvariant(audit(cache), "stamp-unique"), 1u);
}

TEST(StateAudit, PlruDomainTrips)
{
    uarch::Cache cache = warmedCache(uarch::ReplacementPolicy::TreePlru);
    // A 4-way tree has 3 node bits; bit 3 must never be set.
    StateAuditor::pokePlruForTest(cache, 0, 1u << 3);
    EXPECT_EQ(countInvariant(audit(cache), "plru-domain"), 1u);
}

TEST(StateAudit, HitsBoundTrips)
{
    uarch::Cache cache = warmedCache(uarch::ReplacementPolicy::Lru);
    StateAuditor::pokeHitsForTest(cache, cache.accesses() + 1);
    EXPECT_EQ(countInvariant(audit(cache), "hits-bound"), 1u);
}

TEST(StateAudit, PageAlignmentTrips)
{
    uarch::Cache cache = warmedCache(uarch::ReplacementPolicy::Lru);
    StateAuditor::pokeLineBytesForTest(cache, 48);
    EXPECT_EQ(countInvariant(audit(cache), "page-alignment"), 1u);
}

TEST(StateAudit, FillCounterTrips)
{
    uarch::Cache cache = warmedCache(uarch::ReplacementPolicy::Random);
    StateAuditor::pokeColdFillForTest(cache, 0, 5); // assoc is 4
    EXPECT_EQ(countInvariant(audit(cache), "fill-counter"), 1u);
}

// ---------------------------------------------------------------------
// TLB hierarchy.

TEST(StateAudit, CleanTlbsAuditSilent)
{
    uarch::TlbHierarchy tlbs(uarch::TlbHierarchyConfig{});
    for (std::uint64_t page = 0; page < 2000; ++page)
        tlbs.accessData(page * 4096);
    std::vector<Violation> out;
    StateAuditor::auditTlbs(tlbs, out);
    EXPECT_TRUE(out.empty());
}

TEST(StateAudit, WalkConsistencyTrips)
{
    uarch::TlbHierarchy tlbs(uarch::TlbHierarchyConfig{});
    for (std::uint64_t page = 0; page < 2000; ++page)
        tlbs.accessData(page * 4096);
    ASSERT_GT(tlbs.l2tlbMisses(), 0u);
    StateAuditor::pokePageWalksForTest(tlbs, 0);
    std::vector<Violation> out;
    StateAuditor::auditTlbs(tlbs, out);
    EXPECT_EQ(countInvariant(out, "walk-consistency"), 1u);
    EXPECT_EQ(countInvariant(out, "walk-bound"), 0u);
}

TEST(StateAudit, WalkBoundTrips)
{
    uarch::TlbHierarchy tlbs(uarch::TlbHierarchyConfig{});
    for (std::uint64_t page = 0; page < 100; ++page)
        tlbs.accessData(page * 4096);
    StateAuditor::pokePageWalksForTest(
        tlbs, tlbs.itlbMisses() + tlbs.dtlbMisses() + 1);
    std::vector<Violation> out;
    StateAuditor::auditTlbs(tlbs, out);
    EXPECT_EQ(countInvariant(out, "walk-bound"), 1u);
}

// ---------------------------------------------------------------------
// Branch predictors.

TEST(StateAudit, CleanPredictorsAuditSilent)
{
    for (uarch::PredictorKind kind :
         {uarch::PredictorKind::StaticTaken,
          uarch::PredictorKind::Bimodal, uarch::PredictorKind::Gshare,
          uarch::PredictorKind::Tournament,
          uarch::PredictorKind::Perceptron,
          uarch::PredictorKind::TageLite}) {
        uarch::PredictorVariant predictor =
            uarch::makePredictorVariant(kind, 6);
        std::vector<Violation> out;
        StateAuditor::auditPredictor(predictor, out);
        EXPECT_TRUE(out.empty()) << predictorKindName(kind);
    }
}

TEST(StateAudit, BimodalCounterRangeTrips)
{
    uarch::PredictorVariant predictor = uarch::BimodalPredictor(4);
    StateAuditor::pokeBimodalCounterForTest(
        std::get<uarch::BimodalPredictor>(predictor), 3, 7);
    std::vector<Violation> out;
    StateAuditor::auditPredictor(predictor, out);
    EXPECT_EQ(countInvariant(out, "counter-range"), 1u);
}

TEST(StateAudit, GshareHistoryWidthTrips)
{
    uarch::PredictorVariant predictor = uarch::GsharePredictor(4, 8);
    StateAuditor::pokeGshareHistoryForTest(
        std::get<uarch::GsharePredictor>(predictor), ~0ull);
    std::vector<Violation> out;
    StateAuditor::auditPredictor(predictor, out);
    EXPECT_EQ(countInvariant(out, "history-width"), 1u);
}

TEST(StateAudit, TournamentChooserRangeTrips)
{
    uarch::PredictorVariant predictor = uarch::TournamentPredictor(4);
    StateAuditor::pokeChooserCounterForTest(
        std::get<uarch::TournamentPredictor>(predictor), 0, 9);
    std::vector<Violation> out;
    StateAuditor::auditPredictor(predictor, out);
    EXPECT_EQ(countInvariant(out, "counter-range"), 1u);
    ASSERT_FALSE(out.empty());
    EXPECT_EQ(out[0].structure, "predictor/tournament");
}

TEST(StateAudit, PerceptronWeightRangeTrips)
{
    uarch::PredictorVariant predictor = uarch::PerceptronPredictor(4, 8);
    StateAuditor::pokePerceptronWeightForTest(
        std::get<uarch::PerceptronPredictor>(predictor), 0, 0, 300);
    std::vector<Violation> out;
    StateAuditor::auditPredictor(predictor, out);
    EXPECT_EQ(countInvariant(out, "weight-range"), 1u);
}

TEST(StateAudit, TageTagWidthTrips)
{
    uarch::PredictorVariant predictor = uarch::TageLitePredictor(4);
    StateAuditor::pokeTageEntryForTest(
        std::get<uarch::TageLitePredictor>(predictor), 0, 0, 0x7ff, 0,
        0);
    std::vector<Violation> out;
    StateAuditor::auditPredictor(predictor, out);
    EXPECT_EQ(countInvariant(out, "tag-width"), 1u);
}

TEST(StateAudit, TageCounterAndUsefulRangesTrip)
{
    uarch::PredictorVariant predictor = uarch::TageLitePredictor(4);
    StateAuditor::pokeTageEntryForTest(
        std::get<uarch::TageLitePredictor>(predictor), 1, 2, 0, -5, 9);
    std::vector<Violation> out;
    StateAuditor::auditPredictor(predictor, out);
    EXPECT_EQ(countInvariant(out, "counter-range"), 1u);
    EXPECT_EQ(countInvariant(out, "useful-range"), 1u);
}

TEST(StateAudit, ShrunkTableTrips)
{
    uarch::PredictorVariant predictor =
        uarch::makePredictorVariant(uarch::PredictorKind::Bimodal, 5);
    StateAuditor::shrinkTableForTest(predictor);
    std::vector<Violation> out;
    StateAuditor::auditPredictor(predictor, out);
    EXPECT_EQ(countInvariant(out, "table-size"), 1u);
}

// ---------------------------------------------------------------------
// Prewarm fill-state legality.

TEST(StateAudit, CleanColdFillAuditsSilent)
{
    uarch::CacheHierarchy caches(uarch::CacheHierarchyConfig{});
    uarch::TlbHierarchy tlbs(uarch::TlbHierarchyConfig{});
    ASSERT_TRUE(caches.coldFillEligible());
    for (std::uint64_t i = 0; i < 600; ++i)
        caches.prewarmFillData(i * 64);
    std::vector<Violation> out;
    StateAuditor::auditPrewarm(caches, tlbs, out);
    EXPECT_TRUE(out.empty());
}

TEST(StateAudit, FillConsistencyTrips)
{
    uarch::CacheHierarchy caches(uarch::CacheHierarchyConfig{});
    uarch::TlbHierarchy tlbs(uarch::TlbHierarchyConfig{});
    // Three distinct lines of L1D set 0 (64 sets, 8 ways): the set
    // stays partially filled, so the counter must equal the survivor
    // count exactly.
    for (std::uint64_t i = 0; i < 3; ++i)
        caches.prewarmFillData(i * 64 * 64);
    StateAuditor::pokeColdFillForTest(
        StateAuditor::l1dForTest(caches), 0, 2);
    std::vector<Violation> out;
    StateAuditor::auditPrewarm(caches, tlbs, out);
    EXPECT_EQ(countInvariant(out, "fill-consistency"), 1u);
}

TEST(StateAudit, FillOrderTrips)
{
    uarch::CacheHierarchy caches(uarch::CacheHierarchyConfig{});
    uarch::TlbHierarchy tlbs(uarch::TlbHierarchyConfig{});
    // Fill L1D set 0 completely (8 ways), then swap two stamps: the
    // survivor set is no longer reachable by a pure fill stream.
    for (std::uint64_t i = 0; i < 8; ++i)
        caches.prewarmFillData(i * 64 * 64);
    uarch::Cache &l1d = StateAuditor::l1dForTest(caches);
    StateAuditor::pokeStampForTest(l1d, 0, 0, 2);
    StateAuditor::pokeStampForTest(l1d, 0, 1, 1);
    std::vector<Violation> out;
    StateAuditor::auditPrewarm(caches, tlbs, out);
    EXPECT_EQ(countInvariant(out, "fill-order"), 1u);
}

// ---------------------------------------------------------------------
// Memory-centric model: prefetcher accounting, way predictor, DRAM.

uarch::CacheHierarchyConfig
memoryHierarchyConfig(uarch::PrefetcherKind kind, unsigned degree)
{
    uarch::CacheHierarchyConfig config;
    config.l1d = {"L1D", 1024, 2, 64, uarch::ReplacementPolicy::Lru};
    config.l1i = {"L1I", 1024, 2, 64, uarch::ReplacementPolicy::Lru};
    config.l2 = {"L2", 16 * 1024, 4, 64, uarch::ReplacementPolicy::Lru};
    config.l3 = uarch::CacheConfig{"L3", 256 * 1024, 8, 64,
                                   uarch::ReplacementPolicy::Lru};
    config.l1d.way_prediction = uarch::WayPredictionKind::Mru;
    config.l1i.way_prediction = uarch::WayPredictionKind::MultiMru;
    config.l2_prefetch_degree = degree;
    config.prefetcher = kind;
    config.dram = uarch::DramConfig{};
    return config;
}

uarch::CacheHierarchy
warmedMemoryHierarchy(uarch::PrefetcherKind kind)
{
    uarch::CacheHierarchy caches(memoryHierarchyConfig(kind, 2));
    for (std::uint64_t i = 0; i < 4000; ++i)
        caches.accessData(i * 64, /*pc=*/0x400000 + (i % 16) * 4);
    for (std::uint64_t i = 0; i < 500; ++i)
        caches.accessInstr(0x400000 + (i % 64) * 64);
    return caches;
}

std::vector<Violation>
auditHierarchy(const uarch::CacheHierarchy &caches)
{
    std::vector<Violation> out;
    StateAuditor::auditCaches(caches, out);
    return out;
}

TEST(StateAudit, CleanMemoryHierarchyAuditsSilent)
{
    for (uarch::PrefetcherKind kind :
         {uarch::PrefetcherKind::NextLine, uarch::PrefetcherKind::Stride,
          uarch::PrefetcherKind::Stream}) {
        uarch::CacheHierarchy caches = warmedMemoryHierarchy(kind);
        std::vector<Violation> out = auditHierarchy(caches);
        for (const Violation &v : out)
            ADD_FAILURE() << uarch::prefetcherKindName(kind) << ": "
                          << renderViolation(v);
    }
}

TEST(StateAudit, PrefetchBitDomainTrips)
{
    uarch::CacheHierarchy caches =
        warmedMemoryHierarchy(uarch::PrefetcherKind::NextLine);
    StateAuditor::pokePrefetchBitForTest(caches, 0, 2);
    EXPECT_EQ(countInvariant(auditHierarchy(caches), "bit-domain"), 1u);
}

TEST(StateAudit, PrefetchBitOnInvalidWayTrips)
{
    // Fresh hierarchy: every L2 way is invalid, so a set bit cannot
    // mark a resident prefetched line.
    uarch::CacheHierarchy caches(
        memoryHierarchyConfig(uarch::PrefetcherKind::NextLine, 2));
    StateAuditor::pokePrefetchBitForTest(caches, 0, 1);
    EXPECT_EQ(countInvariant(auditHierarchy(caches), "bit-on-invalid"),
              1u);
}

TEST(StateAudit, PrefetchFillIdentityTrips)
{
    uarch::CacheHierarchy caches =
        warmedMemoryHierarchy(uarch::PrefetcherKind::NextLine);
    ASSERT_TRUE(auditHierarchy(caches).empty());
    StateAuditor::pokePrefetchFillsForTest(caches,
                                           caches.prefetchFills() + 1);
    EXPECT_EQ(countInvariant(auditHierarchy(caches), "fill-identity"),
              1u);
}

TEST(StateAudit, PrefetchCountersOffTrips)
{
    uarch::CacheHierarchy caches(
        memoryHierarchyConfig(uarch::PrefetcherKind::NextLine, 0));
    StateAuditor::pokePrefetchFillsForTest(caches, 1);
    EXPECT_EQ(countInvariant(auditHierarchy(caches), "counters-off"),
              1u);
}

TEST(StateAudit, StrideConfidenceRangeTrips)
{
    uarch::CacheHierarchy caches =
        warmedMemoryHierarchy(uarch::PrefetcherKind::Stride);
    StateAuditor::pokeStrideConfidenceForTest(caches, 0, 5);
    EXPECT_EQ(
        countInvariant(auditHierarchy(caches), "stride-confidence"),
        1u);
}

TEST(StateAudit, StreamRingCursorTrips)
{
    uarch::CacheHierarchy caches =
        warmedMemoryHierarchy(uarch::PrefetcherKind::Stream);
    StateAuditor::pokeStreamNextForTest(caches, 8);
    EXPECT_EQ(countInvariant(auditHierarchy(caches), "stream-ring"),
              1u);
}

TEST(StateAudit, WayPredDomainTrips)
{
    uarch::CacheHierarchy caches =
        warmedMemoryHierarchy(uarch::PrefetcherKind::NextLine);
    // L1D is 2-way; a predicted way of 7 is unreachable.
    StateAuditor::pokeWayPredEntryForTest(
        StateAuditor::l1dForTest(caches), 0, 7);
    EXPECT_EQ(countInvariant(auditHierarchy(caches), "waypred-domain"),
              1u);
}

TEST(StateAudit, WayPredBoundTrips)
{
    uarch::CacheHierarchy caches =
        warmedMemoryHierarchy(uarch::PrefetcherKind::NextLine);
    uarch::Cache &l1d = StateAuditor::l1dForTest(caches);
    StateAuditor::pokeWayPredHitsForTest(l1d, l1d.hits() + 1);
    EXPECT_EQ(countInvariant(auditHierarchy(caches), "waypred-bound"),
              1u);
}

TEST(StateAudit, WayPredCountersOffTrips)
{
    // Prediction disabled (warmedCache's config): any counter motion
    // is illegal, independent of the bound against hits.
    uarch::Cache cache = warmedCache(uarch::ReplacementPolicy::Lru);
    cache.access(0);
    cache.access(0); // one hit so the bound check stays quiet
    StateAuditor::pokeWayPredHitsForTest(cache, 1);
    std::vector<Violation> out = audit(cache);
    EXPECT_EQ(countInvariant(out, "waypred-counters"), 1u);
    EXPECT_EQ(countInvariant(out, "waypred-bound"), 0u);
}

TEST(StateAudit, DramRowDomainTrips)
{
    uarch::CacheHierarchy caches =
        warmedMemoryHierarchy(uarch::PrefetcherKind::NextLine);
    StateAuditor::pokeDramOpenRowForTest(caches, 0, ~0ull);
    EXPECT_EQ(countInvariant(auditHierarchy(caches), "row-domain"), 1u);
}

TEST(StateAudit, DramBusyIdentityTrips)
{
    uarch::CacheHierarchy caches =
        warmedMemoryHierarchy(uarch::PrefetcherKind::NextLine);
    ASSERT_GT(caches.dramAccesses(), 0u);
    StateAuditor::pokeDramBusyForTest(caches,
                                      caches.dramBusyCycles() + 1);
    EXPECT_EQ(countInvariant(auditHierarchy(caches), "busy-identity"),
              1u);
}

// ---------------------------------------------------------------------
// End to end: real simulations audit clean, with evidence recorded.

TEST(StateAudit, SimulateAuditedRunsCleanOnShippedModels)
{
    uarch::SimulationConfig config;
    config.instructions = 20'000;
    config.warmup = 5'000;
    const auto &benchmark = suites::spec2017()[0];
    for (const uarch::MachineConfig &machine :
         suites::profilingMachines()) {
        AuditTrail trail;
        uarch::SimulationResult result = uarch::simulateAudited(
            benchmark.profile, machine, config, trail);
        EXPECT_GT(result.counters.instructions, 0u);
        EXPECT_GE(trail.audits, 2u) << machine.name;
        for (const Violation &v : trail.violations)
            ADD_FAILURE() << machine.name << ": "
                          << renderViolation(v);
    }
}

TEST(StateAudit, SimulateAuditedMatchesSimulateBitForBit)
{
    uarch::SimulationConfig config;
    config.instructions = 20'000;
    config.warmup = 5'000;
    const auto &benchmark = suites::spec2017()[1];
    const uarch::MachineConfig machine = suites::skylakeMachine();
    AuditTrail trail;
    uarch::SimulationResult audited = uarch::simulateAudited(
        benchmark.profile, machine, config, trail);
    uarch::SimulationResult plain =
        uarch::simulate(benchmark.profile, machine, config);
    EXPECT_TRUE(uarch::bitIdentical(audited, plain));
    EXPECT_TRUE(trail.clean());
}

} // namespace
} // namespace verify
} // namespace speclens
