/**
 * @file
 * Diagnostics-engine tests: severity vocabulary, rule battery shape,
 * linter driver, report renderers and the clean-suite guarantee.
 */

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "lint/linter.h"
#include "lint/rules.h"

namespace speclens {
namespace lint {
namespace {

TEST(Severity, NamesRoundTrip)
{
    for (Severity s :
         {Severity::Info, Severity::Warning, Severity::Error})
        EXPECT_EQ(severityFromName(severityName(s)), s);
    EXPECT_EQ(severityName(Severity::Error), "error");
    EXPECT_THROW(severityFromName("fatal"), std::invalid_argument);
}

TEST(Severity, OrderingSupportsFiltering)
{
    EXPECT_LT(Severity::Info, Severity::Warning);
    EXPECT_LT(Severity::Warning, Severity::Error);
}

TEST(Severity, CountSeverity)
{
    std::vector<Diagnostic> diagnostics{
        {"SL001", Severity::Error, "a", "m", ""},
        {"SL002", Severity::Warning, "b", "m", ""},
        {"SL003", Severity::Error, "c", "m", ""},
    };
    EXPECT_EQ(countSeverity(diagnostics, Severity::Error), 2u);
    EXPECT_EQ(countSeverity(diagnostics, Severity::Warning), 1u);
    EXPECT_EQ(countSeverity(diagnostics, Severity::Info), 0u);
}

TEST(RuleBattery, TwentySixRulesWithUniqueOrderedCodes)
{
    auto rules = defaultRules();
    ASSERT_EQ(rules.size(), 26u);
    std::set<std::string> codes;
    for (std::size_t i = 0; i < rules.size(); ++i) {
        const Rule &rule = *rules[i];
        EXPECT_TRUE(codes.insert(rule.code()).second)
            << "duplicate code " << rule.code();
        EXPECT_EQ(rule.code(),
                  "SL" + std::string(i + 1 < 10 ? "00" : "0") +
                      std::to_string(i + 1));
        EXPECT_FALSE(rule.name().empty());
        EXPECT_FALSE(rule.description().empty());
    }
}

TEST(RuleBattery, RuleByCode)
{
    EXPECT_EQ(ruleByCode("SL007")->name(), "cache-monotonic");
    EXPECT_THROW(ruleByCode("SL099"), std::invalid_argument);
}

TEST(ReportFormat, FromName)
{
    EXPECT_EQ(reportFormatFromName("text"), ReportFormat::Text);
    EXPECT_EQ(reportFormatFromName("json"), ReportFormat::Json);
    EXPECT_THROW(reportFormatFromName("xml"), std::invalid_argument);
}

TEST(LintReport, CountsAndCleanliness)
{
    LintReport report;
    EXPECT_TRUE(report.clean());
    report.diagnostics.push_back(
        {"SL001", Severity::Warning, "loc", "msg", ""});
    EXPECT_TRUE(report.clean());
    EXPECT_EQ(report.warnings(), 1u);
    report.diagnostics.push_back(
        {"SL002", Severity::Error, "loc", "msg", ""});
    EXPECT_FALSE(report.clean());
    EXPECT_EQ(report.errors(), 1u);
}

TEST(RenderText, ListsFindingsWithHints)
{
    LintReport report;
    report.rules_run = 2;
    report.diagnostics.push_back({"SL003", Severity::Error,
                                  "505.mcf_r/exec.base_cpi",
                                  "base CPI is -1", "make it positive"});
    std::string text = renderText(report);
    EXPECT_NE(text.find("SL003"), std::string::npos);
    EXPECT_NE(text.find("[error]"), std::string::npos);
    EXPECT_NE(text.find("505.mcf_r/exec.base_cpi"), std::string::npos);
    EXPECT_NE(text.find("hint: make it positive"), std::string::npos);
    EXPECT_NE(text.find("2 rules, 1 errors, 0 warnings"),
              std::string::npos);
}

TEST(RenderText, SeverityFilterHidesButStillCounts)
{
    LintReport report;
    report.rules_run = 1;
    report.diagnostics.push_back(
        {"SL015", Severity::Info, "cpu2017", "skipped", ""});
    report.diagnostics.push_back(
        {"SL001", Severity::Error, "x/mix.load", "bad", ""});
    std::string text = renderText(report, Severity::Error);
    EXPECT_EQ(text.find("skipped"), std::string::npos);
    EXPECT_NE(text.find("x/mix.load"), std::string::npos);
    EXPECT_NE(text.find("(1 below severity filter)"),
              std::string::npos);
}

TEST(RenderJson, EscapesAndStructuresFindings)
{
    LintReport report;
    report.rules_run = 15;
    report.diagnostics.push_back({"SL001", Severity::Error,
                                  "a\"b", "line1\nline2",
                                  "tab\there"});
    std::string json = renderJson(report);
    EXPECT_NE(json.find("\"rules_run\": 15"), std::string::npos);
    EXPECT_NE(json.find("\"errors\": 1"), std::string::npos);
    EXPECT_NE(json.find("a\\\"b"), std::string::npos);
    EXPECT_NE(json.find("line1\\nline2"), std::string::npos);
    EXPECT_NE(json.find("tab\\there"), std::string::npos);
    // No raw control characters may survive escaping.
    EXPECT_EQ(json.find("line1\nline2"), std::string::npos);
}

TEST(RenderJson, EmptyReportYieldsEmptyArray)
{
    LintReport report;
    report.rules_run = 15;
    std::string json = renderJson(report);
    EXPECT_NE(json.find("\"diagnostics\": []"), std::string::npos);
}

TEST(LintContext, AllBenchmarksSpansEveryDatabase)
{
    LintContext context = shippedContext();
    EXPECT_EQ(context.allBenchmarks().size(),
              context.cpu2017.size() + context.cpu2006.size() +
                  context.emerging.size());
    EXPECT_EQ(context.cpu2017.size(), 43u);
    EXPECT_EQ(context.machines.size(), 7u);
    EXPECT_FALSE(context.input_groups.empty());
}

/**
 * The acceptance guarantee of the whole subsystem: the shipped
 * calibration data is clean under the full battery.  Deep
 * (simulation-backed) checks are exercised separately in
 * rules_test.cpp with a small window.
 */
TEST(CleanSuite, ShippedDataHasZeroFindings)
{
    LintContext context = shippedContext();
    context.deep = false;
    LintReport report = Linter().run(context);
    ASSERT_EQ(report.rules_run, 26u);
    for (const Diagnostic &d : report.diagnostics)
        EXPECT_EQ(d.severity, Severity::Info)
            << d.code << " " << d.location << ": " << d.message;
    EXPECT_TRUE(report.clean());
    EXPECT_EQ(report.warnings(), 0u);
}

} // namespace
} // namespace lint
} // namespace speclens
