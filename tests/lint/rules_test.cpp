/**
 * @file
 * Per-rule corruption tests.
 *
 * Every rule is exercised both ways: on the shipped data (no findings)
 * and on a context with exactly one field corrupted, where it must
 * fire with exactly its diagnostic code.  The LintContext holds its
 * data by value precisely so these tests can mutate a copy.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <limits>

#include "core/artifact_store.h"
#include "lint/rules.h"
#include "uarch/simulation.h"

namespace speclens {
namespace lint {
namespace {

/** Shipped context, copied fresh per test (deep checks off). */
LintContext
cleanContext()
{
    static const LintContext base = shippedContext();
    LintContext context = base;
    context.deep = false;
    return context;
}

/** Diagnostics from running just the rule with @p code. */
std::vector<Diagnostic>
runRule(const std::string &code, const LintContext &context)
{
    std::vector<Diagnostic> out;
    ruleByCode(code)->run(context, out);
    return out;
}

/** Errors only (deep-skip Info notes are not findings). */
std::size_t
errorCount(const std::vector<Diagnostic> &diagnostics)
{
    return countSeverity(diagnostics, Severity::Error);
}

/**
 * The corrupted context must make rule @p code (and only invocations
 * of that rule) report at least one error, every error carrying the
 * rule's own code; the clean context must stay silent.
 */
void
expectFires(const std::string &code, const LintContext &corrupted)
{
    EXPECT_EQ(errorCount(runRule(code, cleanContext())), 0u)
        << code << " reports errors on shipped data";
    std::vector<Diagnostic> found = runRule(code, corrupted);
    EXPECT_GT(errorCount(found), 0u)
        << code << " missed the seeded corruption";
    for (const Diagnostic &d : found)
        EXPECT_EQ(d.code, code) << "stray code from " << code;
}

TEST(Rules, SL001_MixRange)
{
    LintContext context = cleanContext();
    context.cpu2017[0].profile.mix.load = 1.5;
    expectFires("SL001", context);
}

TEST(Rules, SL001_MixOverUnitBudget)
{
    LintContext context = cleanContext();
    // Each fraction in range but the sum exceeds 1.
    context.cpu2006[0].profile.mix.load = 0.6;
    context.cpu2006[0].profile.mix.store = 0.6;
    expectFires("SL001", context);
}

TEST(Rules, SL002_MixSum)
{
    LintContext context = cleanContext();
    context.cpu2017[0].profile.memory.data[1].weight = 0.5;
    expectFires("SL002", context);
}

TEST(Rules, SL002_NonPositiveWeight)
{
    LintContext context = cleanContext();
    context.emerging[0].profile.memory.data[2].weight = -0.1;
    expectFires("SL002", context);
}

TEST(Rules, SL003_CpiComponents)
{
    LintContext context = cleanContext();
    context.cpu2017[0].profile.exec.base_cpi = -0.1;
    expectFires("SL003", context);
}

TEST(Rules, SL003_MlpBelowOne)
{
    LintContext context = cleanContext();
    context.cpu2017[3].profile.exec.mlp = 0.5;
    expectFires("SL003", context);
}

TEST(Rules, SL004_WorkingSetShape)
{
    LintContext context = cleanContext();
    // Big set smaller than the mid set: ordering broken.
    context.cpu2017[0].profile.memory.data[2].bytes = 1024.0;
    expectFires("SL004", context);
}

TEST(Rules, SL005_CodeModel)
{
    LintContext context = cleanContext();
    trace::MemoryModel &m = context.cpu2017[0].profile.memory;
    m.hot_code_bytes = m.code_bytes * 2;
    expectFires("SL005", context);
}

TEST(Rules, SL006_BranchModel)
{
    LintContext context = cleanContext();
    context.cpu2017[0].profile.branch.taken_fraction = 1.2;
    expectFires("SL006", context);
}

TEST(Rules, SL007_CacheMonotonicity)
{
    LintContext context = cleanContext();
    context.machines[0].caches.l2.size_bytes = 16 * 1024;
    expectFires("SL007", context);
}

TEST(Rules, SL007_LatencyInversion)
{
    LintContext context = cleanContext();
    context.machines[2].latencies.memory_cycles = 1.0;
    expectFires("SL007", context);
}

TEST(Rules, SL008_CacheGeometry)
{
    LintContext context = cleanContext();
    context.machines[0].caches.l1d.line_bytes = 48;
    expectFires("SL008", context);
}

TEST(Rules, SL008_CapacityNotMultipleOfWay)
{
    LintContext context = cleanContext();
    context.machines[1].caches.l2.size_bytes = 200 * 1000;
    expectFires("SL008", context);
}

TEST(Rules, SL009_TlbConfig)
{
    LintContext context = cleanContext();
    // Skylake DTLB has 64 entries; 3 ways do not divide them.
    context.machines[0].tlbs.dtlb.associativity = 3;
    expectFires("SL009", context);
}

TEST(Rules, SL009_L2TlbSmallerThanL1)
{
    LintContext context = cleanContext();
    ASSERT_TRUE(context.machines[0].tlbs.l2tlb.has_value());
    context.machines[0].tlbs.l2tlb->entries = 32;
    context.machines[0].tlbs.l2tlb->associativity = 32;
    expectFires("SL009", context);
}

TEST(Rules, SL010_MachineConfig)
{
    LintContext context = cleanContext();
    context.machines[0].frequency_ghz = 9.0;
    expectFires("SL010", context);
}

TEST(Rules, SL011_Transform)
{
    LintContext context = cleanContext();
    context.machines[0].transform.mix_jitter = 0.5;
    expectFires("SL011", context);
}

TEST(Rules, SL012_CrossReference)
{
    LintContext context = cleanContext();
    context.cpu2017[0].partner = "999.nonesuch_r";
    expectFires("SL012", context);
}

TEST(Rules, SL013_InputSets)
{
    LintContext context = cleanContext();
    ASSERT_FALSE(context.input_groups.empty());
    ASSERT_GT(context.input_groups[0].inputs.size(), 1u);
    context.input_groups[0].inputs.pop_back();
    expectFires("SL013", context);
}

TEST(Rules, SL014_ScoreDatabase)
{
    LintContext context = cleanContext();
    // A NaN mix fraction propagates through deriveTraits() into the
    // speedup model.
    context.cpu2017[0].profile.mix.load =
        std::numeric_limits<double>::quiet_NaN();
    expectFires("SL014", context);
}

TEST(Rules, SL015_PaperBounds)
{
    LintContext context = cleanContext();
    context.cpu2017[0].published_cpi = 50.0;
    expectFires("SL015", context);
}

TEST(Rules, SL015_DeepSimulationChecksPassOnShippedData)
{
    LintContext context = cleanContext();
    context.deep = true;
    context.instructions = 15'000;
    context.warmup = 5'000;
    std::vector<Diagnostic> found = runRule("SL015", context);
    EXPECT_EQ(errorCount(found), 0u);
    // With deep checks on, the skip note must be absent.
    for (const Diagnostic &d : found)
        EXPECT_EQ(d.message.find("skipped"), std::string::npos);
}

TEST(Rules, SL015_SkipNoteWithoutDeep)
{
    std::vector<Diagnostic> found =
        runRule("SL015", cleanContext());
    ASSERT_EQ(found.size(), 1u);
    EXPECT_EQ(found[0].severity, Severity::Info);
}

TEST(Rules, SL016_SkipNoteWithoutStore)
{
    std::vector<Diagnostic> found =
        runRule("SL016", cleanContext());
    ASSERT_EQ(found.size(), 1u);
    EXPECT_EQ(found[0].severity, Severity::Info);
}

TEST(Rules, SL016_StoreIntegrity)
{
    std::filesystem::path dir =
        std::filesystem::temp_directory_path() /
        "speclens_sl016_test";
    std::filesystem::remove_all(dir);

    // A healthy store (one shipped pair) lints clean...
    core::CampaignStore store(dir.string());
    uarch::SimulationConfig window;
    window.instructions = 2'000;
    window.warmup = 500;
    LintContext context = cleanContext();
    core::StoreKey key = core::makeStoreKey(
        context.cpu2017[0].profile, context.machines[0], window);
    store.save(key,
               uarch::simulate(context.cpu2017[0].profile,
                               context.machines[0], window));
    context.store_dir = dir.string();
    EXPECT_EQ(errorCount(runRule("SL016", context)), 0u);

    // ...and a truncated entry is an error finding.
    std::filesystem::resize_file(store.entryPath(key), 12);
    expectFires("SL016", context);
    std::filesystem::remove_all(dir);
}

TEST(Rules, SL016_OrphanedEntryWarns)
{
    std::filesystem::path dir =
        std::filesystem::temp_directory_path() /
        "speclens_sl016_orphan_test";
    std::filesystem::remove_all(dir);

    // A consistent entry whose benchmark no shipped model matches:
    // warning, not error.
    core::CampaignStore store(dir.string());
    LintContext context = cleanContext();
    trace::WorkloadProfile foreign = context.cpu2017[0].profile;
    foreign.name = "999.nonesuch_r";
    uarch::SimulationConfig window;
    window.instructions = 2'000;
    window.warmup = 500;
    core::StoreKey key =
        core::makeStoreKey(foreign, context.machines[0], window);
    store.save(key, uarch::simulate(foreign, context.machines[0],
                                    window));
    context.store_dir = dir.string();

    std::vector<Diagnostic> found = runRule("SL016", context);
    EXPECT_EQ(errorCount(found), 0u);
    EXPECT_EQ(countSeverity(found, Severity::Warning), 1u);
    std::filesystem::remove_all(dir);
}

TEST(Rules, SL017_SkipNoteWithoutDeep)
{
    std::vector<Diagnostic> found =
        runRule("SL017", cleanContext());
    ASSERT_EQ(found.size(), 1u);
    EXPECT_EQ(found[0].severity, Severity::Info);
    EXPECT_NE(found[0].message.find("skipped"), std::string::npos);
}

// A suite of identical workloads makes *every* feature column
// degenerate: SL017 must warn per column (never error — a dead metric
// is a calibration smell, not invalid data) and name each column.
TEST(Rules, SL017_IdenticalWorkloadsDegenerateEveryColumn)
{
    LintContext context = cleanContext();
    context.deep = true;
    context.instructions = 2'000;
    context.warmup = 500;
    context.cpu2017.resize(2);
    context.cpu2017[1] = context.cpu2017[0];

    std::vector<Diagnostic> found = runRule("SL017", context);
    EXPECT_EQ(errorCount(found), 0u);
    std::size_t warnings = countSeverity(found, Severity::Warning);
    EXPECT_GT(warnings, 0u);
    for (const Diagnostic &d : found) {
        EXPECT_EQ(d.code, "SL017");
        if (d.severity == Severity::Warning) {
            EXPECT_EQ(d.location.rfind("features/", 0), 0u)
                << d.location;
            EXPECT_FALSE(d.fix_hint.empty());
        }
    }
    // The summary Info line reports "0 of N feature columns vary".
    bool summary_seen = false;
    for (const Diagnostic &d : found)
        if (d.severity == Severity::Info &&
            d.message.rfind("0 of ", 0) == 0)
            summary_seen = true;
    EXPECT_TRUE(summary_seen);
    // Every column warned: warnings == N in "0 of N".
    EXPECT_EQ(warnings, found.size() - 1);
}

} // namespace
} // namespace lint
} // namespace speclens
