/**
 * @file
 * Per-rule corruption tests.
 *
 * Every rule is exercised both ways: on the shipped data (no findings)
 * and on a context with exactly one field corrupted, where it must
 * fire with exactly its diagnostic code.  The LintContext holds its
 * data by value precisely so these tests can mutate a copy.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>

#include "core/artifact_store.h"
#include "core/perf_trajectory.h"
#include "lint/rules.h"
#include "obs/manifest.h"
#include "trace/phased_workload.h"
#include "uarch/simulation.h"

namespace speclens {
namespace lint {
namespace {

/** Shipped context, copied fresh per test (deep checks off). */
LintContext
cleanContext()
{
    static const LintContext base = shippedContext();
    LintContext context = base;
    context.deep = false;
    return context;
}

/** Diagnostics from running just the rule with @p code. */
std::vector<Diagnostic>
runRule(const std::string &code, const LintContext &context)
{
    std::vector<Diagnostic> out;
    ruleByCode(code)->run(context, out);
    return out;
}

/** Errors only (deep-skip Info notes are not findings). */
std::size_t
errorCount(const std::vector<Diagnostic> &diagnostics)
{
    return countSeverity(diagnostics, Severity::Error);
}

/**
 * The corrupted context must make rule @p code (and only invocations
 * of that rule) report at least one error, every error carrying the
 * rule's own code; the clean context must stay silent.
 */
void
expectFires(const std::string &code, const LintContext &corrupted)
{
    EXPECT_EQ(errorCount(runRule(code, cleanContext())), 0u)
        << code << " reports errors on shipped data";
    std::vector<Diagnostic> found = runRule(code, corrupted);
    EXPECT_GT(errorCount(found), 0u)
        << code << " missed the seeded corruption";
    for (const Diagnostic &d : found)
        EXPECT_EQ(d.code, code) << "stray code from " << code;
}

TEST(Rules, SL001_MixRange)
{
    LintContext context = cleanContext();
    context.cpu2017[0].profile.mix.load = 1.5;
    expectFires("SL001", context);
}

TEST(Rules, SL001_MixOverUnitBudget)
{
    LintContext context = cleanContext();
    // Each fraction in range but the sum exceeds 1.
    context.cpu2006[0].profile.mix.load = 0.6;
    context.cpu2006[0].profile.mix.store = 0.6;
    expectFires("SL001", context);
}

TEST(Rules, SL002_MixSum)
{
    LintContext context = cleanContext();
    context.cpu2017[0].profile.memory.data[1].weight = 0.5;
    expectFires("SL002", context);
}

TEST(Rules, SL002_NonPositiveWeight)
{
    LintContext context = cleanContext();
    context.emerging[0].profile.memory.data[2].weight = -0.1;
    expectFires("SL002", context);
}

TEST(Rules, SL003_CpiComponents)
{
    LintContext context = cleanContext();
    context.cpu2017[0].profile.exec.base_cpi = -0.1;
    expectFires("SL003", context);
}

TEST(Rules, SL003_MlpBelowOne)
{
    LintContext context = cleanContext();
    context.cpu2017[3].profile.exec.mlp = 0.5;
    expectFires("SL003", context);
}

TEST(Rules, SL004_WorkingSetShape)
{
    LintContext context = cleanContext();
    // Big set smaller than the mid set: ordering broken.
    context.cpu2017[0].profile.memory.data[2].bytes = 1024.0;
    expectFires("SL004", context);
}

TEST(Rules, SL005_CodeModel)
{
    LintContext context = cleanContext();
    trace::MemoryModel &m = context.cpu2017[0].profile.memory;
    m.hot_code_bytes = m.code_bytes * 2;
    expectFires("SL005", context);
}

TEST(Rules, SL006_BranchModel)
{
    LintContext context = cleanContext();
    context.cpu2017[0].profile.branch.taken_fraction = 1.2;
    expectFires("SL006", context);
}

TEST(Rules, SL007_CacheMonotonicity)
{
    LintContext context = cleanContext();
    context.machines[0].caches.l2.size_bytes = 16 * 1024;
    expectFires("SL007", context);
}

TEST(Rules, SL007_LatencyInversion)
{
    LintContext context = cleanContext();
    context.machines[2].latencies.memory_cycles = 1.0;
    expectFires("SL007", context);
}

TEST(Rules, SL008_CacheGeometry)
{
    LintContext context = cleanContext();
    context.machines[0].caches.l1d.line_bytes = 48;
    expectFires("SL008", context);
}

TEST(Rules, SL008_CapacityNotMultipleOfWay)
{
    LintContext context = cleanContext();
    context.machines[1].caches.l2.size_bytes = 200 * 1000;
    expectFires("SL008", context);
}

TEST(Rules, SL009_TlbConfig)
{
    LintContext context = cleanContext();
    // Skylake DTLB has 64 entries; 3 ways do not divide them.
    context.machines[0].tlbs.dtlb.associativity = 3;
    expectFires("SL009", context);
}

TEST(Rules, SL009_L2TlbSmallerThanL1)
{
    LintContext context = cleanContext();
    ASSERT_TRUE(context.machines[0].tlbs.l2tlb.has_value());
    context.machines[0].tlbs.l2tlb->entries = 32;
    context.machines[0].tlbs.l2tlb->associativity = 32;
    expectFires("SL009", context);
}

TEST(Rules, SL010_MachineConfig)
{
    LintContext context = cleanContext();
    context.machines[0].frequency_ghz = 9.0;
    expectFires("SL010", context);
}

TEST(Rules, SL011_Transform)
{
    LintContext context = cleanContext();
    context.machines[0].transform.mix_jitter = 0.5;
    expectFires("SL011", context);
}

TEST(Rules, SL012_CrossReference)
{
    LintContext context = cleanContext();
    context.cpu2017[0].partner = "999.nonesuch_r";
    expectFires("SL012", context);
}

TEST(Rules, SL013_InputSets)
{
    LintContext context = cleanContext();
    ASSERT_FALSE(context.input_groups.empty());
    ASSERT_GT(context.input_groups[0].inputs.size(), 1u);
    context.input_groups[0].inputs.pop_back();
    expectFires("SL013", context);
}

TEST(Rules, SL014_ScoreDatabase)
{
    LintContext context = cleanContext();
    // A NaN mix fraction propagates through deriveTraits() into the
    // speedup model.
    context.cpu2017[0].profile.mix.load =
        std::numeric_limits<double>::quiet_NaN();
    expectFires("SL014", context);
}

TEST(Rules, SL015_PaperBounds)
{
    LintContext context = cleanContext();
    context.cpu2017[0].published_cpi = 50.0;
    expectFires("SL015", context);
}

TEST(Rules, SL015_DeepSimulationChecksPassOnShippedData)
{
    LintContext context = cleanContext();
    context.deep = true;
    context.instructions = 15'000;
    context.warmup = 5'000;
    std::vector<Diagnostic> found = runRule("SL015", context);
    EXPECT_EQ(errorCount(found), 0u);
    // With deep checks on, the skip note must be absent.
    for (const Diagnostic &d : found)
        EXPECT_EQ(d.message.find("skipped"), std::string::npos);
}

TEST(Rules, SL015_SkipNoteWithoutDeep)
{
    std::vector<Diagnostic> found =
        runRule("SL015", cleanContext());
    ASSERT_EQ(found.size(), 1u);
    EXPECT_EQ(found[0].severity, Severity::Info);
}

TEST(Rules, SL016_SkipNoteWithoutStore)
{
    std::vector<Diagnostic> found =
        runRule("SL016", cleanContext());
    ASSERT_EQ(found.size(), 1u);
    EXPECT_EQ(found[0].severity, Severity::Info);
}

TEST(Rules, SL016_StoreIntegrity)
{
    std::filesystem::path dir =
        std::filesystem::temp_directory_path() /
        "speclens_sl016_test";
    std::filesystem::remove_all(dir);

    // A healthy store (one shipped pair) lints clean...
    core::CampaignStore store(dir.string());
    uarch::SimulationConfig window;
    window.instructions = 2'000;
    window.warmup = 500;
    LintContext context = cleanContext();
    core::StoreKey key = core::makeStoreKey(
        context.cpu2017[0].profile, context.machines[0], window);
    store.save(key,
               uarch::simulate(context.cpu2017[0].profile,
                               context.machines[0], window));
    context.store_dir = dir.string();
    EXPECT_EQ(errorCount(runRule("SL016", context)), 0u);

    // ...and a truncated entry is an error finding.
    std::filesystem::resize_file(store.entryPath(key), 12);
    expectFires("SL016", context);
    std::filesystem::remove_all(dir);
}

TEST(Rules, SL016_OrphanedEntryWarns)
{
    std::filesystem::path dir =
        std::filesystem::temp_directory_path() /
        "speclens_sl016_orphan_test";
    std::filesystem::remove_all(dir);

    // A consistent entry whose benchmark no shipped model matches:
    // warning, not error.
    core::CampaignStore store(dir.string());
    LintContext context = cleanContext();
    trace::WorkloadProfile foreign = context.cpu2017[0].profile;
    foreign.name = "999.nonesuch_r";
    uarch::SimulationConfig window;
    window.instructions = 2'000;
    window.warmup = 500;
    core::StoreKey key =
        core::makeStoreKey(foreign, context.machines[0], window);
    store.save(key, uarch::simulate(foreign, context.machines[0],
                                    window));
    context.store_dir = dir.string();

    std::vector<Diagnostic> found = runRule("SL016", context);
    EXPECT_EQ(errorCount(found), 0u);
    EXPECT_EQ(countSeverity(found, Severity::Warning), 1u);
    std::filesystem::remove_all(dir);
}

TEST(Rules, SL017_SkipNoteWithoutDeep)
{
    std::vector<Diagnostic> found =
        runRule("SL017", cleanContext());
    ASSERT_EQ(found.size(), 1u);
    EXPECT_EQ(found[0].severity, Severity::Info);
    EXPECT_NE(found[0].message.find("skipped"), std::string::npos);
}

// A suite of identical workloads makes *every* feature column
// degenerate: SL017 must warn per column (never error — a dead metric
// is a calibration smell, not invalid data) and name each column.
TEST(Rules, SL017_IdenticalWorkloadsDegenerateEveryColumn)
{
    LintContext context = cleanContext();
    context.deep = true;
    context.instructions = 2'000;
    context.warmup = 500;
    context.cpu2017.resize(2);
    context.cpu2017[1] = context.cpu2017[0];

    std::vector<Diagnostic> found = runRule("SL017", context);
    EXPECT_EQ(errorCount(found), 0u);
    std::size_t warnings = countSeverity(found, Severity::Warning);
    EXPECT_GT(warnings, 0u);
    for (const Diagnostic &d : found) {
        EXPECT_EQ(d.code, "SL017");
        if (d.severity == Severity::Warning) {
            EXPECT_EQ(d.location.rfind("features/", 0), 0u)
                << d.location;
            EXPECT_FALSE(d.fix_hint.empty());
        }
    }
    // The summary Info line reports "0 of N feature columns vary".
    bool summary_seen = false;
    for (const Diagnostic &d : found)
        if (d.severity == Severity::Info &&
            d.message.rfind("0 of ", 0) == 0)
            summary_seen = true;
    EXPECT_TRUE(summary_seen);
    // Every column warned: warnings == N in "0 of N".
    EXPECT_EQ(warnings, found.size() - 1);
}

// ---------------------------------------------------------------------
// Artifact-lint family (SL018-SL024).

/** RAII temp directory under the system temp root. */
struct TempDir {
    std::filesystem::path path;

    explicit TempDir(const char *name)
        : path(std::filesystem::temp_directory_path() / name)
    {
        std::filesystem::remove_all(path);
        std::filesystem::create_directories(path);
    }
    ~TempDir() { std::filesystem::remove_all(path); }
};

void
writeFile(const std::filesystem::path &file, const std::string &text)
{
    std::ofstream os(file);
    os << text;
}

/** @p text with the first occurrence of @p from swapped for @p to. */
std::string
replaced(std::string text, const std::string &from, const std::string &to)
{
    std::size_t pos = text.find(from);
    EXPECT_NE(pos, std::string::npos) << from;
    if (pos != std::string::npos)
        text.replace(pos, from.size(), to);
    return text;
}

/** A fully consistent v2 trajectory artifact for PR @p pr. */
std::string
benchArtifactText(std::uint64_t pr)
{
    const double fused = 2.0, materialized = 4.0;
    const double records_per_second = 12'880'000.0 / fused;
    std::ostringstream os;
    os.precision(17);
    os << "{\n";
    os << "  \"schema\": \"speclens-bench-trajectory-v2\",\n";
    os << "  \"pr\": " << pr << ",\n";
    os << "  \"seed_baseline\": {\n";
    os << "    \"records_per_second\": " << core::kSeedRecordsPerSecond
       << ",\n";
    os << "    \"simulations_per_second\": "
       << core::kSeedSimulationsPerSecond << "\n";
    os << "  },\n";
    os << "  \"config\": {\n";
    os << "    \"suite\": \"cpu2017\",\n";
    os << "    \"benchmarks\": 23,\n";
    os << "    \"machines\": 7,\n";
    os << "    \"instructions\": " << core::kTrajectoryInstructions
       << ",\n";
    os << "    \"warmup\": " << core::kTrajectoryWarmup << ",\n";
    os << "    \"seed_salt\": 0,\n";
    os << "    \"jobs\": 1\n";
    os << "  },\n";
    os << "  \"campaign\": {\n";
    os << "    \"simulations\": 161,\n";
    os << "    \"records_per_simulation\": 80000,\n";
    os << "    \"records_total\": 12880000,\n";
    os << "    \"fingerprint\": \"00112233aabbccdd\",\n";
    os << "    \"fused_seconds\": " << fused << ",\n";
    os << "    \"materialized_seconds\": " << materialized << ",\n";
    os << "    \"speedup_vs_materialized\": " << materialized / fused
       << ",\n";
    os << "    \"speedup_vs_seed\": "
       << records_per_second / core::kSeedRecordsPerSecond << ",\n";
    os << "    \"simulations_per_second\": " << 161.0 / fused << ",\n";
    os << "    \"records_per_second\": " << records_per_second << ",\n";
    os << "    \"parity_bit_identical\": true\n";
    os << "  },\n";
    os << "  \"stats\": {\n";
    os << "    \"seconds\": 0.5,\n";
    os << "    \"feature_rows\": 23,\n";
    os << "    \"feature_cols\": 30,\n";
    os << "    \"fingerprint\": \"ffeeddccbbaa9988\"\n";
    os << "  },\n";
    os << "  \"store\": {\n";
    os << "    \"checked\": false\n";
    os << "  }\n";
    os << "}\n";
    return os.str();
}

/** A well-formed version-1 run manifest claiming @p entries entries. */
std::string
manifestText(std::uint64_t entries)
{
    std::ostringstream os;
    os << "{\n";
    os << "  \"manifest_version\": 1,\n";
    os << "  \"engine_version\": " << core::kStoreEngineVersion << ",\n";
    os << "  \"config_fingerprint\": \"0123456789abcdef\",\n";
    os << "  \"run\": {\n";
    os << "    \"benchmarks\": 23,\n";
    os << "    \"machines\": 7\n";
    os << "  },\n";
    os << "  \"totals\": {\n";
    os << "    \"entries\": " << entries << ",\n";
    os << "    \"hits\": 0,\n";
    os << "    \"misses\": " << entries << ",\n";
    os << "    \"simulations\": " << entries << ",\n";
    os << "    \"saves\": " << entries << "\n";
    os << "  },\n";
    os << "  \"rejected\": {\n";
    os << "    \"corrupt\": 0,\n";
    os << "    \"stale_version\": 0,\n";
    os << "    \"fingerprint_mismatch\": 0,\n";
    os << "    \"orphaned_temp\": 0\n";
    os << "  },\n";
    os << "  \"metrics\": {\n";
    os << "    \"spans\": 0\n";
    os << "  }\n";
    os << "}\n";
    return os.str();
}

TEST(Rules, SL018_SkipNoteWithoutStore)
{
    std::vector<Diagnostic> found = runRule("SL018", cleanContext());
    ASSERT_EQ(found.size(), 1u);
    EXPECT_EQ(found[0].severity, Severity::Info);
}

TEST(Rules, SL018_StoreResultAudit)
{
    TempDir dir("speclens_sl018_test");
    core::CampaignStore store(dir.path.string());
    LintContext context = cleanContext();
    context.store_dir = dir.path.string();
    uarch::SimulationConfig window;
    window.instructions = 2'000;
    window.warmup = 500;

    // A faithfully saved result re-audits clean...
    uarch::SimulationResult result = uarch::simulate(
        context.cpu2017[0].profile, context.machines[0], window);
    store.save(core::makeStoreKey(context.cpu2017[0].profile,
                                  context.machines[0], window),
               result);
    EXPECT_EQ(errorCount(runRule("SL018", context)), 0u);

    // ...and a page-walk/last-level-miss mismatch is a finding.
    window.seed_salt = 7;
    uarch::SimulationResult bad = uarch::simulate(
        context.cpu2017[0].profile, context.machines[0], window);
    bad.counters.page_walks += 1;
    store.save(core::makeStoreKey(context.cpu2017[0].profile,
                                  context.machines[0], window),
               bad);
    expectFires("SL018", context);
}

TEST(Rules, SL019_StoreMetricRange)
{
    TempDir dir("speclens_sl019_test");
    core::CampaignStore store(dir.path.string());
    LintContext context = cleanContext();
    context.store_dir = dir.path.string();
    uarch::SimulationConfig window;
    window.instructions = 2'000;
    window.warmup = 500;

    uarch::SimulationResult result = uarch::simulate(
        context.cpu2017[0].profile, context.machines[0], window);
    store.save(core::makeStoreKey(context.cpu2017[0].profile,
                                  context.machines[0], window),
               result);
    EXPECT_EQ(errorCount(runRule("SL019", context)), 0u);

    // An L3 access that no L2 miss explains breaks demand plumbing.
    window.seed_salt = 7;
    uarch::SimulationResult bad = uarch::simulate(
        context.cpu2017[0].profile, context.machines[0], window);
    bad.counters.l3_accesses += 1;
    store.save(core::makeStoreKey(context.cpu2017[0].profile,
                                  context.machines[0], window),
               bad);
    expectFires("SL019", context);
}

TEST(Rules, SL020_SkipNoteWithoutBenchDir)
{
    std::vector<Diagnostic> found = runRule("SL020", cleanContext());
    ASSERT_EQ(found.size(), 1u);
    EXPECT_EQ(found[0].severity, Severity::Info);
}

TEST(Rules, SL020_BenchSchemaVolumeMismatch)
{
    TempDir dir("speclens_sl020_test");
    LintContext context = cleanContext();
    context.bench_dir = dir.path.string();

    writeFile(dir.path / "BENCH_3.json", benchArtifactText(3));
    EXPECT_EQ(errorCount(runRule("SL020", context)), 0u);

    writeFile(dir.path / "BENCH_3.json",
              replaced(benchArtifactText(3),
                       "\"records_total\": 12880000",
                       "\"records_total\": 12880001"));
    expectFires("SL020", context);
}

TEST(Rules, SL020_ParityRegressionIsAnError)
{
    TempDir dir("speclens_sl020_parity_test");
    LintContext context = cleanContext();
    context.bench_dir = dir.path.string();
    writeFile(dir.path / "BENCH_4.json",
              replaced(benchArtifactText(4),
                       "\"parity_bit_identical\": true",
                       "\"parity_bit_identical\": false"));
    expectFires("SL020", context);
}

TEST(Rules, SL020_SeedBaselineDrift)
{
    TempDir dir("speclens_sl020_seed_test");
    LintContext context = cleanContext();
    context.bench_dir = dir.path.string();
    // A rewritten baseline silently re-bases every later speedup.
    std::string text = benchArtifactText(5);
    std::size_t baseline = text.find("\"seed_baseline\"");
    std::size_t pos = text.find("\"records_per_second\": ", baseline);
    ASSERT_NE(pos, std::string::npos);
    text.replace(pos, std::string("\"records_per_second\": ").size(),
                 "\"records_per_second\": 1");
    writeFile(dir.path / "BENCH_5.json", text);
    expectFires("SL020", context);
}

TEST(Rules, SL021_SkipNoteWithoutBenchDir)
{
    std::vector<Diagnostic> found = runRule("SL021", cleanContext());
    ASSERT_EQ(found.size(), 1u);
    EXPECT_EQ(found[0].severity, Severity::Info);
}

TEST(Rules, SL021_UnpinnedConfigBreaksTheSeries)
{
    TempDir dir("speclens_sl021_test");
    LintContext context = cleanContext();
    context.bench_dir = dir.path.string();

    writeFile(dir.path / "BENCH_3.json", benchArtifactText(3));
    writeFile(dir.path / "BENCH_4.json", benchArtifactText(4));
    EXPECT_EQ(errorCount(runRule("SL021", context)), 0u);

    // A salted point measures a different workload: not comparable.
    writeFile(dir.path / "BENCH_4.json",
              replaced(benchArtifactText(4), "\"seed_salt\": 0",
                       "\"seed_salt\": 1"));
    expectFires("SL021", context);
}

TEST(Rules, SL022_ManifestSchema)
{
    TempDir dir("speclens_sl022_test");
    LintContext context = cleanContext();
    context.store_dir = dir.path.string();

    // No manifest: an Info note, never a finding (API-created stores
    // legitimately lack one).
    std::vector<Diagnostic> found = runRule("SL022", context);
    EXPECT_EQ(errorCount(found), 0u);
    EXPECT_EQ(countSeverity(found, Severity::Info), 1u);

    writeFile(dir.path / obs::kManifestFileName, manifestText(0));
    EXPECT_EQ(errorCount(runRule("SL022", context)), 0u);

    writeFile(dir.path / obs::kManifestFileName,
              replaced(manifestText(0), "\"manifest_version\": 1",
                       "\"manifest_version\": 2"));
    expectFires("SL022", context);
}

TEST(Rules, SL023_ManifestStoreDrift)
{
    TempDir dir("speclens_sl023_test");
    LintContext context = cleanContext();
    context.store_dir = dir.path.string();

    // Consistent: empty store, manifest claiming zero entries.
    writeFile(dir.path / obs::kManifestFileName, manifestText(0));
    EXPECT_EQ(errorCount(runRule("SL023", context)), 0u);

    // A manifest describing five entries over an empty store is stale.
    writeFile(dir.path / obs::kManifestFileName, manifestText(5));
    expectFires("SL023", context);
}

TEST(Rules, SL024_StorePhasedConsistency)
{
    TempDir dir("speclens_sl024_test");
    core::CampaignStore store(dir.path.string());
    LintContext context = cleanContext();
    context.store_dir = dir.path.string();
    uarch::SimulationConfig window;
    window.instructions = 2'000;
    window.warmup = 500;

    trace::PhasedWorkload workload = trace::derivePhases(
        context.cpu2017[0].profile, 3, 0.35);
    uarch::PhasedSimulationResult result = uarch::simulatePhased(
        workload, context.machines[0], window);
    store.savePhased(
        core::makeStoreKey(workload, context.machines[0], window),
        result);
    EXPECT_EQ(errorCount(runRule("SL024", context)), 0u);

    // A combined counter that is not the sum of its phases.
    window.seed_salt = 7;
    uarch::PhasedSimulationResult bad = uarch::simulatePhased(
        workload, context.machines[0], window);
    bad.combined_counters.instructions += 1;
    store.savePhased(
        core::makeStoreKey(workload, context.machines[0], window),
        bad);
    expectFires("SL024", context);
}

/** The `<16-hex>.slart` basename the store files @p key under. */
std::string
entryBaseName(const core::StoreKey &key)
{
    char hex[17];
    std::snprintf(hex, sizeof(hex), "%016llx",
                  static_cast<unsigned long long>(key.fingerprint));
    return std::string(hex) + ".slart";
}

TEST(Rules, SL025_SkipNoteWithoutStore)
{
    std::vector<Diagnostic> found = runRule("SL025", cleanContext());
    ASSERT_EQ(found.size(), 1u);
    EXPECT_EQ(found[0].severity, Severity::Info);
}

TEST(Rules, SL025_MisfiledEntryIsAnError)
{
    TempDir dir("speclens_sl025_test");
    core::CampaignStore store(dir.path.string());
    LintContext context = cleanContext();
    context.store_dir = dir.path.string();
    uarch::SimulationConfig window;
    window.instructions = 2'000;
    window.warmup = 500;

    core::StoreKey key = core::makeStoreKey(
        context.cpu2017[0].profile, context.machines[0], window);
    store.save(key, uarch::simulate(context.cpu2017[0].profile,
                                    context.machines[0], window));
    EXPECT_EQ(errorCount(runRule("SL025", context)), 0u);

    // File the entry under the next shard over: unreachable by lookup.
    std::size_t home = core::storeShardIndex(key.fingerprint);
    std::size_t wrong = (home + 1) % core::CampaignStore::shardCount();
    std::filesystem::path name = entryBaseName(key);
    std::filesystem::create_directories(dir.path /
                                        core::storeShardDirName(wrong));
    std::filesystem::rename(
        dir.path / core::storeShardDirName(home) / name,
        dir.path / core::storeShardDirName(wrong) / name);
    expectFires("SL025", context);
}

TEST(Rules, SL025_LegacyFlatEntryIsAWarning)
{
    TempDir dir("speclens_sl025_legacy_test");
    core::CampaignStore store(dir.path.string());
    LintContext context = cleanContext();
    context.store_dir = dir.path.string();
    uarch::SimulationConfig window;
    window.instructions = 2'000;
    window.warmup = 500;

    core::StoreKey key = core::makeStoreKey(
        context.cpu2017[0].profile, context.machines[0], window);
    store.save(key, uarch::simulate(context.cpu2017[0].profile,
                                    context.machines[0], window));

    // A pre-shard store kept entries in the root: readable, so only a
    // warning, never an error.
    std::filesystem::path name = entryBaseName(key);
    std::filesystem::rename(
        dir.path / core::storeShardDirName(
                       core::storeShardIndex(key.fingerprint)) /
            name,
        dir.path / name);
    std::vector<Diagnostic> found = runRule("SL025", context);
    EXPECT_EQ(errorCount(found), 0u);
    EXPECT_GE(countSeverity(found, Severity::Warning), 1u);
}

} // namespace
} // namespace lint
} // namespace speclens
