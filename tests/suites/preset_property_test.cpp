/**
 * @file
 * Property tests over the calibration vocabulary: the preset enums
 * must translate into monotone, well-ordered micro-architectural
 * behaviour, or the qualitative knobs of the benchmark databases mean
 * nothing.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "suites/machines.h"
#include "suites/profile_presets.h"
#include "uarch/simulation.h"

namespace speclens {
namespace suites {
namespace {

uarch::SimulationResult
simulateSpec(const ProfileSpec &spec, const std::string &name)
{
    uarch::SimulationConfig config;
    config.instructions = 40'000;
    config.warmup = 10'000;
    config.apply_machine_transform = false;
    return uarch::simulate(buildProfile(name, spec),
                           suites::skylakeMachine(), config);
}

TEST(PresetPropertyTest, DataLocalityOrdersL1dMpki)
{
    // Resident < Small < Medium < Large < Huge < Extreme in L1D MPKI,
    // everything else held fixed.
    const DataLocality order[] = {DataLocality::Resident,
                                  DataLocality::Small,
                                  DataLocality::Medium,
                                  DataLocality::Large,
                                  DataLocality::Huge,
                                  DataLocality::Extreme};
    double previous = -1.0;
    for (DataLocality locality : order) {
        ProfileSpec spec;
        spec.data = locality;
        spec.streaming = 0.0;
        double mpki =
            simulateSpec(spec, "sweep.data").counters.l1dMpki();
        EXPECT_GT(mpki, previous)
            << "locality step " << static_cast<int>(locality);
        previous = mpki;
    }
}

TEST(PresetPropertyTest, DataLocalityOrdersL3Mpki)
{
    const DataLocality order[] = {DataLocality::Resident,
                                  DataLocality::Medium,
                                  DataLocality::Huge,
                                  DataLocality::Extreme};
    double previous = -1.0;
    for (DataLocality locality : order) {
        ProfileSpec spec;
        spec.data = locality;
        spec.streaming = 0.0;
        double mpki = simulateSpec(spec, "sweep.l3").counters.l3Mpki();
        EXPECT_GT(mpki, previous);
        previous = mpki;
    }
}

TEST(PresetPropertyTest, BranchQualityOrdersMisprediction)
{
    const BranchQuality order[] = {BranchQuality::VeryEasy,
                                   BranchQuality::Easy,
                                   BranchQuality::Moderate,
                                   BranchQuality::Hard,
                                   BranchQuality::VeryHard};
    double previous = -1.0;
    for (BranchQuality quality : order) {
        ProfileSpec spec;
        spec.branches = quality;
        double mpki =
            simulateSpec(spec, "sweep.branch").counters.branchMpki();
        EXPECT_GT(mpki, previous)
            << "quality step " << static_cast<int>(quality);
        previous = mpki;
    }
}

TEST(PresetPropertyTest, CodePressureOrdersL1iMpki)
{
    const CodePressure order[] = {CodePressure::Tiny,
                                  CodePressure::Small,
                                  CodePressure::Medium,
                                  CodePressure::Large,
                                  CodePressure::Huge};
    double previous = -1.0;
    for (CodePressure pressure : order) {
        ProfileSpec spec;
        spec.code = pressure;
        spec.branch_pct = 15.0; // jumps expose the footprint
        double mpki =
            simulateSpec(spec, "sweep.code").counters.l1iMpki();
        EXPECT_GE(mpki, previous)
            << "pressure step " << static_cast<int>(pressure);
        previous = mpki;
    }
}

TEST(PresetPropertyTest, TlbStressRaisesWalksNotL3Proportionally)
{
    ProfileSpec quiet;
    quiet.tlb_stress = 0.0;
    ProfileSpec stressed;
    stressed.tlb_stress = 0.8;

    auto quiet_result = simulateSpec(quiet, "sweep.tlb");
    auto stressed_result = simulateSpec(stressed, "sweep.tlb");

    double quiet_walks = quiet_result.counters.pageWalksPerMi();
    double stressed_walks = stressed_result.counters.pageWalksPerMi();
    // The stress knob widens the sparse set and raises its weight by
    // (1 + stress): walks must grow at least that much.
    EXPECT_GT(stressed_walks, 1.5 * quiet_walks);

    // Decoupling: walks grow at least as fast as L3 misses — the
    // page-stride conversion adds TLB pressure without a matching
    // cache-miss signature.
    double l3_growth = stressed_result.counters.l3Mpki() /
                       std::max(0.1, quiet_result.counters.l3Mpki());
    double walk_growth = stressed_walks / std::max(0.1, quiet_walks);
    EXPECT_GE(walk_growth, l3_growth - 0.05);
}

TEST(PresetPropertyTest, StreamingReducesDataMisses)
{
    ProfileSpec random_spec;
    random_spec.data = DataLocality::Large;
    random_spec.streaming = 0.0;
    ProfileSpec streaming_spec;
    streaming_spec.data = DataLocality::Large;
    streaming_spec.streaming = 0.9;

    double random_mpki =
        simulateSpec(random_spec, "sweep.stream").counters.l1dMpki();
    double streaming_mpki =
        simulateSpec(streaming_spec, "sweep.stream").counters.l1dMpki();
    EXPECT_LT(streaming_mpki, random_mpki);
}

TEST(PresetPropertyTest, DependencyShareMovesCpi)
{
    ProfileSpec lean;
    lean.dependency_share = 0.0;
    ProfileSpec chained;
    chained.dependency_share = 0.45;
    EXPECT_GT(simulateSpec(chained, "sweep.dep").cpi(),
              simulateSpec(lean, "sweep.dep").cpi());
}

class MachineSweepTest
    : public ::testing::TestWithParam<const char *>
{
};

TEST_P(MachineSweepTest, EveryPresetSimulatesOnEveryMachine)
{
    // Cartesian sanity: all locality presets produce finite, ordered
    // counters on the parametrised machine.
    const auto &machine = machineByShortName(GetParam());
    for (DataLocality locality :
         {DataLocality::Resident, DataLocality::Medium,
          DataLocality::Extreme, DataLocality::L1Bound}) {
        ProfileSpec spec;
        spec.data = locality;
        uarch::SimulationConfig config;
        config.instructions = 20'000;
        config.warmup = 5'000;
        auto result = uarch::simulate(
            buildProfile("sweep.machine", spec), machine, config);
        EXPECT_GT(result.cpi(), 0.0);
        EXPECT_LE(result.counters.l1d_misses,
                  result.counters.l1d_accesses);
        EXPECT_GT(result.power.total(), 0.0);
    }
}

INSTANTIATE_TEST_SUITE_P(AllMachines, MachineSweepTest,
                         ::testing::Values("skylake", "broadwell",
                                           "ivybridge", "harpertown",
                                           "sparc-iv", "sparc-t4",
                                           "opteron"),
                         [](const auto &info) {
                             std::string name = info.param;
                             for (char &c : name)
                                 if (c == '-')
                                     c = '_';
                             return name;
                         });

} // namespace
} // namespace suites
} // namespace speclens
