/**
 * @file
 * Tests for the benchmark databases: CPU2017 (Table I fidelity),
 * CPU2006, emerging workloads, input sets, machines (Table IV
 * fidelity) and the score database.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "suites/emerging.h"
#include "suites/input_sets.h"
#include "suites/machines.h"
#include "suites/score_database.h"
#include "suites/spec2006.h"
#include "suites/spec2017.h"

namespace speclens {
namespace suites {
namespace {

// ---------------------------------------------------------------------
// CPU2017 database
// ---------------------------------------------------------------------

TEST(Spec2017Test, FortyThreeBenchmarksInFourCategories)
{
    EXPECT_EQ(spec2017().size(), 43u);
    EXPECT_EQ(spec2017SpeedInt().size(), 10u);
    EXPECT_EQ(spec2017RateInt().size(), 10u);
    EXPECT_EQ(spec2017SpeedFp().size(), 10u);
    EXPECT_EQ(spec2017RateFp().size(), 13u);
}

TEST(Spec2017Test, NamesAreUniqueAndProfilesValid)
{
    std::set<std::string> names;
    for (const BenchmarkInfo &b : spec2017()) {
        EXPECT_TRUE(names.insert(b.name).second) << b.name;
        EXPECT_NO_THROW(b.profile.validate()) << b.name;
        EXPECT_EQ(b.profile.name, b.name);
        EXPECT_EQ(b.suite, Suite::Cpu2017);
    }
}

TEST(Spec2017Test, TableOneCalibrationData)
{
    // Spot-check rows of Table I.
    const BenchmarkInfo &mcf = spec2017Benchmark("605.mcf_s");
    EXPECT_EQ(mcf.id, 605);
    EXPECT_NEAR(mcf.profile.dynamic_instructions_billions, 1775, 1);
    EXPECT_NEAR(mcf.profile.mix.load, 0.1855, 1e-4);
    EXPECT_NEAR(mcf.published_cpi, 1.22, 1e-9);

    const BenchmarkInfo &bwaves = spec2017Benchmark("603.bwaves_s");
    EXPECT_NEAR(bwaves.profile.dynamic_instructions_billions, 66395, 1);

    const BenchmarkInfo &xalan = spec2017Benchmark("523.xalancbmk_r");
    EXPECT_NEAR(xalan.profile.mix.branch, 0.3326, 1e-4);
}

TEST(Spec2017Test, SpeedIcountsExceedRateForFp)
{
    // Section II-B: speed FP benchmarks have ~8x (avg) higher dynamic
    // instruction counts than their rate versions.
    double ratio_sum = 0.0;
    int pairs = 0;
    for (const BenchmarkInfo &speed : spec2017SpeedFp()) {
        if (speed.partner.empty())
            continue;
        const BenchmarkInfo &rate = spec2017Benchmark(speed.partner);
        ratio_sum += speed.profile.dynamic_instructions_billions /
                     rate.profile.dynamic_instructions_billions;
        ++pairs;
    }
    EXPECT_GT(ratio_sum / pairs, 5.0);
}

TEST(Spec2017Test, PartnersAreMutual)
{
    for (const BenchmarkInfo &b : spec2017()) {
        if (b.partner.empty())
            continue;
        const BenchmarkInfo &partner = spec2017Benchmark(b.partner);
        EXPECT_EQ(partner.partner, b.name) << b.name;
    }
}

TEST(Spec2017Test, SpeedOnlyAndRateOnlyBenchmarks)
{
    // 628.pop2_s exists only in speed; namd/parest/povray/blender only
    // in rate (Section IV-D).
    EXPECT_TRUE(spec2017Benchmark("628.pop2_s").partner.empty());
    EXPECT_TRUE(spec2017Benchmark("508.namd_r").partner.empty());
    EXPECT_TRUE(spec2017Benchmark("510.parest_r").partner.empty());
    EXPECT_TRUE(spec2017Benchmark("511.povray_r").partner.empty());
    EXPECT_TRUE(spec2017Benchmark("526.blender_r").partner.empty());
}

TEST(Spec2017Test, NewBenchmarkFlags)
{
    // Section II-A: nine new FP benchmarks, AI domain expanded with
    // three, x264/xz new in INT.
    EXPECT_TRUE(spec2017Benchmark("507.cactuBSSN_r").new_in_2017);
    EXPECT_TRUE(spec2017Benchmark("541.leela_r").new_in_2017);
    EXPECT_TRUE(spec2017Benchmark("525.x264_r").new_in_2017);
    EXPECT_FALSE(spec2017Benchmark("505.mcf_r").new_in_2017);
    EXPECT_FALSE(spec2017Benchmark("503.bwaves_r").new_in_2017);

    int new_fp = 0;
    for (const BenchmarkInfo &b : spec2017RateFp())
        new_fp += b.new_in_2017;
    EXPECT_EQ(new_fp, 8); // 9 new FP programs; povray is retained
}

TEST(Spec2017Test, DomainsMatchTableEight)
{
    EXPECT_EQ(spec2017Benchmark("505.mcf_r").domain,
              Domain::CombinatorialOptimization);
    EXPECT_EQ(spec2017Benchmark("520.omnetpp_r").domain,
              Domain::DiscreteEventSimulation);
    EXPECT_EQ(spec2017Benchmark("510.parest_r").domain,
              Domain::Biomedical);
    EXPECT_EQ(spec2017Benchmark("654.roms_s").domain,
              Domain::Climatology);
    EXPECT_EQ(spec2017Benchmark("641.leela_s").domain,
              Domain::ArtificialIntelligence);
}

TEST(Spec2017Test, UnknownBenchmarkThrows)
{
    EXPECT_THROW(spec2017Benchmark("999.nothing"), std::out_of_range);
}

TEST(Spec2017Test, BranchSharesFollowSectionIIB)
{
    // "For the integer benchmarks the fraction of branch instructions
    // is roughly <= 15%" (xalancbmk at 33% is the stated outlier) and
    // "for the FP categories most benchmarks have much lower fraction
    // of control instructions (<= 9% on average)".
    double fp_sum = 0.0;
    int fp_count = 0;
    for (const BenchmarkInfo &b : spec2017()) {
        if (isFpCategory(b.category)) {
            fp_sum += b.profile.mix.branch;
            ++fp_count;
        } else if (b.name.find("xalancbmk") == std::string::npos) {
            EXPECT_LE(b.profile.mix.branch, 0.19) << b.name;
        }
    }
    EXPECT_LE(fp_sum / fp_count, 0.09);
}

TEST(Spec2017Test, MemoryIntensiveBenchmarksPerSectionIIB)
{
    // "several benchmarks (e.g. 602.gcc_s, 507.cactuBSSN_r) having
    // ~50% fraction of memory (load and store) instructions".
    for (const char *name : {"602.gcc_s", "507.cactuBSSN_r"}) {
        const BenchmarkInfo &b = spec2017Benchmark(name);
        EXPECT_GT(b.profile.mix.load + b.profile.mix.store, 0.45)
            << name;
    }
}

TEST(Spec2017Test, FpBenchmarksHaveFpContent)
{
    for (const BenchmarkInfo &b : spec2017()) {
        if (isFpCategory(b.category)) {
            EXPECT_GT(b.profile.mix.fp + b.profile.mix.simd, 0.1)
                << b.name;
        }
    }
}

// ---------------------------------------------------------------------
// CPU2006 database
// ---------------------------------------------------------------------

TEST(Spec2006Test, TwentyNineBenchmarks)
{
    EXPECT_EQ(spec2006().size(), 29u);
    EXPECT_EQ(spec2006Int().size(), 12u);
    EXPECT_EQ(spec2006Fp().size(), 17u);
}

TEST(Spec2006Test, IntBranchSharesAverageTwentyPercent)
{
    // Section II-B: CPU2006 INT averages ~20% branches, clearly above
    // CPU2017 INT.
    double sum06 = 0.0;
    for (const BenchmarkInfo &b : spec2006Int())
        sum06 += b.profile.mix.branch;
    double avg06 = sum06 / 12.0;

    double sum17 = 0.0;
    for (const BenchmarkInfo &b : spec2017RateInt())
        sum17 += b.profile.mix.branch;
    double avg17 = sum17 / 10.0;

    EXPECT_NEAR(avg06, 0.20, 0.04);
    EXPECT_GT(avg06, avg17);
}

TEST(Spec2006Test, RemovedBenchmarkList)
{
    auto removed = spec2006RemovedBenchmarks();
    EXPECT_EQ(removed.size(), 20u);
    std::set<std::string> names;
    for (const BenchmarkInfo &b : removed)
        names.insert(b.name);
    EXPECT_TRUE(names.count("429.mcf"));
    EXPECT_TRUE(names.count("445.gobmk"));
    EXPECT_TRUE(names.count("473.astar"));
    // Retained benchmarks are absent.
    EXPECT_FALSE(names.count("471.omnetpp"));
    EXPECT_FALSE(names.count("410.bwaves"));
}

TEST(Spec2006Test, ProfilesValid)
{
    for (const BenchmarkInfo &b : spec2006())
        EXPECT_NO_THROW(b.profile.validate()) << b.name;
}

// ---------------------------------------------------------------------
// Emerging workloads
// ---------------------------------------------------------------------

TEST(EmergingTest, CompositionMatchesFig13)
{
    EXPECT_EQ(edaBenchmarks().size(), 2u);
    EXPECT_EQ(databaseBenchmarks().size(), 2u);
    EXPECT_EQ(graphBenchmarks().size(), 4u);
    EXPECT_EQ(emergingBenchmarks().size(), 8u);
}

TEST(EmergingTest, CassandraHasServerCharacteristics)
{
    for (const BenchmarkInfo &b : databaseBenchmarks()) {
        EXPECT_GT(b.profile.memory.code_bytes, 1024.0 * 1024)
            << b.name;
        EXPECT_GT(b.profile.exec.kernel_fraction, 0.2) << b.name;
    }
}

TEST(EmergingTest, PageRankIsTlbHostile)
{
    for (const BenchmarkInfo &b : graphBenchmarks()) {
        if (b.name.rfind("pr-", 0) != 0)
            continue;
        // The vast working set must be page-stride (one line per page).
        EXPECT_DOUBLE_EQ(b.profile.memory.data[3].stride_bytes, 4096.0)
            << b.name;
    }
}

// ---------------------------------------------------------------------
// Input sets
// ---------------------------------------------------------------------

TEST(InputSetsTest, CountsMatchDistribution)
{
    EXPECT_EQ(inputSetCount("502.gcc_r"), 5);
    EXPECT_EQ(inputSetCount("525.x264_r"), 3);
    EXPECT_EQ(inputSetCount("500.perlbench_r"), 3);
    EXPECT_EQ(inputSetCount("503.bwaves_r"), 4);
    EXPECT_EQ(inputSetCount("605.mcf_s"), 1);
    EXPECT_EQ(inputSetCount("541.leela_r"), 1);
}

TEST(InputSetsTest, VariantsAreDeterministicAndDistinct)
{
    const BenchmarkInfo &gcc = spec2017Benchmark("502.gcc_r");
    BenchmarkInfo v1a = inputVariant(gcc, 1);
    BenchmarkInfo v1b = inputVariant(gcc, 1);
    BenchmarkInfo v2 = inputVariant(gcc, 2);
    EXPECT_EQ(v1a.profile.memory.data[0].bytes,
              v1b.profile.memory.data[0].bytes);
    EXPECT_NE(v1a.profile.memory.data[0].bytes,
              v2.profile.memory.data[0].bytes);
    EXPECT_EQ(v1a.name, "502.gcc_r#1");
    EXPECT_NO_THROW(v1a.profile.validate());
    EXPECT_NO_THROW(v2.profile.validate());
}

TEST(InputSetsTest, SpreadControlsPerturbationMagnitude)
{
    const BenchmarkInfo &gcc = spec2017Benchmark("502.gcc_r");
    double tight_dev = 0.0, wide_dev = 0.0;
    for (int k = 1; k <= 5; ++k) {
        BenchmarkInfo tight =
            inputVariant(gcc, k, kCpu2017InputSpread);
        BenchmarkInfo wide = inputVariant(gcc, k, kCpu2006GccSpread);
        tight_dev += std::fabs(std::log(
            tight.profile.memory.data[1].bytes /
            gcc.profile.memory.data[1].bytes));
        wide_dev += std::fabs(std::log(
            wide.profile.memory.data[1].bytes /
            gcc.profile.memory.data[1].bytes));
    }
    EXPECT_GT(wide_dev, tight_dev);
}

TEST(InputSetsTest, GroupsExpandCorrectly)
{
    auto int_groups = inputSetGroupsInt();
    EXPECT_EQ(int_groups.size(), 20u); // 10 rate + 10 speed
    std::size_t total = 0;
    for (const InputSetGroup &g : int_groups) {
        EXPECT_EQ(g.inputs.size(),
                  static_cast<std::size_t>(
                      inputSetCount(g.benchmark.name)));
        total += g.inputs.size();
        if (g.inputs.size() == 1) {
            EXPECT_EQ(g.inputs[0].name, g.benchmark.name);
        }
    }
    EXPECT_EQ(flattenGroups(int_groups).size(), total);

    auto fp_groups = inputSetGroupsFp();
    EXPECT_EQ(fp_groups.size(), 23u); // 13 rate + 10 speed
}

// ---------------------------------------------------------------------
// Machines (Table IV)
// ---------------------------------------------------------------------

TEST(MachinesTest, SevenMachinesMatchingTableFour)
{
    const auto &machines = profilingMachines();
    ASSERT_EQ(machines.size(), 7u);

    const auto &skylake = machineByShortName("skylake");
    EXPECT_EQ(skylake.caches.l1d.size_bytes, 32u * 1024);
    ASSERT_TRUE(skylake.caches.l3.has_value());
    EXPECT_EQ(skylake.caches.l3->size_bytes, 8u * 1024 * 1024);

    const auto &broadwell = machineByShortName("broadwell");
    EXPECT_EQ(broadwell.caches.l3->size_bytes, 30u * 1024 * 1024);

    const auto &harpertown = machineByShortName("harpertown");
    EXPECT_FALSE(harpertown.caches.l3.has_value());
    EXPECT_EQ(harpertown.caches.l2.size_bytes, 6u * 1024 * 1024);
    EXPECT_FALSE(harpertown.tlbs.l2tlb.has_value());

    const auto &sparc_iv = machineByShortName("sparc-iv");
    EXPECT_EQ(sparc_iv.isa, uarch::Isa::Sparc);
    EXPECT_EQ(sparc_iv.caches.l1d.size_bytes, 64u * 1024);
    EXPECT_EQ(sparc_iv.caches.l2.size_bytes, 2u * 1024 * 1024);

    const auto &t4 = machineByShortName("sparc-t4");
    EXPECT_EQ(t4.caches.l1d.size_bytes, 16u * 1024);
    EXPECT_EQ(t4.caches.l3->size_bytes, 4u * 1024 * 1024);

    const auto &opteron = machineByShortName("opteron");
    EXPECT_EQ(opteron.caches.l1d.size_bytes, 64u * 1024);
    EXPECT_EQ(opteron.caches.l2.size_bytes, 512u * 1024);
    EXPECT_EQ(opteron.caches.l3->size_bytes, 6u * 1024 * 1024);
}

TEST(MachinesTest, ThreeIsasRepresented)
{
    int x86 = 0, sparc = 0;
    for (const auto &m : profilingMachines()) {
        if (m.isa == uarch::Isa::X86)
            ++x86;
        else
            ++sparc;
    }
    EXPECT_EQ(x86, 5);
    EXPECT_EQ(sparc, 2);
}

TEST(MachinesTest, SubsetsAndLookup)
{
    EXPECT_EQ(powerMachines().size(), 3u);
    EXPECT_EQ(sensitivityMachines().size(), 4u);
    EXPECT_EQ(skylakeMachine().short_name, "skylake");
    EXPECT_THROW(machineByShortName("pentium"), std::out_of_range);
}

TEST(MachinesTest, AllConfigsConstructSimulatableStructures)
{
    for (const auto &m : profilingMachines()) {
        EXPECT_NO_THROW(uarch::CacheHierarchy{m.caches}) << m.name;
        EXPECT_NO_THROW(uarch::TlbHierarchy{m.tlbs}) << m.name;
        EXPECT_NO_THROW(
            uarch::makePredictor(m.predictor, m.predictor_size_log2))
            << m.name;
    }
}

// ---------------------------------------------------------------------
// Score database
// ---------------------------------------------------------------------

TEST(ScoreDatabaseTest, TraitsSpanTheUnitRange)
{
    WorkloadTraits mcf =
        deriveTraits(spec2017Benchmark("505.mcf_r").profile);
    WorkloadTraits exchange =
        deriveTraits(spec2017Benchmark("548.exchange2_r").profile);
    EXPECT_GT(mcf.memory_intensity, 0.5);
    EXPECT_LT(exchange.memory_intensity, 0.15);

    WorkloadTraits nab =
        deriveTraits(spec2017Benchmark("544.nab_r").profile);
    EXPECT_GT(nab.fp_intensity, 0.5);
    EXPECT_LT(deriveTraits(spec2017Benchmark("505.mcf_r").profile)
                  .fp_intensity,
              0.05);

    WorkloadTraits leela =
        deriveTraits(spec2017Benchmark("541.leela_r").profile);
    EXPECT_GT(leela.branch_limit, 0.3);
}

TEST(ScoreDatabaseTest, SpeedupsDeterministicAndPositive)
{
    ScoreDatabase db;
    const auto &systems = db.systemsFor(Category::SpeedInt);
    ASSERT_EQ(systems.size(), 4u);
    EXPECT_EQ(db.systemsFor(Category::RateFp).size(), 5u);

    const BenchmarkInfo &b = spec2017Benchmark("541.leela_r");
    double s1 = db.speedup(systems[0], b);
    double s2 = db.speedup(systems[0], b);
    EXPECT_DOUBLE_EQ(s1, s2);
    EXPECT_GT(s1, 1.0);
}

TEST(ScoreDatabaseTest, CoreBoundGainsMoreOnCoreSystem)
{
    ScoreDatabase db;
    // sys-A is the high-frequency core-gain system.
    const auto &sys_a = db.systemsFor(Category::SpeedInt)[0];
    double core_bound =
        db.speedup(sys_a, spec2017Benchmark("648.exchange2_s"));
    double memory_bound =
        db.speedup(sys_a, spec2017Benchmark("605.mcf_s"));
    EXPECT_GT(core_bound, memory_bound);
}

TEST(ScoreDatabaseTest, SuiteScoreIsGeomeanOfMembers)
{
    ScoreDatabase db;
    const auto &sys = db.systemsFor(Category::SpeedInt)[1];
    auto suite = spec2017SpeedInt();
    double score = db.suiteScore(sys, suite);
    double log_sum = 0.0;
    for (const BenchmarkInfo &b : suite)
        log_sum += std::log(db.speedup(sys, b));
    EXPECT_NEAR(score, std::exp(log_sum / suite.size()), 1e-9);
}

// ---------------------------------------------------------------------
// Metadata helpers
// ---------------------------------------------------------------------

TEST(BenchmarkInfoTest, EnumNames)
{
    EXPECT_EQ(suiteName(Suite::Cpu2017), "CPU2017");
    EXPECT_EQ(categoryName(Category::SpeedFp), "SPECspeed FP");
    EXPECT_EQ(domainName(Domain::Eda), "EDA");
    EXPECT_EQ(languageName(Language::CCppFortran), "C/C++/Fortran");
}

TEST(BenchmarkInfoTest, CategoryPredicates)
{
    EXPECT_TRUE(isCpu2017Category(Category::RateFp));
    EXPECT_FALSE(isCpu2017Category(Category::Int));
    EXPECT_TRUE(isSpeedCategory(Category::SpeedInt));
    EXPECT_FALSE(isSpeedCategory(Category::RateInt));
    EXPECT_TRUE(isFpCategory(Category::SpeedFp));
    EXPECT_FALSE(isFpCategory(Category::SpeedInt));
}

} // namespace
} // namespace suites
} // namespace speclens
