/**
 * @file
 * Integration tests asserting the paper's headline claims end-to-end,
 * at (near-)bench-scale simulation windows.  These are the slowest
 * tests in the suite; each one corresponds to a row of the
 * EXPERIMENTS.md paper-vs-measured index.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "core/balance.h"
#include "core/characterization.h"
#include "core/input_set_analysis.h"
#include "core/rate_speed.h"
#include "core/sensitivity.h"
#include "core/similarity.h"
#include "core/subsetting.h"
#include "core/validation.h"
#include "suites/emerging.h"
#include "suites/input_sets.h"
#include "suites/machines.h"
#include "suites/score_database.h"
#include "suites/spec2006.h"
#include "suites/spec2017.h"

namespace speclens {
namespace core {
namespace {

/** Shared campaign so the 43 x 7 simulations run once per process. */
class PaperClaims : public ::testing::Test
{
  protected:
    static Characterizer &
    characterizer()
    {
        static Characterizer instance = [] {
            CharacterizationConfig config;
            // Bench-scale windows: the headline numbers in
            // EXPERIMENTS.md are produced at this fidelity.
            config.instructions = 150'000;
            config.warmup = 40'000;
            return Characterizer(suites::profilingMachines(), config);
        }();
        return instance;
    }

    static SimilarityResult
    similarityFor(const std::vector<suites::BenchmarkInfo> &suite)
    {
        return analyzeSimilarity(characterizer().featureMatrix(suite),
                                 suites::benchmarkNames(suite));
    }
};

TEST_F(PaperClaims, TableII_MetricRangesOnSkylake)
{
    // The Skylake envelope of Table II: modest I-cache misses, strong
    // level-by-level data filtering, INT mispredictions above FP.
    auto check = [&](const std::vector<suites::BenchmarkInfo> &suite,
                     bool fp) {
        double max_l1d = 0.0, max_l1i = 0.0, max_l3 = 0.0,
               max_branch = 0.0;
        for (const suites::BenchmarkInfo &b : suite) {
            MetricVector mv = characterizer().metrics(b, 0);
            max_l1d = std::max(max_l1d, mv.get(Metric::L1dMpki));
            max_l1i = std::max(max_l1i, mv.get(Metric::L1iMpki));
            max_l3 = std::max(max_l3, mv.get(Metric::L3Mpki));
            max_branch =
                std::max(max_branch, mv.get(Metric::BranchMpki));
        }
        EXPECT_GT(max_l1d, 25.0);   // real data-cache pressure exists
        EXPECT_LT(max_l1d, 130.0);  // but within the Table II scale
        EXPECT_LT(max_l1i, 20.0);   // no cloud-class I-cache pressure
        EXPECT_LT(max_l3, 12.0);    // strong filtering
        if (fp)
            EXPECT_LT(max_branch, 7.0);
        else
            EXPECT_GT(max_branch, 6.0);
    };
    check(suites::spec2017RateInt(), false);
    check(suites::spec2017RateFp(), true);
}

TEST_F(PaperClaims, Fig1_McfAndOmnetppHaveHighestCpi)
{
    std::vector<suites::BenchmarkInfo> rate = suites::spec2017RateInt();
    for (const suites::BenchmarkInfo &b : suites::spec2017RateFp())
        rate.push_back(b);

    std::vector<std::pair<double, std::string>> by_cpi;
    for (const suites::BenchmarkInfo &b : rate)
        by_cpi.emplace_back(characterizer().simulation(b, 0).cpi(),
                            b.name);
    std::sort(by_cpi.rbegin(), by_cpi.rend());

    // mcf_r and omnetpp_r are among the top-3 CPI rate benchmarks.
    std::vector<std::string> top3{by_cpi[0].second, by_cpi[1].second,
                                  by_cpi[2].second};
    EXPECT_NE(std::find(top3.begin(), top3.end(), "505.mcf_r"),
              top3.end());
    EXPECT_NE(std::find(top3.begin(), top3.end(), "520.omnetpp_r"),
              top3.end());
}

TEST_F(PaperClaims, Fig1_BlenderAndImagickAreDependencyBound)
{
    for (const char *name : {"526.blender_r", "538.imagick_r"}) {
        const auto &sim = characterizer().simulation(
            suites::spec2017Benchmark(name), 0);
        const auto &stack = sim.cpi_stack;
        // Dependencies are the largest single stall component.
        EXPECT_GT(stack.dependency, stack.frontend_branch) << name;
        EXPECT_GT(stack.dependency, stack.backend_memory) << name;
    }
}

TEST_F(PaperClaims, Fig2_McfIsMostDistinctSpeedInt)
{
    SimilarityResult sim = similarityFor(suites::spec2017SpeedInt());
    EXPECT_EQ(sim.labels[sim.mostDistinct()], "605.mcf_s");
    // Kaiser retention covers >= 90% of variance (paper: 91%).
    EXPECT_GE(sim.pca.variance_covered, 0.90);
}

TEST_F(PaperClaims, Fig4_CactuBssnIsMostDistinctRateFp)
{
    SimilarityResult sim = similarityFor(suites::spec2017RateFp());
    EXPECT_EQ(sim.labels[sim.mostDistinct()], "507.cactuBSSN_r");
}

TEST_F(PaperClaims, TableV_SubsetsContainMarqueeMembers)
{
    // Speed INT: mcf in its own cluster; xalancbmk and leela in the
    // clusters of the other two representatives (Fig. 2 shape).
    auto speed_int = suites::spec2017SpeedInt();
    SimilarityResult sim = similarityFor(speed_int);
    SubsetResult subset = selectSubset(
        sim, 3, RepresentativeRule::ShortestLinkage, speed_int);
    EXPECT_NE(std::find(subset.representatives.begin(),
                        subset.representatives.end(), "605.mcf_s"),
              subset.representatives.end());
    EXPECT_GT(subset.simulation_time_reduction, 2.0);

    // Rate FP: cactuBSSN must be selected (most distinct).
    auto rate_fp = suites::spec2017RateFp();
    SubsetResult fp_subset =
        selectSubset(similarityFor(rate_fp), 3,
                     RepresentativeRule::ShortestLinkage, rate_fp);
    EXPECT_NE(std::find(fp_subset.representatives.begin(),
                        fp_subset.representatives.end(),
                        "507.cactuBSSN_r"),
              fp_subset.representatives.end());
}

TEST_F(PaperClaims, TableVI_SubsetsPredictSuiteScores)
{
    // The >= 93%-accuracy claim (IV-B) and the random-subset contrast.
    suites::ScoreDatabase db;
    struct Case
    {
        std::vector<suites::BenchmarkInfo> suite;
        suites::Category category;
    };
    std::vector<Case> cases = {
        {suites::spec2017SpeedInt(), suites::Category::SpeedInt},
        {suites::spec2017RateInt(), suites::Category::RateInt},
        {suites::spec2017SpeedFp(), suites::Category::SpeedFp},
        {suites::spec2017RateFp(), suites::Category::RateFp},
    };

    double identified_total = 0.0, random_total = 0.0;
    for (const Case &c : cases) {
        SubsetResult subset = selectSubset(
            similarityFor(c.suite), 3,
            RepresentativeRule::ShortestLinkage, c.suite);
        double identified =
            validateSubset(c.suite, subset.representatives, c.category,
                           db)
                .avg_error_pct;
        // The paper's own identified errors reach 11%; small
        // simulation windows add a little noise on top.
        EXPECT_LT(identified, 15.0)
            << suites::categoryName(c.category);
        identified_total += identified;
        random_total += averageRandomSubsetError(c.suite, 3, c.category,
                                                 db, 30, 7);
    }
    // Identified subsets beat the random-subset mean overall.
    EXPECT_LT(identified_total, random_total);
    // ~93% accuracy on average (paper: >= 93%).
    EXPECT_LT(identified_total / 4.0, 8.5);
}

TEST_F(PaperClaims, Fig7_InputSetsClusterTightly)
{
    InputSetAnalysis analysis = analyzeInputSets(
        characterizer(), suites::inputSetGroupsInt());
    EXPECT_LT(analysis.max_within_group_spread,
              analysis.median_cross_benchmark_distance);
    EXPECT_EQ(analysis.representatives.size(), 8u);
}

TEST_F(PaperClaims, SectionIVD_ImagickAndBwavesDifferMostInFp)
{
    RateSpeedAnalysis analysis =
        analyzeRateSpeed(characterizer(), /*fp=*/true);
    ASSERT_GE(analysis.pairs.size(), 3u);
    // imagick and bwaves are among the three most-different FP pairs
    // (the paper names them the most notable examples), the largest
    // pair clearly exceeds the median, and similar pairs exist
    // (nab / wrf / cactuBSSN land in the bottom half).
    std::vector<std::string> top3{analysis.pairs[0].rate,
                                  analysis.pairs[1].rate,
                                  analysis.pairs[2].rate};
    EXPECT_NE(std::find(top3.begin(), top3.end(), "538.imagick_r"),
              top3.end());
    EXPECT_NE(std::find(top3.begin(), top3.end(), "503.bwaves_r"),
              top3.end());
    EXPECT_GT(analysis.pairs[0].pc_distance,
              1.4 * analysis.median_distance);
    EXPECT_LT(analysis.pairs.back().pc_distance,
              analysis.median_distance);
    bool nab_similar = false;
    for (std::size_t i = analysis.pairs.size() / 2;
         i < analysis.pairs.size(); ++i) {
        if (analysis.pairs[i].rate == "544.nab_r")
            nab_similar = true;
    }
    EXPECT_TRUE(nab_similar);
}

TEST_F(PaperClaims, Fig9_LeelaAndMcfHaveWorstBranchBehaviour)
{
    // The paper's claim is about misprediction *rates* (fraction of
    // branches mispredicted), not MPKI: leela and mcf (both versions)
    // suffer the highest rates in the suite.
    const auto &suite = suites::spec2017();
    std::vector<std::pair<double, std::string>> by_rate;
    for (const suites::BenchmarkInfo &b : suite) {
        MetricVector mv = characterizer().metrics(b, 0);
        double rate = mv.get(Metric::BranchMpki) /
                      (10.0 * mv.get(Metric::PctBranch));
        by_rate.emplace_back(rate, b.name);
    }
    std::sort(by_rate.rbegin(), by_rate.rend());
    // All four leela/mcf versions among the worst eight rates (the
    // company being xz and deepsjeng, which Table IX also lists as
    // uniformly poor).
    std::vector<std::string> top(8);
    for (int i = 0; i < 8; ++i)
        top[static_cast<std::size_t>(i)] = by_rate[i].second;
    for (const char *name : {"541.leela_r", "641.leela_s", "505.mcf_r",
                             "605.mcf_s"}) {
        EXPECT_NE(std::find(top.begin(), top.end(), name), top.end())
            << name;
    }
}

TEST_F(PaperClaims, Fig10_WorstDataLocalityBenchmarks)
{
    const auto &suite = suites::spec2017();
    std::vector<std::pair<double, std::string>> by_l1d;
    for (const suites::BenchmarkInfo &b : suite)
        by_l1d.emplace_back(
            characterizer().metrics(b, 0).get(Metric::L1dMpki),
            b.name);
    std::sort(by_l1d.rbegin(), by_l1d.rend());
    // mcf / cactuBSSN / fotonik3d dominate the high-L1D end (paper:
    // exactly these six).
    std::vector<std::string> top(8);
    for (int i = 0; i < 8; ++i)
        top[static_cast<std::size_t>(i)] = by_l1d[i].second;
    for (const char *name :
         {"507.cactuBSSN_r", "607.cactuBSSN_s", "549.fotonik3d_r",
          "649.fotonik3d_s"}) {
        EXPECT_NE(std::find(top.begin(), top.end(), name), top.end())
            << name;
    }
}

TEST_F(PaperClaims, SectionVB_OnlyThreeRemovedBenchmarksUncovered)
{
    auto verdicts =
        coverageAnalysis(characterizer(), suites::spec2017(),
                         suites::spec2006RemovedBenchmarks());
    std::vector<std::string> uncovered;
    for (const CoverageVerdict &v : verdicts)
        if (!v.covered)
            uncovered.push_back(v.benchmark);
    EXPECT_EQ(uncovered,
              (std::vector<std::string>{"429.mcf", "445.gobmk",
                                        "473.astar"}));
}

TEST_F(PaperClaims, SectionVA_Cpu2006McfExertsCachesHardest)
{
    // 429.mcf stresses the data caches more than the CPU2017 mcf
    // versions (Section V-A).
    double mcf06 = 0.0, mcf17 = 0.0;
    mcf06 = characterizer()
                .metrics(suites::spec2006Benchmark("429.mcf"), 0)
                .get(Metric::L1dMpki);
    mcf17 = characterizer()
                .metrics(suites::spec2017Benchmark("505.mcf_r"), 0)
                .get(Metric::L1dMpki);
    EXPECT_GT(mcf06, mcf17);
}

TEST_F(PaperClaims, Fig11_Cpu2017ExpandsPc34Coverage)
{
    SimilarityConfig config;
    config.retention = stats::RetentionPolicy::fixedCount(4);
    SuiteComparison cmp =
        compareSuites(characterizer(), suites::spec2017(),
                      suites::spec2006(),
                      MetricSelection::Canonical, {}, config);
    // > 25% of CPU2017 outside the CPU2006 PC1-PC2 region.
    EXPECT_GT(cmp.pc12.a_outside_b, 0.20);
    // PC3-PC4 coverage roughly doubles.
    EXPECT_GT(cmp.pc34.area_ratio, 1.5);
}

TEST_F(PaperClaims, Fig12_Cpu2017ExceedsCpu2006PowerEnvelope)
{
    SimilarityConfig config;
    config.retention = stats::RetentionPolicy::fixedCount(2);
    SuiteComparison cmp = compareSuites(
        characterizer(), suites::spec2017(), suites::spec2006(),
        MetricSelection::Power, {0, 1, 2}, config);
    EXPECT_GT(cmp.pc12.area_ratio, 1.0);
    EXPECT_GT(cmp.pc12.a_outside_b, 0.2);
}

TEST_F(PaperClaims, Fig13_EmergingWorkloadVerdicts)
{
    auto verdicts =
        coverageAnalysis(characterizer(), suites::spec2017(),
                         suites::emergingBenchmarks());
    for (const CoverageVerdict &v : verdicts) {
        bool should_be_covered =
            v.benchmark == "175.vpr" || v.benchmark == "300.twolf" ||
            v.benchmark.rfind("cc-", 0) == 0;
        EXPECT_EQ(v.covered, should_be_covered) << v.benchmark;
    }
    // EDA sits near mcf; CC near leela/deepsjeng/xz.
    for (const CoverageVerdict &v : verdicts) {
        if (v.benchmark.rfind("cc-", 0) == 0) {
            EXPECT_TRUE(v.nearest.find("leela") != std::string::npos ||
                        v.nearest.find("deepsjeng") !=
                            std::string::npos ||
                        v.nearest.find("xz") != std::string::npos)
                << v.nearest;
        }
        if (v.benchmark == "175.vpr") {
            EXPECT_NE(v.nearest.find("mcf"), std::string::npos);
        }
    }
}

TEST_F(PaperClaims, TableIX_SensitivityShapes)
{
    CharacterizationConfig config;
    config.instructions = 60'000;
    config.warmup = 15'000;
    Characterizer sensitivity_runs(suites::sensitivityMachines(),
                                   config);
    const auto &suite = suites::spec2017();

    // Branch sensitivity: at least one bwaves version High or Medium;
    // mcf_s low (uniformly bad).
    SensitivityReport branch = classifySensitivity(
        sensitivity_runs, suite, Metric::BranchMpki);
    auto class_of = [](const SensitivityReport &report,
                       const std::string &name) {
        for (const SensitivityEntry &e : report.entries)
            if (e.benchmark == name)
                return e.cls;
        return SensitivityClass::Low;
    };
    EXPECT_NE(class_of(branch, "503.bwaves_r"), SensitivityClass::Low);
    // mcf is uniformly bad across machines, so it must not rank as
    // highly sensitive (paper: Low).
    EXPECT_NE(class_of(branch, "605.mcf_s"), SensitivityClass::High);

    // L1D sensitivity: fotonik3d_r not Low.
    SensitivityReport l1d =
        classifySensitivity(sensitivity_runs, suite, Metric::L1dMpki);
    EXPECT_NE(class_of(l1d, "549.fotonik3d_r"), SensitivityClass::Low);

    // D-TLB sensitivity: fotonik3d_s not Low.
    SensitivityReport dtlb = classifySensitivity(
        sensitivity_runs, suite, Metric::DtlbMpmi);
    EXPECT_NE(class_of(dtlb, "649.fotonik3d_s"),
              SensitivityClass::Low);
}

} // namespace
} // namespace core
} // namespace speclens
