/**
 * @file
 * Streaming-vs-materialized parity contract.
 *
 * The fused pipeline streams records through the structure models in
 * SoA batches and collapses same-line/same-page runs; the materialized
 * baseline builds the whole window as a std::vector<Instruction> and
 * replays it per record.  Both must produce bit-identical
 * SimulationResults — every counter equal, every derived double equal
 * by bit pattern — for EVERY shipped workload on EVERY shipped
 * machine.  A single differing bit here means a run-collapsing or
 * cold-fill shortcut changed observable state, not just speed.
 */

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "suites/emerging.h"
#include "suites/machines.h"
#include "suites/spec2006.h"
#include "suites/spec2017.h"
#include "uarch/simulation.h"

using namespace speclens;

namespace {

/** Tiny window so the full cross product stays fast. */
uarch::SimulationConfig
tinyWindow()
{
    uarch::SimulationConfig config;
    config.instructions = 2'000;
    config.warmup = 500;
    return config;
}

void
expectParity(const suites::BenchmarkInfo &benchmark,
             const uarch::MachineConfig &machine,
             const uarch::SimulationConfig &config)
{
    uarch::SimulationResult fused =
        uarch::simulate(benchmark.profile, machine, config);
    uarch::SimulationResult materialized =
        uarch::simulateMaterialized(benchmark.profile, machine, config);
    EXPECT_TRUE(uarch::bitIdentical(fused, materialized))
        << benchmark.name << " on " << machine.name;
}

void
expectSuiteParity(const std::vector<suites::BenchmarkInfo> &benchmarks)
{
    uarch::SimulationConfig config = tinyWindow();
    for (const suites::BenchmarkInfo &b : benchmarks)
        for (const uarch::MachineConfig &machine :
             suites::profilingMachines())
            expectParity(b, machine, config);
}

TEST(StreamingParity, Cpu2017AllMachines)
{
    expectSuiteParity(suites::spec2017());
}

TEST(StreamingParity, Cpu2006AllMachines)
{
    expectSuiteParity(suites::spec2006());
}

TEST(StreamingParity, EmergingAllMachines)
{
    expectSuiteParity(suites::emergingBenchmarks());
}

// The tiny window above exercises the batch boundary only a few times;
// one full-size pair per special machine shape (TreePLRU L1s, the
// L3-less machine) catches anything that only shows up once runs span
// many batches.
TEST(StreamingParity, FullWindowSpotChecks)
{
    uarch::SimulationConfig config; // default window, prewarm on
    const std::vector<uarch::MachineConfig> &machines =
        suites::profilingMachines();
    const suites::BenchmarkInfo &mcf =
        suites::spec2017Benchmark("605.mcf_s");
    for (const uarch::MachineConfig &machine : machines)
        expectParity(mcf, machine, config);
}

// The memory-centric machine variants light up every prefetcher
// engine plus the way predictors and the DRAM model; the
// run-collapsing fast paths must stay exact with all of them live.
// Between them the four variants cover each PrefetcherKind (including
// off) on every shipped workload.
TEST(StreamingParity, MemoryCentricAllEnginesAllWorkloads)
{
    uarch::SimulationConfig config = tinyWindow();
    for (const suites::BenchmarkInfo &b : suites::spec2017())
        for (const uarch::MachineConfig &machine :
             suites::memoryCentricMachines())
            expectParity(b, machine, config);
}

// One full-size window per engine so prefetch trains that only form
// over long streams cross many batch boundaries.
TEST(StreamingParity, MemoryCentricFullWindowSpotChecks)
{
    uarch::SimulationConfig config; // default window, prewarm on
    const suites::BenchmarkInfo &lbm =
        suites::spec2017Benchmark("519.lbm_r");
    for (const uarch::MachineConfig &machine :
         suites::memoryCentricMachines())
        expectParity(lbm, machine, config);
}

// Seed salt and disabled prewarm feed different streams through the
// same collapsing logic; parity must not depend on either.
TEST(StreamingParity, SaltedAndUnwarmedWindows)
{
    const suites::BenchmarkInfo &xz = suites::spec2017Benchmark("657.xz_s");
    const uarch::MachineConfig &machine = suites::profilingMachines()[0];

    uarch::SimulationConfig salted = tinyWindow();
    salted.seed_salt = 0xfeed;
    expectParity(xz, machine, salted);

    uarch::SimulationConfig unwarmed = tinyWindow();
    unwarmed.prewarm = false;
    expectParity(xz, machine, unwarmed);
}

} // namespace
