/**
 * @file
 * Unit tests for the TLB hierarchy.
 */

#include <gtest/gtest.h>

#include "uarch/tlb.h"

namespace speclens {
namespace uarch {
namespace {

TEST(TlbConfigTest, AsCacheConfig)
{
    TlbConfig config{"DTLB", 64, 4, 4096};
    CacheConfig cache = config.asCacheConfig();
    EXPECT_EQ(cache.size_bytes, 64u * 4096u);
    EXPECT_EQ(cache.associativity, 4u);
    EXPECT_EQ(cache.line_bytes, 4096u);
    EXPECT_EQ(cache.sets(), 16u);
}

TEST(TlbHierarchyTest, FirstTouchWalksThenHits)
{
    TlbHierarchy tlbs{TlbHierarchyConfig{}};
    TlbAccessResult first = tlbs.accessData(0x1000);
    EXPECT_FALSE(first.l1_hit);
    EXPECT_TRUE(first.page_walk);
    TlbAccessResult second = tlbs.accessData(0x1000);
    EXPECT_TRUE(second.l1_hit);
    EXPECT_EQ(tlbs.pageWalks(), 1u);
    EXPECT_EQ(tlbs.dtlbAccesses(), 2u);
    EXPECT_EQ(tlbs.dtlbMisses(), 1u);
}

TEST(TlbHierarchyTest, SamePageDifferentOffsetsHit)
{
    TlbHierarchy tlbs{TlbHierarchyConfig{}};
    tlbs.accessData(0x4000);
    EXPECT_TRUE(tlbs.accessData(0x4abc).l1_hit);
    EXPECT_TRUE(tlbs.accessData(0x4fff).l1_hit);
}

TEST(TlbHierarchyTest, InstrAndDataSidesIndependent)
{
    TlbHierarchy tlbs{TlbHierarchyConfig{}};
    tlbs.accessInstr(0x8000);
    // Same page via the data side must miss the D-TLB...
    TlbAccessResult result = tlbs.accessData(0x8000);
    EXPECT_FALSE(result.l1_hit);
    // ...but hit the shared second level, avoiding a walk.
    EXPECT_TRUE(result.l2_hit);
    EXPECT_FALSE(result.page_walk);
    EXPECT_EQ(tlbs.pageWalks(), 1u);
}

TEST(TlbHierarchyTest, EvictedL1EntryCaughtByL2)
{
    TlbHierarchyConfig config;
    config.dtlb = TlbConfig{"DTLB", 4, 4, 4096}; // tiny L1 TLB
    config.l2tlb = TlbConfig{"STLB", 64, 4, 4096};
    TlbHierarchy tlbs(config);
    // Touch 16 pages: L1 TLB holds only 4.
    for (std::uint64_t p = 0; p < 16; ++p)
        tlbs.accessData(p * 4096);
    std::uint64_t walks_after_warmup = tlbs.pageWalks();
    EXPECT_EQ(walks_after_warmup, 16u);
    for (std::uint64_t p = 0; p < 16; ++p) {
        TlbAccessResult result = tlbs.accessData(p * 4096);
        EXPECT_TRUE(result.l1_hit || result.l2_hit);
    }
    EXPECT_EQ(tlbs.pageWalks(), walks_after_warmup);
}

TEST(TlbHierarchyTest, NoSecondLevelMeansEveryL1MissWalks)
{
    TlbHierarchyConfig config;
    config.dtlb = TlbConfig{"DTLB", 4, 4, 4096};
    config.l2tlb.reset();
    TlbHierarchy tlbs(config);
    for (std::uint64_t p = 0; p < 8; ++p)
        tlbs.accessData(p * 4096);
    // 8 cold walks; revisiting the early pages walks again (evicted,
    // no second level to catch them).
    std::uint64_t cold_walks = tlbs.pageWalks();
    EXPECT_EQ(cold_walks, 8u);
    tlbs.accessData(0);
    EXPECT_EQ(tlbs.pageWalks(), cold_walks + 1);
    EXPECT_EQ(tlbs.l2tlbMisses(), tlbs.pageWalks());
}

TEST(TlbHierarchyTest, LargerPagesCoverMoreAddressSpace)
{
    // SPARC machines use 8 KiB pages: the same footprint needs half
    // the entries.
    TlbHierarchyConfig small_pages;
    small_pages.dtlb = TlbConfig{"DTLB", 8, 8, 4096};
    small_pages.l2tlb.reset();
    TlbHierarchyConfig big_pages;
    big_pages.dtlb = TlbConfig{"DTLB", 8, 8, 8192};
    big_pages.l2tlb.reset();

    TlbHierarchy tlb4k(small_pages), tlb8k(big_pages);
    stats::Rng rng(3);
    for (int i = 0; i < 20000; ++i) {
        std::uint64_t addr = rng.below(16) * 4096; // 64 KiB footprint
        tlb4k.accessData(addr);
        tlb8k.accessData(addr);
    }
    EXPECT_LT(tlb8k.dtlbMisses(), tlb4k.dtlbMisses());
}

TEST(TlbHierarchyTest, ResetClearsState)
{
    TlbHierarchy tlbs{TlbHierarchyConfig{}};
    tlbs.accessData(0x1000);
    tlbs.reset();
    EXPECT_EQ(tlbs.dtlbAccesses(), 0u);
    EXPECT_EQ(tlbs.pageWalks(), 0u);
    EXPECT_TRUE(tlbs.accessData(0x1000).page_walk);
}

} // namespace
} // namespace uarch
} // namespace speclens
