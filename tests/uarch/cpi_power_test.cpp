/**
 * @file
 * Unit tests for the CPI-stack and power models.
 */

#include <gtest/gtest.h>

#include "uarch/cpi_model.h"
#include "uarch/power_model.h"

namespace speclens {
namespace uarch {
namespace {

PerfCounters
baseCounters()
{
    PerfCounters c;
    c.instructions = 1'000'000;
    c.loads = 250'000;
    c.stores = 100'000;
    c.branches = 120'000;
    c.taken_branches = 70'000;
    c.l1d_accesses = 350'000;
    c.l1i_accesses = 1'000'000;
    return c;
}

trace::ExecutionModel
execModel()
{
    trace::ExecutionModel exec;
    exec.base_cpi = 0.30;
    exec.dependency_cpi = 0.05;
    exec.mlp = 2.0;
    return exec;
}

TEST(CpiStackTest, ComponentsSumToTotal)
{
    PerfCounters c = baseCounters();
    c.l1d_misses = 20'000;
    c.l2d_misses = 5'000;
    c.l3_accesses = 5'000;
    c.l3_misses = 1'000;
    c.l1i_misses = 2'000;
    c.branch_mispredictions = 8'000;
    c.dtlb_misses = 3'000;
    c.l2tlb_misses = 500;
    c.page_walks = 500;

    CpiStack stack = computeCpiStack(c, LatencyModel{}, execModel());
    double component_sum = 0.0;
    for (double v : stack.components())
        component_sum += v;
    EXPECT_NEAR(stack.total(), component_sum, 1e-12);
    EXPECT_EQ(CpiStack::componentNames().size(),
              stack.components().size());
}

TEST(CpiStackTest, PerfectCoreOnlyBaseAndDependency)
{
    CpiStack stack =
        computeCpiStack(baseCounters(), LatencyModel{}, execModel());
    EXPECT_DOUBLE_EQ(stack.total(), 0.35);
    EXPECT_DOUBLE_EQ(stack.backend_memory, 0.0);
    EXPECT_DOUBLE_EQ(stack.frontend_branch, 0.0);
}

TEST(CpiStackTest, BranchMispredictionsRaiseFrontend)
{
    PerfCounters c = baseCounters();
    c.branch_mispredictions = 10'000;
    LatencyModel lat;
    CpiStack stack = computeCpiStack(c, lat, execModel());
    EXPECT_NEAR(stack.frontend_branch,
                0.01 * lat.mispredict_penalty, 1e-12);
}

TEST(CpiStackTest, MlpDividesBackendStalls)
{
    PerfCounters c = baseCounters();
    c.l1d_misses = 50'000;
    trace::ExecutionModel low_mlp = execModel();
    low_mlp.mlp = 1.0;
    trace::ExecutionModel high_mlp = execModel();
    high_mlp.mlp = 4.0;
    CpiStack serial = computeCpiStack(c, LatencyModel{}, low_mlp);
    CpiStack overlapped = computeCpiStack(c, LatencyModel{}, high_mlp);
    EXPECT_NEAR(serial.backend_l2, 4.0 * overlapped.backend_l2, 1e-12);
}

TEST(CpiStackTest, DeeperMissesCostMore)
{
    LatencyModel lat;
    trace::ExecutionModel exec = execModel();

    PerfCounters l2_bound = baseCounters();
    l2_bound.l1d_misses = 30'000; // all served by L2

    PerfCounters mem_bound = baseCounters();
    mem_bound.l1d_misses = 30'000;
    mem_bound.l2d_misses = 30'000;
    mem_bound.l3_accesses = 30'000;
    mem_bound.l3_misses = 30'000; // all to DRAM

    EXPECT_GT(computeCpiStack(mem_bound, lat, exec).total(),
              computeCpiStack(l2_bound, lat, exec).total());
}

TEST(CpiStackTest, FrontendBackendFractions)
{
    PerfCounters c = baseCounters();
    c.branch_mispredictions = 5'000;
    c.l1d_misses = 20'000;
    CpiStack stack = computeCpiStack(c, LatencyModel{}, execModel());
    EXPECT_GT(stack.frontendFraction(), 0.0);
    EXPECT_GT(stack.backendFraction(), 0.0);
    EXPECT_LE(stack.frontendFraction() + stack.backendFraction(), 1.0);
}

TEST(CpiStackTest, ZeroInstructionsYieldsEmptyStack)
{
    CpiStack stack =
        computeCpiStack(PerfCounters{}, LatencyModel{}, execModel());
    EXPECT_DOUBLE_EQ(stack.total(), 0.0);
}

// ---------------------------------------------------------------------
// Power model
// ---------------------------------------------------------------------

TEST(PowerModelTest, StaticFloorWithoutActivity)
{
    PowerModelConfig config;
    PowerBreakdown power = computePower(PerfCounters{}, 1.0, config);
    EXPECT_DOUBLE_EQ(power.core_watts, config.core_static_watts);
    EXPECT_DOUBLE_EQ(power.llc_watts, config.llc_static_watts);
    EXPECT_DOUBLE_EQ(power.dram_watts, config.dram_static_watts);
}

TEST(PowerModelTest, HigherIpcMeansHigherCorePower)
{
    PerfCounters c = baseCounters();
    PowerModelConfig config;
    PowerBreakdown fast = computePower(c, 0.4, config);
    PowerBreakdown slow = computePower(c, 1.6, config);
    EXPECT_GT(fast.core_watts, slow.core_watts);
}

TEST(PowerModelTest, FpAndSimdRaiseCorePower)
{
    PerfCounters scalar = baseCounters();
    PerfCounters vectorised = baseCounters();
    vectorised.fp_ops = 200'000;
    vectorised.simd_ops = 100'000;
    PowerModelConfig config;
    EXPECT_GT(computePower(vectorised, 0.5, config).core_watts,
              computePower(scalar, 0.5, config).core_watts);
}

TEST(PowerModelTest, MemoryTrafficRaisesLlcAndDramPower)
{
    PerfCounters quiet = baseCounters();
    PerfCounters memory_bound = baseCounters();
    memory_bound.l3_accesses = 50'000;
    memory_bound.l3_misses = 30'000;
    PowerModelConfig config;
    PowerBreakdown quiet_power = computePower(quiet, 1.0, config);
    PowerBreakdown loud_power = computePower(memory_bound, 1.0, config);
    EXPECT_GT(loud_power.llc_watts, quiet_power.llc_watts);
    EXPECT_GT(loud_power.dram_watts, quiet_power.dram_watts);
    EXPECT_GT(loud_power.total(), quiet_power.total());
}

TEST(PerfCountersTest, DerivedRates)
{
    PerfCounters c = baseCounters();
    c.l1d_misses = 5'000;
    c.dtlb_misses = 700;
    EXPECT_DOUBLE_EQ(c.l1dMpki(), 5.0);
    EXPECT_DOUBLE_EQ(c.dtlbMpmi(), 700.0);
    EXPECT_DOUBLE_EQ(c.loadFraction(), 0.25);
    PerfCounters empty;
    EXPECT_DOUBLE_EQ(empty.l1dMpki(), 0.0);
}

TEST(PerfCountersTest, Accumulation)
{
    PerfCounters a = baseCounters();
    PerfCounters b = baseCounters();
    a += b;
    EXPECT_EQ(a.instructions, 2'000'000u);
    EXPECT_EQ(a.loads, 500'000u);
}

} // namespace
} // namespace uarch
} // namespace speclens
