/**
 * @file
 * Unit tests for the branch predictor suite.
 */

#include <gtest/gtest.h>

#include <memory>

#include "stats/rng.h"
#include "uarch/branch_predictor.h"

namespace speclens {
namespace uarch {
namespace {

/** Misprediction rate of @p predictor on a generated stream. */
template <typename NextOutcome>
double
mispredictionRate(BranchPredictor &predictor, NextOutcome next, int n)
{
    int mispredictions = 0;
    for (int i = 0; i < n; ++i) {
        auto [id, taken] = next(i);
        bool predicted = predictor.predict(0, id);
        if (predicted != taken)
            ++mispredictions;
        predictor.update(0, id, taken);
    }
    return static_cast<double>(mispredictions) / n;
}

std::vector<PredictorKind>
allKinds()
{
    return {PredictorKind::StaticTaken, PredictorKind::Bimodal,
            PredictorKind::Gshare,      PredictorKind::Tournament,
            PredictorKind::Perceptron,  PredictorKind::TageLite};
}

class PredictorKindTest : public ::testing::TestWithParam<PredictorKind>
{
  protected:
    std::unique_ptr<BranchPredictor> predictor_ =
        makePredictor(GetParam(), 12);
};

TEST_P(PredictorKindTest, LearnsAlwaysTaken)
{
    double rate = mispredictionRate(
        *predictor_,
        [](int) { return std::pair<std::uint32_t, bool>{7, true}; },
        20000);
    EXPECT_LT(rate, 0.01) << predictorKindName(GetParam());
}

TEST_P(PredictorKindTest, LearnsAlwaysNotTakenExceptStatic)
{
    double rate = mispredictionRate(
        *predictor_,
        [](int) { return std::pair<std::uint32_t, bool>{9, false}; },
        20000);
    if (GetParam() == PredictorKind::StaticTaken)
        EXPECT_DOUBLE_EQ(rate, 1.0);
    else
        EXPECT_LT(rate, 0.01) << predictorKindName(GetParam());
}

TEST_P(PredictorKindTest, RandomStreamIsHalfWrong)
{
    stats::Rng rng(5);
    double rate = mispredictionRate(
        *predictor_,
        [&rng](int) {
            return std::pair<std::uint32_t, bool>{3, rng.bernoulli(0.5)};
        },
        40000);
    EXPECT_NEAR(rate, 0.5, 0.05) << predictorKindName(GetParam());
}

TEST_P(PredictorKindTest, SeparatesManyBiasedBranches)
{
    // 64 branches, even ids taken, odd ids not taken.
    if (GetParam() == PredictorKind::StaticTaken)
        GTEST_SKIP();
    double rate = mispredictionRate(
        *predictor_,
        [](int i) {
            std::uint32_t id = static_cast<std::uint32_t>(i) % 64;
            return std::pair<std::uint32_t, bool>{id, id % 2 == 0};
        },
        60000);
    EXPECT_LT(rate, 0.05) << predictorKindName(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllPredictors, PredictorKindTest,
                         ::testing::ValuesIn(allKinds()),
                         [](const auto &info) {
                             std::string name =
                                 predictorKindName(info.param);
                             for (char &c : name)
                                 if (c == '-')
                                     c = '_';
                             return name;
                         });

TEST(PredictorHistoryTest, HistoryPredictorsLearnAlternation)
{
    // A strict T/N alternation defeats bimodal (it saturates mid-way)
    // but is trivial for any history-based design.
    auto alternating = [](int i) {
        return std::pair<std::uint32_t, bool>{1, i % 2 == 0};
    };
    for (PredictorKind kind :
         {PredictorKind::Gshare, PredictorKind::Tournament,
          PredictorKind::Perceptron, PredictorKind::TageLite}) {
        auto predictor = makePredictor(kind, 12);
        double rate = mispredictionRate(*predictor, alternating, 20000);
        EXPECT_LT(rate, 0.02) << predictorKindName(kind);
    }
    auto bimodal = makePredictor(PredictorKind::Bimodal, 12);
    double bimodal_rate = mispredictionRate(*bimodal, alternating, 20000);
    EXPECT_GT(bimodal_rate, 0.4);
}

TEST(PredictorHistoryTest, PatternOfPeriodFour)
{
    // T T N T repeating: bimodal settles on "taken" (75% right at
    // best); history predictors should capture the pattern.
    auto pattern = [](int i) {
        static const bool p[4] = {true, true, false, true};
        return std::pair<std::uint32_t, bool>{2, p[i % 4]};
    };
    auto bimodal = makePredictor(PredictorKind::Bimodal, 12);
    auto tage = makePredictor(PredictorKind::TageLite, 12);
    auto gshare = makePredictor(PredictorKind::Gshare, 12);
    double bimodal_rate = mispredictionRate(*bimodal, pattern, 30000);
    double tage_rate = mispredictionRate(*tage, pattern, 30000);
    double gshare_rate = mispredictionRate(*gshare, pattern, 30000);
    EXPECT_GT(bimodal_rate, 0.15);
    EXPECT_LT(tage_rate, 0.05);
    EXPECT_LT(gshare_rate, 0.05);
}

/**
 * The playback loop dispatches through PredictorVariant instead of the
 * virtual interface; both factories must build behaviourally identical
 * predictors.  Drive a mixed stream of biased, alternating and random
 * branches through both paths in lock-step and require the prediction
 * to agree at every single step.
 */
TEST(PredictorDispatchTest, VariantMatchesVirtualInterfaceStepByStep)
{
    for (PredictorKind kind : allKinds()) {
        auto virt = makePredictor(kind, 12);
        PredictorVariant variant = makePredictorVariant(kind, 12);
        std::visit(
            [&](auto &concrete) {
                stats::Rng rng(17);
                for (int i = 0; i < 20000; ++i) {
                    std::uint64_t pc =
                        0x400000 + (static_cast<std::uint64_t>(i) % 777)
                        * 4;
                    std::uint32_t id =
                        static_cast<std::uint32_t>(i) % 97;
                    // Mix of strongly biased, alternating and noisy
                    // branches keeps every component table exercised.
                    bool taken = id % 3 == 0   ? true
                                 : id % 3 == 1 ? i % 2 == 0
                                               : rng.bernoulli(0.5);
                    bool virtual_prediction = virt->predict(pc, id);
                    bool direct_prediction = concrete.predict(pc, id);
                    ASSERT_EQ(virtual_prediction, direct_prediction)
                        << predictorKindName(kind) << " step " << i;
                    virt->update(pc, id, taken);
                    concrete.update(pc, id, taken);
                }
            },
            variant);
    }
}

TEST(PredictorDispatchTest, VariantReportsSameName)
{
    for (PredictorKind kind : allKinds()) {
        PredictorVariant variant = makePredictorVariant(kind, 10);
        std::string name = std::visit(
            [](const auto &concrete) { return concrete.name(); },
            variant);
        EXPECT_EQ(name, predictorKindName(kind));
    }
}

TEST(PredictorFactoryTest, NamesAndCreation)
{
    for (PredictorKind kind : allKinds()) {
        auto predictor = makePredictor(kind, 10);
        ASSERT_NE(predictor, nullptr);
        EXPECT_EQ(predictor->name(), predictorKindName(kind));
    }
}

TEST(PredictorFactoryTest, KindNames)
{
    EXPECT_EQ(predictorKindName(PredictorKind::TageLite), "tage-lite");
    EXPECT_EQ(predictorKindName(PredictorKind::Bimodal), "bimodal");
}

} // namespace
} // namespace uarch
} // namespace speclens
