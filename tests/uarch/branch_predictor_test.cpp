/**
 * @file
 * Unit tests for the branch predictor suite.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <tuple>
#include <type_traits>
#include <vector>

#include "stats/rng.h"
#include "uarch/branch_predictor.h"

namespace speclens {
namespace uarch {
namespace {

/** Misprediction rate of @p predictor on a generated stream. */
template <typename NextOutcome>
double
mispredictionRate(BranchPredictor &predictor, NextOutcome next, int n)
{
    int mispredictions = 0;
    for (int i = 0; i < n; ++i) {
        auto [id, taken] = next(i);
        bool predicted = predictor.predict(0, id);
        if (predicted != taken)
            ++mispredictions;
        predictor.update(0, id, taken);
    }
    return static_cast<double>(mispredictions) / n;
}

std::vector<PredictorKind>
allKinds()
{
    return {PredictorKind::StaticTaken, PredictorKind::Bimodal,
            PredictorKind::Gshare,      PredictorKind::Tournament,
            PredictorKind::Perceptron,  PredictorKind::TageLite};
}

class PredictorKindTest : public ::testing::TestWithParam<PredictorKind>
{
  protected:
    std::unique_ptr<BranchPredictor> predictor_ =
        makePredictor(GetParam(), 12);
};

TEST_P(PredictorKindTest, LearnsAlwaysTaken)
{
    double rate = mispredictionRate(
        *predictor_,
        [](int) { return std::pair<std::uint32_t, bool>{7, true}; },
        20000);
    EXPECT_LT(rate, 0.01) << predictorKindName(GetParam());
}

TEST_P(PredictorKindTest, LearnsAlwaysNotTakenExceptStatic)
{
    double rate = mispredictionRate(
        *predictor_,
        [](int) { return std::pair<std::uint32_t, bool>{9, false}; },
        20000);
    if (GetParam() == PredictorKind::StaticTaken)
        EXPECT_DOUBLE_EQ(rate, 1.0);
    else
        EXPECT_LT(rate, 0.01) << predictorKindName(GetParam());
}

TEST_P(PredictorKindTest, RandomStreamIsHalfWrong)
{
    stats::Rng rng(5);
    double rate = mispredictionRate(
        *predictor_,
        [&rng](int) {
            return std::pair<std::uint32_t, bool>{3, rng.bernoulli(0.5)};
        },
        40000);
    EXPECT_NEAR(rate, 0.5, 0.05) << predictorKindName(GetParam());
}

TEST_P(PredictorKindTest, SeparatesManyBiasedBranches)
{
    // 64 branches, even ids taken, odd ids not taken.
    if (GetParam() == PredictorKind::StaticTaken)
        GTEST_SKIP();
    double rate = mispredictionRate(
        *predictor_,
        [](int i) {
            std::uint32_t id = static_cast<std::uint32_t>(i) % 64;
            return std::pair<std::uint32_t, bool>{id, id % 2 == 0};
        },
        60000);
    EXPECT_LT(rate, 0.05) << predictorKindName(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllPredictors, PredictorKindTest,
                         ::testing::ValuesIn(allKinds()),
                         [](const auto &info) {
                             std::string name =
                                 predictorKindName(info.param);
                             for (char &c : name)
                                 if (c == '-')
                                     c = '_';
                             return name;
                         });

TEST(PredictorHistoryTest, HistoryPredictorsLearnAlternation)
{
    // A strict T/N alternation defeats bimodal (it saturates mid-way)
    // but is trivial for any history-based design.
    auto alternating = [](int i) {
        return std::pair<std::uint32_t, bool>{1, i % 2 == 0};
    };
    for (PredictorKind kind :
         {PredictorKind::Gshare, PredictorKind::Tournament,
          PredictorKind::Perceptron, PredictorKind::TageLite}) {
        auto predictor = makePredictor(kind, 12);
        double rate = mispredictionRate(*predictor, alternating, 20000);
        EXPECT_LT(rate, 0.02) << predictorKindName(kind);
    }
    auto bimodal = makePredictor(PredictorKind::Bimodal, 12);
    double bimodal_rate = mispredictionRate(*bimodal, alternating, 20000);
    EXPECT_GT(bimodal_rate, 0.4);
}

TEST(PredictorHistoryTest, PatternOfPeriodFour)
{
    // T T N T repeating: bimodal settles on "taken" (75% right at
    // best); history predictors should capture the pattern.
    auto pattern = [](int i) {
        static const bool p[4] = {true, true, false, true};
        return std::pair<std::uint32_t, bool>{2, p[i % 4]};
    };
    auto bimodal = makePredictor(PredictorKind::Bimodal, 12);
    auto tage = makePredictor(PredictorKind::TageLite, 12);
    auto gshare = makePredictor(PredictorKind::Gshare, 12);
    double bimodal_rate = mispredictionRate(*bimodal, pattern, 30000);
    double tage_rate = mispredictionRate(*tage, pattern, 30000);
    double gshare_rate = mispredictionRate(*gshare, pattern, 30000);
    EXPECT_GT(bimodal_rate, 0.15);
    EXPECT_LT(tage_rate, 0.05);
    EXPECT_LT(gshare_rate, 0.05);
}

/**
 * The playback loop dispatches through PredictorVariant instead of the
 * virtual interface; both factories must build behaviourally identical
 * predictors.  Drive a mixed stream of biased, alternating and random
 * branches through both paths in lock-step and require the prediction
 * to agree at every single step.
 */
TEST(PredictorDispatchTest, VariantMatchesVirtualInterfaceStepByStep)
{
    for (PredictorKind kind : allKinds()) {
        auto virt = makePredictor(kind, 12);
        PredictorVariant variant = makePredictorVariant(kind, 12);
        std::visit(
            [&](auto &concrete) {
                stats::Rng rng(17);
                for (int i = 0; i < 20000; ++i) {
                    std::uint64_t pc =
                        0x400000 + (static_cast<std::uint64_t>(i) % 777)
                        * 4;
                    std::uint32_t id =
                        static_cast<std::uint32_t>(i) % 97;
                    // Mix of strongly biased, alternating and noisy
                    // branches keeps every component table exercised.
                    bool taken = id % 3 == 0   ? true
                                 : id % 3 == 1 ? i % 2 == 0
                                               : rng.bernoulli(0.5);
                    bool virtual_prediction = virt->predict(pc, id);
                    bool direct_prediction = concrete.predict(pc, id);
                    ASSERT_EQ(virtual_prediction, direct_prediction)
                        << predictorKindName(kind) << " step " << i;
                    virt->update(pc, id, taken);
                    concrete.update(pc, id, taken);
                }
            },
            variant);
    }
}

/**
 * The playback loop feeds resolved branches to updateBatch() in
 * per-RecordBatch chunks; the kernel must be bit-exact against the
 * scalar predict()/update() pair — same misprediction verdict for
 * every branch AND the same internal state afterwards.  Drive one
 * predictor through batches of varied (including empty and
 * single-branch) lengths and a twin through the scalar pair in
 * lock-step, then confirm the two still agree on a fresh probe stream.
 */
TEST(PredictorDispatchTest, BatchKernelMatchesScalarPairsBitExactly)
{
    for (PredictorKind kind : allKinds()) {
        PredictorVariant batched_variant = makePredictorVariant(kind, 12);
        PredictorVariant scalar_variant = makePredictorVariant(kind, 12);
        std::visit(
            [&](auto &batched) {
                auto &scalar =
                    std::get<std::decay_t<decltype(batched)>>(
                        scalar_variant);
                stats::Rng rng(17);
                int step = 0;
                auto nextBranch = [&] {
                    std::uint64_t pc =
                        0x400000 +
                        (static_cast<std::uint64_t>(step) % 777) * 4;
                    std::uint32_t id =
                        static_cast<std::uint32_t>(step) % 97;
                    bool taken = id % 3 == 0   ? true
                                 : id % 3 == 1 ? step % 2 == 0
                                               : rng.bernoulli(0.5);
                    ++step;
                    return std::tuple{pc, id, taken};
                };

                // Batch lengths the playback loop can produce: empty
                // (branchless record batch), a lone branch, and
                // larger odd sizes that stress any vector tail.
                const std::size_t lengths[] = {1,  0,   2,  7,   64, 1,
                                               33, 513, 3,  256, 0,  1000,
                                               5,  127, 96, 2048};
                std::vector<std::uint64_t> pc;
                std::vector<std::uint32_t> id;
                std::vector<std::uint8_t> taken;
                std::vector<std::uint8_t> mispred;
                for (std::size_t len : lengths) {
                    pc.resize(len);
                    id.resize(len);
                    taken.resize(len);
                    mispred.assign(len, 0xaa);
                    for (std::size_t k = 0; k < len; ++k) {
                        auto [p, i, t] = nextBranch();
                        pc[k] = p;
                        id[k] = i;
                        taken[k] = t ? 1 : 0;
                    }
                    batched.updateBatch(pc.data(), id.data(),
                                        taken.data(), mispred.data(),
                                        len);
                    for (std::size_t k = 0; k < len; ++k) {
                        bool predicted = scalar.predict(pc[k], id[k]);
                        std::uint8_t expected =
                            predicted != (taken[k] != 0) ? 1 : 0;
                        ASSERT_EQ(mispred[k], expected)
                            << predictorKindName(kind) << " len " << len
                            << " branch " << k;
                        scalar.update(pc[k], id[k], taken[k] != 0);
                    }
                }

                // Same state afterwards: the twins must keep agreeing
                // (and keep mutating identically) on a probe stream.
                for (int probe = 0; probe < 2000; ++probe) {
                    auto [p, i, t] = nextBranch();
                    ASSERT_EQ(batched.predict(p, i), scalar.predict(p, i))
                        << predictorKindName(kind) << " probe " << probe;
                    batched.update(p, i, t);
                    scalar.update(p, i, t);
                }
            },
            batched_variant);
    }
}

TEST(PredictorDispatchTest, VariantReportsSameName)
{
    for (PredictorKind kind : allKinds()) {
        PredictorVariant variant = makePredictorVariant(kind, 10);
        std::string name = std::visit(
            [](const auto &concrete) { return concrete.name(); },
            variant);
        EXPECT_EQ(name, predictorKindName(kind));
    }
}

TEST(PredictorFactoryTest, NamesAndCreation)
{
    for (PredictorKind kind : allKinds()) {
        auto predictor = makePredictor(kind, 10);
        ASSERT_NE(predictor, nullptr);
        EXPECT_EQ(predictor->name(), predictorKindName(kind));
    }
}

TEST(PredictorFactoryTest, KindNames)
{
    EXPECT_EQ(predictorKindName(PredictorKind::TageLite), "tage-lite");
    EXPECT_EQ(predictorKindName(PredictorKind::Bimodal), "bimodal");
}

} // namespace
} // namespace uarch
} // namespace speclens
