/**
 * @file
 * Analytic-vs-walking prewarm equivalence.
 *
 * PrewarmSolver::apply() claims to reconstruct the EXACT state the
 * walking prewarm leaves — tags, replacement stamps, tree-PLRU words,
 * cold-fill counters, ticks, last-access indices and every statistic —
 * or to mutate nothing and return false.  These tests compare the two
 * paths' full state digests across every replacement policy, TLB
 * geometry and stride regime, sweep degenerate warm-up windows through
 * the public simulate() A/B knob (force_prewarm_walk), and pin the
 * all-or-nothing fallback contract for patterns outside the provable
 * regime.
 */

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "suites/machines.h"
#include "suites/spec2017.h"
#include "trace/phased_workload.h"
#include "uarch/prewarm.h"
#include "uarch/simulation.h"

using namespace speclens;
using uarch::CacheConfig;
using uarch::ReplacementPolicy;

namespace {

/** Small all-@p policy hierarchy so sweeps stay fast. */
uarch::CacheHierarchyConfig
cacheConfigFor(ReplacementPolicy policy)
{
    uarch::CacheHierarchyConfig config;
    config.l1i = CacheConfig{"L1I", 4 * 1024, 4, 64, policy};
    config.l1d = CacheConfig{"L1D", 4 * 1024, 4, 64, policy};
    config.l2 = CacheConfig{"L2", 32 * 1024, 8, 64, policy};
    config.l3 = CacheConfig{"L3", 256 * 1024, 16, 64, policy};
    return config;
}

/** TLB geometry variants the solver must prove or refuse. */
uarch::TlbHierarchyConfig
tlbConfigFor(int variant)
{
    uarch::TlbHierarchyConfig config;
    switch (variant) {
      case 0: // Default two-level, 4 KiB pages.
        break;
      case 1: // No second level (harpertown shape).
        config.l2tlb.reset();
        break;
      case 2: // Fully associative L1 TLBs, 8 KiB pages (SPARC shape).
        config.itlb = uarch::TlbConfig{"ITLB", 64, 64, 8192};
        config.dtlb = uarch::TlbConfig{"DTLB", 64, 64, 8192};
        config.l2tlb = uarch::TlbConfig{"L2TLB", 1024, 2, 8192};
        break;
      default:
        ADD_FAILURE() << "unknown tlb variant " << variant;
    }
    return config;
}

/**
 * Profile whose prewarm stream exercises @p stride on
 * @p active_regions data regions plus the code walk.  Inactive
 * regions get footprints beyond any LLC here, so both paths skip
 * them — which is itself part of the contract under test.  The region
 * bases sit 2^38 apart (all alias set 0 of every modelled structure),
 * so Random-policy sweeps need a single small active region to stay
 * below the no-eviction provability bound.
 */
trace::WorkloadProfile
profileFor(double stride, double bytes, double code_bytes,
           int active_regions = 4)
{
    trace::WorkloadProfile profile;
    profile.name = "prewarm-equivalence";
    int region = 0;
    for (auto &ws : profile.memory.data) {
        ws.bytes = region++ < active_regions ? bytes : 1e12;
        ws.stride_bytes = stride;
    }
    profile.memory.code_bytes = code_bytes;
    return profile;
}

/** Digest-compare the analytic and walking paths on cold hierarchies. */
void
expectStateEquivalence(const uarch::CacheHierarchyConfig &caches,
                       const uarch::TlbHierarchyConfig &tlbs,
                       const trace::WorkloadProfile &profile,
                       const std::string &label)
{
    std::uint64_t llc_lines =
        (caches.l3 ? caches.l3->size_bytes : caches.l2.size_bytes) / 64;

    uarch::CacheHierarchy analytic_caches(caches);
    uarch::TlbHierarchy analytic_tlbs(tlbs);
    ASSERT_TRUE(uarch::PrewarmSolver::apply(analytic_caches,
                                            analytic_tlbs, profile,
                                            llc_lines))
        << label << ": expected the pattern to be provable";

    uarch::CacheHierarchy walked_caches(caches);
    uarch::TlbHierarchy walked_tlbs(tlbs);
    uarch::PrewarmSolver::walk(walked_caches, walked_tlbs, profile,
                               llc_lines);

    EXPECT_EQ(uarch::PrewarmSolver::stateDigest(analytic_caches,
                                                analytic_tlbs),
              uarch::PrewarmSolver::stateDigest(walked_caches,
                                                walked_tlbs))
        << label << ": analytic state differs from the walk";
}

constexpr ReplacementPolicy kPolicies[] = {
    ReplacementPolicy::Lru, ReplacementPolicy::Fifo,
    ReplacementPolicy::TreePlru, ReplacementPolicy::Random};

const char *
policyName(ReplacementPolicy policy)
{
    switch (policy) {
      case ReplacementPolicy::Lru: return "lru";
      case ReplacementPolicy::Fifo: return "fifo";
      case ReplacementPolicy::TreePlru: return "treeplru";
      case ReplacementPolicy::Random: return "random";
    }
    return "?";
}

TEST(PrewarmEquivalence, EveryPolicyEveryTlbGeometryEveryStride)
{
    // Strides covering every provable regime: line-sized, sub-line
    // (64 % s == 0, several elements per line), multi-line, page-sized
    // and multi-page.
    const double strides[] = {64, 16, 128, 4096, 8192};
    for (ReplacementPolicy policy : kPolicies) {
        for (int tlb_variant = 0; tlb_variant < 3; ++tlb_variant) {
            for (double stride : strides) {
                // Random replacement is only provable without
                // evictions.  The four region bases all alias set 0 of
                // every power-of-two structure here, so Random gets a
                // single tiny active region (1-2 elements) to stay
                // under each set's associativity; eviction-heavy
                // footprints for the rest.
                bool random = policy == ReplacementPolicy::Random;
                int elements = stride <= 128 ? 2 : 1;
                double bytes = random ? stride * elements : 48 * 1024;
                double code = random ? 512 : 24 * 1024;
                expectStateEquivalence(
                    cacheConfigFor(policy), tlbConfigFor(tlb_variant),
                    profileFor(stride, bytes, code, random ? 1 : 4),
                    std::string(policyName(policy)) + "/tlb" +
                        std::to_string(tlb_variant) + "/stride" +
                        std::to_string(static_cast<int>(stride)));
            }
        }
    }
}

TEST(PrewarmEquivalence, NonPowerOfTwoSetCounts)
{
    // 20-way 15 MB-style LLC: 12288 sets, not a power of two, so the
    // per-set congruence solving runs the general gcd path.  Tree-PLRU
    // needs a power-of-two way count; 16 ways still gives it 15360
    // sets.
    for (ReplacementPolicy policy : kPolicies) {
        uarch::CacheHierarchyConfig caches = cacheConfigFor(policy);
        unsigned ways = policy == ReplacementPolicy::TreePlru ? 16 : 20;
        caches.l3 = CacheConfig{"L3", 15 * 1024 * 1024, ways, 64, policy};
        bool random = policy == ReplacementPolicy::Random;
        expectStateEquivalence(
            caches, tlbConfigFor(0),
            profileFor(64, random ? 512 : 48 * 1024, random ? 512 : 8192),
            std::string("np2/") + policyName(policy));
    }
}

TEST(PrewarmEquivalence, EmptyAndDegenerateStreams)
{
    // Working sets larger than the LLC are skipped by both paths; a
    // zero-byte code region contributes nothing.  The solver must
    // still succeed (there is nothing unprovable about an empty
    // stream) and leave both hierarchies identical.
    expectStateEquivalence(cacheConfigFor(ReplacementPolicy::Lru),
                           tlbConfigFor(0),
                           profileFor(64, 64.0 * 1024 * 1024, 0),
                           "empty");

    // One element per region (bytes < stride clamps to one element).
    expectStateEquivalence(cacheConfigFor(ReplacementPolicy::TreePlru),
                           tlbConfigFor(0), profileFor(64, 32, 64),
                           "single-element");
}

TEST(PrewarmEquivalence, UnprovableStrideFallsBackUntouched)
{
    // 96 neither divides nor is divided by the 64-byte line: outside
    // the provable regime.  apply() must refuse AND leave the
    // hierarchy byte-identical to a fresh one (all-or-nothing).
    uarch::CacheHierarchyConfig caches =
        cacheConfigFor(ReplacementPolicy::Lru);
    uarch::TlbHierarchyConfig tlbs = tlbConfigFor(0);
    trace::WorkloadProfile profile = profileFor(96, 16 * 1024, 4096);

    uarch::CacheHierarchy hierarchy(caches);
    uarch::TlbHierarchy tlb_hierarchy(tlbs);
    std::vector<std::uint64_t> fresh =
        uarch::PrewarmSolver::stateDigest(hierarchy, tlb_hierarchy);
    EXPECT_FALSE(uarch::PrewarmSolver::apply(hierarchy, tlb_hierarchy,
                                             profile, 4096));
    EXPECT_EQ(uarch::PrewarmSolver::stateDigest(hierarchy, tlb_hierarchy),
              fresh);
}

TEST(PrewarmEquivalence, RandomOverflowFallsBackUntouched)
{
    // A footprint that overflows a Random set's ways would need RNG
    // draws the closed form cannot reproduce: refuse, mutate nothing.
    uarch::CacheHierarchyConfig caches =
        cacheConfigFor(ReplacementPolicy::Random);
    uarch::TlbHierarchyConfig tlbs = tlbConfigFor(0);
    trace::WorkloadProfile profile = profileFor(64, 16 * 1024, 16 * 1024);

    uarch::CacheHierarchy hierarchy(caches);
    uarch::TlbHierarchy tlb_hierarchy(tlbs);
    std::vector<std::uint64_t> fresh =
        uarch::PrewarmSolver::stateDigest(hierarchy, tlb_hierarchy);
    EXPECT_FALSE(uarch::PrewarmSolver::apply(hierarchy, tlb_hierarchy,
                                             profile, 1 << 20));
    EXPECT_EQ(uarch::PrewarmSolver::stateDigest(hierarchy, tlb_hierarchy),
              fresh);
}

// ---------------------------------------------------------------------
// End-to-end A/B through the public knob: force_prewarm_walk must be
// invisible in results for every shipped machine, including degenerate
// warm-up windows (0 and 1 instructions).

TEST(PrewarmEquivalence, ForceWalkIsResultInvisibleOnShippedMachines)
{
    const trace::WorkloadProfile &profile =
        suites::spec2017().front().profile;
    for (const uarch::MachineConfig &machine :
         suites::profilingMachines()) {
        for (std::uint64_t warmup : {std::uint64_t{0}, std::uint64_t{1},
                                     std::uint64_t{2'000}}) {
            uarch::SimulationConfig config;
            config.instructions = 2'000;
            config.warmup = warmup;
            uarch::SimulationResult analytic =
                uarch::simulate(profile, machine, config);
            config.force_prewarm_walk = true;
            uarch::SimulationResult walked =
                uarch::simulate(profile, machine, config);
            EXPECT_TRUE(uarch::bitIdentical(analytic, walked))
                << machine.name << " warmup=" << warmup;
        }
    }
}

#ifndef SPECLENS_METRICS_OFF
TEST(PrewarmEquivalence, ObsCountersRecordTheDecision)
{
    obs::Counter &analytic =
        obs::Registry::global().counter("uarch.prewarm.analytic");
    obs::Counter &walked =
        obs::Registry::global().counter("uarch.prewarm.walked");

    const trace::WorkloadProfile &profile =
        suites::spec2017().front().profile;
    const uarch::MachineConfig &machine =
        suites::profilingMachines().front();
    uarch::SimulationConfig config;
    config.instructions = 1'000;
    config.warmup = 200;

    // Shipped machines and profiles are fully in the provable regime.
    std::uint64_t analytic_before = analytic.value();
    uarch::simulate(profile, machine, config);
    EXPECT_EQ(analytic.value(), analytic_before + 1);

    // The A/B knob forces the walking path.
    std::uint64_t walked_before = walked.value();
    config.force_prewarm_walk = true;
    uarch::simulate(profile, machine, config);
    EXPECT_EQ(walked.value(), walked_before + 1);

    // Phased runs walk from phase 2 on (touched hierarchy): shipped
    // fallback coverage, counted per phase.
    config.force_prewarm_walk = false;
    trace::PhasedWorkload phased = trace::derivePhases(profile, 3);
    analytic_before = analytic.value();
    walked_before = walked.value();
    uarch::simulatePhased(phased, machine, config);
    EXPECT_EQ(analytic.value(), analytic_before + 1);
    EXPECT_EQ(walked.value(), walked_before + 2);
}
#endif

} // namespace
