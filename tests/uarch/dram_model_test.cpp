/**
 * @file
 * Unit tests for the banked DRAM row-buffer model, the cache way
 * predictors and the derived memory-centric PerfCounters metrics.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "uarch/cache.h"
#include "uarch/dram_model.h"
#include "uarch/perf_counters.h"

namespace speclens {
namespace uarch {
namespace {

// Default geometry: 8 KiB rows, 16 banks, so bank = (addr >> 13) & 15
// and row = (addr >> 13) >> 4.

TEST(DramModelTest, SameRowStreakHitsAfterActivate)
{
    DramModel dram{DramConfig{}};
    for (int i = 0; i < 4; ++i)
        dram.access(i * 64);
    EXPECT_EQ(dram.accesses(), 4u);
    EXPECT_EQ(dram.rowHits(), 3u); // first access opens the row
    // 1 miss * (24 + 4) + 3 hits * 4.
    EXPECT_EQ(dram.busyCycles(), 40u);
    EXPECT_EQ(dram.budgetCycles(), 4u * 6u);
}

TEST(DramModelTest, BanksHoldIndependentOpenRows)
{
    DramModel dram{DramConfig{}};
    dram.access(0);        // bank 0, row 0: activate
    dram.access(8192);     // bank 1, row 0: activate
    dram.access(0);        // bank 0 still open
    dram.access(8192);     // bank 1 still open
    EXPECT_EQ(dram.rowHits(), 2u);
}

TEST(DramModelTest, RowConflictThrashesTheBank)
{
    DramModel dram{DramConfig{}};
    // Rows 0 and 1 of bank 0 (16 banks: +16 row-addresses apart).
    for (int i = 0; i < 5; ++i) {
        dram.access(0);
        dram.access(16ull * 8192);
    }
    EXPECT_EQ(dram.accesses(), 10u);
    EXPECT_EQ(dram.rowHits(), 0u);
    EXPECT_EQ(dram.busyCycles(), 10u * 28u);
}

TEST(DramModelTest, ResetClosesRowsAndZeroesCounters)
{
    DramModel dram{DramConfig{}};
    dram.access(0);
    dram.access(0);
    ASSERT_GT(dram.rowHits(), 0u);
    dram.reset();
    EXPECT_EQ(dram.accesses(), 0u);
    EXPECT_EQ(dram.rowHits(), 0u);
    EXPECT_EQ(dram.busyCycles(), 0u);
    EXPECT_EQ(dram.budgetCycles(), 0u);
    dram.access(0);
    EXPECT_EQ(dram.rowHits(), 0u); // the row really closed
}

TEST(DramModelTest, ValidateRejectsMalformedGeometry)
{
    DramConfig bad_banks;
    bad_banks.banks = 12; // not a power of two
    EXPECT_THROW(bad_banks.validate(), std::invalid_argument);

    DramConfig bad_row;
    bad_row.row_bytes = 5000;
    EXPECT_THROW(bad_row.validate(), std::invalid_argument);

    DramConfig bad_budget;
    bad_budget.cycles_per_burst_budget = 0;
    EXPECT_THROW(bad_budget.validate(), std::invalid_argument);
}

// ---------------------------------------------------------------------
// Way prediction.

CacheConfig
predictedCache(WayPredictionKind kind)
{
    CacheConfig config{"test", 1024, 4, 64, ReplacementPolicy::Lru};
    config.way_prediction = kind;
    return config;
}

TEST(WayPredictionTest, OffByDefaultAndCountersStayZero)
{
    Cache cache{CacheConfig{"test", 1024, 4, 64, ReplacementPolicy::Lru}};
    for (std::uint64_t i = 0; i < 100; ++i)
        cache.access((i % 8) * 64);
    EXPECT_EQ(cache.wayPredHits(), 0u);
    EXPECT_EQ(cache.wayPredMispredicts(), 0u);
}

TEST(WayPredictionTest, EveryHitIsPredictedExactlyOnce)
{
    for (WayPredictionKind kind :
         {WayPredictionKind::Mru, WayPredictionKind::MultiMru}) {
        Cache cache(predictedCache(kind));
        // Each line is touched twice in a row so even plain MRU lands
        // some predictions (a pure within-set round-robin defeats it).
        for (std::uint64_t i = 0; i < 5000; ++i)
            cache.access(((i / 2) % 12) * 64);
        EXPECT_EQ(cache.wayPredHits() + cache.wayPredMispredicts(),
                  cache.hits())
            << wayPredictionKindName(kind);
        EXPECT_GT(cache.wayPredHits(), 0u);
    }
}

TEST(WayPredictionTest, MruPredictsRepeatedLinePerfectly)
{
    Cache cache(predictedCache(WayPredictionKind::Mru));
    cache.access(0);
    for (int i = 0; i < 50; ++i)
        cache.access(0);
    EXPECT_EQ(cache.wayPredHits(), 50u);
    EXPECT_EQ(cache.wayPredMispredicts(), 0u);
}

TEST(WayPredictionTest, MultiMruTracksTwoAlternatingLines)
{
    // Two lines of the same set with opposite low tag bits
    // alternating: plain MRU mispredicts every steady-state access,
    // the two-partition predictor holds both (4 sets here, so
    // addresses 0 and 256 are set 0 with tags 0 and 1).
    Cache mru(predictedCache(WayPredictionKind::Mru));
    Cache multi(predictedCache(WayPredictionKind::MultiMru));
    for (int i = 0; i < 400; ++i) {
        std::uint64_t addr = (i % 2) * 256;
        mru.access(addr);
        multi.access(addr);
    }
    EXPECT_GT(multi.wayPredHits(), mru.wayPredHits());
    EXPECT_EQ(multi.wayPredMispredicts(), 0u);
}

// ---------------------------------------------------------------------
// Derived metrics.

TEST(MemoryMetricsTest, ZeroDenominatorsAreDefined)
{
    PerfCounters c;
    EXPECT_EQ(c.prefetchCoverage(), 0.0);
    EXPECT_EQ(c.prefetchAccuracy(), 0.0);
    EXPECT_EQ(c.prefetchTimeliness(), 1.0);
    EXPECT_EQ(c.wayPredAccuracy(), 0.0);
    EXPECT_EQ(c.rowBufferHitRate(), 0.0);
    EXPECT_EQ(c.dramBwUtilization(), 0.0);
}

TEST(MemoryMetricsTest, RatiosMatchTheirCounters)
{
    PerfCounters c;
    c.prefetch_fills = 100;
    c.prefetch_useful = 60;
    c.prefetch_evicted_unused = 30;
    c.l2d_misses = 40;
    c.way_pred_hits = 90;
    c.way_pred_mispredicts = 10;
    c.dram_accesses = 50;
    c.dram_row_hits = 20;
    c.dram_busy_cycles = 920;
    c.dram_budget_cycles = 300;
    EXPECT_DOUBLE_EQ(c.prefetchCoverage(), 0.6);
    EXPECT_DOUBLE_EQ(c.prefetchAccuracy(), 0.6);
    EXPECT_DOUBLE_EQ(c.prefetchTimeliness(), 0.7);
    EXPECT_DOUBLE_EQ(c.wayPredAccuracy(), 0.9);
    EXPECT_DOUBLE_EQ(c.rowBufferHitRate(), 0.4);
    EXPECT_DOUBLE_EQ(c.dramBwUtilization(), 920.0 / 300.0);
}

} // namespace
} // namespace uarch
} // namespace speclens
