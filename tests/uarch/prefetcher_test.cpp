/**
 * @file
 * Unit tests for the optional L2 stream prefetcher.
 */

#include <gtest/gtest.h>

#include "suites/machines.h"
#include "suites/spec2017.h"
#include "uarch/cache_hierarchy.h"
#include "uarch/simulation.h"

namespace speclens {
namespace uarch {
namespace {

CacheHierarchyConfig
smallHierarchy(unsigned prefetch_degree)
{
    CacheHierarchyConfig config;
    config.l1d = {"L1D", 1024, 2, 64, ReplacementPolicy::Lru};
    config.l1i = {"L1I", 1024, 2, 64, ReplacementPolicy::Lru};
    config.l2 = {"L2", 16 * 1024, 4, 64, ReplacementPolicy::Lru};
    config.l3 = CacheConfig{"L3", 256 * 1024, 8, 64,
                            ReplacementPolicy::Lru};
    config.l2_prefetch_degree = prefetch_degree;
    return config;
}

TEST(PrefetcherTest, DisabledByDefault)
{
    CacheHierarchy hierarchy{CacheHierarchyConfig{}};
    hierarchy.accessData(0x100000);
    EXPECT_EQ(hierarchy.prefetchFills(), 0u);
}

TEST(PrefetcherTest, FillsSuccessorLinesOnL2Miss)
{
    CacheHierarchy hierarchy(smallHierarchy(2));
    hierarchy.accessData(0x100000); // demand miss; prefetch +64, +128
    EXPECT_EQ(hierarchy.prefetchFills(), 2u);
    // The successor lines now hit in L2 (they were never in L1).
    EXPECT_EQ(hierarchy.accessData(0x100000 + 64), ServiceLevel::L2);
    EXPECT_EQ(hierarchy.accessData(0x100000 + 128), ServiceLevel::L2);
}

TEST(PrefetcherTest, SequentialStreamMostlyHitsL2)
{
    CacheHierarchy with(smallHierarchy(4));
    CacheHierarchy without(smallHierarchy(0));
    // Stream far beyond every capacity.
    for (std::uint64_t addr = 0; addr < 4 * 1024 * 1024; addr += 64) {
        with.accessData(addr);
        without.accessData(addr);
    }
    // Every streamed line misses L1 either way...
    EXPECT_EQ(with.l1d().misses, without.l1d().misses);
    // ...but the prefetcher converts most L2 misses into hits.
    EXPECT_LT(with.l2d().misses, without.l2d().misses / 3);
}

TEST(PrefetcherTest, DoesNotHelpRandomAccess)
{
    CacheHierarchy with(smallHierarchy(4));
    CacheHierarchy without(smallHierarchy(0));
    stats::Rng rng(17);
    for (int i = 0; i < 60000; ++i) {
        // Random lines over 16 MiB: successors are never used.
        std::uint64_t addr = rng.below(1 << 18) * 64;
        std::uint64_t addr2 = addr; // same stream for both
        with.accessData(addr);
        without.accessData(addr2);
    }
    double with_ratio = static_cast<double>(with.l2d().misses) /
                        static_cast<double>(with.l2d().accesses);
    double without_ratio =
        static_cast<double>(without.l2d().misses) /
        static_cast<double>(without.l2d().accesses);
    EXPECT_NEAR(with_ratio, without_ratio, 0.05);
}

TEST(PrefetcherTest, AccountingIdentityHoldsPastTheOldWipeThreshold)
{
    // Regression: the first implementation tracked prefetched lines in
    // an unordered_set that was wiped wholesale once it held 65536
    // entries.  Past the wipe, demand hits on prefetched lines were no
    // longer counted useful and evictions of prefetched lines were no
    // longer counted at all, so fills - useful - evicted drifted
    // without bound.  With the per-slot bits, that difference is
    // exactly the number of prefetched lines still resident in L2 and
    // can never exceed the L2 slot count.
    CacheHierarchy hierarchy(smallHierarchy(4));
    for (std::uint64_t addr = 0; addr < (130'000ull * 64); addr += 64)
        hierarchy.accessData(addr);
    ASSERT_GT(hierarchy.prefetchFills(), 65'536u);
    std::uint64_t accounted =
        hierarchy.prefetchUseful() + hierarchy.prefetchEvictedUnused();
    ASSERT_LE(accounted, hierarchy.prefetchFills());
    // smallHierarchy's L2 is 16 KiB of 64-byte lines: 256 slots.
    EXPECT_LE(hierarchy.prefetchFills() - accounted, 256u);
}

TEST(PrefetcherTest, BoundaryRetireClosesTheAccountingExactly)
{
    // simulate() retires unconsumed prefetches at the warmup ->
    // measurement boundary so measured snapshot deltas never show more
    // useful + evicted than fills.  After the retire the identity is
    // exact: every fill has been consumed, overwritten, or retired.
    CacheHierarchy hierarchy(smallHierarchy(4));
    for (std::uint64_t addr = 0; addr < (10'000ull * 64); addr += 64)
        hierarchy.accessData(addr);
    ASSERT_GT(hierarchy.prefetchFills(), 0u);
    hierarchy.retireUnusedPrefetches();
    EXPECT_EQ(hierarchy.prefetchFills(),
              hierarchy.prefetchUseful() +
                  hierarchy.prefetchEvictedUnused());
    // Retiring twice is a no-op: the bits are already clear.
    std::uint64_t evicted = hierarchy.prefetchEvictedUnused();
    hierarchy.retireUnusedPrefetches();
    EXPECT_EQ(hierarchy.prefetchEvictedUnused(), evicted);
}

TEST(PrefetcherTest, StrideEngineCoversConstantStrides)
{
    // A fixed 3-line stride from one PC: next-line prefetching fetches
    // the wrong successors, the stride engine locks on.
    auto strided = [](PrefetcherKind kind) {
        CacheHierarchyConfig config = smallHierarchy(2);
        config.prefetcher = kind;
        CacheHierarchy hierarchy(config);
        for (std::uint64_t i = 0; i < 20'000; ++i)
            hierarchy.accessData(i * 3 * 64, /*pc=*/0x401000);
        return hierarchy.prefetchUseful();
    };
    EXPECT_GT(strided(PrefetcherKind::Stride),
              strided(PrefetcherKind::NextLine) * 2);
}

TEST(PrefetcherTest, StreamEngineConfirmsAscendingStreams)
{
    CacheHierarchyConfig config = smallHierarchy(4);
    config.prefetcher = PrefetcherKind::Stream;
    CacheHierarchy hierarchy(config);
    for (std::uint64_t addr = 0; addr < (50'000ull * 64); addr += 64)
        hierarchy.accessData(addr);
    // The detector needs one window allocation plus one confirming
    // miss, then runs ahead of the stream.
    EXPECT_GT(hierarchy.prefetchUseful(),
              hierarchy.prefetchFills() / 2);
    std::uint64_t accounted =
        hierarchy.prefetchUseful() + hierarchy.prefetchEvictedUnused();
    EXPECT_LE(hierarchy.prefetchFills() - accounted, 256u);
}

TEST(PrefetcherTest, InstructionSideUnaffected)
{
    CacheHierarchy hierarchy(smallHierarchy(4));
    hierarchy.accessInstr(0x4000000);
    EXPECT_EQ(hierarchy.prefetchFills(), 0u);
}

TEST(PrefetcherTest, ResetClearsFillCount)
{
    CacheHierarchy hierarchy(smallHierarchy(2));
    hierarchy.accessData(0x100000);
    EXPECT_GT(hierarchy.prefetchFills(), 0u);
    hierarchy.reset();
    EXPECT_EQ(hierarchy.prefetchFills(), 0u);
}

TEST(PrefetcherTest, HelpsStreamingBenchmarkEndToEnd)
{
    // lbm (streaming stencil) should lose L2D misses when the machine
    // gains a prefetcher; mcf (pointer chasing) should not care much.
    const auto &lbm = suites::spec2017Benchmark("519.lbm_r");
    const auto &mcf = suites::spec2017Benchmark("505.mcf_r");

    MachineConfig base = suites::skylakeMachine();
    MachineConfig prefetching = base;
    prefetching.caches.l2_prefetch_degree = 4;

    SimulationConfig config;
    config.instructions = 60'000;
    config.warmup = 15'000;
    config.apply_machine_transform = false;

    double lbm_base =
        simulate(lbm.profile, base, config).counters.l2dMpki();
    double lbm_pf =
        simulate(lbm.profile, prefetching, config).counters.l2dMpki();
    double mcf_base =
        simulate(mcf.profile, base, config).counters.l2dMpki();
    double mcf_pf =
        simulate(mcf.profile, prefetching, config).counters.l2dMpki();

    double lbm_gain = (lbm_base - lbm_pf) / lbm_base;
    double mcf_gain = (mcf_base - mcf_pf) / mcf_base;
    // The calibrated workloads already fold prefetching into their
    // streaming parameters, so the absolute benefit is small — but the
    // stream-friendliness *ordering* must hold: lbm gains (or loses
    // least), mcf pays for the pollution.
    EXPECT_GT(lbm_gain, mcf_gain);
    EXPECT_LT(mcf_gain, 0.0);
}

} // namespace
} // namespace uarch
} // namespace speclens
