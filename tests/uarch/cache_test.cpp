/**
 * @file
 * Unit tests for the set-associative cache model and the hierarchy.
 */

#include <gtest/gtest.h>

#include "uarch/cache.h"
#include "uarch/cache_hierarchy.h"

namespace speclens {
namespace uarch {
namespace {

CacheConfig
smallCache(std::uint32_t assoc = 2,
           ReplacementPolicy policy = ReplacementPolicy::Lru)
{
    // 8 sets x assoc ways x 64B lines.
    CacheConfig c;
    c.name = "test";
    c.size_bytes = 8ull * assoc * 64;
    c.associativity = assoc;
    c.line_bytes = 64;
    c.policy = policy;
    return c;
}

TEST(CacheConfigTest, SetsComputation)
{
    EXPECT_EQ(smallCache().sets(), 8u);
    CacheConfig big{"L3", 8 * 1024 * 1024, 16, 64,
                    ReplacementPolicy::Lru};
    EXPECT_EQ(big.sets(), 8192u);
}

TEST(CacheConfigTest, ValidationRejectsBadGeometry)
{
    CacheConfig c = smallCache();
    c.line_bytes = 48; // not a power of two
    EXPECT_THROW(c.validate(), std::invalid_argument);

    c = smallCache();
    c.associativity = 0;
    EXPECT_THROW(c.validate(), std::invalid_argument);

    c = smallCache();
    c.size_bytes = 1000; // not divisible by way size
    EXPECT_THROW(c.validate(), std::invalid_argument);

    // Tree-PLRU needs power-of-two ways.
    c = smallCache(3, ReplacementPolicy::TreePlru);
    EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(CacheConfigTest, NonPowerOfTwoSetCountAccepted)
{
    // Broadwell's 30 MB / 20-way L3 (Table IV) has 24576 sets.
    CacheConfig c{"L3", 30 * 1024 * 1024, 20, 64,
                  ReplacementPolicy::Lru};
    EXPECT_NO_THROW(c.validate());
    EXPECT_NO_THROW(Cache{c});
}

TEST(CacheTest, ColdMissThenHit)
{
    Cache cache(smallCache());
    EXPECT_FALSE(cache.access(0x1000));
    EXPECT_TRUE(cache.access(0x1000));
    EXPECT_TRUE(cache.access(0x1004)); // same line
    EXPECT_EQ(cache.accesses(), 3u);
    EXPECT_EQ(cache.hits(), 2u);
    EXPECT_EQ(cache.misses(), 1u);
}

TEST(CacheTest, ContainsDoesNotFill)
{
    Cache cache(smallCache());
    EXPECT_FALSE(cache.contains(0x2000));
    EXPECT_EQ(cache.accesses(), 0u);
    cache.access(0x2000);
    EXPECT_TRUE(cache.contains(0x2000));
}

TEST(CacheTest, LruEvictionOrder)
{
    // 2-way set: fill two lines mapping to set 0, touch the first,
    // then insert a third — the second (least recent) must be evicted.
    Cache cache(smallCache(2, ReplacementPolicy::Lru));
    std::uint64_t set_stride = 8 * 64; // addresses mapping to set 0
    cache.access(0 * set_stride);
    cache.access(1 * set_stride);
    cache.access(0 * set_stride); // refresh line 0
    cache.access(2 * set_stride); // evicts line 1
    EXPECT_TRUE(cache.contains(0 * set_stride));
    EXPECT_FALSE(cache.contains(1 * set_stride));
    EXPECT_TRUE(cache.contains(2 * set_stride));
}

TEST(CacheTest, FifoIgnoresHits)
{
    // Same scenario as above, but FIFO evicts the *oldest inserted*
    // line regardless of the refreshing hit.
    Cache cache(smallCache(2, ReplacementPolicy::Fifo));
    std::uint64_t set_stride = 8 * 64;
    cache.access(0 * set_stride);
    cache.access(1 * set_stride);
    cache.access(0 * set_stride); // hit; FIFO unaffected
    cache.access(2 * set_stride); // evicts line 0
    EXPECT_FALSE(cache.contains(0 * set_stride));
    EXPECT_TRUE(cache.contains(1 * set_stride));
}

TEST(CacheTest, TreePlruProtectsMostRecent)
{
    Cache cache(smallCache(4, ReplacementPolicy::TreePlru));
    std::uint64_t set_stride = 8 * 64;
    for (std::uint64_t i = 0; i < 4; ++i)
        cache.access(i * set_stride);
    // Line 3 was touched last; inserting a fifth line must not evict
    // it (tree-PLRU always points away from the most recent way).
    cache.access(4 * set_stride);
    EXPECT_TRUE(cache.contains(3 * set_stride));
}

TEST(CacheTest, WorkingSetBelowCapacityAlwaysHitsAfterWarmup)
{
    CacheConfig config = smallCache(4); // 2 KiB
    Cache cache(config);
    for (std::uint64_t addr = 0; addr < 2048; addr += 64)
        cache.access(addr);
    cache.reset();
    // reset() cleared everything including stats.
    EXPECT_EQ(cache.accesses(), 0u);
    for (std::uint64_t addr = 0; addr < 2048; addr += 64)
        cache.access(addr); // cold again
    for (int round = 0; round < 3; ++round)
        for (std::uint64_t addr = 0; addr < 2048; addr += 64)
            EXPECT_TRUE(cache.access(addr));
}

TEST(CacheTest, CyclicOverCapacityThrashesLru)
{
    // The classic LRU pathology: cycling over capacity + 1 set-worth
    // of lines misses every time.
    Cache cache(smallCache(2)); // 16 lines
    for (int round = 0; round < 4; ++round)
        for (std::uint64_t i = 0; i < 24; ++i)
            cache.access(i * 64);
    // After the first cold round, every access still misses.
    EXPECT_DOUBLE_EQ(cache.missRatio(), 1.0);
}

TEST(CacheTest, MissRatioTracksWorkingSetSize)
{
    // Random access to a working set W in a cache of capacity C
    // misses at roughly (W - C) / W.
    CacheConfig config;
    config.name = "ratio";
    config.size_bytes = 32 * 1024;
    config.associativity = 8;
    Cache cache(config);
    stats::Rng rng(3);
    const std::uint64_t lines = 1024; // 64 KiB working set
    for (int i = 0; i < 200000; ++i)
        cache.access(rng.below(lines) * 64);
    EXPECT_NEAR(cache.missRatio(), 0.5, 0.05);
}

TEST(CacheTest, RandomPolicyStillCachesResidentSet)
{
    // Half-capacity working set: even random replacement keeps it
    // mostly resident.
    Cache cache(smallCache(4, ReplacementPolicy::Random)); // 32 lines
    for (int round = 0; round < 8; ++round)
        for (std::uint64_t addr = 0; addr < 1024; addr += 64) // 16 lines
            cache.access(addr);
    EXPECT_LT(cache.missRatio(), 0.25);
}

class CacheGeometrySweep
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(CacheGeometrySweep, LargerCachesNeverMissMore)
{
    auto [size_kib, assoc] = GetParam();
    CacheConfig small;
    small.name = "small";
    small.size_bytes = static_cast<std::uint64_t>(size_kib) * 1024;
    small.associativity = static_cast<std::uint32_t>(assoc);
    CacheConfig large = small;
    large.name = "large";
    large.size_bytes *= 4;

    Cache small_cache(small), large_cache(large);
    stats::Rng rng(11);
    const std::uint64_t lines = 4096; // 256 KiB uniform working set
    for (int i = 0; i < 100000; ++i) {
        std::uint64_t addr = rng.below(lines) * 64;
        small_cache.access(addr);
        large_cache.access(addr);
    }
    EXPECT_LE(large_cache.missRatio(), small_cache.missRatio() + 0.01)
        << "size " << size_kib << " KiB, " << assoc << "-way";
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometrySweep,
    ::testing::Combine(::testing::Values(8, 16, 32, 64),
                       ::testing::Values(1, 2, 4, 8)));

// ---------------------------------------------------------------------
// Hierarchy
// ---------------------------------------------------------------------

TEST(CacheHierarchyTest, ServiceLevelEscalation)
{
    CacheHierarchyConfig config; // default Skylake-ish
    CacheHierarchy hierarchy(config);
    // First touch goes to memory, second hits L1.
    EXPECT_EQ(hierarchy.accessData(0x10000), ServiceLevel::Memory);
    EXPECT_EQ(hierarchy.accessData(0x10000), ServiceLevel::L1);
}

TEST(CacheHierarchyTest, CountsSplitBySide)
{
    CacheHierarchy hierarchy{CacheHierarchyConfig{}};
    hierarchy.accessData(0x1000);
    hierarchy.accessInstr(0x2000);
    hierarchy.accessInstr(0x2000);
    EXPECT_EQ(hierarchy.l1d().accesses, 1u);
    EXPECT_EQ(hierarchy.l1d().misses, 1u);
    EXPECT_EQ(hierarchy.l1i().accesses, 2u);
    EXPECT_EQ(hierarchy.l1i().misses, 1u);
    EXPECT_EQ(hierarchy.l2d().accesses, 1u);
    EXPECT_EQ(hierarchy.l2i().accesses, 1u);
    EXPECT_EQ(hierarchy.l3().accesses, 2u);
}

TEST(CacheHierarchyTest, L1EvictionServedByL2)
{
    CacheHierarchyConfig config;
    config.l1d = {"L1D", 1024, 2, 64, ReplacementPolicy::Lru}; // tiny L1
    config.l2 = {"L2", 64 * 1024, 8, 64, ReplacementPolicy::Lru};
    CacheHierarchy hierarchy(config);
    // Touch 64 lines (4 KiB): far beyond L1, inside L2.
    for (std::uint64_t a = 0; a < 4096; a += 64)
        hierarchy.accessData(a);
    for (std::uint64_t a = 0; a < 4096; a += 64) {
        ServiceLevel level = hierarchy.accessData(a);
        EXPECT_TRUE(level == ServiceLevel::L1 ||
                    level == ServiceLevel::L2);
    }
    EXPECT_EQ(hierarchy.l2d().misses, 64u); // only the cold pass
}

TEST(CacheHierarchyTest, TwoLevelMachineMirrorsL2MissesToL3Counters)
{
    CacheHierarchyConfig config;
    config.l3.reset();
    CacheHierarchy hierarchy(config);
    EXPECT_FALSE(hierarchy.hasL3());
    EXPECT_EQ(hierarchy.accessData(0x5000), ServiceLevel::Memory);
    EXPECT_EQ(hierarchy.l3().accesses, 1u);
    EXPECT_EQ(hierarchy.l3().misses, 1u);
}

TEST(CacheHierarchyTest, ResetClearsEverything)
{
    CacheHierarchy hierarchy{CacheHierarchyConfig{}};
    hierarchy.accessData(0x1000);
    hierarchy.reset();
    EXPECT_EQ(hierarchy.l1d().accesses, 0u);
    EXPECT_EQ(hierarchy.l3().accesses, 0u);
    // Previously cached line is gone.
    EXPECT_EQ(hierarchy.accessData(0x1000), ServiceLevel::Memory);
}

} // namespace
} // namespace uarch
} // namespace speclens
