/**
 * @file
 * Tests for machine transforms and the end-to-end simulation driver.
 */

#include <gtest/gtest.h>

#include "suites/machines.h"
#include "suites/spec2017.h"
#include "uarch/machine.h"
#include "uarch/simulation.h"

namespace speclens {
namespace uarch {
namespace {

TEST(MachineTransformTest, DeterministicPerPair)
{
    const auto &profile = suites::spec2017Benchmark("502.gcc_r").profile;
    const auto &machine = suites::machineByShortName("sparc-t4");
    trace::WorkloadProfile a = transformForMachine(profile, machine);
    trace::WorkloadProfile b = transformForMachine(profile, machine);
    EXPECT_EQ(a.mix.load, b.mix.load);
    EXPECT_EQ(a.memory.code_bytes, b.memory.code_bytes);
}

TEST(MachineTransformTest, DiffersAcrossMachines)
{
    const auto &profile = suites::spec2017Benchmark("502.gcc_r").profile;
    trace::WorkloadProfile skylake = transformForMachine(
        profile, suites::machineByShortName("skylake"));
    trace::WorkloadProfile sparc = transformForMachine(
        profile, suites::machineByShortName("sparc-t4"));
    EXPECT_NE(skylake.mix.load, sparc.mix.load);
}

TEST(MachineTransformTest, RiscScalesMemoryMixDown)
{
    const auto &profile = suites::spec2017Benchmark("502.gcc_r").profile;
    const auto &sparc = suites::machineByShortName("sparc-iv");
    trace::WorkloadProfile transformed =
        transformForMachine(profile, sparc);
    // memory_mix_scale 0.9 with jitter <= ~6%: clearly below original.
    EXPECT_LT(transformed.mix.load + transformed.mix.store,
              (profile.mix.load + profile.mix.store) * 1.02);
    // Result remains a valid profile.
    EXPECT_NO_THROW(transformed.validate());
}

TEST(MachineTransformTest, OverfullMixRenormalised)
{
    trace::WorkloadProfile p;
    p.name = "dense-mix";
    p.mix.load = 0.45;
    p.mix.store = 0.30;
    p.mix.branch = 0.18;
    MachineConfig machine = suites::machineByShortName("skylake");
    machine.transform.memory_mix_scale = 1.4;
    trace::WorkloadProfile t = transformForMachine(p, machine);
    EXPECT_NO_THROW(t.validate());
    EXPECT_LE(t.mix.load + t.mix.store + t.mix.branch + t.mix.fp +
                  t.mix.simd,
              0.951);
}

TEST(SimulationTest, DeterministicResults)
{
    const auto &b = suites::spec2017Benchmark("505.mcf_r");
    const auto &machine = suites::skylakeMachine();
    SimulationConfig config;
    config.instructions = 30'000;
    config.warmup = 5'000;
    SimulationResult r1 = simulate(b.profile, machine, config);
    SimulationResult r2 = simulate(b.profile, machine, config);
    EXPECT_EQ(r1.counters.l1d_misses, r2.counters.l1d_misses);
    EXPECT_EQ(r1.counters.branch_mispredictions,
              r2.counters.branch_mispredictions);
    EXPECT_DOUBLE_EQ(r1.cpi(), r2.cpi());
}

TEST(SimulationTest, CountersConsistent)
{
    const auto &b = suites::spec2017Benchmark("502.gcc_r");
    SimulationConfig config;
    config.instructions = 40'000;
    config.warmup = 10'000;
    SimulationResult r =
        simulate(b.profile, suites::skylakeMachine(), config);
    const PerfCounters &c = r.counters;

    EXPECT_EQ(c.instructions, 40'000u);
    EXPECT_EQ(c.l1d_accesses, c.loads + c.stores);
    EXPECT_EQ(c.l1i_accesses, c.instructions);
    EXPECT_GE(c.branches, c.taken_branches);
    EXPECT_GE(c.branches, c.branch_mispredictions);
    EXPECT_GE(c.l1d_misses, c.l2d_misses);
    EXPECT_GE(c.l1i_misses, c.l2i_misses);
    EXPECT_LE(c.l3_misses, c.l3_accesses);
    EXPECT_EQ(c.dtlb_accesses, c.l1d_accesses);
    EXPECT_GE(c.dtlb_misses + c.itlb_misses, c.l2tlb_misses);
    EXPECT_GE(c.l2tlb_misses, c.page_walks);
    EXPECT_GT(r.cpi(), 0.0);
    EXPECT_GT(r.ipc(), 0.0);
    EXPECT_GT(r.power.total(), 0.0);
}

TEST(SimulationTest, PrewarmRemovesCompulsoryL3Misses)
{
    // gcc's working sets fit the Skylake LLC; without pre-warming the
    // short window charges cold misses at every level.
    const auto &b = suites::spec2017Benchmark("502.gcc_r");
    SimulationConfig warm;
    warm.instructions = 30'000;
    warm.warmup = 5'000;
    SimulationConfig cold = warm;
    cold.prewarm = false;

    SimulationResult warm_result =
        simulate(b.profile, suites::skylakeMachine(), warm);
    SimulationResult cold_result =
        simulate(b.profile, suites::skylakeMachine(), cold);
    EXPECT_LT(warm_result.counters.l3Mpki(),
              cold_result.counters.l3Mpki());
}

TEST(SimulationTest, SmallerCachesMissMore)
{
    const auto &b = suites::spec2017Benchmark("520.omnetpp_r");
    SimulationConfig config;
    config.instructions = 60'000;
    config.warmup = 10'000;
    config.apply_machine_transform = false;

    // SPARC T4 (16K L1D) versus Skylake (32K L1D).
    SimulationResult small_l1 = simulate(
        b.profile, suites::machineByShortName("sparc-t4"), config);
    SimulationResult big_l1 = simulate(
        b.profile, suites::machineByShortName("skylake"), config);
    EXPECT_GT(small_l1.counters.l1dMpki(), big_l1.counters.l1dMpki());
}

TEST(SimulationTest, BetterPredictorMispredictsLess)
{
    const auto &b = suites::spec2017Benchmark("541.leela_r");
    MachineConfig machine = suites::skylakeMachine();
    SimulationConfig config;
    config.instructions = 80'000;
    config.warmup = 20'000;
    config.apply_machine_transform = false;

    machine.predictor = PredictorKind::TageLite;
    double tage = simulate(b.profile, machine, config)
                      .counters.branchMpki();
    machine.predictor = PredictorKind::StaticTaken;
    double static_taken = simulate(b.profile, machine, config)
                              .counters.branchMpki();
    EXPECT_LT(tage, static_taken);
}

TEST(SimulationTest, TwoLevelMachineRuns)
{
    // Harpertown has no L3 and no second-level TLB.
    const auto &b = suites::spec2017Benchmark("505.mcf_r");
    SimulationConfig config;
    config.instructions = 30'000;
    config.warmup = 5'000;
    SimulationResult r = simulate(
        b.profile, suites::machineByShortName("harpertown"), config);
    EXPECT_GT(r.counters.l3_accesses, 0u);
    EXPECT_EQ(r.counters.l3_accesses, r.counters.l3_misses);
    EXPECT_EQ(r.counters.l2tlb_misses,
              r.counters.dtlb_misses + r.counters.itlb_misses);
}

} // namespace
} // namespace uarch
} // namespace speclens
