/**
 * @file
 * Parameterized geometry sweeps over the uarch substrate: TLB reach,
 * predictor capacity and latency models must respond monotonically to
 * their parameters, machine by machine.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "stats/rng.h"
#include "uarch/branch_predictor.h"
#include "uarch/cpi_model.h"
#include "uarch/tlb.h"

namespace speclens {
namespace uarch {
namespace {

// ---------------------------------------------------------------------
// TLB geometry sweep
// ---------------------------------------------------------------------

class TlbReachSweep
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(TlbReachSweep, MoreEntriesNeverMissMore)
{
    auto [entries, assoc] = GetParam();
    TlbHierarchyConfig small_config;
    small_config.dtlb = TlbConfig{"DTLB",
                                  static_cast<std::uint32_t>(entries),
                                  static_cast<std::uint32_t>(assoc),
                                  4096};
    small_config.l2tlb.reset();
    TlbHierarchyConfig big_config = small_config;
    big_config.dtlb.entries *= 4;

    TlbHierarchy small_tlb(small_config), big_tlb(big_config);
    stats::Rng rng(41);
    // Random pages over 4x the small TLB's reach.
    std::uint64_t pages = static_cast<std::uint64_t>(entries) * 4;
    for (int i = 0; i < 40000; ++i) {
        std::uint64_t addr = rng.below(pages) * 4096;
        small_tlb.accessData(addr);
        big_tlb.accessData(addr);
    }
    EXPECT_LE(big_tlb.dtlbMisses(), small_tlb.dtlbMisses());
    // The larger TLB covers the whole footprint: near-zero steady-state
    // misses.
    EXPECT_LT(static_cast<double>(big_tlb.dtlbMisses()) /
                  static_cast<double>(big_tlb.dtlbAccesses()),
              0.05);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, TlbReachSweep,
    ::testing::Combine(::testing::Values(16, 32, 64, 128),
                       ::testing::Values(4, 8)));

// ---------------------------------------------------------------------
// Predictor capacity sweep
// ---------------------------------------------------------------------

class PredictorCapacitySweep
    : public ::testing::TestWithParam<PredictorKind>
{
};

TEST_P(PredictorCapacitySweep, BiggerTablesNeverClearlyWorse)
{
    // Many distinct biased branches: small tables alias, large tables
    // separate them.
    auto small_predictor = makePredictor(GetParam(), 6);
    auto large_predictor = makePredictor(GetParam(), 14);

    stats::Rng rng(43);
    int small_misses = 0, large_misses = 0;
    const int n = 60000;
    for (int i = 0; i < n; ++i) {
        auto id = static_cast<std::uint32_t>(rng.below(2048));
        bool taken = (id % 2) == 0;
        if (small_predictor->predict(0, id) != taken)
            ++small_misses;
        small_predictor->update(0, id, taken);
        if (large_predictor->predict(0, id) != taken)
            ++large_misses;
        large_predictor->update(0, id, taken);
    }
    // Allow a little noise; the large predictor must not lose by more
    // than 1% absolute.
    EXPECT_LE(large_misses, small_misses + n / 100)
        << predictorKindName(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, PredictorCapacitySweep,
    ::testing::Values(PredictorKind::Bimodal, PredictorKind::Gshare,
                      PredictorKind::Tournament,
                      PredictorKind::Perceptron,
                      PredictorKind::TageLite),
    [](const auto &info) {
        std::string name = predictorKindName(info.param);
        for (char &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

// ---------------------------------------------------------------------
// Latency model sweep
// ---------------------------------------------------------------------

TEST(LatencySweepTest, CpiMonotoneInEveryLatency)
{
    PerfCounters counters;
    counters.instructions = 1'000'000;
    counters.branches = 100'000;
    counters.branch_mispredictions = 5'000;
    counters.l1d_misses = 30'000;
    counters.l2d_misses = 10'000;
    counters.l3_accesses = 10'000;
    counters.l3_misses = 2'000;
    counters.l1i_misses = 3'000;
    counters.dtlb_misses = 4'000;
    counters.l2tlb_misses = 1'000;
    counters.page_walks = 1'000;

    trace::ExecutionModel exec;
    LatencyModel base;
    double base_cpi = computeCpiStack(counters, base, exec).total();

    // Doubling any single latency must raise (or at worst not lower)
    // the total CPI.
    auto bump = [&](auto member) {
        LatencyModel changed = base;
        changed.*member *= 2.0;
        return computeCpiStack(counters, changed, exec).total();
    };
    EXPECT_GT(bump(&LatencyModel::l2_hit_cycles), base_cpi);
    EXPECT_GT(bump(&LatencyModel::l3_hit_cycles), base_cpi);
    EXPECT_GT(bump(&LatencyModel::memory_cycles), base_cpi);
    EXPECT_GT(bump(&LatencyModel::mispredict_penalty), base_cpi);
    EXPECT_GT(bump(&LatencyModel::icache_l2_penalty), base_cpi);
    EXPECT_GT(bump(&LatencyModel::l2tlb_hit_cycles), base_cpi);
    EXPECT_GT(bump(&LatencyModel::page_walk_cycles), base_cpi);
}

TEST(LatencySweepTest, MemoryLatencyDominatesForMemoryBoundCounters)
{
    PerfCounters counters;
    counters.instructions = 1'000'000;
    counters.l1d_misses = 100'000;
    counters.l2d_misses = 100'000;
    counters.l3_accesses = 100'000;
    counters.l3_misses = 100'000; // everything goes to DRAM

    trace::ExecutionModel exec;
    LatencyModel lat;
    CpiStack stack = computeCpiStack(counters, lat, exec);
    EXPECT_GT(stack.backend_memory, stack.backend_l2);
    EXPECT_GT(stack.backend_memory, stack.base);
}

} // namespace
} // namespace uarch
} // namespace speclens
