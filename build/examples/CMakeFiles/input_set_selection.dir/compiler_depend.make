# Empty compiler generated dependencies file for input_set_selection.
# This may be replaced when dependencies are built.
