file(REMOVE_RECURSE
  "CMakeFiles/input_set_selection.dir/input_set_selection.cpp.o"
  "CMakeFiles/input_set_selection.dir/input_set_selection.cpp.o.d"
  "input_set_selection"
  "input_set_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/input_set_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
