
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/subset_selection.cpp" "examples/CMakeFiles/subset_selection.dir/subset_selection.cpp.o" "gcc" "examples/CMakeFiles/subset_selection.dir/subset_selection.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/speclens_core.dir/DependInfo.cmake"
  "/root/repo/build/src/suites/CMakeFiles/speclens_suites.dir/DependInfo.cmake"
  "/root/repo/build/src/uarch/CMakeFiles/speclens_uarch.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/speclens_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/speclens_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
