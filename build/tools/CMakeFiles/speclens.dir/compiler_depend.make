# Empty compiler generated dependencies file for speclens.
# This may be replaced when dependencies are built.
