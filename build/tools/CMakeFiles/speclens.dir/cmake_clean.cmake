file(REMOVE_RECURSE
  "CMakeFiles/speclens.dir/speclens_cli.cpp.o"
  "CMakeFiles/speclens.dir/speclens_cli.cpp.o.d"
  "speclens"
  "speclens.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speclens.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
