# Empty compiler generated dependencies file for table6_random_subsets.
# This may be replaced when dependencies are built.
