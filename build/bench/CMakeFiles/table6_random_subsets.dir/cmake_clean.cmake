file(REMOVE_RECURSE
  "CMakeFiles/table6_random_subsets.dir/table6_random_subsets.cpp.o"
  "CMakeFiles/table6_random_subsets.dir/table6_random_subsets.cpp.o.d"
  "table6_random_subsets"
  "table6_random_subsets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_random_subsets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
