# Empty dependencies file for fig7_input_sets_int.
# This may be replaced when dependencies are built.
