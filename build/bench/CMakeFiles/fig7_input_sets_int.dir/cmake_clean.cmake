file(REMOVE_RECURSE
  "CMakeFiles/fig7_input_sets_int.dir/fig7_input_sets_int.cpp.o"
  "CMakeFiles/fig7_input_sets_int.dir/fig7_input_sets_int.cpp.o.d"
  "fig7_input_sets_int"
  "fig7_input_sets_int.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_input_sets_int.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
