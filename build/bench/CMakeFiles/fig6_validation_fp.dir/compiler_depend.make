# Empty compiler generated dependencies file for fig6_validation_fp.
# This may be replaced when dependencies are built.
