file(REMOVE_RECURSE
  "CMakeFiles/fig6_validation_fp.dir/fig6_validation_fp.cpp.o"
  "CMakeFiles/fig6_validation_fp.dir/fig6_validation_fp.cpp.o.d"
  "fig6_validation_fp"
  "fig6_validation_fp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_validation_fp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
