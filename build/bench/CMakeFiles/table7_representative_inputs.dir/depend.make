# Empty dependencies file for table7_representative_inputs.
# This may be replaced when dependencies are built.
