file(REMOVE_RECURSE
  "CMakeFiles/table7_representative_inputs.dir/table7_representative_inputs.cpp.o"
  "CMakeFiles/table7_representative_inputs.dir/table7_representative_inputs.cpp.o.d"
  "table7_representative_inputs"
  "table7_representative_inputs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_representative_inputs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
