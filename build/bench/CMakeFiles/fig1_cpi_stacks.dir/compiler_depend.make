# Empty compiler generated dependencies file for fig1_cpi_stacks.
# This may be replaced when dependencies are built.
