file(REMOVE_RECURSE
  "CMakeFiles/fig1_cpi_stacks.dir/fig1_cpi_stacks.cpp.o"
  "CMakeFiles/fig1_cpi_stacks.dir/fig1_cpi_stacks.cpp.o.d"
  "fig1_cpi_stacks"
  "fig1_cpi_stacks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_cpi_stacks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
