file(REMOVE_RECURSE
  "CMakeFiles/fig8_input_sets_fp.dir/fig8_input_sets_fp.cpp.o"
  "CMakeFiles/fig8_input_sets_fp.dir/fig8_input_sets_fp.cpp.o.d"
  "fig8_input_sets_fp"
  "fig8_input_sets_fp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_input_sets_fp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
