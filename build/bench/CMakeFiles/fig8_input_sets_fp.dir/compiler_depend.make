# Empty compiler generated dependencies file for fig8_input_sets_fp.
# This may be replaced when dependencies are built.
