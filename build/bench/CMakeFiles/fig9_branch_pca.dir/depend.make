# Empty dependencies file for fig9_branch_pca.
# This may be replaced when dependencies are built.
