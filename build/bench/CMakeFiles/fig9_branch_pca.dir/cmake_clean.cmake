file(REMOVE_RECURSE
  "CMakeFiles/fig9_branch_pca.dir/fig9_branch_pca.cpp.o"
  "CMakeFiles/fig9_branch_pca.dir/fig9_branch_pca.cpp.o.d"
  "fig9_branch_pca"
  "fig9_branch_pca.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_branch_pca.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
