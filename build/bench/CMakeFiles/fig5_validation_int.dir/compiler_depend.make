# Empty compiler generated dependencies file for fig5_validation_int.
# This may be replaced when dependencies are built.
