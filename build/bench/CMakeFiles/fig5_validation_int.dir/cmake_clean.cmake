file(REMOVE_RECURSE
  "CMakeFiles/fig5_validation_int.dir/fig5_validation_int.cpp.o"
  "CMakeFiles/fig5_validation_int.dir/fig5_validation_int.cpp.o.d"
  "fig5_validation_int"
  "fig5_validation_int.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_validation_int.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
