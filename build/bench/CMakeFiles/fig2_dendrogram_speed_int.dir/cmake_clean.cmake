file(REMOVE_RECURSE
  "CMakeFiles/fig2_dendrogram_speed_int.dir/fig2_dendrogram_speed_int.cpp.o"
  "CMakeFiles/fig2_dendrogram_speed_int.dir/fig2_dendrogram_speed_int.cpp.o.d"
  "fig2_dendrogram_speed_int"
  "fig2_dendrogram_speed_int.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_dendrogram_speed_int.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
