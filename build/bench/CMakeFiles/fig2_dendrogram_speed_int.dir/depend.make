# Empty dependencies file for fig2_dendrogram_speed_int.
# This may be replaced when dependencies are built.
