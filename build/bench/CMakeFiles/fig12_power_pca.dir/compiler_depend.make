# Empty compiler generated dependencies file for fig12_power_pca.
# This may be replaced when dependencies are built.
