file(REMOVE_RECURSE
  "CMakeFiles/fig12_power_pca.dir/fig12_power_pca.cpp.o"
  "CMakeFiles/fig12_power_pca.dir/fig12_power_pca.cpp.o.d"
  "fig12_power_pca"
  "fig12_power_pca.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_power_pca.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
