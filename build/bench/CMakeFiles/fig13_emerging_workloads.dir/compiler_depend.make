# Empty compiler generated dependencies file for fig13_emerging_workloads.
# This may be replaced when dependencies are built.
