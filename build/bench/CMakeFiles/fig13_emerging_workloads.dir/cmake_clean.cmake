file(REMOVE_RECURSE
  "CMakeFiles/fig13_emerging_workloads.dir/fig13_emerging_workloads.cpp.o"
  "CMakeFiles/fig13_emerging_workloads.dir/fig13_emerging_workloads.cpp.o.d"
  "fig13_emerging_workloads"
  "fig13_emerging_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_emerging_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
