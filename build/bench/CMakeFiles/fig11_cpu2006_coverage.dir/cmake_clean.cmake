file(REMOVE_RECURSE
  "CMakeFiles/fig11_cpu2006_coverage.dir/fig11_cpu2006_coverage.cpp.o"
  "CMakeFiles/fig11_cpu2006_coverage.dir/fig11_cpu2006_coverage.cpp.o.d"
  "fig11_cpu2006_coverage"
  "fig11_cpu2006_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_cpu2006_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
