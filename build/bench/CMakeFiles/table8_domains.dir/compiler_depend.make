# Empty compiler generated dependencies file for table8_domains.
# This may be replaced when dependencies are built.
