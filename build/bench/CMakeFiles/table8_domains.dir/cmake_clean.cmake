file(REMOVE_RECURSE
  "CMakeFiles/table8_domains.dir/table8_domains.cpp.o"
  "CMakeFiles/table8_domains.dir/table8_domains.cpp.o.d"
  "table8_domains"
  "table8_domains.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table8_domains.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
