file(REMOVE_RECURSE
  "CMakeFiles/extension_simpoints.dir/extension_simpoints.cpp.o"
  "CMakeFiles/extension_simpoints.dir/extension_simpoints.cpp.o.d"
  "extension_simpoints"
  "extension_simpoints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_simpoints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
