# Empty dependencies file for extension_simpoints.
# This may be replaced when dependencies are built.
