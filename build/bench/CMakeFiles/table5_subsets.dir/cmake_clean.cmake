file(REMOVE_RECURSE
  "CMakeFiles/table5_subsets.dir/table5_subsets.cpp.o"
  "CMakeFiles/table5_subsets.dir/table5_subsets.cpp.o.d"
  "table5_subsets"
  "table5_subsets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_subsets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
