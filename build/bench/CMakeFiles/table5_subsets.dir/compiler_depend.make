# Empty compiler generated dependencies file for table5_subsets.
# This may be replaced when dependencies are built.
