file(REMOVE_RECURSE
  "CMakeFiles/fig4_dendrogram_rate_fp.dir/fig4_dendrogram_rate_fp.cpp.o"
  "CMakeFiles/fig4_dendrogram_rate_fp.dir/fig4_dendrogram_rate_fp.cpp.o.d"
  "fig4_dendrogram_rate_fp"
  "fig4_dendrogram_rate_fp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_dendrogram_rate_fp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
