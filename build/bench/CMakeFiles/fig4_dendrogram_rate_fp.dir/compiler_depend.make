# Empty compiler generated dependencies file for fig4_dendrogram_rate_fp.
# This may be replaced when dependencies are built.
