# Empty dependencies file for table10_rate_speed.
# This may be replaced when dependencies are built.
