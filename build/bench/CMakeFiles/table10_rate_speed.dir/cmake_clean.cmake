file(REMOVE_RECURSE
  "CMakeFiles/table10_rate_speed.dir/table10_rate_speed.cpp.o"
  "CMakeFiles/table10_rate_speed.dir/table10_rate_speed.cpp.o.d"
  "table10_rate_speed"
  "table10_rate_speed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table10_rate_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
