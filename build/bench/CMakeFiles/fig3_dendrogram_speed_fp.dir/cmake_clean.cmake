file(REMOVE_RECURSE
  "CMakeFiles/fig3_dendrogram_speed_fp.dir/fig3_dendrogram_speed_fp.cpp.o"
  "CMakeFiles/fig3_dendrogram_speed_fp.dir/fig3_dendrogram_speed_fp.cpp.o.d"
  "fig3_dendrogram_speed_fp"
  "fig3_dendrogram_speed_fp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_dendrogram_speed_fp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
