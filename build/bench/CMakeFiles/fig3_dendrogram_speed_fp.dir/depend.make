# Empty dependencies file for fig3_dendrogram_speed_fp.
# This may be replaced when dependencies are built.
