file(REMOVE_RECURSE
  "CMakeFiles/table9_sensitivity.dir/table9_sensitivity.cpp.o"
  "CMakeFiles/table9_sensitivity.dir/table9_sensitivity.cpp.o.d"
  "table9_sensitivity"
  "table9_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table9_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
