# Empty compiler generated dependencies file for table9_sensitivity.
# This may be replaced when dependencies are built.
