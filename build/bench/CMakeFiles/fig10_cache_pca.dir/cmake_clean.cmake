file(REMOVE_RECURSE
  "CMakeFiles/fig10_cache_pca.dir/fig10_cache_pca.cpp.o"
  "CMakeFiles/fig10_cache_pca.dir/fig10_cache_pca.cpp.o.d"
  "fig10_cache_pca"
  "fig10_cache_pca.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_cache_pca.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
