# Empty compiler generated dependencies file for fig10_cache_pca.
# This may be replaced when dependencies are built.
