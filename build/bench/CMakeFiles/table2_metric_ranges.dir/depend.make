# Empty dependencies file for table2_metric_ranges.
# This may be replaced when dependencies are built.
