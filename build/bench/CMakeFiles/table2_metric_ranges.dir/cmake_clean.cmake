file(REMOVE_RECURSE
  "CMakeFiles/table2_metric_ranges.dir/table2_metric_ranges.cpp.o"
  "CMakeFiles/table2_metric_ranges.dir/table2_metric_ranges.cpp.o.d"
  "table2_metric_ranges"
  "table2_metric_ranges.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_metric_ranges.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
