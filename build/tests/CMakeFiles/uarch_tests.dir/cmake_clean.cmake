file(REMOVE_RECURSE
  "CMakeFiles/uarch_tests.dir/uarch/branch_predictor_test.cpp.o"
  "CMakeFiles/uarch_tests.dir/uarch/branch_predictor_test.cpp.o.d"
  "CMakeFiles/uarch_tests.dir/uarch/cache_test.cpp.o"
  "CMakeFiles/uarch_tests.dir/uarch/cache_test.cpp.o.d"
  "CMakeFiles/uarch_tests.dir/uarch/cpi_power_test.cpp.o"
  "CMakeFiles/uarch_tests.dir/uarch/cpi_power_test.cpp.o.d"
  "CMakeFiles/uarch_tests.dir/uarch/geometry_sweep_test.cpp.o"
  "CMakeFiles/uarch_tests.dir/uarch/geometry_sweep_test.cpp.o.d"
  "CMakeFiles/uarch_tests.dir/uarch/prefetcher_test.cpp.o"
  "CMakeFiles/uarch_tests.dir/uarch/prefetcher_test.cpp.o.d"
  "CMakeFiles/uarch_tests.dir/uarch/simulation_test.cpp.o"
  "CMakeFiles/uarch_tests.dir/uarch/simulation_test.cpp.o.d"
  "CMakeFiles/uarch_tests.dir/uarch/tlb_test.cpp.o"
  "CMakeFiles/uarch_tests.dir/uarch/tlb_test.cpp.o.d"
  "uarch_tests"
  "uarch_tests.pdb"
  "uarch_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uarch_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
