# Empty compiler generated dependencies file for suites_tests.
# This may be replaced when dependencies are built.
