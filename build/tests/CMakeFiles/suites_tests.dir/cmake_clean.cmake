file(REMOVE_RECURSE
  "CMakeFiles/suites_tests.dir/suites/preset_property_test.cpp.o"
  "CMakeFiles/suites_tests.dir/suites/preset_property_test.cpp.o.d"
  "CMakeFiles/suites_tests.dir/suites/suites_test.cpp.o"
  "CMakeFiles/suites_tests.dir/suites/suites_test.cpp.o.d"
  "suites_tests"
  "suites_tests.pdb"
  "suites_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/suites_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
