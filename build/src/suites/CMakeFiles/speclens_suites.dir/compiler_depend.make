# Empty compiler generated dependencies file for speclens_suites.
# This may be replaced when dependencies are built.
