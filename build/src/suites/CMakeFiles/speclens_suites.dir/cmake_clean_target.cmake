file(REMOVE_RECURSE
  "libspeclens_suites.a"
)
