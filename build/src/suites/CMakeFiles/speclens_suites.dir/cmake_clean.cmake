file(REMOVE_RECURSE
  "CMakeFiles/speclens_suites.dir/benchmark_info.cpp.o"
  "CMakeFiles/speclens_suites.dir/benchmark_info.cpp.o.d"
  "CMakeFiles/speclens_suites.dir/emerging.cpp.o"
  "CMakeFiles/speclens_suites.dir/emerging.cpp.o.d"
  "CMakeFiles/speclens_suites.dir/input_sets.cpp.o"
  "CMakeFiles/speclens_suites.dir/input_sets.cpp.o.d"
  "CMakeFiles/speclens_suites.dir/machines.cpp.o"
  "CMakeFiles/speclens_suites.dir/machines.cpp.o.d"
  "CMakeFiles/speclens_suites.dir/profile_presets.cpp.o"
  "CMakeFiles/speclens_suites.dir/profile_presets.cpp.o.d"
  "CMakeFiles/speclens_suites.dir/score_database.cpp.o"
  "CMakeFiles/speclens_suites.dir/score_database.cpp.o.d"
  "CMakeFiles/speclens_suites.dir/spec2006.cpp.o"
  "CMakeFiles/speclens_suites.dir/spec2006.cpp.o.d"
  "CMakeFiles/speclens_suites.dir/spec2017.cpp.o"
  "CMakeFiles/speclens_suites.dir/spec2017.cpp.o.d"
  "libspeclens_suites.a"
  "libspeclens_suites.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speclens_suites.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
