
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/suites/benchmark_info.cpp" "src/suites/CMakeFiles/speclens_suites.dir/benchmark_info.cpp.o" "gcc" "src/suites/CMakeFiles/speclens_suites.dir/benchmark_info.cpp.o.d"
  "/root/repo/src/suites/emerging.cpp" "src/suites/CMakeFiles/speclens_suites.dir/emerging.cpp.o" "gcc" "src/suites/CMakeFiles/speclens_suites.dir/emerging.cpp.o.d"
  "/root/repo/src/suites/input_sets.cpp" "src/suites/CMakeFiles/speclens_suites.dir/input_sets.cpp.o" "gcc" "src/suites/CMakeFiles/speclens_suites.dir/input_sets.cpp.o.d"
  "/root/repo/src/suites/machines.cpp" "src/suites/CMakeFiles/speclens_suites.dir/machines.cpp.o" "gcc" "src/suites/CMakeFiles/speclens_suites.dir/machines.cpp.o.d"
  "/root/repo/src/suites/profile_presets.cpp" "src/suites/CMakeFiles/speclens_suites.dir/profile_presets.cpp.o" "gcc" "src/suites/CMakeFiles/speclens_suites.dir/profile_presets.cpp.o.d"
  "/root/repo/src/suites/score_database.cpp" "src/suites/CMakeFiles/speclens_suites.dir/score_database.cpp.o" "gcc" "src/suites/CMakeFiles/speclens_suites.dir/score_database.cpp.o.d"
  "/root/repo/src/suites/spec2006.cpp" "src/suites/CMakeFiles/speclens_suites.dir/spec2006.cpp.o" "gcc" "src/suites/CMakeFiles/speclens_suites.dir/spec2006.cpp.o.d"
  "/root/repo/src/suites/spec2017.cpp" "src/suites/CMakeFiles/speclens_suites.dir/spec2017.cpp.o" "gcc" "src/suites/CMakeFiles/speclens_suites.dir/spec2017.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/speclens_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/uarch/CMakeFiles/speclens_uarch.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/speclens_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
