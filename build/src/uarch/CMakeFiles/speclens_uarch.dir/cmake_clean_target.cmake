file(REMOVE_RECURSE
  "libspeclens_uarch.a"
)
