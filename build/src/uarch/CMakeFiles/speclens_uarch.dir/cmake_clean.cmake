file(REMOVE_RECURSE
  "CMakeFiles/speclens_uarch.dir/branch_predictor.cpp.o"
  "CMakeFiles/speclens_uarch.dir/branch_predictor.cpp.o.d"
  "CMakeFiles/speclens_uarch.dir/cache.cpp.o"
  "CMakeFiles/speclens_uarch.dir/cache.cpp.o.d"
  "CMakeFiles/speclens_uarch.dir/cache_hierarchy.cpp.o"
  "CMakeFiles/speclens_uarch.dir/cache_hierarchy.cpp.o.d"
  "CMakeFiles/speclens_uarch.dir/cpi_model.cpp.o"
  "CMakeFiles/speclens_uarch.dir/cpi_model.cpp.o.d"
  "CMakeFiles/speclens_uarch.dir/machine.cpp.o"
  "CMakeFiles/speclens_uarch.dir/machine.cpp.o.d"
  "CMakeFiles/speclens_uarch.dir/perf_counters.cpp.o"
  "CMakeFiles/speclens_uarch.dir/perf_counters.cpp.o.d"
  "CMakeFiles/speclens_uarch.dir/power_model.cpp.o"
  "CMakeFiles/speclens_uarch.dir/power_model.cpp.o.d"
  "CMakeFiles/speclens_uarch.dir/simulation.cpp.o"
  "CMakeFiles/speclens_uarch.dir/simulation.cpp.o.d"
  "CMakeFiles/speclens_uarch.dir/tlb.cpp.o"
  "CMakeFiles/speclens_uarch.dir/tlb.cpp.o.d"
  "libspeclens_uarch.a"
  "libspeclens_uarch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speclens_uarch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
