
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/uarch/branch_predictor.cpp" "src/uarch/CMakeFiles/speclens_uarch.dir/branch_predictor.cpp.o" "gcc" "src/uarch/CMakeFiles/speclens_uarch.dir/branch_predictor.cpp.o.d"
  "/root/repo/src/uarch/cache.cpp" "src/uarch/CMakeFiles/speclens_uarch.dir/cache.cpp.o" "gcc" "src/uarch/CMakeFiles/speclens_uarch.dir/cache.cpp.o.d"
  "/root/repo/src/uarch/cache_hierarchy.cpp" "src/uarch/CMakeFiles/speclens_uarch.dir/cache_hierarchy.cpp.o" "gcc" "src/uarch/CMakeFiles/speclens_uarch.dir/cache_hierarchy.cpp.o.d"
  "/root/repo/src/uarch/cpi_model.cpp" "src/uarch/CMakeFiles/speclens_uarch.dir/cpi_model.cpp.o" "gcc" "src/uarch/CMakeFiles/speclens_uarch.dir/cpi_model.cpp.o.d"
  "/root/repo/src/uarch/machine.cpp" "src/uarch/CMakeFiles/speclens_uarch.dir/machine.cpp.o" "gcc" "src/uarch/CMakeFiles/speclens_uarch.dir/machine.cpp.o.d"
  "/root/repo/src/uarch/perf_counters.cpp" "src/uarch/CMakeFiles/speclens_uarch.dir/perf_counters.cpp.o" "gcc" "src/uarch/CMakeFiles/speclens_uarch.dir/perf_counters.cpp.o.d"
  "/root/repo/src/uarch/power_model.cpp" "src/uarch/CMakeFiles/speclens_uarch.dir/power_model.cpp.o" "gcc" "src/uarch/CMakeFiles/speclens_uarch.dir/power_model.cpp.o.d"
  "/root/repo/src/uarch/simulation.cpp" "src/uarch/CMakeFiles/speclens_uarch.dir/simulation.cpp.o" "gcc" "src/uarch/CMakeFiles/speclens_uarch.dir/simulation.cpp.o.d"
  "/root/repo/src/uarch/tlb.cpp" "src/uarch/CMakeFiles/speclens_uarch.dir/tlb.cpp.o" "gcc" "src/uarch/CMakeFiles/speclens_uarch.dir/tlb.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/speclens_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/speclens_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
