# Empty dependencies file for speclens_uarch.
# This may be replaced when dependencies are built.
