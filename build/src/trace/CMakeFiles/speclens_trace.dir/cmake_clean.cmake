file(REMOVE_RECURSE
  "CMakeFiles/speclens_trace.dir/address_stream.cpp.o"
  "CMakeFiles/speclens_trace.dir/address_stream.cpp.o.d"
  "CMakeFiles/speclens_trace.dir/branch_stream.cpp.o"
  "CMakeFiles/speclens_trace.dir/branch_stream.cpp.o.d"
  "CMakeFiles/speclens_trace.dir/instruction.cpp.o"
  "CMakeFiles/speclens_trace.dir/instruction.cpp.o.d"
  "CMakeFiles/speclens_trace.dir/phased_workload.cpp.o"
  "CMakeFiles/speclens_trace.dir/phased_workload.cpp.o.d"
  "CMakeFiles/speclens_trace.dir/trace_generator.cpp.o"
  "CMakeFiles/speclens_trace.dir/trace_generator.cpp.o.d"
  "CMakeFiles/speclens_trace.dir/workload_profile.cpp.o"
  "CMakeFiles/speclens_trace.dir/workload_profile.cpp.o.d"
  "libspeclens_trace.a"
  "libspeclens_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speclens_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
