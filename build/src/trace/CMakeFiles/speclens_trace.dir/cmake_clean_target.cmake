file(REMOVE_RECURSE
  "libspeclens_trace.a"
)
