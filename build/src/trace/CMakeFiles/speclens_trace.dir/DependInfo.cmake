
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/address_stream.cpp" "src/trace/CMakeFiles/speclens_trace.dir/address_stream.cpp.o" "gcc" "src/trace/CMakeFiles/speclens_trace.dir/address_stream.cpp.o.d"
  "/root/repo/src/trace/branch_stream.cpp" "src/trace/CMakeFiles/speclens_trace.dir/branch_stream.cpp.o" "gcc" "src/trace/CMakeFiles/speclens_trace.dir/branch_stream.cpp.o.d"
  "/root/repo/src/trace/instruction.cpp" "src/trace/CMakeFiles/speclens_trace.dir/instruction.cpp.o" "gcc" "src/trace/CMakeFiles/speclens_trace.dir/instruction.cpp.o.d"
  "/root/repo/src/trace/phased_workload.cpp" "src/trace/CMakeFiles/speclens_trace.dir/phased_workload.cpp.o" "gcc" "src/trace/CMakeFiles/speclens_trace.dir/phased_workload.cpp.o.d"
  "/root/repo/src/trace/trace_generator.cpp" "src/trace/CMakeFiles/speclens_trace.dir/trace_generator.cpp.o" "gcc" "src/trace/CMakeFiles/speclens_trace.dir/trace_generator.cpp.o.d"
  "/root/repo/src/trace/workload_profile.cpp" "src/trace/CMakeFiles/speclens_trace.dir/workload_profile.cpp.o" "gcc" "src/trace/CMakeFiles/speclens_trace.dir/workload_profile.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/speclens_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
