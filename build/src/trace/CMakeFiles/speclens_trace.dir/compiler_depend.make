# Empty compiler generated dependencies file for speclens_trace.
# This may be replaced when dependencies are built.
