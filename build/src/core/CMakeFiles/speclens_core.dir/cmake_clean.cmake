file(REMOVE_RECURSE
  "CMakeFiles/speclens_core.dir/balance.cpp.o"
  "CMakeFiles/speclens_core.dir/balance.cpp.o.d"
  "CMakeFiles/speclens_core.dir/characterization.cpp.o"
  "CMakeFiles/speclens_core.dir/characterization.cpp.o.d"
  "CMakeFiles/speclens_core.dir/csv_export.cpp.o"
  "CMakeFiles/speclens_core.dir/csv_export.cpp.o.d"
  "CMakeFiles/speclens_core.dir/input_set_analysis.cpp.o"
  "CMakeFiles/speclens_core.dir/input_set_analysis.cpp.o.d"
  "CMakeFiles/speclens_core.dir/metrics.cpp.o"
  "CMakeFiles/speclens_core.dir/metrics.cpp.o.d"
  "CMakeFiles/speclens_core.dir/phase_analysis.cpp.o"
  "CMakeFiles/speclens_core.dir/phase_analysis.cpp.o.d"
  "CMakeFiles/speclens_core.dir/rate_speed.cpp.o"
  "CMakeFiles/speclens_core.dir/rate_speed.cpp.o.d"
  "CMakeFiles/speclens_core.dir/report.cpp.o"
  "CMakeFiles/speclens_core.dir/report.cpp.o.d"
  "CMakeFiles/speclens_core.dir/sensitivity.cpp.o"
  "CMakeFiles/speclens_core.dir/sensitivity.cpp.o.d"
  "CMakeFiles/speclens_core.dir/similarity.cpp.o"
  "CMakeFiles/speclens_core.dir/similarity.cpp.o.d"
  "CMakeFiles/speclens_core.dir/stability.cpp.o"
  "CMakeFiles/speclens_core.dir/stability.cpp.o.d"
  "CMakeFiles/speclens_core.dir/subsetting.cpp.o"
  "CMakeFiles/speclens_core.dir/subsetting.cpp.o.d"
  "CMakeFiles/speclens_core.dir/suite_report.cpp.o"
  "CMakeFiles/speclens_core.dir/suite_report.cpp.o.d"
  "CMakeFiles/speclens_core.dir/validation.cpp.o"
  "CMakeFiles/speclens_core.dir/validation.cpp.o.d"
  "libspeclens_core.a"
  "libspeclens_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speclens_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
