
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/balance.cpp" "src/core/CMakeFiles/speclens_core.dir/balance.cpp.o" "gcc" "src/core/CMakeFiles/speclens_core.dir/balance.cpp.o.d"
  "/root/repo/src/core/characterization.cpp" "src/core/CMakeFiles/speclens_core.dir/characterization.cpp.o" "gcc" "src/core/CMakeFiles/speclens_core.dir/characterization.cpp.o.d"
  "/root/repo/src/core/csv_export.cpp" "src/core/CMakeFiles/speclens_core.dir/csv_export.cpp.o" "gcc" "src/core/CMakeFiles/speclens_core.dir/csv_export.cpp.o.d"
  "/root/repo/src/core/input_set_analysis.cpp" "src/core/CMakeFiles/speclens_core.dir/input_set_analysis.cpp.o" "gcc" "src/core/CMakeFiles/speclens_core.dir/input_set_analysis.cpp.o.d"
  "/root/repo/src/core/metrics.cpp" "src/core/CMakeFiles/speclens_core.dir/metrics.cpp.o" "gcc" "src/core/CMakeFiles/speclens_core.dir/metrics.cpp.o.d"
  "/root/repo/src/core/phase_analysis.cpp" "src/core/CMakeFiles/speclens_core.dir/phase_analysis.cpp.o" "gcc" "src/core/CMakeFiles/speclens_core.dir/phase_analysis.cpp.o.d"
  "/root/repo/src/core/rate_speed.cpp" "src/core/CMakeFiles/speclens_core.dir/rate_speed.cpp.o" "gcc" "src/core/CMakeFiles/speclens_core.dir/rate_speed.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/core/CMakeFiles/speclens_core.dir/report.cpp.o" "gcc" "src/core/CMakeFiles/speclens_core.dir/report.cpp.o.d"
  "/root/repo/src/core/sensitivity.cpp" "src/core/CMakeFiles/speclens_core.dir/sensitivity.cpp.o" "gcc" "src/core/CMakeFiles/speclens_core.dir/sensitivity.cpp.o.d"
  "/root/repo/src/core/similarity.cpp" "src/core/CMakeFiles/speclens_core.dir/similarity.cpp.o" "gcc" "src/core/CMakeFiles/speclens_core.dir/similarity.cpp.o.d"
  "/root/repo/src/core/stability.cpp" "src/core/CMakeFiles/speclens_core.dir/stability.cpp.o" "gcc" "src/core/CMakeFiles/speclens_core.dir/stability.cpp.o.d"
  "/root/repo/src/core/subsetting.cpp" "src/core/CMakeFiles/speclens_core.dir/subsetting.cpp.o" "gcc" "src/core/CMakeFiles/speclens_core.dir/subsetting.cpp.o.d"
  "/root/repo/src/core/suite_report.cpp" "src/core/CMakeFiles/speclens_core.dir/suite_report.cpp.o" "gcc" "src/core/CMakeFiles/speclens_core.dir/suite_report.cpp.o.d"
  "/root/repo/src/core/validation.cpp" "src/core/CMakeFiles/speclens_core.dir/validation.cpp.o" "gcc" "src/core/CMakeFiles/speclens_core.dir/validation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/speclens_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/suites/CMakeFiles/speclens_suites.dir/DependInfo.cmake"
  "/root/repo/build/src/uarch/CMakeFiles/speclens_uarch.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/speclens_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
