# Empty compiler generated dependencies file for speclens_core.
# This may be replaced when dependencies are built.
