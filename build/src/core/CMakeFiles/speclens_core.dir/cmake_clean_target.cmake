file(REMOVE_RECURSE
  "libspeclens_core.a"
)
