
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/clustering.cpp" "src/stats/CMakeFiles/speclens_stats.dir/clustering.cpp.o" "gcc" "src/stats/CMakeFiles/speclens_stats.dir/clustering.cpp.o.d"
  "/root/repo/src/stats/descriptive.cpp" "src/stats/CMakeFiles/speclens_stats.dir/descriptive.cpp.o" "gcc" "src/stats/CMakeFiles/speclens_stats.dir/descriptive.cpp.o.d"
  "/root/repo/src/stats/distance.cpp" "src/stats/CMakeFiles/speclens_stats.dir/distance.cpp.o" "gcc" "src/stats/CMakeFiles/speclens_stats.dir/distance.cpp.o.d"
  "/root/repo/src/stats/eigen.cpp" "src/stats/CMakeFiles/speclens_stats.dir/eigen.cpp.o" "gcc" "src/stats/CMakeFiles/speclens_stats.dir/eigen.cpp.o.d"
  "/root/repo/src/stats/geometry.cpp" "src/stats/CMakeFiles/speclens_stats.dir/geometry.cpp.o" "gcc" "src/stats/CMakeFiles/speclens_stats.dir/geometry.cpp.o.d"
  "/root/repo/src/stats/kmeans.cpp" "src/stats/CMakeFiles/speclens_stats.dir/kmeans.cpp.o" "gcc" "src/stats/CMakeFiles/speclens_stats.dir/kmeans.cpp.o.d"
  "/root/repo/src/stats/matrix.cpp" "src/stats/CMakeFiles/speclens_stats.dir/matrix.cpp.o" "gcc" "src/stats/CMakeFiles/speclens_stats.dir/matrix.cpp.o.d"
  "/root/repo/src/stats/normalize.cpp" "src/stats/CMakeFiles/speclens_stats.dir/normalize.cpp.o" "gcc" "src/stats/CMakeFiles/speclens_stats.dir/normalize.cpp.o.d"
  "/root/repo/src/stats/pca.cpp" "src/stats/CMakeFiles/speclens_stats.dir/pca.cpp.o" "gcc" "src/stats/CMakeFiles/speclens_stats.dir/pca.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
