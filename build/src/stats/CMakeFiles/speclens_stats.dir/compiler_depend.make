# Empty compiler generated dependencies file for speclens_stats.
# This may be replaced when dependencies are built.
