file(REMOVE_RECURSE
  "CMakeFiles/speclens_stats.dir/clustering.cpp.o"
  "CMakeFiles/speclens_stats.dir/clustering.cpp.o.d"
  "CMakeFiles/speclens_stats.dir/descriptive.cpp.o"
  "CMakeFiles/speclens_stats.dir/descriptive.cpp.o.d"
  "CMakeFiles/speclens_stats.dir/distance.cpp.o"
  "CMakeFiles/speclens_stats.dir/distance.cpp.o.d"
  "CMakeFiles/speclens_stats.dir/eigen.cpp.o"
  "CMakeFiles/speclens_stats.dir/eigen.cpp.o.d"
  "CMakeFiles/speclens_stats.dir/geometry.cpp.o"
  "CMakeFiles/speclens_stats.dir/geometry.cpp.o.d"
  "CMakeFiles/speclens_stats.dir/kmeans.cpp.o"
  "CMakeFiles/speclens_stats.dir/kmeans.cpp.o.d"
  "CMakeFiles/speclens_stats.dir/matrix.cpp.o"
  "CMakeFiles/speclens_stats.dir/matrix.cpp.o.d"
  "CMakeFiles/speclens_stats.dir/normalize.cpp.o"
  "CMakeFiles/speclens_stats.dir/normalize.cpp.o.d"
  "CMakeFiles/speclens_stats.dir/pca.cpp.o"
  "CMakeFiles/speclens_stats.dir/pca.cpp.o.d"
  "libspeclens_stats.a"
  "libspeclens_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speclens_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
