file(REMOVE_RECURSE
  "libspeclens_stats.a"
)
