include("${CMAKE_CURRENT_LIST_DIR}/speclensTargets.cmake")
