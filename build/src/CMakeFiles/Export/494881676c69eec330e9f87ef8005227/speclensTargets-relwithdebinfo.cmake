#----------------------------------------------------------------
# Generated CMake target import file for configuration "RelWithDebInfo".
#----------------------------------------------------------------

# Commands may need to know the format version.
set(CMAKE_IMPORT_FILE_VERSION 1)

# Import target "speclens::speclens_stats" for configuration "RelWithDebInfo"
set_property(TARGET speclens::speclens_stats APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(speclens::speclens_stats PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libspeclens_stats.a"
  )

list(APPEND _cmake_import_check_targets speclens::speclens_stats )
list(APPEND _cmake_import_check_files_for_speclens::speclens_stats "${_IMPORT_PREFIX}/lib/libspeclens_stats.a" )

# Import target "speclens::speclens_trace" for configuration "RelWithDebInfo"
set_property(TARGET speclens::speclens_trace APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(speclens::speclens_trace PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libspeclens_trace.a"
  )

list(APPEND _cmake_import_check_targets speclens::speclens_trace )
list(APPEND _cmake_import_check_files_for_speclens::speclens_trace "${_IMPORT_PREFIX}/lib/libspeclens_trace.a" )

# Import target "speclens::speclens_uarch" for configuration "RelWithDebInfo"
set_property(TARGET speclens::speclens_uarch APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(speclens::speclens_uarch PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libspeclens_uarch.a"
  )

list(APPEND _cmake_import_check_targets speclens::speclens_uarch )
list(APPEND _cmake_import_check_files_for_speclens::speclens_uarch "${_IMPORT_PREFIX}/lib/libspeclens_uarch.a" )

# Import target "speclens::speclens_suites" for configuration "RelWithDebInfo"
set_property(TARGET speclens::speclens_suites APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(speclens::speclens_suites PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libspeclens_suites.a"
  )

list(APPEND _cmake_import_check_targets speclens::speclens_suites )
list(APPEND _cmake_import_check_files_for_speclens::speclens_suites "${_IMPORT_PREFIX}/lib/libspeclens_suites.a" )

# Import target "speclens::speclens_core" for configuration "RelWithDebInfo"
set_property(TARGET speclens::speclens_core APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(speclens::speclens_core PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libspeclens_core.a"
  )

list(APPEND _cmake_import_check_targets speclens::speclens_core )
list(APPEND _cmake_import_check_files_for_speclens::speclens_core "${_IMPORT_PREFIX}/lib/libspeclens_core.a" )

# Commands beyond this point should not need to know the version.
set(CMAKE_IMPORT_FILE_VERSION)
