/**
 * @file
 * Reproduces Fig. 7: dendrogram of all CPU2017 INT benchmarks with
 * their individual input sets (multi-input benchmarks appear as
 * "<name>#<k>").
 *
 * Expected shape (paper): input sets of the same benchmark cluster
 * tightly (e.g. the five 502.gcc_r inputs), and most rate/speed pairs
 * sit together — only omnetpp, xalancbmk and x264 show meaningful
 * rate-vs-speed separation; ~10 PCs cover ~94% of variance.
 */

#include <cstdio>

#include "bench_common.h"
#include "core/input_set_analysis.h"
#include "suites/input_sets.h"

using namespace speclens;

int
main(int argc, char **argv)
{
    bench::BenchOptions opts = bench::parseOptions(argc, argv);
    core::AnalysisSession session = bench::makeSession(opts);
    core::Characterizer &characterizer = session.characterizer();

    bench::banner("Fig. 7: similarity of CPU2017 INT benchmarks and "
                  "their input sets");

    auto groups = suites::inputSetGroupsInt();
    core::InputSetAnalysis analysis =
        core::analyzeInputSets(characterizer, groups);

    std::printf("Retained %zu PCs covering %.1f%% of variance "
                "(paper: 10 PCs, 94%%)\n\n",
                analysis.similarity.pca.retained,
                100.0 * analysis.similarity.pca.variance_covered);
    std::fputs(analysis.similarity.renderDendrogram().c_str(), stdout);

    std::printf("\nLargest within-benchmark input-set spread: %.2f\n"
                "Median cross-benchmark distance:            %.2f\n"
                "(the paper's finding: input sets of one benchmark are "
                "far closer together\n than different benchmarks)\n",
                analysis.max_within_group_spread,
                analysis.median_cross_benchmark_distance);
    return 0;
}
