/**
 * @file
 * Reproduces Fig. 5: validation of the INT subsets against the
 * (synthetic stand-in for the) published SPEC score database — the
 * geometric-mean speedup estimated from the 3-benchmark subset versus
 * the full sub-suite, per commercial system.
 *
 * Expected shape (paper): average error <= 1% for speed INT across 4
 * systems and ~7% (max 12.9%) for rate INT.
 */

#include <cstdio>

#include "bench_common.h"
#include "core/report.h"
#include "core/similarity.h"
#include "core/subsetting.h"
#include "core/validation.h"
#include "suites/score_database.h"
#include "suites/spec2017.h"

using namespace speclens;

namespace {

void
validate(core::Characterizer &characterizer,
         const std::vector<suites::BenchmarkInfo> &suite,
         suites::Category category, const char *title)
{
    bench::banner(title);

    core::SimilarityResult sim = core::analyzeSimilarity(
        characterizer.featureMatrix(suite),
        suites::benchmarkNames(suite));
    core::SubsetResult subset = core::selectSubset(
        sim, 3, core::RepresentativeRule::ShortestLinkage, suite);

    suites::ScoreDatabase db;
    core::ValidationResult result =
        core::validateSubset(suite, subset.representatives, category, db);

    core::TextTable table({"System", "Full-suite score", "Subset score",
                           "Error (%)"});
    for (const core::SystemValidation &v : result.per_system) {
        table.addRow({v.system, core::TextTable::num(v.full_score),
                      core::TextTable::num(v.subset_score),
                      core::TextTable::num(v.error_pct, 1)});
    }
    std::fputs(table.render().c_str(), stdout);
    std::printf("Average error: %.1f%%   Max error: %.1f%%\n",
                result.avg_error_pct, result.max_error_pct);
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchOptions opts = bench::parseOptions(argc, argv);
    core::AnalysisSession session = bench::makeSession(opts);
    core::Characterizer &characterizer = session.characterizer();

    validate(characterizer, suites::spec2017SpeedInt(),
             suites::Category::SpeedInt,
             "Fig. 5 (top): SPECspeed INT subset validation "
             "(paper: avg error <= 1%)");
    validate(characterizer, suites::spec2017RateInt(),
             suites::Category::RateInt,
             "Fig. 5 (bottom): SPECrate INT subset validation "
             "(paper: avg 7%, max 12.9%)");
    return 0;
}
