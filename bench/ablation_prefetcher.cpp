/**
 * @file
 * Substrate ablation: the L2 prefetcher, in two acts.
 *
 * Act one (the original ablation): the Table IV machine models ship
 * with the prefetcher off because the workload calibration already
 * folds the prefetch benefit into the streaming parameters
 * (profile_presets.cpp): a "streamed" access in the model only misses
 * when it crosses into a new line, which is the miss stream a hardware
 * prefetcher would have left behind.  The first table quantifies what
 * turning the explicit prefetcher on does on top of that: the residual
 * sequential misses shrink a little for the most stream-like benchmark
 * (lbm), while for everything else cache pollution dominates —
 * pointer-chasing codes consistently lose.  On an *uncalibrated*
 * sequential stream the same prefetcher removes >3x of L2 misses (see
 * tests/uarch/prefetcher_test.cpp), so the difference is a property of
 * the calibration, not of the prefetcher.
 *
 * Act two graduates the ablation into a full Table IX-style
 * sensitivity column: every CPU2017 benchmark is ranked by L2D MPKI on
 * each suites::memoryCentricMachines() variant (prefetcher off /
 * next-line / stride / stream, all with DRAM + way prediction), and
 * the rank variation across variants classifies its prefetcher
 * sensitivity exactly as table9_sensitivity classifies branch/L1D/TLB
 * sensitivity across the paper's four machines.
 */

#include <cstdio>

#include "bench_common.h"
#include "core/report.h"
#include "core/sensitivity.h"
#include "suites/spec2017.h"
#include "uarch/simulation.h"

using namespace speclens;

int
main(int argc, char **argv)
{
    bench::BenchOptions opts = bench::parseOptions(argc, argv);

    bench::banner("Ablation: L2 stream prefetcher (degree 0 vs 4) on "
                  "the Skylake model");

    {
        uarch::MachineConfig base = suites::skylakeMachine();
        uarch::MachineConfig prefetching = base;
        prefetching.caches.l2_prefetch_degree = 4;
        // Same machine name on purpose: the ISA/compiler jitter stream
        // is seeded from the name, so both variants see the identical
        // transformed workload and the comparison isolates the
        // prefetcher.  Store entries still never collide — the
        // prefetch degree is part of the machine fingerprint.

        core::AnalysisSession session =
            bench::makeSession(opts, {base, prefetching});
        core::Characterizer &characterizer = session.characterizer();

        const char *streaming[] = {"519.lbm_r", "503.bwaves_r",
                                   "554.roms_r", "649.fotonik3d_s"};
        const char *pointer_chasing[] = {"505.mcf_r", "520.omnetpp_r",
                                         "557.xz_r", "541.leela_r"};

        core::TextTable table({"Benchmark", "Class", "L2D MPKI (off)",
                               "L2D MPKI (deg 4)", "Reduction (%)",
                               "CPI (off)", "CPI (deg 4)"});
        auto add = [&](const char *name, const char *cls) {
            const auto &b = suites::spec2017Benchmark(name);
            const auto &off = characterizer.simulation(b, 0);
            const auto &on = characterizer.simulation(b, 1);
            double off_mpki = off.counters.l2dMpki();
            double on_mpki = on.counters.l2dMpki();
            table.addRow(
                {name, cls, core::TextTable::num(off_mpki, 1),
                 core::TextTable::num(on_mpki, 1),
                 core::TextTable::num(
                     off_mpki > 0.0
                         ? 100.0 * (off_mpki - on_mpki) / off_mpki
                         : 0.0,
                     0),
                 core::TextTable::num(off.cpi()),
                 core::TextTable::num(on.cpi())});
        };
        for (const char *name : streaming)
            add(name, "streaming");
        for (const char *name : pointer_chasing)
            add(name, "pointer-chasing");

        std::fputs(table.render().c_str(), stdout);
        std::printf(
            "\nExpected shape: small or positive reductions only for "
            "the stream-like class;\npointer-chasing rows lose to "
            "pollution. This is why the Table IV models keep\nthe "
            "prefetcher off: their calibration already accounts for "
            "it.\n");
    }

    bench::banner("Table IX (d): prefetcher sensitivity "
                  "(memory-centric machine variants)");

    core::AnalysisSession sensitivity_session =
        bench::makeSession(opts, suites::memoryCentricMachines());
    core::SensitivityReport report = core::classifySensitivity(
        sensitivity_session.characterizer(), suites::spec2017(),
        core::Metric::L2dMpki);

    for (core::SensitivityClass cls :
         {core::SensitivityClass::High,
          core::SensitivityClass::Medium}) {
        std::printf("%s:\n ", core::sensitivityClassName(cls).c_str());
        for (const std::string &name : report.names(cls))
            std::printf(" %s", name.c_str());
        std::printf("\n");
    }
    std::printf("(low-sensitivity benchmarks omitted, as in Table "
                "IX)\n\nRank spread here is across prefetcher engines, "
                "not machines: a High entry's\nL2 miss ranking depends "
                "on which engine (if any) is in front of it.\n");
    return 0;
}
