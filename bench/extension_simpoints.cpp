/**
 * @file
 * Extension bench: SimPoint-style within-benchmark reduction on phased
 * workloads — the related-work technique (paper refs [32], [33]) that
 * complements the paper's across-benchmark subsetting.
 *
 * For several multi-phase workloads (derived deterministically from
 * CPU2017 base models), the bench compares:
 *  - the full phased run (ground truth),
 *  - the representative-phase estimate (cluster + medoid + weights),
 *  - a naive estimate from the single heaviest phase.
 *
 * Expected shape: representative-phase estimates land within a few
 * percent of ground truth while simulating a fraction of the phases;
 * the naive single-phase estimate is clearly worse on multi-modal
 * workloads.
 */

#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "core/phase_analysis.h"
#include "core/report.h"
#include "suites/machines.h"
#include "suites/spec2017.h"
#include "uarch/simulation.h"

using namespace speclens;

int
main(int argc, char **argv)
{
    bench::BenchOptions opts = bench::parseOptions(argc, argv);

    bench::banner("Extension: SimPoint-style phase reduction "
                  "(cluster phases, simulate representatives)");

    // The session exists for its store wiring: the phased ground-truth
    // runs and phase probes go through simpointEstimate rather than
    // the characterizer, but persist to the same store.
    core::AnalysisSession session =
        bench::makeSession(opts, {suites::skylakeMachine()});

    const char *bases[] = {"502.gcc_r", "505.mcf_r", "538.imagick_r",
                           "554.roms_r"};
    const std::size_t num_phases = 8;
    const std::size_t clusters = 3;

    core::TextTable table({"Workload", "Phases", "Reps",
                           "Full CPI", "SimPoint CPI", "Err (%)",
                           "Naive CPI", "Naive err (%)",
                           "Sim. share"});

    for (const char *name : bases) {
        const auto &base = suites::spec2017Benchmark(name);
        trace::PhasedWorkload workload =
            trace::derivePhases(base.profile, num_phases, 0.35);

        core::SimPointConfig config;
        config.clusters = clusters;
        config.instructions = opts.instructions;
        config.warmup = opts.warmup;
        core::SimPointResult result = core::simpointEstimate(
            workload, suites::skylakeMachine(), config,
            session.store());

        // Naive baseline: extrapolate the heaviest phase alone.
        std::size_t heaviest = 0;
        for (std::size_t k = 1; k < workload.phases.size(); ++k)
            if (workload.phases[k].weight >
                workload.phases[heaviest].weight)
                heaviest = k;
        uarch::SimulationConfig probe;
        probe.instructions = config.probe_instructions;
        probe.warmup = config.probe_warmup;
        // Same key as the simpointEstimate probe of the same phase, so
        // this is a store hit even on the cold run.
        double naive_cpi =
            core::storedSimulate(session.store(),
                                 workload.phases[heaviest].profile,
                                 suites::skylakeMachine(), probe)
                .cpi();
        double naive_err =
            100.0 * std::fabs(naive_cpi - result.full_cpi) /
            result.full_cpi;

        table.addRow(
            {name, std::to_string(num_phases),
             std::to_string(result.representatives.size()),
             core::TextTable::num(result.full_cpi),
             core::TextTable::num(result.estimated_cpi),
             core::TextTable::num(result.cpi_error_pct, 1),
             core::TextTable::num(naive_cpi),
             core::TextTable::num(naive_err, 1),
             core::TextTable::num(100.0 * result.simulated_fraction,
                                  0) +
                 "%"});
    }
    std::fputs(table.render().c_str(), stdout);
    std::printf("\nExpected shape: SimPoint errors of a few %%, beating "
                "the naive single-phase\nextrapolation, at a fraction "
                "of the simulated instructions.\n");
    return 0;
}
