/**
 * @file
 * Google-benchmark microbenchmarks of the SpecLens substrate: cache
 * and TLB simulation throughput, branch predictors, trace generation,
 * PCA and clustering.  These size the cost of a full characterization
 * campaign (43 benchmarks x 7 machines).
 *
 * Campaign mode: `micro_substrate --jobs N` skips the microbenchmarks
 * and instead times the full 43 x 7 characterization campaign at
 * --jobs 1, 2 and N, reports the wall-clock speedup, and verifies the
 * feature matrices are byte-identical across job counts (exit status 1
 * if not).  --instructions/--warmup adjust the simulated window.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>
#include <variant>
#include <vector>

#include "bench_common.h"
#include "core/characterization.h"
#include "core/parallel.h"
#include "stats/clustering.h"
#include "stats/pca.h"
#include "stats/rng.h"
#include "suites/machines.h"
#include "suites/spec2017.h"
#include "trace/trace_generator.h"
#include "uarch/branch_predictor.h"
#include "uarch/cache.h"
#include "uarch/simulation.h"

using namespace speclens;

namespace {

void
BM_CacheAccess(benchmark::State &state)
{
    uarch::CacheConfig config;
    config.size_bytes = 32 * 1024;
    config.associativity = 8;
    config.policy = static_cast<uarch::ReplacementPolicy>(state.range(0));
    uarch::Cache cache(config);
    stats::Rng rng(7);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            cache.access(rng.below(1 << 20) * 64));
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CacheAccess)
    ->Arg(static_cast<int>(uarch::ReplacementPolicy::Lru))
    ->Arg(static_cast<int>(uarch::ReplacementPolicy::TreePlru))
    ->Arg(static_cast<int>(uarch::ReplacementPolicy::Fifo))
    ->Arg(static_cast<int>(uarch::ReplacementPolicy::Random));

void
BM_BranchPredictor(benchmark::State &state)
{
    auto predictor = uarch::makePredictor(
        static_cast<uarch::PredictorKind>(state.range(0)), 12);
    stats::Rng rng(11);
    std::uint32_t id = 0;
    for (auto _ : state) {
        bool taken = rng.bernoulli(0.6);
        benchmark::DoNotOptimize(predictor->predict(0, id));
        predictor->update(0, id, taken);
        id = (id + 1) & 255;
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BranchPredictor)
    ->Arg(static_cast<int>(uarch::PredictorKind::Bimodal))
    ->Arg(static_cast<int>(uarch::PredictorKind::Gshare))
    ->Arg(static_cast<int>(uarch::PredictorKind::Tournament))
    ->Arg(static_cast<int>(uarch::PredictorKind::Perceptron))
    ->Arg(static_cast<int>(uarch::PredictorKind::TageLite));

/**
 * Same workload through the variant (devirtualized) dispatch path the
 * playback loop uses; the delta against BM_BranchPredictor is the
 * virtual-call overhead removed from the hot loop.
 */
void
BM_BranchPredictorVariant(benchmark::State &state)
{
    uarch::PredictorVariant predictor = uarch::makePredictorVariant(
        static_cast<uarch::PredictorKind>(state.range(0)), 12);
    stats::Rng rng(11);
    std::uint32_t id = 0;
    std::visit(
        [&](auto &p) {
            for (auto _ : state) {
                bool taken = rng.bernoulli(0.6);
                benchmark::DoNotOptimize(p.predict(0, id));
                p.update(0, id, taken);
                id = (id + 1) & 255;
            }
        },
        predictor);
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BranchPredictorVariant)
    ->Arg(static_cast<int>(uarch::PredictorKind::Bimodal))
    ->Arg(static_cast<int>(uarch::PredictorKind::Gshare))
    ->Arg(static_cast<int>(uarch::PredictorKind::Tournament))
    ->Arg(static_cast<int>(uarch::PredictorKind::Perceptron))
    ->Arg(static_cast<int>(uarch::PredictorKind::TageLite));

void
BM_TraceGeneration(benchmark::State &state)
{
    const auto &profile =
        suites::spec2017Benchmark("505.mcf_r").profile;
    trace::TraceGenerator generator(profile);
    for (auto _ : state)
        benchmark::DoNotOptimize(generator.next());
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TraceGeneration);

void
BM_FullSimulation(benchmark::State &state)
{
    const auto &benchmark_info = suites::spec2017Benchmark("502.gcc_r");
    const auto &machine = suites::skylakeMachine();
    uarch::SimulationConfig config;
    config.instructions = static_cast<std::uint64_t>(state.range(0));
    config.warmup = config.instructions / 4;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            uarch::simulate(benchmark_info.profile, machine, config));
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_FullSimulation)->Arg(50'000)->Arg(150'000);

void
BM_Pca(benchmark::State &state)
{
    std::size_t rows = 43, cols = static_cast<std::size_t>(state.range(0));
    stats::Matrix m(rows, cols);
    stats::Rng rng(3);
    for (std::size_t r = 0; r < rows; ++r)
        for (std::size_t c = 0; c < cols; ++c)
            m(r, c) = rng.gaussian();
    for (auto _ : state)
        benchmark::DoNotOptimize(stats::fitPca(m));
}
BENCHMARK(BM_Pca)->Arg(20)->Arg(140);

void
BM_Clustering(benchmark::State &state)
{
    std::size_t n = static_cast<std::size_t>(state.range(0));
    stats::Matrix points(n, 6);
    stats::Rng rng(5);
    for (std::size_t r = 0; r < n; ++r)
        for (std::size_t c = 0; c < 6; ++c)
            points(r, c) = rng.gaussian();
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            stats::clusterPoints(points, stats::Linkage::Ward));
    }
}
BENCHMARK(BM_Clustering)->Arg(10)->Arg(43)->Arg(100);

/**
 * Full 43 x 7 characterization campaign at one job count; wall-clock
 * in milliseconds goes to @p elapsed_ms.
 */
stats::Matrix
runCampaign(const std::vector<suites::BenchmarkInfo> &suite,
            std::uint64_t instructions, std::uint64_t warmup,
            std::size_t jobs, double &elapsed_ms)
{
    core::CharacterizationConfig config;
    config.instructions = instructions;
    config.warmup = warmup;
    config.jobs = jobs;
    core::Characterizer characterizer(suites::profilingMachines(),
                                      config);
    auto start = std::chrono::steady_clock::now();
    stats::Matrix features = characterizer.featureMatrix(suite);
    elapsed_ms = std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - start)
                     .count();
    return features;
}

/** True when two matrices are byte-for-byte identical. */
bool
byteIdentical(const stats::Matrix &a, const stats::Matrix &b)
{
    return a.rows() == b.rows() && a.cols() == b.cols() &&
           std::memcmp(a.data().data(), b.data().data(),
                       a.data().size() * sizeof(double)) == 0;
}

/**
 * Serial-vs-parallel campaign report: times the full campaign at
 * --jobs 1, 2 and @p jobs, prints the speedup, and checks the three
 * feature matrices are byte-identical.  Returns the process exit
 * status (1 on any mismatch).
 */
int
campaignReport(std::uint64_t instructions, std::uint64_t warmup,
               std::size_t jobs)
{
    std::vector<suites::BenchmarkInfo> suite = suites::spec2017();
    std::size_t n_machines = suites::profilingMachines().size();
    jobs = core::resolveJobCount(jobs);

    std::printf("characterization campaign: %zu benchmarks x %zu "
                "machines = %zu simulations\n"
                "window: %llu measured + %llu warm-up instructions "
                "per pair\n\n",
                suite.size(), n_machines, suite.size() * n_machines,
                static_cast<unsigned long long>(instructions),
                static_cast<unsigned long long>(warmup));

    double serial_ms = 0.0, two_ms = 0.0, parallel_ms = 0.0;
    stats::Matrix serial =
        runCampaign(suite, instructions, warmup, 1, serial_ms);
    std::printf("  --jobs 1   %10.1f ms\n", serial_ms);
    stats::Matrix two =
        runCampaign(suite, instructions, warmup, 2, two_ms);
    std::printf("  --jobs 2   %10.1f ms   (%.2fx)\n", two_ms,
                serial_ms / two_ms);
    stats::Matrix parallel =
        runCampaign(suite, instructions, warmup, jobs, parallel_ms);
    std::printf("  --jobs %-3zu %10.1f ms   (%.2fx)\n\n", jobs,
                parallel_ms, serial_ms / parallel_ms);

    bool identical =
        byteIdentical(serial, two) && byteIdentical(serial, parallel);
    std::printf("speedup (--jobs %zu over --jobs 1): %.2fx\n", jobs,
                serial_ms / parallel_ms);
    std::printf("feature matrices byte-identical across job counts: "
                "%s\n",
                identical ? "yes" : "NO");
    return identical ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    // Peel off the campaign flags; everything else goes to
    // google-benchmark.  Any --jobs/--campaign selects campaign mode.
    std::vector<char *> passthrough{argv[0]};
    bool campaign = false;
    std::uint64_t instructions = 150'000, warmup = 40'000;
    std::size_t jobs = 0;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--jobs") == 0) {
            jobs = static_cast<std::size_t>(
                bench::numericFlagValue("--jobs", argc, argv, i));
            campaign = true;
        } else if (std::strcmp(argv[i], "--campaign") == 0) {
            campaign = true;
        } else if (std::strcmp(argv[i], "--instructions") == 0) {
            instructions = bench::numericFlagValue("--instructions",
                                                   argc, argv, i);
        } else if (std::strcmp(argv[i], "--warmup") == 0) {
            warmup = bench::numericFlagValue("--warmup", argc, argv, i);
        } else {
            passthrough.push_back(argv[i]);
        }
    }
    if (campaign)
        return campaignReport(instructions, warmup, jobs);

    int pass_argc = static_cast<int>(passthrough.size());
    benchmark::Initialize(&pass_argc, passthrough.data());
    if (benchmark::ReportUnrecognizedArguments(pass_argc,
                                               passthrough.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
