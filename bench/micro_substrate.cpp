/**
 * @file
 * Google-benchmark microbenchmarks of the SpecLens substrate: cache
 * and TLB simulation throughput, branch predictors, trace generation,
 * PCA and clustering.  These size the cost of a full characterization
 * campaign (43 benchmarks x 7 machines).
 */

#include <benchmark/benchmark.h>

#include "stats/clustering.h"
#include "stats/pca.h"
#include "stats/rng.h"
#include "suites/machines.h"
#include "suites/spec2017.h"
#include "trace/trace_generator.h"
#include "uarch/branch_predictor.h"
#include "uarch/cache.h"
#include "uarch/simulation.h"

using namespace speclens;

namespace {

void
BM_CacheAccess(benchmark::State &state)
{
    uarch::CacheConfig config;
    config.size_bytes = 32 * 1024;
    config.associativity = 8;
    config.policy = static_cast<uarch::ReplacementPolicy>(state.range(0));
    uarch::Cache cache(config);
    stats::Rng rng(7);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            cache.access(rng.below(1 << 20) * 64));
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CacheAccess)
    ->Arg(static_cast<int>(uarch::ReplacementPolicy::Lru))
    ->Arg(static_cast<int>(uarch::ReplacementPolicy::TreePlru))
    ->Arg(static_cast<int>(uarch::ReplacementPolicy::Fifo))
    ->Arg(static_cast<int>(uarch::ReplacementPolicy::Random));

void
BM_BranchPredictor(benchmark::State &state)
{
    auto predictor = uarch::makePredictor(
        static_cast<uarch::PredictorKind>(state.range(0)), 12);
    stats::Rng rng(11);
    std::uint32_t id = 0;
    for (auto _ : state) {
        bool taken = rng.bernoulli(0.6);
        benchmark::DoNotOptimize(predictor->predict(0, id));
        predictor->update(0, id, taken);
        id = (id + 1) & 255;
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BranchPredictor)
    ->Arg(static_cast<int>(uarch::PredictorKind::Bimodal))
    ->Arg(static_cast<int>(uarch::PredictorKind::Gshare))
    ->Arg(static_cast<int>(uarch::PredictorKind::Tournament))
    ->Arg(static_cast<int>(uarch::PredictorKind::Perceptron))
    ->Arg(static_cast<int>(uarch::PredictorKind::TageLite));

void
BM_TraceGeneration(benchmark::State &state)
{
    const auto &profile =
        suites::spec2017Benchmark("505.mcf_r").profile;
    trace::TraceGenerator generator(profile);
    for (auto _ : state)
        benchmark::DoNotOptimize(generator.next());
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TraceGeneration);

void
BM_FullSimulation(benchmark::State &state)
{
    const auto &benchmark_info = suites::spec2017Benchmark("502.gcc_r");
    const auto &machine = suites::skylakeMachine();
    uarch::SimulationConfig config;
    config.instructions = static_cast<std::uint64_t>(state.range(0));
    config.warmup = config.instructions / 4;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            uarch::simulate(benchmark_info.profile, machine, config));
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_FullSimulation)->Arg(50'000)->Arg(150'000);

void
BM_Pca(benchmark::State &state)
{
    std::size_t rows = 43, cols = static_cast<std::size_t>(state.range(0));
    stats::Matrix m(rows, cols);
    stats::Rng rng(3);
    for (std::size_t r = 0; r < rows; ++r)
        for (std::size_t c = 0; c < cols; ++c)
            m(r, c) = rng.gaussian();
    for (auto _ : state)
        benchmark::DoNotOptimize(stats::fitPca(m));
}
BENCHMARK(BM_Pca)->Arg(20)->Arg(140);

void
BM_Clustering(benchmark::State &state)
{
    std::size_t n = static_cast<std::size_t>(state.range(0));
    stats::Matrix points(n, 6);
    stats::Rng rng(5);
    for (std::size_t r = 0; r < n; ++r)
        for (std::size_t c = 0; c < 6; ++c)
            points(r, c) = rng.gaussian();
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            stats::clusterPoints(points, stats::Linkage::Ward));
    }
}
BENCHMARK(BM_Clustering)->Arg(10)->Arg(43)->Arg(100);

} // namespace

BENCHMARK_MAIN();
