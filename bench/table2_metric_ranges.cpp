/**
 * @file
 * Reproduces Table II: min-max ranges of key performance metrics
 * (cache MPKI per level/side and branch misprediction MPKI) per
 * CPU2017 sub-suite, measured on the simulated Skylake.
 */

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/report.h"
#include "stats/descriptive.h"
#include "suites/spec2017.h"

using namespace speclens;

namespace {

std::string
range(core::Characterizer &characterizer,
      const std::vector<suites::BenchmarkInfo> &list, core::Metric metric)
{
    std::vector<double> values;
    values.reserve(list.size());
    for (const suites::BenchmarkInfo &b : list)
        values.push_back(characterizer.metrics(b, 0).get(metric));
    return core::TextTable::num(stats::minValue(values), 1) + " - " +
           core::TextTable::num(stats::maxValue(values), 1);
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchOptions opts = bench::parseOptions(argc, argv);
    core::AnalysisSession session = bench::makeSession(opts);
    core::Characterizer &characterizer = session.characterizer();

    bench::banner("Table II: metric ranges (min - max) of the CPU2017 "
                  "sub-suites (simulated Skylake)");

    auto rate_int = suites::spec2017RateInt();
    auto speed_int = suites::spec2017SpeedInt();
    auto rate_fp = suites::spec2017RateFp();
    auto speed_fp = suites::spec2017SpeedFp();

    struct MetricRow
    {
        const char *label;
        core::Metric metric;
    };
    const MetricRow rows[] = {
        {"L1D$ MPKI", core::Metric::L1dMpki},
        {"L1I$ MPKI", core::Metric::L1iMpki},
        {"L2D$ MPKI", core::Metric::L2dMpki},
        {"L2I$ MPKI", core::Metric::L2iMpki},
        {"L3$ MPKI", core::Metric::L3Mpki},
        {"Branch misp. PKI", core::Metric::BranchMpki},
    };

    core::TextTable table(
        {"Metric", "Rate INT", "Speed INT", "Rate FP", "Speed FP"});
    for (const MetricRow &row : rows) {
        table.addRow({row.label,
                      range(characterizer, rate_int, row.metric),
                      range(characterizer, speed_int, row.metric),
                      range(characterizer, rate_fp, row.metric),
                      range(characterizer, speed_fp, row.metric)});
    }
    std::fputs(table.render().c_str(), stdout);

    std::printf("\nPaper reference ranges (Skylake hardware):\n"
                "  L1D$ MPKI:  rate INT ~0-56,  speed INT ~0-54.7, "
                "rate FP 2-95.4, speed FP 5.5-98.4\n"
                "  L1I$ MPKI:  ~0-5.1 / ~0-5.2 / ~0-11.3 / 0.1-11.6\n"
                "  L2D$ MPKI:  ~0-20.5 / ~0-20.7 / ~0-7 / 0.2-8.6\n"
                "  L2I$ MPKI:  ~0-0.9 across categories\n"
                "  L3$ MPKI:   ~0-4.5 / ~0-4.6 / ~0-4.3 / ~0-5\n"
                "  Branch MPKI: 0.9-8.3 / 0.5-8.4 / 0-2.5 / 0.01-2.5\n");
    return 0;
}
