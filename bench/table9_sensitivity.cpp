/**
 * @file
 * Reproduces Table IX: sensitivity of the CPU2017 benchmarks to
 * branch predictor, L1 D-cache and L1 D-TLB configuration, classified
 * from rank variation across four structurally different machines.
 *
 * Expected shape (paper): bwaves (both versions) most
 * branch-sensitive; fotonik3d most L1D-sensitive; bwaves_r,
 * cactuBSSN, xz, povray, fotonik3d_s among the most D-TLB-sensitive;
 * leela / xz_s / mcf_s have LOW branch sensitivity because they are
 * uniformly bad across machines.
 */

#include <cstdio>

#include "bench_common.h"
#include "core/report.h"
#include "core/sensitivity.h"
#include "suites/machines.h"
#include "suites/spec2017.h"

using namespace speclens;

namespace {

void
classify(core::Characterizer &characterizer, core::Metric metric,
         const char *title, const char *paper_high)
{
    bench::banner(title);

    const auto &suite = suites::spec2017();
    core::SensitivityReport report =
        core::classifySensitivity(characterizer, suite, metric);

    for (core::SensitivityClass cls :
         {core::SensitivityClass::High, core::SensitivityClass::Medium}) {
        std::printf("%s:\n ", core::sensitivityClassName(cls).c_str());
        for (const std::string &name : report.names(cls))
            std::printf(" %s", name.c_str());
        std::printf("\n");
    }
    std::printf("(low-sensitivity benchmarks omitted, as in the "
                "paper)\n");
    std::printf("Paper high-sensitivity set: %s\n", paper_high);

    // The nuance the paper stresses: low sensitivity can mean
    // "uniformly bad", not "good".
    if (metric == core::Metric::BranchMpki) {
        std::printf("\nUniformly-poor check (paper: leela, xz_s, mcf_s "
                    "are LOW sensitivity yet worst misprediction "
                    "rates):\n");
        for (const core::SensitivityEntry &e : report.entries) {
            if (e.benchmark == "641.leela_s" ||
                e.benchmark == "657.xz_s" ||
                e.benchmark == "605.mcf_s") {
                std::printf("  %-14s class=%-6s mean branch MPKI "
                            "across machines=%.1f\n",
                            e.benchmark.c_str(),
                            core::sensitivityClassName(e.cls).c_str(),
                            e.mean_value);
            }
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchOptions opts = bench::parseOptions(argc, argv);

    // Sensitivity uses the paper's four-machine subset.  One shared
    // session: the three classifications reuse the same 43 x 4
    // campaign instead of re-measuring it per metric.
    core::AnalysisSession session =
        bench::makeSession(opts, suites::sensitivityMachines());

    classify(session.characterizer(), core::Metric::BranchMpki,
             "Table IX (a): branch-prediction sensitivity",
             "603.bwaves_s, 503.bwaves_r");
    classify(session.characterizer(), core::Metric::L1dMpki,
             "Table IX (b): L1 D-cache sensitivity",
             "549.fotonik3d_r, 649.fotonik3d_s");
    classify(session.characterizer(), core::Metric::DtlbMpmi,
             "Table IX (c): L1 D-TLB sensitivity",
             "503.bwaves_r, 507.cactuBSSN_r, 557.xz_r, 511.povray_r, "
             "657.xz_s, 649.fotonik3d_s, 607.cactuBSSN_s");
    return 0;
}
