/**
 * @file
 * Reproduces Table V: the 3-benchmark representative subsets of the
 * four CPU2017 sub-suites, plus the simulation-time reduction factors
 * quoted in Section IV-A (5.6x speed INT, 4.5x rate INT, 4.5x speed
 * FP, 6.3x rate FP).
 */

#include <cstdio>

#include "bench_common.h"
#include "core/report.h"
#include "core/similarity.h"
#include "core/subsetting.h"
#include "suites/spec2017.h"

using namespace speclens;

int
main(int argc, char **argv)
{
    bench::BenchOptions opts = bench::parseOptions(argc, argv);
    core::AnalysisSession session = bench::makeSession(opts);
    core::Characterizer &characterizer = session.characterizer();

    bench::banner("Table V: representative 3-benchmark subsets of the "
                  "CPU2017 sub-suites");

    struct Row
    {
        const char *category;
        std::vector<suites::BenchmarkInfo> suite;
        const char *paper_subset;
    };
    Row rows[] = {
        {"SPECspeed INT", suites::spec2017SpeedInt(),
         "605.mcf_s, 641.leela_s, 623.xalancbmk_s"},
        {"SPECrate INT", suites::spec2017RateInt(),
         "505.mcf_r, 523.xalancbmk_r, 531.deepsjeng_r"},
        {"SPECspeed FP", suites::spec2017SpeedFp(),
         "607.cactuBSSN_s, 621.wrf_s, 654.roms_s"},
        {"SPECrate FP", suites::spec2017RateFp(),
         "507.cactuBSSN_r, 549.fotonik3d_r, 544.nab_r"},
    };

    core::TextTable table({"Sub-suite", "Identified subset",
                           "Sim-time reduction", "Paper subset"});
    for (const Row &row : rows) {
        core::SimilarityResult sim = core::analyzeSimilarity(
            characterizer.featureMatrix(row.suite),
            suites::benchmarkNames(row.suite));
        core::SubsetResult subset = core::selectSubset(
            sim, 3, core::RepresentativeRule::ShortestLinkage,
            row.suite);

        std::string members;
        for (const std::string &name : subset.representatives) {
            if (!members.empty())
                members += ", ";
            members += name;
        }
        table.addRow({row.category, members,
                      core::TextTable::num(
                          subset.simulation_time_reduction, 1) +
                          "x",
                      row.paper_subset});
    }
    std::fputs(table.render().c_str(), stdout);
    std::printf("\nPaper simulation-time reductions: 5.6x (speed INT), "
                "4.5x (rate INT), 4.5x (speed FP), 6.3x (rate FP)\n");
    return 0;
}
