/**
 * @file
 * Reproduces Fig. 12: CPU2017 and CPU2006 in the PC space of the
 * power characteristics (core / LLC / DRAM power from the RAPL-model
 * on the three Intel machines).
 *
 * Expected shape (paper): PC1 dominated by DRAM power, PC2 by core
 * power; CPU2017 covers a clearly larger region, driven by newly
 * added benchmarks (exchange2, leela, roms, xz, imagick); CPU2006
 * varies mostly along PC1 while 20+ CPU2017 benchmarks spread in core
 * power.
 */

#include <cstdio>

#include "bench_common.h"
#include "core/balance.h"
#include "core/report.h"
#include "suites/spec2006.h"
#include "suites/spec2017.h"

using namespace speclens;

int
main(int argc, char **argv)
{
    bench::BenchOptions opts = bench::parseOptions(argc, argv);
    core::AnalysisSession session = bench::makeSession(opts);
    core::Characterizer &characterizer = session.characterizer();

    bench::banner("Fig. 12: power-characteristic PC space (3 Intel "
                  "machines, core/LLC/DRAM power)");

    const auto &suite17 = suites::spec2017();
    const auto &suite06 = suites::spec2006();

    // Machines 0-2 are Skylake, Broadwell, Ivy Bridge.
    std::vector<std::size_t> rapl_machines = {0, 1, 2};
    core::SimilarityConfig config;
    config.retention = stats::RetentionPolicy::fixedCount(2);
    core::SuiteComparison cmp = core::compareSuites(
        characterizer, suite17, suite06, core::MetricSelection::Power,
        rapl_machines, config);

    std::printf("PC1+PC2 cover %.1f%% of variance (paper: >= 84%%)\n",
                100.0 * cmp.similarity.pca.variance_covered);

    // Which raw metric dominates each PC?
    auto names = characterizer.featureNames(core::MetricSelection::Power,
                                            rapl_machines);
    std::printf("PC1 dominated by %s, PC2 by %s "
                "(paper: PC1 ~ DRAM power, PC2 ~ core power)\n\n",
                names[cmp.similarity.pca.dominantMetric(0)].c_str(),
                names[cmp.similarity.pca.dominantMetric(1)].c_str());

    std::vector<core::ScatterPoint> points;
    for (std::size_t i = 0; i < suite17.size(); ++i)
        points.push_back({cmp.similarity.scores(i, 0),
                          cmp.similarity.scores(i, 1), suite17[i].name,
                          '7'});
    for (std::size_t i = 0; i < suite06.size(); ++i) {
        std::size_t row = suite17.size() + i;
        points.push_back({cmp.similarity.scores(row, 0),
                          cmp.similarity.scores(row, 1),
                          suite06[i].name, '6'});
    }
    std::fputs(core::renderScatter(points, "PC1", "PC2").c_str(),
               stdout);
    std::printf("  glyphs: 7 = CPU2017, 6 = CPU2006\n\n");

    std::printf("Coverage (PC1-PC2 hull): CPU2017 %.2f vs CPU2006 %.2f "
                "(ratio %.2fx; paper: 2017 much higher)\n",
                cmp.pc12.area_a, cmp.pc12.area_b, cmp.pc12.area_ratio);
    std::printf("CPU2017 points outside the CPU2006 power region: "
                "%.0f%%\n",
                100.0 * cmp.pc12.a_outside_b);
    return 0;
}
