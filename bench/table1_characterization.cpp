/**
 * @file
 * Reproduces Table I: dynamic instruction count, instruction mix and
 * CPI of the 43 SPEC CPU2017 benchmarks on the Skylake i7-6700.
 *
 * Instruction counts come from the workload models (they are the
 * paper's published values); mixes and CPI are *measured* from the
 * simulated Skylake, so this bench doubles as the calibration check
 * that the workload models reproduce their published rows.
 */

#include <cstdio>

#include "bench_common.h"
#include "core/report.h"
#include "suites/spec2017.h"

using namespace speclens;

int
main(int argc, char **argv)
{
    bench::BenchOptions opts = bench::parseOptions(argc, argv);
    core::AnalysisSession session = bench::makeSession(opts);
    core::Characterizer &characterizer = session.characterizer();

    bench::banner("Table I: Icount, instruction mix and CPI of the 43 "
                  "SPEC CPU2017 benchmarks (simulated Skylake)");

    const std::size_t skylake = 0;
    core::TextTable table({"Benchmark", "Icount (B)", "Loads (%)",
                           "Stores (%)", "Branches (%)", "CPI (sim)",
                           "CPI (paper)"});

    auto add_category = [&](const std::vector<suites::BenchmarkInfo> &list,
                            const char *header) {
        table.addRow({header, "", "", "", "", "", ""});
        for (const suites::BenchmarkInfo &b : list) {
            const uarch::SimulationResult &sim =
                characterizer.simulation(b, skylake);
            const uarch::PerfCounters &c = sim.counters;
            table.addRow({
                b.name,
                core::TextTable::num(
                    b.profile.dynamic_instructions_billions, 0),
                core::TextTable::num(100.0 * c.loadFraction()),
                core::TextTable::num(100.0 * c.storeFraction()),
                core::TextTable::num(100.0 * c.branchFraction()),
                core::TextTable::num(sim.cpi()),
                core::TextTable::num(b.published_cpi),
            });
        }
    };

    add_category(suites::spec2017SpeedInt(), "-- SPECspeed Integer --");
    add_category(suites::spec2017RateInt(), "-- SPECrate Integer --");
    add_category(suites::spec2017SpeedFp(),
                 "-- SPECspeed Floating-point --");
    add_category(suites::spec2017RateFp(), "-- SPECrate Floating-point --");

    std::fputs(table.render().c_str(), stdout);
    return 0;
}
