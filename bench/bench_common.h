/**
 * @file
 * Shared plumbing for the table/figure reproduction benches.
 *
 * Every bench binary regenerates one table or figure of the paper.
 * They share: command-line parsing for the simulation window, an
 * AnalysisSession (memoised Characterizer over the seven Table IV
 * machines, optionally backed by the persistent `--store` artifact
 * cache), and small printing conventions.
 *
 * With `--store DIR`, the first run of any bench populates the
 * directory and every later run of *any* bench or CLI command reusing
 * it performs zero simulations while printing byte-identical stdout —
 * the store summary goes to stderr precisely so that holds.
 */

#ifndef SPECLENS_BENCH_BENCH_COMMON_H
#define SPECLENS_BENCH_BENCH_COMMON_H

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/analysis_session.h"
#include "core/characterization.h"
#include "core/option_parse.h"
#include "obs/export.h"
#include "suites/machines.h"

namespace speclens {
namespace bench {

/** Options shared by all reproduction benches. */
struct BenchOptions
{
    /** Measured instructions per (benchmark, machine) pair. */
    std::uint64_t instructions = 150'000;

    /** Warm-up instructions. */
    std::uint64_t warmup = 40'000;

    /** Simulation worker threads (0 = one per hardware thread). */
    std::size_t jobs = 0;

    /** Seed salt forwarded to the trace generators. */
    std::uint64_t seed_salt = 0;

    /** Artifact-store directory; empty = no persistence. */
    std::string store_dir;

    /** Metrics output file; empty = no metrics export. */
    std::string metrics_path;

    /** Metrics export format (--metrics-format prom|json). */
    obs::ExportFormat metrics_format = obs::ExportFormat::Prometheus;
};

/**
 * Value of a numeric flag: @p argv[i + 1], advanced past.  Exits with
 * a diagnostic when the value is missing, non-numeric, has trailing
 * garbage, or overflows.
 */
inline std::uint64_t
numericFlagValue(const char *flag, int argc, char **argv, int &i)
{
    if (i + 1 >= argc) {
        std::fprintf(stderr,
                     "error: %s requires a value (try --help)\n", flag);
        std::exit(1);
    }
    const char *text = argv[++i];
    std::uint64_t value = 0;
    core::ParseStatus status = core::parseUnsigned(text, value);
    if (status != core::ParseStatus::Ok) {
        std::fprintf(stderr,
                     "error: %s expects a non-negative integer, got "
                     "'%s': %s (try --help)\n",
                     flag, text,
                     core::parseStatusDetail(status).c_str());
        std::exit(1);
    }
    return value;
}

/**
 * Value of a string flag: @p argv[i + 1], advanced past.  Exits with a
 * diagnostic when the value is missing.
 */
inline const char *
stringFlagValue(const char *flag, int argc, char **argv, int &i)
{
    if (i + 1 >= argc) {
        std::fprintf(stderr,
                     "error: %s requires a value (try --help)\n", flag);
        std::exit(1);
    }
    return argv[++i];
}

/**
 * Parse --instructions/--warmup/--jobs/--seed-salt/--store; exits on
 * --help.  Unknown flags and malformed values are hard errors
 * (exit 1), never silently ignored.
 */
inline BenchOptions
parseOptions(int argc, char **argv)
{
    BenchOptions opts;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--help") == 0) {
            std::printf(
                "usage: %s [--instructions N] [--warmup N] [--jobs N]\n"
                "       [--seed-salt N] [--store DIR] [--metrics FILE]\n"
                "       [--metrics-format prom|json]\n"
                "  --instructions  measured instructions per pair "
                "(default %llu)\n"
                "  --warmup        warm-up instructions (default %llu)\n"
                "  --jobs          simulation worker threads "
                "(default: one per hardware thread)\n"
                "  --seed-salt     extra seed entropy for independent "
                "re-runs (default 0)\n"
                "  --store         persistent artifact store directory "
                "(reused results skip simulation)\n"
                "  --metrics       write a metrics snapshot to FILE at "
                "exit (stdout is never touched)\n"
                "  --metrics-format  prom (default) or json\n",
                argv[0],
                static_cast<unsigned long long>(opts.instructions),
                static_cast<unsigned long long>(opts.warmup));
            std::exit(0);
        }
        if (std::strcmp(argv[i], "--instructions") == 0) {
            opts.instructions =
                numericFlagValue("--instructions", argc, argv, i);
        } else if (std::strcmp(argv[i], "--warmup") == 0) {
            opts.warmup = numericFlagValue("--warmup", argc, argv, i);
        } else if (std::strcmp(argv[i], "--jobs") == 0) {
            opts.jobs = static_cast<std::size_t>(
                numericFlagValue("--jobs", argc, argv, i));
        } else if (std::strcmp(argv[i], "--seed-salt") == 0) {
            opts.seed_salt =
                numericFlagValue("--seed-salt", argc, argv, i);
        } else if (std::strcmp(argv[i], "--store") == 0) {
            opts.store_dir =
                stringFlagValue("--store", argc, argv, i);
        } else if (std::strcmp(argv[i], "--metrics") == 0) {
            opts.metrics_path =
                stringFlagValue("--metrics", argc, argv, i);
        } else if (std::strcmp(argv[i], "--metrics-format") == 0) {
            const char *name =
                stringFlagValue("--metrics-format", argc, argv, i);
            try {
                opts.metrics_format = obs::exportFormatFromName(name);
            } catch (const std::invalid_argument &e) {
                std::fprintf(stderr, "error: %s (try --help)\n",
                             e.what());
                std::exit(1);
            }
        } else {
            std::fprintf(stderr, "unknown option: %s (try --help)\n",
                         argv[i]);
            std::exit(1);
        }
    }
    if (!opts.metrics_path.empty())
        obs::exportAtExit(opts.metrics_path, opts.metrics_format);
    return opts;
}

/** Session over an explicit machine set. */
inline core::AnalysisSession
makeSession(const BenchOptions &opts,
            std::vector<uarch::MachineConfig> machines)
{
    core::SessionConfig config;
    config.machines = std::move(machines);
    config.characterization.instructions = opts.instructions;
    config.characterization.warmup = opts.warmup;
    config.characterization.seed_salt = opts.seed_salt;
    config.characterization.jobs = opts.jobs;
    config.store_dir = opts.store_dir;
    return core::AnalysisSession(std::move(config));
}

/** Session over the seven Table IV machines. */
inline core::AnalysisSession
makeSession(const BenchOptions &opts)
{
    return makeSession(opts, suites::profilingMachines());
}

/** Section banner. */
inline void
banner(const std::string &title)
{
    std::printf("\n=== %s ===\n\n", title.c_str());
}

} // namespace bench
} // namespace speclens

#endif // SPECLENS_BENCH_BENCH_COMMON_H
