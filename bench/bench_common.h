/**
 * @file
 * Shared plumbing for the table/figure reproduction benches.
 *
 * Every bench binary regenerates one table or figure of the paper.
 * They share: command-line parsing for the simulation window, a
 * memoised Characterizer over the seven Table IV machines, and small
 * printing conventions.
 */

#ifndef SPECLENS_BENCH_BENCH_COMMON_H
#define SPECLENS_BENCH_BENCH_COMMON_H

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/characterization.h"
#include "suites/machines.h"

namespace speclens {
namespace bench {

/** Options shared by all reproduction benches. */
struct BenchOptions
{
    /** Measured instructions per (benchmark, machine) pair. */
    std::uint64_t instructions = 150'000;

    /** Warm-up instructions. */
    std::uint64_t warmup = 40'000;
};

/** Parse --instructions/--warmup; exits on --help. */
inline BenchOptions
parseOptions(int argc, char **argv)
{
    BenchOptions opts;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--help") == 0) {
            std::printf(
                "usage: %s [--instructions N] [--warmup N]\n"
                "  --instructions  measured instructions per pair "
                "(default %llu)\n"
                "  --warmup        warm-up instructions (default %llu)\n",
                argv[0],
                static_cast<unsigned long long>(opts.instructions),
                static_cast<unsigned long long>(opts.warmup));
            std::exit(0);
        }
        auto take_value = [&](const char *flag, std::uint64_t &out) {
            if (std::strcmp(argv[i], flag) == 0 && i + 1 < argc) {
                out = std::strtoull(argv[++i], nullptr, 10);
                return true;
            }
            return false;
        };
        if (take_value("--instructions", opts.instructions))
            continue;
        if (take_value("--warmup", opts.warmup))
            continue;
        std::fprintf(stderr, "unknown option: %s (try --help)\n",
                     argv[i]);
        std::exit(1);
    }
    return opts;
}

/** Characterizer over the seven Table IV machines. */
inline core::Characterizer
makeCharacterizer(const BenchOptions &opts)
{
    core::CharacterizationConfig config;
    config.instructions = opts.instructions;
    config.warmup = opts.warmup;
    return core::Characterizer(suites::profilingMachines(), config);
}

/** Section banner. */
inline void
banner(const std::string &title)
{
    std::printf("\n=== %s ===\n\n", title.c_str());
}

} // namespace bench
} // namespace speclens

#endif // SPECLENS_BENCH_BENCH_COMMON_H
