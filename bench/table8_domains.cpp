/**
 * @file
 * Reproduces Table VIII: classification of the CPU2017 benchmarks by
 * application domain, marking per domain the benchmarks with distinct
 * performance behaviour (the ones a domain-coverage-minded researcher
 * should run).
 *
 * Method: within each domain, a benchmark is "distinct" when its
 * nearest same-domain neighbour in the joint PC space is further than
 * the suite's median nearest-neighbour distance; when a rate/speed
 * pair is mutually similar, only the (shorter-running) rate version is
 * marked — both rules follow Section IV-F.
 */

#include <algorithm>
#include <cstdio>
#include <limits>
#include <map>

#include "bench_common.h"
#include "core/report.h"
#include "core/similarity.h"
#include "stats/descriptive.h"
#include "suites/spec2017.h"

using namespace speclens;

int
main(int argc, char **argv)
{
    bench::BenchOptions opts = bench::parseOptions(argc, argv);
    core::AnalysisSession session = bench::makeSession(opts);
    core::Characterizer &characterizer = session.characterizer();

    bench::banner("Table VIII: application domains and their distinct "
                  "benchmarks (marked *)");

    const auto &suite = suites::spec2017();
    core::SimilarityResult sim = core::analyzeSimilarity(
        characterizer.featureMatrix(suite),
        suites::benchmarkNames(suite));

    // Suite-wide nearest-neighbour scale.
    std::vector<double> nn;
    for (std::size_t i = 0; i < suite.size(); ++i) {
        double nearest = std::numeric_limits<double>::infinity();
        for (std::size_t j = 0; j < suite.size(); ++j)
            if (i != j)
                nearest = std::min(nearest, sim.pcDistance(i, j));
        nn.push_back(nearest);
    }
    double scale = stats::median(nn);

    // Group by domain.
    std::map<std::string, std::vector<std::size_t>> domains;
    for (std::size_t i = 0; i < suite.size(); ++i)
        domains[suites::domainName(suite[i].domain)].push_back(i);

    core::TextTable table({"App domain", "Benchmarks (* = distinct)"});
    for (const auto &[domain, members] : domains) {
        std::string cell;
        for (std::size_t i : members) {
            // Distinct when no same-domain neighbour is close, or when
            // the close neighbour is only its own speed partner (then
            // mark the rate version only).
            double nearest = std::numeric_limits<double>::infinity();
            std::size_t nearest_j = i;
            for (std::size_t j : members) {
                if (j == i)
                    continue;
                double d = sim.pcDistance(i, j);
                if (d < nearest) {
                    nearest = d;
                    nearest_j = j;
                }
            }
            bool partner_only =
                nearest <= scale &&
                suite[nearest_j].name == suite[i].partner;
            bool is_rate =
                suite[i].category == suites::Category::RateInt ||
                suite[i].category == suites::Category::RateFp;
            bool distinct =
                nearest > scale || (partner_only && is_rate);
            if (!cell.empty())
                cell += ", ";
            if (distinct)
                cell += "*";
            cell += suite[i].name;
        }
        table.addRow({domain, cell});
    }
    std::fputs(table.render().c_str(), stdout);
    std::printf("\nPaper examples: 502.gcc_r* but 602.gcc_s unmarked "
                "(similar to rate); both versions of bwaves / roms / "
                "lbm marked (rate and speed differ).\n");
    return 0;
}
