/**
 * @file
 * Reproduces Fig. 8: dendrogram of all CPU2017 FP benchmarks with
 * their input sets (bwaves is the only multi-input FP benchmark).
 *
 * Expected shape (paper): bwaves input sets cluster together; the
 * largest rate-vs-speed separations are imagick and bwaves; ~12 PCs
 * cover 94% of variance.
 */

#include <cstdio>

#include "bench_common.h"
#include "core/input_set_analysis.h"
#include "suites/input_sets.h"

using namespace speclens;

int
main(int argc, char **argv)
{
    bench::BenchOptions opts = bench::parseOptions(argc, argv);
    core::AnalysisSession session = bench::makeSession(opts);
    core::Characterizer &characterizer = session.characterizer();

    bench::banner("Fig. 8: similarity of CPU2017 FP benchmarks and "
                  "their input sets");

    auto groups = suites::inputSetGroupsFp();
    core::InputSetAnalysis analysis =
        core::analyzeInputSets(characterizer, groups);

    std::printf("Retained %zu PCs covering %.1f%% of variance "
                "(paper: 12 PCs, 94%%)\n\n",
                analysis.similarity.pca.retained,
                100.0 * analysis.similarity.pca.variance_covered);
    std::fputs(analysis.similarity.renderDendrogram().c_str(), stdout);

    std::printf("\nLargest within-benchmark input-set spread: %.2f\n"
                "Median cross-benchmark distance:            %.2f\n",
                analysis.max_within_group_spread,
                analysis.median_cross_benchmark_distance);
    return 0;
}
