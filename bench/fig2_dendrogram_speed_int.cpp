/**
 * @file
 * Reproduces Fig. 2: dendrogram of the SPECspeed INT benchmarks from
 * PCA + hierarchical clustering over the 140-metric feature vectors
 * (20 metrics x 7 machines), with Kaiser-criterion component
 * retention.
 *
 * Expected shape (paper): 605.mcf_s is the most distinct benchmark;
 * cutting at three clusters yields {605.mcf_s, 623.xalancbmk_s,
 * 641.leela_s} as representatives; 7 PCs cover >= 91% of variance.
 */

#include <cstdio>

#include "bench_common.h"
#include "core/similarity.h"
#include "core/subsetting.h"
#include "suites/spec2017.h"

using namespace speclens;

int
main(int argc, char **argv)
{
    bench::BenchOptions opts = bench::parseOptions(argc, argv);
    core::AnalysisSession session = bench::makeSession(opts);
    core::Characterizer &characterizer = session.characterizer();

    bench::banner("Fig. 2: SPECspeed INT dendrogram (PCA + hierarchical "
                  "clustering, 7 machines x 20 metrics)");

    auto suite = suites::spec2017SpeedInt();
    core::SimilarityResult sim = core::analyzeSimilarity(
        characterizer.featureMatrix(suite),
        suites::benchmarkNames(suite));

    std::printf("Retained %zu PCs covering %.1f%% of variance "
                "(Kaiser criterion; paper: 7 PCs, >= 91%%)\n\n",
                sim.pca.retained, 100.0 * sim.pca.variance_covered);
    std::fputs(sim.renderDendrogram().c_str(), stdout);

    std::printf("\nMost distinct benchmark: %s (paper: 605.mcf_s)\n",
                sim.labels[sim.mostDistinct()].c_str());

    core::SubsetResult subset = core::selectSubset(
        sim, 3, core::RepresentativeRule::ShortestLinkage, suite);
    std::printf("\n3-cluster cut at linkage distance %.2f:\n",
                subset.cut_height);
    for (std::size_t c = 0; c < subset.clusters.size(); ++c) {
        std::printf("  cluster %zu (rep %s):", c + 1,
                    subset.representatives[c].c_str());
        for (const std::string &name : subset.clusters[c])
            std::printf(" %s", name.c_str());
        std::printf("\n");
    }
    return 0;
}
