/**
 * @file
 * Reproduces Fig. 10: all 43 CPU2017 benchmarks in the PC spaces of
 * the data-cache and instruction-cache feature sets.
 *
 * Expected shape (paper): mcf, cactuBSSN and fotonik3d (both
 * versions) have the worst data locality; perlbench and cactuBSSN
 * have the most data-cache accesses; perlbench and gcc dominate the
 * instruction-cache activity while overall L1I MPKI stays modest
 * (0-11) — below emerging cloud workloads.
 */

#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "core/report.h"
#include "core/similarity.h"
#include "suites/spec2017.h"

using namespace speclens;

namespace {

void
scatter(core::Characterizer &characterizer, core::MetricSelection sel,
        const char *title)
{
    bench::banner(title);
    const auto &suite = suites::spec2017();
    core::SimilarityConfig config;
    config.retention = stats::RetentionPolicy::fixedCount(2);
    core::SimilarityResult sim = core::analyzeSimilarity(
        characterizer.featureMatrix(suite, sel),
        suites::benchmarkNames(suite), config);

    std::printf("PC1+PC2 cover %.1f%% of variance\n\n",
                100.0 * sim.pca.variance_covered);

    std::vector<core::ScatterPoint> points;
    for (std::size_t i = 0; i < suite.size(); ++i) {
        core::ScatterPoint p;
        p.x = sim.scores(i, 0);
        p.y = sim.scores.cols() > 1 ? sim.scores(i, 1) : 0.0;
        p.label = suite[i].name;
        p.glyph = suites::isFpCategory(suite[i].category) ? 'f' : 'I';
        points.push_back(p);
    }
    std::fputs(core::renderScatter(points, "PC1", "PC2").c_str(),
               stdout);

    // Extreme points along PC1 (locality) for the call-outs.
    std::printf("\n  PC1 extremes (worst locality first):\n");
    std::vector<std::size_t> order(suite.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  return sim.scores(a, 0) > sim.scores(b, 0);
              });
    for (std::size_t k = 0; k < 6; ++k) {
        std::printf("    %-18s PC1 = %6.2f\n",
                    suite[order[k]].name.c_str(),
                    sim.scores(order[k], 0));
    }
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchOptions opts = bench::parseOptions(argc, argv);
    core::AnalysisSession session = bench::makeSession(opts);
    core::Characterizer &characterizer = session.characterizer();

    scatter(characterizer, core::MetricSelection::DataCache,
            "Fig. 10 (left): data-cache PC space (paper: mcf / "
            "cactuBSSN / fotonik3d worst locality)");
    scatter(characterizer, core::MetricSelection::InstrCache,
            "Fig. 10 (right): instruction-cache PC space (paper: "
            "perlbench / gcc highest activity)");
    return 0;
}
