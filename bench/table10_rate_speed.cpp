/**
 * @file
 * Section IV-D as a table (the paper presents this analysis in prose
 * over Figs. 7/8): PC-space and linkage distances between every
 * rate/speed pair.
 *
 * Expected shape (paper): most pairs are very similar; 638.imagick_s
 * has the largest distance to its rate version (>= 30% more cache
 * misses at every level), bwaves differs strongly too, and omnetpp /
 * xalancbmk / x264 are the INT pairs with visible separation.
 */

#include <cstdio>

#include "bench_common.h"
#include "core/rate_speed.h"
#include "core/report.h"

using namespace speclens;

namespace {

void
analyze(core::Characterizer &characterizer, bool fp, const char *title)
{
    bench::banner(title);
    core::RateSpeedAnalysis analysis =
        core::analyzeRateSpeed(characterizer, fp);

    core::TextTable table({"Rate version", "Speed version",
                           "PC distance", "Linkage distance",
                           "vs median"});
    for (const core::RateSpeedPair &pair : analysis.pairs) {
        table.addRow({pair.rate, pair.speed,
                      core::TextTable::num(pair.pc_distance),
                      core::TextTable::num(pair.cophenetic),
                      core::TextTable::num(pair.pc_distance /
                                           analysis.median_distance) +
                          "x"});
    }
    std::fputs(table.render().c_str(), stdout);
    std::printf("Median pair distance: %.2f\n",
                analysis.median_distance);
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchOptions opts = bench::parseOptions(argc, argv);
    core::AnalysisSession session = bench::makeSession(opts);
    core::Characterizer &characterizer = session.characterizer();

    analyze(characterizer, false,
            "Rate vs. speed, INT pairs (paper: omnetpp, xalancbmk, "
            "x264 differ; rest similar)");
    analyze(characterizer, true,
            "Rate vs. speed, FP pairs (paper: imagick largest, bwaves "
            "next; nab/wrf/cactuBSSN similar)");
    return 0;
}
