/**
 * @file
 * Reproduces Fig. 1: CPI stacks of the CPU2017 *rate* benchmarks on
 * the simulated Skylake, following the top-down decomposition.
 *
 * Expected shape (paper): mcf_r and omnetpp_r have the highest CPI;
 * leela/mcf/xz spend heavily on front-end (branch) stalls;
 * omnetpp/xalancbmk/mcf/fotonik3d are back-end (cache/memory) bound;
 * blender and imagick are dominated by inter-instruction dependencies
 * ("other").
 */

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/report.h"
#include "suites/spec2017.h"

using namespace speclens;

int
main(int argc, char **argv)
{
    bench::BenchOptions opts = bench::parseOptions(argc, argv);
    core::AnalysisSession session = bench::makeSession(opts);
    core::Characterizer &characterizer = session.characterizer();

    bench::banner("Fig. 1: CPI stacks of the CPU2017 rate benchmarks "
                  "(simulated Skylake)");

    std::vector<suites::BenchmarkInfo> rate = suites::spec2017RateInt();
    for (const suites::BenchmarkInfo &b : suites::spec2017RateFp())
        rate.push_back(b);

    std::vector<std::string> labels;
    std::vector<std::vector<double>> stacks;
    for (const suites::BenchmarkInfo &b : rate) {
        const uarch::SimulationResult &sim =
            characterizer.simulation(b, 0);
        labels.push_back(b.name);
        stacks.push_back(sim.cpi_stack.components());
    }

    std::fputs(core::renderStackedBars(labels, stacks,
                                       uarch::CpiStack::componentNames())
                   .c_str(),
               stdout);

    // Highlight the paper's headline observations.
    double max_cpi = 0.0;
    std::string max_name;
    for (std::size_t i = 0; i < rate.size(); ++i) {
        const uarch::SimulationResult &sim =
            characterizer.simulation(rate[i], 0);
        if (sim.cpi() > max_cpi) {
            max_cpi = sim.cpi();
            max_name = rate[i].name;
        }
    }
    std::printf("\nHighest CPI: %s at %.2f (paper: mcf_r / omnetpp_r "
                "highest)\n",
                max_name.c_str(), max_cpi);

    // Bonus: the speed-benchmark stacks the paper omits for space
    // ("most speed benchmarks also have similar performance
    // correlations", Sec. II-B).
    bench::banner("Bonus: CPI stacks of the CPU2017 speed benchmarks "
                  "(paper: not shown due to space)");
    std::vector<suites::BenchmarkInfo> speed =
        suites::spec2017SpeedInt();
    for (const suites::BenchmarkInfo &b : suites::spec2017SpeedFp())
        speed.push_back(b);
    std::vector<std::string> speed_labels;
    std::vector<std::vector<double>> speed_stacks;
    for (const suites::BenchmarkInfo &b : speed) {
        const uarch::SimulationResult &sim =
            characterizer.simulation(b, 0);
        speed_labels.push_back(b.name);
        speed_stacks.push_back(sim.cpi_stack.components());
    }
    std::fputs(core::renderStackedBars(
                   speed_labels, speed_stacks,
                   uarch::CpiStack::componentNames())
                   .c_str(),
               stdout);
    return 0;
}
