/**
 * @file
 * Methodology validation bench: measurement noise versus clustering
 * signal.
 *
 * Re-measures every SPECrate INT benchmark under five independent
 * trace seeds on the Skylake model and reports, per canonical metric,
 * the within-benchmark standard deviation (noise) against the
 * across-benchmark standard deviation (signal).  The paper's
 * clustering methodology is sound only while signal >> noise; this
 * bench quantifies the margin for the simulated substrate.
 */

#include <cstdio>

#include "bench_common.h"
#include "core/report.h"
#include "core/stability.h"
#include "suites/spec2017.h"

using namespace speclens;

int
main(int argc, char **argv)
{
    bench::BenchOptions opts = bench::parseOptions(argc, argv);

    bench::banner("Measurement stability: within-benchmark noise vs "
                  "across-benchmark signal (SPECrate INT, Skylake, "
                  "5 seeds)");

    // The session exists for its store wiring: the (benchmark, trial)
    // re-measurements run through analyzeStability, not the
    // characterizer, but persist to (and replay from) the same store.
    core::AnalysisSession session =
        bench::makeSession(opts, {suites::skylakeMachine()});

    core::StabilityReport report = core::analyzeStability(
        suites::spec2017RateInt(), suites::skylakeMachine(), 5,
        opts.instructions, opts.warmup, opts.jobs, session.store());

    core::TextTable table({"Metric", "Noise (within)",
                           "Signal (across)", "SNR", "Informative?"});
    for (const core::MetricStability &m : report.metrics) {
        table.addRow({core::metricName(m.metric),
                      core::TextTable::num(m.noise, 3),
                      core::TextTable::num(m.signal, 3),
                      m.informative()
                          ? core::TextTable::num(m.snr(), 1)
                          : std::string("-"),
                      m.informative() ? "yes" : "no"});
    }
    std::fputs(table.render().c_str(), stdout);
    std::printf("\nWorst informative-metric SNR: %.1f "
                "(the clustering premise needs >> 1)\n",
                report.worstSnr());
    return 0;
}
