/**
 * @file
 * Reproduces Fig. 9: all 43 CPU2017 benchmarks (rate and speed) in
 * the PC1-PC2 plane of the *branch* feature space.
 *
 * Expected shape (paper): leela and mcf (both versions) suffer the
 * highest misprediction rates; mcf and gcc have the highest taken
 * fractions; C++ benchmarks (xalancbmk, omnetpp) have high taken
 * shares; FP benchmarks cluster together while INT spreads out; the
 * two PCs cover >= 94% of the variance.
 */

#include <cstdio>

#include "bench_common.h"
#include "core/report.h"
#include "core/similarity.h"
#include "suites/spec2017.h"

using namespace speclens;

int
main(int argc, char **argv)
{
    bench::BenchOptions opts = bench::parseOptions(argc, argv);
    core::AnalysisSession session = bench::makeSession(opts);
    core::Characterizer &characterizer = session.characterizer();

    bench::banner("Fig. 9: CPU2017 benchmarks in the branch-metric PC "
                  "space");

    const auto &suite = suites::spec2017();
    core::SimilarityConfig config;
    config.retention = stats::RetentionPolicy::fixedCount(2);
    core::SimilarityResult sim = core::analyzeSimilarity(
        characterizer.featureMatrix(suite, core::MetricSelection::Branch),
        suites::benchmarkNames(suite), config);

    std::printf("PC1+PC2 cover %.1f%% of variance (paper: >= 94%%)\n\n",
                100.0 * sim.pca.variance_covered);

    std::vector<core::ScatterPoint> points;
    for (std::size_t i = 0; i < suite.size(); ++i) {
        core::ScatterPoint p;
        p.x = sim.scores(i, 0);
        p.y = sim.scores.cols() > 1 ? sim.scores(i, 1) : 0.0;
        p.label = suite[i].name;
        p.glyph = suites::isFpCategory(suite[i].category) ? 'f' : 'I';
        points.push_back(p);
    }
    std::fputs(core::renderScatter(points, "PC1", "PC2").c_str(),
               stdout);
    std::printf("  glyphs: I = integer benchmark, f = floating-point "
                "benchmark\n\n");

    // Rank the extremes the paper calls out.
    core::TextTable table({"Benchmark", "PC1", "PC2", "branch MPKI",
                           "taken PKI"});
    for (const char *name :
         {"541.leela_r", "641.leela_s", "505.mcf_r", "605.mcf_s",
          "502.gcc_r", "523.xalancbmk_r", "520.omnetpp_r",
          "519.lbm_r", "603.bwaves_s"}) {
        std::size_t i = sim.indexOf(name);
        core::MetricVector mv = characterizer.metrics(suite[i], 0);
        table.addRow({name, core::TextTable::num(sim.scores(i, 0)),
                      core::TextTable::num(sim.scores(i, 1)),
                      core::TextTable::num(
                          mv.get(core::Metric::BranchMpki)),
                      core::TextTable::num(
                          mv.get(core::Metric::BranchTakenMpki), 0)});
    }
    std::fputs(table.render().c_str(), stdout);
    return 0;
}
