/**
 * @file
 * Reproduces Table VI: speedup-estimation error of the identified
 * subsets versus two fixed random subsets, per sub-suite — plus an
 * extension the paper motivates but does not run: the mean error over
 * 100 random subsets, characterising the whole random-subset
 * distribution.
 *
 * Expected shape (paper): identified 11% / 7% / 3% / 4.5%; random set
 * 1 averages 34.85% and random set 2 24.45% — the identified subsets
 * win decisively everywhere.
 */

#include <cstdio>

#include "bench_common.h"
#include "core/report.h"
#include "core/similarity.h"
#include "core/subsetting.h"
#include "core/validation.h"
#include "suites/score_database.h"
#include "suites/spec2017.h"

using namespace speclens;

int
main(int argc, char **argv)
{
    bench::BenchOptions opts = bench::parseOptions(argc, argv);
    core::AnalysisSession session = bench::makeSession(opts);
    core::Characterizer &characterizer = session.characterizer();

    bench::banner("Table VI: identified vs. random subsets "
                  "(average speedup-estimation error, %)");

    struct Row
    {
        const char *category;
        std::vector<suites::BenchmarkInfo> suite;
        suites::Category cat;
        const char *paper;
    };
    Row rows[] = {
        {"SPECspeed INT", suites::spec2017SpeedInt(),
         suites::Category::SpeedInt, "11%"},
        {"SPECrate INT", suites::spec2017RateInt(),
         suites::Category::RateInt, "7%"},
        {"SPECspeed FP", suites::spec2017SpeedFp(),
         suites::Category::SpeedFp, "3%"},
        {"SPECrate FP", suites::spec2017RateFp(),
         suites::Category::RateFp, "4.5%"},
    };

    suites::ScoreDatabase db;
    core::TextTable table({"Sub-suite", "Identified", "Rand set1",
                           "Rand set2", "Rand mean(100)", "Paper ident."});

    double ident_total = 0.0, rand_total = 0.0;
    for (const Row &row : rows) {
        core::SimilarityResult sim = core::analyzeSimilarity(
            characterizer.featureMatrix(row.suite),
            suites::benchmarkNames(row.suite));
        core::SubsetResult subset = core::selectSubset(
            sim, 3, core::RepresentativeRule::ShortestLinkage,
            row.suite);

        double identified =
            core::validateSubset(row.suite, subset.representatives,
                                 row.cat, db)
                .avg_error_pct;
        double rand1 =
            core::validateSubset(row.suite,
                                 core::randomSubset(row.suite, 3, 1),
                                 row.cat, db)
                .avg_error_pct;
        double rand2 =
            core::validateSubset(row.suite,
                                 core::randomSubset(row.suite, 3, 2),
                                 row.cat, db)
                .avg_error_pct;
        double rand_mean = core::averageRandomSubsetError(
            row.suite, 3, row.cat, db, 100, 99);

        ident_total += identified;
        rand_total += rand_mean;
        table.addRow({row.category, core::TextTable::num(identified, 1),
                      core::TextTable::num(rand1, 1),
                      core::TextTable::num(rand2, 1),
                      core::TextTable::num(rand_mean, 1), row.paper});
    }
    std::fputs(table.render().c_str(), stdout);
    std::printf("\nIdentified subsets mean error %.1f%% vs random-subset "
                "mean %.1f%% (paper random sets: 34.85%% and 24.45%%)\n",
                ident_total / 4.0, rand_total / 4.0);
    return 0;
}
