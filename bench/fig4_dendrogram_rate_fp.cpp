/**
 * @file
 * Reproduces Fig. 4: dendrogram of the SPECrate FP benchmarks (and,
 * as a bonus, the SPECrate INT dendrogram the paper omits for space).
 *
 * Expected shape (paper): 507.cactuBSSN_r is the most distinct FP
 * benchmark; the 3-benchmark subsets are {507.cactuBSSN_r,
 * 549.fotonik3d_r, 544.nab_r} for rate FP and {505.mcf_r,
 * 523.xalancbmk_r, 531.deepsjeng_r} for rate INT.
 */

#include <cstdio>

#include "bench_common.h"
#include "core/similarity.h"
#include "core/subsetting.h"
#include "suites/spec2017.h"

using namespace speclens;

namespace {

void
analyze(core::Characterizer &characterizer,
        const std::vector<suites::BenchmarkInfo> &suite,
        const char *title, const char *expectation)
{
    bench::banner(title);
    core::SimilarityResult sim = core::analyzeSimilarity(
        characterizer.featureMatrix(suite),
        suites::benchmarkNames(suite));

    std::printf("Retained %zu PCs covering %.1f%% of variance\n\n",
                sim.pca.retained, 100.0 * sim.pca.variance_covered);
    std::fputs(sim.renderDendrogram().c_str(), stdout);
    std::printf("\nMost distinct benchmark: %s\n",
                sim.labels[sim.mostDistinct()].c_str());

    core::SubsetResult subset = core::selectSubset(
        sim, 3, core::RepresentativeRule::ShortestLinkage, suite);
    std::printf("\n3-cluster cut at linkage distance %.2f (%s):\n",
                subset.cut_height, expectation);
    for (std::size_t c = 0; c < subset.clusters.size(); ++c) {
        std::printf("  cluster %zu (rep %s):", c + 1,
                    subset.representatives[c].c_str());
        for (const std::string &name : subset.clusters[c])
            std::printf(" %s", name.c_str());
        std::printf("\n");
    }
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchOptions opts = bench::parseOptions(argc, argv);
    core::AnalysisSession session = bench::makeSession(opts);
    core::Characterizer &characterizer = session.characterizer();

    analyze(characterizer, suites::spec2017RateFp(),
            "Fig. 4: SPECrate FP dendrogram",
            "paper subset: 507.cactuBSSN_r, 549.fotonik3d_r, 544.nab_r");
    analyze(characterizer, suites::spec2017RateInt(),
            "Bonus: SPECrate INT dendrogram (paper omits for space)",
            "paper subset: 505.mcf_r, 523.xalancbmk_r, 531.deepsjeng_r");
    return 0;
}
