/**
 * @file
 * Serve-daemon load test: M client threads fire a deterministic mix of
 * characterize / subset / sensitivity / stats queries at an in-process
 * server and the harness reports latency percentiles, store / LRU hit
 * rates and in-flight dedup savings.
 *
 * Output conventions (the bench-suite contract):
 *  - stdout: deterministic facts only — the request mix, response-ok
 *    counts and the cross-client parity verdict.  Byte-identical
 *    across runs with the same flags.
 *  - stderr: timing — p50/p99 latency, throughput, hit rates.
 *  - --out FILE: the timing numbers as a small JSON artifact.  The
 *    file must NOT be named like a BENCH_<pr>.json trajectory (that
 *    schema is linted); the default name is serve_loadtest.json.
 *
 * Exit status is non-zero when any response fails or when two clients
 * receive different bytes for the same query — the daemon must be a
 * pure function of the request.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/artifact_store.h"
#include "core/service_context.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"

using namespace speclens;

namespace {

/** The deterministic request mix, indexed by (client, request). */
serve::Request
mixedRequest(std::size_t client, std::size_t index)
{
    static const char *kBenchmarks[] = {
        "505.mcf_r", "519.lbm_r", "557.xz_r", "605.mcf_s",
        "523.xalancbmk_r", "508.namd_r", "531.deepsjeng_r",
        "541.leela_r",
    };
    static const char *kCategories[] = {"rate-int", "speed-int",
                                        "rate-fp", "speed-fp"};
    static const char *kMetrics[] = {"branch", "l1d", "dtlb"};

    serve::Request request;
    std::size_t roll = (client * 7 + index) % 10;
    if (roll < 6) {
        // 60% characterize; step through the benchmark list so
        // concurrent clients keep colliding on the same cells (the
        // dedup path) without all asking the same question.
        request.op = serve::Op::Characterize;
        request.benchmarks = {kBenchmarks[(client + index) % 8]};
    } else if (roll < 8) {
        request.op = serve::Op::Subset;
        request.category = kCategories[(client + index) % 4];
        request.k = 3;
    } else if (roll < 9) {
        request.op = serve::Op::Sensitivity;
        request.metric = kMetrics[(client + index) % 3];
    } else {
        request.op = serve::Op::Stats;
    }
    return request;
}

/** Key identifying a query's expected-identical output. */
std::string
parityKey(const serve::Request &request)
{
    return serve::encodeRequest(request);
}

struct ClientResult
{
    std::vector<std::uint64_t> latencies_ns;
    std::size_t ok = 0;
    std::size_t failed = 0;
};

} // namespace

int
main(int argc, char **argv)
{
    std::size_t clients = 8;
    std::size_t requests = 40;
    std::string out_path = "serve_loadtest.json";
    bench::BenchOptions opts;
    opts.instructions = 15'000;
    opts.warmup = 5'000;

    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--help") == 0) {
            std::printf(
                "usage: %s [--clients M] [--requests N] [--out FILE]\n"
                "       [--instructions N] [--warmup N] [--jobs N]\n"
                "       [--seed-salt N] [--store DIR]\n",
                argv[0]);
            return 0;
        }
        if (std::strcmp(argv[i], "--clients") == 0)
            clients = static_cast<std::size_t>(
                bench::numericFlagValue("--clients", argc, argv, i));
        else if (std::strcmp(argv[i], "--requests") == 0)
            requests = static_cast<std::size_t>(
                bench::numericFlagValue("--requests", argc, argv, i));
        else if (std::strcmp(argv[i], "--out") == 0)
            out_path =
                bench::stringFlagValue("--out", argc, argv, i);
        else if (std::strcmp(argv[i], "--instructions") == 0)
            opts.instructions = bench::numericFlagValue(
                "--instructions", argc, argv, i);
        else if (std::strcmp(argv[i], "--warmup") == 0)
            opts.warmup =
                bench::numericFlagValue("--warmup", argc, argv, i);
        else if (std::strcmp(argv[i], "--jobs") == 0)
            opts.jobs = static_cast<std::size_t>(
                bench::numericFlagValue("--jobs", argc, argv, i));
        else if (std::strcmp(argv[i], "--seed-salt") == 0)
            opts.seed_salt =
                bench::numericFlagValue("--seed-salt", argc, argv, i);
        else if (std::strcmp(argv[i], "--store") == 0)
            opts.store_dir =
                bench::stringFlagValue("--store", argc, argv, i);
        else {
            std::fprintf(stderr,
                         "unknown option: %s (try --help)\n", argv[i]);
            return 1;
        }
    }
    if (clients == 0 || requests == 0) {
        std::fprintf(stderr,
                     "error: --clients and --requests must be > 0\n");
        return 1;
    }

    serve::ServerConfig config;
    config.service.characterization.instructions = opts.instructions;
    config.service.characterization.warmup = opts.warmup;
    config.service.characterization.seed_salt = opts.seed_salt;
    config.service.characterization.jobs = opts.jobs;
    config.service.store_dir = opts.store_dir;

    serve::Server server(config);
    std::string error;
    if (!server.start(&error)) {
        std::fprintf(stderr, "error: %s\n", error.c_str());
        return 1;
    }
    std::thread accept_thread([&server]() { server.serveForever(); });

    std::mutex parity_mutex;
    std::map<std::string, std::string> parity; // request -> output
    bool parity_ok = true;

    std::vector<ClientResult> results(clients);
    std::vector<std::thread> threads;
    auto wall_start = std::chrono::steady_clock::now();
    for (std::size_t c = 0; c < clients; ++c) {
        threads.emplace_back([&, c]() {
            serve::Client client;
            std::string connect_error;
            if (!client.connect("127.0.0.1", server.port(),
                                &connect_error)) {
                results[c].failed = requests;
                return;
            }
            for (std::size_t r = 0; r < requests; ++r) {
                serve::Request request = mixedRequest(c, r);
                serve::Response response;
                std::string call_error;
                auto start = std::chrono::steady_clock::now();
                bool sent =
                    client.call(request, &response, &call_error);
                auto stop = std::chrono::steady_clock::now();
                if (!sent || !response.ok) {
                    ++results[c].failed;
                    continue;
                }
                ++results[c].ok;
                results[c].latencies_ns.push_back(
                    static_cast<std::uint64_t>(
                        std::chrono::duration_cast<
                            std::chrono::nanoseconds>(stop - start)
                            .count()));
                // `stats` output is intentionally run-dependent;
                // every other op must be a pure function of the
                // request.
                if (request.op != serve::Op::Stats) {
                    std::lock_guard<std::mutex> lock(parity_mutex);
                    auto [it, inserted] = parity.emplace(
                        parityKey(request), response.output);
                    if (!inserted && it->second != response.output)
                        parity_ok = false;
                }
            }
        });
    }
    for (std::thread &thread : threads)
        thread.join();
    auto wall_stop = std::chrono::steady_clock::now();

    // Drain the server before reading its context counters.
    server.requestDrain();
    accept_thread.join();

    std::vector<std::uint64_t> latencies;
    std::size_t ok = 0, failed = 0;
    for (const ClientResult &result : results) {
        ok += result.ok;
        failed += result.failed;
        latencies.insert(latencies.end(),
                         result.latencies_ns.begin(),
                         result.latencies_ns.end());
    }
    std::sort(latencies.begin(), latencies.end());
    auto percentile = [&](double p) -> std::uint64_t {
        if (latencies.empty())
            return 0;
        std::size_t index = static_cast<std::size_t>(
            p * static_cast<double>(latencies.size() - 1));
        return latencies[index];
    };
    double wall_ms =
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                wall_stop - wall_start)
                .count()) /
        1000.0;

    core::ServiceContext &context = *server.context();
    std::size_t simulations = context.simulationsRun();
    std::size_t store_hits = 0, lru_hits = 0, dedup_shared = 0,
                memo_hits = 0;
    if (core::CampaignStore *store = context.store()) {
        core::StoreCounters counters = store->counters();
        store_hits = counters.hits;
        lru_hits = counters.lru_hits;
    }
    if (obs::kMetricsEnabled) {
        obs::Snapshot snapshot = obs::Registry::global().snapshot();
        for (const auto &[name, value] : snapshot.counters) {
            if (name == "core.characterize.dedup_shared")
                dedup_shared = static_cast<std::size_t>(value);
            if (name == "core.characterize.memo_hits")
                memo_hits = static_cast<std::size_t>(value);
        }
    }

    // ----- Deterministic facts (stdout) ----------------------------
    std::printf("serve loadtest: %zu clients x %zu requests\n",
                clients, requests);
    std::printf("responses: ok=%zu failed=%zu\n", ok, failed);
    std::printf("parity: identical responses across clients: %s\n",
                parity_ok ? "yes" : "NO");

    // ----- Timing (stderr) -----------------------------------------
    std::fprintf(stderr,
                 "latency: p50=%.3f ms p99=%.3f ms (n=%zu)\n",
                 static_cast<double>(percentile(0.50)) / 1e6,
                 static_cast<double>(percentile(0.99)) / 1e6,
                 latencies.size());
    std::fprintf(stderr,
                 "throughput: %.1f req/s (wall %.1f ms)\n",
                 wall_ms > 0.0 ? static_cast<double>(ok) * 1000.0 /
                                     wall_ms
                               : 0.0,
                 wall_ms);
    std::fprintf(stderr,
                 "reuse: simulations=%zu store_hits=%zu lru_hits=%zu "
                 "memo_hits=%zu dedup_shared=%zu\n",
                 simulations, store_hits, lru_hits, memo_hits,
                 dedup_shared);

    if (!out_path.empty()) {
        std::ofstream file(out_path, std::ios::trunc);
        if (!file) {
            std::fprintf(stderr, "error: cannot write %s\n",
                         out_path.c_str());
            return 1;
        }
        file << "{\n"
             << "  \"bench\": \"serve_loadtest\",\n"
             << "  \"clients\": " << clients << ",\n"
             << "  \"requests_per_client\": " << requests << ",\n"
             << "  \"ok\": " << ok << ",\n"
             << "  \"failed\": " << failed << ",\n"
             << "  \"parity\": " << (parity_ok ? "true" : "false")
             << ",\n"
             << "  \"p50_ns\": " << percentile(0.50) << ",\n"
             << "  \"p99_ns\": " << percentile(0.99) << ",\n"
             << "  \"wall_ms\": " << wall_ms << ",\n"
             << "  \"simulations\": " << simulations << ",\n"
             << "  \"store_hits\": " << store_hits << ",\n"
             << "  \"lru_hits\": " << lru_hits << ",\n"
             << "  \"memo_hits\": " << memo_hits << ",\n"
             << "  \"dedup_shared\": " << dedup_shared << "\n"
             << "}\n";
    }

    return (failed == 0 && parity_ok) ? 0 : 1;
}
