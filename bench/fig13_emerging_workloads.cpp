/**
 * @file
 * Reproduces Fig. 13 and Sections V-D/E/F: CPU2017 together with the
 * EDA (175.vpr, 300.twolf), database (cas-WA, cas-WC) and graph
 * analytics (pr/cc on two graphs) workloads.
 *
 * Expected shape (paper): the EDA benchmarks sit close to mcf
 * (covered); Cassandra is far from everything (instruction cache /
 * I-TLB pressure; NOT covered); PageRank is far out due to extreme
 * D-TLB activity (NOT covered); Connected Components behaves like
 * leela / deepsjeng / xz (covered).
 */

#include <cstdio>

#include "bench_common.h"
#include "core/balance.h"
#include "core/report.h"
#include "core/similarity.h"
#include "suites/emerging.h"
#include "suites/spec2017.h"

using namespace speclens;

int
main(int argc, char **argv)
{
    bench::BenchOptions opts = bench::parseOptions(argc, argv);
    core::AnalysisSession session = bench::makeSession(opts);
    core::Characterizer &characterizer = session.characterizer();

    bench::banner("Fig. 13: CPU2017 + EDA + database + graph analytics "
                  "dendrogram");

    std::vector<suites::BenchmarkInfo> joint = suites::spec2017();
    for (const suites::BenchmarkInfo &b : suites::emergingBenchmarks())
        joint.push_back(b);

    core::SimilarityResult sim = core::analyzeSimilarity(
        characterizer.featureMatrix(joint),
        suites::benchmarkNames(joint));
    std::printf("Retained %zu PCs covering %.1f%% of variance\n\n",
                sim.pca.retained, 100.0 * sim.pca.variance_covered);
    std::fputs(sim.renderDendrogram().c_str(), stdout);

    bench::banner("Coverage verdicts (Sections V-D/E/F)");
    auto verdicts = core::coverageAnalysis(characterizer,
                                           suites::spec2017(),
                                           suites::emergingBenchmarks());
    core::TextTable table({"Workload", "Nearest CPU2017 benchmark",
                           "NN distance", "Covered?", "Paper verdict"});
    auto paper_verdict = [](const std::string &name) {
        if (name == "175.vpr" || name == "300.twolf")
            return "covered (near mcf)";
        if (name.rfind("cas-", 0) == 0)
            return "NOT covered (I-cache/I-TLB)";
        if (name.rfind("pr-", 0) == 0)
            return "NOT covered (D-TLB)";
        return "covered (near leela/deepsjeng/xz)";
    };
    for (const core::CoverageVerdict &v : verdicts) {
        table.addRow({v.benchmark, v.nearest,
                      core::TextTable::num(v.nn_distance),
                      v.covered ? "yes" : "NO",
                      paper_verdict(v.benchmark)});
    }
    std::fputs(table.render().c_str(), stdout);
    return 0;
}
