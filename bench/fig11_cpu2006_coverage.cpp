/**
 * @file
 * Reproduces Fig. 11 and the Section V-B coverage study: CPU2017 and
 * CPU2006 in a joint PC workload space.
 *
 * Expected shape (paper): in PC1-PC2 CPU2017 only slightly expands
 * coverage but > 25% of its benchmarks fall outside the CPU2006
 * region; in PC3-PC4 CPU2017 covers about twice the area; of the
 * removed CPU2006 benchmarks only 429.mcf, 445.gobmk and 473.astar
 * are not covered by CPU2017.
 */

#include <cstdio>

#include "bench_common.h"
#include "core/balance.h"
#include "core/report.h"
#include "suites/spec2006.h"
#include "suites/spec2017.h"

using namespace speclens;

int
main(int argc, char **argv)
{
    bench::BenchOptions opts = bench::parseOptions(argc, argv);
    core::AnalysisSession session = bench::makeSession(opts);
    core::Characterizer &characterizer = session.characterizer();

    bench::banner("Fig. 11: CPU2017 vs CPU2006 in the PC workload "
                  "space");

    const auto &suite17 = suites::spec2017();
    const auto &suite06 = suites::spec2006();

    core::SimilarityConfig config;
    config.retention = stats::RetentionPolicy::fixedCount(4);
    core::SuiteComparison cmp = core::compareSuites(
        characterizer, suite17, suite06,
        core::MetricSelection::Canonical, {}, config);

    std::printf("Top-4 PCs cover %.1f%% of variance (paper: ~80%%)\n\n",
                100.0 * cmp.similarity.pca.variance_covered);

    for (const core::PlaneCoverage *plane : {&cmp.pc12, &cmp.pc34}) {
        std::printf("PC%zu-PC%zu plane:\n", plane->pc_x + 1,
                    plane->pc_y + 1);
        std::printf("  CPU2017 hull area: %8.2f\n", plane->area_a);
        std::printf("  CPU2006 hull area: %8.2f\n", plane->area_b);
        std::printf("  area ratio 2017/2006: %.2fx\n",
                    plane->area_ratio);
        std::printf("  CPU2017 benchmarks outside the CPU2006 region: "
                    "%.0f%%\n\n",
                    100.0 * plane->a_outside_b);
    }
    std::printf("Paper: PC1-PC2 slightly expanded, > 25%% of CPU2017 "
                "outside; PC3-PC4 area ~2x.\n");

    // Scatter of the joint space for visual reference.
    std::vector<core::ScatterPoint> points;
    for (std::size_t i = 0; i < suite17.size(); ++i)
        points.push_back({cmp.similarity.scores(i, 0),
                          cmp.similarity.scores(i, 1), suite17[i].name,
                          '7'});
    for (std::size_t i = 0; i < suite06.size(); ++i) {
        std::size_t row = suite17.size() + i;
        points.push_back({cmp.similarity.scores(row, 0),
                          cmp.similarity.scores(row, 1),
                          suite06[i].name, '6'});
    }
    std::fputs(core::renderScatter(points, "PC1", "PC2").c_str(),
               stdout);
    std::printf("  glyphs: 7 = CPU2017, 6 = CPU2006\n");

    bench::banner("Section V-B: coverage of removed CPU2006 "
                  "benchmarks");
    auto verdicts = core::coverageAnalysis(
        characterizer, suite17, suites::spec2006RemovedBenchmarks());

    core::TextTable table({"Removed benchmark", "Nearest CPU2017",
                           "NN distance", "Covered?"});
    for (const core::CoverageVerdict &v : verdicts) {
        table.addRow({v.benchmark, v.nearest,
                      core::TextTable::num(v.nn_distance),
                      v.covered ? "yes" : "NO"});
    }
    std::fputs(table.render().c_str(), stdout);
    std::printf("\nPaper: only 429.mcf, 445.gobmk and 473.astar are "
                "not covered.\n");
    return 0;
}
