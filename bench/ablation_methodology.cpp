/**
 * @file
 * Methodology ablations for the design decisions DESIGN.md calls out:
 *
 *  1. linkage rule (single / complete / average / Ward) — effect on
 *     subset validation error;
 *  2. PCA retention (Kaiser vs fixed counts vs raw metric space) —
 *     effect on validation error and retained dimensionality;
 *  3. representative rule (shortest-linkage vs medoid);
 *  4. number of profiling machines (1 vs all 7) — the single-machine
 *     bias the paper's multi-machine methodology exists to remove.
 *
 * Each ablation reports the mean subset-validation error across the
 * four CPU2017 sub-suites, so rows are directly comparable.
 */

#include <cstdio>
#include <functional>

#include "bench_common.h"
#include "core/report.h"
#include "core/similarity.h"
#include "core/subsetting.h"
#include "core/validation.h"
#include "stats/kmeans.h"
#include "suites/score_database.h"
#include "suites/spec2017.h"

using namespace speclens;

namespace {

struct SubSuite
{
    std::vector<suites::BenchmarkInfo> suite;
    suites::Category category;
};

std::vector<SubSuite>
subSuites()
{
    return {{suites::spec2017SpeedInt(), suites::Category::SpeedInt},
            {suites::spec2017RateInt(), suites::Category::RateInt},
            {suites::spec2017SpeedFp(), suites::Category::SpeedFp},
            {suites::spec2017RateFp(), suites::Category::RateFp}};
}

/** Mean validation error over the four sub-suites for a config. */
double
meanError(core::Characterizer &characterizer,
          const core::SimilarityConfig &config,
          core::RepresentativeRule rule,
          const std::vector<std::size_t> &machines)
{
    suites::ScoreDatabase db;
    double total = 0.0;
    for (const SubSuite &s : subSuites()) {
        stats::Matrix features =
            machines.empty()
                ? characterizer.featureMatrix(s.suite)
                : characterizer.featureMatrix(
                      s.suite, core::MetricSelection::Canonical,
                      machines);
        core::SimilarityResult sim = core::analyzeSimilarity(
            features, suites::benchmarkNames(s.suite), config);
        core::SubsetResult subset =
            core::selectSubset(sim, 3, rule, s.suite);
        total += core::validateSubset(s.suite, subset.representatives,
                                      s.category, db)
                     .avg_error_pct;
    }
    return total / 4.0;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchOptions opts = bench::parseOptions(argc, argv);
    core::AnalysisSession session = bench::makeSession(opts);
    core::Characterizer &characterizer = session.characterizer();

    bench::banner("Ablation 1: linkage rule (mean subset validation "
                  "error across the 4 sub-suites)");
    {
        core::TextTable table({"Linkage", "Mean error (%)"});
        for (stats::Linkage linkage :
             {stats::Linkage::Single, stats::Linkage::Complete,
              stats::Linkage::Average, stats::Linkage::Ward}) {
            core::SimilarityConfig config;
            config.linkage = linkage;
            table.addRow({stats::linkageName(linkage),
                          core::TextTable::num(
                              meanError(characterizer, config,
                                        core::RepresentativeRule::
                                            ShortestLinkage,
                                        {}),
                              1)});
        }
        std::fputs(table.render().c_str(), stdout);
    }

    bench::banner("Ablation 2: PCA retention policy");
    {
        struct Policy
        {
            const char *name;
            stats::RetentionPolicy policy;
        };
        Policy policies[] = {
            {"kaiser (>= 1)", stats::RetentionPolicy::kaiser()},
            {"fixed 2 PCs", stats::RetentionPolicy::fixedCount(2)},
            {"fixed 4 PCs", stats::RetentionPolicy::fixedCount(4)},
            {"90% variance",
             stats::RetentionPolicy::varianceCovered(0.90)},
            {"raw space (all PCs)",
             stats::RetentionPolicy::varianceCovered(1.0)},
        };
        core::TextTable table({"Retention", "Mean error (%)"});
        for (const Policy &p : policies) {
            core::SimilarityConfig config;
            config.retention = p.policy;
            table.addRow(
                {p.name,
                 core::TextTable::num(
                     meanError(characterizer, config,
                               core::RepresentativeRule::ShortestLinkage,
                               {}),
                     1)});
        }
        std::fputs(table.render().c_str(), stdout);
    }

    bench::banner("Ablation 3: representative rule");
    {
        core::TextTable table({"Rule", "Mean error (%)"});
        for (core::RepresentativeRule rule :
             {core::RepresentativeRule::ShortestLinkage,
              core::RepresentativeRule::Medoid}) {
            table.addRow({core::representativeRuleName(rule),
                          core::TextTable::num(
                              meanError(characterizer, {}, rule, {}),
                              1)});
        }
        std::fputs(table.render().c_str(), stdout);
    }

    bench::banner("Ablation 5: clustering method (hierarchical Ward vs "
                  "k-means, silhouette at k=3)");
    {
        core::TextTable table({"Sub-suite", "Ward error (%)",
                               "k-means error (%)", "Ward silhouette",
                               "k-means silhouette"});
        suites::ScoreDatabase db;
        for (const SubSuite &s : subSuites()) {
            core::SimilarityResult sim = core::analyzeSimilarity(
                characterizer.featureMatrix(s.suite),
                suites::benchmarkNames(s.suite));

            core::SubsetResult ward = core::selectSubset(
                sim, 3, core::RepresentativeRule::ShortestLinkage,
                s.suite);
            core::SubsetResult km =
                core::selectSubsetKmeans(sim, 3, 1, s.suite);

            auto assignment_of =
                [&](const core::SubsetResult &subset) {
                    std::vector<std::size_t> assignment(
                        sim.labels.size(), 0);
                    for (std::size_t c = 0; c < subset.clusters.size();
                         ++c) {
                        for (const std::string &name :
                             subset.clusters[c])
                            assignment[sim.indexOf(name)] = c;
                    }
                    return assignment;
                };

            table.addRow(
                {suites::categoryName(s.category),
                 core::TextTable::num(
                     core::validateSubset(s.suite,
                                          ward.representatives,
                                          s.category, db)
                         .avg_error_pct,
                     1),
                 core::TextTable::num(
                     core::validateSubset(s.suite, km.representatives,
                                          s.category, db)
                         .avg_error_pct,
                     1),
                 core::TextTable::num(stats::silhouetteScore(
                     sim.scores, assignment_of(ward))),
                 core::TextTable::num(stats::silhouetteScore(
                     sim.scores, assignment_of(km)))});
        }
        std::fputs(table.render().c_str(), stdout);
    }

    bench::banner("Ablation 4: number of profiling machines");
    {
        core::TextTable table({"Machines", "Mean error (%)"});
        table.addRow({"Skylake only",
                      core::TextTable::num(
                          meanError(characterizer, {},
                                    core::RepresentativeRule::
                                        ShortestLinkage,
                                    {0}),
                          1)});
        table.addRow({"SPARC T4 only",
                      core::TextTable::num(
                          meanError(characterizer, {},
                                    core::RepresentativeRule::
                                        ShortestLinkage,
                                    {5}),
                          1)});
        table.addRow({"all 7 (paper)",
                      core::TextTable::num(
                          meanError(characterizer, {},
                                    core::RepresentativeRule::
                                        ShortestLinkage,
                                    {}),
                          1)});
        std::fputs(table.render().c_str(), stdout);
    }
    return 0;
}
