/**
 * @file
 * Reproduces Fig. 3: dendrogram of the SPECspeed FP benchmarks.
 *
 * Expected shape (paper): 607.cactuBSSN_s has the most distinctive
 * performance characteristics (unique memory + TLB behaviour); the
 * 3-benchmark subset is {607.cactuBSSN_s, 621.wrf_s, 654.roms_s}.
 */

#include <cstdio>

#include "bench_common.h"
#include "core/similarity.h"
#include "core/subsetting.h"
#include "suites/spec2017.h"

using namespace speclens;

int
main(int argc, char **argv)
{
    bench::BenchOptions opts = bench::parseOptions(argc, argv);
    core::AnalysisSession session = bench::makeSession(opts);
    core::Characterizer &characterizer = session.characterizer();

    bench::banner("Fig. 3: SPECspeed FP dendrogram");

    auto suite = suites::spec2017SpeedFp();
    core::SimilarityResult sim = core::analyzeSimilarity(
        characterizer.featureMatrix(suite),
        suites::benchmarkNames(suite));

    std::printf("Retained %zu PCs covering %.1f%% of variance\n\n",
                sim.pca.retained, 100.0 * sim.pca.variance_covered);
    std::fputs(sim.renderDendrogram().c_str(), stdout);

    std::printf("\nMost distinct benchmark: %s (paper: 607.cactuBSSN_s)\n",
                sim.labels[sim.mostDistinct()].c_str());

    core::SubsetResult subset = core::selectSubset(
        sim, 3, core::RepresentativeRule::ShortestLinkage, suite);
    std::printf("\n3-cluster cut at linkage distance %.2f "
                "(paper subset: 607.cactuBSSN_s, 621.wrf_s, "
                "654.roms_s):\n",
                subset.cut_height);
    for (std::size_t c = 0; c < subset.clusters.size(); ++c) {
        std::printf("  cluster %zu (rep %s):", c + 1,
                    subset.representatives[c].c_str());
        for (const std::string &name : subset.clusters[c])
            std::printf(" %s", name.c_str());
        std::printf("\n");
    }
    return 0;
}
