/**
 * @file
 * Memory-centric model family: prefetch coverage/accuracy/timeliness,
 * way-prediction accuracy and DRAM row-buffer behaviour across the
 * suites::memoryCentricMachines() Skylake variants.
 *
 * The per-benchmark tables are rendered through the same
 * core::runMemoryQuery used by `speclens memory` and the serve
 * daemon's `memory` op, so this bench, the batch CLI and the daemon
 * print byte-identical reports for the same window (the CI warm-store
 * stage relies on that).  A second section aggregates the raw prefetch
 * accounting over the whole campaign — the figures the
 * fills == useful + evicted + resident identity holds over.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/query_ops.h"
#include "core/report.h"
#include "suites/spec2017.h"
#include "uarch/simulation.h"

using namespace speclens;

int
main(int argc, char **argv)
{
    bench::BenchOptions opts = bench::parseOptions(argc, argv);

    bench::banner("Memory-centric model: prefetchers, way prediction "
                  "and the DRAM row buffer");

    core::AnalysisSession session =
        bench::makeSession(opts, suites::memoryCentricMachines());

    // Streaming vs pointer-chasing split of the ablation bench: the
    // classes the three prefetch engines are supposed to tell apart.
    const std::vector<std::string> benchmarks = {
        "519.lbm_r",    "503.bwaves_r",  "554.roms_r",
        "649.fotonik3d_s", "505.mcf_r",  "520.omnetpp_r",
        "557.xz_r",     "541.leela_r",
    };

    core::QueryOutcome outcome =
        core::runMemoryQuery(session.context(), benchmarks);
    if (!outcome.ok) {
        std::fprintf(stderr, "%s\n", outcome.error.c_str());
        return 1;
    }
    std::fputs(outcome.output.c_str(), stdout);

    bench::banner("Campaign-aggregate prefetch accounting");

    core::Characterizer &characterizer = session.characterizer();
    core::TextTable table({"Machine", "Pf fills", "Useful", "Evicted",
                           "Row hits", "DRAM acc", "BW util"});
    for (std::size_t m = 0; m < characterizer.machines().size(); ++m) {
        uarch::PerfCounters total;
        for (const std::string &name : benchmarks) {
            const auto &b = suites::spec2017Benchmark(name);
            total += characterizer.simulation(b, m).counters;
        }
        table.addRow(
            {characterizer.machines()[m].short_name,
             std::to_string(total.prefetch_fills),
             std::to_string(total.prefetch_useful),
             std::to_string(total.prefetch_evicted_unused),
             std::to_string(total.dram_row_hits),
             std::to_string(total.dram_accesses),
             core::TextTable::num(total.dramBwUtilization(), 3)});
    }
    std::fputs(table.render().c_str(), stdout);

    std::printf(
        "\nEvery fill is either consumed by a demand hit (Useful), "
        "evicted untouched\n(Evicted) or still resident — the "
        "difference of the first three columns.\nThe old accounting "
        "lost that identity whenever its tracking set hit 65536\n"
        "entries; the per-line bits it was replaced with cannot.\n");
    return 0;
}
