/**
 * @file
 * Reproduces Table VII: the most representative input set of every
 * multi-input CPU2017 benchmark — the input whose characteristics sit
 * closest to the benchmark's aggregate behaviour.
 */

#include <cstdio>

#include "bench_common.h"
#include "core/input_set_analysis.h"
#include "core/report.h"
#include "suites/input_sets.h"

using namespace speclens;

int
main(int argc, char **argv)
{
    bench::BenchOptions opts = bench::parseOptions(argc, argv);
    core::AnalysisSession session = bench::makeSession(opts);
    core::Characterizer &characterizer = session.characterizer();

    bench::banner("Table VII: representative input sets of multi-input "
                  "CPU2017 benchmarks");

    core::TextTable table({"Benchmark", "Representative input",
                           "Distance to aggregate", "Group spread"});

    for (bool fp : {false, true}) {
        auto groups = fp ? suites::inputSetGroupsFp()
                         : suites::inputSetGroupsInt();
        core::InputSetAnalysis analysis =
            core::analyzeInputSets(characterizer, groups);
        for (const core::RepresentativeInput &rep :
             analysis.representatives) {
            table.addRow({rep.benchmark,
                          "input set " + std::to_string(rep.input_index),
                          core::TextTable::num(rep.distance_to_aggregate),
                          core::TextTable::num(rep.group_spread)});
        }
    }
    std::fputs(table.render().c_str(), stdout);
    std::printf(
        "\nPaper Table VII: perlbench_r #1, gcc_r #2, x264_r #3, "
        "xz_r #1, perlbench_s #1,\ngcc_s #1, x264_s #3, xz_s #1, "
        "bwaves_r #1, bwaves_s #1.  The specific index depends on\n"
        "the (proprietary) inputs; the reproducible claim is that one "
        "input suffices because\ngroup spreads are small.\n");
    return 0;
}
