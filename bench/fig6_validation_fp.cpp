/**
 * @file
 * Reproduces Fig. 6: validation of the FP subsets against the score
 * database (see fig5_validation_int.cpp).
 *
 * Expected shape (paper): ~3% average error for speed FP (3 of 10
 * benchmarks) and ~4.5% for rate FP (3 of 13).
 */

#include <cstdio>

#include "bench_common.h"
#include "core/report.h"
#include "core/similarity.h"
#include "core/subsetting.h"
#include "core/validation.h"
#include "suites/score_database.h"
#include "suites/spec2017.h"

using namespace speclens;

namespace {

void
validate(core::Characterizer &characterizer,
         const std::vector<suites::BenchmarkInfo> &suite,
         suites::Category category, const char *title)
{
    bench::banner(title);

    core::SimilarityResult sim = core::analyzeSimilarity(
        characterizer.featureMatrix(suite),
        suites::benchmarkNames(suite));
    core::SubsetResult subset = core::selectSubset(
        sim, 3, core::RepresentativeRule::ShortestLinkage, suite);

    suites::ScoreDatabase db;
    core::ValidationResult result =
        core::validateSubset(suite, subset.representatives, category, db);

    core::TextTable table({"System", "Full-suite score", "Subset score",
                           "Error (%)"});
    for (const core::SystemValidation &v : result.per_system) {
        table.addRow({v.system, core::TextTable::num(v.full_score),
                      core::TextTable::num(v.subset_score),
                      core::TextTable::num(v.error_pct, 1)});
    }
    std::fputs(table.render().c_str(), stdout);
    std::printf("Average error: %.1f%%   Max error: %.1f%%\n",
                result.avg_error_pct, result.max_error_pct);
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchOptions opts = bench::parseOptions(argc, argv);
    core::AnalysisSession session = bench::makeSession(opts);
    core::Characterizer &characterizer = session.characterizer();

    validate(characterizer, suites::spec2017SpeedFp(),
             suites::Category::SpeedFp,
             "Fig. 6 (top): SPECspeed FP subset validation "
             "(paper: avg error ~3%)");
    validate(characterizer, suites::spec2017RateFp(),
             suites::Category::RateFp,
             "Fig. 6 (bottom): SPECrate FP subset validation "
             "(paper: avg error ~4.5%)");
    return 0;
}
