/**
 * @file
 * Set-associative cache implementation.
 */

#include "cache.h"

#include <bit>
#include <stdexcept>

namespace speclens {
namespace uarch {

std::string
replacementPolicyName(ReplacementPolicy policy)
{
    switch (policy) {
      case ReplacementPolicy::Lru: return "lru";
      case ReplacementPolicy::TreePlru: return "tree-plru";
      case ReplacementPolicy::Fifo: return "fifo";
      case ReplacementPolicy::Random: return "random";
    }
    return "unknown";
}

std::uint64_t
CacheConfig::sets() const
{
    std::uint64_t line_capacity = size_bytes / line_bytes;
    return associativity == 0 ? 0 : line_capacity / associativity;
}

void
CacheConfig::validate() const
{
    if (line_bytes == 0 || !std::has_single_bit(line_bytes))
        throw std::invalid_argument(name + ": line size not a power of two");
    if (associativity == 0)
        throw std::invalid_argument(name + ": zero associativity");
    if (size_bytes == 0 ||
        size_bytes % (static_cast<std::uint64_t>(line_bytes) *
                      associativity) != 0) {
        throw std::invalid_argument(name +
                                    ": capacity not divisible by way size");
    }
    // The tree-PLRU state is a 32-bit word per set and the decision
    // tree requires a power-of-two way count.
    if (policy == ReplacementPolicy::TreePlru &&
        (!std::has_single_bit(associativity) || associativity > 32)) {
        throw std::invalid_argument(
            name + ": tree-PLRU needs power-of-two associativity <= 32");
    }
}

void
CacheConfig::hashInto(stats::Fingerprinter &fp) const
{
    fp.tag("cache");
    fp.str(name);
    fp.u64(size_bytes);
    fp.u64(associativity);
    fp.u64(line_bytes);
    fp.u64(static_cast<std::uint64_t>(policy));
}

Cache::Cache(const CacheConfig &config)
    : config_(config),
      num_sets_(config.sets()),
      line_shift_(static_cast<std::uint32_t>(
          std::countr_zero(static_cast<std::uint64_t>(config.line_bytes)))),
      rng_(stats::hashName(config.name))
{
    config_.validate();
    lines_.assign(num_sets_ * config_.associativity, Line{});
    plru_.assign(config_.policy == ReplacementPolicy::TreePlru ? num_sets_
                                                               : 0,
                 0);
}

bool
Cache::access(std::uint64_t address)
{
    ++accesses_;
    std::uint64_t line_addr = address >> line_shift_;
    std::uint64_t set = line_addr % num_sets_;
    std::uint64_t tag = line_addr / num_sets_;

    Line *base = &lines_[set * config_.associativity];
    for (std::uint32_t w = 0; w < config_.associativity; ++w) {
        if (base[w].valid && base[w].tag == tag) {
            ++hits_;
            touch(set, w, /*is_fill=*/false);
            return true;
        }
    }

    // Miss: fill into an invalid way if one exists, else evict.
    std::uint32_t way = config_.associativity;
    for (std::uint32_t w = 0; w < config_.associativity; ++w) {
        if (!base[w].valid) {
            way = w;
            break;
        }
    }
    if (way == config_.associativity)
        way = victimWay(set);

    base[way].valid = true;
    base[way].tag = tag;
    touch(set, way, /*is_fill=*/true);
    return false;
}

bool
Cache::contains(std::uint64_t address) const
{
    std::uint64_t line_addr = address >> line_shift_;
    std::uint64_t set = line_addr % num_sets_;
    std::uint64_t tag = line_addr / num_sets_;
    const Line *base = &lines_[set * config_.associativity];
    for (std::uint32_t w = 0; w < config_.associativity; ++w)
        if (base[w].valid && base[w].tag == tag)
            return true;
    return false;
}

void
Cache::reset()
{
    for (Line &line : lines_)
        line = Line{};
    for (std::uint32_t &state : plru_)
        state = 0;
    tick_ = 0;
    accesses_ = 0;
    hits_ = 0;
}

double
Cache::missRatio() const
{
    return accesses_ == 0
               ? 0.0
               : static_cast<double>(misses()) /
                     static_cast<double>(accesses_);
}

std::uint32_t
Cache::victimWay(std::uint64_t set)
{
    const Line *base = &lines_[set * config_.associativity];
    switch (config_.policy) {
      case ReplacementPolicy::Lru:
      case ReplacementPolicy::Fifo: {
        // Smallest stamp is the least-recently used / first inserted.
        std::uint32_t victim = 0;
        std::uint64_t oldest = base[0].stamp;
        for (std::uint32_t w = 1; w < config_.associativity; ++w) {
            if (base[w].stamp < oldest) {
                oldest = base[w].stamp;
                victim = w;
            }
        }
        return victim;
      }
      case ReplacementPolicy::TreePlru: {
        // Walk the binary decision tree; each bit points away from the
        // most recently used half.
        std::uint32_t assoc = config_.associativity;
        std::uint32_t state = plru_[set];
        std::uint32_t node = 0; // root of the implicit tree
        std::uint32_t index = 0;
        std::uint32_t span = assoc;
        while (span > 1) {
            bool right = (state >> node) & 1u;
            span /= 2;
            if (right)
                index += span;
            node = 2 * node + (right ? 2 : 1);
        }
        return index;
      }
      case ReplacementPolicy::Random:
        return static_cast<std::uint32_t>(
            rng_.below(config_.associativity));
    }
    return 0;
}

void
Cache::touch(std::uint64_t set, std::uint32_t way, bool is_fill)
{
    Line &line = lines_[set * config_.associativity + way];
    switch (config_.policy) {
      case ReplacementPolicy::Lru:
        line.stamp = ++tick_;
        break;
      case ReplacementPolicy::Fifo:
        // Only insertion order matters; hits do not refresh the stamp.
        if (is_fill)
            line.stamp = ++tick_;
        break;
      case ReplacementPolicy::TreePlru: {
        // Flip the path bits to point away from this way.
        std::uint32_t assoc = config_.associativity;
        std::uint32_t state = plru_[set];
        std::uint32_t node = 0;
        std::uint32_t lo = 0;
        std::uint32_t span = assoc;
        while (span > 1) {
            span /= 2;
            bool went_right = way >= lo + span;
            if (went_right) {
                state &= ~(1u << node); // point left next time
                lo += span;
                node = 2 * node + 2;
            } else {
                state |= (1u << node);  // point right next time
                node = 2 * node + 1;
            }
        }
        plru_[set] = state;
        break;
      }
      case ReplacementPolicy::Random:
        break;
    }
}

} // namespace uarch
} // namespace speclens
