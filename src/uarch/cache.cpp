/**
 * @file
 * Set-associative cache implementation.
 */

#include "cache.h"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace speclens {
namespace uarch {

std::string
replacementPolicyName(ReplacementPolicy policy)
{
    switch (policy) {
      case ReplacementPolicy::Lru: return "lru";
      case ReplacementPolicy::TreePlru: return "tree-plru";
      case ReplacementPolicy::Fifo: return "fifo";
      case ReplacementPolicy::Random: return "random";
    }
    return "unknown";
}

std::string
wayPredictionKindName(WayPredictionKind kind)
{
    switch (kind) {
      case WayPredictionKind::None: return "none";
      case WayPredictionKind::Mru: return "mru";
      case WayPredictionKind::MultiMru: return "multi-mru";
    }
    return "unknown";
}

std::uint64_t
CacheConfig::sets() const
{
    std::uint64_t line_capacity = size_bytes / line_bytes;
    return associativity == 0 ? 0 : line_capacity / associativity;
}

void
CacheConfig::validate() const
{
    if (line_bytes == 0 || !std::has_single_bit(line_bytes))
        throw std::invalid_argument(name + ": line size not a power of two");
    if (associativity == 0)
        throw std::invalid_argument(name + ": zero associativity");
    if (size_bytes == 0 ||
        size_bytes % (static_cast<std::uint64_t>(line_bytes) *
                      associativity) != 0) {
        throw std::invalid_argument(name +
                                    ": capacity not divisible by way size");
    }
    // The tree-PLRU state is a 32-bit word per set and the decision
    // tree requires a power-of-two way count.
    if (policy == ReplacementPolicy::TreePlru &&
        (!std::has_single_bit(associativity) || associativity > 32)) {
        throw std::invalid_argument(
            name + ": tree-PLRU needs power-of-two associativity <= 32");
    }
}

void
CacheConfig::hashInto(stats::Fingerprinter &fp) const
{
    fp.tag("cache");
    fp.str(name);
    fp.u64(size_bytes);
    fp.u64(associativity);
    fp.u64(line_bytes);
    fp.u64(static_cast<std::uint64_t>(policy));
    fp.u64(static_cast<std::uint64_t>(way_prediction));
}

Cache::Cache(const CacheConfig &config)
    : config_(config),
      num_sets_(config.sets()),
      line_shift_(static_cast<std::uint32_t>(
          std::countr_zero(static_cast<std::uint64_t>(config.line_bytes)))),
      rng_(stats::hashName(config.name))
{
    config_.validate();
    sets_pow2_ = num_sets_ > 0 && std::has_single_bit(num_sets_);
    if (sets_pow2_) {
        set_mask_ = num_sets_ - 1;
        set_shift_ = static_cast<std::uint32_t>(std::countr_zero(num_sets_));
    }
    tags_.assign(num_sets_ * config_.associativity, kInvalidTag);
    // Stamps are written before any read (see the member comment), so
    // the allocation skips the zero pass.
    stamps_ = std::make_unique_for_overwrite<std::uint64_t[]>(
        num_sets_ * config_.associativity);
    plru_.assign(config_.policy == ReplacementPolicy::TreePlru ? num_sets_
                                                               : 0,
                 0);
    switch (config_.way_prediction) {
      case WayPredictionKind::None: way_pred_parts_ = 0; break;
      case WayPredictionKind::Mru: way_pred_parts_ = 1; break;
      case WayPredictionKind::MultiMru: way_pred_parts_ = 2; break;
    }
    way_pred_.assign(num_sets_ * way_pred_parts_, 0);
}

bool
Cache::contains(std::uint64_t address) const
{
    std::uint64_t set, tag;
    splitAddress(address, set, tag);
    const std::uint64_t *tags = &tags_[set * config_.associativity];
    for (std::uint32_t w = 0; w < config_.associativity; ++w)
        if (tags[w] == tag)
            return true;
    return false;
}

void
Cache::reset()
{
    std::fill(tags_.begin(), tags_.end(), kInvalidTag);
    for (std::uint32_t &state : plru_)
        state = 0;
    tick_ = 0;
    accesses_ = 0;
    hits_ = 0;
    cold_fills_.clear();
    last_index_ = 0;
    std::fill(way_pred_.begin(), way_pred_.end(), 0u);
    way_pred_hits_ = 0;
    way_pred_mispredicts_ = 0;
}

double
Cache::missRatio() const
{
    return accesses_ == 0
               ? 0.0
               : static_cast<double>(misses()) /
                     static_cast<double>(accesses_);
}

} // namespace uarch
} // namespace speclens
