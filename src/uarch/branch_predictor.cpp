/**
 * @file
 * Branch predictor implementations.
 */

#include "branch_predictor.h"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>
#include <type_traits>
#include <utility>

namespace speclens {
namespace uarch {

std::string
predictorKindName(PredictorKind kind)
{
    switch (kind) {
      case PredictorKind::StaticTaken: return "static-taken";
      case PredictorKind::Bimodal: return "bimodal";
      case PredictorKind::Gshare: return "gshare";
      case PredictorKind::Tournament: return "tournament";
      case PredictorKind::Perceptron: return "perceptron";
      case PredictorKind::TageLite: return "tage-lite";
    }
    return "unknown";
}

PredictorVariant
makePredictorVariant(PredictorKind kind, unsigned size_log2)
{
    switch (kind) {
      case PredictorKind::StaticTaken:
        return StaticTakenPredictor();
      case PredictorKind::Bimodal:
        return BimodalPredictor(size_log2);
      case PredictorKind::Gshare:
        return GsharePredictor(size_log2, std::min(size_log2, 16u));
      case PredictorKind::Tournament:
        return TournamentPredictor(size_log2);
      case PredictorKind::Perceptron:
        return PerceptronPredictor(size_log2 > 4 ? size_log2 - 4 : 1, 24);
      case PredictorKind::TageLite:
        return TageLitePredictor(size_log2 > 2 ? size_log2 - 2 : 1);
    }
    throw std::invalid_argument("makePredictorVariant: unknown kind");
}

std::unique_ptr<BranchPredictor>
makePredictor(PredictorKind kind, unsigned size_log2)
{
    // Built from the variant factory so both creation paths share one
    // source of truth for the per-kind sizing adjustments.
    return std::visit(
        [](auto &&predictor) -> std::unique_ptr<BranchPredictor> {
            using Concrete = std::decay_t<decltype(predictor)>;
            return std::make_unique<Concrete>(std::move(predictor));
        },
        makePredictorVariant(kind, size_log2));
}

// ---------------------------------------------------------------------
// Batch kernels.  Shared shape: one or more contiguous autovectorizable
// loops precompute per-branch table indices (and, for history-based
// designs, the global-history value each branch observes — a prefix
// scan over the outcomes), then a tight ordered loop applies the
// inherently sequential counter updates branchlessly.  Each kernel is
// bit-exact against n scalar predict()/update() pairs: the index each
// branch uses depends only on (id, prior outcomes), both of which are
// known up front, and the counter loop applies the updates in stream
// order so intra-batch aliasing behaves identically.
// ---------------------------------------------------------------------

namespace {

/**
 * Branchless 2-bit saturating counter step: the prediction and the
 * post-update value of @p counter for outcome @p taken (0 or 1).
 * @return the counter's prediction (1 = taken) before the update.
 */
inline std::uint8_t
stepCounter2(std::uint8_t &counter, std::uint8_t taken)
{
    std::uint8_t predicted = counter >= 2 ? 1 : 0;
    std::uint8_t up = counter < 3 ? 1 : 0;
    std::uint8_t down = counter > 0 ? 1 : 0;
    counter = static_cast<std::uint8_t>(taken ? counter + up
                                              : counter - down);
    return predicted;
}

} // namespace

void
StaticTakenPredictor::updateBatch(const std::uint64_t *, const std::uint32_t *,
                                  const std::uint8_t *taken,
                                  std::uint8_t *mispred, std::size_t n)
{
    for (std::size_t k = 0; k < n; ++k)
        mispred[k] = taken[k] ^ 1u; // always predicts taken
}

// ---------------------------------------------------------------------
// Bimodal
// ---------------------------------------------------------------------

BimodalPredictor::BimodalPredictor(unsigned size_log2)
    : counters_(std::size_t{1} << size_log2, 2), // weakly taken
      mask_((std::size_t{1} << size_log2) - 1)
{
}

void
BimodalPredictor::updateBatch(const std::uint64_t *pc,
                              const std::uint32_t *id,
                              const std::uint8_t *taken,
                              std::uint8_t *mispred, std::size_t n)
{
    if (batch_idx_.size() < n)
        batch_idx_.resize(n);
    std::uint32_t *idx = batch_idx_.data();
    for (std::size_t k = 0; k < n; ++k)
        idx[k] = static_cast<std::uint32_t>(
            predictor_detail::mixPcId(pc[k], id[k]) & mask_);

    std::uint8_t *counters = counters_.data();
    for (std::size_t k = 0; k < n; ++k)
        mispred[k] = stepCounter2(counters[idx[k]], taken[k]) ^ taken[k];
}

// ---------------------------------------------------------------------
// Gshare
// ---------------------------------------------------------------------

GsharePredictor::GsharePredictor(unsigned size_log2, unsigned history_bits)
    : counters_(std::size_t{1} << size_log2, 2),
      mask_((std::size_t{1} << size_log2) - 1),
      history_mask_((std::uint64_t{1} << history_bits) - 1)
{
}

void
GsharePredictor::updateBatch(const std::uint64_t *pc, const std::uint32_t *id,
                             const std::uint8_t *taken,
                             std::uint8_t *mispred, std::size_t n)
{
    if (batch_idx_.size() < n) {
        batch_idx_.resize(n);
        batch_hist_.resize(n);
    }
    std::uint32_t *idx = batch_idx_.data();
    std::uint64_t *hist = batch_hist_.data();

    // hist[k]: the history branch k observes — predict() reads it and
    // update() indexes with it (the shift happens after the counter
    // write), so one value serves both.
    std::uint64_t h = history_;
    for (std::size_t k = 0; k < n; ++k) {
        hist[k] = h;
        h = ((h << 1) | taken[k]) & history_mask_;
    }
    history_ = h;

    for (std::size_t k = 0; k < n; ++k)
        idx[k] = static_cast<std::uint32_t>(
            (predictor_detail::mixPcId(pc[k], id[k]) ^ hist[k]) & mask_);

    std::uint8_t *counters = counters_.data();
    for (std::size_t k = 0; k < n; ++k)
        mispred[k] = stepCounter2(counters[idx[k]], taken[k]) ^ taken[k];
}

// ---------------------------------------------------------------------
// Tournament
// ---------------------------------------------------------------------

TournamentPredictor::TournamentPredictor(unsigned size_log2)
    : bimodal_(size_log2),
      gshare_(size_log2, std::min(size_log2, 14u)),
      chooser_(std::size_t{1} << size_log2, 2), // weakly prefer gshare
      mask_((std::size_t{1} << size_log2) - 1)
{
}

void
TournamentPredictor::updateBatch(const std::uint64_t *pc,
                                 const std::uint32_t *id,
                                 const std::uint8_t *taken,
                                 std::uint8_t *mispred, std::size_t n)
{
    if (n == 0)
        return; // keep last_bimodal_/last_gshare_ untouched
    if (batch_mix_.size() < n) {
        batch_mix_.resize(n);
        batch_ghist_.resize(n);
        batch_bidx_.resize(n);
        batch_gidx_.resize(n);
        batch_cidx_.resize(n);
    }
    std::uint64_t *mix = batch_mix_.data();
    std::uint64_t *ghist = batch_ghist_.data();
    std::uint32_t *bidx = batch_bidx_.data();
    std::uint32_t *gidx = batch_gidx_.data();
    std::uint32_t *cidx = batch_cidx_.data();

    std::uint64_t h = gshare_.history_;
    for (std::size_t k = 0; k < n; ++k) {
        ghist[k] = h;
        h = ((h << 1) | taken[k]) & gshare_.history_mask_;
    }
    gshare_.history_ = h;

    for (std::size_t k = 0; k < n; ++k)
        mix[k] = predictor_detail::mixPcId(pc[k], id[k]);
    for (std::size_t k = 0; k < n; ++k)
        bidx[k] = static_cast<std::uint32_t>(mix[k] & bimodal_.mask_);
    for (std::size_t k = 0; k < n; ++k)
        gidx[k] =
            static_cast<std::uint32_t>((mix[k] ^ ghist[k]) & gshare_.mask_);
    for (std::size_t k = 0; k < n; ++k)
        cidx[k] = static_cast<std::uint32_t>(mix[k] & mask_);

    std::uint8_t *bim = bimodal_.counters_.data();
    std::uint8_t *gsh = gshare_.counters_.data();
    std::uint8_t *cho = chooser_.data();
    std::uint8_t bp = 0, gp = 0;
    for (std::size_t k = 0; k < n; ++k) {
        std::uint8_t t = taken[k];
        std::uint8_t chooser = cho[cidx[k]];
        bp = stepCounter2(bim[bidx[k]], t);
        gp = stepCounter2(gsh[gidx[k]], t);
        std::uint8_t predicted = chooser >= 2 ? gp : bp;
        mispred[k] = predicted ^ t;
        // The chooser trains only when the components disagree, toward
        // whichever was right.
        if ((bp == t) != (gp == t))
            predictor_detail::updateCounter2(cho[cidx[k]], gp == t);
    }
    last_bimodal_ = bp != 0;
    last_gshare_ = gp != 0;
}


// ---------------------------------------------------------------------
// Perceptron
// ---------------------------------------------------------------------

PerceptronPredictor::PerceptronPredictor(unsigned size_log2,
                                         unsigned history_bits)
    : history_bits_(history_bits),
      threshold_(static_cast<int>(1.93 * history_bits + 14)),
      weights_(std::size_t{1} << size_log2,
               std::vector<int>(history_bits + 1, 0)),
      mask_((std::size_t{1} << size_log2) - 1)
{
}


bool
PerceptronPredictor::predict(std::uint64_t pc, std::uint32_t id)
{
    const std::vector<int> &w = weights_[index(pc, id)];
    int y = w[0]; // bias
    for (unsigned b = 0; b < history_bits_; ++b) {
        int x = ((history_ >> b) & 1u) ? 1 : -1;
        y += x * w[b + 1];
    }
    last_output_ = y;
    return y >= 0;
}

void
PerceptronPredictor::update(std::uint64_t pc, std::uint32_t id, bool taken)
{
    std::vector<int> &w = weights_[index(pc, id)];
    bool predicted = last_output_ >= 0;
    int t = taken ? 1 : -1;
    // Train on a misprediction or when the output magnitude is below
    // the confidence threshold (standard perceptron training rule).
    if (predicted != taken || std::abs(last_output_) <= threshold_) {
        constexpr int weight_cap = 127;
        w[0] = std::clamp(w[0] + t, -weight_cap, weight_cap);
        for (unsigned b = 0; b < history_bits_; ++b) {
            int x = ((history_ >> b) & 1u) ? 1 : -1;
            w[b + 1] = std::clamp(w[b + 1] + t * x, -weight_cap,
                                  weight_cap);
        }
    }
    history_ = (history_ << 1) | (taken ? 1u : 0u);
}

void
PerceptronPredictor::updateBatch(const std::uint64_t *pc,
                                 const std::uint32_t *id,
                                 const std::uint8_t *taken,
                                 std::uint8_t *mispred, std::size_t n)
{
    if (n == 0)
        return; // keep last_output_ untouched
    const unsigned bits = history_bits_;
    std::uint64_t h = history_;
    int y = 0;
    for (std::size_t k = 0; k < n; ++k) {
        int *w = weights_[static_cast<std::size_t>(
                              predictor_detail::mixPcId(pc[k], id[k])) &
                          mask_]
                     .data();
        // Multiply-form dot product over the history window: x is the
        // bipolar (+1/-1) form of each history bit.  Integer adds are
        // associative, so the vectorized reduction is exact.
        y = w[0];
        for (unsigned b = 0; b < bits; ++b) {
            int x = 2 * static_cast<int>((h >> b) & 1u) - 1;
            y += x * w[b + 1];
        }
        bool predicted = y >= 0;
        std::uint8_t t = taken[k];
        mispred[k] = static_cast<std::uint8_t>(predicted) ^ t;
        if (mispred[k] || std::abs(y) <= threshold_) {
            constexpr int weight_cap = 127;
            int dir = t ? 1 : -1;
            w[0] = std::clamp(w[0] + dir, -weight_cap, weight_cap);
            for (unsigned b = 0; b < bits; ++b) {
                int x = 2 * static_cast<int>((h >> b) & 1u) - 1;
                w[b + 1] =
                    std::clamp(w[b + 1] + dir * x, -weight_cap, weight_cap);
            }
        }
        h = (h << 1) | t;
    }
    history_ = h;
    last_output_ = y;
}

// ---------------------------------------------------------------------
// TAGE-lite
// ---------------------------------------------------------------------

TageLitePredictor::TageLitePredictor(unsigned size_log2, unsigned num_tables)
    : base_(size_log2 + 2),
      mask_((std::size_t{1} << size_log2) - 1)
{
    // Geometric history lengths: 4, 8, 16, 32, ...
    unsigned length = 4;
    for (unsigned t = 0; t < num_tables; ++t) {
        tables_.emplace_back(std::size_t{1} << size_log2);
        history_lengths_.push_back(length);
        length = std::min(length * 2, 63u);
    }
}




void
TageLitePredictor::update(std::uint64_t pc, std::uint32_t id, bool taken)
{
    bool mispredicted = provider_pred_ != taken;

    if (provider_ >= 0) {
        unsigned t = static_cast<unsigned>(provider_);
        Entry &e = tables_[t][tableIndex(t, pc, id)];
        e.counter = static_cast<std::int8_t>(
            std::clamp<int>(e.counter + (taken ? 1 : -1), -4, 3));
        if (!mispredicted && provider_pred_ != base_pred_ && e.useful < 3)
            ++e.useful;
    }

    // On a misprediction, allocate in a longer-history table.
    if (mispredicted) {
        unsigned start = provider_ >= 0 ? static_cast<unsigned>(provider_)
                                        + 1 : 0;
        for (unsigned t = start; t < tables_.size(); ++t) {
            Entry &e = tables_[t][tableIndex(t, pc, id)];
            if (e.useful == 0) {
                e.tag = tableTag(t, pc, id);
                e.counter = taken ? 0 : -1; // weak in the right direction
                break;
            }
            // Age useful counters when no free entry was found.
            --e.useful;
        }
    }

    base_.update(pc, id, taken);
    history_ = (history_ << 1) | (taken ? 1u : 0u);
}

void
TageLitePredictor::updateBatch(const std::uint64_t *pc,
                               const std::uint32_t *id,
                               const std::uint8_t *taken,
                               std::uint8_t *mispred, std::size_t n)
{
    if (n == 0)
        return; // keep provider bookkeeping untouched
    const std::size_t num_tables = tables_.size();
    if (batch_hist_.size() < n) {
        batch_hist_.resize(n);
        batch_base_idx_.resize(n);
    }
    if (batch_idx_.size() < num_tables * n) {
        batch_idx_.resize(num_tables * n);
        batch_tag_.resize(num_tables * n);
    }
    std::uint64_t *hist = batch_hist_.data();
    std::uint32_t *base_idx = batch_base_idx_.data();

    std::uint64_t h = history_;
    for (std::size_t k = 0; k < n; ++k) {
        hist[k] = h;
        h = (h << 1) | taken[k];
    }
    history_ = h;

    for (std::size_t k = 0; k < n; ++k)
        base_idx[k] = static_cast<std::uint32_t>(
            predictor_detail::mixPcId(pc[k], id[k]) & base_.mask_);

    // Per-table index/tag arrays; predict() and update() both index
    // with the branch's own history value, so one array serves both.
    for (unsigned table = 0; table < num_tables; ++table) {
        std::uint32_t *idx = batch_idx_.data() + table * n;
        std::uint16_t *tag = batch_tag_.data() + table * n;
        std::uint64_t h_mask =
            (std::uint64_t{1} << history_lengths_[table]) - 1;
        for (std::size_t k = 0; k < n; ++k) {
            std::uint64_t folded = hist[k] & h_mask;
            folded ^= folded >> 13;
            folded ^= folded >> 7;
            idx[k] = static_cast<std::uint32_t>(
                (predictor_detail::mixPcId(pc[k], id[k]) ^ folded ^
                 (table * 0x9e3779b9ull)) &
                mask_);
            tag[k] = static_cast<std::uint16_t>(
                (predictor_detail::mixPcId(pc[k] * 31 + 7, id[k]) ^
                 (hist[k] & h_mask) ^ (table * 0x2545f491ull)) &
                0x3ff);
        }
    }

    std::uint8_t *base_counters = base_.counters_.data();
    int provider = -1;
    bool provider_pred = false, base_pred = false;
    for (std::size_t k = 0; k < n; ++k) {
        std::uint8_t t8 = taken[k];
        std::uint8_t base_counter = base_counters[base_idx[k]];
        base_pred = base_counter >= 2;
        provider = -1;
        provider_pred = base_pred;
        for (int t = static_cast<int>(num_tables) - 1; t >= 0; --t) {
            const Entry &e =
                tables_[static_cast<unsigned>(t)]
                       [batch_idx_[static_cast<std::size_t>(t) * n + k]];
            if (e.tag == batch_tag_[static_cast<std::size_t>(t) * n + k]) {
                provider = t;
                bool weak = e.counter == 0 || e.counter == -1;
                provider_pred = weak ? base_pred : e.counter >= 0;
                break;
            }
        }
        bool mispredicted = provider_pred != (t8 != 0);
        mispred[k] = mispredicted ? 1 : 0;

        if (provider >= 0) {
            unsigned t = static_cast<unsigned>(provider);
            Entry &e = tables_[t][batch_idx_[t * n + k]];
            e.counter = static_cast<std::int8_t>(
                std::clamp<int>(e.counter + (t8 ? 1 : -1), -4, 3));
            if (!mispredicted && provider_pred != base_pred && e.useful < 3)
                ++e.useful;
        }
        if (mispredicted) {
            unsigned start =
                provider >= 0 ? static_cast<unsigned>(provider) + 1 : 0;
            for (unsigned t = start; t < num_tables; ++t) {
                Entry &e = tables_[t][batch_idx_[t * n + k]];
                if (e.useful == 0) {
                    e.tag = batch_tag_[t * n + k];
                    e.counter = t8 ? 0 : -1;
                    break;
                }
                --e.useful;
            }
        }
        // base_.update, on the value read above (tagged-table writes
        // never alias the base table).
        base_counters[base_idx[k]] =
            t8 ? base_counter + (base_counter < 3 ? 1 : 0)
               : base_counter - (base_counter > 0 ? 1 : 0);
    }
    provider_ = provider;
    provider_pred_ = provider_pred;
    base_pred_ = base_pred;
}

} // namespace uarch
} // namespace speclens
