/**
 * @file
 * Branch predictor implementations.
 */

#include "branch_predictor.h"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>
#include <type_traits>
#include <utility>

namespace speclens {
namespace uarch {

std::string
predictorKindName(PredictorKind kind)
{
    switch (kind) {
      case PredictorKind::StaticTaken: return "static-taken";
      case PredictorKind::Bimodal: return "bimodal";
      case PredictorKind::Gshare: return "gshare";
      case PredictorKind::Tournament: return "tournament";
      case PredictorKind::Perceptron: return "perceptron";
      case PredictorKind::TageLite: return "tage-lite";
    }
    return "unknown";
}

PredictorVariant
makePredictorVariant(PredictorKind kind, unsigned size_log2)
{
    switch (kind) {
      case PredictorKind::StaticTaken:
        return StaticTakenPredictor();
      case PredictorKind::Bimodal:
        return BimodalPredictor(size_log2);
      case PredictorKind::Gshare:
        return GsharePredictor(size_log2, std::min(size_log2, 16u));
      case PredictorKind::Tournament:
        return TournamentPredictor(size_log2);
      case PredictorKind::Perceptron:
        return PerceptronPredictor(size_log2 > 4 ? size_log2 - 4 : 1, 24);
      case PredictorKind::TageLite:
        return TageLitePredictor(size_log2 > 2 ? size_log2 - 2 : 1);
    }
    throw std::invalid_argument("makePredictorVariant: unknown kind");
}

std::unique_ptr<BranchPredictor>
makePredictor(PredictorKind kind, unsigned size_log2)
{
    // Built from the variant factory so both creation paths share one
    // source of truth for the per-kind sizing adjustments.
    return std::visit(
        [](auto &&predictor) -> std::unique_ptr<BranchPredictor> {
            using Concrete = std::decay_t<decltype(predictor)>;
            return std::make_unique<Concrete>(std::move(predictor));
        },
        makePredictorVariant(kind, size_log2));
}

// ---------------------------------------------------------------------
// Bimodal
// ---------------------------------------------------------------------

BimodalPredictor::BimodalPredictor(unsigned size_log2)
    : counters_(std::size_t{1} << size_log2, 2), // weakly taken
      mask_((std::size_t{1} << size_log2) - 1)
{
}




// ---------------------------------------------------------------------
// Gshare
// ---------------------------------------------------------------------

GsharePredictor::GsharePredictor(unsigned size_log2, unsigned history_bits)
    : counters_(std::size_t{1} << size_log2, 2),
      mask_((std::size_t{1} << size_log2) - 1),
      history_mask_((std::uint64_t{1} << history_bits) - 1)
{
}




// ---------------------------------------------------------------------
// Tournament
// ---------------------------------------------------------------------

TournamentPredictor::TournamentPredictor(unsigned size_log2)
    : bimodal_(size_log2),
      gshare_(size_log2, std::min(size_log2, 14u)),
      chooser_(std::size_t{1} << size_log2, 2), // weakly prefer gshare
      mask_((std::size_t{1} << size_log2) - 1)
{
}



// ---------------------------------------------------------------------
// Perceptron
// ---------------------------------------------------------------------

PerceptronPredictor::PerceptronPredictor(unsigned size_log2,
                                         unsigned history_bits)
    : history_bits_(history_bits),
      threshold_(static_cast<int>(1.93 * history_bits + 14)),
      weights_(std::size_t{1} << size_log2,
               std::vector<int>(history_bits + 1, 0)),
      mask_((std::size_t{1} << size_log2) - 1)
{
}


bool
PerceptronPredictor::predict(std::uint64_t pc, std::uint32_t id)
{
    const std::vector<int> &w = weights_[index(pc, id)];
    int y = w[0]; // bias
    for (unsigned b = 0; b < history_bits_; ++b) {
        int x = ((history_ >> b) & 1u) ? 1 : -1;
        y += x * w[b + 1];
    }
    last_output_ = y;
    return y >= 0;
}

void
PerceptronPredictor::update(std::uint64_t pc, std::uint32_t id, bool taken)
{
    std::vector<int> &w = weights_[index(pc, id)];
    bool predicted = last_output_ >= 0;
    int t = taken ? 1 : -1;
    // Train on a misprediction or when the output magnitude is below
    // the confidence threshold (standard perceptron training rule).
    if (predicted != taken || std::abs(last_output_) <= threshold_) {
        constexpr int weight_cap = 127;
        w[0] = std::clamp(w[0] + t, -weight_cap, weight_cap);
        for (unsigned b = 0; b < history_bits_; ++b) {
            int x = ((history_ >> b) & 1u) ? 1 : -1;
            w[b + 1] = std::clamp(w[b + 1] + t * x, -weight_cap,
                                  weight_cap);
        }
    }
    history_ = (history_ << 1) | (taken ? 1u : 0u);
}

// ---------------------------------------------------------------------
// TAGE-lite
// ---------------------------------------------------------------------

TageLitePredictor::TageLitePredictor(unsigned size_log2, unsigned num_tables)
    : base_(size_log2 + 2),
      mask_((std::size_t{1} << size_log2) - 1)
{
    // Geometric history lengths: 4, 8, 16, 32, ...
    unsigned length = 4;
    for (unsigned t = 0; t < num_tables; ++t) {
        tables_.emplace_back(std::size_t{1} << size_log2);
        history_lengths_.push_back(length);
        length = std::min(length * 2, 63u);
    }
}




void
TageLitePredictor::update(std::uint64_t pc, std::uint32_t id, bool taken)
{
    bool mispredicted = provider_pred_ != taken;

    if (provider_ >= 0) {
        unsigned t = static_cast<unsigned>(provider_);
        Entry &e = tables_[t][tableIndex(t, pc, id)];
        e.counter = static_cast<std::int8_t>(
            std::clamp<int>(e.counter + (taken ? 1 : -1), -4, 3));
        if (!mispredicted && provider_pred_ != base_pred_ && e.useful < 3)
            ++e.useful;
    }

    // On a misprediction, allocate in a longer-history table.
    if (mispredicted) {
        unsigned start = provider_ >= 0 ? static_cast<unsigned>(provider_)
                                        + 1 : 0;
        for (unsigned t = start; t < tables_.size(); ++t) {
            Entry &e = tables_[t][tableIndex(t, pc, id)];
            if (e.useful == 0) {
                e.tag = tableTag(t, pc, id);
                e.counter = taken ? 0 : -1; // weak in the right direction
                break;
            }
            // Age useful counters when no free entry was found.
            --e.useful;
        }
    }

    base_.update(pc, id, taken);
    history_ = (history_ << 1) | (taken ? 1u : 0u);
}

} // namespace uarch
} // namespace speclens
