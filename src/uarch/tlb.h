/**
 * @file
 * Two-level TLB hierarchy with page-walk accounting.
 *
 * The paper's metric set (Table III) includes L1 I/D TLB misses, last
 * level TLB misses and page walks per million instructions; these are
 * the features that separate PageRank and cactuBSSN from the rest of
 * the suite in its case studies.  The model is a functional two-level
 * translation cache: per-side L1 TLBs backed by an optional shared
 * second-level TLB; a second-level miss costs a page walk.
 */

#ifndef SPECLENS_UARCH_TLB_H
#define SPECLENS_UARCH_TLB_H

#include <cstdint>
#include <memory>
#include <optional>

#include "uarch/cache.h"

namespace speclens {
namespace uarch {

/** Geometry of a single TLB. */
struct TlbConfig
{
    std::string name = "tlb";
    std::uint32_t entries = 64;

    /** Ways; use `entries` for a fully associative TLB. */
    std::uint32_t associativity = 4;

    /** Page size translated by this TLB. */
    std::uint64_t page_bytes = 4096;

    /** Feed every field, in declaration order, to @p fp. */
    void hashInto(stats::Fingerprinter &fp) const;

    /** Equivalent cache geometry (entries as page-granular lines). */
    CacheConfig asCacheConfig() const;
};

/** Outcome of one translation request. */
struct TlbAccessResult
{
    bool l1_hit = false;   //!< Hit in the first-level TLB.
    bool l2_hit = false;   //!< Hit in the shared second-level TLB.
    bool page_walk = false; //!< Missed every level.
};

/** Configuration of the full translation hierarchy. */
struct TlbHierarchyConfig
{
    TlbConfig itlb{"ITLB", 128, 8, 4096};
    TlbConfig dtlb{"DTLB", 64, 4, 4096};

    /** Shared second-level TLB; absent on older machines. */
    std::optional<TlbConfig> l2tlb = TlbConfig{"L2TLB", 1536, 12, 4096};

    /** Feed every level's geometry to @p fp. */
    void hashInto(stats::Fingerprinter &fp) const;
};

/** Two-level TLB hierarchy. */
class TlbHierarchy
{
  public:
    explicit TlbHierarchy(const TlbHierarchyConfig &config);

    /** Translate a data address. */
    TlbAccessResult accessData(std::uint64_t address);

    /** Translate an instruction-fetch address. */
    TlbAccessResult accessInstr(std::uint64_t pc);

    std::uint64_t dtlbAccesses() const { return dtlb_.accesses(); }
    std::uint64_t dtlbMisses() const { return dtlb_.misses(); }
    std::uint64_t itlbAccesses() const { return itlb_.accesses(); }
    std::uint64_t itlbMisses() const { return itlb_.misses(); }
    std::uint64_t l2tlbMisses() const { return l2tlb_misses_; }
    std::uint64_t pageWalks() const { return page_walks_; }

    /** Invalidate all levels and zero statistics. */
    void reset();

  private:
    TlbAccessResult accessCommon(Cache &l1, std::uint64_t address);

    Cache itlb_;
    Cache dtlb_;
    std::unique_ptr<Cache> l2tlb_;
    std::uint64_t l2tlb_misses_ = 0;
    std::uint64_t page_walks_ = 0;
};

} // namespace uarch
} // namespace speclens

#endif // SPECLENS_UARCH_TLB_H
