/**
 * @file
 * Two-level TLB hierarchy with page-walk accounting.
 *
 * The paper's metric set (Table III) includes L1 I/D TLB misses, last
 * level TLB misses and page walks per million instructions; these are
 * the features that separate PageRank and cactuBSSN from the rest of
 * the suite in its case studies.  The model is a functional two-level
 * translation cache: per-side L1 TLBs backed by an optional shared
 * second-level TLB; a second-level miss costs a page walk.
 */

#ifndef SPECLENS_UARCH_TLB_H
#define SPECLENS_UARCH_TLB_H

#include <cstdint>
#include <memory>
#include <optional>

#include "uarch/cache.h"

namespace speclens {
namespace verify {
class StateAuditor;
}
namespace uarch {

/** Geometry of a single TLB. */
struct TlbConfig
{
    std::string name = "tlb";
    std::uint32_t entries = 64;

    /** Ways; use `entries` for a fully associative TLB. */
    std::uint32_t associativity = 4;

    /** Page size translated by this TLB. */
    std::uint64_t page_bytes = 4096;

    /** Feed every field, in declaration order, to @p fp. */
    void hashInto(stats::Fingerprinter &fp) const;

    /** Equivalent cache geometry (entries as page-granular lines). */
    CacheConfig asCacheConfig() const;
};

/** Outcome of one translation request. */
struct TlbAccessResult
{
    bool l1_hit = false;   //!< Hit in the first-level TLB.
    bool l2_hit = false;   //!< Hit in the shared second-level TLB.
    bool page_walk = false; //!< Missed every level.
};

/** Configuration of the full translation hierarchy. */
struct TlbHierarchyConfig
{
    TlbConfig itlb{"ITLB", 128, 8, 4096};
    TlbConfig dtlb{"DTLB", 64, 4, 4096};

    /** Shared second-level TLB; absent on older machines. */
    std::optional<TlbConfig> l2tlb = TlbConfig{"L2TLB", 1536, 12, 4096};

    /** Feed every level's geometry to @p fp. */
    void hashInto(stats::Fingerprinter &fp) const;
};

/** Two-level TLB hierarchy. */
class TlbHierarchy
{
  public:
    explicit TlbHierarchy(const TlbHierarchyConfig &config);

    /** Translate a data address. */
    TlbAccessResult accessData(std::uint64_t address);

    /** Translate an instruction-fetch address. */
    TlbAccessResult accessInstr(std::uint64_t pc);

    /**
     * Apply @p count repeat translations of the page touched by the
     * immediately preceding accessInstr(), all ITLB hits — equivalent
     * to that many more accessInstr() calls on the same page, because
     * the entry is resident after the preceding access and the hit
     * state update collapses (see Cache::repeatLastHit).
     */
    void repeatInstrHits(std::uint64_t count)
    {
        itlb_.repeatLastHit(count);
    }

    /** Same as repeatInstrHits() for the data side / DTLB. */
    void repeatDataHits(std::uint64_t count)
    {
        dtlb_.repeatLastHit(count);
    }

    /** True when no translation has happened yet (all levels empty). */
    bool
    untouched() const
    {
        return itlb_.accesses() == 0 && dtlb_.accesses() == 0;
    }

    /**
     * Translate one distinct page of the cold prewarm walk — exactly
     * accessData() when every level misses, minus the futile hit
     * scans.  Only valid when untouched() held at walk start.
     */
    void
    prewarmFillData(std::uint64_t address)
    {
        dtlb_.coldFill(address);
        if (l2tlb_)
            l2tlb_->coldFill(address);
        ++l2tlb_misses_;
        ++page_walks_;
    }

    /** Instruction-side counterpart of prewarmFillData(). */
    void
    prewarmFillInstr(std::uint64_t pc)
    {
        itlb_.coldFill(pc);
        if (l2tlb_)
            l2tlb_->coldFill(pc);
        ++l2tlb_misses_;
        ++page_walks_;
    }

    /** ITLB page size, for same-page run tracking in playback. */
    std::uint64_t instrPageBytes() const
    {
        return itlb_.config().line_bytes;
    }

    /** DTLB page size, for same-page run tracking in playback. */
    std::uint64_t dataPageBytes() const
    {
        return dtlb_.config().line_bytes;
    }

    std::uint64_t dtlbAccesses() const { return dtlb_.accesses(); }
    std::uint64_t dtlbMisses() const { return dtlb_.misses(); }
    std::uint64_t itlbAccesses() const { return itlb_.accesses(); }
    std::uint64_t itlbMisses() const { return itlb_.misses(); }
    std::uint64_t l2tlbMisses() const { return l2tlb_misses_; }
    std::uint64_t pageWalks() const { return page_walks_; }

    /** Invalidate all levels and zero statistics. */
    void reset();

  private:
    /** Defined inline below; called once or twice per instruction. */
    TlbAccessResult accessCommon(Cache &l1, std::uint64_t address);

    Cache itlb_;
    Cache dtlb_;
    std::unique_ptr<Cache> l2tlb_;
    std::uint64_t l2tlb_misses_ = 0;
    std::uint64_t page_walks_ = 0;

    /** Closed-form prewarm writes the per-level TLBs and walk counters
     *  directly (see src/uarch/prewarm.h). */
    friend class PrewarmSolver;

    /** The invariant prover audits level geometry and walk counters. */
    friend class verify::StateAuditor;
};

// ---------------------------------------------------------------------
// Hot-path definitions, in the header so translation folds into the
// playback loop next to the cache probes.

inline TlbAccessResult
TlbHierarchy::accessCommon(Cache &l1, std::uint64_t address)
{
    TlbAccessResult result;
    if (l1.access(address)) {
        result.l1_hit = true;
        return result;
    }
    if (l2tlb_) {
        if (l2tlb_->access(address)) {
            result.l2_hit = true;
            return result;
        }
        ++l2tlb_misses_;
    } else {
        // Without a second level every L1 miss is a last-level miss.
        ++l2tlb_misses_;
    }
    result.page_walk = true;
    ++page_walks_;
    return result;
}

inline TlbAccessResult
TlbHierarchy::accessData(std::uint64_t address)
{
    return accessCommon(dtlb_, address);
}

inline TlbAccessResult
TlbHierarchy::accessInstr(std::uint64_t pc)
{
    return accessCommon(itlb_, pc);
}

} // namespace uarch
} // namespace speclens

#endif // SPECLENS_UARCH_TLB_H
