/**
 * @file
 * Three-level cache hierarchy with split L1, unified L2 and optional
 * unified L3 (machines such as the Table IV Xeon E5405 expose only two
 * levels).
 *
 * The hierarchy tracks instruction-side and data-side miss counts
 * separately at every level because the paper reports L2D and L2I MPKI
 * as distinct metrics (Tables II/III).
 *
 * The memory-centric extension hangs off the L2: a pluggable data
 * prefetcher (next-line, PC-indexed stride, or stream detector) fills
 * L2/L3 ahead of demand, and an optional DRAM row-buffer model sits
 * behind the last level.  Prefetch usefulness is tracked with one bit
 * per L2 slot — set when a prefetch fills the slot, cleared (and
 * counted) when a demand access consumes it or a later fill evicts it —
 * so the accounting identity
 *
 *     prefetch_fills == prefetch_useful + prefetch_evicted_unused
 *                       + (bits still set)
 *
 * holds exactly at every instruction boundary, for any window length.
 * The previous design kept prefetched lines in an unordered_set that
 * was wiped wholesale past 65536 entries, which made coverage and
 * accuracy drift once the wipe landed and left stale entries when a
 * prefetched line was evicted and later re-fetched on demand.
 */

#ifndef SPECLENS_UARCH_CACHE_HIERARCHY_H
#define SPECLENS_UARCH_CACHE_HIERARCHY_H

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "uarch/cache.h"
#include "uarch/dram_model.h"

namespace speclens {
namespace verify {
class StateAuditor;
}
namespace uarch {

/** Level that serviced a request. */
enum class ServiceLevel : std::uint8_t { L1, L2, L3, Memory };

/**
 * L2 data-prefetch engine.  Only meaningful when
 * CacheHierarchyConfig::l2_prefetch_degree is non-zero; with a degree
 * of zero the prefetcher is off regardless of kind, which keeps the
 * Table IV machine fingerprints' semantics (calibration folds the
 * prefetch effect into the workload streaming parameters).
 */
enum class PrefetcherKind : std::uint8_t {
    NextLine, //!< Fill the next N lines after a demand miss.
    Stride,   //!< PC-indexed stride table with confidence counters.
    Stream,   //!< Ascending-stream detector over a small window set.
};

/** Stable lower-case name ("next-line", "stride", "stream"). */
std::string prefetcherKindName(PrefetcherKind kind);

/** Geometry of the whole hierarchy. */
struct CacheHierarchyConfig
{
    CacheConfig l1i{"L1I", 32 * 1024, 8, 64, ReplacementPolicy::Lru};
    CacheConfig l1d{"L1D", 32 * 1024, 8, 64, ReplacementPolicy::Lru};
    CacheConfig l2{"L2", 256 * 1024, 8, 64, ReplacementPolicy::Lru};

    /** Last-level cache; absent on two-level machines. */
    std::optional<CacheConfig> l3 =
        CacheConfig{"L3", 8 * 1024 * 1024, 16, 64, ReplacementPolicy::Lru};

    /**
     * Aggressiveness of the L2 data prefetcher: how many lines each
     * trigger (demand miss, confirmed stream, confident stride) pulls
     * into L2 (and L3) ahead of the stream.  Zero disables prefetching
     * — the default for the Table IV machine models; the memory-centric
     * machine variants and design-space ablations turn it on.
     */
    unsigned l2_prefetch_degree = 0;

    /** Engine used when l2_prefetch_degree is non-zero. */
    PrefetcherKind prefetcher = PrefetcherKind::NextLine;

    /** Row-buffer model behind the last level; absent = flat memory. */
    std::optional<DramConfig> dram;

    /** Feed every level's geometry, the prefetcher and the DRAM model
     *  to @p fp. */
    void hashInto(stats::Fingerprinter &fp) const;
};

/** Side-specific miss counters for one level. */
struct SideCounters
{
    std::uint64_t accesses = 0;
    std::uint64_t misses = 0;
};

/** Functional multi-level cache hierarchy. */
class CacheHierarchy
{
  public:
    explicit CacheHierarchy(const CacheHierarchyConfig &config);

    /**
     * Perform a data access (load or store; both allocate).  @p pc is
     * the program counter of the memory instruction; the stride
     * prefetcher indexes its table with it.  The default keeps
     * pc-less callers (tests, the prewarm walk) valid — they train a
     * single stride slot, which is still deterministic.
     * @return deepest level that had to service the request.
     */
    ServiceLevel accessData(std::uint64_t address, std::uint64_t pc = 0);

    /** Perform an instruction fetch. */
    ServiceLevel accessInstr(std::uint64_t pc);

    /**
     * Apply @p count repeat instruction fetches of the line touched by
     * the immediately preceding accessInstr(), all L1I hits.  Exactly
     * equivalent to calling accessInstr() that many more times with an
     * address on the same line: the line is resident (fetched or
     * filled by the preceding access, and nothing else touches L1I),
     * so the hierarchy never looks past L1 and only the L1I counters
     * and replacement state move — which Cache::repeatLastHit applies
     * in one step.  The playback loop uses this to collapse the
     * sequential-fetch runs that dominate instruction streams.
     */
    void
    repeatInstrHits(std::uint64_t count)
    {
        l1i_stats_.accesses += count;
        l1i_cache_.repeatLastHit(count);
    }

    /** Same as repeatInstrHits() for the data side / L1D. */
    void
    repeatDataHits(std::uint64_t count)
    {
        l1d_stats_.accesses += count;
        l1d_cache_.repeatLastHit(count);
    }

    /**
     * True when the prewarm walk may use the cold fast path: nothing
     * has been accessed yet (so every level is empty and every probe
     * of a distinct-line walk must miss) and the prefetcher is off (a
     * prefetch fill would break the guaranteed-miss argument by
     * planting successor lines in L2/L3 ahead of the walk).
     */
    bool
    coldFillEligible() const
    {
        return prefetch_degree_ == 0 && l1i_stats_.accesses == 0 &&
               l1d_stats_.accesses == 0;
    }

    /**
     * Fill one distinct line of the cold data walk — exactly what
     * accessData() does when every level misses, minus the futile hit
     * scans.  Only valid under coldFillEligible() at walk start.  The
     * DRAM model is deliberately not touched: analytic prewarm leaves
     * every row closed, so the cold walk must too for the two paths to
     * produce identical state (see DESIGN §5h).
     */
    void
    prewarmFillData(std::uint64_t address)
    {
        ++l1d_stats_.accesses;
        ++l1d_stats_.misses;
        l1d_cache_.coldFill(address);
        ++l2d_stats_.accesses;
        ++l2d_stats_.misses;
        l2_cache_.coldFill(address);
        ++l3_stats_.accesses;
        ++l3_stats_.misses;
        if (l3_cache_)
            l3_cache_->coldFill(address);
    }

    /** Instruction-side counterpart of prewarmFillData(). */
    void
    prewarmFillInstr(std::uint64_t pc)
    {
        ++l1i_stats_.accesses;
        ++l1i_stats_.misses;
        l1i_cache_.coldFill(pc);
        ++l2i_stats_.accesses;
        ++l2i_stats_.misses;
        l2_cache_.coldFill(pc);
        ++l3_stats_.accesses;
        ++l3_stats_.misses;
        if (l3_cache_)
            l3_cache_->coldFill(pc);
    }

    /** L1I line size, for the playback loop's same-line run tracking. */
    std::uint32_t instrLineBytes() const
    {
        return l1i_cache_.config().line_bytes;
    }

    /** L1D line size, for the playback loop's same-line run tracking. */
    std::uint32_t dataLineBytes() const
    {
        return l1d_cache_.config().line_bytes;
    }

    const SideCounters &l1d() const { return l1d_stats_; }
    const SideCounters &l1i() const { return l1i_stats_; }
    const SideCounters &l2d() const { return l2d_stats_; }
    const SideCounters &l2i() const { return l2i_stats_; }
    const SideCounters &l3() const { return l3_stats_; }

    /** True when the hierarchy has a third level. */
    bool hasL3() const { return l3_cache_ != nullptr; }

    /** True when a DRAM row-buffer model sits behind the last level. */
    bool hasDram() const { return dram_ != nullptr; }

    PrefetcherKind prefetcherKind() const { return prefetcher_kind_; }
    unsigned prefetchDegree() const { return prefetch_degree_; }

    /** Lines brought in by the L2 prefetcher (not demand misses). */
    std::uint64_t prefetchFills() const { return prefetch_fills_; }

    /** Prefetched lines later consumed by a demand data access. */
    std::uint64_t prefetchUseful() const { return prefetch_useful_; }

    /** Prefetched lines evicted before any demand access used them. */
    std::uint64_t prefetchEvictedUnused() const
    {
        return prefetch_evicted_unused_;
    }

    /**
     * Retire every still-unconsumed prefetched line as evicted-unused
     * and clear its slot bit.  Called at the warmup->measurement
     * boundary: measured counters are snapshot deltas, so a line
     * prefetched during warmup must not surface as a measured useful
     * hit with no measured fill to match — that is exactly the
     * accounting drift the per-slot bits exist to prevent.  The lines
     * themselves stay resident; only the attribution is closed out.
     */
    void retireUnusedPrefetches();

    /** Way-predictor hits summed over every level. */
    std::uint64_t
    wayPredHits() const
    {
        return l1i_cache_.wayPredHits() + l1d_cache_.wayPredHits() +
               l2_cache_.wayPredHits() +
               (l3_cache_ ? l3_cache_->wayPredHits() : 0);
    }

    /** Way-predictor mispredictions summed over every level. */
    std::uint64_t
    wayPredMispredicts() const
    {
        return l1i_cache_.wayPredMispredicts() +
               l1d_cache_.wayPredMispredicts() +
               l2_cache_.wayPredMispredicts() +
               (l3_cache_ ? l3_cache_->wayPredMispredicts() : 0);
    }

    std::uint64_t dramAccesses() const
    {
        return dram_ ? dram_->accesses() : 0;
    }
    std::uint64_t dramRowHits() const
    {
        return dram_ ? dram_->rowHits() : 0;
    }
    std::uint64_t dramBusyCycles() const
    {
        return dram_ ? dram_->busyCycles() : 0;
    }
    std::uint64_t dramBudgetCycles() const
    {
        return dram_ ? dram_->budgetCycles() : 0;
    }

    /** Invalidate everything and zero statistics. */
    void reset();

  private:
    /** One slot of the stride prefetcher's PC-indexed table. */
    struct StrideEntry
    {
        std::uint64_t last_line = 0;
        std::int64_t delta = 0; //!< Line delta of the tracked stride.
        std::uint8_t confidence = 0; //!< Saturates at 3; issue at >= 2.
        std::uint8_t valid = 0;
    };

    /** One tracked ascending stream of the stream detector. */
    struct StreamWindow
    {
        std::uint64_t last_line = 0; //!< Furthest line fetched so far.
        std::uint8_t valid = 0;
    };

    static constexpr std::size_t kStrideEntries = 64;
    static constexpr std::size_t kStreamWindows = 8;
    /** A miss within this many lines past a window confirms it. */
    static constexpr std::uint64_t kStreamConfirmDistance = 4;
    /** A prefetched-line hit at most this far behind a window's edge
     *  extends that window. */
    static constexpr std::uint64_t kStreamHitWindow = 64;

    /** Defined inline below; one call per instruction fetch or memory
     *  op, so it must fold into the playback loop. */
    ServiceLevel accessCommon(Cache &l1, SideCounters &l1_stats,
                              SideCounters &l2_side, std::uint64_t address,
                              std::uint64_t pc, bool allow_prefetch);

    /** Demand data hit in L2: consume the slot's prefetched bit and
     *  let the engine confirm/extend (cold path, out of line). */
    void onL2DemandHit(std::uint64_t address, std::uint64_t pc);

    /** Demand data miss in L2: account the demand fill's eviction and
     *  let the engine train and issue (cold path, out of line). */
    void onL2DemandMiss(std::uint64_t address, std::uint64_t pc);

    /** A demand fill just landed at the L2's lastIndex(): if it
     *  evicted a line still carrying its prefetched bit, count it. */
    void noteDemandFill();

    /** Install one prefetch target through L3 (and DRAM) into L2. */
    void issuePrefetch(std::uint64_t target);

    /** Issue the next-line window after @p address. */
    void prefetchWindow(std::uint64_t address);

    /** Stride engine: train the @p pc slot and issue when confident. */
    void trainStrideAndIssue(std::uint64_t address, std::uint64_t pc);

    /** Stream engine reactions. */
    void streamMiss(std::uint64_t line);
    void streamPrefetchedHit(std::uint64_t line);

    Cache l1i_cache_;
    Cache l1d_cache_;
    Cache l2_cache_;
    std::unique_ptr<Cache> l3_cache_;

    SideCounters l1i_stats_;
    SideCounters l1d_stats_;
    SideCounters l2i_stats_;
    SideCounters l2d_stats_;
    SideCounters l3_stats_;

    unsigned prefetch_degree_ = 0;
    PrefetcherKind prefetcher_kind_ = PrefetcherKind::NextLine;
    std::uint64_t prefetch_fills_ = 0;
    std::uint64_t prefetch_useful_ = 0;
    std::uint64_t prefetch_evicted_unused_ = 0;

    /**
     * One bit per L2 slot (set-major, same layout as the tag array):
     * set when a prefetch fills the slot, cleared when a demand access
     * consumes it (-> prefetch_useful_) or a later fill overwrites it
     * (-> prefetch_evicted_unused_).  Sized with the L2 and never
     * reset mid-run, so the fills/useful/evicted identity in the file
     * comment is exact for any window.  Empty when the prefetcher is
     * off.
     */
    std::vector<std::uint8_t> l2_prefetch_bits_;

    /** Stride table; sized only for PrefetcherKind::Stride. */
    std::vector<StrideEntry> stride_table_;

    std::array<StreamWindow, kStreamWindows> stream_windows_{};
    std::size_t stream_next_ = 0; //!< Round-robin allocation cursor.

    /** Row-buffer model behind the last level; null when absent. */
    std::unique_ptr<DramModel> dram_;

    /** Closed-form prewarm writes per-level caches and side counters
     *  directly (see src/uarch/prewarm.h). */
    friend class PrewarmSolver;

    /** The invariant prover audits every level (src/verify). */
    friend class verify::StateAuditor;
};

// ---------------------------------------------------------------------
// Hot-path definitions, in the header so the L1 -> L2 -> L3
// fallthrough inlines into the playback loop.  Prefetch handling is
// the exception: it is rare and engine-heavy, so it stays out of line
// behind the prefetch_degree_ check.

inline ServiceLevel
CacheHierarchy::accessCommon(Cache &l1, SideCounters &l1_stats,
                             SideCounters &l2_side, std::uint64_t address,
                             std::uint64_t pc, bool allow_prefetch)
{
    ++l1_stats.accesses;
    if (l1.access(address))
        return ServiceLevel::L1;
    ++l1_stats.misses;

    ++l2_side.accesses;
    if (l2_cache_.access(address)) {
        if (prefetch_degree_ != 0 && allow_prefetch)
            onL2DemandHit(address, pc);
        return ServiceLevel::L2;
    }
    ++l2_side.misses;
    if (prefetch_degree_ != 0) {
        if (allow_prefetch) {
            onL2DemandMiss(address, pc);
        } else {
            // Instruction-side demand fills do not trigger the data
            // prefetcher, but they can still evict an unconsumed
            // prefetched line, which the identity must see.
            noteDemandFill();
        }
    }

    if (!l3_cache_) {
        // Two-level machine: an L2 miss goes to memory; the "L3"
        // counters then mirror the L2 miss stream so last-level MPKI
        // remains well-defined for the metric set.
        ++l3_stats_.accesses;
        ++l3_stats_.misses;
        if (dram_)
            dram_->access(address);
        return ServiceLevel::Memory;
    }

    ++l3_stats_.accesses;
    if (l3_cache_->access(address))
        return ServiceLevel::L3;
    ++l3_stats_.misses;
    if (dram_)
        dram_->access(address);
    return ServiceLevel::Memory;
}

inline ServiceLevel
CacheHierarchy::accessData(std::uint64_t address, std::uint64_t pc)
{
    return accessCommon(l1d_cache_, l1d_stats_, l2d_stats_, address, pc,
                        /*allow_prefetch=*/true);
}

inline ServiceLevel
CacheHierarchy::accessInstr(std::uint64_t pc)
{
    // The modelled prefetcher is a data-stream prefetcher.
    return accessCommon(l1i_cache_, l1i_stats_, l2i_stats_, pc, pc,
                        /*allow_prefetch=*/false);
}

} // namespace uarch
} // namespace speclens

#endif // SPECLENS_UARCH_CACHE_HIERARCHY_H
