/**
 * @file
 * Three-level cache hierarchy with split L1, unified L2 and optional
 * unified L3 (machines such as the Table IV Xeon E5405 expose only two
 * levels).
 *
 * The hierarchy tracks instruction-side and data-side miss counts
 * separately at every level because the paper reports L2D and L2I MPKI
 * as distinct metrics (Tables II/III).
 */

#ifndef SPECLENS_UARCH_CACHE_HIERARCHY_H
#define SPECLENS_UARCH_CACHE_HIERARCHY_H

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_set>

#include "uarch/cache.h"

namespace speclens {
namespace uarch {

/** Level that serviced a request. */
enum class ServiceLevel : std::uint8_t { L1, L2, L3, Memory };

/** Geometry of the whole hierarchy. */
struct CacheHierarchyConfig
{
    CacheConfig l1i{"L1I", 32 * 1024, 8, 64, ReplacementPolicy::Lru};
    CacheConfig l1d{"L1D", 32 * 1024, 8, 64, ReplacementPolicy::Lru};
    CacheConfig l2{"L2", 256 * 1024, 8, 64, ReplacementPolicy::Lru};

    /** Last-level cache; absent on two-level machines. */
    std::optional<CacheConfig> l3 =
        CacheConfig{"L3", 8 * 1024 * 1024, 16, 64, ReplacementPolicy::Lru};

    /**
     * Next-line degree of the L2 stream prefetcher: on a demand L2
     * data miss, this many successor lines are filled into L2 (and L3)
     * ahead of the stream.  Zero disables prefetching — the default
     * for the Table IV machine models, whose calibration folds the
     * prefetch effect into the workload streaming parameters; the
     * design-space ablations turn it on explicitly.
     */
    unsigned l2_prefetch_degree = 0;

    /** Feed every level's geometry and the prefetch degree to @p fp. */
    void hashInto(stats::Fingerprinter &fp) const;
};

/** Side-specific miss counters for one level. */
struct SideCounters
{
    std::uint64_t accesses = 0;
    std::uint64_t misses = 0;
};

/** Functional multi-level cache hierarchy. */
class CacheHierarchy
{
  public:
    explicit CacheHierarchy(const CacheHierarchyConfig &config);

    /**
     * Perform a data access (load or store; both allocate).
     * @return deepest level that had to service the request.
     */
    ServiceLevel accessData(std::uint64_t address);

    /** Perform an instruction fetch. */
    ServiceLevel accessInstr(std::uint64_t pc);

    const SideCounters &l1d() const { return l1d_stats_; }
    const SideCounters &l1i() const { return l1i_stats_; }
    const SideCounters &l2d() const { return l2d_stats_; }
    const SideCounters &l2i() const { return l2i_stats_; }
    const SideCounters &l3() const { return l3_stats_; }

    /** True when the hierarchy has a third level. */
    bool hasL3() const { return l3_cache_ != nullptr; }

    /** Lines brought in by the L2 prefetcher (not demand misses). */
    std::uint64_t prefetchFills() const { return prefetch_fills_; }

    /** Invalidate everything and zero statistics. */
    void reset();

  private:
    ServiceLevel accessCommon(Cache &l1, SideCounters &l1_stats,
                              SideCounters &l2_side, std::uint64_t address,
                              bool allow_prefetch);

    /** Fill the next-line window after a demand L2 data miss. */
    void prefetchAfterMiss(std::uint64_t address);

    Cache l1i_cache_;
    Cache l1d_cache_;
    Cache l2_cache_;
    std::unique_ptr<Cache> l3_cache_;

    SideCounters l1i_stats_;
    SideCounters l1d_stats_;
    SideCounters l2i_stats_;
    SideCounters l2d_stats_;
    SideCounters l3_stats_;

    unsigned prefetch_degree_ = 0;
    std::uint64_t prefetch_fills_ = 0;

    /**
     * Lines brought in by the prefetcher and not yet consumed by a
     * demand access.  A demand hit on such a line confirms the stream
     * and triggers the next prefetch window (prefetch-on-prefetched-
     * hit), which is what lets the prefetcher stay ahead of sustained
     * streams.
     */
    std::unordered_set<std::uint64_t> prefetched_lines_;
};

} // namespace uarch
} // namespace speclens

#endif // SPECLENS_UARCH_CACHE_HIERARCHY_H
