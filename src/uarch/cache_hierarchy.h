/**
 * @file
 * Three-level cache hierarchy with split L1, unified L2 and optional
 * unified L3 (machines such as the Table IV Xeon E5405 expose only two
 * levels).
 *
 * The hierarchy tracks instruction-side and data-side miss counts
 * separately at every level because the paper reports L2D and L2I MPKI
 * as distinct metrics (Tables II/III).
 */

#ifndef SPECLENS_UARCH_CACHE_HIERARCHY_H
#define SPECLENS_UARCH_CACHE_HIERARCHY_H

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_set>

#include "uarch/cache.h"

namespace speclens {
namespace verify {
class StateAuditor;
}
namespace uarch {

/** Level that serviced a request. */
enum class ServiceLevel : std::uint8_t { L1, L2, L3, Memory };

/** Geometry of the whole hierarchy. */
struct CacheHierarchyConfig
{
    CacheConfig l1i{"L1I", 32 * 1024, 8, 64, ReplacementPolicy::Lru};
    CacheConfig l1d{"L1D", 32 * 1024, 8, 64, ReplacementPolicy::Lru};
    CacheConfig l2{"L2", 256 * 1024, 8, 64, ReplacementPolicy::Lru};

    /** Last-level cache; absent on two-level machines. */
    std::optional<CacheConfig> l3 =
        CacheConfig{"L3", 8 * 1024 * 1024, 16, 64, ReplacementPolicy::Lru};

    /**
     * Next-line degree of the L2 stream prefetcher: on a demand L2
     * data miss, this many successor lines are filled into L2 (and L3)
     * ahead of the stream.  Zero disables prefetching — the default
     * for the Table IV machine models, whose calibration folds the
     * prefetch effect into the workload streaming parameters; the
     * design-space ablations turn it on explicitly.
     */
    unsigned l2_prefetch_degree = 0;

    /** Feed every level's geometry and the prefetch degree to @p fp. */
    void hashInto(stats::Fingerprinter &fp) const;
};

/** Side-specific miss counters for one level. */
struct SideCounters
{
    std::uint64_t accesses = 0;
    std::uint64_t misses = 0;
};

/** Functional multi-level cache hierarchy. */
class CacheHierarchy
{
  public:
    explicit CacheHierarchy(const CacheHierarchyConfig &config);

    /**
     * Perform a data access (load or store; both allocate).
     * @return deepest level that had to service the request.
     */
    ServiceLevel accessData(std::uint64_t address);

    /** Perform an instruction fetch. */
    ServiceLevel accessInstr(std::uint64_t pc);

    /**
     * Apply @p count repeat instruction fetches of the line touched by
     * the immediately preceding accessInstr(), all L1I hits.  Exactly
     * equivalent to calling accessInstr() that many more times with an
     * address on the same line: the line is resident (fetched or
     * filled by the preceding access, and nothing else touches L1I),
     * so the hierarchy never looks past L1 and only the L1I counters
     * and replacement state move — which Cache::repeatLastHit applies
     * in one step.  The playback loop uses this to collapse the
     * sequential-fetch runs that dominate instruction streams.
     */
    void
    repeatInstrHits(std::uint64_t count)
    {
        l1i_stats_.accesses += count;
        l1i_cache_.repeatLastHit(count);
    }

    /** Same as repeatInstrHits() for the data side / L1D. */
    void
    repeatDataHits(std::uint64_t count)
    {
        l1d_stats_.accesses += count;
        l1d_cache_.repeatLastHit(count);
    }

    /**
     * True when the prewarm walk may use the cold fast path: nothing
     * has been accessed yet (so every level is empty and every probe
     * of a distinct-line walk must miss) and the prefetcher is off (a
     * prefetch fill would break the guaranteed-miss argument by
     * planting successor lines in L2/L3 ahead of the walk).
     */
    bool
    coldFillEligible() const
    {
        return prefetch_degree_ == 0 && l1i_stats_.accesses == 0 &&
               l1d_stats_.accesses == 0;
    }

    /**
     * Fill one distinct line of the cold data walk — exactly what
     * accessData() does when every level misses, minus the futile hit
     * scans.  Only valid under coldFillEligible() at walk start.
     */
    void
    prewarmFillData(std::uint64_t address)
    {
        ++l1d_stats_.accesses;
        ++l1d_stats_.misses;
        l1d_cache_.coldFill(address);
        ++l2d_stats_.accesses;
        ++l2d_stats_.misses;
        l2_cache_.coldFill(address);
        ++l3_stats_.accesses;
        ++l3_stats_.misses;
        if (l3_cache_)
            l3_cache_->coldFill(address);
    }

    /** Instruction-side counterpart of prewarmFillData(). */
    void
    prewarmFillInstr(std::uint64_t pc)
    {
        ++l1i_stats_.accesses;
        ++l1i_stats_.misses;
        l1i_cache_.coldFill(pc);
        ++l2i_stats_.accesses;
        ++l2i_stats_.misses;
        l2_cache_.coldFill(pc);
        ++l3_stats_.accesses;
        ++l3_stats_.misses;
        if (l3_cache_)
            l3_cache_->coldFill(pc);
    }

    /** L1I line size, for the playback loop's same-line run tracking. */
    std::uint32_t instrLineBytes() const
    {
        return l1i_cache_.config().line_bytes;
    }

    /** L1D line size, for the playback loop's same-line run tracking. */
    std::uint32_t dataLineBytes() const
    {
        return l1d_cache_.config().line_bytes;
    }

    const SideCounters &l1d() const { return l1d_stats_; }
    const SideCounters &l1i() const { return l1i_stats_; }
    const SideCounters &l2d() const { return l2d_stats_; }
    const SideCounters &l2i() const { return l2i_stats_; }
    const SideCounters &l3() const { return l3_stats_; }

    /** True when the hierarchy has a third level. */
    bool hasL3() const { return l3_cache_ != nullptr; }

    /** Lines brought in by the L2 prefetcher (not demand misses). */
    std::uint64_t prefetchFills() const { return prefetch_fills_; }

    /** Invalidate everything and zero statistics. */
    void reset();

  private:
    /** Defined inline below; one call per instruction fetch or memory
     *  op, so it must fold into the playback loop. */
    ServiceLevel accessCommon(Cache &l1, SideCounters &l1_stats,
                              SideCounters &l2_side, std::uint64_t address,
                              bool allow_prefetch);

    /** Confirm-or-extend the stream window on a demand hit of a
     *  prefetched L2 line (cold path, out of line). */
    void confirmPrefetchedHit(std::uint64_t address);

    /** Fill the next-line window after a demand L2 data miss. */
    void prefetchAfterMiss(std::uint64_t address);

    Cache l1i_cache_;
    Cache l1d_cache_;
    Cache l2_cache_;
    std::unique_ptr<Cache> l3_cache_;

    SideCounters l1i_stats_;
    SideCounters l1d_stats_;
    SideCounters l2i_stats_;
    SideCounters l2d_stats_;
    SideCounters l3_stats_;

    unsigned prefetch_degree_ = 0;
    std::uint64_t prefetch_fills_ = 0;

    /**
     * Lines brought in by the prefetcher and not yet consumed by a
     * demand access.  A demand hit on such a line confirms the stream
     * and triggers the next prefetch window (prefetch-on-prefetched-
     * hit), which is what lets the prefetcher stay ahead of sustained
     * streams.
     */
    std::unordered_set<std::uint64_t> prefetched_lines_;

    /** Closed-form prewarm writes per-level caches and side counters
     *  directly (see src/uarch/prewarm.h). */
    friend class PrewarmSolver;

    /** The invariant prover audits every level (src/verify). */
    friend class verify::StateAuditor;
};

// ---------------------------------------------------------------------
// Hot-path definitions, in the header so the L1 -> L2 -> L3
// fallthrough inlines into the playback loop.  Prefetch handling is
// the exception: it is rare and hash-set heavy, so it stays out of
// line behind the prefetch_degree_ check.

inline ServiceLevel
CacheHierarchy::accessCommon(Cache &l1, SideCounters &l1_stats,
                             SideCounters &l2_side, std::uint64_t address,
                             bool allow_prefetch)
{
    ++l1_stats.accesses;
    if (l1.access(address))
        return ServiceLevel::L1;
    ++l1_stats.misses;

    ++l2_side.accesses;
    if (l2_cache_.access(address)) {
        if (allow_prefetch && prefetch_degree_ > 0) {
            // Consuming a prefetched line confirms the stream: fetch
            // the next window so the prefetcher stays ahead.
            confirmPrefetchedHit(address);
        }
        return ServiceLevel::L2;
    }
    ++l2_side.misses;
    if (allow_prefetch && prefetch_degree_ > 0)
        prefetchAfterMiss(address);

    if (!l3_cache_) {
        // Two-level machine: an L2 miss goes to memory; the "L3"
        // counters then mirror the L2 miss stream so last-level MPKI
        // remains well-defined for the metric set.
        ++l3_stats_.accesses;
        ++l3_stats_.misses;
        return ServiceLevel::Memory;
    }

    ++l3_stats_.accesses;
    if (l3_cache_->access(address))
        return ServiceLevel::L3;
    ++l3_stats_.misses;
    return ServiceLevel::Memory;
}

inline ServiceLevel
CacheHierarchy::accessData(std::uint64_t address)
{
    return accessCommon(l1d_cache_, l1d_stats_, l2d_stats_, address,
                        /*allow_prefetch=*/true);
}

inline ServiceLevel
CacheHierarchy::accessInstr(std::uint64_t pc)
{
    // The modelled prefetcher is a data-stream prefetcher.
    return accessCommon(l1i_cache_, l1i_stats_, l2i_stats_, pc,
                        /*allow_prefetch=*/false);
}

} // namespace uarch
} // namespace speclens

#endif // SPECLENS_UARCH_CACHE_HIERARCHY_H
