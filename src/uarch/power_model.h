/**
 * @file
 * Activity-based power model (RAPL-counter stand-in).
 *
 * The paper measures package power with RAPL counters on three Intel
 * machines and decomposes it into core, LLC and DRAM domains (Section
 * V-C, Fig. 12): PC1 of the power feature space is dominated by DRAM
 * power, PC2 by core power.  This model reproduces the same structure
 * from simulation activity: core power scales with retirement rate and
 * FP/SIMD content, LLC power with last-level traffic, and DRAM power
 * with memory bandwidth, each on top of a static floor.
 */

#ifndef SPECLENS_UARCH_POWER_MODEL_H
#define SPECLENS_UARCH_POWER_MODEL_H

#include "uarch/cpi_model.h"
#include "uarch/perf_counters.h"

namespace speclens {
namespace uarch {

/** Machine-specific power coefficients. */
struct PowerModelConfig
{
    double frequency_ghz = 3.4;

    // Core domain.
    double core_static_watts = 4.0;
    double energy_per_instruction_nj = 0.45; //!< Baseline int pipeline.
    double fp_energy_extra_nj = 0.60;        //!< Extra per FP op.
    double simd_energy_extra_nj = 1.10;      //!< Extra per SIMD op.
    double mispredict_energy_nj = 2.0;       //!< Wasted speculative work.

    // LLC domain.
    double llc_static_watts = 1.5;
    double llc_access_energy_nj = 1.2;

    // DRAM domain.
    double dram_static_watts = 2.0;
    double dram_access_energy_nj = 18.0;

    /** Feed every field, in declaration order, to @p fp. */
    void hashInto(stats::Fingerprinter &fp) const;
};

/** Per-domain power estimate in watts. */
struct PowerBreakdown
{
    double core_watts = 0.0;
    double llc_watts = 0.0;
    double dram_watts = 0.0;

    double total() const { return core_watts + llc_watts + dram_watts; }
};

/**
 * Estimate average power over a simulation window.
 *
 * @param counters Event counts of the window.
 * @param cpi Total CPI of the window (fixes the time base: a window of
 *        N instructions at the given CPI and frequency spans
 *        N * cpi / f seconds).
 * @param config Machine power coefficients.
 */
PowerBreakdown computePower(const PerfCounters &counters, double cpi,
                            const PowerModelConfig &config);

} // namespace uarch
} // namespace speclens

#endif // SPECLENS_UARCH_POWER_MODEL_H
