/**
 * @file
 * Machine description helpers.
 */

#include "machine.h"

#include <algorithm>
#include <stdexcept>

#include "stats/rng.h"

namespace speclens {
namespace uarch {

namespace {

void
validateTlb(const std::string &machine, const TlbConfig &tlb)
{
    auto fail = [&](const std::string &what) {
        throw std::invalid_argument("machine " + machine + ", " +
                                    tlb.name + ": " + what);
    };
    if (tlb.entries == 0)
        fail("TLB has zero entries");
    if (tlb.associativity == 0 || tlb.associativity > tlb.entries ||
        tlb.entries % tlb.associativity != 0)
        fail("associativity must divide the entry count");
    if (tlb.page_bytes < 4096 ||
        (tlb.page_bytes & (tlb.page_bytes - 1)) != 0)
        fail("page size must be a power of two >= 4096");
}

} // namespace

void
validateMachineConfig(const MachineConfig &machine)
{
    auto fail = [&machine](const std::string &what) {
        throw std::invalid_argument("machine " + machine.short_name +
                                    ": " + what);
    };

    const CacheHierarchyConfig &c = machine.caches;
    c.l1i.validate();
    c.l1d.validate();
    c.l2.validate();
    if (c.l3)
        c.l3->validate();
    if (c.l2.size_bytes < c.l1d.size_bytes ||
        c.l2.size_bytes < c.l1i.size_bytes)
        fail("L2 is smaller than an L1");
    if (c.l3 && c.l3->size_bytes <= c.l2.size_bytes)
        fail("L3 is not larger than L2");

    validateTlb(machine.short_name, machine.tlbs.itlb);
    validateTlb(machine.short_name, machine.tlbs.dtlb);
    if (machine.tlbs.l2tlb)
        validateTlb(machine.short_name, *machine.tlbs.l2tlb);

    const LatencyModel &lat = machine.latencies;
    if (!(lat.l2_hit_cycles > 0.0 &&
          lat.l3_hit_cycles > lat.l2_hit_cycles &&
          lat.memory_cycles > lat.l3_hit_cycles))
        fail("visible latencies must increase with hierarchy depth");
    if (lat.mispredict_penalty <= 0.0 || lat.icache_l2_penalty <= 0.0 ||
        lat.l2tlb_hit_cycles <= 0.0 ||
        lat.page_walk_cycles <= lat.l2tlb_hit_cycles)
        fail("front-end and TLB penalties must be positive, with a "
             "page walk costing more than an L2 TLB hit");

    if (machine.frequency_ghz < 0.5 || machine.frequency_ghz > 6.0)
        fail("clock frequency outside the plausible [0.5, 6] GHz range");
    if (machine.predictor_size_log2 < 8 ||
        machine.predictor_size_log2 > 20)
        fail("predictor size outside [2^8, 2^20] entries");

    const PowerModelConfig &p = machine.power;
    if (p.core_static_watts <= 0.0 ||
        p.energy_per_instruction_nj <= 0.0 ||
        p.llc_static_watts <= 0.0 || p.dram_static_watts <= 0.0 ||
        p.llc_access_energy_nj <= 0.0 || p.dram_access_energy_nj <= 0.0)
        fail("static power and per-event energies must be positive");
    double freq_diff = p.frequency_ghz - machine.frequency_ghz;
    if (freq_diff < -1e-9 || freq_diff > 1e-9)
        fail("power-model clock disagrees with the machine clock");
}

std::string
isaName(Isa isa)
{
    switch (isa) {
      case Isa::X86: return "x86";
      case Isa::Sparc: return "SPARC";
    }
    return "unknown";
}

void
WorkloadTransform::hashInto(stats::Fingerprinter &fp) const
{
    fp.tag("transform");
    fp.f64(memory_mix_scale);
    fp.f64(branch_mix_scale);
    fp.f64(code_scale);
    fp.f64(mix_jitter);
}

void
MachineConfig::hashInto(stats::Fingerprinter &fp) const
{
    fp.tag("machine");
    fp.str(name);
    fp.str(short_name);
    fp.u64(static_cast<std::uint64_t>(isa));
    fp.f64(frequency_ghz);
    caches.hashInto(fp);
    tlbs.hashInto(fp);
    fp.u64(static_cast<std::uint64_t>(predictor));
    fp.u64(predictor_size_log2);
    latencies.hashInto(fp);
    power.hashInto(fp);
    transform.hashInto(fp);
}

std::uint64_t
MachineConfig::fingerprint() const
{
    stats::Fingerprinter fp;
    hashInto(fp);
    return fp.value();
}

trace::WorkloadProfile
transformForMachine(const trace::WorkloadProfile &profile,
                    const MachineConfig &machine)
{
    trace::WorkloadProfile out = profile;
    const WorkloadTransform &t = machine.transform;

    stats::Rng jitter(stats::combineSeeds(profile.seed(),
                                          stats::hashName(machine.name)));
    auto jittered = [&jitter, &t](double value) {
        double factor = 1.0 + jitter.gaussian(0.0, t.mix_jitter);
        return value * std::clamp(factor, 0.8, 1.2);
    };

    out.mix.load = jittered(profile.mix.load * t.memory_mix_scale);
    out.mix.store = jittered(profile.mix.store * t.memory_mix_scale);
    out.mix.branch = jittered(profile.mix.branch * t.branch_mix_scale);
    out.mix.fp = jittered(profile.mix.fp);
    out.mix.simd = jittered(profile.mix.simd);

    // Renormalise if the scaled mix overshoots the unit budget.
    double sum = out.mix.load + out.mix.store + out.mix.branch +
                 out.mix.fp + out.mix.simd;
    if (sum > 0.95) {
        double shrink = 0.95 / sum;
        out.mix.load *= shrink;
        out.mix.store *= shrink;
        out.mix.branch *= shrink;
        out.mix.fp *= shrink;
        out.mix.simd *= shrink;
    }

    out.memory.code_bytes =
        std::max(64.0, profile.memory.code_bytes * t.code_scale *
                           std::clamp(1.0 + jitter.gaussian(0.0, 0.05),
                                      0.8, 1.2));
    out.memory.hot_code_bytes =
        std::min(out.memory.hot_code_bytes, out.memory.code_bytes);

    return out;
}

} // namespace uarch
} // namespace speclens
