/**
 * @file
 * Machine description helpers.
 */

#include "machine.h"

#include <algorithm>

#include "stats/rng.h"

namespace speclens {
namespace uarch {

std::string
isaName(Isa isa)
{
    switch (isa) {
      case Isa::X86: return "x86";
      case Isa::Sparc: return "SPARC";
    }
    return "unknown";
}

trace::WorkloadProfile
transformForMachine(const trace::WorkloadProfile &profile,
                    const MachineConfig &machine)
{
    trace::WorkloadProfile out = profile;
    const WorkloadTransform &t = machine.transform;

    stats::Rng jitter(stats::combineSeeds(profile.seed(),
                                          stats::hashName(machine.name)));
    auto jittered = [&jitter, &t](double value) {
        double factor = 1.0 + jitter.gaussian(0.0, t.mix_jitter);
        return value * std::clamp(factor, 0.8, 1.2);
    };

    out.mix.load = jittered(profile.mix.load * t.memory_mix_scale);
    out.mix.store = jittered(profile.mix.store * t.memory_mix_scale);
    out.mix.branch = jittered(profile.mix.branch * t.branch_mix_scale);
    out.mix.fp = jittered(profile.mix.fp);
    out.mix.simd = jittered(profile.mix.simd);

    // Renormalise if the scaled mix overshoots the unit budget.
    double sum = out.mix.load + out.mix.store + out.mix.branch +
                 out.mix.fp + out.mix.simd;
    if (sum > 0.95) {
        double shrink = 0.95 / sum;
        out.mix.load *= shrink;
        out.mix.store *= shrink;
        out.mix.branch *= shrink;
        out.mix.fp *= shrink;
        out.mix.simd *= shrink;
    }

    out.memory.code_bytes =
        std::max(64.0, profile.memory.code_bytes * t.code_scale *
                           std::clamp(1.0 + jitter.gaussian(0.0, 0.05),
                                      0.8, 1.2));
    out.memory.hot_code_bytes =
        std::min(out.memory.hot_code_bytes, out.memory.code_bytes);

    return out;
}

} // namespace uarch
} // namespace speclens
