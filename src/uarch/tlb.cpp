/**
 * @file
 * TLB hierarchy implementation.
 */

#include "tlb.h"

namespace speclens {
namespace uarch {

CacheConfig
TlbConfig::asCacheConfig() const
{
    CacheConfig c;
    c.name = name;
    c.size_bytes = static_cast<std::uint64_t>(entries) * page_bytes;
    c.associativity = associativity;
    c.line_bytes = static_cast<std::uint32_t>(page_bytes);
    c.policy = ReplacementPolicy::Lru;
    return c;
}

void
TlbConfig::hashInto(stats::Fingerprinter &fp) const
{
    fp.tag("tlb");
    fp.str(name);
    fp.u64(entries);
    fp.u64(associativity);
    fp.u64(page_bytes);
}

void
TlbHierarchyConfig::hashInto(stats::Fingerprinter &fp) const
{
    fp.tag("tlbs");
    itlb.hashInto(fp);
    dtlb.hashInto(fp);
    fp.boolean(l2tlb.has_value());
    if (l2tlb)
        l2tlb->hashInto(fp);
}

TlbHierarchy::TlbHierarchy(const TlbHierarchyConfig &config)
    : itlb_(config.itlb.asCacheConfig()),
      dtlb_(config.dtlb.asCacheConfig())
{
    if (config.l2tlb)
        l2tlb_ = std::make_unique<Cache>(config.l2tlb->asCacheConfig());
}

void
TlbHierarchy::reset()
{
    itlb_.reset();
    dtlb_.reset();
    if (l2tlb_)
        l2tlb_->reset();
    l2tlb_misses_ = 0;
    page_walks_ = 0;
}

} // namespace uarch
} // namespace speclens
