/**
 * @file
 * Bandwidth-limited DRAM / row-buffer model behind the last cache
 * level.
 *
 * A request that misses every cache level is serviced by one of a set
 * of independent DRAM banks, each holding one open row (open-page
 * policy).  A request to the open row costs only the burst transfer;
 * any other row pays an activate (precharge + row open) on top.  The
 * model is functional like the caches — it accumulates cycle counters
 * instead of stalling anything — and feeds two memory-centric metrics:
 *
 *  - row_buffer_hit_rate: row hits / accesses, the paper-style
 *    locality measure;
 *  - dram_bw_utilization: busy cycles / budget cycles, where the
 *    budget grants cycles_per_burst_budget cycles per access (the
 *    channel's sustainable issue rate).  A ratio above 1 means the
 *    access stream demands more bandwidth than the channel provides.
 */

#ifndef SPECLENS_UARCH_DRAM_MODEL_H
#define SPECLENS_UARCH_DRAM_MODEL_H

#include <cstdint>
#include <vector>

#include "stats/fingerprint.h"

namespace speclens {
namespace verify {
class StateAuditor;
}
namespace uarch {

/** Geometry and timing of the DRAM channel. */
struct DramConfig
{
    std::uint32_t banks = 16;      //!< Independent banks (power of two).
    std::uint32_t row_bytes = 8192;//!< Row-buffer size (power of two).
    std::uint32_t burst_cycles = 4;    //!< Transfer cost, row already open.
    std::uint32_t activate_cycles = 24;//!< Precharge + activate on a miss.

    /**
     * Cycles the channel grants per access: the budget against which
     * busy cycles are measured.  Every access adds this many cycles to
     * the budget, so utilization = busy / budget is scale-free.
     */
    std::uint32_t cycles_per_burst_budget = 6;

    /** @throws std::invalid_argument on malformed geometry. */
    void validate() const;

    /** Feed every field, in declaration order, to @p fp. */
    void hashInto(stats::Fingerprinter &fp) const;
};

/** Functional banked row-buffer model. */
class DramModel
{
  public:
    explicit DramModel(const DramConfig &config);

    /** Service one memory request for @p address. */
    void
    access(std::uint64_t address)
    {
        ++accesses_;
        budget_cycles_ += config_.cycles_per_burst_budget;
        std::uint64_t row_addr = address >> row_shift_;
        std::uint64_t bank = row_addr & bank_mask_;
        std::uint64_t row = row_addr >> bank_shift_;
        if (row_open_[bank] && open_row_[bank] == row) {
            ++row_hits_;
            busy_cycles_ += config_.burst_cycles;
        } else {
            busy_cycles_ +=
                config_.activate_cycles + config_.burst_cycles;
            open_row_[bank] = row;
            row_open_[bank] = 1;
        }
    }

    /** Close every row and zero statistics. */
    void reset();

    std::uint64_t accesses() const { return accesses_; }
    std::uint64_t rowHits() const { return row_hits_; }
    std::uint64_t busyCycles() const { return busy_cycles_; }
    std::uint64_t budgetCycles() const { return budget_cycles_; }

    const DramConfig &config() const { return config_; }

  private:
    DramConfig config_;
    std::uint32_t row_shift_;  //!< log2(row_bytes).
    std::uint32_t bank_shift_; //!< log2(banks).
    std::uint64_t bank_mask_;  //!< banks - 1.

    std::vector<std::uint64_t> open_row_; //!< Open row per bank.
    std::vector<std::uint8_t> row_open_;  //!< 1 when the bank has one.

    std::uint64_t accesses_ = 0;
    std::uint64_t row_hits_ = 0;
    std::uint64_t busy_cycles_ = 0;
    std::uint64_t budget_cycles_ = 0;

    /** The invariant prover reads the bank state (src/verify). */
    friend class verify::StateAuditor;

    /** The prewarm equivalence digest includes the bank state. */
    friend class PrewarmSolver;
};

} // namespace uarch
} // namespace speclens

#endif // SPECLENS_UARCH_DRAM_MODEL_H
