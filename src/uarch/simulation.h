/**
 * @file
 * Trace-driven simulation driver: the perf-counter measurement
 * equivalent.
 *
 * simulate() plays a workload's synthetic instruction stream through a
 * machine's cache hierarchy, TLBs and branch predictor, collects the
 * event counts a perf session would report, and derives the CPI stack
 * and power estimate.  A warm-up window is excluded from the counters
 * so cold-start compulsory misses do not distort the steady-state
 * rates the paper's metrics describe.
 */

#ifndef SPECLENS_UARCH_SIMULATION_H
#define SPECLENS_UARCH_SIMULATION_H

#include <cstdint>
#include <vector>

#include "stats/fingerprint.h"
#include "trace/phased_workload.h"
#include "trace/workload_profile.h"
#include "uarch/cpi_model.h"
#include "uarch/machine.h"
#include "uarch/perf_counters.h"
#include "uarch/power_model.h"
#include "verify/violation.h"

namespace speclens {
namespace uarch {

/** Simulation window parameters. */
struct SimulationConfig
{
    /** Measured instructions (after warm-up). */
    std::uint64_t instructions = 200'000;

    /** Warm-up instructions excluded from all counters. */
    std::uint64_t warmup = 40'000;

    /** Extra seed entropy for independent re-runs. */
    std::uint64_t seed_salt = 0;

    /**
     * When false the machine's ISA/compiler workload transform is
     * skipped (used by tests that need the untouched profile).
     */
    bool apply_machine_transform = true;

    /**
     * Touch every line of LLC-resident working sets before the warm-up
     * window, so a short measurement reflects steady state rather than
     * cold-start compulsory misses (the paper measures full multi-
     * trillion-instruction runs).
     */
    bool prewarm = true;

    /**
     * Skip the closed-form prewarm solver and run the walking path
     * even when the pattern is provable.  Both paths leave bit-for-bit
     * identical state (enforced by tests/uarch/prewarm_equivalence_
     * test.cpp), so this knob is not result-determining and is
     * excluded from hashInto(); it exists for equivalence tests and
     * A/B timing.
     */
    bool force_prewarm_walk = false;

    /**
     * Feed every result-determining field (the window sizes, the seed
     * salt and both mode flags) to @p fp — the canonical "window" hash
     * shared by all artifact-store fingerprints.
     */
    void hashInto(stats::Fingerprinter &fp) const;
};

/** Everything a measurement run produces. */
struct SimulationResult
{
    PerfCounters counters;  //!< Steady-state event counts.
    CpiStack cpi_stack;     //!< Top-down CPI decomposition.
    PowerBreakdown power;   //!< Core / LLC / DRAM power estimate.

    /** Total CPI. */
    double cpi() const { return cpi_stack.total(); }

    /** Instructions per cycle. */
    double ipc() const;
};

/**
 * Measure @p profile on @p machine.
 *
 * Deterministic for a given (profile, machine, config) triple.  The
 * instruction stream is fused into the structure models: records flow
 * from the generator in small structure-of-arrays batches, never as a
 * window-sized buffer.
 */
SimulationResult simulate(const trace::WorkloadProfile &profile,
                          const MachineConfig &machine,
                          const SimulationConfig &config = {});

/**
 * simulate() with the structural invariant prover forced on,
 * independent of the SPECLENS_AUDIT build switch: the live structures
 * are audited after prewarm, at sampled batch boundaries and at end of
 * run, and the evidence accumulates in @p trail (verify.audits /
 * verify.violations obs counters move in step).  Auditing never
 * mutates structure state, so the returned result is bit-identical to
 * simulate() on the same inputs.  This is the entry point behind
 * `speclens audit`.
 */
SimulationResult simulateAudited(const trace::WorkloadProfile &profile,
                                 const MachineConfig &machine,
                                 const SimulationConfig &config,
                                 verify::AuditTrail &trail);

/**
 * simulate(), but through the pre-batching playback form: the whole
 * window is materialized as a std::vector<Instruction> and replayed
 * per instruction.  Kept as the baseline side of the streaming-vs-
 * materialized parity contract (results must satisfy bitIdentical
 * against simulate()) and of the `bench trajectory` speedup
 * measurement.
 */
SimulationResult
simulateMaterialized(const trace::WorkloadProfile &profile,
                     const MachineConfig &machine,
                     const SimulationConfig &config = {});

/**
 * True when two results agree bit-for-bit: every event count equal and
 * every derived double (CPI-stack components, power rails) identical
 * under exact floating-point comparison.  This is the contract the
 * fused pipeline must honour against the materialized baseline and a
 * warm artifact-store rerun against a cold one.
 */
bool bitIdentical(const SimulationResult &a, const SimulationResult &b);

/** Result of simulating a phased workload. */
struct PhasedSimulationResult
{
    /** Per-phase results, in phase order. */
    std::vector<SimulationResult> per_phase;

    /** Counters accumulated over the whole run. */
    PerfCounters combined_counters;

    /** Execution-weighted mean CPI of the run. */
    double combined_cpi = 0.0;
};

/**
 * Measure a phased workload end to end: phases run in sequence within
 * one set of machine structures (caches, TLBs and predictor state
 * carry across phase boundaries, as on hardware), each receiving a
 * share of the measured window proportional to its weight.
 *
 * @param workload Validated phased workload.
 * @param machine Machine model.
 * @param config Window sizes apply to the whole run.
 */
PhasedSimulationResult
simulatePhased(const trace::PhasedWorkload &workload,
               const MachineConfig &machine,
               const SimulationConfig &config = {});

} // namespace uarch
} // namespace speclens

#endif // SPECLENS_UARCH_SIMULATION_H
