/**
 * @file
 * Simulation driver implementation.
 */

#include "simulation.h"

#include <algorithm>
#include <array>
#include <bit>
#include <iostream>

#include "obs/metrics.h"
#include "trace/trace_generator.h"
#include "uarch/prewarm.h"
#include "verify/state_audit.h"

namespace speclens {
namespace uarch {

void
SimulationConfig::hashInto(stats::Fingerprinter &fp) const
{
    fp.tag("window");
    fp.u64(instructions);
    fp.u64(warmup);
    fp.u64(seed_salt);
    fp.boolean(apply_machine_transform);
    fp.boolean(prewarm);
}

double
SimulationResult::ipc() const
{
    double c = cpi();
    return c > 0.0 ? 1.0 / c : 0.0;
}

namespace {

/** Structure counters snapshot used to subtract warm-up windows. */
struct Snapshot
{
    SideCounters l1d, l1i, l2d, l2i, l3;
    std::uint64_t dtlb_acc, dtlb_miss, itlb_acc, itlb_miss;
    std::uint64_t l2tlb_miss, walks;
    std::uint64_t pf_fills, pf_useful, pf_evicted;
    std::uint64_t wp_hits, wp_mispred;
    std::uint64_t dram_acc, dram_row_hits, dram_busy, dram_budget;
};

Snapshot
capture(const CacheHierarchy &caches, const TlbHierarchy &tlbs)
{
    return Snapshot{caches.l1d(),
                    caches.l1i(),
                    caches.l2d(),
                    caches.l2i(),
                    caches.l3(),
                    tlbs.dtlbAccesses(),
                    tlbs.dtlbMisses(),
                    tlbs.itlbAccesses(),
                    tlbs.itlbMisses(),
                    tlbs.l2tlbMisses(),
                    tlbs.pageWalks(),
                    caches.prefetchFills(),
                    caches.prefetchUseful(),
                    caches.prefetchEvictedUnused(),
                    caches.wayPredHits(),
                    caches.wayPredMispredicts(),
                    caches.dramAccesses(),
                    caches.dramRowHits(),
                    caches.dramBusyCycles(),
                    caches.dramBudgetCycles()};
}

/** Add the structure-count delta between two snapshots to counters. */
void
addDelta(PerfCounters &c, const Snapshot &start, const Snapshot &end)
{
    c.l1d_accesses += end.l1d.accesses - start.l1d.accesses;
    c.l1d_misses += end.l1d.misses - start.l1d.misses;
    c.l1i_accesses += end.l1i.accesses - start.l1i.accesses;
    c.l1i_misses += end.l1i.misses - start.l1i.misses;
    c.l2d_accesses += end.l2d.accesses - start.l2d.accesses;
    c.l2d_misses += end.l2d.misses - start.l2d.misses;
    c.l2i_accesses += end.l2i.accesses - start.l2i.accesses;
    c.l2i_misses += end.l2i.misses - start.l2i.misses;
    c.l3_accesses += end.l3.accesses - start.l3.accesses;
    c.l3_misses += end.l3.misses - start.l3.misses;
    c.dtlb_accesses += end.dtlb_acc - start.dtlb_acc;
    c.dtlb_misses += end.dtlb_miss - start.dtlb_miss;
    c.itlb_accesses += end.itlb_acc - start.itlb_acc;
    c.itlb_misses += end.itlb_miss - start.itlb_miss;
    c.l2tlb_misses += end.l2tlb_miss - start.l2tlb_miss;
    c.page_walks += end.walks - start.walks;
    c.prefetch_fills += end.pf_fills - start.pf_fills;
    c.prefetch_useful += end.pf_useful - start.pf_useful;
    c.prefetch_evicted_unused += end.pf_evicted - start.pf_evicted;
    c.way_pred_hits += end.wp_hits - start.wp_hits;
    c.way_pred_mispredicts += end.wp_mispred - start.wp_mispred;
    c.dram_accesses += end.dram_acc - start.dram_acc;
    c.dram_row_hits += end.dram_row_hits - start.dram_row_hits;
    c.dram_busy_cycles += end.dram_busy - start.dram_busy;
    c.dram_budget_cycles += end.dram_budget - start.dram_budget;
}

/** One machine's structures plus the per-instruction playback loop. */
class Playback
{
  public:
    explicit Playback(const MachineConfig &machine)
        : caches_(machine.caches),
          tlbs_(machine.tlbs),
          predictor_(makePredictorVariant(machine.predictor,
                                          machine.predictor_size_log2))
    {
    }

    /**
     * Touch every line of LLC-resident working sets once, coldest set
     * first, so short measurements reflect steady state rather than
     * cold-start compulsory misses (the paper measures full multi-
     * trillion-instruction runs).  Sets too large for the hierarchy
     * are skipped — their misses are genuine capacity misses.
     */
    void
    prewarm(const trace::WorkloadProfile &profile,
            const MachineConfig &machine, bool force_walk)
    {
        std::uint64_t llc_lines =
            (machine.caches.l3 ? machine.caches.l3->size_bytes
                               : machine.caches.l2.size_bytes) /
            trace::kLineBytes;

        // Closed-form fast path: when the warmup stream is provably
        // regular (see prewarm.h), the solver writes the exact final
        // state without the per-line walk.  Any structure outside the
        // provable regime — or a touched hierarchy, as in phase 2+ of
        // a phased run — falls back to the walk below, which remains
        // the semantic definition.
        if (!force_walk &&
            PrewarmSolver::apply(caches_, tlbs_, profile, llc_lines)) {
            static obs::Counter &analytic =
                obs::Registry::global().counter("uarch.prewarm.analytic");
            analytic.add();
            return;
        }
        static obs::Counter &walked =
            obs::Registry::global().counter("uarch.prewarm.walked");
        walked.add();
        PrewarmSolver::walk(caches_, tlbs_, profile, llc_lines);
    }

    /**
     * Attach an audit trail: subsequent auditPoint() calls (and the
     * sampled batch-boundary audits inside playLoop) prove the
     * structural invariants and append violations there.  With no
     * trail attached the hooks reduce to one well-predicted null test
     * per 4096-record batch.
     */
    void attachAudit(verify::AuditTrail *trail) { trail_ = trail; }

    /**
     * Close out prefetch attribution at the warmup->measurement
     * boundary (see CacheHierarchy::retireUnusedPrefetches): without
     * this, measured snapshot deltas could show more useful/evicted
     * prefetches than fills.
     */
    void retireUnusedPrefetches() { caches_.retireUnusedPrefetches(); }

    /**
     * Run one audit point.  @p post_prewarm selects the stricter
     * prewarm-boundary audit (fill counters and newest-first stamp
     * order are only defined before demand accesses start).
     */
    void
    auditPoint(bool post_prewarm)
    {
        if (!trail_)
            return;
        ++trail_->audits;
        std::size_t before = trail_->violations.size();
        if (post_prewarm) {
            verify::StateAuditor::auditPrewarm(caches_, tlbs_,
                                               trail_->violations);
            verify::StateAuditor::auditPredictor(predictor_,
                                                 trail_->violations);
        } else {
            verify::StateAuditor::auditAll(caches_, tlbs_, predictor_,
                                           trail_->violations);
        }
        static obs::Counter &audits =
            obs::Registry::global().counter("verify.audits");
        static obs::Counter &violations =
            obs::Registry::global().counter("verify.violations");
        audits.add();
        violations.add(trail_->violations.size() - before);
    }

    /**
     * Play @p count instructions from @p generator.  When @p record is
     * non-null, retirement counters accumulate there and the structure
     * deltas of the window are added at the end.
     *
     * This is the hottest code in SpecLens (hundreds of millions of
     * iterations per campaign).  Records stream from the generator in
     * structure-of-arrays batches (trace::RecordBatch) instead of a
     * materialized window, so the in-flight buffer stays L1/L2
     * resident.  Each batch is consumed in two passes: an ordered pass
     * drives the stateful structures (caches, TLBs, predictor) in
     * exact stream order — preserving bit-identical results — and a
     * branchless counting pass reduces the SoA arrays into retirement
     * counters with loops the compiler can vectorize.  std::visit
     * resolves the predictor's concrete type once per window so
     * predict()/update() are direct, inlinable calls, and the
     * record/no-record decision is a template parameter so the warm-up
     * loop carries no retirement bookkeeping.
     */
    void
    play(trace::TraceGenerator &generator, std::uint64_t count,
         PerfCounters *record)
    {
        std::visit(
            [&](auto &predictor) {
                if (record)
                    playLoop<true>(predictor, generator, count, record);
                else
                    playLoop<false>(predictor, generator, count,
                                    nullptr);
            },
            predictor_);
    }

    /**
     * Play a pre-materialized instruction vector (the pre-batching
     * playback form).  Kept as the baseline side of the streaming-vs-
     * materialized parity contract and of the `bench trajectory`
     * speedup measurement; access order is identical to the fused
     * path, so results are bit-identical.
     */
    void
    playVector(const std::vector<trace::Instruction> &window,
               PerfCounters *record)
    {
        std::visit(
            [&](auto &predictor) {
                if (record)
                    playVectorLoop<true>(predictor, window, record);
                else
                    playVectorLoop<false>(predictor, window, nullptr);
            },
            predictor_);
    }

  private:
    /**
     * Ordered structure pass over one record: I-side access, branch
     * resolution, D-side access.  Shared by the fused and materialized
     * loops so both apply the exact same access sequence.
     * @return true when a branch record mispredicted.
     */
    template <typename Predictor>
    bool
    stepStructures(Predictor &predictor, std::uint64_t pc,
                   trace::OpClass op, std::uint64_t address,
                   std::uint32_t branch_id, bool taken)
    {
        caches_.accessInstr(pc);
        tlbs_.accessInstr(pc);

        bool mispredicted = false;
        if (op == trace::OpClass::Branch) {
            bool predicted = predictor.predict(pc, branch_id);
            mispredicted = predicted != taken;
            predictor.update(pc, branch_id, taken);
        }
        if (op == trace::OpClass::Load || op == trace::OpClass::Store) {
            caches_.accessData(address, pc);
            tlbs_.accessData(address);
        }
        return mispredicted;
    }

    template <bool Record, typename Predictor>
    void
    playLoop(Predictor &predictor, trace::TraceGenerator &generator,
             std::uint64_t count, PerfCounters *record)
    {
        Snapshot start = capture(caches_, tlbs_);

        // Retirement counts batch in locals (registers) and flush to
        // the PerfCounters struct once after the loop.
        std::uint64_t kernel = 0, loads = 0, stores = 0, fp_ops = 0;
        std::uint64_t simd_ops = 0, branches = 0, taken_branches = 0;
        std::uint64_t mispredictions = 0;

        trace::RecordBatch batch;
        // Branch records compacted out of the ordered pass, resolved
        // per batch by the predictor's batch kernel (see updateBatch
        // in branch_predictor.h).  The predictor shares no state with
        // the caches or TLBs and branch outcomes are trace data, so
        // deferring all of a batch's predictor work behind the
        // structure pass is bit-exact.
        std::array<std::uint64_t, trace::kRecordBatchCapacity> branch_pc;
        std::array<std::uint32_t, trace::kRecordBatchCapacity> branch_id;
        std::array<std::uint8_t, trace::kRecordBatchCapacity> branch_taken;
        std::array<std::uint8_t, trace::kRecordBatchCapacity> branch_mispred;

        // Same-line / same-page run collapsing.  Sequential fetch
        // re-probes the same L1I line up to line_bytes/4 times in a
        // row and the same ITLB page thousands of times; each repeat
        // is a guaranteed hit (the line was resident or filled on the
        // previous record, and nothing else touches that structure in
        // between), and its state update collapses exactly (see
        // Cache::repeatLastHit).  So the loop only probes a structure
        // when the line/page changes and counts the repeats, flushing
        // the run right before the next real probe.  Final counters
        // and replacement state are bit-identical to probing every
        // record — the materialized baseline and the parity tests
        // check exactly that.
        constexpr std::uint64_t kNoRun = ~0ull;
        const unsigned i_line_shift = static_cast<unsigned>(
            std::countr_zero(std::uint64_t{caches_.instrLineBytes()}));
        const unsigned d_line_shift = static_cast<unsigned>(
            std::countr_zero(std::uint64_t{caches_.dataLineBytes()}));
        const unsigned i_page_shift = static_cast<unsigned>(
            std::countr_zero(tlbs_.instrPageBytes()));
        const unsigned d_page_shift = static_cast<unsigned>(
            std::countr_zero(tlbs_.dataPageBytes()));
        std::uint64_t last_iline = kNoRun, last_ipage = kNoRun;
        std::uint64_t last_dline = kNoRun, last_dpage = kNoRun;
        std::uint64_t irun = 0, iprun = 0, drun = 0, dprun = 0;

        // Sampled batch-boundary audits: every kAuditBatchInterval-th
        // batch when a trail is attached (the mid-run invariants hold
        // with runs still open — pending repeats only add counts).
        constexpr std::uint64_t kAuditBatchInterval = 16;

        std::uint64_t remaining = count;
        while (remaining > 0) {
            std::size_t n = generator.fill(batch, remaining);
            remaining -= n;
            if (trail_ && ++audit_batches_ % kAuditBatchInterval == 0)
                auditPoint(/*post_prewarm=*/false);

            // Pass 1 (ordered): drive the stateful structures in
            // exact stream order, with run collapsing.
            std::size_t branches_in_batch = 0;
            for (std::size_t i = 0; i < n; ++i) {
                std::uint64_t pc = batch.pc[i];

                std::uint64_t iline = pc >> i_line_shift;
                if (iline == last_iline) {
                    ++irun;
                } else {
                    if (irun) {
                        caches_.repeatInstrHits(irun);
                        irun = 0;
                    }
                    caches_.accessInstr(pc);
                    last_iline = iline;
                }
                std::uint64_t ipage = pc >> i_page_shift;
                if (ipage == last_ipage) {
                    ++iprun;
                } else {
                    if (iprun) {
                        tlbs_.repeatInstrHits(iprun);
                        iprun = 0;
                    }
                    tlbs_.accessInstr(pc);
                    last_ipage = ipage;
                }

                trace::OpClass op = batch.op[i];
                if (op == trace::OpClass::Branch) {
                    branch_pc[branches_in_batch] = pc;
                    branch_id[branches_in_batch] = batch.branch_id[i];
                    branch_taken[branches_in_batch] =
                        batch.taken(i) ? 1 : 0;
                    ++branches_in_batch;
                } else if (op == trace::OpClass::Load ||
                           op == trace::OpClass::Store) {
                    std::uint64_t address = batch.address[i];
                    std::uint64_t dline = address >> d_line_shift;
                    if (dline == last_dline) {
                        ++drun;
                    } else {
                        if (drun) {
                            caches_.repeatDataHits(drun);
                            drun = 0;
                        }
                        caches_.accessData(address, pc);
                        last_dline = dline;
                    }
                    std::uint64_t dpage = address >> d_page_shift;
                    if (dpage == last_dpage) {
                        ++dprun;
                    } else {
                        if (dprun) {
                            tlbs_.repeatDataHits(dprun);
                            dprun = 0;
                        }
                        tlbs_.accessData(address);
                        last_dpage = dpage;
                    }
                }
            }

            // Resolve the batch's branches through the predictor's
            // batch kernel (also needed when not recording: predictor
            // state must advance through warm-up windows).
            predictor.updateBatch(branch_pc.data(), branch_id.data(),
                                  branch_taken.data(),
                                  branch_mispred.data(),
                                  branches_in_batch);

            // Pass 2 (counting): branchless SoA reductions.  32-bit
            // lane accumulators are safe (n <= 4096) and give the
            // vectorizer narrower, denser lanes.
            if constexpr (Record) {
                const trace::OpClass *op = batch.op.data();
                const std::uint8_t *flags = batch.flags.data();
                std::uint32_t b_kernel = 0, b_loads = 0, b_stores = 0;
                std::uint32_t b_fp = 0, b_simd = 0, b_branches = 0;
                std::uint32_t b_taken = 0, b_mispred = 0;
                for (std::size_t i = 0; i < n; ++i) {
                    bool is_branch = op[i] == trace::OpClass::Branch;
                    b_kernel +=
                        (flags[i] & trace::RecordBatch::kKernelBit) >> 1;
                    b_loads += op[i] == trace::OpClass::Load ? 1 : 0;
                    b_stores += op[i] == trace::OpClass::Store ? 1 : 0;
                    b_fp += op[i] == trace::OpClass::FpAlu ? 1 : 0;
                    b_simd += op[i] == trace::OpClass::Simd ? 1 : 0;
                    b_branches += is_branch ? 1 : 0;
                    b_taken +=
                        is_branch
                            ? (flags[i] & trace::RecordBatch::kTakenBit)
                            : 0;
                }
                for (std::size_t k = 0; k < branches_in_batch; ++k)
                    b_mispred += branch_mispred[k];
                kernel += b_kernel;
                loads += b_loads;
                stores += b_stores;
                fp_ops += b_fp;
                simd_ops += b_simd;
                branches += b_branches;
                taken_branches += b_taken;
                mispredictions += b_mispred;
            }
        }

        // Flush the trailing runs so the window's counters are
        // complete before the closing snapshot.
        if (irun)
            caches_.repeatInstrHits(irun);
        if (iprun)
            tlbs_.repeatInstrHits(iprun);
        if (drun)
            caches_.repeatDataHits(drun);
        if (dprun)
            tlbs_.repeatDataHits(dprun);

        if constexpr (Record) {
            PerfCounters &c = *record;
            c.instructions += count;
            c.kernel_instructions += kernel;
            c.loads += loads;
            c.stores += stores;
            c.fp_ops += fp_ops;
            c.simd_ops += simd_ops;
            c.branches += branches;
            c.taken_branches += taken_branches;
            c.branch_mispredictions += mispredictions;
            addDelta(c, start, capture(caches_, tlbs_));
        }
    }

    template <bool Record, typename Predictor>
    void
    playVectorLoop(Predictor &predictor,
                   const std::vector<trace::Instruction> &window,
                   PerfCounters *record)
    {
        Snapshot start = capture(caches_, tlbs_);

        std::uint64_t kernel = 0, loads = 0, stores = 0, fp_ops = 0;
        std::uint64_t simd_ops = 0, branches = 0, taken_branches = 0;
        std::uint64_t mispredictions = 0;

        for (const trace::Instruction &inst : window) {
            bool mispredicted =
                stepStructures(predictor, inst.pc, inst.op, inst.address,
                               inst.branch_id, inst.taken);

            if constexpr (Record) {
                kernel += inst.kernel ? 1 : 0;
                switch (inst.op) {
                  case trace::OpClass::Load: ++loads; break;
                  case trace::OpClass::Store: ++stores; break;
                  case trace::OpClass::FpAlu: ++fp_ops; break;
                  case trace::OpClass::Simd: ++simd_ops; break;
                  case trace::OpClass::Branch:
                    ++branches;
                    taken_branches += inst.taken ? 1 : 0;
                    mispredictions += mispredicted ? 1 : 0;
                    break;
                  default:
                    break;
                }
            }
        }

        if constexpr (Record) {
            PerfCounters &c = *record;
            c.instructions += window.size();
            c.kernel_instructions += kernel;
            c.loads += loads;
            c.stores += stores;
            c.fp_ops += fp_ops;
            c.simd_ops += simd_ops;
            c.branches += branches;
            c.taken_branches += taken_branches;
            c.branch_mispredictions += mispredictions;
            addDelta(c, start, capture(caches_, tlbs_));
        }
    }

    CacheHierarchy caches_;
    TlbHierarchy tlbs_;
    PredictorVariant predictor_;
    verify::AuditTrail *trail_ = nullptr;
    std::uint64_t audit_batches_ = 0;
};

/** Fused-pipeline simulate() body, with an optional audit trail. */
SimulationResult
simulateFused(const trace::WorkloadProfile &profile,
              const MachineConfig &machine, const SimulationConfig &config,
              verify::AuditTrail *trail)
{
    trace::WorkloadProfile effective =
        config.apply_machine_transform
            ? transformForMachine(profile, machine)
            : profile;

    trace::TraceGenerator generator(effective, config.seed_salt);
    Playback playback(machine);
    playback.attachAudit(trail);
    if (config.prewarm) {
        playback.prewarm(effective, machine, config.force_prewarm_walk);
        playback.auditPoint(/*post_prewarm=*/true);
    }

    SimulationResult result;
    playback.play(generator, config.warmup, nullptr);
    playback.retireUnusedPrefetches();
    playback.play(generator, config.instructions, &result.counters);
    playback.auditPoint(/*post_prewarm=*/false);

    // Surfaced in the run manifest so the prefetch-vs-demand-miss
    // separation (lint rule SL014) is checkable from artifacts alone.
    if (result.counters.prefetch_fills != 0) {
        static obs::Counter &prefetch_fills =
            obs::Registry::global().counter("uarch.prefetch.fills");
        prefetch_fills.add(result.counters.prefetch_fills);
    }

    result.cpi_stack = computeCpiStack(result.counters,
                                       machine.latencies,
                                       effective.exec);
    result.power = computePower(result.counters,
                                result.cpi_stack.total(), machine.power);
    return result;
}

#ifndef SPECLENS_AUDIT_OFF
/**
 * Surface violations found by the implicit (SPECLENS_AUDIT=ON) hooks:
 * nothing holds the trail after simulate() returns, so print each
 * record to stderr.  The verify.violations counter has already moved.
 */
void
reportImplicitAudit(const verify::AuditTrail &trail)
{
    for (const verify::Violation &v : trail.violations)
        std::cerr << "speclens: audit violation: "
                  << verify::renderViolation(v) << "\n";
}
#endif

} // namespace

SimulationResult
simulate(const trace::WorkloadProfile &profile, const MachineConfig &machine,
         const SimulationConfig &config)
{
#ifndef SPECLENS_AUDIT_OFF
    verify::AuditTrail trail;
    SimulationResult result = simulateFused(profile, machine, config, &trail);
    reportImplicitAudit(trail);
    return result;
#else
    return simulateFused(profile, machine, config, nullptr);
#endif
}

SimulationResult
simulateAudited(const trace::WorkloadProfile &profile,
                const MachineConfig &machine, const SimulationConfig &config,
                verify::AuditTrail &trail)
{
    return simulateFused(profile, machine, config, &trail);
}

SimulationResult
simulateMaterialized(const trace::WorkloadProfile &profile,
                     const MachineConfig &machine,
                     const SimulationConfig &config)
{
    trace::WorkloadProfile effective =
        config.apply_machine_transform
            ? transformForMachine(profile, machine)
            : profile;

    trace::TraceGenerator generator(effective, config.seed_salt);
    Playback playback(machine);
#ifndef SPECLENS_AUDIT_OFF
    verify::AuditTrail trail;
    playback.attachAudit(&trail);
#endif
    if (config.prewarm) {
        playback.prewarm(effective, machine, config.force_prewarm_walk);
        playback.auditPoint(/*post_prewarm=*/true);
    }

    // Materialize both windows up front — the pre-batching memory
    // profile this path exists to preserve.
    std::vector<trace::Instruction> warmup =
        generator.generate(static_cast<std::size_t>(config.warmup));
    std::vector<trace::Instruction> measured =
        generator.generate(static_cast<std::size_t>(config.instructions));

    SimulationResult result;
    playback.playVector(warmup, nullptr);
    playback.retireUnusedPrefetches();
    playback.playVector(measured, &result.counters);
    playback.auditPoint(/*post_prewarm=*/false);
#ifndef SPECLENS_AUDIT_OFF
    reportImplicitAudit(trail);
#endif

    result.cpi_stack = computeCpiStack(result.counters,
                                       machine.latencies,
                                       effective.exec);
    result.power = computePower(result.counters,
                                result.cpi_stack.total(), machine.power);
    return result;
}

bool
bitIdentical(const SimulationResult &a, const SimulationResult &b)
{
    const PerfCounters &x = a.counters;
    const PerfCounters &y = b.counters;
    bool counters_equal =
        x.instructions == y.instructions && x.loads == y.loads &&
        x.stores == y.stores && x.branches == y.branches &&
        x.taken_branches == y.taken_branches && x.fp_ops == y.fp_ops &&
        x.simd_ops == y.simd_ops &&
        x.kernel_instructions == y.kernel_instructions &&
        x.l1d_accesses == y.l1d_accesses && x.l1d_misses == y.l1d_misses &&
        x.l1i_accesses == y.l1i_accesses && x.l1i_misses == y.l1i_misses &&
        x.l2d_accesses == y.l2d_accesses && x.l2d_misses == y.l2d_misses &&
        x.l2i_accesses == y.l2i_accesses && x.l2i_misses == y.l2i_misses &&
        x.l3_accesses == y.l3_accesses && x.l3_misses == y.l3_misses &&
        x.dtlb_accesses == y.dtlb_accesses &&
        x.dtlb_misses == y.dtlb_misses &&
        x.itlb_accesses == y.itlb_accesses &&
        x.itlb_misses == y.itlb_misses &&
        x.l2tlb_misses == y.l2tlb_misses && x.page_walks == y.page_walks &&
        x.branch_mispredictions == y.branch_mispredictions &&
        x.prefetch_fills == y.prefetch_fills &&
        x.prefetch_useful == y.prefetch_useful &&
        x.prefetch_evicted_unused == y.prefetch_evicted_unused &&
        x.way_pred_hits == y.way_pred_hits &&
        x.way_pred_mispredicts == y.way_pred_mispredicts &&
        x.dram_accesses == y.dram_accesses &&
        x.dram_row_hits == y.dram_row_hits &&
        x.dram_busy_cycles == y.dram_busy_cycles &&
        x.dram_budget_cycles == y.dram_budget_cycles;
    if (!counters_equal)
        return false;

    const CpiStack &s = a.cpi_stack;
    const CpiStack &t = b.cpi_stack;
    bool stack_equal =
        s.base == t.base && s.dependency == t.dependency &&
        s.frontend_icache == t.frontend_icache &&
        s.frontend_branch == t.frontend_branch &&
        s.backend_l2 == t.backend_l2 && s.backend_l3 == t.backend_l3 &&
        s.backend_memory == t.backend_memory &&
        s.backend_tlb == t.backend_tlb;
    if (!stack_equal)
        return false;

    return a.power.core_watts == b.power.core_watts &&
           a.power.llc_watts == b.power.llc_watts &&
           a.power.dram_watts == b.power.dram_watts;
}

PhasedSimulationResult
simulatePhased(const trace::PhasedWorkload &workload,
               const MachineConfig &machine,
               const SimulationConfig &config)
{
    workload.validate();

    Playback playback(machine);
#ifndef SPECLENS_AUDIT_OFF
    verify::AuditTrail trail;
    playback.attachAudit(&trail);
#endif
    PhasedSimulationResult result;
    double weighted_cpi = 0.0;

    bool first_phase = true;
    for (const trace::Phase &phase : workload.phases) {
        trace::WorkloadProfile effective =
            config.apply_machine_transform
                ? transformForMachine(phase.profile, machine)
                : phase.profile;
        if (config.prewarm) {
            playback.prewarm(effective, machine, config.force_prewarm_walk);
            // The prewarm-boundary fill invariants only hold while the
            // structures are untouched; later phases warm into state
            // the previous phase left behind.
            playback.auditPoint(/*post_prewarm=*/first_phase);
        }
        first_phase = false;

        auto share = [&phase](std::uint64_t total) {
            return std::max<std::uint64_t>(
                1, static_cast<std::uint64_t>(
                       phase.weight * static_cast<double>(total)));
        };

        trace::TraceGenerator generator(effective, config.seed_salt);
        playback.play(generator, share(config.warmup), nullptr);
        playback.retireUnusedPrefetches();

        SimulationResult phase_result;
        playback.play(generator, share(config.instructions),
                      &phase_result.counters);
        phase_result.cpi_stack = computeCpiStack(
            phase_result.counters, machine.latencies, effective.exec);
        phase_result.power =
            computePower(phase_result.counters,
                         phase_result.cpi_stack.total(), machine.power);

        result.combined_counters += phase_result.counters;
        weighted_cpi += phase.weight * phase_result.cpi();
        result.per_phase.push_back(std::move(phase_result));
    }
    playback.auditPoint(/*post_prewarm=*/false);
#ifndef SPECLENS_AUDIT_OFF
    reportImplicitAudit(trail);
#endif

    result.combined_cpi = weighted_cpi;
    return result;
}

} // namespace uarch
} // namespace speclens
