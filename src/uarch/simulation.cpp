/**
 * @file
 * Simulation driver implementation.
 */

#include "simulation.h"

#include <algorithm>

#include "trace/trace_generator.h"

namespace speclens {
namespace uarch {

void
SimulationConfig::hashInto(stats::Fingerprinter &fp) const
{
    fp.tag("window");
    fp.u64(instructions);
    fp.u64(warmup);
    fp.u64(seed_salt);
    fp.boolean(apply_machine_transform);
    fp.boolean(prewarm);
}

double
SimulationResult::ipc() const
{
    double c = cpi();
    return c > 0.0 ? 1.0 / c : 0.0;
}

namespace {

/** Structure counters snapshot used to subtract warm-up windows. */
struct Snapshot
{
    SideCounters l1d, l1i, l2d, l2i, l3;
    std::uint64_t dtlb_acc, dtlb_miss, itlb_acc, itlb_miss;
    std::uint64_t l2tlb_miss, walks;
};

Snapshot
capture(const CacheHierarchy &caches, const TlbHierarchy &tlbs)
{
    return Snapshot{caches.l1d(),       caches.l1i(),
                    caches.l2d(),       caches.l2i(),
                    caches.l3(),        tlbs.dtlbAccesses(),
                    tlbs.dtlbMisses(),  tlbs.itlbAccesses(),
                    tlbs.itlbMisses(),  tlbs.l2tlbMisses(),
                    tlbs.pageWalks()};
}

/** Add the structure-count delta between two snapshots to counters. */
void
addDelta(PerfCounters &c, const Snapshot &start, const Snapshot &end)
{
    c.l1d_accesses += end.l1d.accesses - start.l1d.accesses;
    c.l1d_misses += end.l1d.misses - start.l1d.misses;
    c.l1i_accesses += end.l1i.accesses - start.l1i.accesses;
    c.l1i_misses += end.l1i.misses - start.l1i.misses;
    c.l2d_accesses += end.l2d.accesses - start.l2d.accesses;
    c.l2d_misses += end.l2d.misses - start.l2d.misses;
    c.l2i_accesses += end.l2i.accesses - start.l2i.accesses;
    c.l2i_misses += end.l2i.misses - start.l2i.misses;
    c.l3_accesses += end.l3.accesses - start.l3.accesses;
    c.l3_misses += end.l3.misses - start.l3.misses;
    c.dtlb_accesses += end.dtlb_acc - start.dtlb_acc;
    c.dtlb_misses += end.dtlb_miss - start.dtlb_miss;
    c.itlb_accesses += end.itlb_acc - start.itlb_acc;
    c.itlb_misses += end.itlb_miss - start.itlb_miss;
    c.l2tlb_misses += end.l2tlb_miss - start.l2tlb_miss;
    c.page_walks += end.walks - start.walks;
}

/** One machine's structures plus the per-instruction playback loop. */
class Playback
{
  public:
    explicit Playback(const MachineConfig &machine)
        : caches_(machine.caches),
          tlbs_(machine.tlbs),
          predictor_(makePredictorVariant(machine.predictor,
                                          machine.predictor_size_log2))
    {
    }

    /**
     * Touch every line of LLC-resident working sets once, coldest set
     * first, so short measurements reflect steady state rather than
     * cold-start compulsory misses (the paper measures full multi-
     * trillion-instruction runs).  Sets too large for the hierarchy
     * are skipped — their misses are genuine capacity misses.
     */
    void
    prewarm(const trace::WorkloadProfile &profile,
            const MachineConfig &machine)
    {
        std::uint64_t llc_lines =
            (machine.caches.l3 ? machine.caches.l3->size_bytes
                               : machine.caches.l2.size_bytes) /
            trace::kLineBytes;
        const auto &sets = profile.memory.data;
        for (std::size_t i = sets.size(); i-- > 0;) {
            auto stride =
                static_cast<std::uint64_t>(sets[i].stride_bytes);
            std::uint64_t elements = std::max<std::uint64_t>(
                1, static_cast<std::uint64_t>(sets[i].bytes) / stride);
            // Each element occupies one cache line, so a set is
            // LLC-resident exactly when its element count fits the
            // last level's line capacity.
            if (elements > llc_lines)
                continue;
            std::uint64_t base =
                trace::kDataBase + i * trace::kDataRegionStride;
            for (std::uint64_t e = 0; e < elements; ++e) {
                caches_.accessData(base + e * stride);
                tlbs_.accessData(base + e * stride);
            }
        }
        // Code last so the hot region ends up most recently used.
        auto code_bytes =
            static_cast<std::uint64_t>(profile.memory.code_bytes);
        for (std::uint64_t offset = 0; offset < code_bytes;
             offset += trace::kLineBytes) {
            caches_.accessInstr(trace::kCodeBase + offset);
            tlbs_.accessInstr(trace::kCodeBase + offset);
        }
    }

    /**
     * Play @p count instructions from @p generator.  When @p record is
     * non-null, retirement counters accumulate there and the structure
     * deltas of the window are added at the end.
     *
     * The instruction loop is the hottest code in SpecLens (hundreds
     * of millions of iterations per campaign), so it is specialised
     * two ways: std::visit resolves the predictor's concrete type once
     * per window so predict()/update() are direct, inlinable calls
     * rather than per-branch virtual dispatch, and the record/no-record
     * decision is lifted to a template parameter so the warm-up loop
     * carries no retirement bookkeeping at all.
     */
    void
    play(trace::TraceGenerator &generator, std::uint64_t count,
         PerfCounters *record)
    {
        std::visit(
            [&](auto &predictor) {
                if (record)
                    playLoop<true>(predictor, generator, count, record);
                else
                    playLoop<false>(predictor, generator, count,
                                    nullptr);
            },
            predictor_);
    }

  private:
    template <bool Record, typename Predictor>
    void
    playLoop(Predictor &predictor, trace::TraceGenerator &generator,
             std::uint64_t count, PerfCounters *record)
    {
        Snapshot start = capture(caches_, tlbs_);

        // Retirement counts batch in locals (registers) and flush to
        // the PerfCounters struct once after the loop.
        std::uint64_t kernel = 0, loads = 0, stores = 0, fp_ops = 0;
        std::uint64_t simd_ops = 0, branches = 0, taken_branches = 0;
        std::uint64_t mispredictions = 0;

        for (std::uint64_t i = 0; i < count; ++i) {
            trace::Instruction inst = generator.next();

            caches_.accessInstr(inst.pc);
            tlbs_.accessInstr(inst.pc);

            bool mispredicted = false;
            if (inst.isBranch()) {
                bool predicted =
                    predictor.predict(inst.pc, inst.branch_id);
                mispredicted = predicted != inst.taken;
                predictor.update(inst.pc, inst.branch_id, inst.taken);
            }
            if (inst.isMemory()) {
                caches_.accessData(inst.address);
                tlbs_.accessData(inst.address);
            }

            if constexpr (Record) {
                kernel += inst.kernel ? 1 : 0;
                switch (inst.op) {
                  case trace::OpClass::Load: ++loads; break;
                  case trace::OpClass::Store: ++stores; break;
                  case trace::OpClass::FpAlu: ++fp_ops; break;
                  case trace::OpClass::Simd: ++simd_ops; break;
                  case trace::OpClass::Branch:
                    ++branches;
                    taken_branches += inst.taken ? 1 : 0;
                    mispredictions += mispredicted ? 1 : 0;
                    break;
                  default:
                    break;
                }
            }
        }

        if constexpr (Record) {
            PerfCounters &c = *record;
            c.instructions += count;
            c.kernel_instructions += kernel;
            c.loads += loads;
            c.stores += stores;
            c.fp_ops += fp_ops;
            c.simd_ops += simd_ops;
            c.branches += branches;
            c.taken_branches += taken_branches;
            c.branch_mispredictions += mispredictions;
            addDelta(c, start, capture(caches_, tlbs_));
        }
    }

    CacheHierarchy caches_;
    TlbHierarchy tlbs_;
    PredictorVariant predictor_;
};

} // namespace

SimulationResult
simulate(const trace::WorkloadProfile &profile, const MachineConfig &machine,
         const SimulationConfig &config)
{
    trace::WorkloadProfile effective =
        config.apply_machine_transform
            ? transformForMachine(profile, machine)
            : profile;

    trace::TraceGenerator generator(effective, config.seed_salt);
    Playback playback(machine);
    if (config.prewarm)
        playback.prewarm(effective, machine);

    SimulationResult result;
    playback.play(generator, config.warmup, nullptr);
    playback.play(generator, config.instructions, &result.counters);

    result.cpi_stack = computeCpiStack(result.counters,
                                       machine.latencies,
                                       effective.exec);
    result.power = computePower(result.counters,
                                result.cpi_stack.total(), machine.power);
    return result;
}

PhasedSimulationResult
simulatePhased(const trace::PhasedWorkload &workload,
               const MachineConfig &machine,
               const SimulationConfig &config)
{
    workload.validate();

    Playback playback(machine);
    PhasedSimulationResult result;
    double weighted_cpi = 0.0;

    for (const trace::Phase &phase : workload.phases) {
        trace::WorkloadProfile effective =
            config.apply_machine_transform
                ? transformForMachine(phase.profile, machine)
                : phase.profile;
        if (config.prewarm)
            playback.prewarm(effective, machine);

        auto share = [&phase](std::uint64_t total) {
            return std::max<std::uint64_t>(
                1, static_cast<std::uint64_t>(
                       phase.weight * static_cast<double>(total)));
        };

        trace::TraceGenerator generator(effective, config.seed_salt);
        playback.play(generator, share(config.warmup), nullptr);

        SimulationResult phase_result;
        playback.play(generator, share(config.instructions),
                      &phase_result.counters);
        phase_result.cpi_stack = computeCpiStack(
            phase_result.counters, machine.latencies, effective.exec);
        phase_result.power =
            computePower(phase_result.counters,
                         phase_result.cpi_stack.total(), machine.power);

        result.combined_counters += phase_result.counters;
        weighted_cpi += phase.weight * phase_result.cpi();
        result.per_phase.push_back(std::move(phase_result));
    }

    result.combined_cpi = weighted_cpi;
    return result;
}

} // namespace uarch
} // namespace speclens
