/**
 * @file
 * Hardware-performance-counter equivalent for simulated machines.
 *
 * On the paper's seven commercial machines these values come from
 * Linux perf / vendor counter infrastructure; here they are accumulated
 * by the trace-driven simulators.  Derived-rate helpers implement the
 * units the paper reports: MPKI (misses per kilo-instruction) for
 * caches and branches, and MPMI (misses per million instructions) for
 * TLBs and page walks.
 */

#ifndef SPECLENS_UARCH_PERF_COUNTERS_H
#define SPECLENS_UARCH_PERF_COUNTERS_H

#include <cstdint>

namespace speclens {
namespace uarch {

/** Raw event counts accumulated over a simulation window. */
struct PerfCounters
{
    // Retirement.
    std::uint64_t instructions = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t branches = 0;
    std::uint64_t taken_branches = 0;
    std::uint64_t fp_ops = 0;
    std::uint64_t simd_ops = 0;
    std::uint64_t kernel_instructions = 0;

    // Cache hierarchy (D = data side, I = instruction side).
    std::uint64_t l1d_accesses = 0;
    std::uint64_t l1d_misses = 0;
    std::uint64_t l1i_accesses = 0;
    std::uint64_t l1i_misses = 0;
    std::uint64_t l2d_accesses = 0;
    std::uint64_t l2d_misses = 0;
    std::uint64_t l2i_accesses = 0;
    std::uint64_t l2i_misses = 0;
    std::uint64_t l3_accesses = 0;
    std::uint64_t l3_misses = 0;

    // TLB hierarchy.
    std::uint64_t dtlb_accesses = 0;
    std::uint64_t dtlb_misses = 0;
    std::uint64_t itlb_accesses = 0;
    std::uint64_t itlb_misses = 0;
    std::uint64_t l2tlb_misses = 0;
    std::uint64_t page_walks = 0;

    // Branch prediction.
    std::uint64_t branch_mispredictions = 0;

    // Memory-centric model (zero when the feature is off on the
    // machine: prefetcher disabled, no way prediction, no DRAM model).
    std::uint64_t prefetch_fills = 0;
    std::uint64_t prefetch_useful = 0;
    std::uint64_t prefetch_evicted_unused = 0;
    std::uint64_t way_pred_hits = 0;
    std::uint64_t way_pred_mispredicts = 0;
    std::uint64_t dram_accesses = 0;
    std::uint64_t dram_row_hits = 0;
    std::uint64_t dram_busy_cycles = 0;
    std::uint64_t dram_budget_cycles = 0;

    /** events per kilo-instruction. */
    double
    perKilo(std::uint64_t events) const
    {
        return instructions == 0
                   ? 0.0
                   : 1000.0 * static_cast<double>(events) /
                         static_cast<double>(instructions);
    }

    /** events per million instructions. */
    double
    perMillion(std::uint64_t events) const
    {
        return instructions == 0
                   ? 0.0
                   : 1.0e6 * static_cast<double>(events) /
                         static_cast<double>(instructions);
    }

    /** events as a fraction of all instructions. */
    double
    fraction(std::uint64_t events) const
    {
        return instructions == 0
                   ? 0.0
                   : static_cast<double>(events) /
                         static_cast<double>(instructions);
    }

    double l1dMpki() const { return perKilo(l1d_misses); }
    double l1iMpki() const { return perKilo(l1i_misses); }
    double l2dMpki() const { return perKilo(l2d_misses); }
    double l2iMpki() const { return perKilo(l2i_misses); }
    double l3Mpki() const { return perKilo(l3_misses); }
    double branchMpki() const { return perKilo(branch_mispredictions); }
    double takenMpki() const { return perKilo(taken_branches); }
    double dtlbMpmi() const { return perMillion(dtlb_misses); }
    double itlbMpmi() const { return perMillion(itlb_misses); }
    double l2tlbMpmi() const { return perMillion(l2tlb_misses); }
    double pageWalksPerMi() const { return perMillion(page_walks); }

    /** ratio of @p part over @p whole, 0 when the whole is zero. */
    static double
    ratio(std::uint64_t part, std::uint64_t whole)
    {
        return whole == 0 ? 0.0
                          : static_cast<double>(part) /
                                static_cast<double>(whole);
    }

    /**
     * Fraction of demand L2 data misses the prefetcher eliminated:
     * useful prefetches over useful prefetches plus the misses that
     * still happened.
     */
    double
    prefetchCoverage() const
    {
        return ratio(prefetch_useful, prefetch_useful + l2d_misses);
    }

    /** Fraction of prefetched lines a demand access later used. */
    double prefetchAccuracy() const
    {
        return ratio(prefetch_useful, prefetch_fills);
    }

    /**
     * Fraction of prefetched lines that survived until use: 1 minus
     * the share evicted unconsumed.  1.0 when nothing was prefetched.
     */
    double
    prefetchTimeliness() const
    {
        return prefetch_fills == 0
                   ? 1.0
                   : 1.0 - ratio(prefetch_evicted_unused, prefetch_fills);
    }

    /** Way-predictor hit rate over predicted cache hits. */
    double
    wayPredAccuracy() const
    {
        return ratio(way_pred_hits, way_pred_hits + way_pred_mispredicts);
    }

    /** DRAM accesses that hit an open row. */
    double rowBufferHitRate() const
    {
        return ratio(dram_row_hits, dram_accesses);
    }

    /**
     * Busy cycles over the cycles-per-burst budget.  Deliberately not
     * clamped: values above 1 mean the access stream demands more
     * bandwidth than the modelled channel sustains.
     */
    double dramBwUtilization() const
    {
        return ratio(dram_busy_cycles, dram_budget_cycles);
    }

    double loadFraction() const { return fraction(loads); }
    double storeFraction() const { return fraction(stores); }
    double branchFraction() const { return fraction(branches); }
    double fpFraction() const { return fraction(fp_ops); }
    double simdFraction() const { return fraction(simd_ops); }
    double kernelFraction() const { return fraction(kernel_instructions); }

    /** Elementwise accumulate (merging simulation windows). */
    PerfCounters &operator+=(const PerfCounters &rhs);
};

} // namespace uarch
} // namespace speclens

#endif // SPECLENS_UARCH_PERF_COUNTERS_H
