/**
 * @file
 * Top-down CPI-stack model.
 *
 * Implements the cycles-per-instruction accounting the paper uses for
 * its bottleneck analysis (Section II-B, Fig. 1), following the spirit
 * of Yasin's top-down methodology: total CPI is decomposed into a base
 * component, front-end stalls (instruction-cache misses and branch
 * mispredictions), back-end memory stalls per hierarchy level, TLB
 * walks, and a dependency/"other" component.  The decomposition is
 * additive by construction, so stack components always sum to the total
 * CPI — a property the unit tests enforce.
 */

#ifndef SPECLENS_UARCH_CPI_MODEL_H
#define SPECLENS_UARCH_CPI_MODEL_H

#include <string>
#include <vector>

#include "trace/workload_profile.h"
#include "uarch/perf_counters.h"

namespace speclens {
namespace uarch {

/**
 * Cycle costs of micro-architectural events on a machine.
 *
 * Values are *visible* stall cycles — what an out-of-order core fails
 * to hide — not architectural latencies; e.g. an L2 hit costs ~12
 * cycles architecturally but a wide OOO window hides most of it.
 */
struct LatencyModel
{
    double l2_hit_cycles = 4.0;        //!< L1 miss serviced by L2.
    double l3_hit_cycles = 22.0;       //!< L2 miss serviced by L3.
    double memory_cycles = 140.0;      //!< Miss all the way to DRAM.
    double mispredict_penalty = 15.0;  //!< Pipeline refill after flush.
    double icache_l2_penalty = 8.0;    //!< Front-end bubble on L1I miss.
    double l2tlb_hit_cycles = 5.0;     //!< L1 TLB miss, L2 TLB hit.
    double page_walk_cycles = 38.0;    //!< Full page table walk.

    /** Feed every field, in declaration order, to @p fp. */
    void hashInto(stats::Fingerprinter &fp) const;
};

/** Additive CPI decomposition. */
struct CpiStack
{
    double base = 0.0;             //!< Issue-width / ILP limited.
    double dependency = 0.0;       //!< Inter-instruction dependencies.
    double frontend_icache = 0.0;  //!< Instruction fetch stalls.
    double frontend_branch = 0.0;  //!< Branch misprediction flushes.
    double backend_l2 = 0.0;       //!< Data misses serviced by L2.
    double backend_l3 = 0.0;       //!< Data misses serviced by L3.
    double backend_memory = 0.0;   //!< Data misses serviced by DRAM.
    double backend_tlb = 0.0;      //!< TLB refills and page walks.

    /** Total CPI (sum of all components). */
    double total() const;

    /** Front-end share of total (icache + branch). */
    double frontendFraction() const;

    /** Back-end memory share of total (L2 + L3 + memory + TLB). */
    double backendFraction() const;

    /** Component names in display order (matches components()). */
    static std::vector<std::string> componentNames();

    /** Component values in display order. */
    std::vector<double> components() const;
};

/**
 * Build the CPI stack from simulation counters.
 *
 * @param counters Event counts for the measured window.
 * @param latencies Machine latency model.
 * @param exec The workload's non-memory execution behaviour; base and
 *        dependency CPI come from here, and ExecutionModel::mlp divides
 *        the data-side miss penalties to model overlapping misses.
 */
CpiStack computeCpiStack(const PerfCounters &counters,
                         const LatencyModel &latencies,
                         const trace::ExecutionModel &exec);

} // namespace uarch
} // namespace speclens

#endif // SPECLENS_UARCH_CPI_MODEL_H
