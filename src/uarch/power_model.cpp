/**
 * @file
 * Power model implementation.
 */

#include "power_model.h"

namespace speclens {
namespace uarch {

void
PowerModelConfig::hashInto(stats::Fingerprinter &fp) const
{
    fp.tag("power");
    fp.f64(frequency_ghz);
    fp.f64(core_static_watts);
    fp.f64(energy_per_instruction_nj);
    fp.f64(fp_energy_extra_nj);
    fp.f64(simd_energy_extra_nj);
    fp.f64(mispredict_energy_nj);
    fp.f64(llc_static_watts);
    fp.f64(llc_access_energy_nj);
    fp.f64(dram_static_watts);
    fp.f64(dram_access_energy_nj);
}

PowerBreakdown
computePower(const PerfCounters &counters, double cpi,
             const PowerModelConfig &config)
{
    PowerBreakdown out;
    out.core_watts = config.core_static_watts;
    out.llc_watts = config.llc_static_watts;
    out.dram_watts = config.dram_static_watts;

    if (counters.instructions == 0 || cpi <= 0.0)
        return out;

    // Window duration in seconds: instructions * CPI cycles at f GHz.
    double cycles = static_cast<double>(counters.instructions) * cpi;
    double seconds = cycles / (config.frequency_ghz * 1e9);

    auto energy_j = [](std::uint64_t events, double nj) {
        return static_cast<double>(events) * nj * 1e-9;
    };

    double core_energy =
        energy_j(counters.instructions, config.energy_per_instruction_nj) +
        energy_j(counters.fp_ops, config.fp_energy_extra_nj) +
        energy_j(counters.simd_ops, config.simd_energy_extra_nj) +
        energy_j(counters.branch_mispredictions,
                 config.mispredict_energy_nj);

    double llc_energy =
        energy_j(counters.l3_accesses, config.llc_access_energy_nj);

    double dram_energy =
        energy_j(counters.l3_misses, config.dram_access_energy_nj);

    out.core_watts += core_energy / seconds;
    out.llc_watts += llc_energy / seconds;
    out.dram_watts += dram_energy / seconds;
    return out;
}

} // namespace uarch
} // namespace speclens
