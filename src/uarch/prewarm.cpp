/**
 * @file
 * Closed-form prewarm solver (see prewarm.h for the proof sketch).
 */

#include "uarch/prewarm.h"

#include <algorithm>
#include <array>
#include <bit>
#include <numeric>

#include "trace/address_stream.h"

namespace speclens {
namespace uarch {

namespace {

using Segment = PrewarmSolver::Segment;

/**
 * One warmup reference stream for one structure: its segments plus the
 * running element and fill totals that anchor each segment's absolute
 * stamps.
 */
struct Stream
{
    std::vector<Segment> segments;
    std::uint64_t elems = 0;
    std::uint64_t fills = 0;
};

/**
 * Append one walked region (base / stride / element count) to @p st at
 * unit granularity @p unit (a line or page size), or return false when
 * the pattern is outside the provable regime:
 *
 *  - the stride must tile the unit evenly in one direction (a multiple
 *    of it, giving one fill per element, or a divisor of it, giving
 *    unit/stride consecutive elements per fill) — anything else makes
 *    the elements-per-unit grouping uneven;
 *  - sub-unit strides additionally need a unit-aligned base, so the
 *    first unit gets a full group;
 *  - the region's first unit must differ from the previous region's
 *    last unit, because the walk's run collapsing spans the region
 *    boundary and would turn that first fill into a repeat hit.
 */
bool
appendRegion(Stream &st, std::uint64_t base, std::uint64_t stride,
             std::uint64_t elements, std::uint64_t unit)
{
    Segment seg;
    seg.tick0 = st.elems;
    seg.fills0 = st.fills;
    seg.elems = elements;
    if (stride % unit == 0) {
        // Every element lands on its own unit.  No alignment needed:
        // floor((base + k*stride) / unit) is an exact arithmetic
        // progression whenever unit divides stride.
        seg.u0 = base / unit;
        seg.step = stride / unit;
        seg.rep = 1;
        seg.fills = elements;
    } else if (unit % stride == 0) {
        if (base % unit != 0)
            return false;
        std::uint64_t rep = unit / stride;
        seg.u0 = base / unit;
        seg.step = 1;
        seg.rep = rep;
        seg.fills = (elements + rep - 1) / rep;
    } else {
        return false;
    }
    if (!st.segments.empty()) {
        const Segment &prev = st.segments.back();
        if (prev.fills != 0 &&
            prev.u0 + (prev.fills - 1) * prev.step == seg.u0)
            return false; // the walk would collapse across the boundary
    }
    st.elems += elements;
    st.fills += seg.fills;
    st.segments.push_back(seg);
    return true;
}

/**
 * The fill-event stream a lower level observes: one event per upper-
 * level fill of @p a then @p b, re-anchored so that the LRU/FIFO stamp
 * formulas count fills (the walk only ticks these structures on fills —
 * repeat hits never reach past the first level).
 */
std::vector<Segment>
fillStream(const Stream &a, const Stream &b)
{
    std::vector<Segment> out;
    std::uint64_t fills = 0;
    for (const Stream *st : {&a, &b}) {
        for (Segment seg : st->segments) {
            seg.rep = 1;
            seg.elems = seg.fills;
            seg.tick0 = fills;
            seg.fills0 = fills;
            fills += seg.fills;
            out.push_back(seg);
        }
    }
    return out;
}

/**
 * Cold-fill victim schedule of a tree-PLRU set, derived by replaying
 * 2*assoc fills through the exact primitives: fill p < assoc takes the
 * invalid-suffix way p, later fills take the tree's victim.  After the
 * first assoc fills the schedule is periodic with period assoc — which
 * build() verifies rather than assumes (see verified()).
 */
struct PlruSchedule
{
    std::vector<std::uint32_t> way;   //!< Way of fill p, p < 2*assoc.
    std::vector<std::uint32_t> state; //!< Tree state after fill p.
    std::vector<std::uint32_t> pos;   //!< pos[w]: offset of way w in the period.

    void
    build(std::uint32_t assoc)
    {
        way.resize(2 * assoc);
        state.resize(2 * assoc);
        pos.assign(assoc, 0);
        std::uint32_t s = 0;
        for (std::uint32_t p = 0; p < 2 * assoc; ++p) {
            std::uint32_t w = p < assoc ? p : plruVictimWay(s, assoc);
            s = plruTouchState(s, assoc, w);
            way[p] = w;
            state[p] = s;
        }
        for (std::uint32_t q = 0; q < assoc; ++q)
            pos[way[assoc + q]] = q;
    }

    /**
     * True when the replay proves periodicity: fills assoc..2*assoc-1
     * visit every way exactly once, and the tree state returns to its
     * value after fill assoc-1 — so the victim sequence from fill
     * assoc onward repeats with period assoc forever (it is a pure
     * function of the state).
     */
    bool
    verified(std::uint32_t assoc) const
    {
        std::vector<bool> seen(assoc, false);
        for (std::uint32_t q = 0; q < assoc; ++q) {
            std::uint32_t w = way[assoc + q];
            if (w >= assoc || seen[w])
                return false;
            seen[w] = true;
        }
        return state[2 * assoc - 1] == state[assoc - 1];
    }

    /** Way of fill ordinal @p p (any p, via the verified period). */
    std::uint32_t
    wayOf(std::uint64_t p, std::uint32_t assoc) const
    {
        return p < assoc ? static_cast<std::uint32_t>(p)
                         : way[assoc + (p - assoc) % assoc];
    }
};

/**
 * Incremental (unit / S, unit % S) walker for unit = u0 + j * step:
 * replaces a division per fill with one add and one conditional
 * subtract, valid for any S (the non-power-of-two LLCs included).
 */
struct SetCursor
{
    std::uint64_t q, r, dq, dr, S;

    SetCursor(const Segment &seg, std::uint64_t sets)
        : q(seg.u0 / sets), r(seg.u0 % sets), dq(seg.step / sets),
          dr(seg.step % sets), S(sets)
    {
    }

    void
    advance()
    {
        q += dq;
        r += dr;
        if (r >= S) {
            r -= S;
            ++q;
        }
    }

    void
    retreat()
    {
        q -= dq;
        if (r < dr) {
            r += S;
            --q;
        }
        r -= dr;
    }

    /** Jump straight to fill ordinal @p j. */
    void
    seek(const Segment &seg, std::uint64_t j)
    {
        std::uint64_t unit = seg.u0 + j * seg.step;
        q = unit / S;
        r = unit % S;
    }
};

} // namespace

bool
PrewarmSolver::fitsWithoutEviction(const Cache &cache,
                                   const std::vector<Segment> &segments)
{
    const std::uint64_t S = cache.num_sets_;
    const std::uint32_t assoc = cache.config_.associativity;
    std::vector<std::uint32_t> count(S, 0);
    for (const Segment &seg : segments) {
        if (seg.fills == 0)
            continue;
        std::uint64_t a = seg.step % S;
        std::uint64_t period = S / std::gcd(a, S); // gcd(0, S) == S
        std::uint64_t q = seg.fills / period;
        std::uint64_t rem = seg.fills % period;
        std::uint64_t n = std::min(seg.fills, period);
        std::uint64_t s = seg.u0 % S;
        for (std::uint64_t i = 0; i < n; ++i) {
            count[s] += static_cast<std::uint32_t>(q + (i < rem ? 1 : 0));
            if (count[s] > assoc)
                return false;
            s += a;
            if (s >= S)
                s -= S;
        }
    }
    return true;
}

void
PrewarmSolver::solveCache(Cache &cache,
                          const std::vector<Segment> &segments,
                          std::uint64_t accesses, std::uint64_t hits)
{
    cache.accesses_ += accesses;
    cache.hits_ += hits;

    const std::uint64_t S = cache.num_sets_;
    const std::uint32_t assoc = cache.config_.associativity;
    const ReplacementPolicy policy = cache.config_.policy;

    std::uint64_t total_fills = 0, total_elems = 0;
    for (const Segment &seg : segments) {
        total_fills += seg.fills;
        total_elems += seg.elems;
    }
    if (total_fills == 0)
        return; // the walk would not have touched the arrays either

    // The walk ticks LRU structures once per element (fills plus
    // collapsed repeat hits) and FIFO structures once per fill; tree-
    // PLRU and Random never touch the tick or the stamps.
    if (policy == ReplacementPolicy::Lru)
        cache.tick_ = total_elems;
    else if (policy == ReplacementPolicy::Fifo)
        cache.tick_ = total_fills;

    cache.cold_fills_.assign(S, 0);

    PlruSchedule sched;
    if (policy == ReplacementPolicy::TreePlru)
        sched.build(assoc); // verified during the plan phase

    // A way's occupant is a pure function of its set's fill count, so
    // only the tail of the stream ever has to be visited.  Step 1:
    // closed-form per-set fill counts.  A segment's set sequence is
    // cyclic with period P = S / gcd(step, S); every reachable set
    // takes floor(fills / P) fills and the first (fills mod P) cycle
    // positions one more — O(min(fills, S)) per segment, no per-fill
    // work.
    std::vector<std::uint32_t> count(S, 0);
    for (const Segment &seg : segments) {
        if (seg.fills == 0)
            continue;
        std::uint64_t a = seg.step % S;
        std::uint64_t period = S / std::gcd(a, S); // gcd(0, S) == S
        std::uint64_t q = seg.fills / period;
        std::uint64_t rem = seg.fills % period;
        std::uint64_t n = std::min(seg.fills, period);
        std::uint64_t s = seg.u0 % S;
        for (std::uint64_t i = 0; i < n; ++i) {
            count[s] += static_cast<std::uint32_t>(q + (i < rem ? 1 : 0));
            s += a;
            if (s >= S)
                s -= S;
        }
    }

    // Step 2: per-set summary state, plus the number of way writes the
    // reverse scan still owes.  Each touched set ends with
    // min(k, assoc) occupied ways for every policy (round-robin and
    // the verified PLRU period both cycle through all ways; Random
    // stays in the invalid suffix).
    std::uint64_t remaining = 0;
    for (std::uint64_t set = 0; set < S; ++set) {
        std::uint64_t k = count[set];
        if (k == 0)
            continue;
        cache.cold_fills_[set] = static_cast<std::uint32_t>(
            policy == ReplacementPolicy::Lru ||
                    policy == ReplacementPolicy::Fifo
                ? k % assoc
                : std::min<std::uint64_t>(k, assoc));
        if (policy == ReplacementPolicy::TreePlru)
            cache.plru_[set] = k <= assoc
                                   ? sched.state[k - 1]
                                   : sched.state[assoc + (k - assoc - 1) % assoc];
        remaining += std::min<std::uint64_t>(k, assoc);
    }

    // Step 3: scan fills newest-first, writing each way once.  The
    // current fill's in-set ordinal is one below the set's count of
    // not-yet-visited fills, and its way follows from that ordinal
    // (round-robin, PLRU schedule, or invalid suffix).  For LRU/FIFO/
    // Random the last min(k, assoc) ordinals map to distinct ways, so
    // a per-set write counter identifies survivors; tree-PLRU can
    // revisit a way within the last assoc fills (initial-to-periodic
    // crossover), so it keeps a per-set way bitmask (its assoc is
    // bounded at 32).  The scan stops the moment every surviving way
    // is written — for dense streams that is the last capacity's worth
    // of fills, not the stream.  The first fill visited is the walk's
    // globally last, which pins last_index_ (repeatLastHit never moves
    // it).
    const bool plru = policy == ReplacementPolicy::TreePlru;
    std::vector<std::uint32_t> written(S, 0);
    bool last_fill = true;
    for (std::size_t si = segments.size(); si-- > 0 && remaining != 0;) {
        const Segment &seg = segments[si];
        if (seg.fills == 0)
            continue;
        SetCursor cur(seg, S);
        cur.seek(seg, seg.fills - 1);
        for (std::uint64_t j = seg.fills; j-- > 0;) {
            std::uint32_t k = --count[cur.r];
            std::uint32_t w;
            bool survives;
            if (plru) {
                w = sched.wayOf(k, assoc);
                std::uint32_t bit = 1u << w;
                survives = (written[cur.r] & bit) == 0;
                written[cur.r] |= bit;
            } else {
                survives = written[cur.r] < assoc;
                ++written[cur.r];
                w = policy == ReplacementPolicy::Random
                        ? k // proven < assoc by the plan phase
                        : k % assoc;
            }
            if (survives) {
                std::size_t idx =
                    static_cast<std::size_t>(cur.r) * assoc + w;
                cache.tags_[idx] = cur.q;
                if (policy == ReplacementPolicy::Lru) {
                    // Final stamp: the tick of the unit's last element
                    // (the collapsed repeat run re-stamps the just-
                    // filled way).
                    cache.stamps_[idx] =
                        seg.tick0 +
                        std::min((j + 1) * seg.rep, seg.elems);
                } else if (policy == ReplacementPolicy::Fifo) {
                    cache.stamps_[idx] = seg.fills0 + j + 1;
                }
                if (last_fill) {
                    cache.last_index_ = idx;
                    last_fill = false;
                }
                if (--remaining == 0)
                    break;
            }
            cur.retreat();
        }
    }
}

bool
PrewarmSolver::apply(CacheHierarchy &caches, TlbHierarchy &tlbs,
                     const trace::WorkloadProfile &profile,
                     std::uint64_t llc_lines)
{
    // The closed forms describe a cold-fill walk; a touched hierarchy
    // (phased simulation) or an active prefetcher takes the walking
    // path, exactly as the walk's own cold fast path does.
    if (!caches.coldFillEligible() || !tlbs.untouched())
        return false;

    // The walk streams one address through every level, keyed on the
    // L1 line (page): uniform unit sizes are what make each lower
    // level's fill stream equal the upper level's — a 128-byte L2 line
    // would see duplicate fills the segment model cannot express.
    const std::uint64_t line = trace::kLineBytes;
    const Cache *levels[] = {&caches.l1i_cache_, &caches.l1d_cache_,
                             &caches.l2_cache_, caches.l3_cache_.get()};
    for (const Cache *level : levels) {
        if (level == nullptr)
            continue;
        if (level->config_.line_bytes != line)
            return false;
        // The solver writes tags and stamps analytically but does not
        // model the way-prediction table that every fill trains
        // (Cache::coldFill does); a predicting cache takes the walk.
        if (level->config_.way_prediction != WayPredictionKind::None)
            return false;
    }

    const std::uint64_t dpage = tlbs.dtlb_.config_.line_bytes;
    const std::uint64_t ipage = tlbs.itlb_.config_.line_bytes;
    if (tlbs.l2tlb_ != nullptr &&
        (tlbs.l2tlb_->config_.line_bytes != dpage || ipage != dpage))
        return false;

    // Summarise the walk's reference streams as segments, bailing out
    // on any pattern outside the provable regime.  Region order,
    // skip rule and element arithmetic mirror Playback::prewarm().
    Stream d_lines, d_pages, i_lines, i_pages;
    const auto &sets = profile.memory.data;
    for (std::size_t i = sets.size(); i-- > 0;) {
        auto stride = static_cast<std::uint64_t>(sets[i].stride_bytes);
        if (stride == 0)
            return false;
        std::uint64_t elements = std::max<std::uint64_t>(
            1, static_cast<std::uint64_t>(sets[i].bytes) / stride);
        if (elements > llc_lines)
            continue;
        std::uint64_t base =
            trace::kDataBase + i * trace::kDataRegionStride;
        if (!appendRegion(d_lines, base, stride, elements, line) ||
            !appendRegion(d_pages, base, stride, elements, dpage))
            return false;
    }
    auto code_bytes =
        static_cast<std::uint64_t>(profile.memory.code_bytes);
    std::uint64_t code_lines = (code_bytes + line - 1) / line;
    if (code_lines != 0) {
        // The code walk is itself a region: stride one line over
        // code_lines elements.
        if (!appendRegion(i_lines, trace::kCodeBase, line, code_lines,
                          line) ||
            !appendRegion(i_pages, trace::kCodeBase, line, code_lines,
                          ipage))
            return false;
    }

    const std::vector<Segment> l2_stream = fillStream(d_lines, i_lines);
    const std::vector<Segment> l2tlb_stream = fillStream(d_pages, i_pages);

    const std::uint64_t data_elems = d_lines.elems;
    const std::uint64_t d_fills = d_lines.fills;
    const std::uint64_t dp_fills = d_pages.fills;
    const std::uint64_t i_fills = i_pages.fills;

    struct Target
    {
        Cache *cache;
        const std::vector<Segment> *segments;
        std::uint64_t accesses;
        std::uint64_t hits;
    };
    const Target targets[] = {
        {&caches.l1d_cache_, &d_lines.segments, data_elems,
         data_elems - d_fills},
        {&caches.l1i_cache_, &i_lines.segments, code_lines, 0},
        {&caches.l2_cache_, &l2_stream, d_fills + code_lines, 0},
        {caches.l3_cache_.get(), &l2_stream, d_fills + code_lines, 0},
        {&tlbs.dtlb_, &d_pages.segments, data_elems,
         data_elems - dp_fills},
        {&tlbs.itlb_, &i_pages.segments, code_lines,
         code_lines - i_fills},
        {tlbs.l2tlb_.get(), &l2tlb_stream, dp_fills + i_fills, 0},
    };

    // Plan phase: prove every structure before mutating any — the
    // fallback contract is all-or-nothing.
    for (const Target &target : targets) {
        if (target.cache == nullptr)
            continue;
        switch (target.cache->config_.policy) {
          case ReplacementPolicy::TreePlru: {
            PlruSchedule sched;
            sched.build(target.cache->config_.associativity);
            if (!sched.verified(target.cache->config_.associativity))
                return false;
            break;
          }
          case ReplacementPolicy::Random:
            if (!fitsWithoutEviction(*target.cache, *target.segments))
                return false;
            break;
          default:
            break;
        }
    }

    for (const Target &target : targets)
        if (target.cache != nullptr)
            solveCache(*target.cache, *target.segments, target.accesses,
                       target.hits);

    // Hierarchy side counters and walk totals, exactly as the cold
    // fill helpers would have accumulated them.
    caches.l1d_stats_.accesses += data_elems;
    caches.l1d_stats_.misses += d_fills;
    caches.l2d_stats_.accesses += d_fills;
    caches.l2d_stats_.misses += d_fills;
    caches.l1i_stats_.accesses += code_lines;
    caches.l1i_stats_.misses += code_lines;
    caches.l2i_stats_.accesses += code_lines;
    caches.l2i_stats_.misses += code_lines;
    caches.l3_stats_.accesses += d_fills + code_lines;
    caches.l3_stats_.misses += d_fills + code_lines;
    tlbs.l2tlb_misses_ += dp_fills + i_fills;
    tlbs.page_walks_ += dp_fills + i_fills;
    return true;
}

void
PrewarmSolver::walk(CacheHierarchy &caches, TlbHierarchy &tlbs,
                    const trace::WorkloadProfile &profile,
                    std::uint64_t llc_lines)
{
    const unsigned d_line_shift = static_cast<unsigned>(
        std::countr_zero(std::uint64_t{caches.dataLineBytes()}));
    const unsigned d_page_shift =
        static_cast<unsigned>(std::countr_zero(tlbs.dataPageBytes()));
    const unsigned i_page_shift =
        static_cast<unsigned>(std::countr_zero(tlbs.instrPageBytes()));
    std::uint64_t last_dline = ~0ull, last_dpage = ~0ull;
    std::uint64_t drun = 0, dprun = 0;

    // On a never-touched hierarchy with the prefetcher off, every
    // distinct line/page of the walk is a guaranteed compulsory miss
    // at every level, so the dedicated cold-fill path can skip the
    // futile hit scans.  Both branches produce the exact same state
    // and counters; prewarming an already-used hierarchy (or one with
    // a prefetcher) takes the general path.
    const bool cold = caches.coldFillEligible() && tlbs.untouched();

    const auto &sets = profile.memory.data;
    for (std::size_t i = sets.size(); i-- > 0;) {
        auto stride = static_cast<std::uint64_t>(sets[i].stride_bytes);
        std::uint64_t elements = std::max<std::uint64_t>(
            1, static_cast<std::uint64_t>(sets[i].bytes) / stride);
        // Each element occupies one cache line, so a set is
        // LLC-resident exactly when its element count fits the last
        // level's line capacity.
        if (elements > llc_lines)
            continue;
        std::uint64_t base =
            trace::kDataBase + i * trace::kDataRegionStride;
        // Sub-line strides re-probe the same line (and page) many
        // times in a row; collapse those guaranteed hits exactly, as
        // in the playback loop (see Cache::repeatLastHit).
        for (std::uint64_t e = 0; e < elements; ++e) {
            std::uint64_t address = base + e * stride;
            std::uint64_t dline = address >> d_line_shift;
            if (dline == last_dline) {
                ++drun;
            } else {
                if (drun) {
                    caches.repeatDataHits(drun);
                    drun = 0;
                }
                if (cold)
                    caches.prewarmFillData(address);
                else
                    caches.accessData(address);
                last_dline = dline;
            }
            std::uint64_t dpage = address >> d_page_shift;
            if (dpage == last_dpage) {
                ++dprun;
            } else {
                if (dprun) {
                    tlbs.repeatDataHits(dprun);
                    dprun = 0;
                }
                if (cold)
                    tlbs.prewarmFillData(address);
                else
                    tlbs.accessData(address);
                last_dpage = dpage;
            }
        }
    }
    if (drun)
        caches.repeatDataHits(drun);
    if (dprun)
        tlbs.repeatDataHits(dprun);

    // Code last so the hot region ends up most recently used.  The
    // line walk still touches a fresh I-line every step, but the ITLB
    // sees each page line_count-per-page times in a row.
    auto code_bytes =
        static_cast<std::uint64_t>(profile.memory.code_bytes);
    std::uint64_t last_ipage = ~0ull, iprun = 0;
    for (std::uint64_t offset = 0; offset < code_bytes;
         offset += trace::kLineBytes) {
        std::uint64_t pc = trace::kCodeBase + offset;
        if (cold)
            caches.prewarmFillInstr(pc);
        else
            caches.accessInstr(pc);
        std::uint64_t ipage = pc >> i_page_shift;
        if (ipage == last_ipage) {
            ++iprun;
        } else {
            if (iprun) {
                tlbs.repeatInstrHits(iprun);
                iprun = 0;
            }
            if (cold)
                tlbs.prewarmFillInstr(pc);
            else
                tlbs.accessInstr(pc);
            last_ipage = ipage;
        }
    }
    if (iprun)
        tlbs.repeatInstrHits(iprun);
}

void
PrewarmSolver::appendCacheState(const Cache &cache,
                                std::vector<std::uint64_t> &out)
{
    const CacheConfig &config = cache.config_;
    const std::uint64_t sets = cache.num_sets_;
    const std::uint64_t assoc = config.associativity;
    const bool stamped = config.policy == ReplacementPolicy::Lru ||
                         config.policy == ReplacementPolicy::Fifo;
    out.push_back(cache.accesses_);
    out.push_back(cache.hits_);
    out.push_back(cache.tick_);
    out.push_back(cache.last_index_);
    out.push_back(cache.cold_fills_.size());
    out.insert(out.end(), cache.cold_fills_.begin(),
               cache.cold_fills_.end());
    out.insert(out.end(), cache.plru_.begin(), cache.plru_.end());
    out.push_back(cache.way_pred_hits_);
    out.push_back(cache.way_pred_mispredicts_);
    out.insert(out.end(), cache.way_pred_.begin(), cache.way_pred_.end());
    for (std::uint64_t i = 0; i < sets * assoc; ++i) {
        std::uint64_t tag = cache.tags_[i];
        out.push_back(tag);
        // Stamps are deliberately uninitialized until written: only
        // LRU/FIFO write them, and only for filled ways.
        if (stamped && tag != Cache::kInvalidTag)
            out.push_back(cache.stamps_[i]);
    }
}

std::vector<std::uint64_t>
PrewarmSolver::stateDigest(const CacheHierarchy &caches,
                           const TlbHierarchy &tlbs)
{
    std::vector<std::uint64_t> out;
    appendCacheState(caches.l1i_cache_, out);
    appendCacheState(caches.l1d_cache_, out);
    appendCacheState(caches.l2_cache_, out);
    if (caches.l3_cache_)
        appendCacheState(*caches.l3_cache_, out);
    for (const SideCounters *side :
         {&caches.l1i_stats_, &caches.l1d_stats_, &caches.l2i_stats_,
          &caches.l2d_stats_, &caches.l3_stats_}) {
        out.push_back(side->accesses);
        out.push_back(side->misses);
    }
    out.push_back(caches.prefetch_fills_);
    out.push_back(caches.prefetch_useful_);
    out.push_back(caches.prefetch_evicted_unused_);
    out.insert(out.end(), caches.l2_prefetch_bits_.begin(),
               caches.l2_prefetch_bits_.end());
    for (const auto &entry : caches.stride_table_) {
        out.push_back(entry.last_line);
        out.push_back(static_cast<std::uint64_t>(entry.delta));
        out.push_back(entry.confidence);
        out.push_back(entry.valid);
    }
    for (const auto &window : caches.stream_windows_) {
        out.push_back(window.last_line);
        out.push_back(window.valid);
    }
    out.push_back(caches.stream_next_);
    if (caches.dram_) {
        const DramModel &dram = *caches.dram_;
        out.push_back(dram.accesses());
        out.push_back(dram.rowHits());
        out.push_back(dram.busyCycles());
        out.push_back(dram.budgetCycles());
        out.insert(out.end(), dram.open_row_.begin(),
                   dram.open_row_.end());
        out.insert(out.end(), dram.row_open_.begin(),
                   dram.row_open_.end());
    }
    appendCacheState(tlbs.itlb_, out);
    appendCacheState(tlbs.dtlb_, out);
    if (tlbs.l2tlb_)
        appendCacheState(*tlbs.l2tlb_, out);
    out.push_back(tlbs.l2tlb_misses_);
    out.push_back(tlbs.page_walks_);
    return out;
}

} // namespace uarch
} // namespace speclens
