/**
 * @file
 * Direction branch predictors.
 *
 * The Table IV machines span a decade of predictor sophistication —
 * from simple bimodal tables (Xeon E5405 era) through gshare and
 * tournament designs to TAGE-class predictors (Skylake).  Predictor
 * diversity is what makes measured branch MPKI machine-dependent, which
 * drives both the front-end component of the CPI stacks (Fig. 1) and
 * the branch-sensitivity classification (Table IX).
 *
 * All predictors implement the same predict/update interface over a
 * (pc, static-branch-id) pair; the id is folded into the index hash so
 * distinct static branches collide realistically but not pathologically.
 */

#ifndef SPECLENS_UARCH_BRANCH_PREDICTOR_H
#define SPECLENS_UARCH_BRANCH_PREDICTOR_H

#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace speclens {
namespace verify {
class StateAuditor;
}
namespace uarch {

/** Available predictor designs. */
enum class PredictorKind {
    StaticTaken, //!< Always predicts taken.
    Bimodal,     //!< Per-branch 2-bit saturating counters.
    Gshare,      //!< Global-history XOR indexed 2-bit counters.
    Tournament,  //!< Bimodal + gshare with a meta chooser.
    Perceptron,  //!< Linear perceptron over global history.
    TageLite,    //!< Simplified TAGE: tagged tables, geometric histories.
};

/** Human-readable predictor name. */
std::string predictorKindName(PredictorKind kind);

/** Abstract direction predictor. */
class BranchPredictor
{
  public:
    virtual ~BranchPredictor() = default;

    /** Predict the direction of the branch at @p pc with id @p id. */
    virtual bool predict(std::uint64_t pc, std::uint32_t id) = 0;

    /** Train with the resolved direction. */
    virtual void update(std::uint64_t pc, std::uint32_t id, bool taken) = 0;

    /** Design name for reports. */
    virtual std::string name() const = 0;
};

/**
 * Create a predictor.
 *
 * @param kind Design to instantiate.
 * @param size_log2 log2 of the main table size (counters, perceptrons
 *        or per-table TAGE entries); larger machines pass larger values.
 */
std::unique_ptr<BranchPredictor> makePredictor(PredictorKind kind,
                                               unsigned size_log2 = 12);

/*
 * Batched prediction: every concrete predictor also exposes
 *
 *   updateBatch(pc, id, taken, mispred, n)
 *
 * which processes n resolved branches exactly as n predict()/update()
 * pairs would — mispred[k] records whether branch k mispredicted —
 * but restructured for throughput: per-branch table indices (and the
 * global-history value each branch observes, a prefix scan over the
 * outcomes) are precomputed in contiguous autovectorizable loops, and
 * only the inherently sequential counter/state updates run in the
 * ordered tail loop.  Results are bit-exact against the scalar pair
 * (tests/uarch/branch_predictor_test.cpp); the kernels live out of
 * line in branch_predictor.cpp so the autovectorization report stage
 * of tools/check.sh covers them.
 */

/** Always-taken baseline. */
class StaticTakenPredictor final : public BranchPredictor
{
  public:
    bool predict(std::uint64_t, std::uint32_t) override { return true; }
    void update(std::uint64_t, std::uint32_t, bool) override {}
    void updateBatch(const std::uint64_t *pc, const std::uint32_t *id,
                     const std::uint8_t *taken, std::uint8_t *mispred,
                     std::size_t n);
    std::string name() const override { return "static-taken"; }
};

/** Classic 2-bit saturating counter table. */
class BimodalPredictor final : public BranchPredictor
{
  public:
    explicit BimodalPredictor(unsigned size_log2);
    bool predict(std::uint64_t pc, std::uint32_t id) override;
    void update(std::uint64_t pc, std::uint32_t id, bool taken) override;
    void updateBatch(const std::uint64_t *pc, const std::uint32_t *id,
                     const std::uint8_t *taken, std::uint8_t *mispred,
                     std::size_t n);
    std::string name() const override { return "bimodal"; }

  private:
    std::size_t index(std::uint64_t pc, std::uint32_t id) const;
    std::vector<std::uint8_t> counters_;
    std::size_t mask_;
    std::vector<std::uint32_t> batch_idx_; //!< updateBatch scratch.

    // Composite predictors drive the bimodal table directly in their
    // own batch kernels.
    friend class TournamentPredictor;
    friend class TageLitePredictor;

    /** The invariant prover checks counter range and table geometry. */
    friend class verify::StateAuditor;
};

/** Gshare: global history XORed into the table index. */
class GsharePredictor final : public BranchPredictor
{
  public:
    GsharePredictor(unsigned size_log2, unsigned history_bits);
    bool predict(std::uint64_t pc, std::uint32_t id) override;
    void update(std::uint64_t pc, std::uint32_t id, bool taken) override;
    void updateBatch(const std::uint64_t *pc, const std::uint32_t *id,
                     const std::uint8_t *taken, std::uint8_t *mispred,
                     std::size_t n);
    std::string name() const override { return "gshare"; }

  private:
    std::size_t index(std::uint64_t pc, std::uint32_t id) const;
    std::vector<std::uint8_t> counters_;
    std::size_t mask_;
    std::uint64_t history_ = 0;
    std::uint64_t history_mask_;
    std::vector<std::uint32_t> batch_idx_;  //!< updateBatch scratch.
    std::vector<std::uint64_t> batch_hist_; //!< History prefix scan.

    friend class TournamentPredictor;
    friend class verify::StateAuditor;
};

/** Tournament of bimodal and gshare with a 2-bit meta chooser. */
class TournamentPredictor final : public BranchPredictor
{
  public:
    explicit TournamentPredictor(unsigned size_log2);
    bool predict(std::uint64_t pc, std::uint32_t id) override;
    void update(std::uint64_t pc, std::uint32_t id, bool taken) override;
    void updateBatch(const std::uint64_t *pc, const std::uint32_t *id,
                     const std::uint8_t *taken, std::uint8_t *mispred,
                     std::size_t n);
    std::string name() const override { return "tournament"; }

  private:
    BimodalPredictor bimodal_;
    GsharePredictor gshare_;
    std::vector<std::uint8_t> chooser_;
    std::size_t mask_;
    bool last_bimodal_ = false;
    bool last_gshare_ = false;
    std::vector<std::uint64_t> batch_mix_;   //!< updateBatch scratch.
    std::vector<std::uint64_t> batch_ghist_; //!< Gshare history scan.
    std::vector<std::uint32_t> batch_bidx_;
    std::vector<std::uint32_t> batch_gidx_;
    std::vector<std::uint32_t> batch_cidx_;

    friend class verify::StateAuditor;
};

/** Perceptron predictor (Jimenez & Lin, HPCA'01) over global history. */
class PerceptronPredictor final : public BranchPredictor
{
  public:
    PerceptronPredictor(unsigned size_log2, unsigned history_bits);
    bool predict(std::uint64_t pc, std::uint32_t id) override;
    void update(std::uint64_t pc, std::uint32_t id, bool taken) override;
    void updateBatch(const std::uint64_t *pc, const std::uint32_t *id,
                     const std::uint8_t *taken, std::uint8_t *mispred,
                     std::size_t n);
    std::string name() const override { return "perceptron"; }

  private:
    std::size_t index(std::uint64_t pc, std::uint32_t id) const;
    unsigned history_bits_;
    int threshold_;
    std::vector<std::vector<int>> weights_; //!< [perceptron][bias + hist]
    std::size_t mask_;
    std::uint64_t history_ = 0;
    int last_output_ = 0;

    friend class verify::StateAuditor;
};

/**
 * Simplified TAGE: a bimodal base table plus tagged components indexed
 * with geometrically increasing history lengths; longest matching
 * component provides the prediction.
 */
class TageLitePredictor final : public BranchPredictor
{
  public:
    explicit TageLitePredictor(unsigned size_log2, unsigned num_tables = 4);
    bool predict(std::uint64_t pc, std::uint32_t id) override;
    void update(std::uint64_t pc, std::uint32_t id, bool taken) override;
    void updateBatch(const std::uint64_t *pc, const std::uint32_t *id,
                     const std::uint8_t *taken, std::uint8_t *mispred,
                     std::size_t n);
    std::string name() const override { return "tage-lite"; }

  private:
    struct Entry
    {
        std::uint16_t tag = 0;
        std::int8_t counter = 0; //!< Signed; >= 0 predicts taken.
        std::uint8_t useful = 0;
    };

    // History-parameterized forms, shared by the scalar path (which
    // passes history_) and the batch kernel (which passes each
    // branch's prefix-scanned history value).
    std::size_t tableIndex(unsigned table, std::uint64_t pc,
                           std::uint32_t id, std::uint64_t history) const;
    std::uint16_t tableTag(unsigned table, std::uint64_t pc,
                           std::uint32_t id, std::uint64_t history) const;
    std::size_t
    tableIndex(unsigned table, std::uint64_t pc, std::uint32_t id) const
    {
        return tableIndex(table, pc, id, history_);
    }
    std::uint16_t
    tableTag(unsigned table, std::uint64_t pc, std::uint32_t id) const
    {
        return tableTag(table, pc, id, history_);
    }

    BimodalPredictor base_;
    std::vector<std::vector<Entry>> tables_;
    std::vector<unsigned> history_lengths_;
    std::size_t mask_;
    std::uint64_t history_ = 0;

    // Prediction bookkeeping between predict() and update().
    int provider_ = -1;
    bool provider_pred_ = false;
    bool base_pred_ = false;

    // updateBatch scratch: per-branch history values, plus per-table
    // index/tag arrays laid out table-major (table * n + branch).
    std::vector<std::uint64_t> batch_hist_;
    std::vector<std::uint32_t> batch_idx_;
    std::vector<std::uint16_t> batch_tag_;
    std::vector<std::uint32_t> batch_base_idx_;

    friend class verify::StateAuditor;
};

/**
 * Closed set of concrete predictor types for static dispatch.
 *
 * The per-instruction playback loop is dominated by predict()/update()
 * calls; going through the virtual interface costs an indirect call
 * (and blocks inlining) per branch instruction.  Holding the predictor
 * as a variant lets the simulator std::visit once per playback window
 * and run the whole loop against the concrete (final) type, where the
 * calls resolve statically and inline.
 */
using PredictorVariant =
    std::variant<StaticTakenPredictor, BimodalPredictor, GsharePredictor,
                 TournamentPredictor, PerceptronPredictor,
                 TageLitePredictor>;

/**
 * Create a predictor as a variant over the concrete types.
 *
 * Applies exactly the same per-kind sizing adjustments as
 * makePredictor(), so the two factories produce behaviourally
 * identical predictors for any (kind, size_log2).
 */
PredictorVariant makePredictorVariant(PredictorKind kind,
                                      unsigned size_log2 = 12);

// ---------------------------------------------------------------------
// Hot-path definitions.  predict()/update() run once per simulated
// branch (roughly a fifth of all instructions), so they live in the
// header where they inline into the playback loop's std::visit body.

namespace predictor_detail {

/**
 * Hash the static-branch identity into a well-distributed index base.
 *
 * Only the id participates: the synthetic trace reports the dynamic
 * fetch address separately from branch identity, and a real predictor
 * indexes by the branch's *home* PC, which is stable per static
 * branch.  The id is that stable identity here.
 */
inline std::uint64_t
mixPcId(std::uint64_t /* pc */, std::uint32_t id)
{
    std::uint64_t x = (static_cast<std::uint64_t>(id) + 0x2545f491ull) *
                      0x9e3779b97f4a7c15ull;
    x ^= x >> 29;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 32;
    return x;
}

/** Saturating 2-bit counter update. */
inline void
updateCounter2(std::uint8_t &counter, bool taken)
{
    if (taken) {
        if (counter < 3)
            ++counter;
    } else {
        if (counter > 0)
            --counter;
    }
}

} // namespace predictor_detail

inline std::size_t
BimodalPredictor::index(std::uint64_t pc, std::uint32_t id) const
{
    return static_cast<std::size_t>(predictor_detail::mixPcId(pc, id)) &
           mask_;
}

inline bool
BimodalPredictor::predict(std::uint64_t pc, std::uint32_t id)
{
    return counters_[index(pc, id)] >= 2;
}

inline void
BimodalPredictor::update(std::uint64_t pc, std::uint32_t id, bool taken)
{
    predictor_detail::updateCounter2(counters_[index(pc, id)], taken);
}

inline std::size_t
GsharePredictor::index(std::uint64_t pc, std::uint32_t id) const
{
    return static_cast<std::size_t>(predictor_detail::mixPcId(pc, id) ^
                                    history_) &
           mask_;
}

inline bool
GsharePredictor::predict(std::uint64_t pc, std::uint32_t id)
{
    return counters_[index(pc, id)] >= 2;
}

inline void
GsharePredictor::update(std::uint64_t pc, std::uint32_t id, bool taken)
{
    predictor_detail::updateCounter2(counters_[index(pc, id)], taken);
    history_ = ((history_ << 1) | (taken ? 1u : 0u)) & history_mask_;
}

inline bool
TournamentPredictor::predict(std::uint64_t pc, std::uint32_t id)
{
    last_bimodal_ = bimodal_.predict(pc, id);
    last_gshare_ = gshare_.predict(pc, id);
    std::size_t i =
        static_cast<std::size_t>(predictor_detail::mixPcId(pc, id)) & mask_;
    return chooser_[i] >= 2 ? last_gshare_ : last_bimodal_;
}

inline void
TournamentPredictor::update(std::uint64_t pc, std::uint32_t id, bool taken)
{
    std::size_t i =
        static_cast<std::size_t>(predictor_detail::mixPcId(pc, id)) & mask_;
    bool bimodal_right = last_bimodal_ == taken;
    bool gshare_right = last_gshare_ == taken;
    if (bimodal_right != gshare_right)
        predictor_detail::updateCounter2(chooser_[i], gshare_right);
    bimodal_.update(pc, id, taken);
    gshare_.update(pc, id, taken);
}

inline std::size_t
PerceptronPredictor::index(std::uint64_t pc, std::uint32_t id) const
{
    return static_cast<std::size_t>(predictor_detail::mixPcId(pc, id)) &
           mask_;
}

inline std::size_t
TageLitePredictor::tableIndex(unsigned table, std::uint64_t pc,
                              std::uint32_t id, std::uint64_t history) const
{
    std::uint64_t h_mask = (std::uint64_t{1} << history_lengths_[table]) - 1;
    std::uint64_t folded = history & h_mask;
    // Fold long histories down to the index width.
    folded ^= folded >> 13;
    folded ^= folded >> 7;
    return static_cast<std::size_t>(predictor_detail::mixPcId(pc, id) ^
                                    folded ^ (table * 0x9e3779b9ull)) &
           mask_;
}

inline std::uint16_t
TageLitePredictor::tableTag(unsigned table, std::uint64_t pc,
                            std::uint32_t id, std::uint64_t history) const
{
    std::uint64_t h_mask = (std::uint64_t{1} << history_lengths_[table]) - 1;
    std::uint64_t v = predictor_detail::mixPcId(pc * 31 + 7, id) ^
                      (history & h_mask) ^ (table * 0x2545f491ull);
    return static_cast<std::uint16_t>(v & 0x3ff); // 10-bit tags
}

inline bool
TageLitePredictor::predict(std::uint64_t pc, std::uint32_t id)
{
    base_pred_ = base_.predict(pc, id);
    provider_ = -1;
    provider_pred_ = base_pred_;
    // Longest-history matching component wins.
    for (int t = static_cast<int>(tables_.size()) - 1; t >= 0; --t) {
        const Entry &e =
            tables_[static_cast<unsigned>(t)]
                   [tableIndex(static_cast<unsigned>(t), pc, id)];
        if (e.tag == tableTag(static_cast<unsigned>(t), pc, id)) {
            provider_ = t;
            // A freshly allocated (weak) entry carries no confidence;
            // fall back to the base prediction in that case, as real
            // TAGE does via its alternate-prediction path.
            bool weak = e.counter == 0 || e.counter == -1;
            provider_pred_ = weak ? base_pred_ : e.counter >= 0;
            break;
        }
    }
    return provider_pred_;
}

} // namespace uarch
} // namespace speclens

#endif // SPECLENS_UARCH_BRANCH_PREDICTOR_H
