/**
 * @file
 * Direction branch predictors.
 *
 * The Table IV machines span a decade of predictor sophistication —
 * from simple bimodal tables (Xeon E5405 era) through gshare and
 * tournament designs to TAGE-class predictors (Skylake).  Predictor
 * diversity is what makes measured branch MPKI machine-dependent, which
 * drives both the front-end component of the CPI stacks (Fig. 1) and
 * the branch-sensitivity classification (Table IX).
 *
 * All predictors implement the same predict/update interface over a
 * (pc, static-branch-id) pair; the id is folded into the index hash so
 * distinct static branches collide realistically but not pathologically.
 */

#ifndef SPECLENS_UARCH_BRANCH_PREDICTOR_H
#define SPECLENS_UARCH_BRANCH_PREDICTOR_H

#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace speclens {
namespace uarch {

/** Available predictor designs. */
enum class PredictorKind {
    StaticTaken, //!< Always predicts taken.
    Bimodal,     //!< Per-branch 2-bit saturating counters.
    Gshare,      //!< Global-history XOR indexed 2-bit counters.
    Tournament,  //!< Bimodal + gshare with a meta chooser.
    Perceptron,  //!< Linear perceptron over global history.
    TageLite,    //!< Simplified TAGE: tagged tables, geometric histories.
};

/** Human-readable predictor name. */
std::string predictorKindName(PredictorKind kind);

/** Abstract direction predictor. */
class BranchPredictor
{
  public:
    virtual ~BranchPredictor() = default;

    /** Predict the direction of the branch at @p pc with id @p id. */
    virtual bool predict(std::uint64_t pc, std::uint32_t id) = 0;

    /** Train with the resolved direction. */
    virtual void update(std::uint64_t pc, std::uint32_t id, bool taken) = 0;

    /** Design name for reports. */
    virtual std::string name() const = 0;
};

/**
 * Create a predictor.
 *
 * @param kind Design to instantiate.
 * @param size_log2 log2 of the main table size (counters, perceptrons
 *        or per-table TAGE entries); larger machines pass larger values.
 */
std::unique_ptr<BranchPredictor> makePredictor(PredictorKind kind,
                                               unsigned size_log2 = 12);

/** Always-taken baseline. */
class StaticTakenPredictor final : public BranchPredictor
{
  public:
    bool predict(std::uint64_t, std::uint32_t) override { return true; }
    void update(std::uint64_t, std::uint32_t, bool) override {}
    std::string name() const override { return "static-taken"; }
};

/** Classic 2-bit saturating counter table. */
class BimodalPredictor final : public BranchPredictor
{
  public:
    explicit BimodalPredictor(unsigned size_log2);
    bool predict(std::uint64_t pc, std::uint32_t id) override;
    void update(std::uint64_t pc, std::uint32_t id, bool taken) override;
    std::string name() const override { return "bimodal"; }

  private:
    std::size_t index(std::uint64_t pc, std::uint32_t id) const;
    std::vector<std::uint8_t> counters_;
    std::size_t mask_;
};

/** Gshare: global history XORed into the table index. */
class GsharePredictor final : public BranchPredictor
{
  public:
    GsharePredictor(unsigned size_log2, unsigned history_bits);
    bool predict(std::uint64_t pc, std::uint32_t id) override;
    void update(std::uint64_t pc, std::uint32_t id, bool taken) override;
    std::string name() const override { return "gshare"; }

  private:
    std::size_t index(std::uint64_t pc, std::uint32_t id) const;
    std::vector<std::uint8_t> counters_;
    std::size_t mask_;
    std::uint64_t history_ = 0;
    std::uint64_t history_mask_;
};

/** Tournament of bimodal and gshare with a 2-bit meta chooser. */
class TournamentPredictor final : public BranchPredictor
{
  public:
    explicit TournamentPredictor(unsigned size_log2);
    bool predict(std::uint64_t pc, std::uint32_t id) override;
    void update(std::uint64_t pc, std::uint32_t id, bool taken) override;
    std::string name() const override { return "tournament"; }

  private:
    BimodalPredictor bimodal_;
    GsharePredictor gshare_;
    std::vector<std::uint8_t> chooser_;
    std::size_t mask_;
    bool last_bimodal_ = false;
    bool last_gshare_ = false;
};

/** Perceptron predictor (Jimenez & Lin, HPCA'01) over global history. */
class PerceptronPredictor final : public BranchPredictor
{
  public:
    PerceptronPredictor(unsigned size_log2, unsigned history_bits);
    bool predict(std::uint64_t pc, std::uint32_t id) override;
    void update(std::uint64_t pc, std::uint32_t id, bool taken) override;
    std::string name() const override { return "perceptron"; }

  private:
    std::size_t index(std::uint64_t pc, std::uint32_t id) const;
    unsigned history_bits_;
    int threshold_;
    std::vector<std::vector<int>> weights_; //!< [perceptron][bias + hist]
    std::size_t mask_;
    std::uint64_t history_ = 0;
    int last_output_ = 0;
};

/**
 * Simplified TAGE: a bimodal base table plus tagged components indexed
 * with geometrically increasing history lengths; longest matching
 * component provides the prediction.
 */
class TageLitePredictor final : public BranchPredictor
{
  public:
    explicit TageLitePredictor(unsigned size_log2, unsigned num_tables = 4);
    bool predict(std::uint64_t pc, std::uint32_t id) override;
    void update(std::uint64_t pc, std::uint32_t id, bool taken) override;
    std::string name() const override { return "tage-lite"; }

  private:
    struct Entry
    {
        std::uint16_t tag = 0;
        std::int8_t counter = 0; //!< Signed; >= 0 predicts taken.
        std::uint8_t useful = 0;
    };

    std::size_t tableIndex(unsigned table, std::uint64_t pc,
                           std::uint32_t id) const;
    std::uint16_t tableTag(unsigned table, std::uint64_t pc,
                           std::uint32_t id) const;

    BimodalPredictor base_;
    std::vector<std::vector<Entry>> tables_;
    std::vector<unsigned> history_lengths_;
    std::size_t mask_;
    std::uint64_t history_ = 0;

    // Prediction bookkeeping between predict() and update().
    int provider_ = -1;
    bool provider_pred_ = false;
    bool base_pred_ = false;
};

/**
 * Closed set of concrete predictor types for static dispatch.
 *
 * The per-instruction playback loop is dominated by predict()/update()
 * calls; going through the virtual interface costs an indirect call
 * (and blocks inlining) per branch instruction.  Holding the predictor
 * as a variant lets the simulator std::visit once per playback window
 * and run the whole loop against the concrete (final) type, where the
 * calls resolve statically and inline.
 */
using PredictorVariant =
    std::variant<StaticTakenPredictor, BimodalPredictor, GsharePredictor,
                 TournamentPredictor, PerceptronPredictor,
                 TageLitePredictor>;

/**
 * Create a predictor as a variant over the concrete types.
 *
 * Applies exactly the same per-kind sizing adjustments as
 * makePredictor(), so the two factories produce behaviourally
 * identical predictors for any (kind, size_log2).
 */
PredictorVariant makePredictorVariant(PredictorKind kind,
                                      unsigned size_log2 = 12);

} // namespace uarch
} // namespace speclens

#endif // SPECLENS_UARCH_BRANCH_PREDICTOR_H
