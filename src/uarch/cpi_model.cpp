/**
 * @file
 * CPI stack computation.
 */

#include "cpi_model.h"

namespace speclens {
namespace uarch {

void
LatencyModel::hashInto(stats::Fingerprinter &fp) const
{
    fp.tag("latency");
    fp.f64(l2_hit_cycles);
    fp.f64(l3_hit_cycles);
    fp.f64(memory_cycles);
    fp.f64(mispredict_penalty);
    fp.f64(icache_l2_penalty);
    fp.f64(l2tlb_hit_cycles);
    fp.f64(page_walk_cycles);
}

double
CpiStack::total() const
{
    return base + dependency + frontend_icache + frontend_branch +
           backend_l2 + backend_l3 + backend_memory + backend_tlb;
}

double
CpiStack::frontendFraction() const
{
    double t = total();
    return t > 0.0 ? (frontend_icache + frontend_branch) / t : 0.0;
}

double
CpiStack::backendFraction() const
{
    double t = total();
    return t > 0.0
               ? (backend_l2 + backend_l3 + backend_memory + backend_tlb) / t
               : 0.0;
}

std::vector<std::string>
CpiStack::componentNames()
{
    return {"base",    "dependency", "icache", "branch",
            "l2",      "l3",         "memory", "tlb"};
}

std::vector<double>
CpiStack::components() const
{
    return {base,       dependency, frontend_icache, frontend_branch,
            backend_l2, backend_l3, backend_memory,  backend_tlb};
}

CpiStack
computeCpiStack(const PerfCounters &counters, const LatencyModel &latencies,
                const trace::ExecutionModel &exec)
{
    CpiStack stack;
    if (counters.instructions == 0)
        return stack;

    double instructions = static_cast<double>(counters.instructions);
    auto per_inst = [instructions](std::uint64_t events, double cycles) {
        return static_cast<double>(events) * cycles / instructions;
    };

    stack.base = exec.base_cpi;
    stack.dependency = exec.dependency_cpi;

    // Front-end: instruction-side misses are serialised (no overlap in
    // the fetch stream).  L1I misses serviced by L2 pay the short
    // bubble; deeper instruction misses pay the data-path latencies.
    std::uint64_t l1i_to_l2 = counters.l1i_misses - counters.l2i_misses;
    stack.frontend_icache = per_inst(l1i_to_l2, latencies.icache_l2_penalty)
                          + per_inst(counters.l2i_misses,
                                     latencies.l3_hit_cycles);
    stack.frontend_branch = per_inst(counters.branch_mispredictions,
                                     latencies.mispredict_penalty);

    // Back-end: data-side misses per service level, divided by the
    // workload's memory-level parallelism (overlapping misses).
    double mlp = exec.mlp;
    std::uint64_t l2_service = counters.l1d_misses - counters.l2d_misses;
    // Split L3 outcomes between instruction- and data-side streams in
    // proportion to their L2 miss contributions.
    std::uint64_t l3_in = counters.l2d_misses + counters.l2i_misses;
    double data_share =
        l3_in > 0 ? static_cast<double>(counters.l2d_misses) /
                        static_cast<double>(l3_in)
                  : 0.0;
    double l3_data_misses = static_cast<double>(counters.l3_misses) *
                            data_share;
    double l3_data_hits = static_cast<double>(counters.l2d_misses) -
                          l3_data_misses;
    if (l3_data_hits < 0.0)
        l3_data_hits = 0.0;

    stack.backend_l2 = per_inst(l2_service, latencies.l2_hit_cycles) / mlp;
    stack.backend_l3 = l3_data_hits * latencies.l3_hit_cycles /
                       instructions / mlp;
    stack.backend_memory = l3_data_misses * latencies.memory_cycles /
                           instructions / mlp;

    // TLB: L1 TLB misses that hit the L2 TLB pay the short refill;
    // full walks pay the walk latency.  Walks overlap poorly, so no
    // MLP division.
    std::uint64_t l1tlb_misses = counters.dtlb_misses +
                                 counters.itlb_misses;
    std::uint64_t l2tlb_hits = l1tlb_misses > counters.l2tlb_misses
                                   ? l1tlb_misses - counters.l2tlb_misses
                                   : 0;
    stack.backend_tlb = per_inst(l2tlb_hits, latencies.l2tlb_hit_cycles) +
                        per_inst(counters.page_walks,
                                 latencies.page_walk_cycles);

    return stack;
}

} // namespace uarch
} // namespace speclens
