/**
 * @file
 * Set-associative cache model.
 *
 * A functional (hit/miss) cache simulator: no timing, no coherence,
 * no prefetching — exactly what is needed to produce the MPKI metrics
 * the paper's analysis consumes.  Four replacement policies are
 * provided; the Table IV machines use LRU or tree-PLRU depending on
 * generation, and the remaining policies support the ablation
 * benchmarks.
 */

#ifndef SPECLENS_UARCH_CACHE_H
#define SPECLENS_UARCH_CACHE_H

#include <cstdint>
#include <string>
#include <vector>

#include "stats/fingerprint.h"
#include "stats/rng.h"

namespace speclens {
namespace uarch {

/** Replacement policy for a set-associative cache. */
enum class ReplacementPolicy {
    Lru,      //!< True least-recently-used.
    TreePlru, //!< Tree pseudo-LRU (binary decision tree per set).
    Fifo,     //!< First-in first-out (round-robin per set).
    Random,   //!< Uniformly random victim.
};

/** Human-readable policy name. */
std::string replacementPolicyName(ReplacementPolicy policy);

/** Geometry and policy of one cache level. */
struct CacheConfig
{
    std::string name = "cache"; //!< For diagnostics ("L1D", ...).
    std::uint64_t size_bytes = 32 * 1024;
    std::uint32_t associativity = 8;
    std::uint32_t line_bytes = 64;
    ReplacementPolicy policy = ReplacementPolicy::Lru;

    /** Number of sets implied by the geometry. */
    std::uint64_t sets() const;

    /**
     * Validate the geometry (power-of-two line size, associativity
     * divides capacity).  Set counts need not be powers of two — real
     * LLCs such as the 30 MB / 20-way Broadwell L3 of Table IV have
     * non-power-of-two set counts, so indexing is modulo.
     * @throws std::invalid_argument on malformed geometry.
     */
    void validate() const;

    /** Feed every field, in declaration order, to @p fp. */
    void hashInto(stats::Fingerprinter &fp) const;
};

/**
 * Functional set-associative cache.
 *
 * access() probes the cache and, on a miss, fills the line (allocate on
 * read and write; write-allocate matches the inclusive write-back
 * behaviour of all the modelled machines closely enough for miss-rate
 * purposes).
 */
class Cache
{
  public:
    explicit Cache(const CacheConfig &config);

    /**
     * Probe (and on miss, fill) the line containing @p address.
     * @return true on hit.
     */
    bool access(std::uint64_t address);

    /** True when the line containing @p address is present (no fill). */
    bool contains(std::uint64_t address) const;

    /** Invalidate all lines and zero statistics. */
    void reset();

    std::uint64_t accesses() const { return accesses_; }
    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return accesses_ - hits_; }

    /** Miss ratio in [0, 1]; 0 when the cache was never accessed. */
    double missRatio() const;

    const CacheConfig &config() const { return config_; }

  private:
    struct Line
    {
        std::uint64_t tag = 0;
        bool valid = false;
        std::uint64_t stamp = 0; //!< LRU/FIFO ordering stamp.
    };

    /** Victim way in @p set according to the replacement policy. */
    std::uint32_t victimWay(std::uint64_t set);

    /** Policy metadata update on hit or fill. */
    void touch(std::uint64_t set, std::uint32_t way, bool is_fill);

    CacheConfig config_;
    std::uint64_t num_sets_;
    std::uint32_t line_shift_;
    std::vector<Line> lines_;          //!< num_sets * associativity.
    std::vector<std::uint32_t> plru_;  //!< Tree-PLRU state per set.
    std::uint64_t tick_ = 0;           //!< Monotonic stamp source.
    stats::Rng rng_;                   //!< For Random replacement.

    std::uint64_t accesses_ = 0;
    std::uint64_t hits_ = 0;
};

} // namespace uarch
} // namespace speclens

#endif // SPECLENS_UARCH_CACHE_H
