/**
 * @file
 * Set-associative cache model.
 *
 * A functional (hit/miss) cache simulator: no timing, no coherence,
 * no prefetching — exactly what is needed to produce the MPKI metrics
 * the paper's analysis consumes.  Four replacement policies are
 * provided; the Table IV machines use LRU or tree-PLRU depending on
 * generation, and the remaining policies support the ablation
 * benchmarks.
 */

#ifndef SPECLENS_UARCH_CACHE_H
#define SPECLENS_UARCH_CACHE_H

#include <bit>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "stats/fingerprint.h"
#include "stats/rng.h"

namespace speclens {
namespace verify {
class StateAuditor;
}
namespace uarch {

class PrewarmSolver;

/** Replacement policy for a set-associative cache. */
enum class ReplacementPolicy {
    Lru,      //!< True least-recently-used.
    TreePlru, //!< Tree pseudo-LRU (binary decision tree per set).
    Fifo,     //!< First-in first-out (round-robin per set).
    Random,   //!< Uniformly random victim.
};

/** Human-readable policy name. */
std::string replacementPolicyName(ReplacementPolicy policy);

/**
 * Way-prediction policy of one cache level.
 *
 * A way predictor guesses the hit way before the tag compare finishes;
 * a correct guess saves the parallel way reads.  The model is purely
 * statistical — it tracks predictor hit/mispredict counts without
 * changing hit/miss behaviour — mirroring how MRU-family predictors
 * are evaluated in the literature.
 */
enum class WayPredictionKind : std::uint8_t {
    None,     //!< No way predictor (the default everywhere).
    Mru,      //!< One most-recently-used way per set.
    MultiMru, //!< Two MRU partitions per set, selected by a tag bit.
};

/** Human-readable way-prediction policy name. */
std::string wayPredictionKindName(WayPredictionKind kind);

/** Geometry and policy of one cache level. */
struct CacheConfig
{
    std::string name = "cache"; //!< For diagnostics ("L1D", ...).
    std::uint64_t size_bytes = 32 * 1024;
    std::uint32_t associativity = 8;
    std::uint32_t line_bytes = 64;
    ReplacementPolicy policy = ReplacementPolicy::Lru;
    WayPredictionKind way_prediction = WayPredictionKind::None;

    /** Number of sets implied by the geometry. */
    std::uint64_t sets() const;

    /**
     * Validate the geometry (power-of-two line size, associativity
     * divides capacity).  Set counts need not be powers of two — real
     * LLCs such as the 30 MB / 20-way Broadwell L3 of Table IV have
     * non-power-of-two set counts, so indexing is modulo.
     * @throws std::invalid_argument on malformed geometry.
     */
    void validate() const;

    /** Feed every field, in declaration order, to @p fp. */
    void hashInto(stats::Fingerprinter &fp) const;
};

/**
 * Functional set-associative cache.
 *
 * access() probes the cache and, on a miss, fills the line (allocate on
 * read and write; write-allocate matches the inclusive write-back
 * behaviour of all the modelled machines closely enough for miss-rate
 * purposes).
 */
class Cache
{
  public:
    explicit Cache(const CacheConfig &config);

    /**
     * Probe (and on miss, fill) the line containing @p address.
     * @return true on hit.
     *
     * Defined inline below: this is called several times per simulated
     * instruction (L1 + L2 + L3 + both TLB levels route through it),
     * so it must inline into the hierarchy wrappers and from there
     * into the playback loop.
     */
    bool access(std::uint64_t address);

    /**
     * Apply @p count repeat accesses to the line touched by the last
     * access(), all hits, in one step.  Exactly equivalent to calling
     * access() @p count more times with the same address, PROVIDED no
     * other access to this cache intervened since (the caller
     * guarantees this by tracking consecutive same-line probes): the
     * line is still resident, each probe hits the same way, and the
     * policy effects collapse — k LRU stamp writes equal one write at
     * the final tick, tree-PLRU hit touches are idempotent, FIFO and
     * Random ignore hits.  This is what lets the playback loop skip
     * the probe work for instruction streams that fetch the same line
     * (or page, for TLBs) many times in a row.
     */
    void
    repeatLastHit(std::uint64_t count)
    {
        accesses_ += count;
        hits_ += count;
        if (config_.policy == ReplacementPolicy::Lru) {
            tick_ += count;
            stamps_[last_index_] = tick_;
        }
        // The preceding access left the predictor entry pointing at
        // the way it touched, so every repeat predicts correctly.
        if (way_pred_parts_ != 0)
            way_pred_hits_ += count;
    }

    /**
     * Fill the line containing @p address, asserting it cannot be a
     * hit.  Exactly equivalent to access() whenever the line is
     * guaranteed absent — the cold prewarm walk qualifies (distinct
     * lines streamed into a never-touched cache) — minus the futile
     * tag-match scan.  Defined inline below.
     */
    void coldFill(std::uint64_t address);

    /** True when the line containing @p address is present (no fill). */
    bool contains(std::uint64_t address) const;

    /** Invalidate all lines and zero statistics. */
    void reset();

    std::uint64_t accesses() const { return accesses_; }
    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return accesses_ - hits_; }

    /** Miss ratio in [0, 1]; 0 when the cache was never accessed. */
    double missRatio() const;

    const CacheConfig &config() const { return config_; }

    /** Hits whose way the predictor guessed right (0 without one). */
    std::uint64_t wayPredHits() const { return way_pred_hits_; }

    /** Hits whose way the predictor guessed wrong. */
    std::uint64_t wayPredMispredicts() const
    {
        return way_pred_mispredicts_;
    }

    /**
     * Flat index (set * associativity + way) of the line touched by
     * the most recent access()/coldFill().  The hierarchy's prefetch
     * accounting keys its per-slot bits on this.
     */
    std::size_t lastIndex() const { return last_index_; }

  private:
    /**
     * Tag value marking an invalid way.  Real tags are line addresses
     * divided by the set count, and the modelled address spaces top out
     * far below 2^64, so the sentinel can never collide — which lets
     * the hit scan drop the separate valid flag and run over one
     * contiguous tag array (one cache line for an 8-way set) instead of
     * a 24-byte AoS Line record.
     */
    static constexpr std::uint64_t kInvalidTag = ~0ull;

    /** Set index and tag of @p address (pow2 fast path or modulo). */
    void splitAddress(std::uint64_t address, std::uint64_t &set,
                      std::uint64_t &tag) const;

    /** Victim way in @p set according to the replacement policy. */
    std::uint32_t victimWay(std::uint64_t set);

    /** Policy metadata update on hit or fill. */
    void touch(std::uint64_t set, std::uint32_t way, bool is_fill);

    CacheConfig config_;
    std::uint64_t num_sets_;
    std::uint32_t line_shift_;

    /**
     * Power-of-two set-count fast path: when num_sets_ is a power of
     * two (every modelled structure except a few non-pow2 LLCs),
     * set = line_addr & set_mask_ and tag = line_addr >> set_shift_
     * produce exactly the modulo/division values without the per-access
     * integer divide — the single largest cost in the playback loop.
     */
    bool sets_pow2_ = false;
    std::uint64_t set_mask_ = 0;
    std::uint32_t set_shift_ = 0;

    // Structure-of-arrays line metadata, num_sets * associativity
    // each, indexed set * associativity + way.
    std::vector<std::uint64_t> tags_; //!< kInvalidTag when invalid.

    /**
     * LRU/FIFO ordering stamps.  Deliberately left uninitialized at
     * construction (make_unique_for_overwrite): a stamp is only ever
     * read by the LRU/FIFO victim scan, which runs when the set is
     * full — and filling a way always writes its stamp first.  The
     * big LLC arrays (4 MB for a 30 MB L3) are built fresh for every
     * simulation, so skipping the zero pass is a measurable win.
     */
    std::unique_ptr<std::uint64_t[]> stamps_;

    std::vector<std::uint32_t> plru_; //!< Tree-PLRU state per set.

    /**
     * Per-set fill counts for coldFill(), allocated on first use.  In
     * a pure fill stream both the first-invalid way and — for LRU and
     * FIFO, whose per-set stamps are strictly increasing when nothing
     * hits — the min-stamp victim are provably round-robin, so a
     * counter replaces both way scans.
     */
    std::vector<std::uint32_t> cold_fills_;
    std::uint64_t tick_ = 0;            //!< Monotonic stamp source.
    stats::Rng rng_;                    //!< For Random replacement.

    std::uint64_t accesses_ = 0;
    std::uint64_t hits_ = 0;

    /** Flat index (set * assoc + way) touched by the last access(). */
    std::size_t last_index_ = 0;

    /**
     * Way-prediction table: num_sets * way_pred_parts_ entries, each
     * the way to guess for that (set, partition).  Empty (parts == 0)
     * when the config disables prediction, which is also the hot-path
     * gate.  MRU keeps one partition per set; multi-MRU keeps two,
     * selected by the low tag bit, so interleaved lines stop evicting
     * each other's prediction.
     */
    std::vector<std::uint32_t> way_pred_;
    std::uint32_t way_pred_parts_ = 0;
    std::uint64_t way_pred_hits_ = 0;
    std::uint64_t way_pred_mispredicts_ = 0;

    /** Predictor entry for (set, tag); only valid when parts != 0. */
    std::uint32_t &
    wayPredEntry(std::uint64_t set, std::uint64_t tag)
    {
        std::size_t part =
            way_pred_parts_ == 2 ? static_cast<std::size_t>(tag & 1) : 0;
        return way_pred_[set * way_pred_parts_ + part];
    }

    /**
     * The closed-form prewarm solver (src/uarch/prewarm.{h,cpp})
     * reconstructs the exact state a cold-fill walk would leave —
     * tags, stamps, tree-PLRU words, fill counters, tick and the
     * access statistics — directly from the warmup stream's summary,
     * so it writes every private array a walk would have written.
     */
    friend class PrewarmSolver;

    /** The invariant prover (src/verify/state_audit.h) reads — never
     *  writes — the private arrays to prove structural invariants. */
    friend class verify::StateAuditor;
};

// ---------------------------------------------------------------------
// Tree-PLRU primitives, shared by Cache::victimWay()/touch() and the
// closed-form prewarm solver (which replays them on a scratch state to
// derive — and verify — the cold-fill victim schedule).

/** Victim way selected by tree-PLRU @p state for a @p assoc -way set. */
inline std::uint32_t
plruVictimWay(std::uint32_t state, std::uint32_t assoc)
{
    // Walk the binary decision tree; each bit points away from the
    // most recently used half.
    std::uint32_t node = 0; // root of the implicit tree
    std::uint32_t index = 0;
    std::uint32_t span = assoc;
    while (span > 1) {
        bool right = (state >> node) & 1u;
        span /= 2;
        if (right)
            index += span;
        node = 2 * node + (right ? 2 : 1);
    }
    return index;
}

/** Tree-PLRU @p state after touching @p way (hit or fill). */
inline std::uint32_t
plruTouchState(std::uint32_t state, std::uint32_t assoc, std::uint32_t way)
{
    // Flip the path bits to point away from this way.
    std::uint32_t node = 0;
    std::uint32_t lo = 0;
    std::uint32_t span = assoc;
    while (span > 1) {
        span /= 2;
        bool went_right = way >= lo + span;
        if (went_right) {
            state &= ~(1u << node); // point left next time
            lo += span;
            node = 2 * node + 2;
        } else {
            state |= (1u << node);  // point right next time
            node = 2 * node + 1;
        }
    }
    return state;
}

// ---------------------------------------------------------------------
// Hot-path definitions.  Kept in the header so the per-access chain
// (hierarchy wrapper -> access -> touch/victimWay) inlines into the
// playback loop; out-of-line these are the single largest cost in a
// campaign.

inline void
Cache::splitAddress(std::uint64_t address, std::uint64_t &set,
                    std::uint64_t &tag) const
{
    std::uint64_t line_addr = address >> line_shift_;
    if (sets_pow2_) {
        // Exactly the modulo/division values below, minus the integer
        // divide.
        set = line_addr & set_mask_;
        tag = line_addr >> set_shift_;
    } else {
        set = line_addr % num_sets_;
        tag = line_addr / num_sets_;
    }
}

inline std::uint32_t
Cache::victimWay(std::uint64_t set)
{
    const std::uint64_t *stamps = &stamps_[set * config_.associativity];
    switch (config_.policy) {
      case ReplacementPolicy::Lru:
      case ReplacementPolicy::Fifo: {
        // Smallest stamp is the least-recently used / first inserted.
        std::uint32_t victim = 0;
        std::uint64_t oldest = stamps[0];
        for (std::uint32_t w = 1; w < config_.associativity; ++w) {
            if (stamps[w] < oldest) {
                oldest = stamps[w];
                victim = w;
            }
        }
        return victim;
      }
      case ReplacementPolicy::TreePlru:
        return plruVictimWay(plru_[set], config_.associativity);
      case ReplacementPolicy::Random:
        return static_cast<std::uint32_t>(
            rng_.below(config_.associativity));
    }
    return 0;
}

inline void
Cache::touch(std::uint64_t set, std::uint32_t way, bool is_fill)
{
    switch (config_.policy) {
      case ReplacementPolicy::Lru:
        stamps_[set * config_.associativity + way] = ++tick_;
        break;
      case ReplacementPolicy::Fifo:
        // Only insertion order matters; hits do not refresh the stamp.
        if (is_fill)
            stamps_[set * config_.associativity + way] = ++tick_;
        break;
      case ReplacementPolicy::TreePlru:
        plru_[set] =
            plruTouchState(plru_[set], config_.associativity, way);
        break;
      case ReplacementPolicy::Random:
        break;
    }
}

inline bool
Cache::access(std::uint64_t address)
{
    ++accesses_;
    std::uint64_t set, tag;
    splitAddress(address, set, tag);

    std::uint64_t *tags = &tags_[set * config_.associativity];
    std::uint32_t assoc = config_.associativity;

    // Early-exit scan over the contiguous tag array (one cache line
    // for an 8-way set).  The exit branch is well-predicted in
    // practice: instruction-side streams re-probe the same line many
    // times in a row, so the matching way repeats.  Branchless
    // full-scan variants measure slower here for exactly that reason.
    for (std::uint32_t w = 0; w < assoc; ++w) {
        if (tags[w] == tag) {
            ++hits_;
            last_index_ = set * assoc + w;
            touch(set, w, /*is_fill=*/false);
            if (way_pred_parts_ != 0) {
                std::uint32_t &entry = wayPredEntry(set, tag);
                if (entry == w)
                    ++way_pred_hits_;
                else
                    ++way_pred_mispredicts_;
                entry = w;
            }
            return true;
        }
    }

    // Miss: fill into the first invalid way if one exists, else evict.
    // Fills always take the first invalid way and nothing invalidates
    // an individual line, so invalid ways form a suffix of the set —
    // one look at the last way answers "is the set full?" and the
    // common steady-state miss skips the scan entirely.
    std::uint32_t way;
    if (tags[assoc - 1] != kInvalidTag) {
        way = victimWay(set);
    } else {
        way = 0;
        while (tags[way] != kInvalidTag)
            ++way;
    }

    tags[way] = tag;
    last_index_ = set * assoc + way;
    touch(set, way, /*is_fill=*/true);
    // A miss is resolved by the full tag scan, so it never verifies a
    // way prediction; the fill only trains the entry.
    if (way_pred_parts_ != 0)
        wayPredEntry(set, tag) = way;
    return false;
}

inline void
Cache::coldFill(std::uint64_t address)
{
    ++accesses_;
    std::uint64_t set, tag;
    splitAddress(address, set, tag);

    std::uint32_t assoc = config_.associativity;
    if (cold_fills_.empty())
        cold_fills_.assign(num_sets_, 0);
    std::uint32_t &fills = cold_fills_[set];

    std::uint32_t way;
    switch (config_.policy) {
      case ReplacementPolicy::Lru:
      case ReplacementPolicy::Fifo:
        // Invalid ways fill in order, and once the set is full the
        // min-stamp victim of a hit-free stream is round-robin too,
        // so the fill count mod assoc IS the way — no scans.
        way = fills;
        fills = fills + 1 == assoc ? 0 : fills + 1;
        stamps_[set * assoc + way] = ++tick_; // touch(), fill case
        break;
      default:
        // Tree-PLRU / Random: the counter still covers the invalid
        // suffix; after that the policy picks the victim.
        if (fills < assoc)
            way = fills++;
        else
            way = victimWay(set);
        touch(set, way, /*is_fill=*/true);
        break;
    }

    tags_[set * assoc + way] = tag;
    last_index_ = set * assoc + way;
    // Mirror access()'s fill case so the cold walk leaves the exact
    // predictor state the general path would have.
    if (way_pred_parts_ != 0)
        wayPredEntry(set, tag) = way;
}

} // namespace uarch
} // namespace speclens

#endif // SPECLENS_UARCH_CACHE_H
