/**
 * @file
 * DRAM row-buffer model implementation.
 */

#include "dram_model.h"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace speclens {
namespace uarch {

void
DramConfig::validate() const
{
    if (banks == 0 || !std::has_single_bit(banks))
        throw std::invalid_argument(
            "DRAM: bank count not a power of two");
    if (row_bytes == 0 || !std::has_single_bit(row_bytes))
        throw std::invalid_argument(
            "DRAM: row size not a power of two");
    if (burst_cycles == 0 || activate_cycles == 0 ||
        cycles_per_burst_budget == 0)
        throw std::invalid_argument(
            "DRAM: cycle costs must be positive");
}

void
DramConfig::hashInto(stats::Fingerprinter &fp) const
{
    fp.tag("dram");
    fp.u64(banks);
    fp.u64(row_bytes);
    fp.u64(burst_cycles);
    fp.u64(activate_cycles);
    fp.u64(cycles_per_burst_budget);
}

DramModel::DramModel(const DramConfig &config)
    : config_(config),
      row_shift_(static_cast<std::uint32_t>(std::countr_zero(
          static_cast<std::uint64_t>(config.row_bytes)))),
      bank_shift_(static_cast<std::uint32_t>(std::countr_zero(
          static_cast<std::uint64_t>(config.banks)))),
      bank_mask_(config.banks - 1)
{
    config_.validate();
    open_row_.assign(config_.banks, 0);
    row_open_.assign(config_.banks, 0);
}

void
DramModel::reset()
{
    std::fill(open_row_.begin(), open_row_.end(), 0ull);
    std::fill(row_open_.begin(), row_open_.end(),
              static_cast<std::uint8_t>(0));
    accesses_ = 0;
    row_hits_ = 0;
    busy_cycles_ = 0;
    budget_cycles_ = 0;
}

} // namespace uarch
} // namespace speclens
