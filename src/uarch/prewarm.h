/**
 * @file
 * Closed-form (analytic) cache/TLB prewarm.
 *
 * Playback::prewarm() streams every line of the LLC-resident working
 * sets (plus the code footprint) through the cold hierarchy once; PR 6
 * reduced each step to Cache::coldFill()/repeatLastHit(), but the walk
 * still executes one iteration per distinct line and page.  This
 * solver removes the loop entirely: the warmup stream is a short list
 * of arithmetic progressions of distinct units (lines or pages), so
 * the final state of every set — which tags survive, in which ways,
 * with which replacement metadata and stamp values — has a closed
 * form, derived here set by set without visiting the stream.
 *
 * The proof obligations (DESIGN.md §5e "round 2"):
 *
 *  - LRU/FIFO: in a pure fill stream the per-set stamps are strictly
 *    increasing in fill order (repeats only re-stamp the most recent
 *    fill), so victims are round-robin and the p-th in-set fill lands
 *    in way p mod assoc.  The surviving tag of way w is therefore the
 *    unit of the last in-set fill ordinal congruent to w, and its
 *    stamp is that unit's last element tick — both computable from
 *    the per-set fill count alone.
 *  - Per-set fill counts: the units reaching set s from a progression
 *    {u0 + j*d : j < M} are the solutions of a linear congruence —
 *    count and j-positions follow from gcd/modular-inverse arithmetic
 *    (valid for power-of-two and modulo-indexed set counts alike).
 *  - Tree-PLRU: the cold-fill victim schedule is derived by replaying
 *    2*assoc fills through the exact victim/touch primitives
 *    (plruVictimWay/plruTouchState) and verified periodic on the spot;
 *    the verified schedule gives every way's last fill and the final
 *    tree state in O(1) per set.  If verification ever fails the
 *    whole prewarm falls back to the walk.
 *  - Random: provable only when no set overflows its ways (then fills
 *    occupy the invalid suffix in order and the RNG is never drawn);
 *    any overflow falls back, preserving the global draw order.
 *
 * Fallback contract: apply() either computes the exact walk-equivalent
 * state for the WHOLE hierarchy or mutates nothing and returns false,
 * in which case the caller must run the walking path.  Equivalence is
 * enforced bit-for-bit by tests/uarch/prewarm_equivalence_test.cpp and
 * transitively by the streaming parity suite.
 */

#ifndef SPECLENS_UARCH_PREWARM_H
#define SPECLENS_UARCH_PREWARM_H

#include <cstdint>
#include <vector>

#include "trace/workload_profile.h"
#include "uarch/cache_hierarchy.h"
#include "uarch/tlb.h"

namespace speclens {
namespace uarch {

/** Closed-form prewarm entry point (stateless; see file comment). */
class PrewarmSolver
{
  public:
    /**
     * One run of fills in stream order: an arithmetic progression of
     * @p fills distinct units starting at @p u0 with step @p step,
     * where unit j absorbs @p rep consecutive stream elements (the
     * last unit clamps to the segment's @p elems total).  tick0 /
     * fills0 are the structure's cumulative element and fill counts
     * before the segment, fixing absolute stamp values.
     */
    struct Segment
    {
        std::uint64_t u0 = 0;
        std::uint64_t step = 1;
        std::uint64_t fills = 0;
        std::uint64_t rep = 1;
        std::uint64_t elems = 0;
        std::uint64_t tick0 = 0;
        std::uint64_t fills0 = 0;
    };

    /**
     * Compute the exact final prewarm state of @p caches and @p tlbs
     * for @p profile, or mutate nothing and return false when any
     * structure's reference pattern leaves the provable regime (the
     * caller then walks).  @p llc_lines is the working-set residency
     * bound the walk applies (last-level capacity in lines).
     */
    static bool apply(CacheHierarchy &caches, TlbHierarchy &tlbs,
                      const trace::WorkloadProfile &profile,
                      std::uint64_t llc_lines);

    /**
     * The walking path: stream every LLC-resident line/page through
     * the hierarchy with exact run collapsing.  This is the semantic
     * definition of prewarm; apply() must reproduce its state bit for
     * bit.  Shared by Playback::prewarm() (fallback) and the
     * equivalence tests (reference side).
     */
    static void walk(CacheHierarchy &caches, TlbHierarchy &tlbs,
                     const trace::WorkloadProfile &profile,
                     std::uint64_t llc_lines);

    /**
     * Test support: flatten every prewarm-written field of @p caches
     * and @p tlbs — per-level tags, defined replacement stamps
     * (LRU/FIFO valid ways only; tree-PLRU/Random stamps are never
     * written), PLRU words, cold-fill counters, ticks, last-access
     * indices and all access/miss statistics — into one word vector,
     * so the analytic and walking paths can be compared for exact
     * state equality, not just equal measurement results.
     */
    static std::vector<std::uint64_t>
    stateDigest(const CacheHierarchy &caches, const TlbHierarchy &tlbs);

  private:
    /** Append one structure's prewarm-visible state to @p out. */
    static void appendCacheState(const Cache &cache,
                                 std::vector<std::uint64_t> &out);

    /** Write one structure's final state from its segment list. */
    static void solveCache(Cache &cache,
                           const std::vector<Segment> &segments,
                           std::uint64_t accesses, std::uint64_t hits);

    /** True when every set of @p cache keeps fills <= associativity
     *  (the Random-policy provability condition). */
    static bool fitsWithoutEviction(const Cache &cache,
                                    const std::vector<Segment> &segments);
};

} // namespace uarch
} // namespace speclens

#endif // SPECLENS_UARCH_PREWARM_H
