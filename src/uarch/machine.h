/**
 * @file
 * Full machine description and ISA/compiler workload transformation.
 *
 * A Machine bundles everything the characterization runner needs to
 * "measure" a workload the way the paper measures one on a commercial
 * box: the cache and TLB geometries (Table IV), a branch predictor
 * matched to the micro-architecture generation, the latency model
 * behind the CPI stack, and the power coefficients.
 *
 * Machines also carry a workload transformation: the paper deliberately
 * profiles across three ISAs and multiple compilers so that
 * machine-specific artifacts wash out of the PCA.  We model the
 * ISA/compiler effect as a deterministic per-(machine, workload)
 * adjustment of the instruction mix and code footprint — RISC targets
 * execute more instructions with a slightly leaner memory mix; a
 * different compiler perturbs the mix and code size by a few percent.
 */

#ifndef SPECLENS_UARCH_MACHINE_H
#define SPECLENS_UARCH_MACHINE_H

#include <string>

#include "trace/workload_profile.h"
#include "uarch/branch_predictor.h"
#include "uarch/cache_hierarchy.h"
#include "uarch/cpi_model.h"
#include "uarch/power_model.h"
#include "uarch/tlb.h"

namespace speclens {
namespace uarch {

/** Instruction-set family of a machine. */
enum class Isa { X86, Sparc };

/** Human-readable ISA name. */
std::string isaName(Isa isa);

/** ISA/compiler-induced workload adjustments. */
struct WorkloadTransform
{
    /**
     * Multiplier on the load/store mix fractions (RISC load/store ISAs
     * with more registers spill slightly less per instruction).
     */
    double memory_mix_scale = 1.0;

    /** Multiplier on the branch mix fraction. */
    double branch_mix_scale = 1.0;

    /** Multiplier on the static code footprint (compiler effect). */
    double code_scale = 1.0;

    /**
     * Relative standard deviation of the deterministic per-(machine,
     * workload) jitter applied to mix fractions, modelling compiler
     * and library differences between result submitters.
     */
    double mix_jitter = 0.02;

    /** Feed every field, in declaration order, to @p fp. */
    void hashInto(stats::Fingerprinter &fp) const;
};

/** Complete machine configuration. */
struct MachineConfig
{
    std::string name = "machine";   //!< Full name ("Intel Core i7-6700").
    std::string short_name = "m";   //!< Label for plots/tables.
    Isa isa = Isa::X86;
    double frequency_ghz = 3.0;

    CacheHierarchyConfig caches;
    TlbHierarchyConfig tlbs;

    PredictorKind predictor = PredictorKind::TageLite;
    unsigned predictor_size_log2 = 13;

    LatencyModel latencies;
    PowerModelConfig power;
    WorkloadTransform transform;

    /** Feed the complete machine description to @p fp. */
    void hashInto(stats::Fingerprinter &fp) const;

    /**
     * Stable content fingerprint of the whole machine model: names,
     * ISA, clock, every cache/TLB geometry, predictor, latency, power
     * and transform parameter.  Both the name and the structural
     * parameters matter — the ISA/compiler jitter stream is seeded
     * from the machine name, so two structurally identical machines
     * with different names measure differently.
     */
    std::uint64_t fingerprint() const;
};

/**
 * Structural validation of a machine configuration: cache geometries
 * and capacity/latency monotonicity, TLB geometries, clock and power
 * coefficients.  The same invariants are covered (with richer
 * reporting) by lint rules SL007-SL010; this throwing form backs the
 * SPECLENS_VALIDATE startup assertions in the characterization runner.
 *
 * @throws std::invalid_argument naming the offending structure.
 */
void validateMachineConfig(const MachineConfig &machine);

/**
 * Apply a machine's ISA/compiler transformation to a workload profile.
 *
 * Deterministic: the jitter stream is seeded from the workload and
 * machine names, so the same pair always yields the same transformed
 * profile.
 */
trace::WorkloadProfile transformForMachine(
    const trace::WorkloadProfile &profile, const MachineConfig &machine);

} // namespace uarch
} // namespace speclens

#endif // SPECLENS_UARCH_MACHINE_H
