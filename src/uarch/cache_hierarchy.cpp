/**
 * @file
 * Cache hierarchy implementation.
 */

#include "cache_hierarchy.h"

namespace speclens {
namespace uarch {

void
CacheHierarchyConfig::hashInto(stats::Fingerprinter &fp) const
{
    fp.tag("caches");
    l1i.hashInto(fp);
    l1d.hashInto(fp);
    l2.hashInto(fp);
    fp.boolean(l3.has_value());
    if (l3)
        l3->hashInto(fp);
    fp.u64(l2_prefetch_degree);
}

CacheHierarchy::CacheHierarchy(const CacheHierarchyConfig &config)
    : l1i_cache_(config.l1i),
      l1d_cache_(config.l1d),
      l2_cache_(config.l2),
      prefetch_degree_(config.l2_prefetch_degree)
{
    if (config.l3)
        l3_cache_ = std::make_unique<Cache>(*config.l3);
}

void
CacheHierarchy::prefetchAfterMiss(std::uint64_t address)
{
    std::uint64_t line = l2_cache_.config().line_bytes;
    for (unsigned i = 1; i <= prefetch_degree_; ++i) {
        std::uint64_t target = address + i * line;
        if (l2_cache_.contains(target))
            continue;
        // Prefetches install through L3 into L2 but are not demand
        // traffic: they touch no SideCounters.
        if (l3_cache_)
            l3_cache_->access(target);
        l2_cache_.access(target);
        ++prefetch_fills_;
        prefetched_lines_.insert(target / line);
    }
    // Bound the bookkeeping; a full flush only means streams must
    // re-confirm, which costs one demand miss each.
    if (prefetched_lines_.size() > 65536)
        prefetched_lines_.clear();
}

void
CacheHierarchy::confirmPrefetchedHit(std::uint64_t address)
{
    std::uint64_t line_addr = address / l2_cache_.config().line_bytes;
    auto it = prefetched_lines_.find(line_addr);
    if (it != prefetched_lines_.end()) {
        prefetched_lines_.erase(it);
        prefetchAfterMiss(address);
    }
}

void
CacheHierarchy::reset()
{
    l1i_cache_.reset();
    l1d_cache_.reset();
    l2_cache_.reset();
    if (l3_cache_)
        l3_cache_->reset();
    l1i_stats_ = SideCounters{};
    l1d_stats_ = SideCounters{};
    l2i_stats_ = SideCounters{};
    l2d_stats_ = SideCounters{};
    l3_stats_ = SideCounters{};
    prefetch_fills_ = 0;
    prefetched_lines_.clear();
}

} // namespace uarch
} // namespace speclens
