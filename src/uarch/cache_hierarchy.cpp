/**
 * @file
 * Cache hierarchy implementation.
 */

#include "cache_hierarchy.h"

namespace speclens {
namespace uarch {

void
CacheHierarchyConfig::hashInto(stats::Fingerprinter &fp) const
{
    fp.tag("caches");
    l1i.hashInto(fp);
    l1d.hashInto(fp);
    l2.hashInto(fp);
    fp.boolean(l3.has_value());
    if (l3)
        l3->hashInto(fp);
    fp.u64(l2_prefetch_degree);
}

CacheHierarchy::CacheHierarchy(const CacheHierarchyConfig &config)
    : l1i_cache_(config.l1i),
      l1d_cache_(config.l1d),
      l2_cache_(config.l2),
      prefetch_degree_(config.l2_prefetch_degree)
{
    if (config.l3)
        l3_cache_ = std::make_unique<Cache>(*config.l3);
}

void
CacheHierarchy::prefetchAfterMiss(std::uint64_t address)
{
    std::uint64_t line = l2_cache_.config().line_bytes;
    for (unsigned i = 1; i <= prefetch_degree_; ++i) {
        std::uint64_t target = address + i * line;
        if (l2_cache_.contains(target))
            continue;
        // Prefetches install through L3 into L2 but are not demand
        // traffic: they touch no SideCounters.
        if (l3_cache_)
            l3_cache_->access(target);
        l2_cache_.access(target);
        ++prefetch_fills_;
        prefetched_lines_.insert(target / line);
    }
    // Bound the bookkeeping; a full flush only means streams must
    // re-confirm, which costs one demand miss each.
    if (prefetched_lines_.size() > 65536)
        prefetched_lines_.clear();
}

ServiceLevel
CacheHierarchy::accessCommon(Cache &l1, SideCounters &l1_stats,
                             SideCounters &l2_side, std::uint64_t address,
                             bool allow_prefetch)
{
    ++l1_stats.accesses;
    if (l1.access(address))
        return ServiceLevel::L1;
    ++l1_stats.misses;

    ++l2_side.accesses;
    if (l2_cache_.access(address)) {
        if (allow_prefetch && prefetch_degree_ > 0) {
            // Consuming a prefetched line confirms the stream: fetch
            // the next window so the prefetcher stays ahead.
            std::uint64_t line_addr =
                address / l2_cache_.config().line_bytes;
            auto it = prefetched_lines_.find(line_addr);
            if (it != prefetched_lines_.end()) {
                prefetched_lines_.erase(it);
                prefetchAfterMiss(address);
            }
        }
        return ServiceLevel::L2;
    }
    ++l2_side.misses;
    if (allow_prefetch && prefetch_degree_ > 0)
        prefetchAfterMiss(address);

    if (!l3_cache_) {
        // Two-level machine: an L2 miss goes to memory; the "L3"
        // counters then mirror the L2 miss stream so last-level MPKI
        // remains well-defined for the metric set.
        ++l3_stats_.accesses;
        ++l3_stats_.misses;
        return ServiceLevel::Memory;
    }

    ++l3_stats_.accesses;
    if (l3_cache_->access(address))
        return ServiceLevel::L3;
    ++l3_stats_.misses;
    return ServiceLevel::Memory;
}

ServiceLevel
CacheHierarchy::accessData(std::uint64_t address)
{
    return accessCommon(l1d_cache_, l1d_stats_, l2d_stats_, address,
                        /*allow_prefetch=*/true);
}

ServiceLevel
CacheHierarchy::accessInstr(std::uint64_t pc)
{
    // The modelled prefetcher is a data-stream prefetcher.
    return accessCommon(l1i_cache_, l1i_stats_, l2i_stats_, pc,
                        /*allow_prefetch=*/false);
}

void
CacheHierarchy::reset()
{
    l1i_cache_.reset();
    l1d_cache_.reset();
    l2_cache_.reset();
    if (l3_cache_)
        l3_cache_->reset();
    l1i_stats_ = SideCounters{};
    l1d_stats_ = SideCounters{};
    l2i_stats_ = SideCounters{};
    l2d_stats_ = SideCounters{};
    l3_stats_ = SideCounters{};
    prefetch_fills_ = 0;
    prefetched_lines_.clear();
}

} // namespace uarch
} // namespace speclens
