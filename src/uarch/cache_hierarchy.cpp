/**
 * @file
 * Cache hierarchy implementation: prefetch engines, usefulness
 * accounting and the DRAM hookup.  The hot L1/L2/L3 fallthrough lives
 * in the header; everything here runs at most once per L2 demand
 * access with the prefetcher on.
 */

#include "cache_hierarchy.h"

#include <algorithm>

namespace speclens {
namespace uarch {

std::string
prefetcherKindName(PrefetcherKind kind)
{
    switch (kind) {
      case PrefetcherKind::NextLine: return "next-line";
      case PrefetcherKind::Stride: return "stride";
      case PrefetcherKind::Stream: return "stream";
    }
    return "unknown";
}

void
CacheHierarchyConfig::hashInto(stats::Fingerprinter &fp) const
{
    fp.tag("caches");
    l1i.hashInto(fp);
    l1d.hashInto(fp);
    l2.hashInto(fp);
    fp.boolean(l3.has_value());
    if (l3)
        l3->hashInto(fp);
    fp.u64(l2_prefetch_degree);
    fp.u64(static_cast<std::uint64_t>(prefetcher));
    fp.boolean(dram.has_value());
    if (dram)
        dram->hashInto(fp);
}

CacheHierarchy::CacheHierarchy(const CacheHierarchyConfig &config)
    : l1i_cache_(config.l1i),
      l1d_cache_(config.l1d),
      l2_cache_(config.l2),
      prefetch_degree_(config.l2_prefetch_degree),
      prefetcher_kind_(config.prefetcher)
{
    if (config.l3)
        l3_cache_ = std::make_unique<Cache>(*config.l3);
    if (prefetch_degree_ != 0) {
        l2_prefetch_bits_.assign(l2_cache_.config().sets() *
                                     l2_cache_.config().associativity,
                                 0);
        if (prefetcher_kind_ == PrefetcherKind::Stride)
            stride_table_.assign(kStrideEntries, StrideEntry{});
    }
    if (config.dram)
        dram_ = std::make_unique<DramModel>(*config.dram);
}

void
CacheHierarchy::noteDemandFill()
{
    std::size_t slot = l2_cache_.lastIndex();
    if (l2_prefetch_bits_[slot]) {
        l2_prefetch_bits_[slot] = 0;
        ++prefetch_evicted_unused_;
    }
}

void
CacheHierarchy::issuePrefetch(std::uint64_t target)
{
    if (l2_cache_.contains(target))
        return;
    // Prefetches install through L3 (and DRAM on an L3 miss) into L2
    // but are not demand traffic: they touch no SideCounters.
    bool l3_hit = l3_cache_ && l3_cache_->access(target);
    if (!l3_hit && dram_)
        dram_->access(target);
    l2_cache_.access(target);
    std::size_t slot = l2_cache_.lastIndex();
    if (l2_prefetch_bits_[slot])
        ++prefetch_evicted_unused_; // overwrote an unconsumed prefetch
    l2_prefetch_bits_[slot] = 1;
    ++prefetch_fills_;
}

void
CacheHierarchy::prefetchWindow(std::uint64_t address)
{
    std::uint64_t line = l2_cache_.config().line_bytes;
    for (unsigned i = 1; i <= prefetch_degree_; ++i)
        issuePrefetch(address + i * line);
}

void
CacheHierarchy::trainStrideAndIssue(std::uint64_t address, std::uint64_t pc)
{
    std::uint64_t line_bytes = l2_cache_.config().line_bytes;
    std::uint64_t line = address / line_bytes;
    StrideEntry &entry = stride_table_[(pc >> 2) & (kStrideEntries - 1)];
    if (!entry.valid) {
        entry.valid = 1;
        entry.last_line = line;
        entry.delta = 0;
        entry.confidence = 0;
        return;
    }
    std::int64_t delta = static_cast<std::int64_t>(line - entry.last_line);
    if (delta == entry.delta) {
        if (entry.confidence < 3)
            ++entry.confidence;
    } else {
        entry.delta = delta;
        entry.confidence = 0;
    }
    entry.last_line = line;
    if (entry.confidence >= 2 && entry.delta != 0) {
        for (unsigned k = 1; k <= prefetch_degree_; ++k) {
            std::uint64_t target_line =
                line + static_cast<std::uint64_t>(
                           static_cast<std::int64_t>(k) * entry.delta);
            issuePrefetch(target_line * line_bytes);
        }
    }
}

void
CacheHierarchy::streamMiss(std::uint64_t line)
{
    for (StreamWindow &window : stream_windows_) {
        if (window.valid && line > window.last_line &&
            line - window.last_line <= kStreamConfirmDistance) {
            // Second miss just past a tracked window confirms an
            // ascending stream: run ahead of it.
            std::uint64_t line_bytes = l2_cache_.config().line_bytes;
            for (unsigned k = 1; k <= prefetch_degree_; ++k)
                issuePrefetch((line + k) * line_bytes);
            window.last_line = line + prefetch_degree_;
            return;
        }
    }
    stream_windows_[stream_next_] = StreamWindow{line, 1};
    stream_next_ = (stream_next_ + 1) % kStreamWindows;
}

void
CacheHierarchy::streamPrefetchedHit(std::uint64_t line)
{
    for (StreamWindow &window : stream_windows_) {
        if (window.valid && window.last_line >= line &&
            window.last_line - line < kStreamHitWindow) {
            // The stream is consuming what we fetched: extend it.
            std::uint64_t line_bytes = l2_cache_.config().line_bytes;
            for (unsigned k = 1; k <= prefetch_degree_; ++k)
                issuePrefetch((window.last_line + k) * line_bytes);
            window.last_line += prefetch_degree_;
            return;
        }
    }
}

void
CacheHierarchy::onL2DemandHit(std::uint64_t address, std::uint64_t pc)
{
    std::size_t slot = l2_cache_.lastIndex();
    bool was_prefetched = l2_prefetch_bits_[slot] != 0;
    if (was_prefetched) {
        l2_prefetch_bits_[slot] = 0;
        ++prefetch_useful_;
    }
    switch (prefetcher_kind_) {
      case PrefetcherKind::NextLine:
        // Consuming a prefetched line confirms the stream: fetch the
        // next window so the prefetcher stays ahead.
        if (was_prefetched)
            prefetchWindow(address);
        break;
      case PrefetcherKind::Stride:
        trainStrideAndIssue(address, pc);
        break;
      case PrefetcherKind::Stream:
        if (was_prefetched)
            streamPrefetchedHit(address / l2_cache_.config().line_bytes);
        break;
    }
}

void
CacheHierarchy::onL2DemandMiss(std::uint64_t address, std::uint64_t pc)
{
    // The demand fill from Cache::access landed at lastIndex(); account
    // a displaced prefetched line before prefetch issue moves the
    // index.
    noteDemandFill();
    switch (prefetcher_kind_) {
      case PrefetcherKind::NextLine:
        prefetchWindow(address);
        break;
      case PrefetcherKind::Stride:
        trainStrideAndIssue(address, pc);
        break;
      case PrefetcherKind::Stream:
        streamMiss(address / l2_cache_.config().line_bytes);
        break;
    }
}

void
CacheHierarchy::retireUnusedPrefetches()
{
    for (std::uint8_t &bit : l2_prefetch_bits_) {
        if (bit) {
            bit = 0;
            ++prefetch_evicted_unused_;
        }
    }
}

void
CacheHierarchy::reset()
{
    l1i_cache_.reset();
    l1d_cache_.reset();
    l2_cache_.reset();
    if (l3_cache_)
        l3_cache_->reset();
    l1i_stats_ = SideCounters{};
    l1d_stats_ = SideCounters{};
    l2i_stats_ = SideCounters{};
    l2d_stats_ = SideCounters{};
    l3_stats_ = SideCounters{};
    prefetch_fills_ = 0;
    prefetch_useful_ = 0;
    prefetch_evicted_unused_ = 0;
    std::fill(l2_prefetch_bits_.begin(), l2_prefetch_bits_.end(),
              static_cast<std::uint8_t>(0));
    std::fill(stride_table_.begin(), stride_table_.end(), StrideEntry{});
    stream_windows_.fill(StreamWindow{});
    stream_next_ = 0;
    if (dram_)
        dram_->reset();
}

} // namespace uarch
} // namespace speclens
