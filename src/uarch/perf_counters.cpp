/**
 * @file
 * Counter accumulation.
 */

#include "perf_counters.h"

namespace speclens {
namespace uarch {

PerfCounters &
PerfCounters::operator+=(const PerfCounters &rhs)
{
    instructions += rhs.instructions;
    loads += rhs.loads;
    stores += rhs.stores;
    branches += rhs.branches;
    taken_branches += rhs.taken_branches;
    fp_ops += rhs.fp_ops;
    simd_ops += rhs.simd_ops;
    kernel_instructions += rhs.kernel_instructions;
    l1d_accesses += rhs.l1d_accesses;
    l1d_misses += rhs.l1d_misses;
    l1i_accesses += rhs.l1i_accesses;
    l1i_misses += rhs.l1i_misses;
    l2d_accesses += rhs.l2d_accesses;
    l2d_misses += rhs.l2d_misses;
    l2i_accesses += rhs.l2i_accesses;
    l2i_misses += rhs.l2i_misses;
    l3_accesses += rhs.l3_accesses;
    l3_misses += rhs.l3_misses;
    dtlb_accesses += rhs.dtlb_accesses;
    dtlb_misses += rhs.dtlb_misses;
    itlb_accesses += rhs.itlb_accesses;
    itlb_misses += rhs.itlb_misses;
    l2tlb_misses += rhs.l2tlb_misses;
    page_walks += rhs.page_walks;
    branch_mispredictions += rhs.branch_mispredictions;
    prefetch_fills += rhs.prefetch_fills;
    prefetch_useful += rhs.prefetch_useful;
    prefetch_evicted_unused += rhs.prefetch_evicted_unused;
    way_pred_hits += rhs.way_pred_hits;
    way_pred_mispredicts += rhs.way_pred_mispredicts;
    dram_accesses += rhs.dram_accesses;
    dram_row_hits += rhs.dram_row_hits;
    dram_busy_cycles += rhs.dram_busy_cycles;
    dram_budget_cycles += rhs.dram_budget_cycles;
    return *this;
}

} // namespace uarch
} // namespace speclens
