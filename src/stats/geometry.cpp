/**
 * @file
 * 2-D geometry implementation.
 */

#include "geometry.h"

#include <algorithm>
#include <cmath>

namespace speclens {
namespace stats {

namespace {

double
cross(const Point2 &o, const Point2 &a, const Point2 &b)
{
    return (a.x - o.x) * (b.y - o.y) - (a.y - o.y) * (b.x - o.x);
}

} // namespace

std::vector<Point2>
convexHull(std::vector<Point2> points)
{
    std::sort(points.begin(), points.end(),
              [](const Point2 &a, const Point2 &b) {
                  return a.x < b.x || (a.x == b.x && a.y < b.y);
              });
    points.erase(std::unique(points.begin(), points.end(),
                             [](const Point2 &a, const Point2 &b) {
                                 return a.x == b.x && a.y == b.y;
                             }),
                 points.end());

    std::size_t n = points.size();
    if (n < 3)
        return points;

    std::vector<Point2> hull(2 * n);
    std::size_t k = 0;

    // Lower hull.
    for (std::size_t i = 0; i < n; ++i) {
        while (k >= 2 &&
               cross(hull[k - 2], hull[k - 1], points[i]) <= 0.0)
            --k;
        hull[k++] = points[i];
    }
    // Upper hull.
    for (std::size_t i = n - 1, t = k + 1; i-- > 0;) {
        while (k >= t &&
               cross(hull[k - 2], hull[k - 1], points[i]) <= 0.0)
            --k;
        hull[k++] = points[i];
    }

    hull.resize(k - 1); // last point repeats the first
    return hull;
}

double
polygonArea(const std::vector<Point2> &polygon)
{
    if (polygon.size() < 3)
        return 0.0;
    double acc = 0.0;
    for (std::size_t i = 0; i < polygon.size(); ++i) {
        const Point2 &a = polygon[i];
        const Point2 &b = polygon[(i + 1) % polygon.size()];
        acc += a.x * b.y - b.x * a.y;
    }
    return 0.5 * acc;
}

double
hullArea(const std::vector<Point2> &points)
{
    return std::fabs(polygonArea(convexHull(points)));
}

bool
pointInConvexPolygon(const Point2 &p, const std::vector<Point2> &hull)
{
    if (hull.empty())
        return false;
    if (hull.size() == 1)
        return p.x == hull[0].x && p.y == hull[0].y;
    if (hull.size() == 2) {
        // On-segment test with a small tolerance.
        double c = cross(hull[0], hull[1], p);
        if (std::fabs(c) > 1e-9)
            return false;
        double min_x = std::min(hull[0].x, hull[1].x);
        double max_x = std::max(hull[0].x, hull[1].x);
        double min_y = std::min(hull[0].y, hull[1].y);
        double max_y = std::max(hull[0].y, hull[1].y);
        return p.x >= min_x - 1e-9 && p.x <= max_x + 1e-9 &&
               p.y >= min_y - 1e-9 && p.y <= max_y + 1e-9;
    }
    for (std::size_t i = 0; i < hull.size(); ++i) {
        const Point2 &a = hull[i];
        const Point2 &b = hull[(i + 1) % hull.size()];
        if (cross(a, b, p) < -1e-9)
            return false;
    }
    return true;
}

} // namespace stats
} // namespace speclens
