/**
 * @file
 * Distance metric implementations.
 */

#include "distance.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace speclens {
namespace stats {

double
squaredEuclidean(const std::vector<double> &a, const std::vector<double> &b)
{
    if (a.size() != b.size())
        throw std::invalid_argument("squaredEuclidean: length mismatch");
    double acc = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        double d = a[i] - b[i];
        acc += d * d;
    }
    return acc;
}

double
distance(const std::vector<double> &a, const std::vector<double> &b,
         DistanceMetric metric)
{
    if (a.size() != b.size())
        throw std::invalid_argument("distance: length mismatch");

    switch (metric) {
      case DistanceMetric::Euclidean:
        return std::sqrt(squaredEuclidean(a, b));
      case DistanceMetric::Manhattan: {
        double acc = 0.0;
        for (std::size_t i = 0; i < a.size(); ++i)
            acc += std::fabs(a[i] - b[i]);
        return acc;
      }
      case DistanceMetric::Chebyshev: {
        double best = 0.0;
        for (std::size_t i = 0; i < a.size(); ++i)
            best = std::max(best, std::fabs(a[i] - b[i]));
        return best;
      }
    }
    throw std::invalid_argument("distance: unknown metric");
}

namespace {

/**
 * One distance over the raw rows.  Same accumulation order as the
 * vector-based distance() above, so results are bit-identical; the
 * contiguous pointer loops exist so the compiler can vectorize them
 * and so the O(n^2) pairwise kernel stops copying a row per pair.
 */
double
rowDistance(const double *a, const double *b, std::size_t dims,
            DistanceMetric metric)
{
    switch (metric) {
      case DistanceMetric::Euclidean: {
        double acc = 0.0;
        for (std::size_t k = 0; k < dims; ++k) {
            double d = a[k] - b[k];
            acc += d * d;
        }
        return std::sqrt(acc);
      }
      case DistanceMetric::Manhattan: {
        double acc = 0.0;
        for (std::size_t k = 0; k < dims; ++k)
            acc += std::fabs(a[k] - b[k]);
        return acc;
      }
      case DistanceMetric::Chebyshev: {
        double best = 0.0;
        for (std::size_t k = 0; k < dims; ++k)
            best = std::max(best, std::fabs(a[k] - b[k]));
        return best;
      }
    }
    throw std::invalid_argument("distance: unknown metric");
}

} // namespace

Matrix
pairwiseDistances(const Matrix &points, DistanceMetric metric)
{
    std::size_t n = points.rows();
    std::size_t dims = points.cols();
    Matrix out(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        const double *ri = points.rowPtr(i);
        for (std::size_t j = i + 1; j < n; ++j) {
            double d = rowDistance(ri, points.rowPtr(j), dims, metric);
            out(i, j) = d;
            out(j, i) = d;
        }
    }
    return out;
}

} // namespace stats
} // namespace speclens
