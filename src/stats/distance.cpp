/**
 * @file
 * Distance metric implementations.
 */

#include "distance.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace speclens {
namespace stats {

double
squaredEuclidean(const std::vector<double> &a, const std::vector<double> &b)
{
    if (a.size() != b.size())
        throw std::invalid_argument("squaredEuclidean: length mismatch");
    double acc = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        double d = a[i] - b[i];
        acc += d * d;
    }
    return acc;
}

double
distance(const std::vector<double> &a, const std::vector<double> &b,
         DistanceMetric metric)
{
    if (a.size() != b.size())
        throw std::invalid_argument("distance: length mismatch");

    switch (metric) {
      case DistanceMetric::Euclidean:
        return std::sqrt(squaredEuclidean(a, b));
      case DistanceMetric::Manhattan: {
        double acc = 0.0;
        for (std::size_t i = 0; i < a.size(); ++i)
            acc += std::fabs(a[i] - b[i]);
        return acc;
      }
      case DistanceMetric::Chebyshev: {
        double best = 0.0;
        for (std::size_t i = 0; i < a.size(); ++i)
            best = std::max(best, std::fabs(a[i] - b[i]));
        return best;
      }
    }
    throw std::invalid_argument("distance: unknown metric");
}

Matrix
pairwiseDistances(const Matrix &points, DistanceMetric metric)
{
    std::size_t n = points.rows();
    Matrix out(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        auto ri = points.row(i);
        for (std::size_t j = i + 1; j < n; ++j) {
            double d = distance(ri, points.row(j), metric);
            out(i, j) = d;
            out(j, i) = d;
        }
    }
    return out;
}

} // namespace stats
} // namespace speclens
