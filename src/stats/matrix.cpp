/**
 * @file
 * Implementation of the dense matrix type.
 */

#include "matrix.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace speclens {
namespace stats {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0)
{
}

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill)
{
}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows)
{
    rows_ = rows.size();
    cols_ = rows_ ? rows.begin()->size() : 0;
    data_.reserve(rows_ * cols_);
    for (const auto &r : rows) {
        if (r.size() != cols_)
            throw std::invalid_argument("Matrix: ragged initializer list");
        data_.insert(data_.end(), r.begin(), r.end());
    }
}

Matrix
Matrix::identity(std::size_t n)
{
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i)
        m(i, i) = 1.0;
    return m;
}

double &
Matrix::operator()(std::size_t r, std::size_t c)
{
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
}

double
Matrix::operator()(std::size_t r, std::size_t c) const
{
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
}

std::vector<double>
Matrix::row(std::size_t r) const
{
    assert(r < rows_);
    return std::vector<double>(data_.begin() + r * cols_,
                               data_.begin() + (r + 1) * cols_);
}

std::vector<double>
Matrix::col(std::size_t c) const
{
    assert(c < cols_);
    std::vector<double> out(rows_);
    for (std::size_t r = 0; r < rows_; ++r)
        out[r] = data_[r * cols_ + c];
    return out;
}

void
Matrix::setRow(std::size_t r, const std::vector<double> &values)
{
    if (values.size() != cols_)
        throw std::invalid_argument("Matrix::setRow: length mismatch");
    assert(r < rows_);
    std::copy(values.begin(), values.end(), data_.begin() + r * cols_);
}

void
Matrix::setCol(std::size_t c, const std::vector<double> &values)
{
    if (values.size() != rows_)
        throw std::invalid_argument("Matrix::setCol: length mismatch");
    assert(c < cols_);
    for (std::size_t r = 0; r < rows_; ++r)
        data_[r * cols_ + c] = values[r];
}

Matrix
Matrix::transposed() const
{
    Matrix out(cols_, rows_);
    for (std::size_t r = 0; r < rows_; ++r)
        for (std::size_t c = 0; c < cols_; ++c)
            out(c, r) = (*this)(r, c);
    return out;
}

Matrix
Matrix::multiply(const Matrix &rhs) const
{
    if (cols_ != rhs.rows_)
        throw std::invalid_argument("Matrix::multiply: dimension mismatch");
    Matrix out(rows_, rhs.cols_);
    for (std::size_t i = 0; i < rows_; ++i) {
        for (std::size_t k = 0; k < cols_; ++k) {
            double a = (*this)(i, k);
            if (a == 0.0)
                continue;
            for (std::size_t j = 0; j < rhs.cols_; ++j)
                out(i, j) += a * rhs(k, j);
        }
    }
    return out;
}

std::vector<double>
Matrix::multiply(const std::vector<double> &v) const
{
    if (v.size() != cols_)
        throw std::invalid_argument("Matrix::multiply: vector length");
    std::vector<double> out(rows_, 0.0);
    for (std::size_t r = 0; r < rows_; ++r) {
        double acc = 0.0;
        for (std::size_t c = 0; c < cols_; ++c)
            acc += (*this)(r, c) * v[c];
        out[r] = acc;
    }
    return out;
}

Matrix
Matrix::add(const Matrix &rhs) const
{
    if (rows_ != rhs.rows_ || cols_ != rhs.cols_)
        throw std::invalid_argument("Matrix::add: shape mismatch");
    Matrix out = *this;
    for (std::size_t i = 0; i < data_.size(); ++i)
        out.data_[i] += rhs.data_[i];
    return out;
}

Matrix
Matrix::subtract(const Matrix &rhs) const
{
    if (rows_ != rhs.rows_ || cols_ != rhs.cols_)
        throw std::invalid_argument("Matrix::subtract: shape mismatch");
    Matrix out = *this;
    for (std::size_t i = 0; i < data_.size(); ++i)
        out.data_[i] -= rhs.data_[i];
    return out;
}

Matrix
Matrix::scaled(double factor) const
{
    Matrix out = *this;
    for (double &v : out.data_)
        v *= factor;
    return out;
}

Matrix
Matrix::selectRows(const std::vector<std::size_t> &indices) const
{
    Matrix out(indices.size(), cols_);
    for (std::size_t i = 0; i < indices.size(); ++i) {
        if (indices[i] >= rows_)
            throw std::out_of_range("Matrix::selectRows: index");
        out.setRow(i, row(indices[i]));
    }
    return out;
}

Matrix
Matrix::selectCols(const std::vector<std::size_t> &indices) const
{
    Matrix out(rows_, indices.size());
    for (std::size_t j = 0; j < indices.size(); ++j) {
        if (indices[j] >= cols_)
            throw std::out_of_range("Matrix::selectCols: index");
        out.setCol(j, col(indices[j]));
    }
    return out;
}

bool
Matrix::approxEquals(const Matrix &rhs, double tol) const
{
    if (rows_ != rhs.rows_ || cols_ != rhs.cols_)
        return false;
    for (std::size_t i = 0; i < data_.size(); ++i)
        if (std::fabs(data_[i] - rhs.data_[i]) > tol)
            return false;
    return true;
}

double
Matrix::frobeniusNorm() const
{
    double acc = 0.0;
    for (double v : data_)
        acc += v * v;
    return std::sqrt(acc);
}

double
Matrix::maxOffDiagonal() const
{
    if (rows_ != cols_)
        throw std::invalid_argument("Matrix::maxOffDiagonal: not square");
    double best = 0.0;
    for (std::size_t r = 0; r < rows_; ++r)
        for (std::size_t c = 0; c < cols_; ++c)
            if (r != c)
                best = std::max(best, std::fabs((*this)(r, c)));
    return best;
}

bool
Matrix::isSymmetric(double tol) const
{
    if (rows_ != cols_)
        return false;
    for (std::size_t r = 0; r < rows_; ++r)
        for (std::size_t c = r + 1; c < cols_; ++c)
            if (std::fabs((*this)(r, c) - (*this)(c, r)) > tol)
                return false;
    return true;
}

std::string
Matrix::toString(int precision) const
{
    std::ostringstream os;
    os.precision(precision);
    os << std::fixed;
    for (std::size_t r = 0; r < rows_; ++r) {
        os << "[";
        for (std::size_t c = 0; c < cols_; ++c)
            os << (c ? ", " : " ") << (*this)(r, c);
        os << " ]\n";
    }
    return os.str();
}

} // namespace stats
} // namespace speclens
