/**
 * @file
 * Cyclic Jacobi eigensolver implementation.
 */

#include "eigen.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace speclens {
namespace stats {

namespace {

/**
 * Apply a Jacobi rotation eliminating element (p, q) of @p a, updating
 * the eigenvector accumulator @p v.
 */
void
rotate(Matrix &a, Matrix &v, std::size_t p, std::size_t q)
{
    double apq = a(p, q);
    if (apq == 0.0)
        return;

    double app = a(p, p);
    double aqq = a(q, q);
    double theta = (aqq - app) / (2.0 * apq);
    // Choose the smaller-magnitude root for numerical stability.
    double t = (theta >= 0.0 ? 1.0 : -1.0) /
               (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
    double c = 1.0 / std::sqrt(t * t + 1.0);
    double s = t * c;
    std::size_t n = a.rows();

    for (std::size_t k = 0; k < n; ++k) {
        double akp = a(k, p);
        double akq = a(k, q);
        a(k, p) = c * akp - s * akq;
        a(k, q) = s * akp + c * akq;
    }
    for (std::size_t k = 0; k < n; ++k) {
        double apk = a(p, k);
        double aqk = a(q, k);
        a(p, k) = c * apk - s * aqk;
        a(q, k) = s * apk + c * aqk;
    }
    for (std::size_t k = 0; k < n; ++k) {
        double vkp = v(k, p);
        double vkq = v(k, q);
        v(k, p) = c * vkp - s * vkq;
        v(k, q) = s * vkp + c * vkq;
    }
}

} // namespace

EigenDecomposition
symmetricEigen(const Matrix &m, double tol, int max_sweeps)
{
    if (!m.isSymmetric(1e-8))
        throw std::invalid_argument("symmetricEigen: matrix not symmetric");

    std::size_t n = m.rows();
    Matrix a = m;
    Matrix v = Matrix::identity(n);

    // The convergence threshold is scaled by the matrix magnitude so
    // the solver behaves sensibly for matrices far from unit norm.
    double scale = std::max(1.0, a.frobeniusNorm());

    int sweep = 0;
    while (a.maxOffDiagonal() > tol * scale) {
        if (++sweep > max_sweeps)
            throw std::runtime_error("symmetricEigen: did not converge");
        for (std::size_t p = 0; p + 1 < n; ++p)
            for (std::size_t q = p + 1; q < n; ++q)
                rotate(a, v, p, q);
    }

    // Extract the diagonal and sort descending, permuting eigenvectors
    // to match.
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t x, std::size_t y) {
                         return a(x, x) > a(y, y);
                     });

    EigenDecomposition out;
    out.values.resize(n);
    out.vectors = Matrix(n, n);
    for (std::size_t k = 0; k < n; ++k) {
        out.values[k] = a(order[k], order[k]);
        for (std::size_t r = 0; r < n; ++r)
            out.vectors(r, k) = v(r, order[k]);
    }
    return out;
}

} // namespace stats
} // namespace speclens
