/**
 * @file
 * Cyclic Jacobi eigensolver implementation.
 */

#include "eigen.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace speclens {
namespace stats {

namespace {

/**
 * Apply a Jacobi rotation eliminating element (p, q) of @p a, updating
 * the eigenvector accumulator @p vt, which is stored TRANSPOSED
 * (vt(j, k) = V(k, j)) so that the rotation touches two contiguous
 * rows instead of two strided columns.  Every floating-point operation
 * and its order match the textbook column-wise formulation exactly, so
 * the decomposition is bit-identical; only the memory walk changed, to
 * give the autovectorizer contiguous double loops.
 */
void
rotate(Matrix &a, Matrix &vt, std::size_t p, std::size_t q)
{
    double apq = a(p, q);
    if (apq == 0.0)
        return;

    double app = a(p, p);
    double aqq = a(q, q);
    double theta = (aqq - app) / (2.0 * apq);
    // Choose the smaller-magnitude root for numerical stability.
    double t = (theta >= 0.0 ? 1.0 : -1.0) /
               (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
    double c = 1.0 / std::sqrt(t * t + 1.0);
    double s = t * c;
    std::size_t n = a.rows();

    // Column update of a: stride-n walk over rows, two lanes at once.
    double *colp = a.rowPtr(0) + p;
    double *colq = a.rowPtr(0) + q;
    for (std::size_t k = 0; k < n; ++k) {
        double akp = colp[k * n];
        double akq = colq[k * n];
        colp[k * n] = c * akp - s * akq;
        colq[k * n] = s * akp + c * akq;
    }
    // Row update of a: two contiguous rows.
    double *rowp = a.rowPtr(p);
    double *rowq = a.rowPtr(q);
    for (std::size_t k = 0; k < n; ++k) {
        double apk = rowp[k];
        double aqk = rowq[k];
        rowp[k] = c * apk - s * aqk;
        rowq[k] = s * apk + c * aqk;
    }
    // Accumulator update: thanks to the transposed layout this is two
    // contiguous rows as well, not two strided columns.
    double *vp = vt.rowPtr(p);
    double *vq = vt.rowPtr(q);
    for (std::size_t k = 0; k < n; ++k) {
        double vkp = vp[k];
        double vkq = vq[k];
        vp[k] = c * vkp - s * vkq;
        vq[k] = s * vkp + c * vkq;
    }
}

} // namespace

EigenDecomposition
symmetricEigen(const Matrix &m, double tol, int max_sweeps)
{
    if (!m.isSymmetric(1e-8))
        throw std::invalid_argument("symmetricEigen: matrix not symmetric");

    std::size_t n = m.rows();
    Matrix a = m;
    // Transposed accumulator; identity is its own transpose.
    Matrix vt = Matrix::identity(n);

    // The convergence threshold is scaled by the matrix magnitude so
    // the solver behaves sensibly for matrices far from unit norm.
    double scale = std::max(1.0, a.frobeniusNorm());

    int sweep = 0;
    while (a.maxOffDiagonal() > tol * scale) {
        if (++sweep > max_sweeps)
            throw std::runtime_error("symmetricEigen: did not converge");
        for (std::size_t p = 0; p + 1 < n; ++p)
            for (std::size_t q = p + 1; q < n; ++q)
                rotate(a, vt, p, q);
    }

    // Extract the diagonal and sort descending, permuting eigenvectors
    // to match.
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t x, std::size_t y) {
                         return a(x, x) > a(y, y);
                     });

    EigenDecomposition out;
    out.values.resize(n);
    out.vectors = Matrix(n, n);
    for (std::size_t k = 0; k < n; ++k) {
        out.values[k] = a(order[k], order[k]);
        // vt row order[k] is eigenvector column order[k] of V.
        const double *vrow = vt.rowPtr(order[k]);
        for (std::size_t r = 0; r < n; ++r)
            out.vectors(r, k) = vrow[r];
    }
    return out;
}

} // namespace stats
} // namespace speclens
