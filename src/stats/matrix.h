/**
 * @file
 * Dense row-major matrix used throughout the statistics pipeline.
 *
 * The analyses in this toolkit operate on small matrices (at most a few
 * hundred benchmarks by a few hundred metrics), so the implementation
 * favours clarity and strong invariant checking over blocked/vectorised
 * kernels.  All element access is bounds-checked in debug builds.
 */

#ifndef SPECLENS_STATS_MATRIX_H
#define SPECLENS_STATS_MATRIX_H

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

namespace speclens {
namespace stats {

/**
 * Dense row-major matrix of doubles.
 *
 * Rows conventionally index observations (benchmarks) and columns index
 * features (performance metrics).
 */
class Matrix
{
  public:
    /** Empty 0x0 matrix. */
    Matrix() = default;

    /** rows x cols matrix, zero-initialised. */
    Matrix(std::size_t rows, std::size_t cols);

    /** rows x cols matrix with every element set to @p fill. */
    Matrix(std::size_t rows, std::size_t cols, double fill);

    /**
     * Construct from nested initializer lists, e.g.
     * `Matrix m{{1.0, 2.0}, {3.0, 4.0}};`.  All rows must have equal
     * length.
     */
    Matrix(std::initializer_list<std::initializer_list<double>> rows);

    /** Identity matrix of dimension n. */
    static Matrix identity(std::size_t n);

    /** Number of rows. */
    std::size_t rows() const { return rows_; }

    /** Number of columns. */
    std::size_t cols() const { return cols_; }

    /** True when the matrix has no elements. */
    bool empty() const { return data_.empty(); }

    /** Element access (bounds-checked via assert in debug builds). */
    double &operator()(std::size_t r, std::size_t c);

    /** Element access, const overload. */
    double operator()(std::size_t r, std::size_t c) const;

    /** Copy of row @p r as a vector. */
    std::vector<double> row(std::size_t r) const;

    /** Copy of column @p c as a vector. */
    std::vector<double> col(std::size_t c) const;

    /** Overwrite row @p r.  The vector length must equal cols(). */
    void setRow(std::size_t r, const std::vector<double> &values);

    /** Overwrite column @p c.  The vector length must equal rows(). */
    void setCol(std::size_t c, const std::vector<double> &values);

    /** Transposed copy. */
    Matrix transposed() const;

    /** Matrix product this * rhs.  Inner dimensions must agree. */
    Matrix multiply(const Matrix &rhs) const;

    /** Matrix-vector product.  v.size() must equal cols(). */
    std::vector<double> multiply(const std::vector<double> &v) const;

    /** Elementwise sum.  Shapes must match. */
    Matrix add(const Matrix &rhs) const;

    /** Elementwise difference.  Shapes must match. */
    Matrix subtract(const Matrix &rhs) const;

    /** Copy scaled by a scalar. */
    Matrix scaled(double factor) const;

    /**
     * Submatrix consisting of the given rows (in the given order).
     * Row indices must be in range.
     */
    Matrix selectRows(const std::vector<std::size_t> &indices) const;

    /**
     * Submatrix consisting of the given columns (in the given order).
     * Column indices must be in range.
     */
    Matrix selectCols(const std::vector<std::size_t> &indices) const;

    /** True when shapes match and all elements differ by <= tol. */
    bool approxEquals(const Matrix &rhs, double tol = 1e-9) const;

    /** Frobenius norm (sqrt of sum of squared elements). */
    double frobeniusNorm() const;

    /** Largest absolute off-diagonal element (square matrices only). */
    double maxOffDiagonal() const;

    /** True when the matrix is square and symmetric to within tol. */
    bool isSymmetric(double tol = 1e-9) const;

    /** Human-readable rendering, mainly for test failure messages. */
    std::string toString(int precision = 4) const;

    /** Raw storage, row-major.  Exposed for tests and serialisation. */
    const std::vector<double> &data() const { return data_; }

    /**
     * Pointer to the start of row @p r in the row-major storage.  The
     * compute kernels (pairwise distances, Jacobi rotations, z-score
     * passes) iterate rows through this instead of the row() copy, so
     * their inner loops run over contiguous memory the autovectorizer
     * can handle.
     */
    const double *rowPtr(std::size_t r) const
    {
        return data_.data() + r * cols_;
    }

    /** Mutable overload of rowPtr(). */
    double *rowPtr(std::size_t r) { return data_.data() + r * cols_; }

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<double> data_;
};

} // namespace stats
} // namespace speclens

#endif // SPECLENS_STATS_MATRIX_H
