/**
 * @file
 * K-means clustering and silhouette scoring.
 *
 * The paper uses hierarchical clustering; k-means is the standard
 * alternative in the workload-similarity literature (Eeckhout et al.,
 * Phansalkar et al. compare both).  SpecLens provides it for the
 * methodology-ablation benches, together with silhouette scores to
 * compare clustering quality across methods and cluster counts.
 */

#ifndef SPECLENS_STATS_KMEANS_H
#define SPECLENS_STATS_KMEANS_H

#include <cstdint>
#include <vector>

#include "matrix.h"

namespace speclens {
namespace stats {

/** K-means clustering result. */
struct KmeansResult
{
    /** Cluster index per observation, in [0, k). */
    std::vector<std::size_t> assignment;

    /** Cluster centroids (k rows). */
    Matrix centroids;

    /** Sum of squared distances to assigned centroids. */
    double inertia = 0.0;

    /** Lloyd iterations executed. */
    int iterations = 0;

    /** Observations of cluster @p c, ascending. */
    std::vector<std::size_t> members(std::size_t c) const;
};

/**
 * Lloyd's k-means with k-means++ seeding (deterministic in @p seed).
 *
 * @param points Observations x dimensions.
 * @param k Number of clusters, 1 <= k <= points.rows().
 * @param seed Seeding RNG seed.
 * @param max_iterations Upper bound on Lloyd iterations.
 * @throws std::invalid_argument for degenerate input.
 */
KmeansResult kmeans(const Matrix &points, std::size_t k,
                    std::uint64_t seed = 1, int max_iterations = 100);

/**
 * Mean silhouette coefficient of a clustering, in [-1, 1]; larger is
 * better-separated.  Observations in singleton clusters contribute 0
 * (the standard convention).
 *
 * @param points Observations x dimensions.
 * @param assignment Cluster index per observation.
 */
double silhouetteScore(const Matrix &points,
                       const std::vector<std::size_t> &assignment);

} // namespace stats
} // namespace speclens

#endif // SPECLENS_STATS_KMEANS_H
