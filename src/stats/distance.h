/**
 * @file
 * Distance metrics over feature vectors.
 *
 * The paper measures benchmark similarity as the Euclidean distance
 * between PCA-space coordinates (Section III).  Alternative metrics are
 * provided for the methodology-ablation benchmarks.
 */

#ifndef SPECLENS_STATS_DISTANCE_H
#define SPECLENS_STATS_DISTANCE_H

#include <vector>

#include "matrix.h"

namespace speclens {
namespace stats {

/** Supported point-to-point distance metrics. */
enum class DistanceMetric {
    Euclidean, //!< L2 distance; the paper's choice.
    Manhattan, //!< L1 distance.
    Chebyshev, //!< L-infinity distance.
};

/** Distance between two equal-length vectors under @p metric. */
double distance(const std::vector<double> &a, const std::vector<double> &b,
                DistanceMetric metric = DistanceMetric::Euclidean);

/** Squared Euclidean distance (no sqrt; used by Ward linkage). */
double squaredEuclidean(const std::vector<double> &a,
                        const std::vector<double> &b);

/**
 * Symmetric pairwise distance matrix between the rows of @p points.
 * Entry (i, j) is the distance between row i and row j.
 */
Matrix pairwiseDistances(const Matrix &points,
                         DistanceMetric metric = DistanceMetric::Euclidean);

} // namespace stats
} // namespace speclens

#endif // SPECLENS_STATS_DISTANCE_H
