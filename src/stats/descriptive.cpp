/**
 * @file
 * Implementation of descriptive statistics helpers.
 */

#include "descriptive.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace speclens {
namespace stats {

double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = std::accumulate(values.begin(), values.end(), 0.0);
    return sum / static_cast<double>(values.size());
}

double
variance(const std::vector<double> &values)
{
    if (values.size() < 2)
        return 0.0;
    double m = mean(values);
    double acc = 0.0;
    for (double v : values)
        acc += (v - m) * (v - m);
    return acc / static_cast<double>(values.size() - 1);
}

double
stddev(const std::vector<double> &values)
{
    return std::sqrt(variance(values));
}

double
geometricMean(const std::vector<double> &values)
{
    if (values.empty())
        throw std::invalid_argument("geometricMean: empty input");
    double log_sum = 0.0;
    for (double v : values) {
        if (v <= 0.0)
            throw std::invalid_argument("geometricMean: non-positive value");
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

double
minValue(const std::vector<double> &values)
{
    if (values.empty())
        throw std::invalid_argument("minValue: empty input");
    return *std::min_element(values.begin(), values.end());
}

double
maxValue(const std::vector<double> &values)
{
    if (values.empty())
        throw std::invalid_argument("maxValue: empty input");
    return *std::max_element(values.begin(), values.end());
}

double
median(std::vector<double> values)
{
    if (values.empty())
        throw std::invalid_argument("median: empty input");
    std::sort(values.begin(), values.end());
    std::size_t n = values.size();
    if (n % 2 == 1)
        return values[n / 2];
    return 0.5 * (values[n / 2 - 1] + values[n / 2]);
}

std::vector<double>
ranks(const std::vector<double> &values)
{
    std::size_t n = values.size();
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                         return values[a] < values[b];
                     });

    std::vector<double> out(n, 0.0);
    std::size_t i = 0;
    while (i < n) {
        // Find the run of tied values and assign each the average rank.
        std::size_t j = i;
        while (j + 1 < n && values[order[j + 1]] == values[order[i]])
            ++j;
        double avg_rank = 0.5 * static_cast<double>(i + j) + 1.0;
        for (std::size_t k = i; k <= j; ++k)
            out[order[k]] = avg_rank;
        i = j + 1;
    }
    return out;
}

double
pearson(const std::vector<double> &a, const std::vector<double> &b)
{
    if (a.size() != b.size())
        throw std::invalid_argument("pearson: length mismatch");
    if (a.size() < 2)
        throw std::invalid_argument("pearson: need at least two points");
    double ma = mean(a), mb = mean(b);
    double cov = 0.0, va = 0.0, vb = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        double da = a[i] - ma, db = b[i] - mb;
        cov += da * db;
        va += da * da;
        vb += db * db;
    }
    if (va == 0.0 || vb == 0.0)
        return 0.0;
    return cov / std::sqrt(va * vb);
}

double
spearman(const std::vector<double> &a, const std::vector<double> &b)
{
    return pearson(ranks(a), ranks(b));
}

double
relativeError(double estimate, double reference)
{
    if (reference == 0.0)
        throw std::invalid_argument("relativeError: zero reference");
    return std::fabs(estimate - reference) / std::fabs(reference);
}

} // namespace stats
} // namespace speclens
