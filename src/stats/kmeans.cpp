/**
 * @file
 * K-means and silhouette implementation.
 */

#include "kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "distance.h"
#include "rng.h"

namespace speclens {
namespace stats {

std::vector<std::size_t>
KmeansResult::members(std::size_t c) const
{
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < assignment.size(); ++i)
        if (assignment[i] == c)
            out.push_back(i);
    return out;
}

namespace {

/** Squared distance from a row of @p points to a row of @p centroids. */
double
squaredTo(const Matrix &points, std::size_t row, const Matrix &centroids,
          std::size_t centroid)
{
    double acc = 0.0;
    for (std::size_t d = 0; d < points.cols(); ++d) {
        double diff = points(row, d) - centroids(centroid, d);
        acc += diff * diff;
    }
    return acc;
}

/** k-means++ seeding: spread initial centroids by D^2 sampling. */
Matrix
seedCentroids(const Matrix &points, std::size_t k, Rng &rng)
{
    std::size_t n = points.rows();
    Matrix centroids(k, points.cols());
    std::size_t first = static_cast<std::size_t>(rng.below(n));
    centroids.setRow(0, points.row(first));

    std::vector<double> best_sq(n,
                                std::numeric_limits<double>::infinity());
    for (std::size_t c = 1; c < k; ++c) {
        double total = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            best_sq[i] = std::min(best_sq[i],
                                  squaredTo(points, i, centroids, c - 1));
            total += best_sq[i];
        }
        std::size_t chosen = 0;
        if (total > 0.0) {
            double target = rng.uniform() * total;
            double acc = 0.0;
            for (std::size_t i = 0; i < n; ++i) {
                acc += best_sq[i];
                if (acc >= target) {
                    chosen = i;
                    break;
                }
            }
        } else {
            // All points coincide with existing centroids.
            chosen = static_cast<std::size_t>(rng.below(n));
        }
        centroids.setRow(c, points.row(chosen));
    }
    return centroids;
}

} // namespace

KmeansResult
kmeans(const Matrix &points, std::size_t k, std::uint64_t seed,
       int max_iterations)
{
    std::size_t n = points.rows();
    if (n == 0 || k < 1 || k > n)
        throw std::invalid_argument("kmeans: bad k or empty input");

    Rng rng(seed);
    KmeansResult result;
    result.centroids = seedCentroids(points, k, rng);
    result.assignment.assign(n, 0);

    for (result.iterations = 0; result.iterations < max_iterations;
         ++result.iterations) {
        // Assignment step.
        bool changed = false;
        for (std::size_t i = 0; i < n; ++i) {
            std::size_t best = 0;
            double best_sq = squaredTo(points, i, result.centroids, 0);
            for (std::size_t c = 1; c < k; ++c) {
                double sq = squaredTo(points, i, result.centroids, c);
                if (sq < best_sq) {
                    best_sq = sq;
                    best = c;
                }
            }
            if (result.assignment[i] != best) {
                result.assignment[i] = best;
                changed = true;
            }
        }
        if (!changed && result.iterations > 0)
            break;

        // Update step; empty clusters are re-seeded from the point
        // furthest from its centroid, the standard repair.
        Matrix sums(k, points.cols());
        std::vector<std::size_t> counts(k, 0);
        for (std::size_t i = 0; i < n; ++i) {
            ++counts[result.assignment[i]];
            for (std::size_t d = 0; d < points.cols(); ++d)
                sums(result.assignment[i], d) += points(i, d);
        }
        for (std::size_t c = 0; c < k; ++c) {
            if (counts[c] == 0) {
                std::size_t worst = 0;
                double worst_sq = -1.0;
                for (std::size_t i = 0; i < n; ++i) {
                    double sq = squaredTo(points, i, result.centroids,
                                          result.assignment[i]);
                    if (sq > worst_sq) {
                        worst_sq = sq;
                        worst = i;
                    }
                }
                result.centroids.setRow(c, points.row(worst));
                continue;
            }
            for (std::size_t d = 0; d < points.cols(); ++d)
                result.centroids(c, d) =
                    sums(c, d) / static_cast<double>(counts[c]);
        }
    }

    result.inertia = 0.0;
    for (std::size_t i = 0; i < n; ++i)
        result.inertia +=
            squaredTo(points, i, result.centroids, result.assignment[i]);
    return result;
}

double
silhouetteScore(const Matrix &points,
                const std::vector<std::size_t> &assignment)
{
    std::size_t n = points.rows();
    if (assignment.size() != n)
        throw std::invalid_argument("silhouetteScore: length mismatch");
    if (n < 2)
        return 0.0;

    std::size_t k = 0;
    for (std::size_t c : assignment)
        k = std::max(k, c + 1);

    Matrix d = pairwiseDistances(points);
    std::vector<std::size_t> sizes(k, 0);
    for (std::size_t c : assignment)
        ++sizes[c];

    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        std::size_t own = assignment[i];
        if (sizes[own] <= 1)
            continue; // singleton contributes 0

        // a(i): mean distance within the own cluster.
        // b(i): smallest mean distance to another cluster.
        std::vector<double> sum_to(k, 0.0);
        for (std::size_t j = 0; j < n; ++j)
            if (j != i)
                sum_to[assignment[j]] += d(i, j);

        double a = sum_to[own] / static_cast<double>(sizes[own] - 1);
        double b = std::numeric_limits<double>::infinity();
        for (std::size_t c = 0; c < k; ++c) {
            if (c == own || sizes[c] == 0)
                continue;
            b = std::min(b, sum_to[c] / static_cast<double>(sizes[c]));
        }
        if (std::isinf(b))
            continue; // only one non-empty cluster
        double denom = std::max(a, b);
        if (denom > 0.0)
            total += (b - a) / denom;
    }
    return total / static_cast<double>(n);
}

} // namespace stats
} // namespace speclens
