/**
 * @file
 * Feature normalization for the similarity pipeline.
 *
 * Performance metrics live on wildly different scales (MPKI in units,
 * instruction-mix fractions in [0, 1], power in watts).  PCA on raw
 * metrics would be dominated by whichever metric happens to have the
 * largest numeric range, so the paper's methodology — like the CPU2006
 * analysis it follows (Phansalkar et al., ISCA'07) — standardises each
 * metric to zero mean and unit variance before extracting components.
 */

#ifndef SPECLENS_STATS_NORMALIZE_H
#define SPECLENS_STATS_NORMALIZE_H

#include <string>
#include <vector>

#include "matrix.h"

namespace speclens {
namespace stats {

/** Per-column standardisation parameters captured from a training matrix. */
struct ColumnStats
{
    std::vector<double> means;   //!< Column means.
    std::vector<double> stddevs; //!< Column sample standard deviations.
};

/** Compute per-column mean and standard deviation of @p m. */
ColumnStats columnStats(const Matrix &m);

/**
 * What a standardisation pass had to do beyond the arithmetic.
 *
 * Zero-variance columns cannot be standardised — they are mapped to
 * all-zeros — and a feature that never varies usually means an
 * upstream modelling defect (a counter that never fires, duplicated
 * workloads).  Historically that mapping happened silently; callers
 * who care pass a report and surface the column indices (the SL017
 * lint rule and the obs counter `stats.normalize.zero_variance_columns`
 * are built on this).
 */
struct NormalizeReport
{
    /** Column indices with zero variance (mapped to all-zeros). */
    std::vector<std::size_t> degenerate_columns;

    /**
     * Optional caller-provided column labels (the characterizer's
     * `machine.metric` feature names), set before the normalization
     * call.  zscore()/zscoreWith() never touch them; they exist so
     * describe() can name a degenerate column for a human instead of
     * reporting a bare index.
     */
    std::vector<std::string> column_labels;

    /**
     * Human-readable name of @p column: its label when one was
     * provided, else "column <index>".
     */
    std::string describe(std::size_t column) const;
};

/** Indices of zero-variance columns under @p stats. */
std::vector<std::size_t> degenerateColumns(const ColumnStats &stats);

/**
 * Z-score standardise every column of @p m in place semantics (returns a
 * copy).  Columns with zero variance are mapped to all-zeros rather than
 * dividing by zero; such columns carry no discriminating information.
 * Pass @p report to learn which columns were degenerate (may be null).
 */
Matrix zscore(const Matrix &m, NormalizeReport *report = nullptr);

/**
 * Standardise @p m using externally supplied statistics, e.g. to project
 * new workloads into a feature space fitted on a reference suite.
 * Pass @p report to learn which columns were degenerate (may be null).
 */
Matrix zscoreWith(const Matrix &m, const ColumnStats &stats,
                  NormalizeReport *report = nullptr);

/**
 * Covariance matrix of the columns of @p m (sample covariance, n - 1
 * denominator).  For a z-scored input this is the correlation matrix.
 */
Matrix covarianceMatrix(const Matrix &m);

} // namespace stats
} // namespace speclens

#endif // SPECLENS_STATS_NORMALIZE_H
