/**
 * @file
 * Feature normalization for the similarity pipeline.
 *
 * Performance metrics live on wildly different scales (MPKI in units,
 * instruction-mix fractions in [0, 1], power in watts).  PCA on raw
 * metrics would be dominated by whichever metric happens to have the
 * largest numeric range, so the paper's methodology — like the CPU2006
 * analysis it follows (Phansalkar et al., ISCA'07) — standardises each
 * metric to zero mean and unit variance before extracting components.
 */

#ifndef SPECLENS_STATS_NORMALIZE_H
#define SPECLENS_STATS_NORMALIZE_H

#include <vector>

#include "matrix.h"

namespace speclens {
namespace stats {

/** Per-column standardisation parameters captured from a training matrix. */
struct ColumnStats
{
    std::vector<double> means;   //!< Column means.
    std::vector<double> stddevs; //!< Column sample standard deviations.
};

/** Compute per-column mean and standard deviation of @p m. */
ColumnStats columnStats(const Matrix &m);

/**
 * Z-score standardise every column of @p m in place semantics (returns a
 * copy).  Columns with zero variance are mapped to all-zeros rather than
 * dividing by zero; such columns carry no discriminating information.
 */
Matrix zscore(const Matrix &m);

/**
 * Standardise @p m using externally supplied statistics, e.g. to project
 * new workloads into a feature space fitted on a reference suite.
 */
Matrix zscoreWith(const Matrix &m, const ColumnStats &stats);

/**
 * Covariance matrix of the columns of @p m (sample covariance, n - 1
 * denominator).  For a z-scored input this is the correlation matrix.
 */
Matrix covarianceMatrix(const Matrix &m);

} // namespace stats
} // namespace speclens

#endif // SPECLENS_STATS_NORMALIZE_H
