/**
 * @file
 * Symmetric eigen-decomposition via the cyclic Jacobi rotation method.
 *
 * PCA (Section III of the paper) requires the eigenvalues and
 * eigenvectors of the feature covariance/correlation matrix.  The Jacobi
 * method is simple, numerically robust for symmetric matrices, and more
 * than fast enough for the <= few-hundred dimensional matrices the
 * workload-similarity analyses produce.
 */

#ifndef SPECLENS_STATS_EIGEN_H
#define SPECLENS_STATS_EIGEN_H

#include <vector>

#include "matrix.h"

namespace speclens {
namespace stats {

/** Result of a symmetric eigen-decomposition. */
struct EigenDecomposition
{
    /** Eigenvalues sorted in descending order. */
    std::vector<double> values;

    /**
     * Eigenvectors as matrix columns; column k corresponds to values[k].
     * The matrix is orthonormal: V^T V = I.
     */
    Matrix vectors;
};

/**
 * Eigen-decomposition of a symmetric matrix using cyclic Jacobi sweeps.
 *
 * @param m Symmetric matrix (validated; throws std::invalid_argument
 *          otherwise).
 * @param tol Convergence threshold on the largest absolute off-diagonal
 *            element of the rotated matrix.
 * @param max_sweeps Safety bound on the number of full sweeps.
 * @return Eigenvalues (descending) and matching orthonormal eigenvectors.
 * @throws std::runtime_error when convergence is not reached within
 *         max_sweeps (does not happen for well-formed symmetric input).
 */
EigenDecomposition symmetricEigen(const Matrix &m, double tol = 1e-12,
                                  int max_sweeps = 100);

} // namespace stats
} // namespace speclens

#endif // SPECLENS_STATS_EIGEN_H
