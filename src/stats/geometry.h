/**
 * @file
 * 2-D computational geometry for workload-space coverage analysis.
 *
 * Section V-A of the paper compares how much of the PC1-PC2 and
 * PC3-PC4 planes each suite covers ("the 2017 benchmarks cover twice
 * as much area...") and how many CPU2017 points fall outside the
 * CPU2006 region.  Convex hulls, polygon areas and point-in-polygon
 * tests make those statements computable.
 */

#ifndef SPECLENS_STATS_GEOMETRY_H
#define SPECLENS_STATS_GEOMETRY_H

#include <vector>

namespace speclens {
namespace stats {

/** 2-D point. */
struct Point2
{
    double x = 0.0;
    double y = 0.0;
};

/**
 * Convex hull (Andrew's monotone chain), returned in counter-clockwise
 * order without a repeated first vertex.  Degenerate inputs (fewer
 * than 3 distinct points, collinear sets) return the distinct points.
 */
std::vector<Point2> convexHull(std::vector<Point2> points);

/** Signed area of a polygon (positive for counter-clockwise order). */
double polygonArea(const std::vector<Point2> &polygon);

/** Absolute area of the convex hull of a point set. */
double hullArea(const std::vector<Point2> &points);

/**
 * True when @p p lies inside or on the boundary of convex polygon
 * @p hull (counter-clockwise order).
 */
bool pointInConvexPolygon(const Point2 &p,
                          const std::vector<Point2> &hull);

} // namespace stats
} // namespace speclens

#endif // SPECLENS_STATS_GEOMETRY_H
