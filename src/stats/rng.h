/**
 * @file
 * Deterministic pseudo-random number generation for SpecLens.
 *
 * Every stochastic component in the toolkit (synthetic trace generation,
 * the published-score database, random subset baselines) draws from this
 * generator so that a given (workload, machine, seed) triple always
 * produces identical results across runs and platforms.  The generator is
 * SplitMix64 (Steele et al., "Fast splittable pseudorandom number
 * generators", OOPSLA 2014): tiny state, full 64-bit period per stream,
 * and good equidistribution for the modest statistical demands here.
 */

#ifndef SPECLENS_STATS_RNG_H
#define SPECLENS_STATS_RNG_H

#include <cmath>
#include <cstdint>
#include <string_view>

namespace speclens {
namespace stats {

/**
 * Deterministic 64-bit PRNG (SplitMix64).
 *
 * Not cryptographically secure; intended only for reproducible synthetic
 * workload generation and Monte-Carlo style baselines.
 */
class Rng
{
  public:
    /** Construct a generator from a 64-bit seed. */
    explicit Rng(std::uint64_t seed) : state_(seed) {}

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        // 53 high-quality mantissa bits.
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** Uniform integer in [0, n).  n must be > 0. */
    std::uint64_t
    below(std::uint64_t n)
    {
        // Lemire-style rejection-free mapping is overkill here; the modulo
        // bias for n << 2^64 is far below the noise floor of any analysis.
        return next() % n;
    }

    /** Bernoulli trial with probability p of returning true. */
    bool
    bernoulli(double p)
    {
        return uniform() < p;
    }

    /**
     * Standard normal variate (Box-Muller, one value per call).
     *
     * The cached second variate is intentionally discarded so that the
     * consumed stream length per call is constant, which keeps generated
     * traces bit-identical when unrelated call sites are reordered.
     */
    double
    gaussian()
    {
        double u1 = 1.0 - uniform(); // (0, 1]: avoids log(0)
        double u2 = uniform();
        double r = std::sqrt(-2.0 * std::log(u1));
        return r * std::cos(6.283185307179586 * u2);
    }

    /** Normal variate with the given mean and standard deviation. */
    double
    gaussian(double mean, double stddev)
    {
        return mean + stddev * gaussian();
    }

    /**
     * Geometrically distributed integer >= 0 with success probability p.
     * Used for reuse-distance sampling in the address stream generator.
     */
    std::uint64_t
    geometric(double p)
    {
        if (p >= 1.0)
            return 0;
        if (p <= 0.0)
            return ~0ull;
        double u = 1.0 - uniform();
        return static_cast<std::uint64_t>(std::log(u) / std::log(1.0 - p));
    }

  private:
    std::uint64_t state_;
};

/**
 * Stable 64-bit FNV-1a hash of a string.
 *
 * Used to derive per-workload / per-machine seeds from their names so
 * that adding a new workload never perturbs the streams of existing ones.
 */
constexpr std::uint64_t
hashName(std::string_view name)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (char c : name) {
        h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
        h *= 0x100000001b3ull;
    }
    return h;
}

/** Combine two 64-bit values into a new seed (boost::hash_combine style). */
constexpr std::uint64_t
combineSeeds(std::uint64_t a, std::uint64_t b)
{
    return a ^ (b + 0x9e3779b97f4a7c15ull + (a << 6) + (a >> 2));
}

} // namespace stats
} // namespace speclens

#endif // SPECLENS_STATS_RNG_H
