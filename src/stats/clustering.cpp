/**
 * @file
 * Agglomerative clustering implementation (Lance-Williams recurrence).
 */

#include "clustering.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "obs/metrics.h"

namespace speclens {
namespace stats {

std::string
linkageName(Linkage linkage)
{
    switch (linkage) {
      case Linkage::Single: return "single";
      case Linkage::Complete: return "complete";
      case Linkage::Average: return "average";
      case Linkage::Ward: return "ward";
    }
    return "unknown";
}

Dendrogram::Dendrogram(std::size_t num_leaves, std::vector<MergeStep> merges)
    : num_leaves_(num_leaves), merges_(std::move(merges))
{
    if (num_leaves_ == 0)
        throw std::invalid_argument("Dendrogram: no leaves");
    if (merges_.size() + 1 != num_leaves_)
        throw std::invalid_argument("Dendrogram: wrong merge count");
    std::size_t max_id = num_leaves_ + merges_.size();
    for (std::size_t k = 0; k < merges_.size(); ++k) {
        const MergeStep &m = merges_[k];
        if (m.left >= num_leaves_ + k || m.right >= num_leaves_ + k ||
            m.left == m.right || m.left >= max_id || m.right >= max_id) {
            throw std::invalid_argument("Dendrogram: bad merge node ids");
        }
    }
}

namespace {

/** Minimal union-find over dendrogram node ids. */
class UnionFind
{
  public:
    explicit UnionFind(std::size_t n) : parent_(n)
    {
        for (std::size_t i = 0; i < n; ++i)
            parent_[i] = i;
    }

    std::size_t
    find(std::size_t x)
    {
        while (parent_[x] != x) {
            parent_[x] = parent_[parent_[x]];
            x = parent_[x];
        }
        return x;
    }

    void
    unite(std::size_t a, std::size_t b)
    {
        parent_[find(a)] = find(b);
    }

  private:
    std::vector<std::size_t> parent_;
};

std::vector<std::vector<std::size_t>>
groupsFromMergePrefix(std::size_t num_leaves,
                      const std::vector<MergeStep> &merges,
                      const std::function<bool(const MergeStep &)> &take)
{
    UnionFind uf(num_leaves + merges.size());
    for (std::size_t k = 0; k < merges.size(); ++k) {
        const MergeStep &m = merges[k];
        if (!take(m))
            continue;
        std::size_t node = num_leaves + k;
        uf.unite(m.left, node);
        uf.unite(m.right, node);
    }

    // Gather leaves by representative.
    std::vector<std::vector<std::size_t>> groups;
    std::vector<long> group_of(num_leaves + merges.size(), -1);
    for (std::size_t leaf = 0; leaf < num_leaves; ++leaf) {
        std::size_t rep = uf.find(leaf);
        if (group_of[rep] < 0) {
            group_of[rep] = static_cast<long>(groups.size());
            groups.emplace_back();
        }
        groups[static_cast<std::size_t>(group_of[rep])].push_back(leaf);
    }
    // Members are discovered in ascending leaf order, so each group is
    // already sorted and groups are ordered by their smallest member.
    return groups;
}

} // namespace

std::vector<std::vector<std::size_t>>
Dendrogram::cutAtHeight(double height) const
{
    return groupsFromMergePrefix(num_leaves_, merges_,
                                 [height](const MergeStep &m) {
                                     return m.height <= height;
                                 });
}

std::vector<std::vector<std::size_t>>
Dendrogram::cutIntoClusters(std::size_t k) const
{
    if (k < 1 || k > num_leaves_)
        throw std::invalid_argument("cutIntoClusters: k out of range");
    std::size_t keep = num_leaves_ - k; // number of earliest merges kept
    std::size_t index = 0;
    return groupsFromMergePrefix(num_leaves_, merges_,
                                 [&index, keep](const MergeStep &) {
                                     return index++ < keep;
                                 });
}

double
Dendrogram::heightForClusterCount(std::size_t k) const
{
    if (k < 1 || k > num_leaves_)
        throw std::invalid_argument("heightForClusterCount: k out of range");
    if (k == num_leaves_)
        return 0.0;
    // Keeping merges 0 .. (n - k - 1) yields k clusters; the cut height
    // is the height of the last kept merge.
    return merges_[num_leaves_ - k - 1].height;
}

double
Dendrogram::copheneticDistance(std::size_t a, std::size_t b) const
{
    if (a >= num_leaves_ || b >= num_leaves_)
        throw std::out_of_range("copheneticDistance: leaf index");
    if (a == b)
        return 0.0;

    UnionFind uf(num_leaves_ + merges_.size());
    for (std::size_t k = 0; k < merges_.size(); ++k) {
        const MergeStep &m = merges_[k];
        std::size_t node = num_leaves_ + k;
        uf.unite(m.left, node);
        uf.unite(m.right, node);
        if (uf.find(a) == uf.find(b))
            return m.height;
    }
    throw std::logic_error("copheneticDistance: leaves never merged");
}

double
Dendrogram::leafJoinHeight(std::size_t leaf) const
{
    if (leaf >= num_leaves_)
        throw std::out_of_range("leafJoinHeight: leaf index");

    UnionFind uf(num_leaves_ + merges_.size());
    for (std::size_t k = 0; k < merges_.size(); ++k) {
        const MergeStep &m = merges_[k];
        std::size_t node = num_leaves_ + k;
        // The leaf joins a cluster the first time a merge touches its
        // current component.
        bool touches = uf.find(m.left) == uf.find(leaf) ||
                       uf.find(m.right) == uf.find(leaf);
        uf.unite(m.left, node);
        uf.unite(m.right, node);
        if (touches)
            return m.height;
    }
    throw std::logic_error("leafJoinHeight: leaf never merged");
}

std::vector<std::size_t>
Dendrogram::leafOrder() const
{
    // Depth-first traversal from the root; children visited left first.
    std::vector<std::size_t> order;
    order.reserve(num_leaves_);
    std::function<void(std::size_t)> visit = [&](std::size_t node) {
        if (node < num_leaves_) {
            order.push_back(node);
            return;
        }
        const MergeStep &m = merges_[node - num_leaves_];
        visit(m.left);
        visit(m.right);
    };
    if (num_leaves_ == 1)
        return {0};
    visit(num_leaves_ + merges_.size() - 1);
    return order;
}

std::string
Dendrogram::render(const std::vector<std::string> &labels) const
{
    if (labels.size() != num_leaves_)
        throw std::invalid_argument("Dendrogram::render: label count");

    std::ostringstream os;
    os.precision(2);
    os << std::fixed;

    // Render as an indented tree: internal nodes show their merge
    // height, leaves show their label.  Traversal mirrors leafOrder().
    std::function<void(std::size_t, std::size_t)> visit =
        [&](std::size_t node, std::size_t depth) {
            for (std::size_t i = 0; i < depth; ++i)
                os << "  ";
            if (node < num_leaves_) {
                os << "- " << labels[node] << "\n";
                return;
            }
            const MergeStep &m = merges_[node - num_leaves_];
            os << "+ [d=" << m.height << "]\n";
            visit(m.left, depth + 1);
            visit(m.right, depth + 1);
        };

    if (num_leaves_ == 1) {
        os << "- " << labels[0] << "\n";
    } else {
        visit(num_leaves_ + merges_.size() - 1, 0);
    }
    return os.str();
}

Dendrogram
agglomerate(const Matrix &distances, Linkage linkage)
{
    std::size_t n = distances.rows();
    if (n == 0 || distances.cols() != n)
        throw std::invalid_argument("agglomerate: matrix not square");
    if (!distances.isSymmetric(1e-9))
        throw std::invalid_argument("agglomerate: matrix not symmetric");
    if (n == 1)
        return Dendrogram(1, {});

    static obs::Timing &agglomerate_time =
        obs::Registry::global().timing("stats.cluster.agglomerate");
    obs::Span span(agglomerate_time);

    bool squared = linkage == Linkage::Ward;

    // Active cluster bookkeeping: current[i] >= 0 iff cluster slot i is
    // alive; node_id maps slots to dendrogram node numbers; size is the
    // leaf count.
    std::vector<bool> alive(n, true);
    std::vector<std::size_t> node_id(n);
    std::vector<double> size(n, 1.0);
    for (std::size_t i = 0; i < n; ++i)
        node_id[i] = i;

    // Working distance matrix (squared for Ward).
    Matrix d = distances;
    if (squared) {
        for (std::size_t i = 0; i < n; ++i)
            for (std::size_t j = 0; j < n; ++j)
                d(i, j) = d(i, j) * d(i, j);
    }

    std::vector<MergeStep> merges;
    merges.reserve(n - 1);

    for (std::size_t step = 0; step + 1 < n; ++step) {
        // Find the closest pair of alive clusters.
        double best = std::numeric_limits<double>::infinity();
        std::size_t bi = 0, bj = 0;
        for (std::size_t i = 0; i < n; ++i) {
            if (!alive[i])
                continue;
            for (std::size_t j = i + 1; j < n; ++j) {
                if (!alive[j])
                    continue;
                if (d(i, j) < best) {
                    best = d(i, j);
                    bi = i;
                    bj = j;
                }
            }
        }

        double height = squared ? std::sqrt(best) : best;
        std::size_t new_node = n + step;
        merges.push_back({node_id[bi], node_id[bj], height,
                          static_cast<std::size_t>(size[bi] + size[bj])});

        // Lance-Williams update of distances from the merged cluster
        // (stored in slot bi) to every other alive cluster k:
        //   d(ij, k) = a_i d(i,k) + a_j d(j,k) + b d(i,j)
        //              + g |d(i,k) - d(j,k)|
        double ni = size[bi], nj = size[bj];
        for (std::size_t k = 0; k < n; ++k) {
            if (!alive[k] || k == bi || k == bj)
                continue;
            double dik = d(bi, k);
            double djk = d(bj, k);
            double dij = d(bi, bj);
            double nk = size[k];
            double updated = 0.0;
            switch (linkage) {
              case Linkage::Single:
                updated = 0.5 * dik + 0.5 * djk - 0.5 * std::fabs(dik - djk);
                break;
              case Linkage::Complete:
                updated = 0.5 * dik + 0.5 * djk + 0.5 * std::fabs(dik - djk);
                break;
              case Linkage::Average:
                updated = (ni * dik + nj * djk) / (ni + nj);
                break;
              case Linkage::Ward: {
                double denom = ni + nj + nk;
                updated = ((ni + nk) * dik + (nj + nk) * djk - nk * dij) /
                          denom;
                break;
              }
            }
            d(bi, k) = updated;
            d(k, bi) = updated;
        }

        node_id[bi] = new_node;
        size[bi] = ni + nj;
        alive[bj] = false;
    }

    return Dendrogram(n, std::move(merges));
}

Dendrogram
clusterPoints(const Matrix &points, Linkage linkage, DistanceMetric metric)
{
    return agglomerate(pairwiseDistances(points, metric), linkage);
}

} // namespace stats
} // namespace speclens
