/**
 * @file
 * PCA implementation.
 */

#include "pca.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "eigen.h"
#include "obs/metrics.h"

namespace speclens {
namespace stats {

Matrix
PcaResult::project(const Matrix &raw) const
{
    Matrix standardized = zscoreWith(raw, training_stats);
    return standardized.multiply(loadings);
}

std::size_t
PcaResult::dominantMetric(std::size_t pc) const
{
    if (pc >= retained)
        throw std::out_of_range("PcaResult::dominantMetric: pc index");
    std::size_t best = 0;
    double best_mag = -1.0;
    for (std::size_t m = 0; m < loadings.rows(); ++m) {
        double mag = std::fabs(loadings(m, pc));
        if (mag > best_mag) {
            best_mag = mag;
            best = m;
        }
    }
    return best;
}

namespace {

std::size_t
retainCount(const std::vector<double> &eigenvalues,
            const RetentionPolicy &policy)
{
    double total = std::accumulate(eigenvalues.begin(), eigenvalues.end(),
                                   0.0);
    std::size_t n = eigenvalues.size();

    switch (policy.mode) {
      case RetentionPolicy::Mode::Kaiser: {
        std::size_t k = 0;
        while (k < n && eigenvalues[k] >= policy.kaiser_threshold)
            ++k;
        // Always keep at least one component so downstream consumers
        // (clustering, scatter plots) have a non-empty space.
        return std::max<std::size_t>(k, 1);
      }
      case RetentionPolicy::Mode::FixedCount:
        return std::min<std::size_t>(std::max<std::size_t>(policy.count, 1),
                                     n);
      case RetentionPolicy::Mode::VarianceCovered: {
        double covered = 0.0;
        std::size_t k = 0;
        while (k < n && covered < policy.variance_fraction * total) {
            covered += eigenvalues[k];
            ++k;
        }
        return std::max<std::size_t>(k, 1);
      }
    }
    return 1;
}

} // namespace

PcaResult
fitPca(const Matrix &raw, const RetentionPolicy &policy)
{
    if (raw.rows() < 2 || raw.cols() < 1)
        throw std::invalid_argument("fitPca: need >= 2 rows and >= 1 col");

    static obs::Timing &fit_time =
        obs::Registry::global().timing("stats.pca.fit");
    obs::Span span(fit_time);

    PcaResult out;
    out.training_stats = columnStats(raw);

    Matrix standardized = zscoreWith(raw, out.training_stats);
    Matrix corr = covarianceMatrix(standardized);

    // The eigensolve dominates fit cost for wide metric sets; timed
    // separately so the bench trajectory can report the stage.
    static obs::Timing &eigen_time =
        obs::Registry::global().timing("stats.pca.eigen");
    EigenDecomposition eig;
    {
        obs::Span eigen_span(eigen_time);
        eig = symmetricEigen(corr);
    }

    // Numerical noise can produce tiny negative eigenvalues on
    // rank-deficient correlation matrices; clamp them for the variance
    // bookkeeping.
    out.eigenvalues = eig.values;
    for (double &v : out.eigenvalues)
        if (v < 0.0 && v > -1e-9)
            v = 0.0;

    std::size_t k = retainCount(out.eigenvalues, policy);
    out.retained = k;

    std::vector<std::size_t> keep(k);
    std::iota(keep.begin(), keep.end(), std::size_t{0});
    out.loadings = eig.vectors.selectCols(keep);
    out.scores = standardized.multiply(out.loadings);

    double total = std::accumulate(out.eigenvalues.begin(),
                                   out.eigenvalues.end(), 0.0);
    out.variance_per_component.resize(k);
    double covered = 0.0;
    for (std::size_t i = 0; i < k; ++i) {
        double frac = total > 0.0 ? out.eigenvalues[i] / total : 0.0;
        out.variance_per_component[i] = frac;
        covered += frac;
    }
    out.variance_covered = covered;
    return out;
}

} // namespace stats
} // namespace speclens
