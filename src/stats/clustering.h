/**
 * @file
 * Agglomerative hierarchical clustering and dendrogram representation.
 *
 * The paper (Section III) clusters benchmarks bottom-up on Euclidean
 * distances in PCA space and presents the result as a dendrogram whose
 * linkage distances express benchmark (dis)similarity.  Cutting the
 * dendrogram at a chosen linkage distance yields benchmark subsets
 * (Section IV-A, Figs. 2-4); this header provides the clustering, the
 * tree, cuts by height or by cluster count, cophenetic distances, and a
 * text rendering used by the figure-reproduction benchmarks.
 */

#ifndef SPECLENS_STATS_CLUSTERING_H
#define SPECLENS_STATS_CLUSTERING_H

#include <cstddef>
#include <string>
#include <vector>

#include "distance.h"
#include "matrix.h"

namespace speclens {
namespace stats {

/** Cluster-to-cluster distance update rules (Lance-Williams family). */
enum class Linkage {
    Single,   //!< Nearest-neighbour merge distance.
    Complete, //!< Furthest-neighbour merge distance.
    Average,  //!< UPGMA; unweighted average pairwise distance.
    Ward,     //!< Minimum within-cluster variance increase.
};

/** Human-readable linkage name. */
std::string linkageName(Linkage linkage);

/**
 * One agglomeration step.  Nodes are numbered scipy-style: leaves are
 * 0 .. n-1 and the node created by merge step k (0-based) is n + k.
 */
struct MergeStep
{
    std::size_t left;   //!< First merged node id.
    std::size_t right;  //!< Second merged node id.
    double height;      //!< Linkage distance at which the merge happened.
    std::size_t size;   //!< Number of leaves under the new node.
};

/**
 * Hierarchical clustering result.
 *
 * Immutable after construction; all queries are const.
 */
class Dendrogram
{
  public:
    Dendrogram() = default;

    /**
     * Build from a merge list.  @p merges must contain exactly
     * num_leaves - 1 steps referencing valid node ids.
     */
    Dendrogram(std::size_t num_leaves, std::vector<MergeStep> merges);

    /** Number of leaf observations. */
    std::size_t numLeaves() const { return num_leaves_; }

    /** Merge steps in agglomeration order. */
    const std::vector<MergeStep> &merges() const { return merges_; }

    /**
     * Clusters obtained by keeping only merges with height <= @p height
     * ("drawing a vertical line" through the dendrogram, as the paper
     * does at linkage distance 17.5 in Fig. 2).  Each cluster is a
     * sorted list of leaf indices; clusters are ordered by smallest
     * member.
     */
    std::vector<std::vector<std::size_t>> cutAtHeight(double height) const;

    /**
     * Exactly @p k clusters obtained by undoing the last k - 1 merges.
     * k must be in [1, numLeaves()].
     */
    std::vector<std::vector<std::size_t>>
    cutIntoClusters(std::size_t k) const;

    /**
     * Smallest cut height that yields at most @p k clusters; the
     * "linkage distance budget" equivalent of cutIntoClusters.
     */
    double heightForClusterCount(std::size_t k) const;

    /**
     * Cophenetic distance: the height of the lowest common ancestor of
     * two leaves, i.e. the linkage distance at which they first share a
     * cluster.  This is the "linkage distance between benchmarks" the
     * paper reads off its dendrograms.
     */
    double copheneticDistance(std::size_t a, std::size_t b) const;

    /**
     * Height of the first merge that joins leaf @p leaf to anything,
     * i.e. how early the leaf stops being a singleton.  Leaves with a
     * large join height are outliers (e.g. 605.mcf_s in Fig. 2).
     */
    double leafJoinHeight(std::size_t leaf) const;

    /** Leaves ordered as a crossing-free dendrogram drawing would list. */
    std::vector<std::size_t> leafOrder() const;

    /**
     * ASCII rendering of the tree: one line per leaf in leafOrder(),
     * with merge heights annotated.  @p labels must have numLeaves()
     * entries.
     */
    std::string render(const std::vector<std::string> &labels) const;

  private:
    std::size_t num_leaves_ = 0;
    std::vector<MergeStep> merges_;
};

/**
 * Agglomerative clustering from a precomputed symmetric distance matrix.
 *
 * Uses the Lance-Williams recurrence for all linkages.  For Ward the
 * input must contain Euclidean distances; they are squared internally
 * and merge heights are reported back on the original scale.
 *
 * @param distances Symmetric n x n matrix with zero diagonal.
 * @param linkage Update rule.
 * @throws std::invalid_argument for malformed input.
 */
Dendrogram agglomerate(const Matrix &distances,
                       Linkage linkage = Linkage::Average);

/**
 * Convenience wrapper: cluster the rows of a points matrix (e.g. PCA
 * scores).
 */
Dendrogram clusterPoints(const Matrix &points,
                         Linkage linkage = Linkage::Average,
                         DistanceMetric metric = DistanceMetric::Euclidean);

} // namespace stats
} // namespace speclens

#endif // SPECLENS_STATS_CLUSTERING_H
