/**
 * @file
 * Principal Component Analysis with Kaiser-criterion component retention.
 *
 * This implements the dimensionality-reduction step of the paper's
 * methodology (Section III): metrics are z-scored, the correlation
 * matrix is eigen-decomposed, and the top components are retained.  The
 * paper uses the Kaiser criterion — keep components whose eigenvalue is
 * >= 1, i.e. components that explain at least as much variance as one
 * original standardised metric — and reports the cumulative variance
 * they cover (e.g. 7 PCs / 91% for the speed-INT dendrogram in Fig. 2).
 */

#ifndef SPECLENS_STATS_PCA_H
#define SPECLENS_STATS_PCA_H

#include <cstddef>
#include <vector>

#include "matrix.h"
#include "normalize.h"

namespace speclens {
namespace stats {

/** How many principal components to retain. */
struct RetentionPolicy
{
    /**
     * Kaiser criterion: keep components with eigenvalue >= threshold
     * (threshold 1.0 in the paper).
     */
    static RetentionPolicy
    kaiser(double threshold = 1.0)
    {
        return {Mode::Kaiser, threshold, 0, 0.0};
    }

    /** Keep exactly @p k components (clamped to the available count). */
    static RetentionPolicy
    fixedCount(std::size_t k)
    {
        return {Mode::FixedCount, 0.0, k, 0.0};
    }

    /** Keep the fewest components covering @p fraction of total variance. */
    static RetentionPolicy
    varianceCovered(double fraction)
    {
        return {Mode::VarianceCovered, 0.0, 0, fraction};
    }

    enum class Mode { Kaiser, FixedCount, VarianceCovered };

    Mode mode = Mode::Kaiser;
    double kaiser_threshold = 1.0;
    std::size_t count = 0;
    double variance_fraction = 0.9;
};

/** Fitted PCA model. */
struct PcaResult
{
    /** Standardisation parameters of the training data. */
    ColumnStats training_stats;

    /** All eigenvalues of the correlation matrix, descending. */
    std::vector<double> eigenvalues;

    /**
     * Loading matrix: column k holds the loading factors a_k of
     * Equation (1) in the paper, i.e. the weights combining original
     * metrics into PC k.  Only retained components are kept.
     */
    Matrix loadings;

    /** Training observations projected onto the retained components. */
    Matrix scores;

    /** Number of retained components. */
    std::size_t retained = 0;

    /** Fraction of total variance covered by the retained components. */
    double variance_covered = 0.0;

    /** Fraction of variance explained by each retained component. */
    std::vector<double> variance_per_component;

    /**
     * Project new (raw, unstandardised) observations into the retained
     * PC space using the training standardisation.
     */
    Matrix project(const Matrix &raw) const;

    /**
     * Index of the original metric with the largest absolute loading on
     * component @p pc — "PC2 is dominated by branch MPKI" style
     * statements in the paper come from this.
     */
    std::size_t dominantMetric(std::size_t pc) const;
};

/**
 * Fit PCA on a raw observations-by-metrics matrix.
 *
 * The matrix is z-scored internally; pass raw metric values.
 *
 * @param raw Observations x metrics (rows x cols), at least 2 rows.
 * @param policy Component retention policy (Kaiser by default).
 * @throws std::invalid_argument for degenerate input.
 */
PcaResult fitPca(const Matrix &raw,
                 const RetentionPolicy &policy = RetentionPolicy::kaiser());

} // namespace stats
} // namespace speclens

#endif // SPECLENS_STATS_PCA_H
