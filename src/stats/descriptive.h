/**
 * @file
 * Descriptive statistics helpers: means, variances, geometric means,
 * ranks, and correlation.  These back the normalization step of the PCA
 * pipeline, the geometric-mean SPEC scoring used in subset validation
 * (Section IV-B of the paper), and the rank-difference sensitivity
 * analysis (Section V-G / Table IX).
 */

#ifndef SPECLENS_STATS_DESCRIPTIVE_H
#define SPECLENS_STATS_DESCRIPTIVE_H

#include <cstddef>
#include <vector>

namespace speclens {
namespace stats {

/** Arithmetic mean.  Returns 0 for an empty vector. */
double mean(const std::vector<double> &values);

/**
 * Sample variance (divides by n - 1).  Returns 0 for fewer than two
 * values.
 */
double variance(const std::vector<double> &values);

/** Sample standard deviation (sqrt of sample variance). */
double stddev(const std::vector<double> &values);

/**
 * Geometric mean.  All values must be positive; this is the aggregation
 * SPEC uses for suite scores and the one the paper uses when validating
 * subsets against full sub-suites.
 *
 * @throws std::invalid_argument when any value is <= 0 or the vector is
 *         empty.
 */
double geometricMean(const std::vector<double> &values);

/** Smallest element.  Throws on an empty vector. */
double minValue(const std::vector<double> &values);

/** Largest element.  Throws on an empty vector. */
double maxValue(const std::vector<double> &values);

/** Median (average of the middle two for even sizes). */
double median(std::vector<double> values);

/**
 * Fractional ranks (1-based; ties get the average of their positions).
 * Larger value -> larger rank.  Used by the sensitivity classification,
 * which ranks benchmarks per machine and compares rank stability across
 * machines.
 */
std::vector<double> ranks(const std::vector<double> &values);

/** Pearson correlation coefficient.  Vectors must have equal length. */
double pearson(const std::vector<double> &a, const std::vector<double> &b);

/** Spearman rank correlation (Pearson on fractional ranks). */
double spearman(const std::vector<double> &a, const std::vector<double> &b);

/**
 * Relative error |estimate - reference| / |reference| expressed as a
 * fraction (multiply by 100 for percent).  reference must be non-zero.
 */
double relativeError(double estimate, double reference);

} // namespace stats
} // namespace speclens

#endif // SPECLENS_STATS_DESCRIPTIVE_H
