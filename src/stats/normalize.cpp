/**
 * @file
 * Implementation of feature normalization.
 */

#include "normalize.h"

#include <cmath>
#include <stdexcept>

#include "descriptive.h"
#include "obs/metrics.h"

namespace speclens {
namespace stats {

ColumnStats
columnStats(const Matrix &m)
{
    std::size_t rows = m.rows(), cols = m.cols();
    ColumnStats out;
    out.means.assign(cols, 0.0);
    out.stddevs.assign(cols, 0.0);
    if (cols == 0)
        return out;

    // Row-major two-pass reduction.  Each column's partial sums still
    // accumulate in ascending row order — exactly the order the old
    // per-column copy produced — so means and stddevs are bit-identical
    // to mean()/stddev() over m.col(c); the walk just stops copying a
    // strided column per feature and runs contiguously over each row.
    if (rows > 0) {
        std::vector<double> sums(cols, 0.0);
        for (std::size_t r = 0; r < rows; ++r) {
            const double *row = m.rowPtr(r);
            for (std::size_t c = 0; c < cols; ++c)
                sums[c] += row[c];
        }
        for (std::size_t c = 0; c < cols; ++c)
            out.means[c] = sums[c] / static_cast<double>(rows);
    }
    if (rows >= 2) {
        std::vector<double> sq(cols, 0.0);
        for (std::size_t r = 0; r < rows; ++r) {
            const double *row = m.rowPtr(r);
            for (std::size_t c = 0; c < cols; ++c) {
                double d = row[c] - out.means[c];
                sq[c] += d * d;
            }
        }
        for (std::size_t c = 0; c < cols; ++c)
            out.stddevs[c] =
                std::sqrt(sq[c] / static_cast<double>(rows - 1));
    }
    return out;
}

std::string
NormalizeReport::describe(std::size_t column) const
{
    if (column < column_labels.size() &&
        !column_labels[column].empty())
        return column_labels[column];
    return "column " + std::to_string(column);
}

std::vector<std::size_t>
degenerateColumns(const ColumnStats &stats)
{
    std::vector<std::size_t> out;
    for (std::size_t c = 0; c < stats.stddevs.size(); ++c) {
        if (!(stats.stddevs[c] > 0.0))
            out.push_back(c);
    }
    return out;
}

Matrix
zscore(const Matrix &m, NormalizeReport *report)
{
    return zscoreWith(m, columnStats(m), report);
}

Matrix
zscoreWith(const Matrix &m, const ColumnStats &stats,
           NormalizeReport *report)
{
    if (stats.means.size() != m.cols() || stats.stddevs.size() != m.cols())
        throw std::invalid_argument("zscoreWith: stats dimension mismatch");

    static obs::Timing &zscore_time =
        obs::Registry::global().timing("stats.normalize.zscore");
    static obs::Counter &zero_variance = obs::Registry::global().counter(
        "stats.normalize.zero_variance_columns");
    obs::Span span(zscore_time);

    Matrix out(m.rows(), m.cols());
    std::vector<std::size_t> degenerate;
    for (std::size_t c = 0; c < m.cols(); ++c) {
        if (!(stats.stddevs[c] > 0.0))
            degenerate.push_back(c);
    }
    // Elementwise transform, so iteration order does not affect the
    // values; walk row-major over contiguous storage instead of the
    // strided column-major order the first version used.
    for (std::size_t r = 0; r < m.rows(); ++r) {
        const double *src = m.rowPtr(r);
        double *dst = out.rowPtr(r);
        for (std::size_t c = 0; c < m.cols(); ++c) {
            double sd = stats.stddevs[c];
            dst[c] = sd > 0.0 ? (src[c] - stats.means[c]) / sd : 0.0;
        }
    }
    if (!degenerate.empty())
        zero_variance.add(degenerate.size());
    if (report)
        report->degenerate_columns = std::move(degenerate);
    return out;
}

Matrix
covarianceMatrix(const Matrix &m)
{
    if (m.rows() < 2)
        throw std::invalid_argument("covarianceMatrix: need >= 2 rows");

    ColumnStats stats = columnStats(m);
    std::size_t n = m.rows(), d = m.cols();
    const double *data = m.data().data();
    Matrix cov(d, d);
    for (std::size_t i = 0; i < d; ++i) {
        double mean_i = stats.means[i];
        for (std::size_t j = i; j < d; ++j) {
            double mean_j = stats.means[j];
            // Same ascending-row accumulation as before, over raw
            // storage (two fixed columns, stride d).
            const double *pi = data + i;
            const double *pj = data + j;
            double acc = 0.0;
            for (std::size_t r = 0; r < n; ++r) {
                acc += (pi[r * d] - mean_i) * (pj[r * d] - mean_j);
            }
            double v = acc / static_cast<double>(n - 1);
            cov(i, j) = v;
            cov(j, i) = v;
        }
    }
    return cov;
}

} // namespace stats
} // namespace speclens
