/**
 * @file
 * Implementation of feature normalization.
 */

#include "normalize.h"

#include <stdexcept>

#include "descriptive.h"
#include "obs/metrics.h"

namespace speclens {
namespace stats {

ColumnStats
columnStats(const Matrix &m)
{
    ColumnStats out;
    out.means.resize(m.cols());
    out.stddevs.resize(m.cols());
    for (std::size_t c = 0; c < m.cols(); ++c) {
        auto column = m.col(c);
        out.means[c] = mean(column);
        out.stddevs[c] = stddev(column);
    }
    return out;
}

std::vector<std::size_t>
degenerateColumns(const ColumnStats &stats)
{
    std::vector<std::size_t> out;
    for (std::size_t c = 0; c < stats.stddevs.size(); ++c) {
        if (!(stats.stddevs[c] > 0.0))
            out.push_back(c);
    }
    return out;
}

Matrix
zscore(const Matrix &m, NormalizeReport *report)
{
    return zscoreWith(m, columnStats(m), report);
}

Matrix
zscoreWith(const Matrix &m, const ColumnStats &stats,
           NormalizeReport *report)
{
    if (stats.means.size() != m.cols() || stats.stddevs.size() != m.cols())
        throw std::invalid_argument("zscoreWith: stats dimension mismatch");

    static obs::Timing &zscore_time =
        obs::Registry::global().timing("stats.normalize.zscore");
    static obs::Counter &zero_variance = obs::Registry::global().counter(
        "stats.normalize.zero_variance_columns");
    obs::Span span(zscore_time);

    Matrix out(m.rows(), m.cols());
    std::vector<std::size_t> degenerate;
    for (std::size_t c = 0; c < m.cols(); ++c) {
        double mu = stats.means[c];
        double sd = stats.stddevs[c];
        if (!(sd > 0.0))
            degenerate.push_back(c);
        for (std::size_t r = 0; r < m.rows(); ++r)
            out(r, c) = sd > 0.0 ? (m(r, c) - mu) / sd : 0.0;
    }
    if (!degenerate.empty())
        zero_variance.add(degenerate.size());
    if (report)
        report->degenerate_columns = std::move(degenerate);
    return out;
}

Matrix
covarianceMatrix(const Matrix &m)
{
    if (m.rows() < 2)
        throw std::invalid_argument("covarianceMatrix: need >= 2 rows");

    ColumnStats stats = columnStats(m);
    std::size_t n = m.rows(), d = m.cols();
    Matrix cov(d, d);
    for (std::size_t i = 0; i < d; ++i) {
        for (std::size_t j = i; j < d; ++j) {
            double acc = 0.0;
            for (std::size_t r = 0; r < n; ++r) {
                acc += (m(r, i) - stats.means[i]) *
                       (m(r, j) - stats.means[j]);
            }
            double v = acc / static_cast<double>(n - 1);
            cov(i, j) = v;
            cov(j, i) = v;
        }
    }
    return cov;
}

} // namespace stats
} // namespace speclens
