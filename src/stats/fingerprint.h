/**
 * @file
 * Streaming fingerprint hasher for stable model identities.
 *
 * The campaign artifact store (core/artifact_store.h) keys persisted
 * simulation results by a fingerprint of *everything that determines
 * the result*: the workload model, the machine model and the
 * simulation window.  The hash therefore has to be stable across
 * processes, platforms and rebuilds — no std::hash (unspecified and
 * free to differ between libstdc++ versions), no pointer values, no
 * padding bytes.  This hasher feeds explicitly typed fields, in a
 * fixed declaration order, through 64-bit FNV-1a:
 *
 *  - integers are decomposed into 8 little-endian bytes regardless of
 *    host endianness;
 *  - doubles contribute their IEEE-754 bit pattern (so any calibration
 *    change, however small, changes the fingerprint);
 *  - strings are length-prefixed so field boundaries cannot alias
 *    ("ab" + "c" never hashes like "a" + "bc").
 *
 * Model types expose `hashInto(Fingerprinter &)` hooks that feed
 * their fields; top-level fingerprint() helpers combine the hooks
 * with a type tag and return the 64-bit digest.
 */

#ifndef SPECLENS_STATS_FINGERPRINT_H
#define SPECLENS_STATS_FINGERPRINT_H

#include <cstdint>
#include <cstring>
#include <string>

namespace speclens {
namespace stats {

/** Streaming 64-bit FNV-1a over explicitly typed fields. */
class Fingerprinter
{
  public:
    /** Feed one raw byte. */
    void
    byte(unsigned char b)
    {
        hash_ ^= static_cast<std::uint64_t>(b);
        hash_ *= 1099511628211ull; // FNV-1a 64-bit prime.
    }

    /** Feed an unsigned integer as 8 little-endian bytes. */
    void
    u64(std::uint64_t value)
    {
        for (int shift = 0; shift < 64; shift += 8)
            byte(static_cast<unsigned char>((value >> shift) & 0xff));
    }

    /** Feed a boolean as one byte. */
    void boolean(bool value) { byte(value ? 1 : 0); }

    /** Feed a double as its IEEE-754 bit pattern. */
    void
    f64(double value)
    {
        std::uint64_t bits = 0;
        static_assert(sizeof(bits) == sizeof(value),
                      "double must be 64-bit IEEE-754");
        std::memcpy(&bits, &value, sizeof(bits));
        u64(bits);
    }

    /** Feed a length-prefixed string. */
    void
    str(const std::string &value)
    {
        u64(value.size());
        for (char c : value)
            byte(static_cast<unsigned char>(c));
    }

    /**
     * Feed a domain-separation tag.  Identical to str(), named so call
     * sites read as "this is a type/version marker, not data".
     */
    void tag(const char *label) { str(std::string(label)); }

    /** Current digest. */
    std::uint64_t value() const { return hash_; }

  private:
    std::uint64_t hash_ = 14695981039346656037ull; // FNV offset basis.
};

} // namespace stats
} // namespace speclens

#endif // SPECLENS_STATS_FINGERPRINT_H
