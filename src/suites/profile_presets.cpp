/**
 * @file
 * Expansion of declarative benchmark specs into workload profiles.
 */

#include "profile_presets.h"

#include <algorithm>

namespace speclens {
namespace suites {

namespace {

constexpr double kKiB = 1024.0;
constexpr double kMiB = 1024.0 * 1024.0;

trace::MemoryModel
dataPreset(DataLocality locality, double streaming)
{
    // The mixture weights below are calibrated against the Table II
    // MPKI ranges on the simulated Skylake: the mid / big / vast
    // weights approximate the fraction of memory accesses that miss
    // L1 / L2 / L3 respectively, because each set is sized to be
    // captured by the next level.  Streaming (spatial locality)
    // applies to the mid and big sets: a streamed access misses only
    // when the 8-byte cursor crosses a line boundary, modelling the
    // L1-filtering effect of unit-stride loops (and, at the level of
    // counters, of the stream prefetchers real machines have).
    trace::MemoryModel m;
    auto set = [streaming](double bytes, double weight,
                           double seq_scale = 0.0) {
        trace::WorkingSet ws;
        ws.bytes = bytes;
        ws.weight = weight;
        ws.sequential = std::clamp(streaming * seq_scale, 0.0, 0.95);
        return ws;
    };

    switch (locality) {
      case DataLocality::Resident:
        m.data = {set(8 * kKiB, 0.9984, 0.3),
                  set(96 * kKiB, 0.0010, 1.0),
                  set(1.5 * kMiB, 0.0004, 1.0),
                  set(32 * kMiB, 0.0002)};
        break;
      case DataLocality::Small:
        m.data = {set(12 * kKiB, 0.9862, 0.3),
                  set(112 * kKiB, 0.010, 1.0),
                  set(2 * kMiB, 0.003, 1.0),
                  set(48 * kMiB, 0.0008)};
        break;
      case DataLocality::Medium:
        m.data = {set(14 * kKiB, 0.957, 0.3),
                  set(128 * kKiB, 0.031, 1.0),
                  set(2.5 * kMiB, 0.010, 1.0),
                  set(64 * kMiB, 0.002)};
        break;
      case DataLocality::Large:
        m.data = {set(16 * kKiB, 0.914, 0.3),
                  set(144 * kKiB, 0.062, 1.0),
                  set(3 * kMiB, 0.020, 1.0),
                  set(96 * kMiB, 0.004)};
        break;
      case DataLocality::Huge:
        m.data = {set(16 * kKiB, 0.860, 0.3),
                  set(160 * kKiB, 0.100, 1.0),
                  set(3 * kMiB, 0.032, 1.0),
                  set(160 * kMiB, 0.008)};
        break;
      case DataLocality::Extreme:
        m.data = {set(16 * kKiB, 0.790, 0.3),
                  set(160 * kKiB, 0.150, 1.0),
                  set(3.5 * kMiB, 0.047, 1.0),
                  set(320 * kMiB, 0.013)};
        break;
      case DataLocality::L1Bound:
        // FP stencil pattern (cactuBSSN, fotonik3d): enormous L1 miss
        // rate almost entirely captured by L2/L3 — the Table II shape
        // of L1D up to ~98 MPKI against L2D <= 8.6 and L3 <= 5.
        m.data = {set(8 * kKiB, 0.744, 0.3),
                  set(144 * kKiB, 0.240, 1.0),
                  set(2 * kMiB, 0.007, 1.0),
                  set(256 * kMiB, 0.009)};
        break;
    }
    return m;
}

void
applyCodePreset(trace::MemoryModel &m, CodePressure pressure)
{
    // Locality values are calibrated against the Table II L1I/L2I
    // ranges: even the front-end-heavy CPU2017 benchmarks stay below
    // ~5 L1I MPKI and ~1 L2I MPKI on Skylake; only the server-class
    // Huge preset (Cassandra) escapes that envelope, as Section V-E
    // requires.
    switch (pressure) {
      case CodePressure::Tiny:
        m.code_bytes = 8 * kKiB;
        m.hot_code_bytes = 2 * kKiB;
        m.code_locality = 0.999;
        break;
      case CodePressure::Small:
        m.code_bytes = 32 * kKiB;
        m.hot_code_bytes = 4 * kKiB;
        m.code_locality = 0.995;
        break;
      case CodePressure::Medium:
        m.code_bytes = 96 * kKiB;
        m.hot_code_bytes = 8 * kKiB;
        m.code_locality = 0.99;
        break;
      case CodePressure::Large:
        m.code_bytes = 224 * kKiB;
        m.hot_code_bytes = 16 * kKiB;
        m.code_locality = 0.978;
        break;
      case CodePressure::Flat:
        // Generated straight-line code (cactuBSSN): the fetch stream
        // marches through a region somewhat larger than a typical L1I
        // with no hot loop, so L1I misses are high wherever L1I < 64K
        // while L2 captures everything.
        m.code_bytes = 40 * kKiB;
        m.hot_code_bytes = 40 * kKiB;
        m.code_locality = 1.0;
        break;
      case CodePressure::Huge:
        m.code_bytes = 2 * kMiB;
        m.hot_code_bytes = 32 * kKiB;
        m.code_locality = 0.88;
        break;
    }
}

trace::BranchModel
branchPreset(BranchQuality quality, double taken_fraction,
             CodePressure code)
{
    trace::BranchModel b;
    b.taken_fraction = taken_fraction;
    switch (quality) {
      case BranchQuality::VeryEasy:
        b.biased_fraction = 0.99;
        b.patterned_fraction = 0.7;
        break;
      case BranchQuality::Easy:
        b.biased_fraction = 0.965;
        b.patterned_fraction = 0.7;
        break;
      case BranchQuality::Moderate:
        b.biased_fraction = 0.93;
        b.patterned_fraction = 0.6;
        break;
      case BranchQuality::Hard:
        b.biased_fraction = 0.87;
        b.patterned_fraction = 0.5;
        break;
      case BranchQuality::VeryHard:
        b.biased_fraction = 0.82;
        b.patterned_fraction = 0.30;
        break;
    }
    // Static branch population scales with the code footprint.  The
    // dynamic stream is heavily skewed toward low-numbered branches,
    // so even the Large population trains comfortably within a
    // 4K-entry predictor, as real front-ends do.
    switch (code) {
      case CodePressure::Tiny: b.static_branches = 64; break;
      case CodePressure::Small: b.static_branches = 192; break;
      case CodePressure::Medium: b.static_branches = 512; break;
      case CodePressure::Large: b.static_branches = 1536; break;
      case CodePressure::Huge: b.static_branches = 4096; break;
      case CodePressure::Flat: b.static_branches = 256; break;
    }
    return b;
}

} // namespace

trace::WorkloadProfile
buildProfile(const std::string &name, const ProfileSpec &spec)
{
    trace::WorkloadProfile p;
    p.name = name;
    p.dynamic_instructions_billions = spec.icount_billions;

    p.mix.load = spec.load_pct / 100.0;
    p.mix.store = spec.store_pct / 100.0;
    p.mix.branch = spec.branch_pct / 100.0;
    p.mix.fp = spec.fp_pct / 100.0;
    p.mix.simd = spec.simd_pct / 100.0;

    p.memory = dataPreset(spec.data, spec.streaming);
    applyCodePreset(p.memory, spec.code);

    if (spec.tlb_stress > 0.0) {
        // Sparse vast set: one line per page over a widened footprint,
        // decoupling TLB pressure from cache pressure.
        trace::WorkingSet &vast = p.memory.data[3];
        vast.stride_bytes = 4096;
        // Widen the page footprint but cap it so the *lines* touched
        // could still be LLC-resident on a large machine: TLB misses
        // without a matching cache-miss signature.
        vast.bytes = std::min(vast.bytes * (1.0 + 7.0 * spec.tlb_stress),
                              192.0 * 1024 * 1024 * 1024 / 1024);
        vast.weight *= 1.0 + spec.tlb_stress;
        vast.sequential = 0.0;
    }

    p.branch = branchPreset(spec.branches, spec.taken_fraction, spec.code);
    if (spec.patterned_override >= 0.0)
        p.branch.patterned_fraction = spec.patterned_override;
    if (spec.biased_override >= 0.0)
        p.branch.biased_fraction = spec.biased_override;

    // CPI calibration: the published Skylake CPI is split into an
    // ILP-limited base, a dependency component, and headroom that the
    // simulated stall components fill in.  The floor keeps superscalar
    // benchmarks (CPI ~0.3) from degenerating to zero base cost.
    p.exec.base_cpi = std::clamp(0.38 * spec.cpi, 0.12, 1.1);
    p.exec.dependency_cpi =
        std::clamp(spec.dependency_share * spec.cpi, 0.0, 0.8);
    p.exec.mlp = spec.mlp;
    p.exec.kernel_fraction = spec.kernel;

    p.validate();
    return p;
}

} // namespace suites
} // namespace speclens
