/**
 * @file
 * Expansion of declarative benchmark specs into workload profiles.
 *
 * The quantitative content lives in the constexpr preset tables
 * (preset_tables.h), where static_asserts prove the calibration
 * invariants at compile time; this file only expands a table row plus
 * the per-benchmark ProfileSpec knobs into a trace::WorkloadProfile.
 */

#include "profile_presets.h"

#include <algorithm>

#include "suites/preset_tables.h"

namespace speclens {
namespace suites {

namespace {

trace::MemoryModel
dataPreset(DataLocality locality, double streaming)
{
    const DataPresetRow &row = dataPresetRow(locality);
    trace::MemoryModel m;
    for (std::size_t i = 0; i < kWorkingSetCount; ++i) {
        trace::WorkingSet &ws = m.data[i];
        ws.bytes = row.bytes[i];
        ws.weight = row.weight[i];
        ws.sequential =
            std::clamp(streaming * row.seq_scale[i], 0.0, 0.95);
        ws.stride_bytes = 64;
    }
    return m;
}

void
applyCodePreset(trace::MemoryModel &m, CodePressure pressure)
{
    const CodePresetRow &row = codePresetRow(pressure);
    m.code_bytes = row.code_bytes;
    m.hot_code_bytes = row.hot_code_bytes;
    m.code_locality = row.code_locality;
}

trace::BranchModel
branchPreset(BranchQuality quality, double taken_fraction,
             CodePressure code)
{
    const BranchPresetRow &row = branchPresetRow(quality);
    trace::BranchModel b;
    b.taken_fraction = taken_fraction;
    b.biased_fraction = row.biased_fraction;
    b.patterned_fraction = row.patterned_fraction;
    b.static_branches = codePresetRow(code).static_branches;
    return b;
}

} // namespace

trace::WorkloadProfile
buildProfile(const std::string &name, const ProfileSpec &spec)
{
    trace::WorkloadProfile p;
    p.name = name;
    p.dynamic_instructions_billions = spec.icount_billions;

    p.mix.load = spec.load_pct / 100.0;
    p.mix.store = spec.store_pct / 100.0;
    p.mix.branch = spec.branch_pct / 100.0;
    p.mix.fp = spec.fp_pct / 100.0;
    p.mix.simd = spec.simd_pct / 100.0;

    p.memory = dataPreset(spec.data, spec.streaming);
    applyCodePreset(p.memory, spec.code);

    if (spec.tlb_stress > 0.0) {
        // Sparse vast set: one line per page over a widened footprint,
        // decoupling TLB pressure from cache pressure.
        trace::WorkingSet &vast = p.memory.data[3];
        vast.stride_bytes = 4096;
        // Widen the page footprint but cap it so the *lines* touched
        // could still be LLC-resident on a large machine: TLB misses
        // without a matching cache-miss signature.
        vast.bytes = std::min(vast.bytes * (1.0 + 7.0 * spec.tlb_stress),
                              192.0 * 1024 * 1024 * 1024 / 1024);
        vast.weight *= 1.0 + spec.tlb_stress;
        vast.sequential = 0.0;
    }

    p.branch = branchPreset(spec.branches, spec.taken_fraction, spec.code);
    if (spec.patterned_override >= 0.0)
        p.branch.patterned_fraction = spec.patterned_override;
    if (spec.biased_override >= 0.0)
        p.branch.biased_fraction = spec.biased_override;

    // CPI calibration: the published Skylake CPI is split into an
    // ILP-limited base, a dependency component, and headroom that the
    // simulated stall components fill in.  The floor keeps superscalar
    // benchmarks (CPI ~0.3) from degenerating to zero base cost.
    p.exec.base_cpi = std::clamp(0.38 * spec.cpi, 0.12, 1.1);
    p.exec.dependency_cpi =
        std::clamp(spec.dependency_share * spec.cpi, 0.0, 0.8);
    p.exec.mlp = spec.mlp;
    p.exec.kernel_fraction = spec.kernel;

    p.validate();
    return p;
}

} // namespace suites
} // namespace speclens
