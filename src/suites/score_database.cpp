/**
 * @file
 * Synthetic score database implementation.
 */

#include "score_database.h"

#include <algorithm>
#include <cmath>

#include "stats/descriptive.h"
#include "stats/rng.h"

namespace speclens {
namespace suites {

WorkloadTraits
deriveTraits(const trace::WorkloadProfile &profile)
{
    WorkloadTraits t;

    // Footprint score: expected cache pressure per access — the
    // probability mass on working sets that escape a 32 KiB L1,
    // weighted by how far beyond it they reach (a 256 MiB set stresses
    // memory far more than a 160 KiB one).  Normalised so the most
    // memory-hostile profiles in the databases (mcf-class) land near 1.
    double total_weight = 0.0;
    double pressure = 0.0;
    for (const trace::WorkingSet &ws : profile.memory.data) {
        total_weight += ws.weight;
        if (ws.bytes <= 32.0 * 1024)
            continue;
        double depth =
            std::min(1.0, std::log2(ws.bytes / (32.0 * 1024)) / 8.0);
        pressure += ws.weight * depth;
    }
    double footprint_score =
        std::clamp(pressure / total_weight / 0.15, 0.0, 1.0);

    double memory_mix = profile.mix.load + profile.mix.store;
    double mix_factor =
        0.5 + 0.5 * std::clamp(memory_mix / 0.45, 0.0, 1.5);
    t.memory_intensity =
        std::clamp(footprint_score * mix_factor, 0.0, 1.0);

    t.fp_intensity = std::clamp((profile.mix.fp + profile.mix.simd) / 0.45,
                                0.0, 1.0);

    // Hard-branch exposure: share of branches in the stream times the
    // share of those branches that are not trivially biased.
    t.branch_limit =
        std::clamp(profile.mix.branch *
                       (1.0 - profile.branch.biased_fraction) / 0.04,
                   0.0, 1.0);
    return t;
}

ScoreDatabase::ScoreDatabase(std::uint64_t seed) : seed_(seed)
{
    // Log-domain gains: a system with core_gain 0.5 is e^0.5 ~ 1.65x
    // faster on fully core-bound code than its base factor.
    // Gains are deliberately large (a fully core-bound benchmark can
    // speed up ~4x more than a fully memory-bound one on sys-A): real
    // SPEC submissions show per-benchmark speedup spreads of this
    // magnitude, and it is exactly this spread that makes an
    // unrepresentative random subset err by the ~25-50% the paper's
    // Table VI reports.
    speed_systems_ = {
        {"sys-A (4.2 GHz desktop)",     0.45, 2.00, 0.10, 0.60, 0.40, 0.03},
        {"sys-B (3.0 GHz server)",      0.30, 0.70, 1.70, 0.30, 0.20, 0.03},
        {"sys-C (3.6 GHz workstation)", 0.40, 1.40, 0.80, 1.20, 0.25, 0.03},
        {"sys-D (2.4 GHz dense node)",  0.15, 0.50, 2.10, 0.30, 0.12, 0.03},
    };
    rate_systems_ = {
        {"sys-E (2-socket HCC)",     0.35, 1.25, 1.10, 0.50, 0.22, 0.03},
        {"sys-F (1-socket turbo)",   0.50, 2.10, 0.30, 0.70, 0.40, 0.03},
        {"sys-G (memory-optimized)", 0.25, 0.30, 2.30, 0.20, 0.12, 0.03},
        {"sys-H (balanced blade)",   0.35, 1.10, 1.10, 0.70, 0.25, 0.03},
        {"sys-I (FP accelerator)",   0.30, 0.90, 0.50, 1.90, 0.15, 0.03},
    };
}

const std::vector<CommercialSystem> &
ScoreDatabase::systemsFor(Category category) const
{
    return isSpeedCategory(category) ? speed_systems_ : rate_systems_;
}

double
ScoreDatabase::speedup(const CommercialSystem &system,
                       const BenchmarkInfo &benchmark) const
{
    WorkloadTraits t = deriveTraits(benchmark.profile);

    double log_speedup = system.log_base +
                         system.core_gain * (1.0 - t.memory_intensity) +
                         system.memory_gain * t.memory_intensity +
                         system.fp_gain * t.fp_intensity +
                         system.branch_gain * t.branch_limit;

    // Deterministic submission noise per (system, benchmark).
    stats::Rng rng(stats::combineSeeds(
        seed_, stats::combineSeeds(stats::hashName(system.name),
                                   stats::hashName(benchmark.name))));
    log_speedup += rng.gaussian(0.0, system.noise_sigma);
    return std::exp(log_speedup);
}

double
ScoreDatabase::suiteScore(const CommercialSystem &system,
                          const std::vector<BenchmarkInfo> &benchmarks)
    const
{
    std::vector<double> speedups;
    speedups.reserve(benchmarks.size());
    for (const BenchmarkInfo &b : benchmarks)
        speedups.push_back(speedup(system, b));
    return stats::geometricMean(speedups);
}

} // namespace suites
} // namespace speclens
