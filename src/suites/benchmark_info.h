/**
 * @file
 * Benchmark metadata: identity, suite membership, application domain and
 * the calibrated workload model.
 *
 * The databases built from this type (spec2017.h, spec2006.h,
 * emerging.h) carry every benchmark the paper analyses: the 43 SPEC
 * CPU2017 programs (Table I), the CPU2006 predecessors used for the
 * balance comparison (Section V-A), the CPU2000 EDA pair of the case
 * study in Section V-D, and the emerging database / graph-analytics
 * workloads of Sections V-E/V-F.
 */

#ifndef SPECLENS_SUITES_BENCHMARK_INFO_H
#define SPECLENS_SUITES_BENCHMARK_INFO_H

#include <string>
#include <vector>

#include "trace/workload_profile.h"

namespace speclens {
namespace suites {

/** Benchmark suite of origin. */
enum class Suite {
    Cpu2017,
    Cpu2006,
    Cpu2000,
    Emerging, //!< Database / graph-analytics case-study workloads.
};

/** Sub-suite category. */
enum class Category {
    SpeedInt, //!< SPECspeed Integer (6xx INT).
    RateInt,  //!< SPECrate Integer (5xx INT).
    SpeedFp,  //!< SPECspeed Floating Point (6xx FP).
    RateFp,   //!< SPECrate Floating Point (5xx FP).
    Int,      //!< Undivided integer suite (CPU2006/2000).
    Fp,       //!< Undivided floating-point suite (CPU2006/2000).
    Other,    //!< Emerging workloads.
};

/** Application domain (Table VIII plus domains from older suites). */
enum class Domain {
    Compiler,
    Compression,
    ArtificialIntelligence,
    CombinatorialOptimization,
    DiscreteEventSimulation,
    DocumentProcessing,
    Physics,
    FluidDynamics,
    MolecularDynamics,
    Visualization,
    Biomedical,
    Climatology,
    SpeechRecognition,
    LinearProgramming,
    QuantumChemistry,
    Eda,
    Database,
    GraphAnalytics,
    VideoProcessing,
    Other,
};

/** Source language(s). */
enum class Language { C, Cpp, Fortran, CFortran, CCpp, CCppFortran, Java };

/** Human-readable names for the enums above. */
std::string suiteName(Suite suite);
std::string categoryName(Category category);
std::string domainName(Domain domain);
std::string languageName(Language language);

/** True for the four CPU2017 categories. */
bool isCpu2017Category(Category category);

/** True for the two speed categories. */
bool isSpeedCategory(Category category);

/** True for the two floating-point CPU2017 categories. */
bool isFpCategory(Category category);

/** One benchmark. */
struct BenchmarkInfo
{
    /** SPEC numeric id (e.g. 605); 0 for non-SPEC workloads. */
    int id = 0;

    /** Full name, e.g. "605.mcf_s" or "cas-WA". */
    std::string name;

    Suite suite = Suite::Cpu2017;
    Category category = Category::Other;
    Domain domain = Domain::Other;
    Language language = Language::C;

    /** True when newly added in CPU2017 (Section II-A). */
    bool new_in_2017 = false;

    /**
     * Name of the rate/speed counterpart ("505.mcf_r" for 605.mcf_s);
     * empty when the benchmark exists in only one category.
     */
    std::string partner;

    /**
     * Published Skylake CPI (Table I) used to calibrate the model;
     * 0 when the paper gives none (CPU2006/emerging workloads use
     * literature-derived estimates).
     */
    double published_cpi = 0.0;

    /** Calibrated statistical workload model. */
    trace::WorkloadProfile profile;
};

/**
 * Find a benchmark by name in a list.
 * @throws std::out_of_range when absent.
 */
const BenchmarkInfo &findBenchmark(const std::vector<BenchmarkInfo> &list,
                                   const std::string &name);

/** All benchmarks of @p category from @p list, in listed order. */
std::vector<BenchmarkInfo>
filterByCategory(const std::vector<BenchmarkInfo> &list, Category category);

/** Names of all benchmarks in @p list, in order. */
std::vector<std::string>
benchmarkNames(const std::vector<BenchmarkInfo> &list);

} // namespace suites
} // namespace speclens

#endif // SPECLENS_SUITES_BENCHMARK_INFO_H
