/**
 * @file
 * Calibration vocabulary for building benchmark workload models.
 *
 * Each benchmark's published data (Table I: instruction count, mix and
 * Skylake CPI) is combined with qualitative knobs — data locality
 * class, streaming share, code-footprint pressure, branch difficulty,
 * TLB sparseness — that encode the behaviours the paper reports
 * (Table II ranges, Fig. 1 bottleneck attribution, Figs. 9/10
 * positioning, Table IX sensitivity).  buildProfile() expands a
 * ProfileSpec into a full trace::WorkloadProfile.
 */

#ifndef SPECLENS_SUITES_PROFILE_PRESETS_H
#define SPECLENS_SUITES_PROFILE_PRESETS_H

#include <string>

#include "trace/workload_profile.h"

namespace speclens {
namespace suites {

/**
 * Data working-set magnitude relative to typical cache hierarchies
 * (L1 ~32-64 KiB, L2 ~0.25-2 MiB, L3 ~4-32 MiB).
 */
enum class DataLocality {
    Resident, //!< Fits in L1; near-zero data MPKI (exchange2, leela).
    Small,    //!< Spills into L2 occasionally.
    Medium,   //!< Regular L2 traffic, rare L3 misses.
    Large,    //!< Streams through L3 (many FP codes).
    Huge,     //!< Main-memory bound (omnetpp).
    Extreme,  //!< Thrashes every level (mcf, astar).
    L1Bound,  //!< Very high L1D miss rate filtered by L2/L3
              //!< (cactuBSSN, fotonik3d stencils).
};

/** Static code footprint / instruction-fetch pressure. */
enum class CodePressure {
    Tiny,   //!< Single hot loop (lbm, bwaves).
    Small,  //!< Small kernel set; negligible L1I misses.
    Medium, //!< Moderate instruction footprint.
    Large,  //!< Front-end pressure (perlbench, gcc, xalancbmk).
    Huge,   //!< Server-class code footprint (Cassandra).
    Flat,   //!< Generated straight-line code slightly exceeding L1I
            //!< (cactuBSSN).
};

/** Branch predictability class. */
enum class BranchQuality {
    VeryEasy, //!< Near-zero MPKI (most FP codes).
    Easy,     //!< Occasional mispredictions.
    Moderate, //!< Average integer code.
    Hard,     //!< Data-dependent branches (deepsjeng, xz).
    VeryHard, //!< Highest misprediction rates (leela, mcf).
};

/** Declarative benchmark description expanded by buildProfile(). */
struct ProfileSpec
{
    /** Dynamic instruction count in billions (Table I). */
    double icount_billions = 1000.0;

    // Instruction mix in percent of the dynamic stream (Table I).
    double load_pct = 25.0;
    double store_pct = 10.0;
    double branch_pct = 12.0;
    double fp_pct = 0.0;   //!< Scalar FP share (estimated per domain).
    double simd_pct = 0.0; //!< SIMD share (estimated per domain).

    /** Published Skylake CPI (Table I); calibrates base/dependency CPI. */
    double cpi = 0.5;

    DataLocality data = DataLocality::Medium;

    /** Streaming share of warm/cold working-set accesses, [0, 1]. */
    double streaming = 0.2;

    CodePressure code = CodePressure::Small;
    BranchQuality branches = BranchQuality::Moderate;

    /** Mean fraction of branches that resolve taken. */
    double taken_fraction = 0.55;

    /**
     * Page-level sparseness of the cold working set, [0, 1].  Positive
     * values convert it to page-stride accesses (one line per page) and
     * widen it, driving TLB misses without matching cache pressure —
     * povray/xz-style behaviour in the Table IX D-TLB row.
     */
    double tlb_stress = 0.0;

    /** Kernel-mode share of the instruction stream. */
    double kernel = 0.01;

    /** Memory-level parallelism (miss-overlap divisor). */
    double mlp = 2.0;

    /**
     * Share of the published CPI attributed to inter-instruction
     * dependencies (the Fig. 1 "other" component; large for blender
     * and imagick).
     */
    double dependency_share = 0.12;

    /**
     * Optional overrides of the branch-quality preset (negative keeps
     * the preset value).  patterned_override close to 1 makes a
     * benchmark's hard branches loop-patterned: history-based
     * predictors capture them but bimodal tables do not, producing the
     * machine-to-machine variability behind bwaves' "high branch
     * sensitivity" rating in Table IX.
     */
    double patterned_override = -1.0;
    double biased_override = -1.0;
};

/** Expand a declarative spec into a validated workload profile. */
trace::WorkloadProfile buildProfile(const std::string &name,
                                    const ProfileSpec &spec);

} // namespace suites
} // namespace speclens

#endif // SPECLENS_SUITES_PROFILE_PRESETS_H
