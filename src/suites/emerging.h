/**
 * @file
 * Case-study workloads outside SPEC: EDA, database and graph
 * analytics (Sections V-D, V-E, V-F, Fig. 13).
 *
 * The paper compares CPU2017 against:
 *  - two CPU2000 EDA benchmarks (175.vpr, 300.twolf), found to be
 *    covered — their hardware behaviour sits near mcf;
 *  - Cassandra running YCSB workloads A and C (cas-WA, cas-WC), found
 *    NOT covered — their instruction-cache and I-TLB pressure has no
 *    CPU2017 counterpart;
 *  - PageRank and Connected Components on two real-world graphs:
 *    PageRank (pr-g1, pr-g2) is NOT covered due to extreme D-TLB
 *    activity from random vertex access, while Connected Components
 *    (cc-g1, cc-g2) behaves like leela / deepsjeng / xz and is
 *    covered.
 */

#ifndef SPECLENS_SUITES_EMERGING_H
#define SPECLENS_SUITES_EMERGING_H

#include <vector>

#include "suites/benchmark_info.h"

namespace speclens {
namespace suites {

/** The two CPU2000 EDA benchmarks (Section V-D). */
std::vector<BenchmarkInfo> edaBenchmarks();

/** Cassandra/YCSB workloads A and C (Section V-E). */
std::vector<BenchmarkInfo> databaseBenchmarks();

/** PageRank and Connected Components on two graphs (Section V-F). */
std::vector<BenchmarkInfo> graphBenchmarks();

/** All emerging workloads in Fig. 13 order (EDA, database, graph). */
std::vector<BenchmarkInfo> emergingBenchmarks();

} // namespace suites
} // namespace speclens

#endif // SPECLENS_SUITES_EMERGING_H
