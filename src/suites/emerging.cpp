/**
 * @file
 * Emerging / case-study workload models.
 */

#include "emerging.h"

#include "suites/profile_presets.h"

namespace speclens {
namespace suites {

namespace {

using D = DataLocality;
using C = CodePressure;
using B = BranchQuality;

BenchmarkInfo
make(int id, const std::string &name, Suite suite, Domain domain,
     Language language, const ProfileSpec &spec)
{
    BenchmarkInfo b;
    b.id = id;
    b.name = name;
    b.suite = suite;
    b.category = Category::Other;
    b.domain = domain;
    b.language = language;
    b.profile = buildProfile(name, spec);
    return b;
}

} // namespace

std::vector<BenchmarkInfo>
edaBenchmarks()
{
    std::vector<BenchmarkInfo> v;

    {   // 175.vpr: FPGA place-and-route.  Pointer-heavy netlist
        // traversal with data-dependent branches — the profile the
        // paper finds "close to 505.mcf_r and 605.mcf_s" (Fig. 13).
        ProfileSpec s;
        s.icount_billions = 110;
        s.load_pct = 20.0; s.store_pct = 6.0; s.branch_pct = 12.5;
        s.cpi = 1.1;
        s.data = D::Extreme; s.streaming = 0.05; s.code = C::Medium;
        s.branches = B::VeryHard; s.taken_fraction = 0.62;
        s.tlb_stress = 0.20; s.mlp = 1.4;
        v.push_back(make(175, "175.vpr", Suite::Cpu2000, Domain::Eda,
                         Language::C, s));
    }
    {   // 300.twolf: standard-cell placement (simulated annealing);
        // same random-pointer character, slightly smaller footprint.
        ProfileSpec s;
        s.icount_billions = 95;
        s.load_pct = 21.0; s.store_pct = 6.5; s.branch_pct = 12.8;
        s.cpi = 1.05;
        s.data = D::Extreme; s.streaming = 0.05; s.code = C::Medium;
        s.branches = B::VeryHard; s.taken_fraction = 0.65;
        s.tlb_stress = 0.50; s.mlp = 1.35;
        v.push_back(make(300, "300.twolf", Suite::Cpu2000, Domain::Eda,
                         Language::C, s));
    }
    return v;
}

std::vector<BenchmarkInfo>
databaseBenchmarks()
{
    std::vector<BenchmarkInfo> v;

    // Cassandra is a JVM server: a multi-megabyte instruction
    // footprint with poor fetch locality and a substantial kernel
    // share, producing the instruction-cache / I-TLB pressure that the
    // paper finds no CPU2017 benchmark reproduces (Sec. V-E).
    {   // cas-WA: YCSB workload A (50% reads / 50% updates).
        ProfileSpec s;
        s.icount_billions = 500;
        s.load_pct = 27.0; s.store_pct = 14.0; s.branch_pct = 17.0;
        s.cpi = 1.5;
        s.data = D::Large; s.streaming = 0.05; s.code = C::Huge;
        s.branches = B::Moderate; s.taken_fraction = 0.62;
        s.tlb_stress = 0.25; s.kernel = 0.30; s.mlp = 1.6;
        v.push_back(make(0, "cas-WA", Suite::Emerging, Domain::Database,
                         Language::Java, s));
    }
    {   // cas-WC: YCSB workload C (read-only).
        ProfileSpec s;
        s.icount_billions = 480;
        s.load_pct = 31.0; s.store_pct = 6.0; s.branch_pct = 17.5;
        s.cpi = 1.4;
        s.data = D::Large; s.streaming = 0.05; s.code = C::Huge;
        s.branches = B::Moderate; s.taken_fraction = 0.62;
        s.tlb_stress = 0.25; s.kernel = 0.28; s.mlp = 1.6;
        v.push_back(make(0, "cas-WC", Suite::Emerging, Domain::Database,
                         Language::Java, s));
    }
    return v;
}

std::vector<BenchmarkInfo>
graphBenchmarks()
{
    std::vector<BenchmarkInfo> v;

    // PageRank: random vertex-indexed gathers over a graph far larger
    // than any TLB's reach — the extreme L1 D-TLB activity the paper
    // attributes to random data requests (Sec. V-F, refs [26], [27]).
    {   // pr-g1: PageRank on a social-network graph.
        ProfileSpec s;
        s.icount_billions = 220;
        s.load_pct = 38.0; s.store_pct = 9.0; s.branch_pct = 7.0;
        s.cpi = 1.8;
        s.data = D::Extreme; s.streaming = 0.15; s.code = C::Tiny;
        s.branches = B::Easy; s.taken_fraction = 0.8;
        s.tlb_stress = 1.0; s.mlp = 2.5;
        v.push_back(make(0, "pr-g1", Suite::Emerging,
                         Domain::GraphAnalytics, Language::Cpp, s));
    }
    {   // pr-g2: PageRank on a road-network graph (sparser, larger
        // diameter; even worse locality).
        ProfileSpec s;
        s.icount_billions = 180;
        s.load_pct = 36.0; s.store_pct = 8.0; s.branch_pct = 8.0;
        s.cpi = 2.0;
        s.data = D::Extreme; s.streaming = 0.05; s.code = C::Tiny;
        s.branches = B::Easy; s.taken_fraction = 0.8;
        s.tlb_stress = 1.0; s.mlp = 2.0;
        v.push_back(make(0, "pr-g2", Suite::Emerging,
                         Domain::GraphAnalytics, Language::Cpp, s));
    }

    // Connected Components: label propagation converges quickly to
    // mostly-resident frontier processing with data-dependent
    // comparisons — hardware behaviour the paper finds similar to
    // leela / deepsjeng / xz (Sec. V-F).
    {   // cc-g1.
        ProfileSpec s;
        s.icount_billions = 90;
        s.load_pct = 18.0; s.store_pct = 6.0; s.branch_pct = 11.0;
        s.cpi = 0.9;
        s.data = D::Small; s.streaming = 0.1; s.code = C::Small;
        s.branches = B::VeryHard; s.taken_fraction = 0.5;
        s.tlb_stress = 0.10; s.mlp = 1.8;
        v.push_back(make(0, "cc-g1", Suite::Emerging,
                         Domain::GraphAnalytics, Language::Cpp, s));
    }
    {   // cc-g2.
        ProfileSpec s;
        s.icount_billions = 75;
        s.load_pct = 16.0; s.store_pct = 5.0; s.branch_pct = 12.0;
        s.cpi = 0.95;
        s.data = D::Small; s.streaming = 0.1; s.code = C::Small;
        s.branches = B::VeryHard; s.taken_fraction = 0.5;
        s.tlb_stress = 0.10; s.mlp = 1.8;
        v.push_back(make(0, "cc-g2", Suite::Emerging,
                         Domain::GraphAnalytics, Language::Cpp, s));
    }
    return v;
}

std::vector<BenchmarkInfo>
emergingBenchmarks()
{
    std::vector<BenchmarkInfo> v = edaBenchmarks();
    for (const BenchmarkInfo &b : databaseBenchmarks())
        v.push_back(b);
    for (const BenchmarkInfo &b : graphBenchmarks())
        v.push_back(b);
    return v;
}

} // namespace suites
} // namespace speclens
