/**
 * @file
 * SPEC CPU2006 benchmark database.
 *
 * Three benchmarks are deliberately calibrated to fall outside the
 * CPU2017 performance envelope, matching Section V-B:
 *  - 429.mcf exerts the data caches even harder than the CPU2017 mcf
 *    versions (stated explicitly in Section V-A);
 *  - 445.gobmk combines a branch share (~21%) and misprediction
 *    profile no CPU2017 benchmark has;
 *  - 473.astar couples mcf-class data-cache pressure with a hard
 *    branch profile — a combination absent from CPU2017.
 */

#include "spec2006.h"

#include "suites/profile_presets.h"

namespace speclens {
namespace suites {

namespace {

using D = DataLocality;
using C = CodePressure;
using B = BranchQuality;

BenchmarkInfo
make(int id, const std::string &name, Category category, Domain domain,
     Language language, const ProfileSpec &spec)
{
    BenchmarkInfo b;
    b.id = id;
    b.name = name;
    b.suite = Suite::Cpu2006;
    b.category = category;
    b.domain = domain;
    b.language = language;
    b.published_cpi = spec.cpi;
    b.profile = buildProfile(name, spec);
    return b;
}

ProfileSpec
spec(double icount, double load, double store, double branch, double cpi,
     D data, double streaming, C code, B branches, double taken,
     double fp = 0.0, double simd = 0.0, double tlb = 0.0,
     double mlp = 2.0)
{
    ProfileSpec s;
    s.icount_billions = icount;
    s.load_pct = load;
    s.store_pct = store;
    s.branch_pct = branch;
    s.cpi = cpi;
    s.data = data;
    s.streaming = streaming;
    s.code = code;
    s.branches = branches;
    s.taken_fraction = taken;
    s.fp_pct = fp;
    s.simd_pct = simd;
    s.tlb_stress = tlb;
    s.mlp = mlp;
    return s;
}

std::vector<BenchmarkInfo>
build()
{
    std::vector<BenchmarkInfo> v;
    v.reserve(29);

    // ----- Integer (12). CPU2006 INT averages ~20% branches [9]. -----

    v.push_back(make(400, "400.perlbench", Category::Int,
                     Domain::Compiler, Language::C,
                     spec(2378, 24.0, 14.0, 20.7, 0.45, D::Small, 0.15,
                          C::Large, B::Moderate, 0.62, 0, 0, 0.10)));
    v.push_back(make(401, "401.bzip2", Category::Int,
                     Domain::Compression, Language::C,
                     spec(2472, 26.0, 9.0, 15.3, 0.55, D::Medium, 0.3,
                          C::Small, B::Hard, 0.50, 0, 0, 0.10)));
    v.push_back(make(403, "403.gcc", Category::Int, Domain::Compiler,
                     Language::C,
                     spec(1064, 26.0, 16.0, 21.9, 0.60, D::Medium, 0.15,
                          C::Large, B::Moderate, 0.66)));
    v.push_back(make(429, "429.mcf", Category::Int,
                     Domain::CombinatorialOptimization, Language::C,
                     // Harder on the data caches than CPU2017 mcf
                     // (Sec. V-A): an even larger share of the stream
                     // touches a thrashing footprint.
                     spec(327, 35.0, 9.0, 21.2, 2.20, D::Extreme, 0.02,
                          C::Small, B::VeryHard, 0.68, 0, 0, 0.30,
                          1.15)));
    v.push_back(make(445, "445.gobmk", Category::Int,
                     Domain::ArtificialIntelligence, Language::C,
                     // Branch share + misprediction combination not
                     // present in CPU2017 (uncovered in Sec. V-B).
                     spec(1603, 28.0, 14.5, 21.0, 0.70, D::Small, 0.05,
                          C::Large, B::VeryHard, 0.42)));
    v.push_back(make(456, "456.hmmer", Category::Int,
                     Domain::Other, Language::C,
                     spec(3363, 41.0, 16.0, 8.0, 0.45, D::Small, 0.5,
                          C::Tiny, B::Easy, 0.70)));
    v.push_back(make(458, "458.sjeng", Category::Int,
                     Domain::ArtificialIntelligence, Language::C,
                     spec(2474, 21.0, 8.0, 21.4, 0.60, D::Small, 0.05,
                          C::Medium, B::Hard, 0.48)));
    v.push_back(make(462, "462.libquantum", Category::Int,
                     Domain::Physics, Language::C,
                     // Streaming gate simulation over complex floats:
                     // nominally an INT benchmark, but the hot loop is
                     // vectorised complex-FP arithmetic, which is what
                     // places it among the FP streaming codes.
                     spec(3555, 25.0, 10.0, 13.0, 0.80, D::Huge, 0.85,
                          C::Tiny, B::VeryEasy, 0.80, 14.0, 10.0, 0,
                          4.0)));
    v.push_back(make(464, "464.h264ref", Category::Int,
                     Domain::VideoProcessing, Language::C,
                     spec(3731, 35.0, 11.0, 7.6, 0.50, D::Medium, 0.5,
                          C::Medium, B::Easy, 0.60, 0, 6.0)));
    v.push_back(make(471, "471.omnetpp", Category::Int,
                     Domain::DiscreteEventSimulation, Language::Cpp,
                     // Retained into CPU2017 nearly unchanged
                     // (Sec. V-A).
                     spec(687, 23.0, 13.0, 20.3, 1.35, D::Huge, 0.05,
                          C::Medium, B::Moderate, 0.64, 0, 0, 0, 1.4)));
    v.push_back(make(473, "473.astar", Category::Int,
                     Domain::ArtificialIntelligence, Language::Cpp,
                     // Path-finding: mcf-class cache pressure combined
                     // with hard branches (uncovered in Sec. V-B).
                     spec(1117, 34.0, 9.0, 17.1, 1.60, D::Extreme, 0.03,
                          C::Small, B::VeryHard, 0.55, 0, 0, 0.45,
                          1.2)));
    v.push_back(make(483, "483.xalancbmk", Category::Int,
                     Domain::DocumentProcessing, Language::Cpp,
                     spec(1184, 32.0, 9.0, 25.7, 0.90, D::Large, 0.1,
                          C::Large, B::Easy, 0.68)));

    // ----- Floating point (17). -----

    v.push_back(make(410, "410.bwaves", Category::Fp,
                     Domain::FluidDynamics, Language::Fortran,
                     // Retained into CPU2017 (503.bwaves_r similar).
                     spec(1178, 35.0, 5.0, 9.5, 0.45, D::Large, 0.7,
                          C::Tiny, B::Moderate, 0.75, 24.0, 14.0, 0.30,
                          4.0)));
    v.push_back(make(416, "416.gamess", Category::Fp,
                     Domain::QuantumChemistry, Language::Fortran,
                     spec(5189, 35.0, 8.0, 8.2, 0.45, D::Small, 0.3,
                          C::Medium, B::Easy, 0.70, 30.0, 6.0)));
    v.push_back(make(433, "433.milc", Category::Fp, Domain::Physics,
                     Language::C,
                     spec(937, 40.0, 12.0, 2.5, 0.85, D::Huge, 0.8,
                          C::Tiny, B::VeryEasy, 0.85, 26.0, 10.0, 0.2,
                          3.5)));
    v.push_back(make(434, "434.zeusmp", Category::Fp, Domain::Physics,
                     Language::Fortran,
                     spec(1566, 29.0, 8.0, 4.1, 0.60, D::Large, 0.6,
                          C::Small, B::VeryEasy, 0.80, 28.0, 8.0)));
    v.push_back(make(435, "435.gromacs", Category::Fp,
                     Domain::MolecularDynamics, Language::CFortran,
                     spec(1958, 29.0, 14.0, 3.4, 0.50, D::Small, 0.3,
                          C::Small, B::VeryEasy, 0.75, 32.0, 8.0)));
    v.push_back(make(436, "436.cactusADM", Category::Fp, Domain::Physics,
                     Language::CFortran,
                     // Predecessor of cactuBSSN: same generated-stencil
                     // L1-bound pattern with flat code.
                     spec(1376, 46.0, 13.0, 0.2, 0.70, D::L1Bound, 0.4,
                          C::Flat, B::VeryEasy, 0.85, 22.0, 8.0, 0.4,
                          3.0)));
    v.push_back(make(437, "437.leslie3d", Category::Fp,
                     Domain::FluidDynamics, Language::Fortran,
                     spec(1213, 45.0, 10.0, 3.2, 0.65, D::Large, 0.7,
                          C::Tiny, B::VeryEasy, 0.85, 26.0, 10.0, 0,
                          3.5)));
    v.push_back(make(444, "444.namd", Category::Fp,
                     Domain::MolecularDynamics, Language::Cpp,
                     // Retained into CPU2017 (508.namd_r similar).
                     spec(2483, 32.0, 9.0, 1.9, 0.42, D::Small, 0.3,
                          C::Small, B::VeryEasy, 0.80, 34.0, 10.0,
                          0.10)));
    v.push_back(make(447, "447.dealII", Category::Fp, Domain::Biomedical,
                     Language::Cpp,
                     spec(2323, 35.0, 7.0, 15.9, 0.48, D::Medium, 0.4,
                          C::Medium, B::Easy, 0.70, 26.0, 6.0)));
    v.push_back(make(450, "450.soplex", Category::Fp,
                     Domain::LinearProgramming, Language::Cpp,
                     spec(703, 39.0, 8.0, 14.0, 0.75, D::Medium, 0.3,
                          C::Medium, B::Easy, 0.65, 22.0, 6.0, 0.1,
                          1.8)));
    v.push_back(make(453, "453.povray", Category::Fp,
                     Domain::Visualization, Language::CCpp,
                     // Retained into CPU2017 (511.povray_r similar).
                     spec(1210, 35.0, 16.0, 14.3, 0.45, D::Small, 0.1,
                          C::Medium, B::Moderate, 0.60, 24.0, 4.0,
                          0.50)));
    v.push_back(make(454, "454.calculix", Category::Fp,
                     Domain::Other, Language::CFortran,
                     spec(3041, 33.0, 7.0, 4.2, 0.55, D::Medium, 0.4,
                          C::Small, B::VeryEasy, 0.75, 30.0, 8.0)));
    v.push_back(make(459, "459.GemsFDTD", Category::Fp, Domain::Physics,
                     Language::Fortran,
                     spec(1420, 45.0, 10.0, 2.6, 0.80, D::Huge, 0.8,
                          C::Tiny, B::VeryEasy, 0.85, 26.0, 10.0, 0.25,
                          3.5)));
    v.push_back(make(465, "465.tonto", Category::Fp,
                     Domain::QuantumChemistry, Language::Fortran,
                     spec(2932, 35.0, 11.0, 12.8, 0.50, D::Small, 0.3,
                          C::Medium, B::Easy, 0.70, 28.0, 6.0)));
    v.push_back(make(470, "470.lbm", Category::Fp,
                     Domain::FluidDynamics, Language::C,
                     // Retained into CPU2017 (519.lbm_r similar).
                     spec(1500, 26.0, 9.0, 0.9, 0.55, D::Large, 0.85,
                          C::Tiny, B::VeryEasy, 0.85, 30.0, 12.0, 0,
                          4.5)));
    v.push_back(make(481, "481.wrf", Category::Fp, Domain::Climatology,
                     Language::CFortran,
                     // Retained into CPU2017 (521.wrf_r similar).
                     spec(1684, 31.0, 8.0, 5.9, 0.75, D::Large, 0.5,
                          C::Medium, B::Easy, 0.70, 26.0, 8.0, 0.10,
                          2.5)));
    v.push_back(make(482, "482.sphinx3", Category::Fp,
                     Domain::SpeechRecognition, Language::C,
                     spec(2472, 35.0, 6.0, 9.5, 0.75, D::Large, 0.6,
                          C::Small, B::Easy, 0.70, 26.0, 6.0)));

    return v;
}

} // namespace

const std::vector<BenchmarkInfo> &
spec2006()
{
    static const std::vector<BenchmarkInfo> suite = build();
    return suite;
}

std::vector<BenchmarkInfo>
spec2006Int()
{
    return filterByCategory(spec2006(), Category::Int);
}

std::vector<BenchmarkInfo>
spec2006Fp()
{
    return filterByCategory(spec2006(), Category::Fp);
}

const BenchmarkInfo &
spec2006Benchmark(const std::string &name)
{
    return findBenchmark(spec2006(), name);
}

std::vector<BenchmarkInfo>
spec2006RemovedBenchmarks()
{
    // Benchmarks whose CPU2006 workload was dropped or fully replaced.
    // perlbench, gcc, omnetpp, xalancbmk, bwaves, namd, povray, lbm
    // and wrf carried over (revamped); the paper's Section V-B
    // coverage study includes 429.mcf in the removed-workload set
    // because the 2017 mcf inputs behave differently (Sec. V-A).
    static const char *removed[] = {
        "401.bzip2",    "429.mcf",      "445.gobmk",   "456.hmmer",
        "458.sjeng",    "462.libquantum", "464.h264ref", "473.astar",
        "416.gamess",   "433.milc",     "434.zeusmp",  "435.gromacs",
        "436.cactusADM", "437.leslie3d", "447.dealII",  "450.soplex",
        "454.calculix", "459.GemsFDTD", "465.tonto",   "482.sphinx3",
    };
    std::vector<BenchmarkInfo> out;
    for (const char *name : removed)
        out.push_back(spec2006Benchmark(name));
    return out;
}

} // namespace suites
} // namespace speclens
